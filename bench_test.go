// Package tango_test benchmarks the reproduction: one benchmark per paper
// table/figure (regenerating the experiment and reporting the measured
// virtual-time PLTs as custom metrics) plus micro-benchmarks of the
// substrates (path combination, PPL evaluation, hop-field MACs, packet
// codec, beaconing, transport throughput).
//
// Run with:
//
//	go test -bench=. -benchmem
package tango_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/dataplane"
	"tango/internal/experiments"
	"tango/internal/layermodel"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/pathdb"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/segment"
	"tango/internal/snet"
	"tango/internal/squic"
	"tango/internal/stats"
	"tango/internal/topology"
)

var (
	t0     = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	t1     = t0.Add(24 * time.Hour)
	during = t0.Add(time.Hour)
)

// --- Experiment benchmarks: one per table/figure ---

// BenchmarkTable1LayerModel regenerates the Table 1 decision matrix.
func BenchmarkTable1LayerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := layermodel.Matrix()
		if len(m) != 12 {
			b.Fatal("matrix incomplete")
		}
	}
}

// benchFigure runs one figure experiment per iteration and reports the
// median virtual PLT of its first and last series.
func benchFigure(b *testing.B, run func(int) (*experiments.Figure, error)) {
	b.Helper()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = run(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if fig != nil {
		for _, s := range fig.Series {
			sum := stats.SummarizeDurations(s.Samples)
			b.ReportMetric(sum.Median, "virtms_"+sanitize(s.Label))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig3LocalPLT regenerates Figure 3 (local setup PLTs).
func BenchmarkFig3LocalPLT(b *testing.B) { benchFigure(b, experiments.RunFig3) }

// BenchmarkFig5RemotePLT regenerates Figure 5 (remote origin PLTs).
func BenchmarkFig5RemotePLT(b *testing.B) { benchFigure(b, experiments.RunFig5) }

// BenchmarkFig6LocalASPLT regenerates Figure 6 (AS-local origin PLTs).
func BenchmarkFig6LocalASPLT(b *testing.B) { benchFigure(b, experiments.RunFig6) }

// BenchmarkFig3Ablation regenerates the tight-integration projection: the
// paper's expectation that the prototype overhead disappears with native
// integration.
func BenchmarkFig3Ablation(b *testing.B) { benchFigure(b, experiments.RunFig3Ablation) }

// --- Substrate micro-benchmarks ---

func controlPlane(b *testing.B) (*topology.Topology, *beacon.Infra, *pathdb.Registry) {
	b.Helper()
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		b.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	if err := beacon.NewService(topo, infra, reg, 12*time.Hour).Run(t0); err != nil {
		b.Fatal(err)
	}
	return topo, infra, reg
}

// BenchmarkStripedTransfer measures one striped fetch of the demo world's
// large resource through the full SKIP proxy stack: DisjointRace path pick,
// per-pipeline congestion control, segment scheduling, reassembly, and the
// per-path byte accounting in Stats. The first iteration pays the striped
// dial; later ones reuse the pooled pipelines (warm congestion state), which
// is the steady state a browser session sees. Virtual transfer time is
// reported alongside real CPU cost.
func BenchmarkStripedTransfer(b *testing.B) {
	w, c, err := experiments.Demo(1)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	c.Proxy.SetStripe(&pan.StripeOptions{Width: 2, SegmentSize: 128 << 10, MinStripeBytes: 128 << 10})
	url := "http://www.scion.example" + experiments.BigResourcePath

	var virtual time.Duration
	b.SetBytes(experiments.BigResourceSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := w.Clock.Now()
		rec := httptest.NewRecorder()
		c.Proxy.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK || rec.Body.Len() != experiments.BigResourceSize {
			b.Fatalf("fetch %d: status=%d len=%d", i, rec.Code, rec.Body.Len())
		}
		virtual += w.Clock.Now().Sub(start)
	}
	b.StopTimer()
	if snap := c.Proxy.Stats().Snapshot(); snap.Striped != b.N {
		b.Fatalf("striped %d of %d fetches", snap.Striped, b.N)
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtms/fetch")
}

// BenchmarkBeaconRound measures one full beaconing round over the default
// topology (origination, propagation, signing, registration).
func BenchmarkBeaconRound(b *testing.B) {
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := pathdb.NewRegistry(infra.Store)
		if err := beacon.NewService(topo, infra, reg, 12*time.Hour).Run(t0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathCombination measures end-to-end path assembly (up+core+down
// joins, shortcuts, peering) for an inter-ISD pair.
func BenchmarkPathCombination(b *testing.B) {
	_, _, reg := controlPlane(b)
	comb := pathdb.NewCombiner(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := comb.Paths(topology.AS111, topology.AS211, during)
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkSegmentVerify measures signature-chain verification of a
// registered up-segment.
func BenchmarkSegmentVerify(b *testing.B) {
	_, infra, reg := controlPlane(b)
	segs := reg.UpSegments(topology.AS122, during)
	if len(segs) == 0 {
		b.Fatal("no segments")
	}
	seg := segs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := seg.Verify(infra.Store, during); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHopFieldMAC measures hop-field MAC computation (the router fast
// path).
func BenchmarkHopFieldMAC(b *testing.B) {
	info := segment.Info{Timestamp: t0, SegID: 1, Origin: topology.Core110}
	hf := segment.HopField{ConsIngress: 1, ConsEgress: 2, ExpTime: t1}
	key := []byte("forwarding-key-bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hf.MAC = segment.ComputeMAC(key, info, hf)
	}
}

// BenchmarkPacketCodec measures SCION packet marshal+unmarshal round trips.
func BenchmarkPacketCodec(b *testing.B) {
	_, _, reg := controlPlane(b)
	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, during)
	pkt := &dataplane.Packet{
		Src:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS111, Host: netip.MustParseAddr("10.0.0.1")}, Port: 1},
		Dst:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 2},
		Hops:    paths[0].Hops,
		Payload: make([]byte, 1000),
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.SetBytes(1000)
	for i := 0; i < b.N; i++ {
		buf, err := pkt.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dataplane.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPLPolicyEval measures full policy evaluation (ACL + sequence +
// metric caps + ordering) over the path set of an inter-ISD pair.
func BenchmarkPPLPolicyEval(b *testing.B) {
	_, _, reg := controlPlane(b)
	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, during)
	seq, err := ppl.ParseSequence("1-ff00:0:111 0* 2-ff00:0:211")
	if err != nil {
		b.Fatal(err)
	}
	acl, err := ppl.ParseACL("- 2-ff00:0:220", "+")
	if err != nil {
		b.Fatal(err)
	}
	pol := &ppl.Policy{
		ACL: acl, Sequence: seq, MaxLatency: 200 * time.Millisecond,
		Orderings: []ppl.Ordering{ppl.OrderCarbon, ppl.OrderLatency},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := pol.Filter(paths); len(got) == 0 {
			b.Fatal("policy rejected everything")
		}
	}
}

// BenchmarkGeofenceCompliance measures ISD-level geofence checks.
func BenchmarkGeofenceCompliance(b *testing.B) {
	_, _, reg := controlPlane(b)
	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, during)
	fence := policy.NewBlockGeofence(3, 4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range paths {
			if !fence.Compliant(p) {
				b.Fatal("unexpected violation")
			}
		}
	}
}

// BenchmarkSQUICTransfer measures squic stream goodput over a 2-hop SCION
// path (real time, since crypto and packetization dominate).
func BenchmarkSQUICTransfer(b *testing.B) {
	topo, infra, reg := controlPlane(b)
	clock := netsim.NewSimClock(during)
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		b.Fatal(err)
	}
	disp := make(map[addr.IA]*snet.Dispatcher)
	for _, as := range topo.ASes() {
		disp[as.IA] = snet.NewDispatcher(dw.Router(as.IA), clock)
	}
	stop := clock.AutoAdvance(0)
	defer stop()

	id, err := squic.NewIdentity("bench.server")
	if err != nil {
		b.Fatal(err)
	}
	pool := squic.NewCertPool()
	pool.AddIdentity(id)
	serverSock, err := disp[topology.AS112].Host(netip.MustParseAddr("10.0.0.2"), dw.Router(topology.AS112)).Listen(443)
	if err != nil {
		b.Fatal(err)
	}
	lis, err := squic.Listen(serverSock, &squic.Config{Clock: clock, Identity: id})
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					s, err := conn.AcceptStream()
					if err != nil {
						return
					}
					go func() {
						io.Copy(io.Discard, s)
						s.Write([]byte{1})
					}()
				}
			}()
		}
	}()

	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS112, during)
	clientSock, err := disp[topology.AS111].Host(netip.MustParseAddr("10.0.0.1"), dw.Router(topology.AS111)).Listen(0)
	if err != nil {
		b.Fatal(err)
	}
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS112, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}
	conn, err := squic.Dial(clientSock, remote, paths[0], "bench.server", &squic.Config{Clock: clock, Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	const chunk = 256 << 10
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := conn.OpenStream()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
		s.CloseWrite()
		if _, err := io.ReadFull(s, make([]byte, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// panDialBench measures repeated requests to one authority through a
// pan.Dialer. With redial=false the pooled connection is reused across
// iterations; with redial=true the epoch is bumped every iteration, forcing a
// full select+handshake per request (the old per-request Host.Dial
// behavior). Reuse must win on repeated requests.
func panDialBench(b *testing.B, redial bool) {
	topo, infra, reg := controlPlane(b)
	clock := netsim.NewSimClock(during)
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		b.Fatal(err)
	}
	disp := make(map[addr.IA]*snet.Dispatcher)
	for _, as := range topo.ASes() {
		disp[as.IA] = snet.NewDispatcher(dw.Router(as.IA), clock)
	}
	stop := clock.AutoAdvance(0)
	defer stop()

	comb := pathdb.NewCombiner(reg)
	pool := squic.NewCertPool()
	server := pan.NewHost(disp[topology.AS112].Host(netip.MustParseAddr("10.0.0.2"), dw.Router(topology.AS112)), comb, pool)
	id, err := squic.NewIdentity("bench.pan")
	if err != nil {
		b.Fatal(err)
	}
	pool.AddIdentity(id)
	lis, err := server.Listen(443, id)
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					s, err := conn.AcceptStream()
					if err != nil {
						return
					}
					go func() {
						io.Copy(io.Discard, s)
						s.Write([]byte{1})
						s.CloseWrite()
					}()
				}
			}()
		}
	}()

	client := pan.NewHost(disp[topology.AS111].Host(netip.MustParseAddr("10.0.0.1"), dw.Router(topology.AS111)), comb, pool)
	dialer := client.NewDialer(pan.DialOptions{Selector: pan.NewLatencySelector(), ServerName: "bench.pan"})
	defer dialer.Close()
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS112, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}

	const chunk = 16 << 10
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if redial {
			dialer.Invalidate()
		}
		conn, _, err := dialer.Dial(context.Background(), remote, "")
		if err != nil {
			b.Fatal(err)
		}
		s, err := conn.OpenStream()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
		s.CloseWrite()
		if _, err := io.ReadFull(s, make([]byte, 1)); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkDialerReuse: repeated requests over the Dialer's pooled
// connection (one handshake amortized over all iterations).
func BenchmarkDialerReuse(b *testing.B) { panDialBench(b, false) }

// BenchmarkDialerRedial: epoch-bumped per-request re-dial — the cost the
// Dialer's connection reuse removes.
func BenchmarkDialerRedial(b *testing.B) { panDialBench(b, true) }

// fixedSelector serves a fixed ranking and ignores feedback — benchmarks
// use it to hold the adverse ranking constant across iterations.
type fixedSelector struct{ ranking []pan.Candidate }

func (f *fixedSelector) Rank(addr.IA, []*segment.Path) []pan.Candidate {
	return append([]pan.Candidate(nil), f.ranking...)
}
func (f *fixedSelector) Report(*segment.Path, pan.Outcome) {}

// benchWorld is the shared substrate of the dial/telemetry benchmarks: a
// full SCION world on a virtual auto-advancing clock.
type benchWorld struct {
	clock *netsim.SimClock
	comb  *pathdb.Combiner
	pool  *squic.CertPool
	disp  map[addr.IA]*snet.Dispatcher
	dw    *dataplane.World
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	topo, infra, reg := controlPlane(b)
	clock := netsim.NewSimClock(during)
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		b.Fatal(err)
	}
	disp := make(map[addr.IA]*snet.Dispatcher)
	for _, as := range topo.ASes() {
		disp[as.IA] = snet.NewDispatcher(dw.Router(as.IA), clock)
	}
	b.Cleanup(clock.AutoAdvance(0))
	return &benchWorld{
		clock: clock,
		comb:  pathdb.NewCombiner(reg),
		pool:  squic.NewCertPool(),
		disp:  disp,
		dw:    dw,
	}
}

func (w *benchWorld) host(ia addr.IA, ip string) *pan.Host {
	return pan.NewHost(w.disp[ia].Host(netip.MustParseAddr(ip), w.dw.Router(ia)), w.comb, w.pool)
}

// listen stands up a handshake-only server (no streams served) and returns
// its address.
func (w *benchWorld) listen(b *testing.B, ia addr.IA, ip string, port uint16, name string) addr.UDPAddr {
	b.Helper()
	server := w.host(ia, ip)
	id, err := squic.NewIdentity(name)
	if err != nil {
		b.Fatal(err)
	}
	w.pool.AddIdentity(id)
	lis, err := server.Listen(port, id)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			_ = conn // handshake-only benchmark: no streams served
		}
	}()
	return addr.UDPAddr{Addr: addr.Addr{IA: ia, Host: netip.MustParseAddr(ip)}, Port: port}
}

// asymmetricDialWorld builds a client/server pair across the ISDs (real
// path diversity and latency asymmetry) and returns everything a dial
// benchmark needs.
func asymmetricDialWorld(b *testing.B) (*netsim.SimClock, *pan.Host, addr.UDPAddr, []*segment.Path) {
	b.Helper()
	w := newBenchWorld(b)
	remote := w.listen(b, topology.AS211, "10.0.0.9", 7500, "bench.race")
	client := w.host(topology.AS111, "10.0.0.8")
	paths := client.Paths(topology.AS211)
	if len(paths) < 2 {
		b.Fatal("need path diversity")
	}
	return w.clock, client, remote, paths
}

// benchAsymmetricDial dials through a ranking whose TOP candidate is down
// (an unroutable reversed path) — the failure mode racing exists for. The
// sequential dialer burns the full handshake timeout before failing over;
// the raced dialer lets the healthy second candidate win concurrently. The
// virtms/dial metric is exact virtual time per dial and is what the
// raced-vs-sequential acceptance compares.
func benchAsymmetricDial(b *testing.B, raceWidth int) {
	clock, client, remote, paths := asymmetricDialWorld(b)
	sel := &fixedSelector{ranking: []pan.Candidate{
		{Path: paths[0].Reversed(), Compliant: true}, // top-ranked, down
		{Path: paths[0], Compliant: true},            // healthy
	}}
	d := client.NewDialer(pan.DialOptions{
		Selector:    sel,
		ServerName:  "bench.race",
		Timeout:     2 * time.Second, // virtual: the sequential failover penalty
		RaceWidth:   raceWidth,
		RaceStagger: 10 * time.Millisecond,
	})
	defer d.Close()

	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Invalidate() // force a fresh dial per iteration
		start := clock.Now()
		if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
			b.Fatal(err)
		}
		virtual += clock.Since(start)
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtms/dial")
}

// BenchmarkDialSequential: failover burns the dead top candidate's full
// handshake timeout on every dial.
func BenchmarkDialSequential(b *testing.B) { benchAsymmetricDial(b, 0) }

// BenchmarkDialRaced: the healthy second candidate wins while the dead top
// candidate is still flailing; the loser is canceled, not awaited.
func BenchmarkDialRaced(b *testing.B) { benchAsymmetricDial(b, 2) }

// BenchmarkProberRound measures one full probe sweep over a single tracked
// destination — a handshake probe per known inter-ISD path — i.e. the
// recurring background cost of keeping one destination's rankings live
// (name kept from the PR-2 prober for trajectory continuity).
func BenchmarkProberRound(b *testing.B) {
	clock, client, remote, paths := asymmetricDialWorld(b)
	ls := pan.NewLatencySelector()
	monitor := client.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	monitor.Subscribe(ls.Report)
	monitor.Track(remote, "bench.race")
	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := clock.Now()
		monitor.RunRound()
		virtual += clock.Since(start)
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtms/round")
	b.ReportMetric(float64(len(paths)), "paths/round")
}

// BenchmarkMonitorRound measures one telemetry-plane sweep in the shared
// configuration the monitor exists for: two destinations across both ISD-2
// branches tracked by two subscribed selector sinks, deduplicated paths,
// link decomposition included — the recurring cost of serving many dialers
// from ONE probe schedule.
func BenchmarkMonitorRound(b *testing.B) {
	w := newBenchWorld(b)
	remote1 := w.listen(b, topology.AS211, "10.0.0.9", 7500, "bench.mon")
	remote2 := w.listen(b, topology.AS221, "10.0.0.10", 7501, "bench.mon")
	client := w.host(topology.AS111, "10.0.0.8")

	monitor := client.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	ls1, ls2 := pan.NewLatencySelector(), pan.NewLatencySelector()
	monitor.Subscribe(ls1.Report)
	monitor.Subscribe(ls2.Report)
	monitor.Track(remote1, "bench.mon")
	monitor.Track(remote2, "bench.mon")

	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := w.clock.Now()
		monitor.RunRound()
		virtual += w.clock.Since(start)
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtms/round")
	b.ReportMetric(float64(monitor.TrackedPaths()), "paths/round")
	b.ReportMetric(float64(len(monitor.LinkStats())), "links")
}

// BenchmarkDialAdaptive is the adaptive counterpart of BenchmarkDialRaced:
// same per-dial decision point, but with warm, fresh telemetry and a
// clearly healthy leader the adviser picks width 1 — the dial costs one
// handshake instead of RaceWidth of them. The width metric records the
// decision; virtms/dial the latency it buys.
func BenchmarkDialAdaptive(b *testing.B) {
	clock, client, remote, _ := asymmetricDialWorld(b)
	ls := pan.NewLatencySelector()
	monitor := client.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	monitor.Subscribe(ls.Report)
	monitor.Track(remote, "bench.race")
	monitor.RunRound() // warm telemetry: fresh estimates, clear leader
	monitor.Start()    // background schedule keeps it fresh across iterations
	defer monitor.Stop()
	d := client.NewDialer(pan.DialOptions{
		Selector:     ls,
		ServerName:   "bench.race",
		Timeout:      2 * time.Second,
		RaceWidth:    2,
		AdaptiveRace: true,
		Monitor:      monitor,
	})
	defer d.Close()

	var virtual time.Duration
	width := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Invalidate() // force a fresh dial per iteration
		start := clock.Now()
		if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
			b.Fatal(err)
		}
		virtual += clock.Since(start)
		width += d.LastRace().Width
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtms/dial")
	b.ReportMetric(float64(width)/float64(b.N), "width/dial")
}

// BenchmarkMonitorPassive measures passive-sample ingest throughput: one
// Observe call per iteration against a tracked inter-ISD destination — the
// EWMA/deviation update, churn adaptation, and per-link excess attribution
// a pooled connection's every ack RTT pays on the hot path. This must stay
// cheap: a proxy-scale deployment ingests orders of magnitude more passive
// samples than probes.
func BenchmarkMonitorPassive(b *testing.B) {
	clock, client, remote, paths := asymmetricDialWorld(b)
	_ = clock
	ls := pan.NewLatencySelector()
	monitor := client.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	monitor.Subscribe(ls.Report)
	monitor.Track(remote, "bench.race")
	base := 2 * paths[0].Meta.Latency
	// Warm once off the timer so the measured iterations are steady-state
	// ingest (series maps built, ring drained once), not first-sample setup.
	monitor.Observe(paths[0], base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the sample so the EWMA/deviation arithmetic does real work.
		monitor.Observe(paths[0], base+time.Duration(i%8)*time.Millisecond)
	}
	b.StopTimer()
	tel, ok := monitor.Telemetry(paths[0].Fingerprint())
	if !ok || tel.PassiveSamples != b.N+1 {
		b.Fatalf("ingested %d of %d passive samples", tel.PassiveSamples, b.N+1)
	}
}

// BenchmarkMonitorScale is the million-origin telemetry-plane benchmark:
// ~100k tracked origins spread over 1024 destination ASes (3 paths each,
// via 64 shared transit ASes), with passive samples ingested from parallel
// goroutines on the real clock while the probe wheel runs — the proxy-scale
// shape the sharded monitor exists for. ns/op is the per-sample cost on the
// squic ack hot path (target ≤1µs); allocs/op is gated in CI (steady-state
// ingest must not allocate). Setup (the 100k Tracks) happens off the timer.
func BenchmarkMonitorScale(b *testing.B) {
	const (
		ases         = 1024
		originsPerAS = 98 // ~100k origins total
		pathsPerAS   = 3
	)
	byIA := make(map[addr.IA][]*segment.Path, ases)
	all := make([]*segment.Path, 0, ases*pathsPerAS)
	src := topology.AS111
	dsts := make([]addr.IA, ases)
	for a := 0; a < ases; a++ {
		dst := addr.IA{ISD: addr.ISD(2 + a%14), AS: addr.AS(0x1_0000 + a)}
		dsts[a] = dst
		via := addr.IA{ISD: 1, AS: addr.AS(0x4000 + a%64)}
		for i := 0; i < pathsPerAS; i++ {
			p := &segment.Path{
				Src: src, Dst: dst,
				Hops: []segment.Hop{
					{IA: src, Egress: addr.IfID(1 + i)},
					{IA: via, Ingress: addr.IfID(100 + i), Egress: addr.IfID(200 + i)},
					{IA: dst, Ingress: addr.IfID(10 + i)},
				},
				Meta: segment.Metadata{Latency: time.Duration(8+i) * time.Millisecond},
			}
			byIA[dst] = append(byIA[dst], p)
			all = append(all, p)
		}
	}
	m := pan.NewMonitor(netsim.RealClock{}, func(ia addr.IA) []*segment.Path { return byIA[ia] }, pan.MonitorOptions{
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			return time.Millisecond, nil
		},
	})
	host := netip.MustParseAddr("10.3.0.1")
	for a := 0; a < ases; a++ {
		for o := 0; o < originsPerAS; o++ {
			m.Track(addr.UDPAddr{Addr: addr.Addr{IA: dsts[a], Host: host}, Port: uint16(1024 + o)}, "scale.bench")
		}
	}
	m.Start()
	defer m.Stop()
	// Warm every path's series so the timed region measures steady-state
	// ingest, not first-sample map growth.
	for i, p := range all {
		m.Observe(p, time.Duration(16+i%8)*time.Millisecond)
	}
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(seed.Add(1)) * 7919
		for pb.Next() {
			// Vary path and sample so the EWMA/deviation and link
			// attribution do real work across shards.
			m.Observe(all[i%len(all)], time.Duration(16+i%8)*time.Millisecond)
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(ases*originsPerAS), "origins")
	b.ReportMetric(float64(m.TrackedPaths()), "paths")
}

// BenchmarkMonitorIngestContended is the worst case for passive ingest:
// every producer hammers paths to ONE destination AS, so every sample lands
// on the SAME shard. Each worker submits ack-flush-shaped bursts through
// ObserveBatch — the squic OnRTTSampleBatch delivery. The "ring"
// sub-benchmark is the lock-free ingest plane (bounded MPSC ring +
// flat-combining drain, one shard lock per batch, one batched call per
// sink); "direct" is the pre-ring baseline (one shard lock, one clock read,
// and a per-sample sink fan-out per sample), kept behind
// MonitorOptions.DirectIngest exactly for this A/B. Each op is one burst of
// 64 samples from every worker; ns/op therefore covers workers×64 samples
// (reported as samples/op). CI gates ring at 0 allocs/op and at ≤0.5× the
// direct baseline's ns/op.
func BenchmarkMonitorIngestContended(b *testing.B) {
	run := func(b *testing.B, direct bool) {
		const burst = 64
		workers := runtime.GOMAXPROCS(0)
		if workers < 4 {
			// Contention needs goroutines, not cores: on a single-core
			// runner GOMAXPROCS is 1 and the scheduler still interleaves
			// producers mid-burst.
			workers = 4
		}
		src, dst := topology.AS111, topology.AS211
		byIA := make(map[addr.IA][]*segment.Path)
		paths := make([]*segment.Path, workers)
		for i := range paths {
			paths[i] = &segment.Path{
				Src: src, Dst: dst,
				Hops: []segment.Hop{
					{IA: src, Egress: addr.IfID(40 + i)},
					{IA: dst, Ingress: addr.IfID(80 + i)},
				},
				Meta: segment.Metadata{Latency: time.Duration(8+i) * time.Millisecond},
			}
		}
		byIA[dst] = paths
		m := pan.NewMonitor(netsim.RealClock{}, func(ia addr.IA) []*segment.Path { return byIA[ia] }, pan.MonitorOptions{
			Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
				return time.Millisecond, nil
			},
			DirectIngest: direct,
		})
		// Each mode gets its era's sink wiring: the baseline subscribes
		// per-sample (the only pre-ring option); the ring side subscribes the
		// selector as a BatchSink, exactly as the dialer now wires selectors
		// — the batched fan-out is part of what this A/B measures.
		ls := pan.NewLatencySelector()
		if direct {
			m.Subscribe(ls.Report)
		} else {
			m.SubscribeBatch(ls)
		}
		m.Track(addr.UDPAddr{Addr: addr.Addr{IA: dst, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}, "contended.bench")

		start := make([]chan struct{}, workers)
		stop := make(chan struct{})
		var done sync.WaitGroup
		for w := 0; w < workers; w++ {
			start[w] = make(chan struct{}, 1)
			go func(w int) {
				p := paths[w]
				rtts := make([]time.Duration, burst)
				for i := range rtts {
					rtts[i] = time.Duration(16+i%8) * time.Millisecond
				}
				for {
					select {
					case <-stop:
						return
					case <-start[w]:
					}
					m.ObserveBatch(p, rtts)
					done.Done()
				}
			}(w)
		}
		defer close(stop)
		fire := func() {
			done.Add(workers)
			for w := range start {
				start[w] <- struct{}{}
			}
			done.Wait()
		}
		fire() // warm: series maps built, scratch buffers sized
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fire()
		}
		b.StopTimer()
		b.ReportMetric(float64(workers*burst), "samples/op")
		st := m.IngestStats()
		total := uint64((b.N + 1) * workers * burst)
		if direct {
			if st.Applied != total {
				b.Fatalf("direct mode applied %d of %d samples", st.Applied, total)
			}
			return
		}
		if st.Enqueued != total {
			b.Fatalf("enqueued %d of %d samples", st.Enqueued, total)
		}
		if got := st.Applied + st.Coalesced + st.Dropped + st.Untracked; got != st.Enqueued {
			b.Fatalf("accounting leak: %d of %d samples unaccounted (%+v)", st.Enqueued-got, st.Enqueued, st)
		}
		if st.Untracked != 0 {
			b.Fatalf("%d samples drained as untracked on a tracked destination", st.Untracked)
		}
		b.ReportMetric(float64(st.Applied)/float64(st.Batches), "samples/batch")
	}
	b.Run("ring", func(b *testing.B) { run(b, false) })
	b.Run("direct", func(b *testing.B) { run(b, true) })
}

// BenchmarkDialWarmPassive is the passive counterpart of
// BenchmarkDialAdaptive: the telemetry is warmed exclusively by passive
// samples (as live traffic would), never by a single active probe, and the
// adaptive dial still collapses to width 1 — fresh passively-fed estimates
// are as good as probed ones, at zero probe budget. The probes/dial metric
// records the (zero) active cost; width/dial the race decision.
func BenchmarkDialWarmPassive(b *testing.B) {
	clock, client, remote, paths := asymmetricDialWorld(b)
	ls := pan.NewLatencySelector()
	probes := 0
	monitor := client.NewMonitor(pan.MonitorOptions{
		BaseInterval: time.Second,
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			probes++
			return 0, context.DeadlineExceeded
		},
	})
	monitor.Subscribe(ls.Report)
	monitor.Track(remote, "bench.race")
	warm := func() {
		for _, p := range paths {
			monitor.Observe(p, 2*p.Meta.Latency)
		}
	}
	warm()
	d := client.NewDialer(pan.DialOptions{
		Selector:     ls,
		ServerName:   "bench.race",
		Timeout:      2 * time.Second,
		RaceWidth:    2,
		AdaptiveRace: true,
		Monitor:      monitor,
		Passive:      true,
	})
	defer d.Close()

	var virtual time.Duration
	width := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Invalidate() // force a fresh dial per iteration
		warm()         // steady traffic keeps the passive estimates fresh
		start := clock.Now()
		if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
			b.Fatal(err)
		}
		virtual += clock.Since(start)
		width += d.LastRace().Width
	}
	b.StopTimer()
	if probes != 0 {
		b.Fatalf("passively-warmed dial spent %d active probes, want 0", probes)
	}
	if width != b.N {
		b.Fatalf("adaptive width averaged %.2f over passive telemetry, want 1", float64(width)/float64(b.N))
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtms/dial")
	b.ReportMetric(float64(width)/float64(b.N), "width/dial")
	b.ReportMetric(float64(probes)/float64(b.N), "probes/dial")
}

// BenchmarkServerObserve measures the server half of the symmetric
// telemetry plane: one passive ack-RTT ingest attributed to the reverse path
// plus one steering evaluation (PickReverse over every known reverse path) —
// the work a serving host pays to build path health from its own traffic and
// keep replies on the monitor-ranked reverse path. The remote is a tracked
// client endpoint, exactly as ServerTelemetry tracks accepted connections.
func BenchmarkServerObserve(b *testing.B) {
	w := newBenchWorld(b)
	server := w.host(topology.AS211, "10.0.0.9")
	st := server.NewServerTelemetry(nil)
	m := st.Monitor()
	client := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS111, Host: netip.MustParseAddr("10.0.0.8")}, Port: 40000}
	m.Track(client, "")
	rev := server.Paths(topology.AS111)
	if len(rev) == 0 {
		b.Fatal("no reverse paths")
	}
	base := 2 * rev[0].Meta.Latency
	// One warmup iteration outside the measured region: the first pick pays
	// one-time telemetry map and reverse-path cache construction that the
	// steady state never sees again.
	m.Observe(rev[0], base)
	if _, ok := st.PickReverse(topology.AS111); !ok {
		b.Fatal("no steering pick despite fresh telemetry")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the sample so the EWMA/deviation arithmetic does real work.
		m.Observe(rev[0], base+time.Duration(i%8)*time.Millisecond)
		if _, ok := st.PickReverse(topology.AS111); !ok {
			b.Fatal("no steering pick despite fresh telemetry")
		}
	}
	b.StopTimer()
	if tel, ok := m.Telemetry(rev[0].Fingerprint()); !ok || tel.PassiveSamples != b.N+1 {
		b.Fatalf("server ingested %d of %d samples", tel.PassiveSamples, b.N+1)
	}
}

// BenchmarkSnapshotMerge measures one gossip exchange: exporting a warm
// monitor's LinkSnapshot (cache-served between ingests) and merging it into
// a cold peer — the recurring cost of link-state sharing per peer per round.
func BenchmarkSnapshotMerge(b *testing.B) {
	w := newBenchWorld(b)
	remote1 := w.listen(b, topology.AS211, "10.0.0.9", 7500, "bench.snap")
	remote2 := w.listen(b, topology.AS221, "10.0.0.10", 7501, "bench.snap")
	warmHost := w.host(topology.AS111, "10.0.0.8")
	warm := warmHost.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	warm.Track(remote1, "bench.snap")
	warm.Track(remote2, "bench.snap")
	warm.RunRound()
	cold := pan.NewMonitor(w.clock, warmHost.Paths, pan.MonitorOptions{BaseInterval: time.Second})
	applied := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := warm.ExportLinks()
		n, err := cold.ImportLinks(snap, 1)
		if err != nil {
			b.Fatal(err)
		}
		applied += n
	}
	b.ReportMetric(float64(applied)/float64(b.N), "estimates/merge")
}

// BenchmarkRouterTransit measures one end-to-end multi-hop forwarding pass
// with the flow-verified MAC cache warm (steady state of an established flow)
// versus cold (every transit router re-derives and re-verifies each hop MAC),
// isolating what the verdict cache is worth per packet.
func BenchmarkRouterTransit(b *testing.B) {
	run := func(b *testing.B, cold bool) {
		topo, infra, reg := controlPlane(b)
		clock := netsim.NewSimClock(during)
		dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
		if err != nil {
			b.Fatal(err)
		}
		delivered := 0
		dw.Router(topology.AS211).SetDeliveryHandler(func(p *dataplane.Packet) { delivered++; p.Release() })
		paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, during)
		tmpl, err := dataplane.TemplateFor(paths[0])
		if err != nil {
			b.Fatal(err)
		}
		routers := make([]*dataplane.Router, 0, len(paths[0].Hops))
		for _, h := range paths[0].Hops {
			routers = append(routers, dw.Router(h.IA))
		}
		pkt := &dataplane.Packet{
			Src:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS111, Host: netip.MustParseAddr("10.0.0.1")}, Port: 1},
			Dst:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 2},
			Hops:    paths[0].Hops,
			Payload: make([]byte, 900),
		}
		// Warmup pass (pool and verifier construction) before measuring.
		if err := dw.Router(topology.AS111).InjectTemplated(pkt, tmpl); err != nil {
			b.Fatal(err)
		}
		for clock.AdvanceToNext() {
		}
		delivered = 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cold {
				for _, r := range routers {
					r.InvalidateMACCache()
				}
			}
			if err := dw.Router(topology.AS111).InjectTemplated(pkt, tmpl); err != nil {
				b.Fatal(err)
			}
			for clock.AdvanceToNext() {
			}
		}
		if delivered != b.N {
			b.Fatalf("delivered %d of %d", delivered, b.N)
		}
	}
	b.Run("warm", func(b *testing.B) { run(b, false) })
	b.Run("cold", func(b *testing.B) { run(b, true) })
}

// BenchmarkDataplaneForwarding measures router validation+forwarding of one
// packet across the full inter-ISD path (virtual network, real CPU cost).
func BenchmarkDataplaneForwarding(b *testing.B) {
	topo, infra, reg := controlPlane(b)
	clock := netsim.NewSimClock(during)
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	dw.Router(topology.AS211).SetDeliveryHandler(func(p *dataplane.Packet) { delivered++; p.Release() })
	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, during)
	tmpl, err := dataplane.TemplateFor(paths[0])
	if err != nil {
		b.Fatal(err)
	}
	pkt := &dataplane.Packet{
		Src:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS111, Host: netip.MustParseAddr("10.0.0.1")}, Port: 1},
		Dst:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 2},
		Hops:    paths[0].Hops,
		Payload: make([]byte, 900), // header + payload must fit the 1400 B MTU
	}
	// One warmup packet outside the measured region: the first forwarding
	// pass pays one-time MAC/key cache and buffer/packet pool construction,
	// which at CI's -benchtime=1x would otherwise drown the steady-state
	// cost the trajectory tracks.
	if err := dw.Router(topology.AS111).InjectTemplated(pkt, tmpl); err != nil {
		b.Fatal(err)
	}
	for clock.AdvanceToNext() {
	}
	delivered = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dw.Router(topology.AS111).InjectTemplated(pkt, tmpl); err != nil {
			b.Fatal(err)
		}
		// Drain the in-flight hops deterministically.
		for clock.AdvanceToNext() {
		}
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkPacketTemplate contrasts template-patched marshaling (the snet
// send path: pre-encoded hop section copied, only header/addresses/payload
// written per packet) against re-encoding the full header with Marshal.
func BenchmarkPacketTemplate(b *testing.B) {
	_, _, reg := controlPlane(b)
	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, during)
	pkt := &dataplane.Packet{
		Src:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS111, Host: netip.MustParseAddr("10.0.0.1")}, Port: 1},
		Dst:     addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 2},
		Hops:    paths[0].Hops,
		Payload: make([]byte, 1000),
	}
	b.Run("full", func(b *testing.B) {
		// Warm once off the timer: under -benchtime=1x the measured
		// iteration IS the first call, and cold-start work (buffer growth,
		// one-time setup) would otherwise swamp the per-packet cost.
		if _, err := pkt.Marshal(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pkt.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("templated", func(b *testing.B) {
		tmpl, err := dataplane.TemplateFor(paths[0])
		if err != nil {
			b.Fatal(err)
		}
		// Warm the buffer pool off the timer: the first MarshalTemplated
		// pays the pool's initial allocation, which under -benchtime=1x
		// made the templated path read SLOWER than full marshaling.
		if buf, err := pkt.MarshalTemplated(tmpl); err != nil {
			b.Fatal(err)
		} else {
			netsim.PutBuf(buf)
		}
		b.ReportAllocs()
		b.SetBytes(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, err := pkt.MarshalTemplated(tmpl)
			if err != nil {
				b.Fatal(err)
			}
			netsim.PutBuf(buf)
		}
	})
}

// BenchmarkStatsSummarize measures five-number summaries on a 1000-sample
// distribution.
func BenchmarkStatsSummarize(b *testing.B) {
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = float64(i * 7 % 997)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stats.Summarize(sample)
		if s.N != 1000 {
			b.Fatal("bad summary")
		}
	}
}
