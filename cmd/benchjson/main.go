// Command benchjson converts `go test -bench` output on stdin into the
// repository's bench-trajectory JSON (BENCH_<n>.json): one entry per
// benchmark with ns/op and every custom metric, so perf regressions are
// trackable across PRs by diffing small committed files.
//
//	go test -bench=. -benchtime=1x -run NONE . | go run ./cmd/benchjson -pr 3 > BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Trajectory is the BENCH_<n>.json document.
type Trajectory struct {
	PR         int               `json:"pr"`
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number stamped into the document")
	flag.Parse()

	out := Trajectory{PR: *pr, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue // goos/goarch/cpu/pkg/PASS lines identify the runner only
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  1234 ns/op  [value unit]...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		r := Result{NsPerOp: ns, Iters: iters}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
		out.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
