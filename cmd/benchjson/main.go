// Command benchjson converts `go test -bench` output on stdin into the
// repository's bench-trajectory JSON (BENCH_<n>.json): one entry per
// benchmark with ns/op and every custom metric, so perf regressions are
// trackable across PRs by diffing small committed files.
//
//	go test -bench=. -benchtime=1x -run NONE . | go run ./cmd/benchjson -pr 3 > BENCH_3.json
//
// Repeatable -gate Name=N flags turn the converter into an allocation
// budget check: each named benchmark must report allocs/op (b.ReportAllocs)
// at or under N, or the exit status is nonzero — wired into CI's
// bench-smoke step so alloc regressions on gated hot paths fail the build.
//
// Repeatable -gate-min Name/metric=X flags are the throughput mirror: the
// named benchmark's custom metric (everything after the first '/' — metric
// names may themselves contain slashes, e.g. MB/s) must be at least X.
//
// Repeatable -gate-max Name=N flags put a ceiling on a benchmark's ns/op,
// and -gate-rel "A<=B*F" flags tie two benchmarks together: A's ns/op must
// stay at or under B's times F — how CI asserts the optimized variant of a
// pair actually beats the baseline it rode in with.
//
// -diff-prior DIR compares the parsed results against the highest-numbered
// committed BENCH_<n>.json below -pr in DIR and prints every shared
// benchmark whose ns/op regressed by more than 1.5x — to stderr and, when
// $GITHUB_STEP_SUMMARY is set, as a markdown table in the job summary. The
// diff is informational: single-iteration smoke numbers are too noisy to
// fail the build on, but not too noisy to read.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Trajectory is the BENCH_<n>.json document.
type Trajectory struct {
	PR         int               `json:"pr"`
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// allocGate is one -gate entry: the benchmark's allocs/op budget.
type allocGate struct {
	name string
	max  float64
}

// allocGates implements flag.Value for repeatable -gate Name=N flags.
type allocGates []allocGate

func (g *allocGates) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = fmt.Sprintf("%s=%g", e.name, e.max)
	}
	return strings.Join(parts, ",")
}

func (g *allocGates) Set(v string) error {
	name, lim, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=N, got %q", v)
	}
	max, err := strconv.ParseFloat(lim, 64)
	if err != nil {
		return fmt.Errorf("bad limit in %q: %v", v, err)
	}
	*g = append(*g, allocGate{name: name, max: max})
	return nil
}

// minGate is one -gate-min entry: a floor on a benchmark's custom metric.
type minGate struct {
	name   string
	metric string
	min    float64
}

// minGates implements flag.Value for repeatable -gate-min Name/metric=X
// flags. The benchmark name ends at the FIRST '/': metric names may contain
// slashes themselves (MB/s).
type minGates []minGate

func (g *minGates) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = fmt.Sprintf("%s/%s=%g", e.name, e.metric, e.min)
	}
	return strings.Join(parts, ",")
}

func (g *minGates) Set(v string) error {
	spec, lim, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want Name/metric=X, got %q", v)
	}
	name, metric, ok := strings.Cut(spec, "/")
	if !ok || name == "" || metric == "" {
		return fmt.Errorf("want Name/metric=X, got %q", v)
	}
	min, err := strconv.ParseFloat(lim, 64)
	if err != nil {
		return fmt.Errorf("bad floor in %q: %v", v, err)
	}
	*g = append(*g, minGate{name: name, metric: metric, min: min})
	return nil
}

// check enforces every floor; missing benchmarks or metrics fail like
// exceeded floors do.
func (g minGates) check(benchmarks map[string]Result) (failed bool) {
	for _, e := range g {
		r, ok := benchmarks[e.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate-min %s: benchmark missing from input\n", e.name)
			failed = true
			continue
		}
		v, ok := r.Metrics[e.metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate-min %s: no %s metric in output\n", e.name, e.metric)
			failed = true
			continue
		}
		if v < e.min {
			fmt.Fprintf(os.Stderr, "benchjson: gate-min %s: %g %s below floor %g\n", e.name, v, e.metric, e.min)
			failed = true
		}
	}
	return failed
}

// nsGate is one -gate-max entry: a ceiling on a benchmark's ns/op.
type nsGate struct {
	name string
	max  float64
}

// nsGates implements flag.Value for repeatable -gate-max Name=N flags.
type nsGates []nsGate

func (g *nsGates) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = fmt.Sprintf("%s=%g", e.name, e.max)
	}
	return strings.Join(parts, ",")
}

func (g *nsGates) Set(v string) error {
	name, lim, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=N, got %q", v)
	}
	max, err := strconv.ParseFloat(lim, 64)
	if err != nil {
		return fmt.Errorf("bad ceiling in %q: %v", v, err)
	}
	*g = append(*g, nsGate{name: name, max: max})
	return nil
}

// check enforces every ns/op ceiling; missing benchmarks fail too.
func (g nsGates) check(benchmarks map[string]Result) (failed bool) {
	for _, e := range g {
		r, ok := benchmarks[e.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate-max %s: benchmark missing from input\n", e.name)
			failed = true
			continue
		}
		if r.NsPerOp > e.max {
			fmt.Fprintf(os.Stderr, "benchjson: gate-max %s: %g ns/op exceeds ceiling %g\n", e.name, r.NsPerOp, e.max)
			failed = true
		}
	}
	return failed
}

// relGate is one -gate-rel entry: benchmark a's ns/op must stay at or
// under benchmark b's ns/op scaled by factor.
type relGate struct {
	a, b   string
	factor float64
}

// relGates implements flag.Value for repeatable -gate-rel "A<=B*F" flags.
// Both sides are FULL benchmark names (sub-benchmark slashes included).
type relGates []relGate

func (g *relGates) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = fmt.Sprintf("%s<=%s*%g", e.a, e.b, e.factor)
	}
	return strings.Join(parts, ",")
}

func (g *relGates) Set(v string) error {
	a, rest, ok := strings.Cut(v, "<=")
	if !ok || a == "" {
		return fmt.Errorf(`want "A<=B*F", got %q`, v)
	}
	b, f, ok := strings.Cut(rest, "*")
	if !ok || b == "" {
		return fmt.Errorf(`want "A<=B*F", got %q`, v)
	}
	factor, err := strconv.ParseFloat(f, 64)
	if err != nil || factor <= 0 {
		return fmt.Errorf("bad factor in %q: %v", v, err)
	}
	*g = append(*g, relGate{a: a, b: b, factor: factor})
	return nil
}

// check enforces every relative gate; either side missing fails.
func (g relGates) check(benchmarks map[string]Result) (failed bool) {
	for _, e := range g {
		ra, okA := benchmarks[e.a]
		rb, okB := benchmarks[e.b]
		if !okA || !okB {
			for name, ok := range map[string]bool{e.a: okA, e.b: okB} {
				if !ok {
					fmt.Fprintf(os.Stderr, "benchjson: gate-rel %s<=%s*%g: benchmark %s missing from input\n", e.a, e.b, e.factor, name)
				}
			}
			failed = true
			continue
		}
		if limit := rb.NsPerOp * e.factor; ra.NsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: gate-rel %s: %g ns/op exceeds %s*%g = %g\n", e.a, ra.NsPerOp, e.b, e.factor, limit)
			failed = true
		}
	}
	return failed
}

// priorRegressionFactor is the informational-diff threshold: shared
// benchmarks whose ns/op grew past this multiple of the prior trajectory
// get printed. Smoke runs are single-iteration, so small drift is noise.
const priorRegressionFactor = 1.5

// diffPrior locates the highest-numbered BENCH_<n>.json below pr in dir,
// compares shared benchmarks' ns/op, and reports regressions beyond
// priorRegressionFactor — to stderr always, and into $GITHUB_STEP_SUMMARY
// when running under CI. Informational only: never fails the run.
func diffPrior(dir string, pr int, benchmarks map[string]Result) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: diff-prior: %v\n", err)
		return
	}
	best, bestPath := -1, ""
	for _, ent := range entries {
		var n int
		if _, err := fmt.Sscanf(ent.Name(), "BENCH_%d.json", &n); err != nil {
			continue
		}
		if ent.Name() != fmt.Sprintf("BENCH_%d.json", n) {
			continue
		}
		if n < pr && n > best {
			best, bestPath = n, filepath.Join(dir, ent.Name())
		}
	}
	if best < 0 {
		fmt.Fprintf(os.Stderr, "benchjson: diff-prior: no BENCH_<n>.json below %d in %s\n", pr, dir)
		return
	}
	raw, err := os.ReadFile(bestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: diff-prior: %v\n", err)
		return
	}
	var prior Trajectory
	if err := json.Unmarshal(raw, &prior); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: diff-prior %s: %v\n", bestPath, err)
		return
	}
	type reg struct {
		name     string
		was, now float64
	}
	var regs []reg
	shared := 0
	for name, r := range benchmarks {
		p, ok := prior.Benchmarks[name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		shared++
		if r.NsPerOp > p.NsPerOp*priorRegressionFactor {
			regs = append(regs, reg{name: name, was: p.NsPerOp, now: r.NsPerOp})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].now/regs[i].was > regs[j].now/regs[j].was })
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: diff-prior: no >%.1fx ns/op regressions vs %s (%d shared benchmarks)\n", priorRegressionFactor, bestPath, shared)
		return
	}
	fmt.Fprintf(os.Stderr, "benchjson: diff-prior: %d of %d shared benchmarks regressed >%.1fx vs %s:\n", len(regs), shared, priorRegressionFactor, bestPath)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %-40s %12.0f -> %12.0f ns/op (%.1fx)\n", r.name, r.was, r.now, r.now/r.was)
	}
	summary := os.Getenv("GITHUB_STEP_SUMMARY")
	if summary == "" {
		return
	}
	f, err := os.OpenFile(summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: diff-prior: job summary: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "### Bench regressions vs %s (>%.1fx ns/op, informational)\n\n", filepath.Base(bestPath), priorRegressionFactor)
	fmt.Fprintf(f, "| benchmark | was (ns/op) | now (ns/op) | factor |\n|---|---:|---:|---:|\n")
	for _, r := range regs {
		fmt.Fprintf(f, "| %s | %.0f | %.0f | %.1fx |\n", r.name, r.was, r.now, r.now/r.was)
	}
	fmt.Fprintln(f)
}

// check enforces every gate against the parsed results, reporting each
// violation; a missing benchmark or one not reporting allocs/op fails too —
// a silently vanished gate is itself a regression.
func (g allocGates) check(benchmarks map[string]Result) (failed bool) {
	for _, e := range g {
		r, ok := benchmarks[e.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: benchmark missing from input\n", e.name)
			failed = true
			continue
		}
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: no allocs/op metric (missing b.ReportAllocs?)\n", e.name)
			failed = true
			continue
		}
		if allocs > e.max {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: %g allocs/op exceeds budget %g\n", e.name, allocs, e.max)
			failed = true
		}
	}
	return failed
}

func main() {
	pr := flag.Int("pr", 0, "PR number stamped into the document")
	var gates allocGates
	flag.Var(&gates, "gate", "allocation budget Name=N (repeatable): fail unless the named benchmark reports allocs/op <= N")
	var floors minGates
	flag.Var(&floors, "gate-min", "metric floor Name/metric=X (repeatable): fail unless the named benchmark reports metric >= X")
	var ceilings nsGates
	flag.Var(&ceilings, "gate-max", "ns/op ceiling Name=N (repeatable): fail unless the named benchmark runs in <= N ns/op")
	var rels relGates
	flag.Var(&rels, "gate-rel", `relative gate "A<=B*F" (repeatable): fail unless benchmark A's ns/op <= benchmark B's ns/op * F`)
	diffDir := flag.String("diff-prior", "", "directory holding committed BENCH_<n>.json files: report >1.5x ns/op regressions vs the latest one below -pr (informational)")
	flag.Parse()

	out := Trajectory{PR: *pr, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue // goos/goarch/cpu/pkg/PASS lines identify the runner only
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  1234 ns/op  [value unit]...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		r := Result{NsPerOp: ns, Iters: iters}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
		out.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *diffDir != "" {
		diffPrior(*diffDir, *pr, out.Benchmarks)
	}
	failed := gates.check(out.Benchmarks)
	if floors.check(out.Benchmarks) {
		failed = true
	}
	if ceilings.check(out.Benchmarks) {
		failed = true
	}
	if rels.check(out.Benchmarks) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
