// Command benchjson converts `go test -bench` output on stdin into the
// repository's bench-trajectory JSON (BENCH_<n>.json): one entry per
// benchmark with ns/op and every custom metric, so perf regressions are
// trackable across PRs by diffing small committed files.
//
//	go test -bench=. -benchtime=1x -run NONE . | go run ./cmd/benchjson -pr 3 > BENCH_3.json
//
// Repeatable -gate Name=N flags turn the converter into an allocation
// budget check: each named benchmark must report allocs/op (b.ReportAllocs)
// at or under N, or the exit status is nonzero — wired into CI's
// bench-smoke step so alloc regressions on gated hot paths fail the build.
//
// Repeatable -gate-min Name/metric=X flags are the throughput mirror: the
// named benchmark's custom metric (everything after the first '/' — metric
// names may themselves contain slashes, e.g. MB/s) must be at least X.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Trajectory is the BENCH_<n>.json document.
type Trajectory struct {
	PR         int               `json:"pr"`
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// allocGate is one -gate entry: the benchmark's allocs/op budget.
type allocGate struct {
	name string
	max  float64
}

// allocGates implements flag.Value for repeatable -gate Name=N flags.
type allocGates []allocGate

func (g *allocGates) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = fmt.Sprintf("%s=%g", e.name, e.max)
	}
	return strings.Join(parts, ",")
}

func (g *allocGates) Set(v string) error {
	name, lim, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=N, got %q", v)
	}
	max, err := strconv.ParseFloat(lim, 64)
	if err != nil {
		return fmt.Errorf("bad limit in %q: %v", v, err)
	}
	*g = append(*g, allocGate{name: name, max: max})
	return nil
}

// minGate is one -gate-min entry: a floor on a benchmark's custom metric.
type minGate struct {
	name   string
	metric string
	min    float64
}

// minGates implements flag.Value for repeatable -gate-min Name/metric=X
// flags. The benchmark name ends at the FIRST '/': metric names may contain
// slashes themselves (MB/s).
type minGates []minGate

func (g *minGates) String() string {
	parts := make([]string, len(*g))
	for i, e := range *g {
		parts[i] = fmt.Sprintf("%s/%s=%g", e.name, e.metric, e.min)
	}
	return strings.Join(parts, ",")
}

func (g *minGates) Set(v string) error {
	spec, lim, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want Name/metric=X, got %q", v)
	}
	name, metric, ok := strings.Cut(spec, "/")
	if !ok || name == "" || metric == "" {
		return fmt.Errorf("want Name/metric=X, got %q", v)
	}
	min, err := strconv.ParseFloat(lim, 64)
	if err != nil {
		return fmt.Errorf("bad floor in %q: %v", v, err)
	}
	*g = append(*g, minGate{name: name, metric: metric, min: min})
	return nil
}

// check enforces every floor; missing benchmarks or metrics fail like
// exceeded floors do.
func (g minGates) check(benchmarks map[string]Result) (failed bool) {
	for _, e := range g {
		r, ok := benchmarks[e.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate-min %s: benchmark missing from input\n", e.name)
			failed = true
			continue
		}
		v, ok := r.Metrics[e.metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate-min %s: no %s metric in output\n", e.name, e.metric)
			failed = true
			continue
		}
		if v < e.min {
			fmt.Fprintf(os.Stderr, "benchjson: gate-min %s: %g %s below floor %g\n", e.name, v, e.metric, e.min)
			failed = true
		}
	}
	return failed
}

// check enforces every gate against the parsed results, reporting each
// violation; a missing benchmark or one not reporting allocs/op fails too —
// a silently vanished gate is itself a regression.
func (g allocGates) check(benchmarks map[string]Result) (failed bool) {
	for _, e := range g {
		r, ok := benchmarks[e.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: benchmark missing from input\n", e.name)
			failed = true
			continue
		}
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: no allocs/op metric (missing b.ReportAllocs?)\n", e.name)
			failed = true
			continue
		}
		if allocs > e.max {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: %g allocs/op exceeds budget %g\n", e.name, allocs, e.max)
			failed = true
		}
	}
	return failed
}

func main() {
	pr := flag.Int("pr", 0, "PR number stamped into the document")
	var gates allocGates
	flag.Var(&gates, "gate", "allocation budget Name=N (repeatable): fail unless the named benchmark reports allocs/op <= N")
	var floors minGates
	flag.Var(&floors, "gate-min", "metric floor Name/metric=X (repeatable): fail unless the named benchmark reports metric >= X")
	flag.Parse()

	out := Trajectory{PR: *pr, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue // goos/goarch/cpu/pkg/PASS lines identify the runner only
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  1234 ns/op  [value unit]...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		r := Result{NsPerOp: ns, Iters: iters}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
		out.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	failed := gates.check(out.Benchmarks)
	if floors.check(out.Benchmarks) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
