// Command browsersim drives the simulated browser through the full
// extension + SKIP proxy + SCION pipeline against the demo world and prints
// a page-load report: per-resource transport (SCION vs IP), path
// fingerprints, policy compliance, the UI indicator, and the PLT.
//
//	browsersim -url http://www.scion.example/index.html
//	browsersim -url http://www.scion.example/index.html -block-isd 2
//	browsersim -url http://www.scion.example/index.html -block-isd 2 -strict
//	browsersim -url http://www.legacy.example/index.html -no-extension
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tango/internal/addr"
	"tango/internal/browser"
	"tango/internal/experiments"
	"tango/internal/policy"
)

func main() {
	url := flag.String("url", "http://www.scion.example/index.html", "page to load")
	blockISD := flag.Int("block-isd", 0, "geofence: block this ISD (0 = none)")
	strict := flag.Bool("strict", false, "enable strict mode for all hosts")
	noExt := flag.Bool("no-extension", false, "disable the extension (direct BGP/IP fetching)")
	raceWidth := flag.Int("race-width", 0, "race this many top-ranked paths per SCION connection")
	probeInterval := flag.Duration("probe-interval", 0, "background path telemetry probe interval (0 = off)")
	adaptiveRace := flag.Bool("adaptive-race", false, "tune the race width from telemetry (needs -probe-interval)")
	passive := flag.Bool("passive", true, "feed live-traffic RTTs into the telemetry monitor as zero-cost samples (needs -probe-interval)")
	flag.Parse()

	w, client, err := experiments.Demo(1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building world: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	if *blockISD > 0 {
		fence := policy.NewBlockGeofence(addr.ISD(*blockISD))
		client.Extension.SetGeofence(fence)
		fmt.Printf("geofence: %s\n", fence)
	}
	if *strict {
		client.Extension.SetStrictAll(true)
		fmt.Println("strict mode: on")
	}
	if *noExt {
		client.Browser.SetExtensionEnabled(false)
		fmt.Println("extension: disabled (BGP/IP only)")
	}
	if *raceWidth > 1 {
		client.Extension.SetRace(*raceWidth, 0)
		fmt.Printf("racing: top %d ranked paths per connection\n", *raceWidth)
	}
	if *probeInterval > 0 {
		client.Extension.SetProbing(*probeInterval)
		client.Extension.SetPassive(*passive)
		fmt.Printf("probing: telemetry monitor at %v base interval\n", *probeInterval)
		if *passive {
			fmt.Println("passive telemetry: browsed origins sustain their own estimates for free")
		}
	}
	if *adaptiveRace {
		if *probeInterval <= 0 {
			fmt.Fprintln(os.Stderr, "-adaptive-race needs -probe-interval")
			os.Exit(1)
		}
		client.Extension.SetAdaptiveRace(true)
		fmt.Println("adaptive racing: width picked per dial from telemetry")
	}

	pl, err := client.Browser.LoadPage(context.Background(), *url)
	if *probeInterval > 0 {
		// Let the monitor's jittered schedule complete a probe round so the
		// telemetry printout below shows live RTTs and link estimates.
		w.Clock.Sleep(*probeInterval + *probeInterval/4)
	}
	if pl != nil {
		fmt.Printf("\nPage:      %s\n", pl.URL)
		fmt.Printf("PLT:       %v\n", pl.PLT)
		fmt.Printf("Indicator: %s (policy compliant: %v, blocked: %d)\n", pl.Indicator, pl.Compliant, pl.Blocked)
		fmt.Printf("\n%-52s %-7s %-6s %s\n", "resource", "status", "via", "compliant")
		resources := append([]browser.ResourceResult{pl.Main}, pl.Resources...)
		for _, res := range resources {
			status := fmt.Sprintf("%d", res.Status)
			if res.Blocked {
				status = "BLOCKED"
			} else if res.Err != "" {
				status = "ERR"
			}
			fmt.Printf("%-52s %-7s %-6s %v\n", trunc(res.URL, 52), status, res.Via, res.Compliant)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nload failed: %v\n", err)
		os.Exit(1)
	}

	snap := client.Proxy.Stats().Snapshot()
	fmt.Printf("\nproxy stats: %v\n", snap.ByVia)
	for _, p := range snap.Paths {
		fmt.Printf("  path %s: %d requests, %d bytes, compliant=%v\n", p.Fingerprint, p.Requests, p.Bytes, p.Compliant)
	}
	// Per-path liveness from the extension's telemetry feed (paper §4.2):
	// what the UI would render next to each path.
	for _, h := range client.Extension.PathHealth() {
		state := "live"
		if h.Down {
			state = "DOWN"
		}
		if h.RTT > 0 {
			fmt.Printf("  path %s: %s, rtt=%v\n", h.Fingerprint, state, h.RTT)
		} else {
			fmt.Printf("  path %s: %s\n", h.Fingerprint, state)
		}
	}
	// Per-link congestion from the monitor's probe decomposition: where
	// the variance lives, not just which paths feel it.
	for _, l := range client.Extension.LinkHealth() {
		fmt.Printf("  link %s <-> %s: excess=%v dev=%v sharers=%d\n", l.A, l.B, l.Congestion, l.Dev, l.Sharers)
	}
	// Passive-vs-probe sample split per origin: which destinations pay for
	// their own telemetry with live traffic and which draw on the budget.
	for host, split := range client.Extension.TelemetrySamples() {
		fmt.Printf("  origin %s: %d passive / %d probe samples\n", host, split.Passive, split.Probes)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
