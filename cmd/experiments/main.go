// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed:
//
//	experiments -run all -runs 30
//	experiments -run fig3
//	experiments -run table1
//
// Output is the terminal equivalent of the paper's box plots plus the
// decision-layer matrix of Table 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"tango/internal/experiments"
	"tango/internal/layermodel"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table1, fig3, fig5, fig6, ablation, or all")
	runs := flag.Int("runs", 30, "samples per box plot")
	flag.Parse()

	selected := map[string]bool{}
	if *run == "all" {
		for _, k := range []string{"table1", "fig3", "fig5", "fig6", "ablation"} {
			selected[k] = true
		}
	} else {
		selected[*run] = true
	}

	if selected["table1"] {
		fmt.Println("Table 1 — Properties enabled by path-aware networking,")
		fmt.Println("and the layer that can meaningfully select on them")
		fmt.Println("(● meaningful, ◐ possible/no particular benefit, · not appropriate)")
		fmt.Println()
		fmt.Println(layermodel.Render())
	}
	type runner struct {
		key string
		fn  func(int) (*experiments.Figure, error)
	}
	for _, r := range []runner{
		{"fig3", experiments.RunFig3},
		{"fig5", experiments.RunFig5},
		{"fig6", experiments.RunFig6},
		{"ablation", experiments.RunFig3Ablation},
	} {
		if !selected[r.key] {
			continue
		}
		fig, err := r.fn(*runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.key, err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}
