// Command reverseproxy demonstrates the paper's SCION reverse proxy: an
// IP-only origin gains SCION reachability through a reverse proxy deployed
// in a nearby AS ("we have implemented a simple reverse proxy to add SCION
// support to web servers", paper §5.1).
//
// The demo has two parts. First it fetches the origin directly over the
// (slow) legacy route and over SCION via the reverse proxy, and compares.
// Then it stands up several clients at once — the load the reverse proxy
// actually exists to serve — and spreads their traffic across the peering
// links: every client's dialer shares ONE pan.Monitor (the telemetry
// plane), each rotates over the live paths with a RoundRobinSelector whose
// health feedback comes from the shared probes, and the per-path usage
// statistics plus the monitor's link congestion view show the spread.
//
//	reverseproxy -clients 3 -requests 4 -probe-budget 16 -adaptive-race
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"tango/internal/experiments"
	"tango/internal/pan"
	"tango/internal/proxy"
	"tango/internal/topology"
	"tango/internal/webserver"
)

func main() {
	clients := flag.Int("clients", 3, "concurrent clients to spread across the peering links")
	requests := flag.Int("requests", 4, "page loads per client")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "shared monitor's base per-path probe interval")
	probeBudget := flag.Float64("probe-budget", 0, "global probes/sec cap across all tracked paths (0 = pan default)")
	adaptiveRace := flag.Bool("adaptive-race", false, "auto-tune each client's race width from the shared telemetry")
	passive := flag.Bool("passive", true, "stream the fleet's live-traffic RTTs into the shared monitor as zero-cost samples, suppressing active probes for origins with traffic")
	peers := flag.Bool("peers", false, "give each client its OWN monitor and gossip LinkStats snapshots between them over HTTP, instead of sharing one monitor in-process")
	gossipInterval := flag.Duration("gossip-interval", 5*time.Second, "snapshot exchange interval between peer monitors (with -peers)")
	stripeWidth := flag.Int("stripe-width", 0, "after the PLT comparison, fetch the demo's large download striped over this many link-disjoint paths through the reverse proxy (0 = skip)")
	flag.Parse()

	w, client, err := experiments.Demo(4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building world: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	const page = "http://www.proxied.example/index.html"

	// Part 1: one client, SCION vs legacy.
	pl, err := client.Browser.LoadPage(context.Background(), page)
	if err != nil {
		fmt.Fprintf(os.Stderr, "SCION load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("via SCION reverse proxy: PLT %-12v indicator %s\n", pl.PLT, pl.Indicator)

	client.Browser.SetExtensionEnabled(false)
	pl2, err := client.Browser.LoadPage(context.Background(), page)
	if err != nil {
		fmt.Fprintf(os.Stderr, "IP load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("via legacy BGP/IP:       PLT %-12v indicator %s\n", pl2.PLT, pl2.Indicator)

	if pl.PLT < pl2.PLT {
		fmt.Printf("\nSCION wins by %v: path-aware forwarding routes around the slow BGP route,\n", pl2.PLT-pl.PLT)
		fmt.Println("even though the origin itself never deployed SCION (the reverse proxy did).")
	} else {
		fmt.Printf("\nlegacy IP wins by %v on this route.\n", pl.PLT-pl2.PLT)
	}

	// Optional: striped large download through the reverse proxy. Range
	// requests flow through the reverse proxy to the origin, so the striped
	// client can pull one resource as concurrent segments over disjoint paths
	// even though the origin itself never deployed SCION.
	if *stripeWidth > 0 {
		client.Proxy.SetStripe(&pan.StripeOptions{Width: *stripeWidth})
		url := fmt.Sprintf("http://www.proxied.example%s", experiments.BigResourcePath)
		fmt.Printf("\nfetching %s striped over %d paths...\n", url, *stripeWidth)
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		client.Proxy.ServeHTTP(rec, req)
		res := rec.Result()
		n, _ := io.Copy(io.Discard, res.Body)
		res.Body.Close()
		fmt.Printf("  status=%d via=%s bytes=%d striped=%d\n",
			res.StatusCode, res.Header.Get(proxy.HeaderVia), n,
			client.Proxy.Stats().Snapshot().Striped)
		for dst, pipes := range client.Proxy.StripeStatus() {
			fmt.Printf("  stripe set %s:\n", dst)
			for _, ps := range pipes {
				state := "live"
				if ps.Dead {
					state = "DEAD"
				}
				fmt.Printf("    %s  %-4s bytes=%-8d segments=%-4d cwnd=%-3d srtt=%dms\n",
					ps.Fingerprint, state, ps.Bytes, ps.Segments, ps.Cwnd, ps.SRTT.Milliseconds())
			}
		}
	}

	// Part 2: many clients, one telemetry plane — shared in-process by
	// default, or (with -peers) one monitor per client kept warm by
	// LinkStats snapshot gossip over the legacy network: the deployment
	// shape where skip proxies are separate processes on separate machines
	// that still pool what their vantage points see.
	if *peers {
		fmt.Printf("\n== spreading %d clients, one monitor EACH, gossiping snapshots every %v ==\n", *clients, *gossipInterval)
	} else {
		fmt.Printf("\n== spreading %d clients across the peering links ==\n", *clients)
	}
	var shared *pan.Monitor
	if !*peers {
		vantage := w.PANHost(topology.AS111, "10.0.9.250")
		shared = vantage.NewMonitor(pan.MonitorOptions{
			BaseInterval: *probeInterval,
			ProbeBudget:  *probeBudget,
		})
		shared.Start()
	}

	type bundle struct {
		c   *experiments.Client
		rr  *pan.RoundRobinSelector
		mon *pan.Monitor
		g   *webserver.Gossiper
	}
	peerURL := func(i int) string { return fmt.Sprintf("rp-peer-%d:8600", i+1) }
	fleet := make([]bundle, 0, *clients)
	for i := 0; i < *clients; i++ {
		monitor := shared
		if *peers {
			host := w.PANHost(topology.AS111, fmt.Sprintf("10.0.9.%d", 230+i))
			monitor = host.NewMonitor(pan.MonitorOptions{
				BaseInterval: *probeInterval,
				ProbeBudget:  *probeBudget,
			})
			monitor.Start()
			if _, err := webserver.ServeIP(w.Legacy, peerURL(i), webserver.SnapshotHandler(monitor)); err != nil {
				fmt.Fprintf(os.Stderr, "peer %d snapshot server: %v\n", i+1, err)
				os.Exit(1)
			}
		}
		c, err := w.NewClient(experiments.ClientConfig{
			IA:           topology.AS111,
			IP:           fmt.Sprintf("10.0.7.%d", i+1),
			LegacyName:   fmt.Sprintf("rp-client-%d", i+1),
			Monitor:      monitor, // shared, or this client's own gossiped one
			RaceWidth:    3,
			AdaptiveRace: *adaptiveRace,
			Passive:      *passive,
			Seed:         int64(i + 1),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "client %d: %v\n", i+1, err)
			os.Exit(1)
		}
		defer c.Proxy.Close()
		// Rotation over a hotspot-aware base ranking: the shared probes
		// feed health and latency; served requests advance the rotation.
		rr := pan.NewRoundRobinSelector(pan.NewHotspotSelector(monitor))
		c.Extension.SetSelector(rr)
		fleet = append(fleet, bundle{c: c, rr: rr, mon: monitor})
	}
	if *peers {
		// Full-mesh gossip: every client pulls every other peer's snapshot.
		for i := range fleet {
			var others []string
			for j := range fleet {
				if j != i {
					others = append(others, peerURL(j))
				}
			}
			httpClient := &http.Client{Transport: &http.Transport{
				DialContext: func(ctx context.Context, network, hostport string) (net.Conn, error) {
					return w.Legacy.Dial(ctx, fmt.Sprintf("rp-client-%d", i+1), hostport)
				},
				DisableCompression: true,
			}}
			g := webserver.NewGossiper(w.Clock, fleet[i].mon, httpClient, others, *gossipInterval, 1)
			g.Start()
			fleet[i].g = g
		}
	}

	for r := 0; r < *requests; r++ {
		for i, b := range fleet {
			if r > 0 {
				// Rotation advances per dialed connection; drop the pooled
				// connection so every load dials afresh and the spread is
				// visible in the path-usage statistics.
				b.c.Proxy.Dialer().Invalidate()
			}
			if _, err := b.c.Browser.LoadPage(context.Background(), page); err != nil {
				fmt.Fprintf(os.Stderr, "client %d load %d: %v\n", i+1, r+1, err)
			}
		}
	}
	// Give the schedules a couple of jittered probe rounds (and, with
	// -peers, at least one gossip exchange).
	settle := 2 * *probeInterval
	if *peers && settle < 2**gossipInterval {
		settle = 2 * *gossipInterval
	}
	w.Clock.Sleep(settle)

	if shared != nil {
		fmt.Printf("telemetry plane: %d destinations, %d paths tracked for %d dialers\n",
			shared.TargetCount(), shared.TrackedPaths(), len(fleet))
	}
	fmt.Println("per-client path usage (RoundRobinSelector statistics, the feedback signal):")
	for i, b := range fleet {
		snap := b.c.Proxy.Stats().Snapshot()
		fmt.Printf("  client %d:\n", i+1)
		for _, u := range snap.Paths {
			fmt.Printf("    %s  requests=%d\n", u.Fingerprint, u.Requests)
		}
		if *adaptiveRace {
			dec := b.c.Proxy.Dialer().LastRace()
			fmt.Printf("    last race decision: width=%d (%s)\n", dec.Width, dec.Reason)
		}
		for host, split := range snap.Samples {
			fmt.Printf("    %s: %d passive / %d probe samples\n", host, split.Passive, split.Probes)
		}
		if b.g != nil {
			rounds, applied, lastErr := b.g.Stats()
			fmt.Printf("    gossip: %d rounds, %d estimates imported (last error: %v)\n", rounds, applied, lastErr)
			fmt.Printf("    own monitor: %d destinations, %d link estimates\n",
				b.mon.TargetCount(), len(b.mon.LinkStats()))
		}
	}
	var links []pan.LinkStat
	if shared != nil {
		links = shared.LinkStats()
	} else if len(fleet) > 0 {
		links = fleet[0].mon.LinkStats()
	}
	if len(links) > 0 {
		fmt.Println("link congestion estimates (shared telemetry, min-across-paths attribution):")
		for _, l := range links {
			fmt.Printf("  %s <-> %s  excess=%-6s dev=%-6s sharers=%d\n",
				l.A, l.B, l.Congestion.Round(time.Millisecond), l.Dev.Round(time.Millisecond), l.Sharers)
		}
	}
	for _, b := range fleet {
		if b.g != nil {
			b.g.Stop()
		}
		if b.mon != nil && b.mon != shared {
			b.mon.Stop()
		}
	}
	if shared != nil {
		shared.Stop()
	}
}
