// Command reverseproxy demonstrates the paper's SCION reverse proxy: an
// IP-only origin gains SCION reachability through a reverse proxy deployed
// in a nearby AS ("we have implemented a simple reverse proxy to add SCION
// support to web servers", paper §5.1). The demo fetches the same origin
// directly over the (slow) legacy route and over SCION via the reverse
// proxy, and compares.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tango/internal/experiments"
)

func main() {
	flag.Parse()
	w, client, err := experiments.Demo(4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building world: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	const page = "http://www.proxied.example/index.html"

	// Over SCION via the reverse proxy (extension enabled).
	pl, err := client.Browser.LoadPage(context.Background(), page)
	if err != nil {
		fmt.Fprintf(os.Stderr, "SCION load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("via SCION reverse proxy: PLT %-12v indicator %s\n", pl.PLT, pl.Indicator)

	// Direct over legacy IP (extension disabled).
	client.Browser.SetExtensionEnabled(false)
	pl2, err := client.Browser.LoadPage(context.Background(), page)
	if err != nil {
		fmt.Fprintf(os.Stderr, "IP load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("via legacy BGP/IP:       PLT %-12v indicator %s\n", pl2.PLT, pl2.Indicator)

	if pl.PLT < pl2.PLT {
		fmt.Printf("\nSCION wins by %v: path-aware forwarding routes around the slow BGP route,\n", pl2.PLT-pl.PLT)
		fmt.Println("even though the origin itself never deployed SCION (the reverse proxy did).")
	} else {
		fmt.Printf("\nlegacy IP wins by %v on this route.\n", pl.PLT-pl2.PLT)
	}
}
