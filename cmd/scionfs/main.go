// Command scionfs demonstrates the SCION file server: it serves a static
// site over HTTP/squic/SCION in a simulated world (the "SCION FS" of the
// paper's Figure 2), fetches the site through the PAN stack, and prints the
// transfer results together with the path that carried them.
//
//	scionfs -resources 12 -size 4096
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"

	"tango/internal/addr"
	"tango/internal/experiments"
	"tango/internal/pan"
	"tango/internal/shttp"
	"tango/internal/squic"
	"tango/internal/topology"
	"tango/internal/webserver"
)

func main() {
	resources := flag.Int("resources", 12, "subresources on the served page")
	size := flag.Int("size", 4096, "bytes per subresource")
	flag.Parse()

	w, _, err := experiments.Demo(3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building world: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	// Stand up a fresh SCION file server in 2-ff00:0:210.
	site := webserver.StandardSite(*resources, *size)
	host := w.PANHost(topology.Core210, "10.0.9.1")
	id, err := squic.NewIdentity("fs.demo")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w.Pool.Add("fs.demo", id.Public())
	srv, err := webserver.ServeSCION(host, 443, id, site, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("SCION file server: 2-ff00:0:210,10.0.9.1:443 serving %d paths\n", len(site.Paths()))

	// Fetch everything through the PAN client API: a latency-ranking
	// selector behind a Dialer, whose pooled connection carries all
	// requests after the first.
	client := w.PANHost(topology.AS111, "10.0.9.2")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.Core210, Host: netip.MustParseAddr("10.0.9.1")}, Port: 443}
	dialer := client.NewDialer(pan.DialOptions{
		Selector:   pan.NewLatencySelector(),
		ServerName: "fs.demo",
	})
	defer dialer.Close()
	tr := shttp.NewTransport(func(ctx context.Context, authority string) (*squic.Conn, error) {
		conn, sel, err := dialer.Dial(ctx, remote, "")
		if err != nil {
			return nil, err
		}
		fmt.Printf("dialed over path: %s (%v one-way, MTU %d)\n",
			sel.Path, sel.Path.Meta.Latency, sel.Path.Meta.MTU)
		return conn, nil
	})
	defer tr.CloseIdleConnections()
	httpClient := &http.Client{Transport: tr}

	total := int64(0)
	start := w.Clock.Now()
	for _, path := range site.Paths() {
		resp, err := httpClient.Get("http://fs.demo" + path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "GET %s: %v\n", path, err)
			os.Exit(1)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		total += n
	}
	fmt.Printf("fetched %d resources, %d bytes, in %v (virtual)\n",
		len(site.Paths()), total, w.Clock.Since(start))
}
