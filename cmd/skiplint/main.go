// Skiplint runs the repo's static-analysis suite (internal/lint): lockorder,
// buflease, wallclock, and atomicfield.
//
// It has two modes:
//
//	go run ./cmd/skiplint ./...          # standalone: loads packages from source
//	go vet -vettool=$(which skiplint) ./...  # unit checker under cmd/go
//
// Standalone mode type-checks the module offline with internal/lint's source
// loader and needs nothing but a GOROOT. Vettool mode speaks cmd/go's unit
// checker protocol (the same one golang.org/x/tools/go/analysis/unitchecker
// implements): go vet hands it one JSON config per package, facts flow
// between packages as .vetx files, and results are cached by the build
// system like any other vet run.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tango/internal/lint"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		// cmd/go probes the tool identity with -V=full before first use.
		if strings.HasPrefix(a, "-V") {
			printVersion()
			return
		}
		// ... and asks for the tool's flag set, which is empty.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// printVersion prints the version/buildID line cmd/go parses to fingerprint
// the tool for vet result caching. The content hash of the executable is the
// only part that matters: rebuilding skiplint invalidates cached results.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiplint: reading own executable: %v\n", err)
		os.Exit(1)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h)
}

// ---- standalone mode ----

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
		return 1
	}
	paths, err := loader.ModulePackages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
		return 1
	}
	deps := make(lint.Facts)
	exit := 0
	for _, path := range paths {
		pkgs, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
			return 1
		}
		for _, pkg := range pkgs {
			diags, out, err := lint.RunAnalyzers(pkg, deps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
				return 1
			}
			deps.Merge(out)
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				exit = 1
			}
		}
	}
	return exit
}

// ---- unit checker mode ----

// vetConfig mirrors the JSON configuration cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "skiplint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler's export data: ImportMap
	// canonicalizes vendored paths, PackageFile locates the export file.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "skiplint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Facts from dependencies arrive as .vetx files this tool wrote when
	// cmd/go ran it over them (VetxOnly).
	deps := make(lint.Facts)
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		facts, err := readVetx(cfg.PackageVetx[p])
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiplint: reading facts for %s: %v\n", p, err)
			return 1
		}
		deps.Merge(facts)
	}

	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags, out, err := lint.RunAnalyzers(pkg, deps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
		return 1
	}

	if cfg.VetxOutput != "" {
		if err := writeVetx(cfg.VetxOutput, out); err != nil {
			fmt.Fprintf(os.Stderr, "skiplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func readVetx(file string) (lint.Facts, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	facts := make(lint.Facts)
	if err := gob.NewDecoder(f).Decode(&facts); err != nil {
		if err == io.EOF { // empty facts file
			return facts, nil
		}
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return facts, nil
}

func writeVetx(file string, facts lint.Facts) error {
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(facts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
