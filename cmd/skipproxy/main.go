// Command skipproxy demonstrates the SKIP HTTP proxy daemon (paper Figure
// 1) in the demo world: it accepts a user policy, proxies a series of
// requests through the IP/SCION switch, and prints the per-path statistics
// feedback the paper describes.
//
//	skipproxy -policy policy.json -requests 12
//
// The policy file is a PPL JSON document, e.g.
//
//	{"name":"green-geofence","acl":["- 2","+"],"ordering":["carbon","latency"]}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tango/internal/experiments"
	"tango/internal/pan"
	"tango/internal/ppl"
)

func main() {
	policyFile := flag.String("policy", "", "PPL policy JSON file")
	selector := flag.String("selector", "", "path-selection strategy: latency, roundrobin, or hotspot (default: policy-driven)")
	requests := flag.Int("requests", 6, "requests to send through the proxy per origin")
	raceWidth := flag.Int("race-width", 0, "dial this many top-ranked paths concurrently per connection (0/1 = sequential failover)")
	probeInterval := flag.Duration("probe-interval", 0, "base per-path RTT probe interval of the telemetry monitor (0 = probing off)")
	probeBudget := flag.Float64("probe-budget", 0, "global probes/sec cap across all tracked paths (0 = pan default)")
	adaptiveRace := flag.Bool("adaptive-race", false, "auto-tune the race width from telemetry freshness and RTT spread (needs -probe-interval)")
	passive := flag.Bool("passive", true, "feed live-traffic RTTs (connection acks, request first-byte times) into the telemetry monitor as zero-cost samples, suppressing active probes for busy origins (needs -probe-interval)")
	flag.Parse()

	if *policyFile != "" && *selector != "" {
		fmt.Fprintln(os.Stderr, "-policy and -selector are mutually exclusive (a selector replaces the policy composition)")
		os.Exit(1)
	}

	w, client, err := experiments.Demo(2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building world: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	if *policyFile != "" {
		raw, err := os.ReadFile(*policyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading policy: %v\n", err)
			os.Exit(1)
		}
		var pol ppl.Policy
		if err := json.Unmarshal(raw, &pol); err != nil {
			fmt.Fprintf(os.Stderr, "parsing policy: %v\n", err)
			os.Exit(1)
		}
		client.Extension.SetPolicy(&pol)
		fmt.Printf("installed policy %q\n", pol.Name)
	}
	if *probeInterval > 0 {
		client.Proxy.SetProbing(*probeInterval, *probeBudget)
		client.Proxy.SetPassive(*passive)
		if *probeBudget > 0 {
			fmt.Printf("telemetry monitor: base interval %v, budget %.1f probes/s\n", *probeInterval, *probeBudget)
		} else {
			fmt.Printf("telemetry monitor: base interval %v\n", *probeInterval)
		}
		if *passive {
			fmt.Println("passive telemetry: live-traffic RTTs suppress active probes for busy origins")
		}
	}
	switch *selector {
	case "":
	case "latency":
		client.Extension.SetSelector(pan.NewLatencySelector())
		fmt.Println("installed latency selector")
	case "roundrobin":
		client.Extension.SetSelector(pan.NewRoundRobinSelector(nil))
		fmt.Println("installed round-robin selector")
	case "hotspot":
		if *probeInterval <= 0 {
			fmt.Fprintln(os.Stderr, "-selector hotspot needs -probe-interval (link telemetry comes from the monitor)")
			os.Exit(1)
		}
		client.Extension.SetSelector(pan.NewHotspotSelector(client.Proxy.Monitor()))
		fmt.Println("installed hotspot-aware selector (latency + shared-link variance penalty)")
	default:
		fmt.Fprintf(os.Stderr, "unknown selector %q (want latency, roundrobin, or hotspot)\n", *selector)
		os.Exit(1)
	}

	if *raceWidth > 1 {
		client.Proxy.SetRace(*raceWidth, 0)
		fmt.Printf("racing the top %d ranked paths per connection\n", *raceWidth)
	}
	if *adaptiveRace {
		if *probeInterval <= 0 {
			fmt.Fprintln(os.Stderr, "-adaptive-race needs -probe-interval (width decisions come from telemetry)")
			os.Exit(1)
		}
		client.Proxy.SetAdaptiveRace(true)
		fmt.Println("adaptive racing: width tuned per dial from telemetry freshness and RTT spread")
	}

	origins := []string{"www.scion.example", "www.legacy.example", "www.proxied.example"}
	for _, origin := range origins {
		avail, compliant := client.Proxy.CheckSCION(context.Background(), origin)
		fmt.Printf("%-22s scion-available=%-5v policy-compliant=%v\n", origin, avail, compliant)
	}

	fmt.Printf("\nsending %d requests per origin through the proxy...\n", *requests)
	for _, origin := range origins {
		for i := 0; i < *requests; i++ {
			if *selector == "roundrobin" && i > 0 {
				// Rotation advances per dialed connection; drop the pooled
				// connections so each page load dials afresh and the
				// rotation is visible in the path-usage statistics.
				client.Proxy.Dialer().Invalidate()
			}
			pl, err := client.Browser.LoadPage(context.Background(), fmt.Sprintf("http://%s/index.html", origin))
			if err != nil {
				fmt.Fprintf(os.Stderr, "load %s: %v\n", origin, err)
				continue
			}
			if i == 0 {
				fmt.Printf("  %-22s PLT %-10v indicator %s\n", origin, pl.PLT, pl.Indicator)
			}
		}
	}

	snap := client.Proxy.Stats().Snapshot()
	fmt.Printf("\n== proxy statistics (feedback to the user, paper §4) ==\n")
	fmt.Printf("requests by transport: %v\n", snap.ByVia)
	for host, m := range snap.ByHost {
		fmt.Printf("  %-22s %v\n", host, m)
	}
	fmt.Println("path usage:")
	for _, p := range snap.Paths {
		avg := int64(0)
		if p.Requests > 0 {
			avg = p.TotalTime.Milliseconds() / int64(p.Requests)
		}
		fmt.Printf("  %s  requests=%-4d bytes=%-8d avg=%dms compliant=%v\n",
			p.Fingerprint, p.Requests, p.Bytes, avg, p.Compliant)
	}
	if len(snap.Health) > 0 {
		fmt.Println("path liveness (selector telemetry: dial outcomes + probes):")
		for _, h := range snap.Health {
			state := "live"
			if h.Down {
				state = "DOWN"
			}
			rtt := "rtt=?"
			if h.RTT > 0 {
				rtt = fmt.Sprintf("rtt=%dms", h.RTT.Milliseconds())
			}
			fmt.Printf("  %s  %-4s %s\n", h.Fingerprint, state, rtt)
		}
	}
	if len(snap.Links) > 0 {
		fmt.Println("link congestion (monitor decomposition of path probes):")
		for _, l := range snap.Links {
			fmt.Printf("  %s <-> %s  excess=%-6s dev=%-6s sharers=%d\n",
				l.A, l.B, l.Congestion.Round(time.Millisecond), l.Dev.Round(time.Millisecond), l.Sharers)
		}
	}
	if len(snap.Samples) > 0 {
		fmt.Println("telemetry sample split (passive = free, probes = budget):")
		for host, split := range snap.Samples {
			fmt.Printf("  %-22s %d passive / %d probe samples\n", host, split.Passive, split.Probes)
		}
	}
	if *adaptiveRace {
		dec := client.Proxy.Dialer().LastRace()
		fmt.Printf("last race decision: width=%d (%s)\n", dec.Width, dec.Reason)
	}
}
