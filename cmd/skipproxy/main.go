// Command skipproxy demonstrates the SKIP HTTP proxy daemon (paper Figure
// 1) in the demo world: it accepts a user policy, proxies a series of
// requests through the IP/SCION switch, and prints the per-path statistics
// feedback the paper describes.
//
//	skipproxy -policy policy.json -requests 12
//
// The policy file is a PPL JSON document, e.g.
//
//	{"name":"green-geofence","acl":["- 2","+"],"ordering":["carbon","latency"]}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"time"

	"tango/internal/addr"
	"tango/internal/experiments"
	"tango/internal/pan"
	"tango/internal/ppl"
	"tango/internal/proxy"
	"tango/internal/segment"
	"tango/internal/topology"
	"tango/internal/webserver"
)

func main() {
	policyFile := flag.String("policy", "", "PPL policy JSON file")
	selector := flag.String("selector", "", "path-selection strategy: latency, roundrobin, or hotspot (default: policy-driven)")
	requests := flag.Int("requests", 6, "requests to send through the proxy per origin")
	raceWidth := flag.Int("race-width", 0, "dial this many top-ranked paths concurrently per connection (0/1 = sequential failover)")
	probeInterval := flag.Duration("probe-interval", 0, "base per-path RTT probe interval of the telemetry monitor (0 = probing off)")
	probeBudget := flag.Float64("probe-budget", 0, "global probes/sec cap across all tracked paths (0 = pan default)")
	adaptiveRace := flag.Bool("adaptive-race", false, "auto-tune the race width from telemetry freshness and RTT spread (needs -probe-interval)")
	passive := flag.Bool("passive", true, "feed live-traffic RTTs (connection acks, request first-byte times) into the telemetry monitor as zero-cost samples, suppressing active probes for busy origins (needs -probe-interval)")
	peers := flag.Int("peers", 0, "after the run, boot this many COLD peer proxies that import the warm proxy's LinkStats snapshot over HTTP gossip and dial adaptively from it (needs -probe-interval)")
	gossipInterval := flag.Duration("gossip-interval", 5*time.Second, "gossip exchange interval for -peers")
	stripeWidth := flag.Int("stripe-width", 0, "fetch large responses as concurrent byte-range segments over this many link-disjoint paths (0 = striping off)")
	stripeSegment := flag.Int("stripe-segment", 0, "stripe segment size in bytes (0 = pan default)")
	stripeMin := flag.Int64("stripe-min", 0, "minimum response size in bytes before striping kicks in (0 = pan default)")
	flag.Parse()

	if *policyFile != "" && *selector != "" {
		fmt.Fprintln(os.Stderr, "-policy and -selector are mutually exclusive (a selector replaces the policy composition)")
		os.Exit(1)
	}
	if *peers > 0 && *probeInterval <= 0 {
		fmt.Fprintln(os.Stderr, "-peers needs -probe-interval (a warm monitor to gossip from)")
		os.Exit(1)
	}

	w, client, err := experiments.Demo(2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building world: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	if *policyFile != "" {
		raw, err := os.ReadFile(*policyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading policy: %v\n", err)
			os.Exit(1)
		}
		var pol ppl.Policy
		if err := json.Unmarshal(raw, &pol); err != nil {
			fmt.Fprintf(os.Stderr, "parsing policy: %v\n", err)
			os.Exit(1)
		}
		client.Extension.SetPolicy(&pol)
		fmt.Printf("installed policy %q\n", pol.Name)
	}
	if *probeInterval > 0 {
		client.Proxy.SetProbing(*probeInterval, *probeBudget)
		client.Proxy.SetPassive(*passive)
		if *probeBudget > 0 {
			fmt.Printf("telemetry monitor: base interval %v, budget %.1f probes/s\n", *probeInterval, *probeBudget)
		} else {
			fmt.Printf("telemetry monitor: base interval %v\n", *probeInterval)
		}
		if *passive {
			fmt.Println("passive telemetry: live-traffic RTTs suppress active probes for busy origins")
		}
	}
	switch *selector {
	case "":
	case "latency":
		client.Extension.SetSelector(pan.NewLatencySelector())
		fmt.Println("installed latency selector")
	case "roundrobin":
		client.Extension.SetSelector(pan.NewRoundRobinSelector(nil))
		fmt.Println("installed round-robin selector")
	case "hotspot":
		if *probeInterval <= 0 {
			fmt.Fprintln(os.Stderr, "-selector hotspot needs -probe-interval (link telemetry comes from the monitor)")
			os.Exit(1)
		}
		client.Extension.SetSelector(pan.NewHotspotSelector(client.Proxy.Monitor()))
		fmt.Println("installed hotspot-aware selector (latency + shared-link variance penalty)")
	default:
		fmt.Fprintf(os.Stderr, "unknown selector %q (want latency, roundrobin, or hotspot)\n", *selector)
		os.Exit(1)
	}

	if *raceWidth > 1 {
		client.Proxy.SetRace(*raceWidth, 0)
		fmt.Printf("racing the top %d ranked paths per connection\n", *raceWidth)
	}
	if *adaptiveRace {
		if *probeInterval <= 0 {
			fmt.Fprintln(os.Stderr, "-adaptive-race needs -probe-interval (width decisions come from telemetry)")
			os.Exit(1)
		}
		client.Proxy.SetAdaptiveRace(true)
		fmt.Println("adaptive racing: width tuned per dial from telemetry freshness and RTT spread")
	}

	if *stripeWidth > 0 {
		client.Proxy.SetStripe(&pan.StripeOptions{
			Width:          *stripeWidth,
			SegmentSize:    *stripeSegment,
			MinStripeBytes: *stripeMin,
		})
		fmt.Printf("striping large responses over up to %d link-disjoint paths\n", *stripeWidth)
	}

	origins := []string{"www.scion.example", "www.legacy.example", "www.proxied.example"}
	for _, origin := range origins {
		avail, compliant := client.Proxy.CheckSCION(context.Background(), origin)
		fmt.Printf("%-22s scion-available=%-5v policy-compliant=%v\n", origin, avail, compliant)
	}

	fmt.Printf("\nsending %d requests per origin through the proxy...\n", *requests)
	for _, origin := range origins {
		for i := 0; i < *requests; i++ {
			if *selector == "roundrobin" && i > 0 {
				// Rotation advances per dialed connection; drop the pooled
				// connections so each page load dials afresh and the
				// rotation is visible in the path-usage statistics.
				client.Proxy.Dialer().Invalidate()
			}
			pl, err := client.Browser.LoadPage(context.Background(), fmt.Sprintf("http://%s/index.html", origin))
			if err != nil {
				fmt.Fprintf(os.Stderr, "load %s: %v\n", origin, err)
				continue
			}
			if i == 0 {
				fmt.Printf("  %-22s PLT %-10v indicator %s\n", origin, pl.PLT, pl.Indicator)
			}
		}
	}

	if *stripeWidth > 0 {
		url := fmt.Sprintf("http://www.scion.example%s", experiments.BigResourcePath)
		fmt.Printf("\nfetching %s striped through the proxy...\n", url)
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		start := w.Clock.Now()
		client.Proxy.ServeHTTP(rec, req)
		res := rec.Result()
		n, _ := io.Copy(io.Discard, res.Body)
		res.Body.Close()
		fmt.Printf("  status=%d via=%s bytes=%d wall=%v\n",
			res.StatusCode, res.Header.Get(proxy.HeaderVia), n, w.Clock.Since(start).Round(time.Millisecond))
		for dst, pipes := range client.Proxy.StripeStatus() {
			fmt.Printf("  stripe set %s:\n", dst)
			for _, ps := range pipes {
				state := "live"
				if ps.Dead {
					state = "DEAD"
				}
				fmt.Printf("    %s  %-4s bytes=%-8d segments=%-4d losses=%-3d cwnd=%-3d srtt=%dms\n",
					ps.Fingerprint, state, ps.Bytes, ps.Segments, ps.Losses, ps.Cwnd, ps.SRTT.Milliseconds())
			}
		}
	}

	snap := client.Proxy.Stats().Snapshot()
	fmt.Printf("\n== proxy statistics (feedback to the user, paper §4) ==\n")
	fmt.Printf("requests by transport: %v\n", snap.ByVia)
	if snap.Striped > 0 {
		fmt.Printf("striped responses: %d\n", snap.Striped)
	}
	for host, m := range snap.ByHost {
		fmt.Printf("  %-22s %v\n", host, m)
	}
	fmt.Println("path usage:")
	for _, p := range snap.Paths {
		avg := int64(0)
		if p.Requests > 0 {
			avg = p.TotalTime.Milliseconds() / int64(p.Requests)
		}
		fmt.Printf("  %s  requests=%-4d bytes=%-8d avg=%dms compliant=%v\n",
			p.Fingerprint, p.Requests, p.Bytes, avg, p.Compliant)
	}
	if len(snap.Health) > 0 {
		fmt.Println("path liveness (selector telemetry: dial outcomes + probes):")
		for _, h := range snap.Health {
			state := "live"
			if h.Down {
				state = "DOWN"
			}
			rtt := "rtt=?"
			if h.RTT > 0 {
				rtt = fmt.Sprintf("rtt=%dms", h.RTT.Milliseconds())
			}
			fmt.Printf("  %s  %-4s %s\n", h.Fingerprint, state, rtt)
		}
	}
	if len(snap.Links) > 0 {
		fmt.Println("link congestion (monitor decomposition of path probes):")
		for _, l := range snap.Links {
			fmt.Printf("  %s <-> %s  excess=%-6s dev=%-6s sharers=%d\n",
				l.A, l.B, l.Congestion.Round(time.Millisecond), l.Dev.Round(time.Millisecond), l.Sharers)
		}
	}
	if len(snap.Samples) > 0 {
		fmt.Println("telemetry sample split (passive = free, probes = budget):")
		for host, split := range snap.Samples {
			fmt.Printf("  %-22s %d passive / %d probe samples\n", host, split.Passive, split.Probes)
		}
	}
	if *adaptiveRace {
		dec := client.Proxy.Dialer().LastRace()
		fmt.Printf("last race decision: width=%d (%s)\n", dec.Width, dec.Reason)
	}

	if *peers > 0 {
		gossipColdPeers(w, client.Proxy.Monitor(), *peers, *probeInterval, *gossipInterval)
	}
}

// gossipColdPeers demonstrates LinkStats snapshot gossip: the warm proxy's
// monitor serves its snapshot over the legacy network, and freshly booted
// peer proxies import it — warm hotspot estimates before their first dial,
// so the first adaptive dial goes out narrow with zero probes spent.
func gossipColdPeers(w *experiments.World, warm *pan.Monitor, peers int, probeInterval, gossipInterval time.Duration) {
	fmt.Printf("\n== link-state gossip: %d cold peers warm-starting from this proxy ==\n", peers)
	if _, err := webserver.ServeIP(w.Legacy, "telemetry.skip:8600", webserver.SnapshotHandler(warm)); err != nil {
		fmt.Fprintf(os.Stderr, "serving snapshot: %v\n", err)
		os.Exit(1)
	}
	snap := warm.ExportLinks()
	fmt.Printf("snapshot on telemetry.skip:8600: %d path + %d link estimates\n", len(snap.Paths), len(snap.Links))
	// The SCION-native demo origin the warm proxy has been measuring.
	scionRemote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 80}
	for i := 0; i < peers; i++ {
		host := w.PANHost(topology.AS111, fmt.Sprintf("10.0.9.%d", 10+i))
		probes := 0
		real := host.HandshakeProbe()
		mon := pan.NewMonitor(w.Clock, host.Paths, pan.MonitorOptions{
			BaseInterval: probeInterval,
			Probe: func(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
				probes++
				return real(remote, serverName, path, timeout)
			},
		})
		httpClient := &http.Client{Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, hostport string) (net.Conn, error) {
				return w.Legacy.Dial(ctx, fmt.Sprintf("skip-peer-%d", i+1), hostport)
			},
			DisableCompression: true,
		}}
		g := webserver.NewGossiper(w.Clock, mon, httpClient, []string{"telemetry.skip:8600"}, gossipInterval, 1)
		applied, err := g.RunOnce(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "peer %d gossip: %v\n", i+1, err)
			continue
		}
		d := host.NewDialer(pan.DialOptions{
			Selector:     pan.NewLatencySelector(),
			ServerName:   "www.scion.example",
			Timeout:      2 * time.Second,
			RaceWidth:    3,
			AdaptiveRace: true,
			Monitor:      mon,
		})
		if _, sel, err := d.Dial(context.Background(), scionRemote, ""); err != nil {
			fmt.Fprintf(os.Stderr, "peer %d dial: %v\n", i+1, err)
		} else {
			dec := d.LastRace()
			fmt.Printf("  peer %d: imported %d estimates, first dial width=%d (%s) over %s, %d local probes spent\n",
				i+1, applied, dec.Width, dec.Reason, sel.Path.Fingerprint(), probes)
		}
		d.Close()
	}
}
