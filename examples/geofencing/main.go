// Geofencing: the paper's flagship user-driven property. A user blocks an
// isolation domain; the browser+proxy pipeline then either flags
// non-compliant loads (opportunistic mode) or refuses them outright (strict
// mode), and reroutes around blocked regions when alternatives exist.
//
//	go run ./examples/geofencing
package main

import (
	"context"
	"fmt"
	"log"

	"tango/internal/experiments"
	"tango/internal/policy"
)

func main() {
	world, client, err := experiments.Demo(10)
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// www.proxied.example is SCION-reachable (via a reverse proxy in ISD 2)
	// and does not pin Strict-SCION, so mode stays the user's choice.
	const page = "http://www.proxied.example/index.html"
	ctx := context.Background()

	// Baseline: no geofence — compliant load over SCION.
	pl, err := client.Browser.LoadPage(ctx, page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no geofence:        indicator=%-10s compliant=%-5v PLT=%v\n", pl.Indicator, pl.Compliant, pl.PLT)

	// The user blocks ISD 2 — where the site lives. Opportunistic mode
	// still loads the page but surfaces the violation ("the user is
	// informed of the non-compliance", paper §4.2).
	client.Extension.SetGeofence(policy.NewBlockGeofence(2))
	pl, err = client.Browser.LoadPage(ctx, page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block ISD 2 (opp.): indicator=%-10s compliant=%-5v PLT=%v\n", pl.Indicator, pl.Compliant, pl.PLT)

	// Strict mode: "the browser will display a connection error if no such
	// path is found."
	client.Extension.SetStrictAll(true)
	if _, err := client.Browser.LoadPage(ctx, page); err != nil {
		fmt.Printf("block ISD 2 (strict): connection refused as expected: %v\n", err)
	} else {
		log.Fatal("strict mode should have blocked the load")
	}
	client.Extension.SetStrictAll(false)

	// A geofence that the network can satisfy: allow ISDs 1 and 2 (all
	// paths comply), demonstrated with the per-path statistics feedback.
	client.Extension.SetGeofence(policy.NewAllowGeofence(1, 2))
	pl, err = client.Browser.LoadPage(ctx, page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allow ISDs 1,2:     indicator=%-10s compliant=%-5v PLT=%v\n", pl.Indicator, pl.Compliant, pl.PLT)

	fmt.Println("\npath usage feedback:")
	for _, p := range client.Proxy.Stats().Snapshot().Paths {
		fmt.Printf("  %s  requests=%-4d compliant=%v\n", p.Fingerprint, p.Requests, p.Compliant)
	}
}
