// Pathselection: enumerate the decorated path choices SCION offers between
// two ASes and apply the property policies of the paper's Table 1 — low
// latency, high bandwidth, fewest hops, green (CO2) routing, and a PPL
// sequence constraint — then demonstrate the live-telemetry machinery:
// multipath connection racing, the shared telemetry monitor, hotspot-aware
// ranking, and adaptive race widths.
//
// Racing and telemetry knobs (pan.DialOptions / pan.MonitorOptions):
//
//   - RaceWidth: how many top-ranked candidates a Dialer dials
//     concurrently per connection, keeping the first completed handshake
//     (0/1 = sequential failover through MaxAttempts candidates).
//
//   - RaceStagger: racer i starts i*RaceStagger late, so a healthy first
//     choice wins without extra handshakes on the wire (0 = pan's
//     DefaultRaceStagger; negative = no stagger).
//
//   - Monitor (DialOptions.Monitor): the host's shared telemetry plane.
//     One monitor serves any number of dialers: destinations are tracked
//     while pooled, probes are phase-jittered per path with churn-adaptive
//     intervals under a global probes/sec budget (MonitorOptions), and
//     each measurement is decomposed into per-link congestion estimates.
//
//   - NewHotspotSelector(monitor): ranks by observed latency PLUS a
//     penalty for every high-variance shared link the path crosses, so
//     congestion on a link two paths share demotes both at once.
//
//   - AdaptiveRace: the dialer asks the monitor for a width per dial —
//     wide only while the leader's estimate is stale or contested, a
//     single handshake once the leader is clearly healthy.
//
// Run with:
//
//	go run ./examples/pathselection
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/experiments"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/topology"
)

func main() {
	world, _, err := experiments.Demo(11)
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	host := world.PANHost(topology.AS111, "10.0.8.1")
	dst := topology.AS211

	paths := host.Paths(dst)
	fmt.Printf("the network offers %d paths from %s to %s:\n\n", len(paths), topology.AS111, dst)
	fmt.Printf("%-4s %-9s %-6s %-6s %-10s %s\n", "#", "latency", "hops", "MTU", "gCO2/GB", "route")
	for i, p := range paths {
		fmt.Printf("%-4d %-9v %-6d %-6d %-10.0f %s\n",
			i+1, p.Meta.Latency, len(p.Hops), p.Meta.MTU, p.Meta.CarbonPerGB, p)
	}

	fmt.Println("\npolicy-driven selection (PolicySelector, strict mode):")
	show := func(name string, s pan.Selector) {
		sel, err := host.Select(dst, s, pan.Strict)
		if err != nil {
			fmt.Printf("  %-16s -> no compliant path (%v)\n", name, err)
			return
		}
		fmt.Printf("  %-16s -> %v over %s\n", name, sel.Path.Meta.Latency, sel.Path)
	}
	showPolicy := func(name string, pol *ppl.Policy) {
		show(name, pan.NewPolicySelector(pol, nil))
	}
	showPolicy("low latency", policy.LowLatency())
	showPolicy("high bandwidth", policy.HighBandwidth())
	showPolicy("fewest hops", policy.FewestHops())
	showPolicy("green routing", policy.GreenRouting(0))

	// PPL: pin the route through core AS 1-ff00:0:110 and cap latency.
	seq, err := ppl.ParseSequence("1-ff00:0:111 1-ff00:0:110 0*")
	if err != nil {
		log.Fatal(err)
	}
	showPolicy("via 1-ff00:0:110", &ppl.Policy{Sequence: seq, Orderings: []ppl.Ordering{ppl.OrderLatency}})
	showPolicy("lat < 100ms, green", ppl.Intersect("combo",
		&ppl.Policy{MaxLatency: 100_000_000},
		policy.GreenRouting(0)))

	// Beyond policies: the pluggable selector strategies.
	fmt.Println("\npluggable selector strategies:")
	show("latency ranking", pan.NewLatencySelector())

	// Round-robin rotation advances per reported use (a Dialer reports
	// automatically; here we report by hand after each pick).
	rr := pan.NewRoundRobinSelector(nil)
	for i := 0; i < 3; i++ {
		sel, err := host.Select(dst, rr, pan.Strict)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s -> %v over %s\n", fmt.Sprintf("round-robin #%d", i+1), sel.Path.Meta.Latency, sel.Path)
		rr.Report(sel.Path, pan.Success)
	}

	// Interactive pinning (the paper's §4.2 UI hook): pin the last offered
	// path, overriding any ranking.
	pinned := pan.NewPinnedSelector(pan.NewLatencySelector())
	pinned.Pin(dst, paths[len(paths)-1].Fingerprint())
	show("pinned", pinned)

	// Failure feedback: report the best latency path down and watch the
	// ranking fail over, then recover.
	ls := pan.NewLatencySelector()
	sel, err := host.Select(dst, ls, pan.Strict)
	if err != nil {
		log.Fatal(err)
	}
	best := sel.Path
	ls.Report(best, pan.Failure)
	show("after path down", ls)
	ls.Report(best, pan.Success)
	show("after recovery", ls)

	// Live telemetry: ONE monitor per host is the shared plane every dialer
	// feeds from. The hotspot selector ranks over its link decomposition,
	// and AdaptiveRace lets it pick the race width per dial. The demo world
	// serves www.scion.example from 2-ff00:0:211 port 80 — dial it for real.
	fmt.Println("\nshared telemetry monitor + hotspot ranking + adaptive racing:")
	monitor := host.NewMonitor(pan.MonitorOptions{
		BaseInterval: 3 * time.Second, // churn-adapted per path between Base/4 and 4*Base
		Timeout:      time.Second,
		ProbeBudget:  16, // global probes/sec cap across every tracked path
	})
	live := pan.NewHotspotSelector(monitor) // latency + shared-link variance penalty
	dialer := host.NewDialer(pan.DialOptions{
		Selector:     live,
		ServerName:   "www.scion.example",
		Timeout:      2 * time.Second,
		RaceWidth:    3, // cap: adaptive racing never goes wider
		AdaptiveRace: true,
		Monitor:      monitor,
	})
	defer dialer.Close()
	remote := addr.UDPAddr{Addr: addr.Addr{IA: dst, Host: netip.MustParseAddr("10.0.0.2")}, Port: 80}
	conn, rsel, err := dialer.Dial(context.Background(), remote, "")
	if err != nil {
		log.Fatal(err)
	}
	_ = conn // pooled; the dialer owns its lifecycle
	dec := dialer.LastRace()
	fmt.Printf("  first dial       -> %v over %s\n", rsel.Path.Meta.Latency, rsel.Path)
	fmt.Printf("                      raced width %d (%s): no telemetry yet, race wide\n", dec.Width, dec.Reason)

	// The dial pooled a connection, so the destination is now tracked; a
	// daemon would just let the monitor's jittered schedule run (Start),
	// tests and demos drive deterministic rounds inline.
	monitor.RunRound()
	monitor.RunRound()
	fmt.Println("  per-path telemetry after two probe rounds:")
	for _, h := range live.PathHealth() {
		state := "live"
		if h.Down {
			state = "DOWN"
		}
		fmt.Printf("    %s  %-4s observed-rtt=%v\n", h.Fingerprint, state, h.RTT)
	}
	for _, p := range host.Paths(dst) {
		if tel, ok := monitor.Telemetry(p.Fingerprint()); ok {
			fmt.Printf("    %s  interval=%-4v dev=%-6v fresh=%v\n",
				p.Fingerprint(), tel.Interval, tel.Dev, tel.Fresh)
		}
	}

	// With fresh telemetry and a clear leader the next dial doesn't race at
	// all: width 1, zero extra handshakes on the wire.
	dialer.Invalidate() // drop the pooled conn so the next Dial decides anew
	if _, _, err := dialer.Dial(context.Background(), remote, ""); err != nil {
		log.Fatal(err)
	}
	dec = dialer.LastRace()
	fmt.Printf("  re-dial          -> raced width %d (%s)\n", dec.Width, dec.Reason)
}
