// Pathselection: enumerate the decorated path choices SCION offers between
// two ASes and apply the property policies of the paper's Table 1 — low
// latency, high bandwidth, fewest hops, green (CO2) routing, and a PPL
// sequence constraint — then demonstrate the live-telemetry machinery:
// multipath connection racing and background RTT probing.
//
// Racing and probing knobs (pan.DialOptions / pan.ProberOptions):
//
//   - RaceWidth: how many top-ranked candidates a Dialer dials
//     concurrently per connection, keeping the first completed handshake
//     (0/1 = sequential failover through MaxAttempts candidates).
//
//   - RaceStagger: racer i starts i*RaceStagger late, so a healthy first
//     choice wins without extra handshakes on the wire (0 = pan's
//     DefaultRaceStagger; negative = no stagger).
//
//   - ProberOptions.Interval: how often every known path to each tracked
//     destination is probed (a minimal squic handshake each).
//
//   - ProberOptions.Timeout: per-probe cap, so dead paths cannot stall a
//     round past the next one.
//
//   - ProberOptions.DownBackoff / MaxBackoff: rounds a failed path sits
//     out, doubling per consecutive failure, so mostly-dead path sets
//     don't burn every round in timeouts.
//
// Run with:
//
//	go run ./examples/pathselection
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/experiments"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/topology"
)

func main() {
	world, _, err := experiments.Demo(11)
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	host := world.PANHost(topology.AS111, "10.0.8.1")
	dst := topology.AS211

	paths := host.Paths(dst)
	fmt.Printf("the network offers %d paths from %s to %s:\n\n", len(paths), topology.AS111, dst)
	fmt.Printf("%-4s %-9s %-6s %-6s %-10s %s\n", "#", "latency", "hops", "MTU", "gCO2/GB", "route")
	for i, p := range paths {
		fmt.Printf("%-4d %-9v %-6d %-6d %-10.0f %s\n",
			i+1, p.Meta.Latency, len(p.Hops), p.Meta.MTU, p.Meta.CarbonPerGB, p)
	}

	fmt.Println("\npolicy-driven selection (PolicySelector, strict mode):")
	show := func(name string, s pan.Selector) {
		sel, err := host.Select(dst, s, pan.Strict)
		if err != nil {
			fmt.Printf("  %-16s -> no compliant path (%v)\n", name, err)
			return
		}
		fmt.Printf("  %-16s -> %v over %s\n", name, sel.Path.Meta.Latency, sel.Path)
	}
	showPolicy := func(name string, pol *ppl.Policy) {
		show(name, pan.NewPolicySelector(pol, nil))
	}
	showPolicy("low latency", policy.LowLatency())
	showPolicy("high bandwidth", policy.HighBandwidth())
	showPolicy("fewest hops", policy.FewestHops())
	showPolicy("green routing", policy.GreenRouting(0))

	// PPL: pin the route through core AS 1-ff00:0:110 and cap latency.
	seq, err := ppl.ParseSequence("1-ff00:0:111 1-ff00:0:110 0*")
	if err != nil {
		log.Fatal(err)
	}
	showPolicy("via 1-ff00:0:110", &ppl.Policy{Sequence: seq, Orderings: []ppl.Ordering{ppl.OrderLatency}})
	showPolicy("lat < 100ms, green", ppl.Intersect("combo",
		&ppl.Policy{MaxLatency: 100_000_000},
		policy.GreenRouting(0)))

	// Beyond policies: the pluggable selector strategies.
	fmt.Println("\npluggable selector strategies:")
	show("latency ranking", pan.NewLatencySelector())

	// Round-robin rotation advances per reported use (a Dialer reports
	// automatically; here we report by hand after each pick).
	rr := pan.NewRoundRobinSelector(nil)
	for i := 0; i < 3; i++ {
		sel, err := host.Select(dst, rr, pan.Strict)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s -> %v over %s\n", fmt.Sprintf("round-robin #%d", i+1), sel.Path.Meta.Latency, sel.Path)
		rr.Report(sel.Path, pan.Success)
	}

	// Interactive pinning (the paper's §4.2 UI hook): pin the last offered
	// path, overriding any ranking.
	pinned := pan.NewPinnedSelector(pan.NewLatencySelector())
	pinned.Pin(dst, paths[len(paths)-1].Fingerprint())
	show("pinned", pinned)

	// Failure feedback: report the best latency path down and watch the
	// ranking fail over, then recover.
	ls := pan.NewLatencySelector()
	sel, err := host.Select(dst, ls, pan.Strict)
	if err != nil {
		log.Fatal(err)
	}
	best := sel.Path
	ls.Report(best, pan.Failure)
	show("after path down", ls)
	ls.Report(best, pan.Success)
	show("after recovery", ls)

	// Live telemetry: race the top-ranked candidates per dial and keep the
	// rankings fresh with a background RTT prober. The demo world serves
	// www.scion.example from 2-ff00:0:211 port 80 — dial it for real.
	fmt.Println("\nmultipath racing + RTT probing:")
	live := pan.NewLatencySelector()
	dialer := host.NewDialer(pan.DialOptions{
		Selector:    live,
		ServerName:  "www.scion.example",
		Timeout:     2 * time.Second,
		RaceWidth:   3,                     // race the top 3 ranked paths
		RaceStagger: 15 * time.Millisecond, // head start per rank
	})
	defer dialer.Close()
	remote := addr.UDPAddr{Addr: addr.Addr{IA: dst, Host: netip.MustParseAddr("10.0.0.2")}, Port: 80}
	conn, rsel, err := dialer.Dial(context.Background(), remote, "")
	if err != nil {
		log.Fatal(err)
	}
	_ = conn // pooled; the dialer owns its lifecycle
	fmt.Printf("  raced winner     -> %v over %s\n", rsel.Path.Meta.Latency, rsel.Path)

	// The prober measures every known path each Interval; RunRound runs
	// one deterministic round inline (a daemon would call Start instead).
	prober := host.NewProber(live.Report, pan.ProberOptions{
		Interval:    3 * time.Second,
		Timeout:     time.Second,
		DownBackoff: 1,
		MaxBackoff:  4,
	})
	prober.Track(remote, "www.scion.example")
	prober.RunRound()
	prober.RunRound()
	fmt.Println("  per-path telemetry after two probe rounds:")
	for _, h := range live.PathHealth() {
		state := "live"
		if h.Down {
			state = "DOWN"
		}
		fmt.Printf("    %s  %-4s observed-rtt=%v\n", h.Fingerprint, state, h.RTT)
	}
}
