// Quickstart: bring up a minimal SCION world from scratch — topology,
// beaconing, data plane, host stacks — then serve a page over
// HTTP/squic/SCION and fetch it with policy-driven path selection.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/dataplane"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/pathdb"
	"tango/internal/policy"
	"tango/internal/shttp"
	"tango/internal/snet"
	"tango/internal/squic"
	"tango/internal/topology"
)

func main() {
	// 1. A topology: two ISDs, ten ASes, core/parent/peering links.
	topo := topology.Default()

	// 2. Control-plane credentials and one round of beaconing, which
	//    discovers and registers all path segments.
	epoch := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	infra, err := beacon.NewInfra(topo, epoch, epoch.Add(24*time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	registry := pathdb.NewRegistry(infra.Store)
	if err := beacon.NewService(topo, infra, registry, 12*time.Hour).Run(epoch); err != nil {
		log.Fatal(err)
	}

	// 3. The data plane on a virtual clock: border routers and links.
	clock := netsim.NewSimClock(epoch.Add(time.Hour))
	world, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 42)
	if err != nil {
		log.Fatal(err)
	}
	stop := clock.AutoAdvance(0)
	defer stop()

	// 4. Host stacks: one server in ISD 2, one client in ISD 1.
	combiner := pathdb.NewCombiner(registry)
	pool := squic.NewCertPool()
	newHost := func(ia addr.IA, ip string) *pan.Host {
		disp := snet.NewDispatcher(world.Router(ia), clock)
		return pan.NewHost(disp.Host(netip.MustParseAddr(ip), world.Router(ia)), combiner, pool)
	}
	server := newHost(topology.AS211, "10.0.0.2")
	client := newHost(topology.AS111, "10.0.0.1")

	// 5. Serve HTTP over SCION.
	identity, err := squic.NewIdentity("hello.scion")
	if err != nil {
		log.Fatal(err)
	}
	pool.AddIdentity(identity)
	lis, err := server.Listen(443, identity)
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	go shttp.Serve(lis, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello from %s over SCION!", server.Local())
	}))

	// 6. Fetch it with a Dialer: a PolicySelector ranks the paths (lowest
	//    latency first), strict mode refuses non-compliant ones, and
	//    repeated requests reuse the pooled connection.
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}
	dialer := client.NewDialer(pan.DialOptions{
		Selector:   pan.NewPolicySelector(policy.LowLatency(), nil),
		Mode:       pan.Strict,
		ServerName: "hello.scion",
	})
	defer dialer.Close()
	transport := shttp.NewTransport(func(ctx context.Context, authority string) (*squic.Conn, error) {
		conn, sel, err := dialer.Dial(ctx, remote, "")
		if err != nil {
			return nil, err
		}
		fmt.Printf("selected path: %s\n", sel.Path)
		fmt.Printf("  latency %v, MTU %d, carbon %.0f gCO2/GB, countries %v\n",
			sel.Path.Meta.Latency, sel.Path.Meta.MTU, sel.Path.Meta.CarbonPerGB, sel.Path.Meta.Countries)
		fmt.Printf("  (%d paths offered, %d policy-compliant)\n", sel.Options, sel.CompliantOptions)
		return conn, nil
	})
	defer transport.CloseIdleConnections()

	resp, err := (&http.Client{Transport: transport}).Get("http://hello.scion/")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("response: %s\n", body)
}
