// Strictmode: the Strict-SCION response header (paper §4.2) — an HSTS-like
// pin with which an operator promises that the whole site works over SCION.
// Once the browser has seen the pin, it enforces strict mode for that host
// until the pin's max-age expires, blocking any non-SCION fallback.
//
//	go run ./examples/strictmode
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tango/internal/experiments"
)

func main() {
	world, client, err := experiments.Demo(12)
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	ctx := context.Background()

	// www.scion.example serves "Strict-SCION: max-age=3600".
	const host = "www.scion.example"
	const page = "http://" + host + "/index.html"

	fmt.Printf("pin active before first visit: %v\n", client.Store.Active(host))

	pl, err := client.Browser.LoadPage(ctx, page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first visit: indicator=%s PLT=%v\n", pl.Indicator, pl.PLT)
	fmt.Printf("pin active after first visit:  %v\n", client.Store.Active(host))

	// With the pin in place the extension enforces strict mode for this
	// host automatically — even without the user enabling anything.
	pl, err = client.Browser.LoadPage(ctx, page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned visit: indicator=%s blocked=%d (all resources must ride SCION)\n",
		pl.Indicator, pl.Blocked)

	// The pin expires with its max-age; afterwards opportunistic fallback
	// is allowed again.
	world.Clock.Sleep(2 * time.Hour)
	fmt.Printf("pin active after max-age:      %v\n", client.Store.Active(host))

	// A site can also clear its pin early with max-age=0 — simulate by
	// pinning and clearing through the store API.
	client.Store.Pin(host, time.Hour)
	client.Store.Pin(host, 0)
	fmt.Printf("pin active after max-age=0:    %v\n", client.Store.Active(host))
}
