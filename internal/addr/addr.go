// Package addr provides SCION addressing primitives: isolation domain (ISD)
// identifiers, AS numbers, the combined ISD-AS pair, and full SCION host
// addresses.
//
// SCION addresses name an endpoint by the isolation domain it resides in, the
// autonomous system within that ISD, and an AS-local host address. This
// package implements parsing and formatting for the textual forms used
// throughout the SCION ecosystem, e.g. "1-ff00:0:110" for an ISD-AS and
// "1-ff00:0:110,10.0.0.1:443" for a full UDP endpoint.
package addr

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ISD is a SCION isolation domain identifier. ISDs group ASes that share a
// common jurisdiction and trust root; ISD 0 is the wildcard.
type ISD uint16

// AS is a SCION AS number, a 48-bit value. ASes in the SCION-reserved range
// are formatted as three colon-separated 16-bit hex groups ("ff00:0:110");
// small values that fit in 32 bits print as plain decimal for BGP
// compatibility.
type AS uint64

// MaxAS is the largest representable AS number (48 bits).
const MaxAS AS = (1 << 48) - 1

// WildcardISD matches any isolation domain in policy expressions.
const WildcardISD ISD = 0

// WildcardAS matches any AS in policy expressions.
const WildcardAS AS = 0

// asDecimalMax is the largest AS number formatted in decimal (BGP-style).
const asDecimalMax = 1<<32 - 1

// ParseISD parses a decimal ISD identifier.
func ParseISD(s string) (ISD, error) {
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("parsing ISD %q: %w", s, err)
	}
	return ISD(v), nil
}

// String implements fmt.Stringer.
func (i ISD) String() string { return strconv.FormatUint(uint64(i), 10) }

// ParseAS parses an AS number in either decimal (BGP-style, up to 2^32-1) or
// colon-separated hexadecimal ("ff00:0:110") notation.
func ParseAS(s string) (AS, error) {
	if !strings.Contains(s, ":") {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing AS %q: %w", s, err)
		}
		if v > asDecimalMax {
			return 0, fmt.Errorf("parsing AS %q: decimal AS exceeds 2^32-1", s)
		}
		return AS(v), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("parsing AS %q: want 3 hex groups, have %d", s, len(parts))
	}
	var as AS
	for _, p := range parts {
		if len(p) == 0 || len(p) > 4 {
			return 0, fmt.Errorf("parsing AS %q: bad group %q", s, p)
		}
		v, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return 0, fmt.Errorf("parsing AS %q: %w", s, err)
		}
		as = as<<16 | AS(v)
	}
	return as, nil
}

// String implements fmt.Stringer using decimal for BGP-range values and
// colon-separated hex otherwise.
func (a AS) String() string {
	if a <= asDecimalMax {
		return strconv.FormatUint(uint64(a), 10)
	}
	return fmt.Sprintf("%x:%x:%x", uint16(a>>32), uint16(a>>16), uint16(a))
}

// IA is a combined ISD-AS identifier, the unit of SCION inter-domain
// addressing and path-policy matching.
type IA struct {
	ISD ISD
	AS  AS
}

// MustIA builds an IA from its components; it never fails and exists for
// readable literals in tests and topology builders.
func MustIA(isd ISD, as AS) IA { return IA{ISD: isd, AS: as} }

// ParseIA parses an "ISD-AS" pair such as "1-ff00:0:110" or "2-42".
func ParseIA(s string) (IA, error) {
	isdStr, asStr, ok := strings.Cut(s, "-")
	if !ok {
		return IA{}, fmt.Errorf("parsing ISD-AS %q: missing '-' separator", s)
	}
	isd, err := ParseISD(isdStr)
	if err != nil {
		return IA{}, err
	}
	as, err := ParseAS(asStr)
	if err != nil {
		return IA{}, err
	}
	return IA{ISD: isd, AS: as}, nil
}

// String implements fmt.Stringer.
func (ia IA) String() string { return ia.ISD.String() + "-" + ia.AS.String() }

// IsZero reports whether both components are zero (the fully-wildcard IA).
func (ia IA) IsZero() bool { return ia.ISD == 0 && ia.AS == 0 }

// IsWildcard reports whether either component is a wildcard.
func (ia IA) IsWildcard() bool { return ia.ISD == WildcardISD || ia.AS == WildcardAS }

// Matches reports whether ia, possibly containing wildcard components,
// matches the concrete other IA. A zero ISD matches any ISD and a zero AS
// matches any AS.
func (ia IA) Matches(other IA) bool {
	if ia.ISD != WildcardISD && ia.ISD != other.ISD {
		return false
	}
	if ia.AS != WildcardAS && ia.AS != other.AS {
		return false
	}
	return true
}

// MarshalText implements encoding.TextMarshaler so IAs can key JSON maps.
func (ia IA) MarshalText() ([]byte, error) { return []byte(ia.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (ia *IA) UnmarshalText(b []byte) error {
	v, err := ParseIA(string(b))
	if err != nil {
		return err
	}
	*ia = v
	return nil
}

// Addr is a full SCION host address: the ISD-AS plus the AS-local IP.
type Addr struct {
	IA   IA
	Host netip.Addr
}

// ParseAddr parses "ISD-AS,host" such as "1-ff00:0:110,10.0.0.1".
func ParseAddr(s string) (Addr, error) {
	iaStr, hostStr, ok := strings.Cut(s, ",")
	if !ok {
		return Addr{}, fmt.Errorf("parsing SCION address %q: missing ','", s)
	}
	ia, err := ParseIA(iaStr)
	if err != nil {
		return Addr{}, err
	}
	host, err := netip.ParseAddr(hostStr)
	if err != nil {
		return Addr{}, fmt.Errorf("parsing SCION address %q: %w", s, err)
	}
	return Addr{IA: ia, Host: host}, nil
}

// String implements fmt.Stringer.
func (a Addr) String() string { return a.IA.String() + "," + a.Host.String() }

// IsValid reports whether the host component is a valid IP address.
func (a Addr) IsValid() bool { return a.Host.IsValid() }

// UDPAddr is a SCION UDP endpoint: host address plus port.
type UDPAddr struct {
	Addr
	Port uint16
}

// errNoPort is returned when a UDP endpoint string lacks the port component.
var errNoPort = errors.New("missing port")

// ParseUDPAddr parses "ISD-AS,host:port" such as "1-ff00:0:110,10.0.0.1:443".
// IPv6 hosts must be bracketed: "1-ff00:0:110,[::1]:443".
func ParseUDPAddr(s string) (UDPAddr, error) {
	iaStr, rest, ok := strings.Cut(s, ",")
	if !ok {
		return UDPAddr{}, fmt.Errorf("parsing SCION UDP address %q: missing ','", s)
	}
	ia, err := ParseIA(iaStr)
	if err != nil {
		return UDPAddr{}, err
	}
	ap, err := netip.ParseAddrPort(rest)
	if err != nil {
		return UDPAddr{}, fmt.Errorf("parsing SCION UDP address %q: %w", s, err)
	}
	if ap.Port() == 0 && !strings.Contains(rest, ":") {
		return UDPAddr{}, fmt.Errorf("parsing SCION UDP address %q: %w", s, errNoPort)
	}
	return UDPAddr{Addr: Addr{IA: ia, Host: ap.Addr()}, Port: ap.Port()}, nil
}

// String implements fmt.Stringer, bracketing IPv6 hosts.
func (a UDPAddr) String() string {
	return a.IA.String() + "," + netip.AddrPortFrom(a.Host, a.Port).String()
}

// Network implements net.Addr.
func (a UDPAddr) Network() string { return "scion+udp" }

// IfID identifies a SCION interface within an AS. Interface 0 is the
// wildcard ("any interface of this AS") in hop predicates.
type IfID uint16

// String implements fmt.Stringer.
func (i IfID) String() string { return strconv.FormatUint(uint64(i), 10) }
