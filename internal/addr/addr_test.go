package addr

import (
	"encoding/json"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseAS(t *testing.T) {
	cases := []struct {
		in   string
		want AS
		ok   bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"4294967295", asDecimalMax, true},
		{"4294967296", 0, false}, // decimal beyond 2^32-1 must use hex form
		{"ff00:0:110", 0xff00_0000_0110, true},
		{"ffff:ffff:ffff", MaxAS, true},
		{"0:0:0", 0, true},
		{"ff00:0", 0, false},
		{"ff00:0:110:0", 0, false},
		{"ff00::110", 0, false},
		{"12345:0:0", 0, false},
		{"", 0, false},
		{"-1", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAS(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAS(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAS(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestASStringRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		as := AS(v & uint64(MaxAS))
		parsed, err := ParseAS(as.String())
		return err == nil && parsed == as
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIA(t *testing.T) {
	ia, err := ParseIA("1-ff00:0:110")
	if err != nil {
		t.Fatal(err)
	}
	if ia.ISD != 1 || ia.AS != 0xff00_0000_0110 {
		t.Fatalf("unexpected IA %+v", ia)
	}
	if got := ia.String(); got != "1-ff00:0:110" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "1", "1-", "-ff00:0:110", "70000-1", "1-xyz"} {
		if _, err := ParseIA(bad); err == nil {
			t.Errorf("ParseIA(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestIAStringRoundTrip(t *testing.T) {
	f := func(isd uint16, as uint64) bool {
		ia := IA{ISD: ISD(isd), AS: AS(as & uint64(MaxAS))}
		parsed, err := ParseIA(ia.String())
		return err == nil && parsed == ia
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIAMatches(t *testing.T) {
	concrete := MustIA(1, 0xff00_0000_0110)
	cases := []struct {
		pattern string
		want    bool
	}{
		{"1-ff00:0:110", true},
		{"1-0", true},
		{"0-ff00:0:110", true},
		{"0-0", true},
		{"2-ff00:0:110", false},
		{"1-ff00:0:111", false},
	}
	for _, c := range cases {
		p, err := ParseIA(c.pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Matches(concrete); got != c.want {
			t.Errorf("%s.Matches(%s) = %v, want %v", p, concrete, got, c.want)
		}
	}
}

func TestIAWildcardAndZero(t *testing.T) {
	if !(IA{}).IsZero() {
		t.Error("zero IA not reported zero")
	}
	if !(IA{}).IsWildcard() {
		t.Error("zero IA not reported wildcard")
	}
	if MustIA(1, 2).IsWildcard() {
		t.Error("concrete IA reported wildcard")
	}
	if !MustIA(0, 2).IsWildcard() || !MustIA(1, 0).IsWildcard() {
		t.Error("partially wildcard IA not reported wildcard")
	}
}

func TestIAJSONMapKey(t *testing.T) {
	m := map[IA]int{MustIA(1, 0xff00_0000_0110): 7}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back map[IA]int
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back[MustIA(1, 0xff00_0000_0110)] != 7 {
		t.Fatalf("round trip lost data: %s -> %v", b, back)
	}
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("1-ff00:0:110,10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if a.IA != MustIA(1, 0xff00_0000_0110) || a.Host != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("unexpected addr %v", a)
	}
	if got := a.String(); got != "1-ff00:0:110,10.0.0.1" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "1-ff00:0:110", "1-ff00:0:110,", "1-ff00:0:110,999.1.1.1"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParseUDPAddr(t *testing.T) {
	a, err := ParseUDPAddr("1-ff00:0:110,10.0.0.1:443")
	if err != nil {
		t.Fatal(err)
	}
	if a.Port != 443 {
		t.Fatalf("port = %d", a.Port)
	}
	if got := a.String(); got != "1-ff00:0:110,10.0.0.1:443" {
		t.Fatalf("String() = %q", got)
	}
	v6, err := ParseUDPAddr("2-42,[::1]:8080")
	if err != nil {
		t.Fatal(err)
	}
	if got := v6.String(); got != "2-42,[::1]:8080" {
		t.Fatalf("String() = %q", got)
	}
	if v6.Network() != "scion+udp" {
		t.Fatalf("Network() = %q", v6.Network())
	}
	for _, bad := range []string{"1-ff00:0:110,10.0.0.1", "1-ff00:0:110,10.0.0.1:99999", "x"} {
		if _, err := ParseUDPAddr(bad); err == nil {
			t.Errorf("ParseUDPAddr(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestUDPAddrStringRoundTrip(t *testing.T) {
	f := func(isd uint16, as uint64, ip [4]byte, port uint16) bool {
		a := UDPAddr{
			Addr: Addr{
				IA:   IA{ISD: ISD(isd), AS: AS(as & uint64(MaxAS))},
				Host: netip.AddrFrom4(ip),
			},
			Port: port,
		}
		parsed, err := ParseUDPAddr(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
