// Package beacon implements the SCION path-discovery control plane: core
// ASes originate path-construction beacons (PCBs) which propagate AS to AS,
// "iteratively accumulating information during construction — similar to a
// BGP update traversing the Internet" (paper §2). Each AS extends the beacon
// with a signed, metadata-decorated entry; terminal extensions are
// registered at the path-server registry as up-, down-, and core-segments.
package beacon

import (
	"fmt"
	"sort"
	"time"

	"tango/internal/addr"
	"tango/internal/cppki"
	"tango/internal/pathdb"
	"tango/internal/segment"
	"tango/internal/topology"
)

// Infra holds the per-AS credentials of a simulated SCION internetwork: the
// control-plane signers (certified by each ISD's authority) and the data
// plane forwarding keys used to MAC hop fields.
type Infra struct {
	Authorities    map[addr.ISD]*cppki.Authority
	Signers        map[addr.IA]*cppki.Signer
	ForwardingKeys map[addr.IA][]byte
	// Store trusts every ISD in the topology.
	Store *cppki.Store
}

// NewInfra generates authorities, AS certificates, and forwarding keys for
// every AS in the topology, valid over [notBefore, notAfter].
func NewInfra(topo *topology.Topology, notBefore, notAfter time.Time) (*Infra, error) {
	inf := &Infra{
		Authorities:    make(map[addr.ISD]*cppki.Authority),
		Signers:        make(map[addr.IA]*cppki.Signer),
		ForwardingKeys: make(map[addr.IA][]byte),
		Store:          cppki.NewStore(),
	}
	for _, isd := range topo.ISDs() {
		auth, err := cppki.NewAuthority(isd, notBefore, notAfter)
		if err != nil {
			return nil, err
		}
		inf.Authorities[isd] = auth
		inf.Store.AddTRC(auth.TRC())
	}
	for _, as := range topo.ASes() {
		signer, err := inf.Authorities[as.IA.ISD].Issue(as.IA, notBefore, notAfter)
		if err != nil {
			return nil, err
		}
		inf.Signers[as.IA] = signer
		if err := inf.Store.AddCertificate(signer.Certificate(), notBefore); err != nil {
			return nil, err
		}
		inf.ForwardingKeys[as.IA] = []byte(fmt.Sprintf("forwarding-key-%s", as.IA))
	}
	return inf, nil
}

// Service runs beaconing over a topology and registers the resulting
// segments.
type Service struct {
	topo   *topology.Topology
	infra  *Infra
	reg    *pathdb.Registry
	expiry time.Duration
	segID  uint16
}

// NewService creates a beaconing service. Segments expire after the given
// duration (the paper's prototype relies on standard SCION expiries; we
// default to 6h if zero).
func NewService(topo *topology.Topology, infra *Infra, reg *pathdb.Registry, expiry time.Duration) *Service {
	if expiry == 0 {
		expiry = 6 * time.Hour
	}
	return &Service{topo: topo, infra: infra, reg: reg, expiry: expiry}
}

// Run performs one full beaconing round at the given instant: every core AS
// originates intra-ISD PCBs (flooded down parent-child links, registered as
// up- and down-segments) and core PCBs (flooded across core links,
// registered as core segments).
func (s *Service) Run(at time.Time) error {
	for _, core := range s.topo.CoreASes(addr.WildcardISD) {
		if err := s.beaconIntraISD(core, at); err != nil {
			return err
		}
		if err := s.beaconCore(core, at); err != nil {
			return err
		}
	}
	return nil
}

// beaconIntraISD floods one PCB from the core AS down its ISD.
func (s *Service) beaconIntraISD(origin *topology.ASInfo, at time.Time) error {
	s.segID++
	seg := segment.NewSegment(at, s.segID, origin.IA)
	return s.propagateDown(seg, origin.IA, 0, at)
}

// propagateDown extends the beacon at cur (entered via interface in;
// 0 at the origin) and both registers the terminal copy and floods extended
// copies to all children.
func (s *Service) propagateDown(seg *segment.Segment, cur addr.IA, in addr.IfID, at time.Time) error {
	// Terminal copy: register as up segment for cur and down segment toward
	// cur. The origin itself registers nothing (paths to the core AS are
	// built from up/core segments alone).
	if in != 0 {
		term, err := s.extend(seg, cur, in, 0, at)
		if err != nil {
			return err
		}
		if err := s.reg.RegisterUp(term, at); err != nil {
			return err
		}
		if err := s.reg.RegisterDown(term, at); err != nil {
			return err
		}
	}
	for _, intf := range s.topo.ChildInterfaces(cur) {
		if seg.ContainsIA(intf.Remote) {
			continue
		}
		ext, err := s.extend(seg, cur, in, intf.ID, at)
		if err != nil {
			return err
		}
		if err := s.propagateDown(ext, intf.Remote, intf.RemoteID, at); err != nil {
			return err
		}
	}
	return nil
}

// beaconCore floods one core PCB from the origin across core links.
func (s *Service) beaconCore(origin *topology.ASInfo, at time.Time) error {
	s.segID++
	seg := segment.NewSegment(at, s.segID, origin.IA)
	return s.propagateCore(seg, origin.IA, 0, at)
}

func (s *Service) propagateCore(seg *segment.Segment, cur addr.IA, in addr.IfID, at time.Time) error {
	if in != 0 {
		term, err := s.extend(seg, cur, in, 0, at)
		if err != nil {
			return err
		}
		if err := s.reg.RegisterCore(term, at); err != nil {
			return err
		}
	}
	for _, intf := range s.topo.CoreInterfaces(cur) {
		if seg.ContainsIA(intf.Remote) {
			continue
		}
		ext, err := s.extend(seg, cur, in, intf.ID, at)
		if err != nil {
			return err
		}
		if err := s.propagateCore(ext, intf.Remote, intf.RemoteID, at); err != nil {
			return err
		}
	}
	return nil
}

// extend builds cur's signed entry with hop field (in -> out), metadata
// decoration, and peer entries, and appends it to a copy of seg.
func (s *Service) extend(seg *segment.Segment, cur addr.IA, in, out addr.IfID, at time.Time) (*segment.Segment, error) {
	as := s.topo.AS(cur)
	if as == nil {
		return nil, fmt.Errorf("beacon: unknown AS %s", cur)
	}
	key := s.infra.ForwardingKeys[cur]
	signer := s.infra.Signers[cur]
	if key == nil || signer == nil {
		return nil, fmt.Errorf("beacon: no credentials for %s", cur)
	}
	exp := at.Add(s.expiry)

	hf := segment.HopField{ConsIngress: in, ConsEgress: out, ExpTime: exp}
	hf.MAC = segment.ComputeMAC(key, seg.Info, hf)

	entry := segment.ASEntry{
		Local:    cur,
		HopField: hf,
		Static: segment.StaticInfo{
			InternalMTU:     as.MTU,
			Geo:             as.Geo,
			CarbonIntensity: as.CarbonIntensity,
		},
	}
	if in != 0 {
		ingress := as.Interfaces[in]
		if ingress == nil {
			return nil, fmt.Errorf("beacon: AS %s has no interface %d", cur, in)
		}
		entry.Static.IngressLatency = ingress.Props.Latency
		entry.Static.IngressBandwidth = ingress.Props.Bandwidth
		entry.Static.IngressMTU = ingress.Props.MTU
	}
	if out != 0 {
		egress := as.Interfaces[out]
		if egress == nil {
			return nil, fmt.Errorf("beacon: AS %s has no interface %d", cur, out)
		}
		entry.Next = egress.Remote
	}
	// Advertise peering links; their hop fields share the entry's egress.
	for _, intf := range sortedPeering(as) {
		phf := segment.HopField{ConsIngress: intf.ID, ConsEgress: out, ExpTime: exp}
		phf.MAC = segment.ComputeMAC(key, seg.Info, phf)
		entry.Peers = append(entry.Peers, segment.PeerEntry{
			Peer:          intf.Remote,
			PeerInterface: intf.RemoteID,
			HopField:      phf,
			Latency:       intf.Props.Latency,
			MTU:           intf.Props.MTU,
		})
	}
	return seg.Extend(entry, signer)
}

func sortedPeering(as *topology.ASInfo) []*topology.Interface {
	var out []*topology.Interface
	for _, intf := range as.Interfaces {
		if intf.Type == topology.Peering {
			out = append(out, intf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
