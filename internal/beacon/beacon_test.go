package beacon

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pathdb"
	"tango/internal/segment"
	"tango/internal/topology"
)

var (
	t0     = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	t1     = t0.Add(24 * time.Hour)
	during = t0.Add(time.Hour)
)

// world runs a full beaconing round over the default topology.
func world(t *testing.T) (*topology.Topology, *Infra, *pathdb.Registry) {
	t.Helper()
	topo := topology.Default()
	infra, err := NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	svc := NewService(topo, infra, reg, 12*time.Hour)
	if err := svc.Run(t0); err != nil {
		t.Fatal(err)
	}
	return topo, infra, reg
}

func TestBeaconingRegistersSegments(t *testing.T) {
	_, _, reg := world(t)
	up, down, core := reg.Counts()
	if up == 0 || down == 0 || core == 0 {
		t.Fatalf("segment counts up=%d down=%d core=%d", up, down, core)
	}
	// Up and down segments are registered from the same terminal PCBs.
	if up != down {
		t.Fatalf("up=%d down=%d, want equal", up, down)
	}
}

func TestEveryNonCoreASHasUpSegments(t *testing.T) {
	topo, _, reg := world(t)
	for _, as := range topo.ASes() {
		if as.Core {
			continue
		}
		segs := reg.UpSegments(as.IA, during)
		if len(segs) == 0 {
			t.Errorf("AS %s has no up segments", as.IA)
		}
		for _, s := range segs {
			if s.LastIA() != as.IA {
				t.Errorf("up segment for %s terminates at %s", as.IA, s.LastIA())
			}
			core := topo.AS(s.FirstIA())
			if core == nil || !core.Core {
				t.Errorf("up segment for %s originates at non-core %s", as.IA, s.FirstIA())
			}
			if s.FirstIA().ISD != as.IA.ISD {
				t.Errorf("up segment for %s originates in foreign ISD %s", as.IA, s.FirstIA())
			}
		}
	}
}

func TestSegmentsVerifyAgainstStore(t *testing.T) {
	topo, infra, reg := world(t)
	for _, as := range topo.ASes() {
		for _, s := range reg.UpSegments(as.IA, during) {
			if err := s.Verify(infra.Store, during); err != nil {
				t.Errorf("up segment of %s: %v", as.IA, err)
			}
		}
	}
}

func TestCoreSegmentsBothOrientations(t *testing.T) {
	_, _, reg := world(t)
	ab := reg.CoreSegments(topology.Core110, topology.Core210, during)
	ba := reg.CoreSegments(topology.Core210, topology.Core110, during)
	if len(ab) == 0 || len(ba) == 0 {
		t.Fatalf("core segments 110->210 = %d, 210->110 = %d", len(ab), len(ba))
	}
	// Multi-hop core segments exist (e.g. 110-120-210).
	multi := false
	for _, cs := range ab {
		if len(cs.Seg.Entries) > 2 {
			multi = true
		}
	}
	if !multi {
		t.Error("no multi-hop core segments discovered")
	}
}

func TestBeaconMetadataDecoration(t *testing.T) {
	topo, _, reg := world(t)
	segs := reg.UpSegments(topology.AS122, during)
	if len(segs) == 0 {
		t.Fatal("no up segments for 122")
	}
	var deep *segment.Segment
	for _, s := range segs {
		if len(s.Entries) == 3 { // 120 -> 121 -> 122
			deep = s
		}
	}
	if deep == nil {
		t.Fatal("no 3-hop up segment for 122")
	}
	if deep.Entries[0].Static.IngressLatency != 0 {
		t.Error("origin entry has nonzero ingress latency")
	}
	if got := deep.Entries[1].Static.IngressLatency; got != 3*time.Millisecond {
		t.Errorf("121 ingress latency = %v, want 3ms", got)
	}
	if got := deep.Entries[2].Static.IngressLatency; got != 2*time.Millisecond {
		t.Errorf("122 ingress latency = %v, want 2ms", got)
	}
	for i, e := range deep.Entries {
		want := topo.AS(e.Local)
		if e.Static.CarbonIntensity != want.CarbonIntensity {
			t.Errorf("entry %d carbon = %v, want %v", i, e.Static.CarbonIntensity, want.CarbonIntensity)
		}
		if e.Static.Geo.Country != want.Geo.Country {
			t.Errorf("entry %d country = %q", i, e.Static.Geo.Country)
		}
	}
}

func TestBeaconPeerEntries(t *testing.T) {
	_, _, reg := world(t)
	// AS111 peers with AS121; its up segments must advertise that link.
	found := false
	for _, s := range reg.UpSegments(topology.AS111, during) {
		last := s.Entries[len(s.Entries)-1]
		for _, p := range last.Peers {
			if p.Peer == topology.AS121 {
				found = true
				if p.Latency != 6*time.Millisecond {
					t.Errorf("peer link latency = %v, want 6ms", p.Latency)
				}
				if p.HopField.ConsEgress != last.HopField.ConsEgress {
					t.Error("peer hop field egress does not match entry egress")
				}
			}
		}
	}
	if !found {
		t.Fatal("no peer entry for 111~121 advertised")
	}
}

func TestBeaconHopFieldMACs(t *testing.T) {
	_, infra, reg := world(t)
	for _, s := range reg.UpSegments(topology.AS112, during) {
		for i, e := range s.Entries {
			key := infra.ForwardingKeys[e.Local]
			if !segment.VerifyMAC(key, s.Info, e.HopField) {
				t.Errorf("entry %d (%s): hop MAC invalid", i, e.Local)
			}
		}
	}
}

func TestBeaconExpiry(t *testing.T) {
	topo := topology.Default()
	infra, err := NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	svc := NewService(topo, infra, reg, time.Hour)
	if err := svc.Run(t0); err != nil {
		t.Fatal(err)
	}
	if len(reg.UpSegments(topology.AS111, t0.Add(2*time.Hour))) != 0 {
		t.Fatal("expired segments returned")
	}
	if len(reg.UpSegments(topology.AS111, t0.Add(30*time.Minute))) == 0 {
		t.Fatal("unexpired segments missing")
	}
}

func TestInfraCoversAllASes(t *testing.T) {
	topo, infra, _ := world(t)
	for _, as := range topo.ASes() {
		if infra.Signers[as.IA] == nil {
			t.Errorf("no signer for %s", as.IA)
		}
		if infra.ForwardingKeys[as.IA] == nil {
			t.Errorf("no forwarding key for %s", as.IA)
		}
	}
	if len(infra.Authorities) != 2 {
		t.Fatalf("authorities = %d, want 2", len(infra.Authorities))
	}
}

func TestRerunIsIdempotentPerContent(t *testing.T) {
	topo := topology.Default()
	infra, err := NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	svc := NewService(topo, infra, reg, 12*time.Hour)
	if err := svc.Run(t0); err != nil {
		t.Fatal(err)
	}
	up1, down1, core1 := reg.Counts()
	// A second round at the same instant re-registers identical content;
	// SegIDs differ so counts grow, but queries still work.
	if err := svc.Run(t0); err != nil {
		t.Fatal(err)
	}
	up2, down2, core2 := reg.Counts()
	if up2 < up1 || down2 < down1 || core2 < core1 {
		t.Fatal("second round lost segments")
	}
	_ = addr.WildcardISD
}
