package browser

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"net/url"
	"strings"
	"sync"
	"time"

	"tango/internal/dnssim"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/proxy"
	"tango/internal/sciondetect"
	"tango/internal/shttp"
)

// Indicator is the browser-UI signal of paper §4.2: "An icon in the
// browser's UI indicates to the user whether all, some, or no parts of the
// website were fetched over SCION."
type Indicator int

const (
	// NoSCION: every resource came over legacy IP.
	NoSCION Indicator = iota
	// SomeSCION: a mix of SCION and IP.
	SomeSCION
	// AllSCION: every loaded resource came over SCION.
	AllSCION
)

// String implements fmt.Stringer.
func (i Indicator) String() string {
	switch i {
	case AllSCION:
		return "all-scion"
	case SomeSCION:
		return "some-scion"
	default:
		return "no-scion"
	}
}

// ResourceResult records one resource fetch.
type ResourceResult struct {
	URL       string
	Status    int
	Err       string
	Via       proxy.Via
	Compliant bool
	Blocked   bool // blocked by strict mode before any request was sent
	Bytes     int64
}

// PageLoad is the outcome of loading one page.
type PageLoad struct {
	URL string
	// PLT is the page load time: first request start to last resource done.
	PLT       time.Duration
	Main      ResourceResult
	Resources []ResourceResult
	Indicator Indicator
	// Compliant is false if any SCION-loaded resource used a
	// non-policy-compliant path (the paper surfaces this via the same
	// indicator).
	Compliant bool
	// Blocked counts strict-mode-blocked resources.
	Blocked int
}

// Extension is the WebExtensions-side logic (paper §5.1): it configures the
// proxy from user preferences, decides strict mode per request, blocks
// non-compliant strict requests, and ingests Strict-SCION response pins.
type Extension struct {
	proxy *proxy.Proxy
	store *sciondetect.StrictStore

	mu          sync.Mutex
	pol         *ppl.Policy
	fence       *policy.Geofence
	strictHosts map[string]bool // user-enabled strict mode per host
	strictAll   bool
}

// NewExtension wires the extension to its proxy and pin store.
func NewExtension(p *proxy.Proxy, store *sciondetect.StrictStore) *Extension {
	return &Extension{proxy: p, store: store, strictHosts: make(map[string]bool)}
}

// SetGeofence applies the user's geofence ("the extension... configures the
// proxy component according to the user's preferences"): the active policy
// and geofence are composed into a fresh PolicySelector installed on the
// proxy, whose epoch bump re-selects every pooled connection.
func (e *Extension) SetGeofence(g *policy.Geofence) {
	// Compose and install under one lock so concurrent setters cannot
	// install a stale composition last.
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fence = g
	e.proxy.SetSelector(pan.NewPolicySelector(e.pol, e.fence))
}

// SetPolicy applies a PPL policy, composed with the active geofence.
func (e *Extension) SetPolicy(p *ppl.Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pol = p
	e.proxy.SetSelector(pan.NewPolicySelector(e.pol, e.fence))
}

// SetSelector installs an arbitrary path-selection strategy (latency
// ranking, round-robin load spreading, interactive pinning, ...), bypassing
// the policy/geofence composition.
func (e *Extension) SetSelector(s pan.Selector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pol, e.fence = nil, nil
	e.proxy.SetSelector(s)
}

// EnableStrict turns strict mode on for one host ("the user can selectively
// enable strict mode, e.g., for particularly sensitive websites").
func (e *Extension) EnableStrict(host string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.strictHosts[strings.ToLower(host)] = true
}

// SetStrictAll forces strict mode for every request.
func (e *Extension) SetStrictAll(v bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.strictAll = v
}

// SetRace reconfigures the proxy's connection racing — the UI's
// "responsiveness" knob: width concurrent path dials per connection,
// keeping the first completed handshake.
func (e *Extension) SetRace(width int, stagger time.Duration) {
	e.proxy.SetRace(width, stagger)
}

// SetProbing starts (interval > 0) or stops the proxy's background path
// telemetry monitor, which keeps rankings and the liveness view fresh
// between requests.
func (e *Extension) SetProbing(interval time.Duration) {
	e.proxy.SetProbing(interval, 0)
}

// SetAdaptiveRace toggles telemetry-driven race-width tuning: the proxy
// races wide only while the leading path's estimate is stale or contested.
// Needs probing enabled to have effect.
func (e *Extension) SetAdaptiveRace(on bool) {
	e.proxy.SetAdaptiveRace(on)
}

// SetPassive toggles passive telemetry: pooled connections' ack RTTs and
// per-request first-byte times feed the monitor as zero-cost samples, so
// origins the user actually browses keep fresh estimates without spending
// the probe budget. Needs probing enabled to have effect.
func (e *Extension) SetPassive(on bool) {
	e.proxy.SetPassive(on)
}

// TelemetrySamples surfaces the per-origin passive-vs-probe sample split —
// the UI layer that can show which origins sustain their own telemetry
// from live traffic and which the probe budget is spent on.
func (e *Extension) TelemetrySamples() map[string]proxy.SampleSplit {
	return e.proxy.SampleSplits()
}

// PathHealth surfaces the proxy's per-path liveness and live RTT telemetry
// — the data behind rendering each path as live, degraded, or down in the
// paper's §4.2 path-selection UI.
func (e *Extension) PathHealth() []proxy.PathHealth {
	return e.proxy.PathHealth()
}

// LinkHealth surfaces the monitor's per-link congestion estimates — the UI
// layer that can show WHERE congestion lives, not just which paths feel it.
func (e *Extension) LinkHealth() []proxy.LinkStat {
	return e.proxy.LinkStats()
}

// strictFor decides whether a request to host runs in strict mode: user
// preference or an active Strict-SCION pin.
func (e *Extension) strictFor(host string) bool {
	host = strings.ToLower(host)
	e.mu.Lock()
	strict := e.strictAll || e.strictHosts[host]
	e.mu.Unlock()
	if strict {
		return true
	}
	return e.store != nil && e.store.Active(host)
}

// observeResponse ingests Strict-SCION pins from responses.
func (e *Extension) observeResponse(host string, hdr http.Header) {
	if e.store == nil {
		return
	}
	if v := hdr.Get(shttp.HeaderStrictSCION); v != "" {
		if age, ok := shttp.ParseStrictSCION(v); ok {
			e.store.Pin(host, age)
		}
	}
}

// Config assembles a Browser.
type Config struct {
	// Clock measures PLT and paces overheads.
	Clock netsim.Clock
	// Legacy is the IP network; LegacyHost is the browser machine's name.
	Legacy     *netsim.StreamNetwork
	LegacyHost string
	// Resolver resolves A records for direct (no-extension) fetching.
	Resolver *dnssim.Resolver
	// Extension, when non-nil, intercepts requests (Enabled flag below).
	Extension *Extension
	// ProxyAddr is the SKIP proxy's legacy address ("host:port").
	ProxyAddr string
	// Intercept, when set, is invoked per intercepted request and models
	// the WebExtensions request-interception cost (the dominant overhead
	// the paper measures in Figure 3). Implementations typically wait on a
	// serializing queue, like the extension's single event loop.
	Intercept func()
	// MaxConnsPerHost mirrors browser connection limits (default 6).
	MaxConnsPerHost int
}

// Browser is the simulated browser host.
type Browser struct {
	cfg     Config
	enabled bool // extension enabled (BGP/IP-Only disables it)
	direct  *http.Client
	proxied *http.Client
}

// New builds a browser. The extension starts enabled if cfg.Extension is
// set.
func New(cfg Config) *Browser {
	if cfg.MaxConnsPerHost == 0 {
		cfg.MaxConnsPerHost = 6
	}
	b := &Browser{cfg: cfg, enabled: cfg.Extension != nil}

	directTransport := &http.Transport{
		DialContext: func(ctx context.Context, network, authority string) (net.Conn, error) {
			return b.dialLegacy(ctx, authority)
		},
		MaxConnsPerHost:    cfg.MaxConnsPerHost,
		DisableCompression: true,
	}
	b.direct = &http.Client{Transport: directTransport}

	if cfg.Extension != nil {
		proxyURL := &url.URL{Scheme: "http", Host: cfg.ProxyAddr}
		proxiedTransport := &http.Transport{
			Proxy: http.ProxyURL(proxyURL),
			DialContext: func(ctx context.Context, network, authority string) (net.Conn, error) {
				// authority is the proxy's address here.
				return cfg.Legacy.Dial(ctx, cfg.LegacyHost, authority)
			},
			MaxConnsPerHost:    cfg.MaxConnsPerHost,
			DisableCompression: true,
		}
		b.proxied = &http.Client{Transport: proxiedTransport}
	}
	return b
}

// SetExtensionEnabled toggles the extension (the Figure 3 "BGP/IP-Only"
// experiment runs "with the extension disabled, i.e., requests are not
// intercepted by the extension and do not traverse the HTTP proxy").
func (b *Browser) SetExtensionEnabled(v bool) {
	if b.cfg.Extension == nil {
		v = false
	}
	b.enabled = v
}

// dialLegacy resolves and dials an origin directly (extension disabled).
func (b *Browser) dialLegacy(ctx context.Context, authority string) (net.Conn, error) {
	host, port, err := net.SplitHostPort(authority)
	if err != nil {
		host, port = authority, "80"
	}
	if _, err := netip.ParseAddr(host); err != nil {
		addrs, err := b.cfg.Resolver.LookupA(ctx, host)
		if err != nil {
			return nil, fmt.Errorf("browser: resolving %s: %w", host, err)
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("browser: no A records for %s", host)
		}
		host = addrs[0].String()
	}
	return b.cfg.Legacy.Dial(ctx, b.cfg.LegacyHost, net.JoinHostPort(host, port))
}

// fetch performs one resource fetch through the active pipeline. When
// wantBody is set the response body is returned (for the main document);
// otherwise it is drained and discarded.
func (b *Browser) fetch(ctx context.Context, rawURL string, wantBody bool) (ResourceResult, []byte) {
	res := ResourceResult{URL: rawURL}
	u, err := url.Parse(rawURL)
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	host := u.Hostname()

	client := b.direct
	if b.enabled {
		client = b.proxied
		if f := b.cfg.Intercept; f != nil {
			f()
		}
		ext := b.cfg.Extension
		if ext.strictFor(host) {
			// Strict mode: "it first checks whether the resource is
			// available via a policy-compliant SCION path. If there is such
			// a path, the request is forwarded via the proxy, otherwise the
			// request is blocked." (paper §5.1)
			avail, compliant := ext.proxy.CheckSCION(ctx, host)
			if !avail || !compliant {
				res.Blocked = true
				return res, nil
			}
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	resp, err := client.Do(req)
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	defer resp.Body.Close()
	var body []byte
	if wantBody {
		body, err = io.ReadAll(resp.Body)
		if err != nil {
			res.Err = err.Error()
			return res, nil
		}
		res.Bytes = int64(len(body))
	} else {
		n, _ := io.Copy(io.Discard, resp.Body)
		res.Bytes = n
	}
	res.Status = resp.StatusCode
	res.Via = proxy.Via(resp.Header.Get(proxy.HeaderVia))
	if res.Via == "" {
		res.Via = proxy.ViaIP // direct fetch
	}
	res.Compliant = resp.Header.Get(proxy.HeaderCompliant) != "false"
	if b.enabled {
		b.cfg.Extension.observeResponse(host, resp.Header)
	}
	return res, body
}

// LoadPage loads the document at rawURL and all its subresources, measuring
// page load time on the browser's clock.
func (b *Browser) LoadPage(ctx context.Context, rawURL string) (*PageLoad, error) {
	clock := b.cfg.Clock
	start := clock.Now()
	pl := &PageLoad{URL: rawURL, Compliant: true}

	// Fetch and parse the main document. A strict-mode block or error of
	// the main document fails the whole load.
	mainRes, html := b.fetch(ctx, rawURL, true)
	pl.Main = mainRes
	if mainRes.Blocked {
		pl.Blocked++
		pl.PLT = clock.Since(start)
		pl.Indicator = NoSCION
		return pl, fmt.Errorf("browser: %s blocked by strict mode", rawURL)
	}
	if mainRes.Err != "" {
		pl.PLT = clock.Since(start)
		return pl, fmt.Errorf("browser: loading %s: %s", rawURL, mainRes.Err)
	}

	base, _ := url.Parse(rawURL)
	subURLs := ExtractResourceURLs(base, string(html))

	results := make([]ResourceResult, len(subURLs))
	var wg sync.WaitGroup
	for i, u := range subURLs {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			results[i], _ = b.fetch(ctx, u, false)
		}(i, u)
	}
	wg.Wait()
	pl.Resources = results
	pl.PLT = clock.Since(start)

	// Indicator: over all loaded (non-blocked) resources.
	scion, ip := 0, 0
	count := func(r ResourceResult) {
		switch {
		case r.Blocked:
			pl.Blocked++
		case r.Err != "":
		case r.Via == proxy.ViaSCION:
			scion++
			if !r.Compliant {
				pl.Compliant = false
			}
		default:
			ip++
		}
	}
	count(pl.Main)
	for _, r := range results {
		count(r)
	}
	switch {
	case scion > 0 && ip == 0:
		pl.Indicator = AllSCION
	case scion > 0:
		pl.Indicator = SomeSCION
	default:
		pl.Indicator = NoSCION
	}
	return pl, nil
}
