// Package browser simulates the browser host of the paper's prototype: a
// page fetcher that loads a document and its subresources through the
// (optional) extension + proxy pipeline, the WebExtensions-style
// interception logic (strict mode, Strict-SCION pinning, proxy
// configuration), and page-load-time measurement — the metric of Figures 3,
// 5, and 6.
package browser

import (
	"net/url"
	"strings"
)

// ExtractResourceURLs scans an HTML document for subresources a browser
// fetches automatically: script src, link href, and img src attributes.
// Relative URLs are resolved against base. The scanner is a small
// state-free tokenizer sufficient for the static sites of the experiments.
func ExtractResourceURLs(base *url.URL, html string) []string {
	var out []string
	seen := make(map[string]bool)
	rest := html
	for {
		lt := strings.IndexByte(rest, '<')
		if lt < 0 {
			break
		}
		rest = rest[lt+1:]
		gt := strings.IndexByte(rest, '>')
		if gt < 0 {
			break
		}
		tag := rest[:gt]
		rest = rest[gt+1:]
		name, attrs, _ := strings.Cut(tag, " ")
		var wanted string
		switch strings.ToLower(name) {
		case "script", "img":
			wanted = "src"
		case "link":
			wanted = "href"
		default:
			continue
		}
		val, ok := attrValue(attrs, wanted)
		if !ok || val == "" {
			continue
		}
		ref, err := url.Parse(val)
		if err != nil {
			continue
		}
		abs := base.ResolveReference(ref).String()
		if !seen[abs] {
			seen[abs] = true
			out = append(out, abs)
		}
	}
	return out
}

// attrValue extracts a quoted attribute value from a tag's attribute list.
func attrValue(attrs, name string) (string, bool) {
	lower := strings.ToLower(attrs)
	idx := 0
	for {
		i := strings.Index(lower[idx:], name)
		if i < 0 {
			return "", false
		}
		i += idx
		// Must be a standalone attribute name followed by '='.
		if i > 0 && !isSpace(lower[i-1]) {
			idx = i + len(name)
			continue
		}
		j := i + len(name)
		for j < len(attrs) && isSpace(attrs[j]) {
			j++
		}
		if j >= len(attrs) || attrs[j] != '=' {
			idx = i + len(name)
			continue
		}
		j++
		for j < len(attrs) && isSpace(attrs[j]) {
			j++
		}
		if j >= len(attrs) {
			return "", false
		}
		quote := attrs[j]
		if quote != '"' && quote != '\'' {
			// Unquoted value: read to whitespace.
			end := j
			for end < len(attrs) && !isSpace(attrs[end]) {
				end++
			}
			return attrs[j:end], true
		}
		j++
		end := strings.IndexByte(attrs[j:], quote)
		if end < 0 {
			return "", false
		}
		return attrs[j : j+end], true
	}
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }
