package browser

import (
	"net/url"
	"testing"
)

func mustURL(t *testing.T, s string) *url.URL {
	t.Helper()
	u, err := url.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestExtractResourceURLs(t *testing.T) {
	base := mustURL(t, "http://site.test/index.html")
	html := `<!DOCTYPE html>
<html><head>
  <title>x</title>
  <script src="/static/app.js"></script>
  <link rel="stylesheet" href="style.css">
  <script src="http://cdn.test/lib.js"></script>
</head><body>
  <img src="/img/a.png">
  <img src='/img/b.png'>
  <img src=/img/unquoted.gif>
  <p>src="not-a-tag.js"</p>
  <a href="/page2.html">link</a>
</body></html>`
	got := ExtractResourceURLs(base, html)
	want := []string{
		"http://site.test/static/app.js",
		"http://site.test/style.css",
		"http://cdn.test/lib.js",
		"http://site.test/img/a.png",
		"http://site.test/img/b.png",
		"http://site.test/img/unquoted.gif",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resource %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestExtractDeduplicates(t *testing.T) {
	base := mustURL(t, "http://s.test/")
	html := `<img src="/a.png"><img src="/a.png"><script src="/a.png"></script>`
	if got := ExtractResourceURLs(base, html); len(got) != 1 {
		t.Fatalf("got %v, want one deduplicated URL", got)
	}
}

func TestExtractIgnoresAnchorsAndMalformed(t *testing.T) {
	base := mustURL(t, "http://s.test/")
	cases := []string{
		`<a href="/x">l</a>`,
		`<script></script>`,
		`<img>`,
		`<img src="">`,
		`<img data-src="/lazy.png">`,
		`<`,
		`<img src="/a.png"`, // unterminated tag
	}
	for _, html := range cases {
		if got := ExtractResourceURLs(base, html); len(got) != 0 {
			t.Errorf("ExtractResourceURLs(%q) = %v, want none", html, got)
		}
	}
}

func TestExtractCaseInsensitiveTags(t *testing.T) {
	base := mustURL(t, "http://s.test/")
	html := `<IMG SRC="/a.png"><Script Src="/b.js"></Script>`
	got := ExtractResourceURLs(base, html)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestIndicatorString(t *testing.T) {
	if AllSCION.String() != "all-scion" || SomeSCION.String() != "some-scion" || NoSCION.String() != "no-scion" {
		t.Fatal("indicator strings wrong")
	}
}
