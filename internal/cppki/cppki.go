// Package cppki implements a miniature SCION control-plane PKI: each
// isolation domain has a trust root (TRC) whose key certifies the ASes in
// that ISD, and ASes sign control-plane messages (beacons) with their
// certified keys. Verification is anchored in a trust store holding the TRCs
// of all ISDs the host trusts.
//
// The design follows the paper's description of SCION ISDs as "local trust
// roots for SCION's control plane PKI": signatures are ed25519, certificates
// are minimal, and chains are exactly TRC root -> AS certificate -> message.
package cppki

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tango/internal/addr"
)

// TRC is the trust root configuration of one ISD.
type TRC struct {
	ISD       addr.ISD
	Serial    uint64
	NotBefore time.Time
	NotAfter  time.Time
	RootKey   ed25519.PublicKey
}

// Validity reports whether the TRC covers the instant t.
func (t *TRC) Validity(at time.Time) bool {
	return !at.Before(t.NotBefore) && !at.After(t.NotAfter)
}

// Certificate binds an AS to its control-plane public key, signed by the
// ISD's trust root.
type Certificate struct {
	IA        addr.IA
	PublicKey ed25519.PublicKey
	NotBefore time.Time
	NotAfter  time.Time
	Signature []byte
}

// Validity reports whether the certificate covers the instant t.
func (c *Certificate) Validity(at time.Time) bool {
	return !at.Before(c.NotBefore) && !at.After(c.NotAfter)
}

// signedBytes is the deterministic byte encoding covered by the TRC root
// signature.
func (c *Certificate) signedBytes() []byte {
	buf := make([]byte, 0, 2+8+8+8+len(c.PublicKey))
	buf = binary.BigEndian.AppendUint16(buf, uint16(c.IA.ISD))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.IA.AS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.NotBefore.UnixNano()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.NotAfter.UnixNano()))
	buf = append(buf, c.PublicKey...)
	return buf
}

// Authority is the certificate authority of one ISD; it owns the TRC root
// private key and issues AS certificates.
type Authority struct {
	trc  *TRC
	priv ed25519.PrivateKey
}

// NewAuthority generates a fresh trust root for the ISD, valid over the
// given window.
func NewAuthority(isd addr.ISD, notBefore, notAfter time.Time) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generating ISD %d root key: %w", isd, err)
	}
	return &Authority{
		trc:  &TRC{ISD: isd, Serial: 1, NotBefore: notBefore, NotAfter: notAfter, RootKey: pub},
		priv: priv,
	}, nil
}

// TRC returns the authority's trust root configuration.
func (a *Authority) TRC() *TRC { return a.trc }

// Issue creates and signs a certificate plus matching signer for the AS.
func (a *Authority) Issue(ia addr.IA, notBefore, notAfter time.Time) (*Signer, error) {
	if ia.ISD != a.trc.ISD {
		return nil, fmt.Errorf("issuing cert for %s: wrong ISD (authority is ISD %d)", ia, a.trc.ISD)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generating key for %s: %w", ia, err)
	}
	cert := &Certificate{IA: ia, PublicKey: pub, NotBefore: notBefore, NotAfter: notAfter}
	cert.Signature = ed25519.Sign(a.priv, cert.signedBytes())
	return &Signer{cert: cert, priv: priv}, nil
}

// Signer signs control-plane messages on behalf of one AS.
type Signer struct {
	cert *Certificate
	priv ed25519.PrivateKey
}

// IA returns the signing AS.
func (s *Signer) IA() addr.IA { return s.cert.IA }

// Certificate returns the signer's certificate for distribution.
func (s *Signer) Certificate() *Certificate { return s.cert }

// Sign produces a detached signature over msg.
func (s *Signer) Sign(msg []byte) []byte { return ed25519.Sign(s.priv, msg) }

// Errors returned by the trust store.
var (
	ErrUnknownISD       = errors.New("cppki: no TRC for ISD")
	ErrUnknownAS        = errors.New("cppki: no certificate for AS")
	ErrExpired          = errors.New("cppki: credential not valid at this time")
	ErrBadCertSignature = errors.New("cppki: certificate signature invalid")
	ErrBadSignature     = errors.New("cppki: message signature invalid")
)

// Store is a trust store: TRCs for the trusted ISDs plus a cache of verified
// AS certificates. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	trcs  map[addr.ISD]*TRC
	certs map[addr.IA]*Certificate
}

// NewStore builds a trust store seeded with the given TRCs.
func NewStore(trcs ...*TRC) *Store {
	s := &Store{
		trcs:  make(map[addr.ISD]*TRC),
		certs: make(map[addr.IA]*Certificate),
	}
	for _, t := range trcs {
		s.trcs[t.ISD] = t
	}
	return s
}

// AddTRC installs (or replaces) the TRC of an ISD.
func (s *Store) AddTRC(t *TRC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trcs[t.ISD] = t
}

// AddCertificate verifies cert against the ISD's TRC and caches it.
func (s *Store) AddCertificate(cert *Certificate, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	trc, ok := s.trcs[cert.IA.ISD]
	if !ok {
		return fmt.Errorf("%w %d", ErrUnknownISD, cert.IA.ISD)
	}
	if !trc.Validity(at) || !cert.Validity(at) {
		return fmt.Errorf("verifying certificate of %s: %w", cert.IA, ErrExpired)
	}
	if !ed25519.Verify(trc.RootKey, cert.signedBytes(), cert.Signature) {
		return fmt.Errorf("verifying certificate of %s: %w", cert.IA, ErrBadCertSignature)
	}
	s.certs[cert.IA] = cert
	return nil
}

// Certificate returns the cached certificate for ia, if any.
func (s *Store) Certificate(ia addr.IA) (*Certificate, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.certs[ia]
	return c, ok
}

// Verify checks a detached signature by ia over msg at the given instant.
func (s *Store) Verify(ia addr.IA, msg, sig []byte, at time.Time) error {
	s.mu.RLock()
	cert, ok := s.certs[ia]
	trc := s.trcs[ia.ISD]
	s.mu.RUnlock()
	if trc == nil {
		return fmt.Errorf("%w %d", ErrUnknownISD, ia.ISD)
	}
	if !ok {
		return fmt.Errorf("%w %s", ErrUnknownAS, ia)
	}
	if !cert.Validity(at) || !trc.Validity(at) {
		return fmt.Errorf("verifying signature of %s: %w", ia, ErrExpired)
	}
	if !ed25519.Verify(cert.PublicKey, msg, sig) {
		return fmt.Errorf("verifying signature of %s: %w", ia, ErrBadSignature)
	}
	return nil
}
