package cppki

import (
	"testing"
	"time"

	"tango/internal/addr"
)

var (
	t0     = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	t1     = t0.Add(24 * time.Hour)
	during = t0.Add(time.Hour)
	ia110  = addr.MustIA(1, 0xff00_0000_0110)
	ia120  = addr.MustIA(1, 0xff00_0000_0120)
	ia210  = addr.MustIA(2, 0xff00_0000_0210)
)

func newISD1(t *testing.T) (*Authority, *Signer, *Store) {
	t.Helper()
	auth, err := NewAuthority(1, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := auth.Issue(ia110, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(auth.TRC())
	if err := store.AddCertificate(signer.Certificate(), during); err != nil {
		t.Fatal(err)
	}
	return auth, signer, store
}

func TestSignAndVerify(t *testing.T) {
	_, signer, store := newISD1(t)
	msg := []byte("path segment payload")
	sig := signer.Sign(msg)
	if err := store.Verify(ia110, msg, sig, during); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	_, signer, store := newISD1(t)
	sig := signer.Sign([]byte("original"))
	if err := store.Verify(ia110, []byte("forged"), sig, during); err == nil {
		t.Fatal("tampered message verified")
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	auth, _, store := newISD1(t)
	other, err := auth.Issue(ia120, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddCertificate(other.Certificate(), during); err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sig := other.Sign(msg)
	if err := store.Verify(ia110, msg, sig, during); err == nil {
		t.Fatal("signature attributed to wrong AS verified")
	}
}

func TestAddCertificateRejectsForgery(t *testing.T) {
	auth, signer, _ := newISD1(t)
	// A store trusting a different root must reject the certificate.
	otherAuth, err := NewAuthority(1, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(otherAuth.TRC())
	if err := store.AddCertificate(signer.Certificate(), during); err == nil {
		t.Fatal("certificate from untrusted root accepted")
	}
	_ = auth
}

func TestAddCertificateRejectsTampering(t *testing.T) {
	_, signer, _ := newISD1(t)
	auth2, err := NewAuthority(1, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(auth2.TRC())
	cert := *signer.Certificate()
	cert.IA = ia120 // rebind the key to another AS
	if err := store.AddCertificate(&cert, during); err == nil {
		t.Fatal("tampered certificate accepted")
	}
}

func TestExpiryEnforced(t *testing.T) {
	_, signer, store := newISD1(t)
	msg := []byte("m")
	sig := signer.Sign(msg)
	if err := store.Verify(ia110, msg, sig, t1.Add(time.Hour)); err == nil {
		t.Fatal("expired certificate verified")
	}
	if err := store.Verify(ia110, msg, sig, t0.Add(-time.Hour)); err == nil {
		t.Fatal("not-yet-valid certificate verified")
	}
}

func TestUnknownISDAndAS(t *testing.T) {
	_, signer, store := newISD1(t)
	msg := []byte("m")
	sig := signer.Sign(msg)
	if err := store.Verify(ia210, msg, sig, during); err == nil {
		t.Fatal("verify for untrusted ISD succeeded")
	}
	if err := store.Verify(ia120, msg, sig, during); err == nil {
		t.Fatal("verify for unknown AS succeeded")
	}
}

func TestIssueWrongISD(t *testing.T) {
	auth, _, _ := newISD1(t)
	if _, err := auth.Issue(ia210, t0, t1); err == nil {
		t.Fatal("ISD-1 authority issued ISD-2 certificate")
	}
}

func TestCertificateLookup(t *testing.T) {
	_, signer, store := newISD1(t)
	if _, ok := store.Certificate(ia110); !ok {
		t.Fatal("cached certificate not found")
	}
	if _, ok := store.Certificate(ia120); ok {
		t.Fatal("phantom certificate found")
	}
	if signer.IA() != ia110 {
		t.Fatalf("signer IA = %v", signer.IA())
	}
}
