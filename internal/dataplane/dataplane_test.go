package dataplane_test

import (
	"bytes"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/dataplane"
	"tango/internal/netsim"
	"tango/internal/pathdb"
	"tango/internal/segment"
	"tango/internal/topology"
)

var (
	t0     = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	t1     = t0.Add(24 * time.Hour)
	during = t0.Add(time.Hour)
)

type world struct {
	topo  *topology.Topology
	infra *beacon.Infra
	comb  *pathdb.Combiner
	world *dataplane.World
	clock *netsim.SimClock
}

func newWorld(t *testing.T) *world {
	t.Helper()
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	if err := beacon.NewService(topo, infra, reg, 12*time.Hour).Run(t0); err != nil {
		t.Fatal(err)
	}
	clock := netsim.NewSimClock(during)
	w, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &world{topo: topo, infra: infra, comb: pathdb.NewCombiner(reg), world: w, clock: clock}
}

func udp(ia addr.IA, host string, port uint16) addr.UDPAddr {
	return addr.UDPAddr{Addr: addr.Addr{IA: ia, Host: netip.MustParseAddr(host)}, Port: port}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	p := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 4242),
		Dst:     udp(topology.AS211, "192.168.1.9", 443),
		CurrHop: 1,
		Hops: []segment.Hop{
			{IA: topology.AS111, Egress: 2, NumAuth: 1, Auth: [2]segment.AuthField{{
				HopField: segment.HopField{ConsIngress: 1, ConsEgress: 2, ExpTime: t1, MAC: segment.MAC{1, 2, 3, 4, 5, 6}},
				SegInfo:  segment.Info{Timestamp: t0, SegID: 7, Origin: topology.Core110},
			}}},
			{IA: topology.Core110, Ingress: 1, Egress: 3, NumAuth: 2, Auth: [2]segment.AuthField{
				{HopField: segment.HopField{ConsIngress: 1, ConsEgress: 0, ExpTime: t1}, SegInfo: segment.Info{Timestamp: t0, SegID: 7, Origin: topology.Core110}},
				{HopField: segment.HopField{ConsIngress: 0, ConsEgress: 3, ExpTime: t1}, SegInfo: segment.Info{Timestamp: t0, SegID: 8, Origin: topology.Core110}},
			}},
		},
		Payload: []byte("hello scion"),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != dataplane.HeaderLen(p.Hops)+len(p.Payload) {
		t.Fatalf("encoded %d bytes, HeaderLen promises %d+%d", len(buf), dataplane.HeaderLen(p.Hops), len(p.Payload))
	}
	q, err := dataplane.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.CurrHop != p.CurrHop {
		t.Fatalf("header mismatch: %+v", q)
	}
	if len(q.Hops) != len(p.Hops) {
		t.Fatal("hop count changed")
	}
	for i := range p.Hops {
		if !p.Hops[i].Auth[0].HopField.ExpTime.Equal(q.Hops[i].Auth[0].HopField.ExpTime) {
			t.Fatalf("hop %d exp time mismatch", i)
		}
		p.Hops[i].Auth[0].HopField.ExpTime = q.Hops[i].Auth[0].HopField.ExpTime
		p.Hops[i].Auth[1].HopField.ExpTime = q.Hops[i].Auth[1].HopField.ExpTime
		p.Hops[i].Auth[0].SegInfo.Timestamp = q.Hops[i].Auth[0].SegInfo.Timestamp
		p.Hops[i].Auth[1].SegInfo.Timestamp = q.Hops[i].Auth[1].SegInfo.Timestamp
		if p.Hops[i] != q.Hops[i] {
			t.Fatalf("hop %d mismatch:\n%+v\n%+v", i, p.Hops[i], q.Hops[i])
		}
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload %q", q.Payload)
	}
}

func TestPacketUnmarshalTruncated(t *testing.T) {
	p := &dataplane.Packet{Src: udp(topology.AS111, "10.0.0.1", 1), Dst: udp(topology.AS112, "10.0.0.2", 2), Payload: []byte("xyz")}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := dataplane.Unmarshal(buf[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

func TestPacketUnmarshalFuzz(t *testing.T) {
	f := func(junk []byte) bool {
		// Must never panic; errors are fine.
		_, _ = dataplane.Unmarshal(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// sendAndAwait injects pkt at the source router and waits (advancing virtual
// time) for delivery at the destination AS.
func sendAndAwait(t *testing.T, w *world, pkt *dataplane.Packet) (*dataplane.Packet, time.Duration) {
	t.Helper()
	var mu sync.Mutex
	var got *dataplane.Packet
	w.world.Router(pkt.Dst.IA).SetDeliveryHandler(func(p *dataplane.Packet) {
		mu.Lock()
		got = p
		mu.Unlock()
	})
	start := w.clock.Now()
	if err := w.world.Router(pkt.Src.IA).InjectLocal(pkt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mu.Lock()
		done := got != nil
		mu.Unlock()
		if done {
			return got, w.clock.Since(start)
		}
		if !w.clock.AdvanceToNext() {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	return got, w.clock.Since(start)
}

func TestForwardingAcrossISDs(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	best := paths[0]
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1000),
		Dst:     udp(topology.AS211, "10.0.0.2", 2000),
		Hops:    best.Hops,
		Payload: []byte("payload across the world"),
	}
	got, elapsed := sendAndAwait(t, w, pkt)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if string(got.Payload) != "payload across the world" {
		t.Fatalf("payload %q", got.Payload)
	}
	// Propagation plus per-hop serialization (a few µs at 1 Gbps).
	if elapsed < best.Meta.Latency || elapsed > best.Meta.Latency+time.Millisecond {
		t.Fatalf("delivery took %v, want ~path latency %v", elapsed, best.Meta.Latency)
	}
}

func TestForwardingPeeringPath(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS121, during)
	var peering *segment.Path
	for _, p := range paths {
		if len(p.Hops) == 2 {
			peering = p
		}
	}
	if peering == nil {
		t.Fatal("no peering path")
	}
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1),
		Dst:     udp(topology.AS121, "10.0.0.2", 2),
		Hops:    peering.Hops,
		Payload: []byte("via peering"),
	}
	got, elapsed := sendAndAwait(t, w, pkt)
	if got == nil {
		t.Fatal("packet not delivered over peering link")
	}
	if elapsed < 6*time.Millisecond || elapsed > 7*time.Millisecond {
		t.Fatalf("peering delivery took %v, want ~6ms", elapsed)
	}
}

func TestForwardingRejectsForgedMAC(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	best := paths[0]
	hops := append([]segment.Hop(nil), best.Hops...)
	// A malicious end host rewrites an interface to detour the path; the
	// MAC no longer covers it.
	hops[1].Auth[0].HopField.ConsEgress += 1
	hops[1].Egress += 0 // travel fields unchanged; MAC now stale
	pkt := &dataplane.Packet{
		Src:  udp(topology.AS111, "10.0.0.1", 1),
		Dst:  udp(topology.AS211, "10.0.0.2", 2),
		Hops: hops, Payload: []byte("evil"),
	}
	got, _ := sendAndAwait(t, w, pkt)
	if got != nil {
		t.Fatal("packet with forged hop field delivered")
	}
	stats := w.world.Router(hops[1].IA).Stats()
	if stats.BadMAC == 0 {
		t.Fatalf("router stats %+v: expected BadMAC", stats)
	}
}

func TestForwardingRejectsUnauthorizedDetour(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	best := paths[0]
	hops := append([]segment.Hop(nil), best.Hops...)
	// Keep MACs intact but change the travel egress to an interface not
	// covered by any carried authorization.
	hops[1].Egress = 99
	pkt := &dataplane.Packet{
		Src:  udp(topology.AS111, "10.0.0.1", 1),
		Dst:  udp(topology.AS211, "10.0.0.2", 2),
		Hops: hops, Payload: []byte("detour"),
	}
	got, _ := sendAndAwait(t, w, pkt)
	if got != nil {
		t.Fatal("detoured packet delivered")
	}
	stats := w.world.Router(hops[1].IA).Stats()
	if stats.Unauthorized == 0 {
		t.Fatalf("router stats %+v: expected Unauthorized", stats)
	}
}

func TestForwardingRejectsExpiredHops(t *testing.T) {
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	if err := beacon.NewService(topo, infra, reg, time.Hour).Run(t0); err != nil {
		t.Fatal(err)
	}
	// Clock starts after hop expiry.
	clock := netsim.NewSimClock(t0.Add(2 * time.Hour))
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	paths := pathdb.NewCombiner(reg).Paths(topology.AS111, topology.AS211, t0.Add(30*time.Minute))
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	pkt := &dataplane.Packet{
		Src:  udp(topology.AS111, "10.0.0.1", 1),
		Dst:  udp(topology.AS211, "10.0.0.2", 2),
		Hops: paths[0].Hops, Payload: []byte("late"),
	}
	if err := dw.Router(topology.AS111).InjectLocal(pkt); err != nil {
		t.Fatal(err)
	}
	if s := dw.Router(topology.AS111).Stats(); s.Expired == 0 {
		t.Fatalf("router stats %+v: expected Expired", s)
	}
}

func TestLocalDeliveryEmptyPath(t *testing.T) {
	w := newWorld(t)
	var got *dataplane.Packet
	w.world.Router(topology.AS111).SetDeliveryHandler(func(p *dataplane.Packet) { got = p })
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1),
		Dst:     udp(topology.AS111, "10.0.0.2", 2),
		Payload: []byte("local"),
	}
	if err := w.world.Router(topology.AS111).InjectLocal(pkt); err != nil {
		t.Fatal(err)
	}
	w.clock.AdvanceToNext() // AS-local delivery is asynchronous
	if got == nil || string(got.Payload) != "local" {
		t.Fatal("AS-local packet not delivered")
	}
}

func TestInjectLocalValidation(t *testing.T) {
	w := newWorld(t)
	// Empty path to a non-local destination.
	err := w.world.Router(topology.AS111).InjectLocal(&dataplane.Packet{
		Src: udp(topology.AS111, "10.0.0.1", 1),
		Dst: udp(topology.AS211, "10.0.0.2", 2),
	})
	if err == nil {
		t.Fatal("empty path to remote AS accepted")
	}
	// Path whose first hop is another AS.
	paths := w.comb.Paths(topology.AS112, topology.AS211, during)
	err = w.world.Router(topology.AS111).InjectLocal(&dataplane.Packet{
		Src:  udp(topology.AS111, "10.0.0.1", 1),
		Dst:  udp(topology.AS211, "10.0.0.2", 2),
		Hops: paths[0].Hops,
	})
	if err == nil {
		t.Fatal("foreign first hop accepted")
	}
}

func TestReplyPathRoundTrip(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	best := paths[0]
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1000),
		Dst:     udp(topology.AS211, "10.0.0.2", 2000),
		Hops:    best.Hops,
		Payload: []byte("ping"),
	}
	got, _ := sendAndAwait(t, w, pkt)
	if got == nil {
		t.Fatal("request not delivered")
	}
	reply := &dataplane.Packet{
		Src:     got.Dst,
		Dst:     got.Src,
		Hops:    got.ReplyPath().Hops,
		CurrHop: 0,
		Payload: []byte("pong"),
	}
	back, elapsed := sendAndAwait(t, w, reply)
	if back == nil {
		t.Fatal("reply not delivered over reversed path")
	}
	if string(back.Payload) != "pong" {
		t.Fatalf("reply payload %q", back.Payload)
	}
	if elapsed < best.Meta.Latency || elapsed > best.Meta.Latency+time.Millisecond {
		t.Fatalf("reply took %v, want ~%v", elapsed, best.Meta.Latency)
	}
}

func TestMTUEnforcedByLinks(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	best := paths[0]
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1),
		Dst:     udp(topology.AS211, "10.0.0.2", 2),
		Hops:    best.Hops,
		Payload: make([]byte, best.Meta.MTU+1),
	}
	got, _ := sendAndAwait(t, w, pkt)
	if got != nil {
		t.Fatal("oversized packet delivered")
	}
}
