package dataplane

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

// fuzzSeedPacket builds a representative two-hop packet for seeding corpora.
func fuzzSeedPacket() *Packet {
	exp := time.Date(2022, 10, 11, 0, 0, 0, 0, time.UTC)
	hop := func(ia addr.IA, in, out addr.IfID, numAuth int) segment.Hop {
		h := segment.Hop{IA: ia, Ingress: in, Egress: out, NumAuth: numAuth}
		for j := 0; j < numAuth; j++ {
			h.Auth[j] = segment.AuthField{
				SegInfo: segment.Info{
					Timestamp: exp.Add(-time.Hour),
					SegID:     uint16(7 + j),
					Origin:    addr.IA{ISD: 1, AS: 0xff0000000110},
				},
				HopField: segment.HopField{
					ConsIngress: in,
					ConsEgress:  out,
					ExpTime:     exp,
					MAC:         segment.MAC{1, 2, 3, 4, 5, byte(j)},
				},
			}
		}
		return h
	}
	return &Packet{
		Src: addr.UDPAddr{Addr: addr.Addr{IA: addr.IA{ISD: 1, AS: 0xff0000000111}, Host: netip.MustParseAddr("10.0.0.1")}, Port: 1000},
		Dst: addr.UDPAddr{Addr: addr.Addr{IA: addr.IA{ISD: 2, AS: 0xff0000000211}, Host: netip.MustParseAddr("10.0.0.2")}, Port: 2000},
		Hops: []segment.Hop{
			hop(addr.IA{ISD: 1, AS: 0xff0000000111}, 0, 1, 1),
			hop(addr.IA{ISD: 1, AS: 0xff0000000110}, 2, 3, 2),
			hop(addr.IA{ISD: 2, AS: 0xff0000000211}, 4, 0, 1),
		},
		Payload: []byte("fuzz seed payload"),
	}
}

// FuzzUnmarshal checks that Unmarshal is panic-free on arbitrary input and
// that every packet it accepts round-trips: Marshal must succeed on the
// decoded packet and decoding the re-encoded bytes must reproduce it exactly.
func FuzzUnmarshal(f *testing.F) {
	pkt := fuzzSeedPacket()
	wire, err := pkt.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add(wire[:len(wire)-5])
	f.Add([]byte{version, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		enc, err := p.Marshal()
		if err != nil {
			t.Fatalf("Marshal rejected a packet Unmarshal accepted: %v", err)
		}
		q, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("Unmarshal rejected its own re-encoding: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip diverged:\n  first  %+v\n  second %+v", p, q)
		}
	})
}

// FuzzTransitHop differentially tests the router's forwarding fast path
// against the full decoder: whenever currHopSpan locates the current hop,
// decoding that span must agree exactly with Unmarshal's view of the same
// hop, and the final flag must match the hop position. This is the property
// the MAC verdict cache and the in-place CurrHop patch rely on.
func FuzzTransitHop(f *testing.F) {
	pkt := fuzzSeedPacket()
	for curr := uint8(0); curr < 3; curr++ {
		pkt.CurrHop = curr
		wire, err := pkt.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{version, 1, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		raw, final, ok := currHopSpan(data)
		if !ok {
			return
		}
		// The span must be a window into data at the documented offset so the
		// MAC cache's identity (these exact bytes) matches what a re-marshal
		// of the decoded hop would produce.
		if len(raw) < hopFixedLen {
			t.Fatalf("span shorter than a fixed hop: %d", len(raw))
		}
		hop := decodeHopSpan(raw) // must not panic: span is pre-validated
		p, err := Unmarshal(data)
		if err != nil {
			return // fast path optimism; router's slow path reports the error
		}
		curr := int(p.CurrHop)
		if curr >= len(p.Hops) {
			t.Fatalf("currHopSpan ok=true but CurrHop %d out of %d hops", curr, len(p.Hops))
		}
		if got, want := final, curr == len(p.Hops)-1; got != want {
			t.Fatalf("final=%v, want %v (hop %d of %d)", got, want, curr, len(p.Hops))
		}
		if !reflect.DeepEqual(hop, p.Hops[curr]) {
			t.Fatalf("fast path decoded hop diverges from Unmarshal:\n  fast %+v\n  full %+v", hop, p.Hops[curr])
		}
		// The span's bytes must also match what the full encoder emits for
		// this hop — the identity property that lets the sender-side template
		// (hopSpan) and the transit router share one MAC verdict cache key.
		enc, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		raw2, _, ok2 := currHopSpan(enc)
		if !ok2 {
			t.Fatal("currHopSpan failed on re-encoded packet")
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("hop span not canonical:\n  input    %x\n  re-encode %x", raw, raw2)
		}
	})
}
