package dataplane

import (
	"bytes"
	"sync"
	"time"

	"tango/internal/addr"
)

// macCache memoizes per-hop validation verdicts so steady-state flows skip
// the keyed HMAC entirely. The key is the hop's raw wire bytes (the exact
// span currHopSpan returns, covering identity, interfaces, every auth field
// and MAC) mixed with the ingress interface the packet arrived on — the full
// input of Router.validateHop. Only PASS verdicts are cached: a hit means
// bit-identical hop bytes arrived on the same interface and passed every
// check, so re-running the HMAC can only produce the same answer until the
// earliest auth-field expiry, which is stored and enforced on lookup.
// Entries whose expiry has passed are dropped on sight, sending the packet
// back through the full validation (which then counts it as Expired).
//
// The map is sharded with per-shard mutexes (PR-7 idiom) and bounded:
// distinct (hop bytes, ingress) pairs are one per flow direction per path,
// so the steady-state working set is tiny; overflow evicts arbitrarily.
type macCache struct {
	shards [macCacheShards]macShard
}

const (
	macCacheShards = 16 // power of two, indexed by low key bits
	macShardCap    = 512
)

type macShard struct {
	mu sync.Mutex
	m  map[uint64]macEntry
	_  [24]byte // keep neighboring shard locks off one cache line
}

type macEntry struct {
	raw    []byte // defensive copy of the hop wire bytes, compared on hit
	in     addr.IfID
	expiry time.Time // earliest auth-field ExpTime; verdict invalid after
}

// macKey is FNV-1a over the ingress interface and the hop's wire bytes.
func macKey(raw []byte, in addr.IfID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(in) & 0xff
	h *= prime64
	h ^= uint64(in) >> 8
	h *= prime64
	for _, b := range raw {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// lookup reports whether a still-valid PASS verdict exists for exactly these
// hop bytes on this ingress. Expired entries are deleted.
func (c *macCache) lookup(key uint64, raw []byte, in addr.IfID, now time.Time) bool {
	s := &c.shards[key&(macCacheShards-1)]
	s.mu.Lock()
	e, ok := s.m[key]
	if ok && !now.Before(e.expiry) {
		delete(s.m, key)
		ok = false
	}
	hit := ok && e.in == in && bytes.Equal(e.raw, raw)
	s.mu.Unlock()
	return hit
}

// store records a PASS verdict valid until expiry. raw is copied.
func (c *macCache) store(key uint64, raw []byte, in addr.IfID, expiry time.Time) {
	s := &c.shards[key&(macCacheShards-1)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]macEntry)
	}
	if _, exists := s.m[key]; !exists && len(s.m) >= macShardCap {
		for k := range s.m { // evict an arbitrary entry to stay bounded
			delete(s.m, k)
			break
		}
	}
	s.m[key] = macEntry{raw: append([]byte(nil), raw...), in: in, expiry: expiry}
	s.mu.Unlock()
}

// reset drops every cached verdict.
func (c *macCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}
