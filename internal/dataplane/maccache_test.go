package dataplane

import (
	"testing"
	"time"
)

func TestMacCacheHitRequiresExactBytesAndIngress(t *testing.T) {
	var c macCache
	now := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	raw := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	key := macKey(raw, 7)
	c.store(key, raw, 7, now.Add(time.Hour))

	if !c.lookup(key, raw, 7, now) {
		t.Fatal("stored verdict not found")
	}
	// Same key, different ingress: no hit.
	if c.lookup(key, raw, 9, now) {
		t.Fatal("verdict leaked across ingress interfaces")
	}
	// Forged bytes that happen to collide on the hash must still miss: the
	// cache compares the full wire bytes, not just the 64-bit key.
	forged := append([]byte(nil), raw...)
	forged[3] ^= 0x80
	if c.lookup(key, forged, 7, now) {
		t.Fatal("verdict granted to different hop bytes under the same key")
	}
	// The defensive copy must shield the cache from callers mutating raw
	// after store (the router hands in a span of a pooled, reused buffer).
	raw[0] ^= 0xFF
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !c.lookup(key, orig, 7, now) {
		t.Fatal("cache entry corrupted by caller mutating the stored slice")
	}
}

func TestMacCacheExpiry(t *testing.T) {
	var c macCache
	now := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	raw := []byte{9, 9, 9}
	key := macKey(raw, 1)
	c.store(key, raw, 1, now.Add(time.Minute))
	if !c.lookup(key, raw, 1, now.Add(59*time.Second)) {
		t.Fatal("verdict missing before expiry")
	}
	// At and after the stored expiry the verdict is dead — and deleted, so a
	// subsequent pre-expiry lookup can't resurrect it.
	if c.lookup(key, raw, 1, now.Add(time.Minute)) {
		t.Fatal("verdict honored at expiry instant")
	}
	if c.lookup(key, raw, 1, now) {
		t.Fatal("expired entry resurrected")
	}
}

func TestMacCacheResetAndBound(t *testing.T) {
	var c macCache
	now := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	exp := now.Add(time.Hour)
	// Overfill well past capacity; the per-shard bound must hold.
	raw := make([]byte, 8)
	for i := 0; i < macCacheShards*macShardCap*2; i++ {
		raw[0], raw[1], raw[2], raw[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		c.store(macKey(raw, 0), raw, 0, exp)
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := len(s.m)
		s.mu.Unlock()
		if n > macShardCap {
			t.Fatalf("shard %d holds %d entries, cap %d", i, n, macShardCap)
		}
	}
	c.reset()
	raw2 := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if c.lookup(macKey(raw2, 0), raw2, 0, now) {
		t.Fatal("lookup hit after reset")
	}
}
