// Package dataplane implements the SCION data plane of the simulation:
// a wire format for SCION/UDP packets whose headers carry the full
// forwarding path (hop fields included), and per-AS border routers that
// validate hop-field MACs and forward packets across simulated links.
package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// Packet is a SCION/UDP datagram: addressing, the packet-carried forwarding
// path, and the UDP payload.
type Packet struct {
	Src addr.UDPAddr
	Dst addr.UDPAddr
	// Hops is the forwarding path in travel order; empty for AS-local
	// delivery.
	Hops []segment.Hop
	// CurrHop indexes the hop being processed.
	CurrHop uint8
	Payload []byte

	// wire is the leased buffer Payload aliases when the packet came out of
	// the router's pooled decode path (see unmarshalOwned); Release returns
	// both to their pools.
	wire   []byte
	pooled bool
}

// packetPool recycles delivered packets (struct + hop slice) between
// deliveries; see unmarshalOwned and Release.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// Release returns a router-delivered packet, its hop slice, and the wire
// buffer its payload aliases to their pools. It is a no-op for packets that
// did not come from the pooled decode path, so delivery handlers may call it
// unconditionally on every packet they are done with. Handlers that retain
// the packet — or any slice into it (Payload, Hops) — must simply not call
// Release; such packets fall to the garbage collector like before.
func (p *Packet) Release() {
	if !p.pooled {
		return
	}
	wire := p.wire
	hops := p.Hops[:0]
	*p = Packet{Hops: hops}
	packetPool.Put(p)
	netsim.PutBuf(wire)
}

// Wire-format constants.
const (
	version        = 1
	fixedHeaderLen = 4 // version, currHop, numHops, reserved
	udpAddrLen     = 2 + 8 + 16 + 2
	hopFixedLen    = 2 + 8 + 2 + 2 + 1 // isd, as, in, out, numAuth
	authFieldLen   = 8 + 2 + 2 + 8 + 8 + 2 + 2 + segment.MACLen
)

// HeaderLen returns the encoded header size for the packet's path length,
// letting transports compute payload budgets against path MTUs.
func HeaderLen(hops []segment.Hop) int {
	n := fixedHeaderLen + 2*udpAddrLen + 2 // +2 payload length
	for _, h := range hops {
		n += hopFixedLen + h.NumAuth*authFieldLen
	}
	return n
}

// Unmarshal errors.
var (
	ErrTruncated  = errors.New("dataplane: truncated packet")
	ErrBadVersion = errors.New("dataplane: unsupported version")
	ErrBadPacket  = errors.New("dataplane: malformed packet")
)

// Marshal encodes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	return p.appendWire(make([]byte, 0, HeaderLen(p.Hops)+len(p.Payload)))
}

// marshalPooled encodes the packet into a buffer leased from the netsim
// buffer pool; ownership of the result transfers to the caller (typically
// straight into Link.SendOwned).
//
//lint:lease source
func (p *Packet) marshalPooled() ([]byte, error) {
	return p.appendWire(netsim.GetBuf(HeaderLen(p.Hops) + len(p.Payload))[:0])
}

func (p *Packet) appendWire(buf []byte) ([]byte, error) {
	if len(p.Hops) > 255 {
		return nil, fmt.Errorf("%w: %d hops", ErrBadPacket, len(p.Hops))
	}
	buf = append(buf, version, p.CurrHop, byte(len(p.Hops)), 0)
	buf = appendUDPAddr(buf, p.Src)
	buf = appendUDPAddr(buf, p.Dst)
	for i := range p.Hops {
		h := &p.Hops[i]
		if h.NumAuth > 2 {
			return nil, fmt.Errorf("%w: hop with %d auth fields", ErrBadPacket, h.NumAuth)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.IA.ISD))
		buf = binary.BigEndian.AppendUint64(buf, uint64(h.IA.AS))
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.Ingress))
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.Egress))
		buf = append(buf, byte(h.NumAuth))
		for _, a := range h.AuthFields() {
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.SegInfo.Timestamp.UnixNano()))
			buf = binary.BigEndian.AppendUint16(buf, a.SegInfo.SegID)
			buf = binary.BigEndian.AppendUint16(buf, uint16(a.HopField.ConsIngress))
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.HopField.ExpTime.UnixNano()))
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.SegInfo.Origin.AS))
			buf = binary.BigEndian.AppendUint16(buf, uint16(a.SegInfo.Origin.ISD))
			buf = binary.BigEndian.AppendUint16(buf, uint16(a.HopField.ConsEgress))
			buf = append(buf, a.HopField.MAC[:]...)
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
	buf = append(buf, p.Payload...)
	return buf, nil
}

func appendUDPAddr(buf []byte, a addr.UDPAddr) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(a.IA.ISD))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.IA.AS))
	host := a.Host.As16()
	buf = append(buf, host[:]...)
	buf = binary.BigEndian.AppendUint16(buf, a.Port)
	return buf
}

// Unmarshal decodes a packet from buf. The returned packet is independent of
// buf (the payload is copied).
func Unmarshal(buf []byte) (*Packet, error) {
	p := &Packet{}
	if err := p.unmarshalInto(buf, false); err != nil {
		return nil, err
	}
	return p, nil
}

// unmarshalOwned decodes buf, taking ownership of it: the returned packet
// comes from packetPool, its hop slice is reused across deliveries, and its
// Payload aliases buf instead of copying. Release returns everything. On
// error the buffer is released here and only the accounting is left to the
// caller.
//
//lint:lease sink
func unmarshalOwned(buf []byte) (*Packet, error) {
	p := packetPool.Get().(*Packet)
	if err := p.unmarshalInto(buf, true); err != nil {
		hops := p.Hops[:0]
		*p = Packet{Hops: hops}
		packetPool.Put(p)
		netsim.PutBuf(buf)
		return nil, err
	}
	p.wire = buf
	p.pooled = true
	return p, nil
}

// unmarshalInto decodes buf into p, reusing p's hop slice capacity. With
// alias set the payload aliases buf; otherwise it is copied.
func (p *Packet) unmarshalInto(buf []byte, alias bool) error {
	if len(buf) < fixedHeaderLen {
		return ErrTruncated
	}
	if buf[0] != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, buf[0])
	}
	p.CurrHop = buf[1]
	numHops := int(buf[2])
	buf = buf[fixedHeaderLen:]

	var err error
	p.Src, buf, err = readUDPAddr(buf)
	if err != nil {
		return err
	}
	p.Dst, buf, err = readUDPAddr(buf)
	if err != nil {
		return err
	}
	if cap(p.Hops) >= numHops {
		p.Hops = p.Hops[:numHops]
	} else {
		p.Hops = make([]segment.Hop, numHops)
	}
	for i := 0; i < numHops; i++ {
		if len(buf) < hopFixedLen {
			return ErrTruncated
		}
		h := &p.Hops[i]
		*h = segment.Hop{}
		h.IA = addr.IA{ISD: addr.ISD(binary.BigEndian.Uint16(buf[0:2])), AS: addr.AS(binary.BigEndian.Uint64(buf[2:10]))}
		h.Ingress = addr.IfID(binary.BigEndian.Uint16(buf[10:12]))
		h.Egress = addr.IfID(binary.BigEndian.Uint16(buf[12:14]))
		h.NumAuth = int(buf[14])
		buf = buf[hopFixedLen:]
		if h.NumAuth > 2 {
			return fmt.Errorf("%w: hop with %d auth fields", ErrBadPacket, h.NumAuth)
		}
		for j := 0; j < h.NumAuth; j++ {
			if len(buf) < authFieldLen {
				return ErrTruncated
			}
			a := &h.Auth[j]
			a.SegInfo.Timestamp = time.Unix(0, int64(binary.BigEndian.Uint64(buf[0:8]))).UTC()
			a.SegInfo.SegID = binary.BigEndian.Uint16(buf[8:10])
			a.HopField.ConsIngress = addr.IfID(binary.BigEndian.Uint16(buf[10:12]))
			a.HopField.ExpTime = time.Unix(0, int64(binary.BigEndian.Uint64(buf[12:20]))).UTC()
			a.SegInfo.Origin = addr.IA{
				AS:  addr.AS(binary.BigEndian.Uint64(buf[20:28])),
				ISD: addr.ISD(binary.BigEndian.Uint16(buf[28:30])),
			}
			a.HopField.ConsEgress = addr.IfID(binary.BigEndian.Uint16(buf[30:32]))
			copy(a.HopField.MAC[:], buf[32:32+segment.MACLen])
			buf = buf[authFieldLen:]
		}
	}
	if len(buf) < 2 {
		return ErrTruncated
	}
	plen := int(binary.BigEndian.Uint16(buf[0:2]))
	buf = buf[2:]
	if len(buf) < plen {
		return ErrTruncated
	}
	if alias {
		p.Payload = buf[:plen:plen]
	} else {
		p.Payload = append([]byte(nil), buf[:plen]...)
	}
	return nil
}

// currHopSpan locates the encoded bytes of the current hop — the border
// router's forwarding fast path. ok means the span is fully in bounds with a
// plausible auth count, so decodeHopSpan can decode it without further
// checks; final reports whether the current hop is the last (delivery rather
// than transit). ok=false (truncation, bad version, AS-local path, bogus
// NumAuth) sends the caller to the full Unmarshal slow path, which keeps the
// error accounting and delivery semantics.
//
// The wire offsets double as the MAC-cache identity: the returned span is
// exactly the bytes hashed and compared by the router's hop-verdict cache.
//
//lint:lease borrow
func currHopSpan(buf []byte) (raw []byte, final, ok bool) {
	if len(buf) < fixedHeaderLen || buf[0] != version {
		return nil, false, false
	}
	curr, numHops := int(buf[1]), int(buf[2])
	if numHops == 0 || curr >= numHops {
		return nil, false, false
	}
	// Walk over the preceding hops: each contributes its fixed part plus
	// NumAuth auth fields. A bogus intermediate NumAuth overshoots the buffer
	// and fails the bounds check below, falling back to Unmarshal.
	off := fixedHeaderLen + 2*udpAddrLen
	for i := 0; i < curr; i++ {
		if off+hopFixedLen > len(buf) {
			return nil, false, false
		}
		na := int(buf[off+hopFixedLen-1])
		if na > 2 {
			return nil, false, false
		}
		off += hopFixedLen + na*authFieldLen
	}
	if off+hopFixedLen > len(buf) {
		return nil, false, false
	}
	numAuth := int(buf[off+hopFixedLen-1])
	if numAuth > 2 {
		return nil, false, false
	}
	end := off + hopFixedLen + numAuth*authFieldLen
	if end > len(buf) {
		return nil, false, false
	}
	return buf[off:end], curr == numHops-1, true
}

// decodeHopSpan decodes a hop span located by currHopSpan (bounds and auth
// count already validated there).
func decodeHopSpan(raw []byte) (hop segment.Hop) {
	hop.IA = addr.IA{ISD: addr.ISD(binary.BigEndian.Uint16(raw[0:2])), AS: addr.AS(binary.BigEndian.Uint64(raw[2:10]))}
	hop.Ingress = addr.IfID(binary.BigEndian.Uint16(raw[10:12]))
	hop.Egress = addr.IfID(binary.BigEndian.Uint16(raw[12:14]))
	hop.NumAuth = int(raw[14])
	b := raw[hopFixedLen:]
	for j := 0; j < hop.NumAuth; j++ {
		a := &hop.Auth[j]
		a.SegInfo.Timestamp = time.Unix(0, int64(binary.BigEndian.Uint64(b[0:8]))).UTC()
		a.SegInfo.SegID = binary.BigEndian.Uint16(b[8:10])
		a.HopField.ConsIngress = addr.IfID(binary.BigEndian.Uint16(b[10:12]))
		a.HopField.ExpTime = time.Unix(0, int64(binary.BigEndian.Uint64(b[12:20]))).UTC()
		a.SegInfo.Origin = addr.IA{
			AS:  addr.AS(binary.BigEndian.Uint64(b[20:28])),
			ISD: addr.ISD(binary.BigEndian.Uint16(b[28:30])),
		}
		a.HopField.ConsEgress = addr.IfID(binary.BigEndian.Uint16(b[30:32]))
		copy(a.HopField.MAC[:], b[32:32+segment.MACLen])
		b = b[authFieldLen:]
	}
	return hop
}

func readUDPAddr(buf []byte) (addr.UDPAddr, []byte, error) {
	if len(buf) < udpAddrLen {
		return addr.UDPAddr{}, nil, ErrTruncated
	}
	var a addr.UDPAddr
	a.IA = addr.IA{ISD: addr.ISD(binary.BigEndian.Uint16(buf[0:2])), AS: addr.AS(binary.BigEndian.Uint64(buf[2:10]))}
	var host [16]byte
	copy(host[:], buf[10:26])
	a.Host = netip.AddrFrom16(host).Unmap()
	a.Port = binary.BigEndian.Uint16(buf[26:28])
	return a, buf[udpAddrLen:], nil
}

// ReplyPath derives the path a response should take: the remaining traversed
// hops reversed. It is valid for delivered packets (CurrHop == last).
func (p *Packet) ReplyPath() *segment.Path {
	if len(p.Hops) == 0 {
		return &segment.Path{Src: p.Dst.IA, Dst: p.Src.IA, Meta: segment.Metadata{ASes: []addr.IA{p.Dst.IA}}}
	}
	fwd := &segment.Path{Src: p.Src.IA, Dst: p.Dst.IA, Hops: p.Hops}
	return fwd.Reversed()
}
