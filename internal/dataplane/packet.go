// Package dataplane implements the SCION data plane of the simulation:
// a wire format for SCION/UDP packets whose headers carry the full
// forwarding path (hop fields included), and per-AS border routers that
// validate hop-field MACs and forward packets across simulated links.
package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

// Packet is a SCION/UDP datagram: addressing, the packet-carried forwarding
// path, and the UDP payload.
type Packet struct {
	Src addr.UDPAddr
	Dst addr.UDPAddr
	// Hops is the forwarding path in travel order; empty for AS-local
	// delivery.
	Hops []segment.Hop
	// CurrHop indexes the hop being processed.
	CurrHop uint8
	Payload []byte
}

// Wire-format constants.
const (
	version        = 1
	fixedHeaderLen = 4 // version, currHop, numHops, reserved
	udpAddrLen     = 2 + 8 + 16 + 2
	hopFixedLen    = 2 + 8 + 2 + 2 + 1 // isd, as, in, out, numAuth
	authFieldLen   = 8 + 2 + 2 + 8 + 8 + 2 + 2 + segment.MACLen
)

// HeaderLen returns the encoded header size for the packet's path length,
// letting transports compute payload budgets against path MTUs.
func HeaderLen(hops []segment.Hop) int {
	n := fixedHeaderLen + 2*udpAddrLen + 2 // +2 payload length
	for _, h := range hops {
		n += hopFixedLen + h.NumAuth*authFieldLen
	}
	return n
}

// Unmarshal errors.
var (
	ErrTruncated  = errors.New("dataplane: truncated packet")
	ErrBadVersion = errors.New("dataplane: unsupported version")
	ErrBadPacket  = errors.New("dataplane: malformed packet")
)

// Marshal encodes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	if len(p.Hops) > 255 {
		return nil, fmt.Errorf("%w: %d hops", ErrBadPacket, len(p.Hops))
	}
	buf := make([]byte, 0, HeaderLen(p.Hops)+len(p.Payload))
	buf = append(buf, version, p.CurrHop, byte(len(p.Hops)), 0)
	buf = appendUDPAddr(buf, p.Src)
	buf = appendUDPAddr(buf, p.Dst)
	for i := range p.Hops {
		h := &p.Hops[i]
		if h.NumAuth > 2 {
			return nil, fmt.Errorf("%w: hop with %d auth fields", ErrBadPacket, h.NumAuth)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.IA.ISD))
		buf = binary.BigEndian.AppendUint64(buf, uint64(h.IA.AS))
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.Ingress))
		buf = binary.BigEndian.AppendUint16(buf, uint16(h.Egress))
		buf = append(buf, byte(h.NumAuth))
		for _, a := range h.AuthFields() {
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.SegInfo.Timestamp.UnixNano()))
			buf = binary.BigEndian.AppendUint16(buf, a.SegInfo.SegID)
			buf = binary.BigEndian.AppendUint16(buf, uint16(a.HopField.ConsIngress))
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.HopField.ExpTime.UnixNano()))
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.SegInfo.Origin.AS))
			buf = binary.BigEndian.AppendUint16(buf, uint16(a.SegInfo.Origin.ISD))
			buf = binary.BigEndian.AppendUint16(buf, uint16(a.HopField.ConsEgress))
			buf = append(buf, a.HopField.MAC[:]...)
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
	buf = append(buf, p.Payload...)
	return buf, nil
}

func appendUDPAddr(buf []byte, a addr.UDPAddr) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(a.IA.ISD))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.IA.AS))
	host := a.Host.As16()
	buf = append(buf, host[:]...)
	buf = binary.BigEndian.AppendUint16(buf, a.Port)
	return buf
}

// Unmarshal decodes a packet from buf.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < fixedHeaderLen {
		return nil, ErrTruncated
	}
	if buf[0] != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[0])
	}
	p := &Packet{CurrHop: buf[1]}
	numHops := int(buf[2])
	buf = buf[fixedHeaderLen:]

	var err error
	p.Src, buf, err = readUDPAddr(buf)
	if err != nil {
		return nil, err
	}
	p.Dst, buf, err = readUDPAddr(buf)
	if err != nil {
		return nil, err
	}
	p.Hops = make([]segment.Hop, numHops)
	for i := 0; i < numHops; i++ {
		if len(buf) < hopFixedLen {
			return nil, ErrTruncated
		}
		h := &p.Hops[i]
		h.IA = addr.IA{ISD: addr.ISD(binary.BigEndian.Uint16(buf[0:2])), AS: addr.AS(binary.BigEndian.Uint64(buf[2:10]))}
		h.Ingress = addr.IfID(binary.BigEndian.Uint16(buf[10:12]))
		h.Egress = addr.IfID(binary.BigEndian.Uint16(buf[12:14]))
		h.NumAuth = int(buf[14])
		buf = buf[hopFixedLen:]
		if h.NumAuth > 2 {
			return nil, fmt.Errorf("%w: hop with %d auth fields", ErrBadPacket, h.NumAuth)
		}
		for j := 0; j < h.NumAuth; j++ {
			if len(buf) < authFieldLen {
				return nil, ErrTruncated
			}
			a := &h.Auth[j]
			a.SegInfo.Timestamp = time.Unix(0, int64(binary.BigEndian.Uint64(buf[0:8]))).UTC()
			a.SegInfo.SegID = binary.BigEndian.Uint16(buf[8:10])
			a.HopField.ConsIngress = addr.IfID(binary.BigEndian.Uint16(buf[10:12]))
			a.HopField.ExpTime = time.Unix(0, int64(binary.BigEndian.Uint64(buf[12:20]))).UTC()
			a.SegInfo.Origin = addr.IA{
				AS:  addr.AS(binary.BigEndian.Uint64(buf[20:28])),
				ISD: addr.ISD(binary.BigEndian.Uint16(buf[28:30])),
			}
			a.HopField.ConsEgress = addr.IfID(binary.BigEndian.Uint16(buf[30:32]))
			copy(a.HopField.MAC[:], buf[32:32+segment.MACLen])
			buf = buf[authFieldLen:]
		}
	}
	if len(buf) < 2 {
		return nil, ErrTruncated
	}
	plen := int(binary.BigEndian.Uint16(buf[0:2]))
	buf = buf[2:]
	if len(buf) < plen {
		return nil, ErrTruncated
	}
	p.Payload = append([]byte(nil), buf[:plen]...)
	return p, nil
}

// transitHop decodes ONLY the current hop of an encoded packet — the border
// router's forwarding fast path. For a well-formed non-final transit hop it
// avoids materializing the addresses, the other hops, and the payload; the
// caller validates the hop and forwards the original buffer with CurrHop
// patched in place. ok=false (truncation, bad version, final hop, AS-local
// path) sends the caller to the full Unmarshal slow path, which keeps the
// error accounting and delivery semantics.
func transitHop(buf []byte) (hop segment.Hop, ok bool) {
	if len(buf) < fixedHeaderLen || buf[0] != version {
		return hop, false
	}
	curr, numHops := int(buf[1]), int(buf[2])
	if numHops == 0 || curr >= numHops-1 {
		return hop, false // final hop or malformed: needs the full packet
	}
	// Walk over the preceding hops: each contributes its fixed part plus
	// NumAuth auth fields. A bogus intermediate NumAuth overshoots the buffer
	// and fails the bounds check below, falling back to Unmarshal.
	off := fixedHeaderLen + 2*udpAddrLen
	for i := 0; i < curr; i++ {
		if off+hopFixedLen > len(buf) {
			return hop, false
		}
		off += hopFixedLen + int(buf[off+hopFixedLen-1])*authFieldLen
	}
	if off+hopFixedLen > len(buf) {
		return hop, false
	}
	b := buf[off:]
	hop.IA = addr.IA{ISD: addr.ISD(binary.BigEndian.Uint16(b[0:2])), AS: addr.AS(binary.BigEndian.Uint64(b[2:10]))}
	hop.Ingress = addr.IfID(binary.BigEndian.Uint16(b[10:12]))
	hop.Egress = addr.IfID(binary.BigEndian.Uint16(b[12:14]))
	hop.NumAuth = int(b[14])
	if hop.NumAuth > 2 {
		return segment.Hop{}, false
	}
	b = b[hopFixedLen:]
	for j := 0; j < hop.NumAuth; j++ {
		if len(b) < authFieldLen {
			return segment.Hop{}, false
		}
		a := &hop.Auth[j]
		a.SegInfo.Timestamp = time.Unix(0, int64(binary.BigEndian.Uint64(b[0:8]))).UTC()
		a.SegInfo.SegID = binary.BigEndian.Uint16(b[8:10])
		a.HopField.ConsIngress = addr.IfID(binary.BigEndian.Uint16(b[10:12]))
		a.HopField.ExpTime = time.Unix(0, int64(binary.BigEndian.Uint64(b[12:20]))).UTC()
		a.SegInfo.Origin = addr.IA{
			AS:  addr.AS(binary.BigEndian.Uint64(b[20:28])),
			ISD: addr.ISD(binary.BigEndian.Uint16(b[28:30])),
		}
		a.HopField.ConsEgress = addr.IfID(binary.BigEndian.Uint16(b[30:32]))
		copy(a.HopField.MAC[:], b[32:32+segment.MACLen])
		b = b[authFieldLen:]
	}
	return hop, true
}

func readUDPAddr(buf []byte) (addr.UDPAddr, []byte, error) {
	if len(buf) < udpAddrLen {
		return addr.UDPAddr{}, nil, ErrTruncated
	}
	var a addr.UDPAddr
	a.IA = addr.IA{ISD: addr.ISD(binary.BigEndian.Uint16(buf[0:2])), AS: addr.AS(binary.BigEndian.Uint64(buf[2:10]))}
	var host [16]byte
	copy(host[:], buf[10:26])
	a.Host = netip.AddrFrom16(host).Unmap()
	a.Port = binary.BigEndian.Uint16(buf[26:28])
	return a, buf[udpAddrLen:], nil
}

// ReplyPath derives the path a response should take: the remaining traversed
// hops reversed. It is valid for delivered packets (CurrHop == last).
func (p *Packet) ReplyPath() *segment.Path {
	if len(p.Hops) == 0 {
		return &segment.Path{Src: p.Dst.IA, Dst: p.Src.IA, Meta: segment.Metadata{ASes: []addr.IA{p.Dst.IA}}}
	}
	fwd := &segment.Path{Src: p.Src.IA, Dst: p.Dst.IA, Hops: p.Hops}
	return fwd.Reversed()
}
