package dataplane

import (
	"fmt"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// DeliveryHandler receives packets destined for hosts inside an AS.
type DeliveryHandler func(pkt *Packet)

// RouterStats counts packet outcomes at one border router.
type RouterStats struct {
	Forwarded    uint64
	Delivered    uint64
	BadMAC       uint64
	Expired      uint64
	WrongIA      uint64
	NoInterface  uint64
	ParseError   uint64
	WrongIngress uint64
	Unauthorized uint64
	NoLocalHosts uint64
	SendRejected uint64
}

// Router is the (collapsed) border-router plane of one AS: it validates
// hop-field MACs with the AS's forwarding key and forwards packets between
// the AS's inter-domain links, or delivers them to local hosts.
type Router struct {
	ia    addr.IA
	key   []byte
	clock netsim.Clock
	// verifiers pools keyed HMAC states so per-packet MAC checks neither
	// rebuild the SHA-256 key schedule nor allocate digests.
	verifiers sync.Pool

	mu      sync.RWMutex
	ifaces  map[addr.IfID]linkEnd
	deliver DeliveryHandler
	stats   RouterStats
}

type linkEnd struct {
	link *netsim.Link
	end  int
}

// NewRouter creates the router for ia using the AS forwarding key.
func NewRouter(ia addr.IA, key []byte, clock netsim.Clock) *Router {
	r := &Router{ia: ia, key: key, clock: clock, ifaces: make(map[addr.IfID]linkEnd)}
	r.verifiers.New = func() any { return segment.NewMACVerifier(key) }
	return r
}

// IA returns the router's AS.
func (r *Router) IA() addr.IA { return r.ia }

// AttachInterface wires a local interface ID to one end of a simulated link
// and registers the router as that end's receiver.
func (r *Router) AttachInterface(id addr.IfID, link *netsim.Link, end int) {
	r.mu.Lock()
	r.ifaces[id] = linkEnd{link: link, end: end}
	r.mu.Unlock()
	link.Attach(end, func(buf []byte) { r.handleFromWire(id, buf) })
}

// SetDeliveryHandler registers the local host stack.
func (r *Router) SetDeliveryHandler(h DeliveryHandler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliver = h
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

func (r *Router) count(f func(*RouterStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// handleFromWire processes a packet arriving on interface in.
//
// Transit packets (current hop not the last) take a fast path: only the
// current hop is decoded and validated, CurrHop is patched in the received
// buffer, and the buffer is sent on as-is — no Packet, hop slice, or payload
// allocation and no re-Marshal per forwarded packet. The buffer is
// exclusively ours (netsim.Link.Send copies), so the in-place patch is safe.
// Final-hop delivery and anything transitHop cannot cheaply decode fall back
// to the full Unmarshal path.
func (r *Router) handleFromWire(in addr.IfID, buf []byte) {
	if hop, ok := transitHop(buf); ok {
		if !r.validateHop(&hop, in) {
			return
		}
		r.mu.RLock()
		le, ok := r.ifaces[hop.Egress]
		r.mu.RUnlock()
		if !ok {
			r.count(func(s *RouterStats) { s.NoInterface++ })
			return
		}
		buf[1]++ // CurrHop
		if !le.link.Send(le.end, buf) {
			r.count(func(s *RouterStats) { s.SendRejected++ })
			return
		}
		r.count(func(s *RouterStats) { s.Forwarded++ })
		return
	}
	pkt, err := Unmarshal(buf)
	if err != nil {
		r.count(func(s *RouterStats) { s.ParseError++ })
		return
	}
	r.process(pkt, in)
}

// localDelay models AS-internal forwarding time for AS-local (empty path)
// packets. Keeping it positive also makes local delivery asynchronous, which
// transports running synchronous handlers rely on to avoid lock recursion.
const localDelay = 20 * time.Microsecond

// InjectLocal accepts a packet originated by a host inside this AS.
// The packet's CurrHop must index this AS's hop (or the path be empty for
// AS-local delivery). It returns an error for immediately-detectable
// problems; forwarding failures beyond the first hop are silent, as in a
// real network.
func (r *Router) InjectLocal(pkt *Packet) error {
	if len(pkt.Hops) == 0 {
		if pkt.Dst.IA != r.ia {
			return fmt.Errorf("dataplane: empty path but destination %s is not local to %s", pkt.Dst.IA, r.ia)
		}
		r.clock.AfterFunc(localDelay, func() { r.deliverLocal(pkt) })
		return nil
	}
	if int(pkt.CurrHop) >= len(pkt.Hops) || pkt.Hops[pkt.CurrHop].IA != r.ia {
		return fmt.Errorf("dataplane: current hop is not %s", r.ia)
	}
	if pkt.Hops[pkt.CurrHop].Ingress != 0 {
		return fmt.Errorf("dataplane: locally injected packet must start with ingress 0")
	}
	r.process(pkt, 0)
	return nil
}

// validateHop applies the per-hop checks for a packet that entered via
// interface in (0 = local origin): hop identity, ingress match, MAC and
// expiry on every carried authorization, and interface authorization. End
// hosts cannot forge or extend hop fields. Failures are counted; true means
// the packet may proceed.
func (r *Router) validateHop(hop *segment.Hop, in addr.IfID) bool {
	if hop.IA != r.ia {
		r.count(func(s *RouterStats) { s.WrongIA++ })
		return false
	}
	if hop.Ingress != in {
		r.count(func(s *RouterStats) { s.WrongIngress++ })
		return false
	}
	now := r.clock.Now()
	inOK := in == 0
	outOK := hop.Egress == 0
	v := r.verifiers.Get().(*segment.MACVerifier)
	defer r.verifiers.Put(v)
	for _, a := range hop.AuthFields() {
		if !v.Verify(a.SegInfo, a.HopField) {
			r.count(func(s *RouterStats) { s.BadMAC++ })
			return false
		}
		if !a.HopField.ExpTime.After(now) {
			r.count(func(s *RouterStats) { s.Expired++ })
			return false
		}
		if a.Authorizes(hop.Ingress) {
			inOK = true
		}
		if a.Authorizes(hop.Egress) {
			outOK = true
		}
	}
	if hop.NumAuth == 0 || !inOK || !outOK {
		r.count(func(s *RouterStats) { s.Unauthorized++ })
		return false
	}
	return true
}

// process validates and forwards/delivers one packet that entered via
// interface in (0 = local origin).
func (r *Router) process(pkt *Packet, in addr.IfID) {
	if int(pkt.CurrHop) >= len(pkt.Hops) {
		r.count(func(s *RouterStats) { s.ParseError++ })
		return
	}
	hop := &pkt.Hops[pkt.CurrHop]
	if !r.validateHop(hop, in) {
		return
	}

	if int(pkt.CurrHop) == len(pkt.Hops)-1 {
		// Final AS: deliver to the local host stack.
		if hop.Egress != 0 || pkt.Dst.IA != r.ia {
			r.count(func(s *RouterStats) { s.WrongIA++ })
			return
		}
		r.deliverLocal(pkt)
		return
	}

	r.mu.RLock()
	le, ok := r.ifaces[hop.Egress]
	r.mu.RUnlock()
	if !ok {
		r.count(func(s *RouterStats) { s.NoInterface++ })
		return
	}
	pkt.CurrHop++
	buf, err := pkt.Marshal()
	if err != nil {
		r.count(func(s *RouterStats) { s.ParseError++ })
		return
	}
	if !le.link.Send(le.end, buf) {
		r.count(func(s *RouterStats) { s.SendRejected++ })
		return
	}
	r.count(func(s *RouterStats) { s.Forwarded++ })
}

func (r *Router) deliverLocal(pkt *Packet) {
	r.mu.RLock()
	h := r.deliver
	r.mu.RUnlock()
	if h == nil {
		r.count(func(s *RouterStats) { s.NoLocalHosts++ })
		return
	}
	r.count(func(s *RouterStats) { s.Delivered++ })
	h(pkt)
}
