package dataplane

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// DeliveryHandler receives packets destined for hosts inside an AS. Handlers
// that are done with a packet when they return should call pkt.Release to
// recycle it; handlers that retain the packet (or its Payload/Hops) must not.
type DeliveryHandler func(pkt *Packet)

// RouterStats counts packet outcomes at one border router.
type RouterStats struct {
	Forwarded    uint64
	Delivered    uint64
	BadMAC       uint64
	Expired      uint64
	WrongIA      uint64
	NoInterface  uint64
	ParseError   uint64
	WrongIngress uint64
	Unauthorized uint64
	NoLocalHosts uint64
	SendRejected uint64
}

// routerCounters is the hot-path representation of RouterStats: independent
// atomics, so per-packet accounting neither takes nor contends the router
// mutex guarding the interface table.
type routerCounters struct {
	forwarded    atomic.Uint64
	delivered    atomic.Uint64
	badMAC       atomic.Uint64
	expired      atomic.Uint64
	wrongIA      atomic.Uint64
	noInterface  atomic.Uint64
	parseError   atomic.Uint64
	wrongIngress atomic.Uint64
	unauthorized atomic.Uint64
	noLocalHosts atomic.Uint64
	sendRejected atomic.Uint64
}

// Router is the (collapsed) border-router plane of one AS: it validates
// hop-field MACs with the AS's forwarding key and forwards packets between
// the AS's inter-domain links, or delivers them to local hosts.
type Router struct {
	ia    addr.IA
	key   []byte
	clock netsim.Clock
	// verifiers pools keyed HMAC states so per-packet MAC checks neither
	// rebuild the SHA-256 key schedule nor allocate digests.
	verifiers sync.Pool
	// macs caches hop validation verdicts keyed by the hop's wire bytes, so
	// steady-state flows skip the HMAC entirely (see macCache).
	macs  macCache
	stats routerCounters

	mu      sync.RWMutex
	ifaces  map[addr.IfID]linkEnd
	deliver DeliveryHandler
}

type linkEnd struct {
	link *netsim.Link
	end  int
}

// NewRouter creates the router for ia using the AS forwarding key.
func NewRouter(ia addr.IA, key []byte, clock netsim.Clock) *Router {
	r := &Router{ia: ia, key: key, clock: clock, ifaces: make(map[addr.IfID]linkEnd)}
	r.verifiers.New = func() any { return segment.NewMACVerifier(key) }
	return r
}

// IA returns the router's AS.
func (r *Router) IA() addr.IA { return r.ia }

// AttachInterface wires a local interface ID to one end of a simulated link
// and registers the router as that end's receiver.
func (r *Router) AttachInterface(id addr.IfID, link *netsim.Link, end int) {
	r.mu.Lock()
	r.ifaces[id] = linkEnd{link: link, end: end}
	r.mu.Unlock()
	link.Attach(end, func(buf []byte) { r.handleFromWire(id, buf) })
}

// SetDeliveryHandler registers the local host stack.
func (r *Router) SetDeliveryHandler(h DeliveryHandler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliver = h
}

// InvalidateMACCache drops every cached hop-validation verdict, forcing full
// MAC re-validation for all flows — the hook for forwarding-key rotation
// (and the cold-cache lever in benchmarks).
func (r *Router) InvalidateMACCache() { r.macs.reset() }

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Forwarded:    r.stats.forwarded.Load(),
		Delivered:    r.stats.delivered.Load(),
		BadMAC:       r.stats.badMAC.Load(),
		Expired:      r.stats.expired.Load(),
		WrongIA:      r.stats.wrongIA.Load(),
		NoInterface:  r.stats.noInterface.Load(),
		ParseError:   r.stats.parseError.Load(),
		WrongIngress: r.stats.wrongIngress.Load(),
		Unauthorized: r.stats.unauthorized.Load(),
		NoLocalHosts: r.stats.noLocalHosts.Load(),
		SendRejected: r.stats.sendRejected.Load(),
	}
}

// handleFromWire processes a packet arriving on interface in. The router
// owns buf (links transfer ownership on delivery) and must release it on
// every drop path.
//
// Transit packets (current hop not the last) take a fast path: the current
// hop's wire bytes are located in place, validated via the MAC verdict cache
// (full HMAC validation only on a cache miss), CurrHop is patched in the
// received buffer, and the very same buffer is handed to the egress link —
// no Packet, hop slice, or payload allocation, no re-Marshal, and no copy
// per forwarded packet. Final-hop delivery and anything currHopSpan cannot
// cheaply locate fall back to the pooled Unmarshal path.
//
//lint:lease sink
func (r *Router) handleFromWire(in addr.IfID, buf []byte) {
	raw, final, ok := currHopSpan(buf)
	if ok && !final {
		var egress addr.IfID
		if r.macs.lookup(macKey(raw, in), raw, in, r.clock.Now()) {
			egress = addr.IfID(binary.BigEndian.Uint16(raw[12:14]))
		} else {
			hop := decodeHopSpan(raw)
			exp, valid := r.validateHop(&hop, in)
			if !valid {
				netsim.PutBuf(buf)
				return
			}
			r.macs.store(macKey(raw, in), raw, in, exp)
			egress = hop.Egress
		}
		r.mu.RLock()
		le, attached := r.ifaces[egress]
		r.mu.RUnlock()
		if !attached {
			r.stats.noInterface.Add(1)
			netsim.PutBuf(buf)
			return
		}
		buf[1]++ // CurrHop
		if !le.link.SendOwned(le.end, buf) {
			r.stats.sendRejected.Add(1)
			return
		}
		r.stats.forwarded.Add(1)
		return
	}
	pkt, err := unmarshalOwned(buf)
	if err != nil {
		r.stats.parseError.Add(1)
		return
	}
	if !ok {
		raw = nil // malformed span: full validation only
	}
	r.processRaw(pkt, in, raw)
}

// localDelay models AS-internal forwarding time for AS-local (empty path)
// packets. Keeping it positive also makes local delivery asynchronous, which
// transports running synchronous handlers rely on to avoid lock recursion.
const localDelay = 20 * time.Microsecond

// InjectLocal accepts a packet originated by a host inside this AS.
// The packet's CurrHop must index this AS's hop (or the path be empty for
// AS-local delivery). It returns an error for immediately-detectable
// problems; forwarding failures beyond the first hop are silent, as in a
// real network.
func (r *Router) InjectLocal(pkt *Packet) error {
	if len(pkt.Hops) == 0 {
		if pkt.Dst.IA != r.ia {
			return fmt.Errorf("dataplane: empty path but destination %s is not local to %s", pkt.Dst.IA, r.ia)
		}
		r.clock.AfterFunc(localDelay, func() { r.deliverLocal(pkt) })
		return nil
	}
	if int(pkt.CurrHop) >= len(pkt.Hops) || pkt.Hops[pkt.CurrHop].IA != r.ia {
		return fmt.Errorf("dataplane: current hop is not %s", r.ia)
	}
	if pkt.Hops[pkt.CurrHop].Ingress != 0 {
		return fmt.Errorf("dataplane: locally injected packet must start with ingress 0")
	}
	r.process(pkt, 0)
	return nil
}

// InjectTemplated is InjectLocal for the common transport case: a non-empty
// path whose header template tmpl (see TemplateFor) matches pkt.Hops. The
// wire image is encoded once, straight into a pooled buffer — template bytes
// copied, only the fixed header, addresses, and payload written fresh —
// instead of re-encoding every hop and auth field per packet, and hop-0
// validation is memoized through the MAC verdict cache keyed by the
// template's bytes. Falls back to InjectLocal whenever the template does not
// apply.
func (r *Router) InjectTemplated(pkt *Packet, tmpl *PathTemplate) error {
	if tmpl == nil || pkt.CurrHop != 0 || len(pkt.Hops) != tmpl.numHops || len(pkt.Hops) < 2 {
		return r.InjectLocal(pkt)
	}
	hop := &pkt.Hops[0]
	if hop.IA != r.ia {
		return fmt.Errorf("dataplane: current hop is not %s", r.ia)
	}
	if hop.Ingress != 0 {
		return fmt.Errorf("dataplane: locally injected packet must start with ingress 0")
	}
	raw := tmpl.hopSpan(0)
	if r.macs.lookup(macKey(raw, 0), raw, 0, r.clock.Now()) {
		// cached verdict
	} else {
		exp, valid := r.validateHop(hop, 0)
		if !valid {
			return nil // counted; silent like process
		}
		r.macs.store(macKey(raw, 0), raw, 0, exp)
	}
	r.mu.RLock()
	le, attached := r.ifaces[hop.Egress]
	r.mu.RUnlock()
	if !attached {
		r.stats.noInterface.Add(1)
		return nil
	}
	buf := netsim.GetBuf(tmpl.wireLen(len(pkt.Payload)))
	tmpl.encodeInto(buf, pkt.Src, pkt.Dst, pkt.CurrHop+1, pkt.Payload)
	if !le.link.SendOwned(le.end, buf) {
		r.stats.sendRejected.Add(1)
		return nil
	}
	r.stats.forwarded.Add(1)
	return nil
}

// validateHop applies the per-hop checks for a packet that entered via
// interface in (0 = local origin): hop identity, ingress match, MAC and
// expiry on every carried authorization, and interface authorization. End
// hosts cannot forge or extend hop fields. Failures are counted; valid means
// the packet may proceed, and expiry is the earliest auth-field expiry — the
// instant any cached verdict for this hop must die.
func (r *Router) validateHop(hop *segment.Hop, in addr.IfID) (expiry time.Time, valid bool) {
	if hop.IA != r.ia {
		r.stats.wrongIA.Add(1)
		return time.Time{}, false
	}
	if hop.Ingress != in {
		r.stats.wrongIngress.Add(1)
		return time.Time{}, false
	}
	now := r.clock.Now()
	inOK := in == 0
	outOK := hop.Egress == 0
	v := r.verifiers.Get().(*segment.MACVerifier)
	defer r.verifiers.Put(v)
	for _, a := range hop.AuthFields() {
		if !v.Verify(a.SegInfo, a.HopField) {
			r.stats.badMAC.Add(1)
			return time.Time{}, false
		}
		if !a.HopField.ExpTime.After(now) {
			r.stats.expired.Add(1)
			return time.Time{}, false
		}
		if expiry.IsZero() || a.HopField.ExpTime.Before(expiry) {
			expiry = a.HopField.ExpTime
		}
		if a.Authorizes(hop.Ingress) {
			inOK = true
		}
		if a.Authorizes(hop.Egress) {
			outOK = true
		}
	}
	if hop.NumAuth == 0 || !inOK || !outOK {
		r.stats.unauthorized.Add(1)
		return time.Time{}, false
	}
	return expiry, true
}

// verifyHop validates the current hop, consulting the MAC verdict cache when
// the hop's wire bytes are available (raw non-nil).
func (r *Router) verifyHop(hop *segment.Hop, in addr.IfID, raw []byte) bool {
	if raw == nil {
		_, valid := r.validateHop(hop, in)
		return valid
	}
	key := macKey(raw, in)
	if r.macs.lookup(key, raw, in, r.clock.Now()) {
		return true
	}
	exp, valid := r.validateHop(hop, in)
	if !valid {
		return false
	}
	r.macs.store(key, raw, in, exp)
	return true
}

// process validates and forwards/delivers one packet that entered via
// interface in (0 = local origin).
func (r *Router) process(pkt *Packet, in addr.IfID) { r.processRaw(pkt, in, nil) }

// processRaw is process with the current hop's wire bytes (when the packet
// came off the wire and currHopSpan located them) for cached validation. It
// releases pkt on every path that does not hand it to the delivery handler —
// a no-op for caller-constructed packets, the pool return for wire packets.
func (r *Router) processRaw(pkt *Packet, in addr.IfID, raw []byte) {
	if int(pkt.CurrHop) >= len(pkt.Hops) {
		r.stats.parseError.Add(1)
		pkt.Release()
		return
	}
	hop := &pkt.Hops[pkt.CurrHop]
	if !r.verifyHop(hop, in, raw) {
		pkt.Release()
		return
	}

	if int(pkt.CurrHop) == len(pkt.Hops)-1 {
		// Final AS: deliver to the local host stack.
		if hop.Egress != 0 || pkt.Dst.IA != r.ia {
			r.stats.wrongIA.Add(1)
			pkt.Release()
			return
		}
		r.deliverLocal(pkt)
		return
	}

	r.mu.RLock()
	le, attached := r.ifaces[hop.Egress]
	r.mu.RUnlock()
	if !attached {
		r.stats.noInterface.Add(1)
		pkt.Release()
		return
	}
	pkt.CurrHop++
	buf, err := pkt.marshalPooled()
	if err != nil {
		r.stats.parseError.Add(1)
		pkt.Release()
		return
	}
	sent := le.link.SendOwned(le.end, buf)
	pkt.Release()
	if !sent {
		r.stats.sendRejected.Add(1)
		return
	}
	r.stats.forwarded.Add(1)
}

func (r *Router) deliverLocal(pkt *Packet) {
	r.mu.RLock()
	h := r.deliver
	r.mu.RUnlock()
	if h == nil {
		r.stats.noLocalHosts.Add(1)
		pkt.Release()
		return
	}
	r.stats.delivered.Add(1)
	h(pkt)
}
