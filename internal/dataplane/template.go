package dataplane

import (
	"encoding/binary"
	"fmt"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// PathTemplate is the pre-marshaled hop section of a path's wire header.
// Hops and auth fields are immutable for the lifetime of a path, so
// re-encoding them for every packet (the bulk of Packet.Marshal: per-hop
// interface fields plus per-auth-field timestamps and MACs) is pure waste;
// a template encodes them once and per-packet marshaling shrinks to one
// memcpy plus patching the fixed header, addresses, and payload.
type PathTemplate struct {
	numHops int
	hops    []byte // the encoded hop sequence, exactly as Marshal writes it
	hopLens []int  // encoded length of each hop within hops
}

// NewPathTemplate pre-marshals the hop section for hops. It fails on the
// same path shapes Marshal rejects (>255 hops, >2 auth fields on a hop).
func NewPathTemplate(hops []segment.Hop) (*PathTemplate, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("%w: empty path has no template", ErrBadPacket)
	}
	probe := Packet{Hops: hops}
	wire, err := probe.appendWire(make([]byte, 0, HeaderLen(hops)))
	if err != nil {
		return nil, err
	}
	start := fixedHeaderLen + 2*udpAddrLen
	enc := wire[start : len(wire)-2] // strip fixed header+addrs and payload length
	t := &PathTemplate{
		numHops: len(hops),
		hops:    append([]byte(nil), enc...),
		hopLens: make([]int, len(hops)),
	}
	for i := range hops {
		t.hopLens[i] = hopFixedLen + hops[i].NumAuth*authFieldLen
	}
	return t, nil
}

// TemplateFor returns the header template for path, memoized on the path
// itself (same pattern as Path.Fingerprint: paths are immutable, concurrent
// first callers may both build one and either result is equivalent).
func TemplateFor(path *segment.Path) (*PathTemplate, error) {
	if t, _ := path.WireTemplate().(*PathTemplate); t != nil {
		return t, nil
	}
	t, err := NewPathTemplate(path.Hops)
	if err != nil {
		return nil, err
	}
	path.SetWireTemplate(t)
	return t, nil
}

// NumHops returns the number of hops the template encodes.
func (t *PathTemplate) NumHops() int { return t.numHops }

// hopSpan returns hop i's encoded bytes — the identity the MAC verdict
// cache keys on (identical to what currHopSpan locates in a full packet).
func (t *PathTemplate) hopSpan(i int) []byte {
	off := 0
	for j := 0; j < i; j++ {
		off += t.hopLens[j]
	}
	return t.hops[off : off+t.hopLens[i]]
}

// wireLen returns the encoded packet size for a payload of the given length.
func (t *PathTemplate) wireLen(payloadLen int) int {
	return fixedHeaderLen + 2*udpAddrLen + len(t.hops) + 2 + payloadLen
}

// encodeInto writes the full wire packet into buf, which must be exactly
// wireLen(len(payload)) long.
//
//lint:lease borrow
func (t *PathTemplate) encodeInto(buf []byte, src, dst addr.UDPAddr, currHop byte, payload []byte) {
	b := buf[:0]
	b = append(b, version, currHop, byte(t.numHops), 0)
	b = appendUDPAddr(b, src)
	b = appendUDPAddr(b, dst)
	b = append(b, t.hops...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
	copy(buf[len(b):], payload)
}

// MarshalTemplated encodes the packet like Marshal, but using the path
// template: the pre-encoded hop section is copied and only the fixed header,
// addresses, payload length, and payload are written per packet. The result
// is leased from the netsim buffer pool; ownership transfers to the caller
// (typically straight into the router/link, which release it downstream —
// otherwise release with netsim.PutBuf).
//
//lint:lease source
func (p *Packet) MarshalTemplated(t *PathTemplate) ([]byte, error) {
	if len(p.Hops) != t.numHops {
		return nil, fmt.Errorf("%w: packet has %d hops, template %d", ErrBadPacket, len(p.Hops), t.numHops)
	}
	buf := netsim.GetBuf(t.wireLen(len(p.Payload)))
	t.encodeInto(buf, p.Src, p.Dst, p.CurrHop, p.Payload)
	return buf, nil
}
