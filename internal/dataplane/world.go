package dataplane

import (
	"fmt"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/topology"
)

// World instantiates the data plane of a whole topology: one router per AS
// and one simulated link per topology link, all on a shared clock.
type World struct {
	Topo       *topology.Topology
	Clock      netsim.Clock
	routers    map[addr.IA]*Router
	links      []*netsim.Link
	linkByPair map[[2]addr.IA]*netsim.Link
}

// NewWorld builds routers and links. Forwarding keys come from keys (one per
// AS, as produced by beacon.NewInfra). Loss configured in the topology's
// link props is applied; seeds derive deterministically from baseSeed and
// the link index.
func NewWorld(topo *topology.Topology, keys map[addr.IA][]byte, clock netsim.Clock, baseSeed int64) (*World, error) {
	w := &World{
		Topo:       topo,
		Clock:      clock,
		routers:    make(map[addr.IA]*Router),
		linkByPair: make(map[[2]addr.IA]*netsim.Link),
	}
	for _, as := range topo.ASes() {
		key := keys[as.IA]
		if key == nil {
			return nil, fmt.Errorf("dataplane: no forwarding key for %s", as.IA)
		}
		w.routers[as.IA] = NewRouter(as.IA, key, clock)
	}
	for i, lid := range topo.Links() {
		intf := topo.AS(lid.A).Interfaces[lid.AID]
		props := netsim.LinkProps{
			Latency:   intf.Props.Latency,
			Bandwidth: intf.Props.Bandwidth,
			LossRate:  intf.Props.Loss,
			MTU:       intf.Props.MTU,
		}
		link := netsim.NewLink(clock, props, baseSeed+int64(i))
		w.links = append(w.links, link)
		w.linkByPair[[2]addr.IA{lid.A, lid.B}] = link
		w.linkByPair[[2]addr.IA{lid.B, lid.A}] = link
		w.routers[lid.A].AttachInterface(lid.AID, link, 0)
		w.routers[lid.B].AttachInterface(lid.BID, link, 1)
	}
	return w, nil
}

// Link returns the simulated link directly connecting a and b, or nil when
// the topology has no such link. Combined with netsim.Link.SetProps it lets
// scenarios degrade or kill a specific inter-AS link mid-run.
func (w *World) Link(a, b addr.IA) *netsim.Link {
	return w.linkByPair[[2]addr.IA{a, b}]
}

// Router returns the border router of ia.
func (w *World) Router(ia addr.IA) *Router { return w.routers[ia] }

// Links returns the instantiated links in topology order.
func (w *World) Links() []*netsim.Link { return w.links }
