package dataplane_test

import (
	"bytes"
	"sync"
	"testing"

	"tango/internal/dataplane"
	"tango/internal/netsim"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestMarshalTemplatedMatchesMarshal pins the template fast path to the full
// encoder: for every hop position, the template-patched wire bytes must be
// byte-identical to Packet.Marshal.
func TestMarshalTemplatedMatchesMarshal(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, path := range paths {
		tmpl, err := dataplane.TemplateFor(path)
		if err != nil {
			t.Fatal(err)
		}
		if tmpl.NumHops() != len(path.Hops) {
			t.Fatalf("template hop count %d, path %d", tmpl.NumHops(), len(path.Hops))
		}
		// Memoized: the second request returns the same template.
		again, err := dataplane.TemplateFor(path)
		if err != nil || again != tmpl {
			t.Fatalf("TemplateFor not memoized: %p vs %p (err %v)", again, tmpl, err)
		}
		pkt := &dataplane.Packet{
			Src:     udp(topology.AS111, "10.0.0.1", 1000),
			Dst:     udp(topology.AS211, "10.0.0.2", 2000),
			Hops:    path.Hops,
			Payload: []byte("templated payload"),
		}
		for curr := 0; curr < len(path.Hops); curr++ {
			pkt.CurrHop = uint8(curr)
			want, err := pkt.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			got, err := pkt.MarshalTemplated(tmpl)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("hop %d: templated wire diverges from Marshal", curr)
			}
			netsim.PutBuf(got)
		}
	}
	// Hop-count mismatch must be rejected, not silently mis-encoded.
	tmpl, err := dataplane.TemplateFor(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := &dataplane.Packet{Hops: paths[0].Hops[:1]}
	if _, err := bad.MarshalTemplated(tmpl); err == nil {
		t.Fatal("MarshalTemplated accepted a packet with the wrong hop count")
	}
}

// TestInjectTemplatedDelivers runs the full zero-copy send path end to end
// and checks it behaves exactly like InjectLocal: same delivery, same
// payload, and the sender's packet is left untouched for reuse.
func TestInjectTemplatedDelivers(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	tmpl, err := dataplane.TemplateFor(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1000),
		Dst:     udp(topology.AS211, "10.0.0.2", 2000),
		Hops:    paths[0].Hops,
		Payload: []byte("zero copy end to end"),
	}
	var mu sync.Mutex
	var got []*dataplane.Packet
	w.world.Router(topology.AS211).SetDeliveryHandler(func(p *dataplane.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ { // reuse the same packet across sends
		if err := w.world.Router(topology.AS111).InjectTemplated(pkt, tmpl); err != nil {
			t.Fatal(err)
		}
		for w.clock.AdvanceToNext() {
		}
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d of 3", len(got))
	}
	for _, p := range got {
		if string(p.Payload) != "zero copy end to end" {
			t.Fatalf("payload %q", p.Payload)
		}
		if p.Src != pkt.Src || p.Dst != pkt.Dst {
			t.Fatalf("addressing mangled: %+v -> %+v", p.Src, p.Dst)
		}
		p.Release()
	}
	if pkt.CurrHop != 0 {
		t.Fatalf("InjectTemplated mutated the caller's packet: CurrHop %d", pkt.CurrHop)
	}
	// A nil template falls back to InjectLocal transparently.
	if err := w.world.Router(topology.AS111).InjectTemplated(pkt, nil); err != nil {
		t.Fatal(err)
	}
	for w.clock.AdvanceToNext() {
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 4 {
		t.Fatalf("nil-template fallback did not deliver (got %d)", len(got))
	}
}

// TestMACCacheRejectsForgeryAfterWarm warms a router's MAC verdict cache
// with valid traffic, then sends a forged variant of the same flow: the
// forged hop bytes differ, so the cached PASS verdict must not apply.
func TestMACCacheRejectsForgeryAfterWarm(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	best := paths[0]
	good := &dataplane.Packet{
		Src:  udp(topology.AS111, "10.0.0.1", 1),
		Dst:  udp(topology.AS211, "10.0.0.2", 2),
		Hops: best.Hops, Payload: []byte("legit"),
	}
	// Warm: several valid packets of the same flow. (InjectLocal advances
	// CurrHop in the caller's packet, so send copies.)
	for i := 0; i < 3; i++ {
		fresh := *good
		if got, _ := sendAndAwait(t, w, &fresh); got == nil {
			t.Fatal("valid packet not delivered")
		}
	}
	transit := w.world.Router(best.Hops[1].IA)
	badBefore := transit.Stats().BadMAC
	hops := append([]segment.Hop(nil), best.Hops...)
	hops[1].Auth[0].HopField.ConsEgress++ // stale MAC, warm cache
	forged := &dataplane.Packet{
		Src:  udp(topology.AS111, "10.0.0.1", 1),
		Dst:  udp(topology.AS211, "10.0.0.2", 2),
		Hops: hops, Payload: []byte("evil"),
	}
	if got, _ := sendAndAwait(t, w, forged); got != nil {
		t.Fatal("forged packet delivered through a warm MAC cache")
	}
	if transit.Stats().BadMAC == badBefore {
		t.Fatal("transit router never re-verified the forged hop")
	}
	// Invalidation: valid traffic still flows after dropping every verdict.
	transit.InvalidateMACCache()
	fresh := *good
	if got, _ := sendAndAwait(t, w, &fresh); got == nil {
		t.Fatal("valid packet dropped after cache invalidation")
	}
}

// TestReleasedPacketsAreReused checks the delivery-side pooling contract:
// a released packet's storage comes back for a later delivery, and payloads
// remain intact for handlers that retain packets without releasing.
func TestReleasedPacketsAreReused(t *testing.T) {
	w := newWorld(t)
	paths := w.comb.Paths(topology.AS111, topology.AS211, during)
	pkt := &dataplane.Packet{
		Src:     udp(topology.AS111, "10.0.0.1", 1),
		Dst:     udp(topology.AS211, "10.0.0.2", 2),
		Hops:    paths[0].Hops,
		Payload: []byte("pooled delivery"),
	}
	seen := make(map[*dataplane.Packet]int)
	deliveries := 0
	w.world.Router(topology.AS211).SetDeliveryHandler(func(p *dataplane.Packet) {
		deliveries++
		seen[p]++
		if string(p.Payload) != "pooled delivery" {
			t.Errorf("delivery %d: payload %q", deliveries, p.Payload)
		}
		p.Release()
	})
	const n = 8
	for i := 0; i < n; i++ {
		fresh := *pkt // InjectLocal advances CurrHop in the caller's packet
		if err := w.world.Router(topology.AS111).InjectLocal(&fresh); err != nil {
			t.Fatal(err)
		}
		for w.clock.AdvanceToNext() {
		}
	}
	if deliveries != n {
		t.Fatalf("delivered %d of %d", deliveries, n)
	}
	reused := false
	for _, c := range seen {
		if c > 1 {
			reused = true
		}
	}
	if !reused {
		t.Fatal("no packet struct reuse across releases")
	}
	// Release is opt-in: calling it on a caller-constructed packet is a no-op
	// and must not poison the pool.
	pkt.Release()
	if string(pkt.Payload) != "pooled delivery" {
		t.Fatal("Release mutated a caller-owned packet")
	}
}
