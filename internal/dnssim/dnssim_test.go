package dnssim

import (
	"context"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"tango/internal/netsim"
)

var epoch = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID:        4242,
		Response:  true,
		Questions: []Question{{Name: "www.example.scion", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "www.example.scion", Type: TypeA, Class: ClassIN, TTL: 300, A: netip.MustParseAddr("10.1.2.3")},
			{Name: "www.example.scion", Type: TypeTXT, Class: ClassIN, TTL: 300, TXT: []string{"scion=1-ff00:0:110,10.1.2.3", "v=1"}},
		},
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || len(got.Questions) != 1 || len(got.Answers) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Questions[0].Name != "www.example.scion" {
		t.Fatalf("question name %q", got.Questions[0].Name)
	}
	if got.Answers[0].A != netip.MustParseAddr("10.1.2.3") {
		t.Fatalf("A %v", got.Answers[0].A)
	}
	if len(got.Answers[1].TXT) != 2 || got.Answers[1].TXT[0] != "scion=1-ff00:0:110,10.1.2.3" {
		t.Fatalf("TXT %v", got.Answers[1].TXT)
	}
}

func TestMessageUnmarshalJunkNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = Unmarshal(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsBadNames(t *testing.T) {
	m := &Message{Questions: []Question{{Name: "a..b", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Marshal(); err == nil {
		t.Fatal("empty label accepted")
	}
}

func world(t *testing.T) (*netsim.SimClock, *netsim.StreamNetwork, *Zone, *Resolver) {
	t.Helper()
	clock := netsim.NewSimClock(epoch)
	t.Cleanup(clock.AutoAdvance(100 * time.Microsecond))
	n := netsim.NewStreamNetwork(clock)
	n.SetRoute("client", "dns", netsim.RouteProps{Latency: 2 * time.Millisecond})
	zone := NewZone()
	zone.AddA("www.legacy.test", netip.MustParseAddr("192.0.2.10"), 5*time.Minute)
	zone.AddA("www.scion.test", netip.MustParseAddr("192.0.2.20"), 5*time.Minute)
	zone.AddTXT("www.scion.test", 5*time.Minute, "scion=1-ff00:0:211,10.0.0.2")
	srv, err := Serve(n, "dns:53", zone)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return clock, n, zone, NewResolver(n, "client", "dns:53", clock)
}

func TestResolveA(t *testing.T) {
	_, _, _, r := world(t)
	addrs, err := r.LookupA(context.Background(), "www.legacy.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.10") {
		t.Fatalf("addrs %v", addrs)
	}
}

func TestResolveTXT(t *testing.T) {
	_, _, _, r := world(t)
	txts, err := r.LookupTXT(context.Background(), "www.scion.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(txts) != 1 || txts[0] != "scion=1-ff00:0:211,10.0.0.2" {
		t.Fatalf("txts %v", txts)
	}
}

func TestResolveEmptyTypeVsNXDomain(t *testing.T) {
	_, _, _, r := world(t)
	// Name exists but has no TXT: empty answer, no error.
	txts, err := r.LookupTXT(context.Background(), "www.legacy.test")
	if err != nil {
		t.Fatalf("expected empty answer, got %v", err)
	}
	if len(txts) != 0 {
		t.Fatalf("txts %v", txts)
	}
	// Unknown name: NXDOMAIN.
	if _, err := r.LookupA(context.Background(), "nope.test"); err == nil {
		t.Fatal("NXDOMAIN not reported")
	}
}

func TestResolverCaching(t *testing.T) {
	clock, _, _, r := world(t)
	for i := 0; i < 5; i++ {
		if _, err := r.LookupA(context.Background(), "www.legacy.test"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Queries != 1 {
		t.Fatalf("issued %d wire queries for 5 lookups, want 1", r.Queries)
	}
	// After TTL expiry the resolver re-queries.
	clock.Sleep(6 * time.Minute)
	if _, err := r.LookupA(context.Background(), "www.legacy.test"); err != nil {
		t.Fatal(err)
	}
	if r.Queries != 2 {
		t.Fatalf("queries after TTL = %d, want 2", r.Queries)
	}
}

func TestNegativeCaching(t *testing.T) {
	_, _, _, r := world(t)
	for i := 0; i < 3; i++ {
		if _, err := r.LookupA(context.Background(), "missing.test"); err == nil {
			t.Fatal("expected NXDOMAIN")
		}
	}
	if r.Queries != 1 {
		t.Fatalf("negative lookups issued %d wire queries, want 1", r.Queries)
	}
}

func TestResolutionLatency(t *testing.T) {
	clock, _, _, r := world(t)
	start := clock.Now()
	if _, err := r.LookupA(context.Background(), "www.legacy.test"); err != nil {
		t.Fatal(err)
	}
	// Dial (1 RTT) + query/response (1 RTT) at 2ms one-way = 8ms.
	if got := clock.Since(start); got != 8*time.Millisecond {
		t.Fatalf("resolution took %v, want 8ms", got)
	}
}

func TestZoneCaseInsensitive(t *testing.T) {
	_, _, _, r := world(t)
	addrs, err := r.LookupA(context.Background(), "WWW.Legacy.Test")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("case-insensitive lookup failed: %v %v", addrs, err)
	}
}
