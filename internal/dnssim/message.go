// Package dnssim implements the DNS substrate for SCION detection (paper
// §4.3): an authoritative server with A and TXT records ("additional TXT
// records indicating a SCION address can be configured in existing DNS
// records") served over the simulated legacy network with the standard
// DNS-over-TCP framing, plus a caching client resolver.
//
// The wire codec implements the RFC 1035 message format for the record
// types the system needs (A, TXT). Name compression is not emitted and not
// accepted; both ends of the simulation speak this dialect.
package dnssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types.
const (
	TypeA   uint16 = 1
	TypeTXT uint16 = 16
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Response codes.
const (
	RcodeNoError  = 0
	RcodeNXDomain = 3
)

// Question is one DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Record is one resource record.
type Record struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	// A holds the address for TypeA records.
	A netip.Addr
	// TXT holds the strings for TypeTXT records.
	TXT []string
}

// Message is a DNS message (header + sections).
type Message struct {
	ID        uint16
	Response  bool
	Rcode     uint8
	Questions []Question
	Answers   []Record
}

// codec errors
var (
	ErrTruncatedMsg = errors.New("dnssim: truncated message")
	ErrBadName      = errors.New("dnssim: malformed name")
)

// appendName encodes a domain name as length-prefixed labels.
func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
	}
	return append(buf, 0), nil
}

func readName(buf []byte) (string, []byte, error) {
	var labels []string
	for {
		if len(buf) < 1 {
			return "", nil, ErrTruncatedMsg
		}
		n := int(buf[0])
		buf = buf[1:]
		if n == 0 {
			break
		}
		if n >= 0xC0 {
			return "", nil, fmt.Errorf("%w: compression pointers unsupported", ErrBadName)
		}
		if len(buf) < n {
			return "", nil, ErrTruncatedMsg
		}
		labels = append(labels, string(buf[:n]))
		buf = buf[n:]
	}
	return strings.Join(labels, "."), buf, nil
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	buf := make([]byte, 0, 128)
	buf = binary.BigEndian.AppendUint16(buf, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Rcode) & 0xF
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, 0) // authority
	buf = binary.BigEndian.AppendUint16(buf, 0) // additional
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, r := range m.Answers {
		if buf, err = appendName(buf, r.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, r.Type)
		buf = binary.BigEndian.AppendUint16(buf, r.Class)
		buf = binary.BigEndian.AppendUint32(buf, r.TTL)
		var rdata []byte
		switch r.Type {
		case TypeA:
			if !r.A.Is4() {
				return nil, fmt.Errorf("dnssim: A record %q without IPv4 address", r.Name)
			}
			a4 := r.A.As4()
			rdata = a4[:]
		case TypeTXT:
			for _, s := range r.TXT {
				if len(s) > 255 {
					return nil, fmt.Errorf("dnssim: TXT string too long in %q", r.Name)
				}
				rdata = append(rdata, byte(len(s)))
				rdata = append(rdata, s...)
			}
		default:
			return nil, fmt.Errorf("dnssim: unsupported record type %d", r.Type)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rdata)))
		buf = append(buf, rdata...)
	}
	return buf, nil
}

// Unmarshal decodes a message.
func Unmarshal(buf []byte) (*Message, error) {
	if len(buf) < 12 {
		return nil, ErrTruncatedMsg
	}
	m := &Message{ID: binary.BigEndian.Uint16(buf[0:2])}
	flags := binary.BigEndian.Uint16(buf[2:4])
	m.Response = flags&(1<<15) != 0
	m.Rcode = uint8(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(buf[4:6]))
	an := int(binary.BigEndian.Uint16(buf[6:8]))
	buf = buf[12:]
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, buf, err = readName(buf)
		if err != nil {
			return nil, err
		}
		if len(buf) < 4 {
			return nil, ErrTruncatedMsg
		}
		q.Type = binary.BigEndian.Uint16(buf[0:2])
		q.Class = binary.BigEndian.Uint16(buf[2:4])
		buf = buf[4:]
		m.Questions = append(m.Questions, q)
	}
	for i := 0; i < an; i++ {
		var r Record
		r.Name, buf, err = readName(buf)
		if err != nil {
			return nil, err
		}
		if len(buf) < 10 {
			return nil, ErrTruncatedMsg
		}
		r.Type = binary.BigEndian.Uint16(buf[0:2])
		r.Class = binary.BigEndian.Uint16(buf[2:4])
		r.TTL = binary.BigEndian.Uint32(buf[4:8])
		rdlen := int(binary.BigEndian.Uint16(buf[8:10]))
		buf = buf[10:]
		if len(buf) < rdlen {
			return nil, ErrTruncatedMsg
		}
		rdata := buf[:rdlen]
		buf = buf[rdlen:]
		switch r.Type {
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dnssim: A record with %d-byte rdata", rdlen)
			}
			r.A = netip.AddrFrom4([4]byte(rdata))
		case TypeTXT:
			for len(rdata) > 0 {
				n := int(rdata[0])
				rdata = rdata[1:]
				if len(rdata) < n {
					return nil, ErrTruncatedMsg
				}
				r.TXT = append(r.TXT, string(rdata[:n]))
				rdata = rdata[n:]
			}
		}
		m.Answers = append(m.Answers, r)
	}
	return m, nil
}
