package dnssim

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"tango/internal/netsim"
)

// Zone is an authoritative record set keyed by lowercase name.
type Zone struct {
	mu      sync.RWMutex
	records map[string][]Record
}

// NewZone creates an empty zone.
func NewZone() *Zone {
	return &Zone{records: make(map[string][]Record)}
}

// AddA registers an A record.
func (z *Zone) AddA(name string, ip netip.Addr, ttl time.Duration) {
	z.add(Record{Name: name, Type: TypeA, Class: ClassIN, TTL: uint32(ttl / time.Second), A: ip})
}

// AddTXT registers a TXT record.
func (z *Zone) AddTXT(name string, ttl time.Duration, strs ...string) {
	z.add(Record{Name: name, Type: TypeTXT, Class: ClassIN, TTL: uint32(ttl / time.Second), TXT: strs})
}

func (z *Zone) add(r Record) {
	key := strings.ToLower(r.Name)
	z.mu.Lock()
	defer z.mu.Unlock()
	z.records[key] = append(z.records[key], r)
}

// Lookup returns matching records.
func (z *Zone) Lookup(name string, qtype uint16) []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []Record
	for _, r := range z.records[strings.ToLower(name)] {
		if r.Type == qtype {
			out = append(out, r)
		}
	}
	return out
}

// Server answers DNS-over-TCP queries (2-byte length framing per RFC 1035
// §4.2.2) from a zone.
type Server struct {
	zone *Zone
	lis  net.Listener
}

// Serve starts the server on the legacy network at hostport (conventionally
// "dns:53"). It returns once listening; the accept loop runs in background.
func Serve(n *netsim.StreamNetwork, hostport string, zone *Zone) (*Server, error) {
	lis, err := n.Listen(hostport)
	if err != nil {
		return nil, err
	}
	s := &Server{zone: zone, lis: lis}
	go s.acceptLoop()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.lis.Close() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		query, err := readFrame(conn)
		if err != nil {
			return
		}
		q, err := Unmarshal(query)
		if err != nil {
			return
		}
		resp := s.answer(q)
		buf, err := resp.Marshal()
		if err != nil {
			return
		}
		if err := writeFrame(conn, buf); err != nil {
			return
		}
	}
}

func (s *Server) answer(q *Message) *Message {
	resp := &Message{ID: q.ID, Response: true, Questions: q.Questions}
	found := false
	for _, question := range q.Questions {
		recs := s.zone.Lookup(question.Name, question.Type)
		resp.Answers = append(resp.Answers, recs...)
		if len(recs) > 0 {
			found = true
		}
		// Distinguish NXDOMAIN from empty answer: any record type present?
		if !found {
			if len(s.zone.Lookup(question.Name, TypeA))+len(s.zone.Lookup(question.Name, TypeTXT)) > 0 {
				found = true // name exists, just no records of this type
			}
		}
	}
	if !found {
		resp.Rcode = RcodeNXDomain
	}
	return resp
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, buf []byte) error {
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(buf)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

// Resolver is a caching stub resolver querying one server over the legacy
// network.
type Resolver struct {
	net     *netsim.StreamNetwork
	from    string // local host name for routing
	server  string // server hostport
	clock   netsim.Clock
	rng     *rand.Rand
	mu      sync.Mutex
	cache   map[cacheKey]cacheEntry
	Queries int // wire queries issued (for tests and stats)
}

type cacheKey struct {
	name  string
	qtype uint16
}

type cacheEntry struct {
	records  []Record
	expires  time.Time
	nxdomain bool
}

// NewResolver builds a resolver for a host on the legacy network.
func NewResolver(n *netsim.StreamNetwork, fromHost, server string, clock netsim.Clock) *Resolver {
	return &Resolver{
		net:    n,
		from:   fromHost,
		server: server,
		clock:  clock,
		rng:    rand.New(rand.NewSource(1)),
		cache:  make(map[cacheKey]cacheEntry),
	}
}

// ErrNXDomain reports a nonexistent name.
var ErrNXDomain = fmt.Errorf("dnssim: no such domain")

// LookupA resolves A records.
func (r *Resolver) LookupA(ctx context.Context, name string) ([]netip.Addr, error) {
	recs, err := r.lookup(ctx, name, TypeA)
	if err != nil {
		return nil, err
	}
	out := make([]netip.Addr, 0, len(recs))
	for _, rec := range recs {
		out = append(out, rec.A)
	}
	return out, nil
}

// LookupTXT resolves TXT records, returning each string.
func (r *Resolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	recs, err := r.lookup(ctx, name, TypeTXT)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rec := range recs {
		out = append(out, rec.TXT...)
	}
	return out, nil
}

func (r *Resolver) lookup(ctx context.Context, name string, qtype uint16) ([]Record, error) {
	key := cacheKey{name: strings.ToLower(name), qtype: qtype}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok && r.clock.Now().Before(e.expires) {
		r.mu.Unlock()
		if e.nxdomain {
			return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
		}
		return e.records, nil
	}
	id := uint16(r.rng.Intn(1 << 16))
	r.mu.Unlock()

	conn, err := r.net.Dial(ctx, r.from, r.server)
	if err != nil {
		return nil, fmt.Errorf("dnssim: reaching resolver: %w", err)
	}
	defer conn.Close()
	query := &Message{ID: id, Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}}}
	buf, err := query.Marshal()
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, buf); err != nil {
		return nil, err
	}
	respBuf, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	resp, err := Unmarshal(respBuf)
	if err != nil {
		return nil, err
	}
	if resp.ID != id || !resp.Response {
		return nil, fmt.Errorf("dnssim: mismatched response")
	}

	r.mu.Lock()
	r.Queries++
	entry := cacheEntry{records: resp.Answers, nxdomain: resp.Rcode == RcodeNXDomain}
	ttl := time.Duration(300) * time.Second
	for _, a := range resp.Answers {
		if t := time.Duration(a.TTL) * time.Second; t < ttl {
			ttl = t
		}
	}
	if entry.nxdomain {
		ttl = 30 * time.Second
	}
	entry.expires = r.clock.Now().Add(ttl)
	r.cache[key] = entry
	r.mu.Unlock()

	if entry.nxdomain {
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
	}
	return resp.Answers, nil
}
