package experiments

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"tango/internal/netsim"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// RunFig3Ablation tests the paper's projection for Figure 3: "With tighter
// SCION integration in the browser and web server, we expect the overhead to
// disappear." It repeats the local-setup SCION-only experiment at three
// integration levels:
//
//	prototype   — WebExtensions interception + external HTTP proxy
//	              (the paper's measured configuration)
//	no-proxy    — interception cost only (network stack inside the browser,
//	              extension UI retained)
//	native      — full integration, zero per-request overhead
//
// and compares each against the BGP/IP-only baseline.
func RunFig3Ablation(runs int) (*Figure, error) {
	w, err := NewWorld(13, nil)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	w.Legacy.SetDefaultRoute(netsim.RouteProps{Latency: 200 * time.Microsecond})

	scionSite := webserver.NewSite()
	addResources(scionSite, pageResources)
	scionSite.AddPage("/index.html", webserver.BuildPage("scion-only",
		urlsFor(pageResources, "scionfs.local")))
	if err := w.scionServer(topology.AS111, "10.0.0.2", scionSite, 0, "scionfs.local"); err != nil {
		return nil, err
	}
	ipSite := webserver.NewSite()
	addResources(ipSite, pageResources)
	ipSite.AddPage("/index.html", webserver.BuildPage("bgp-ip-only",
		urlsFor(pageResources, "ipfs.local")))
	if _, err := webserver.ServeIP(w.Legacy, "192.0.2.10:80", ipSite); err != nil {
		return nil, err
	}
	w.Zone.AddA("ipfs.local", netip.MustParseAddr("192.0.2.10"), time.Hour)

	type level struct {
		label               string
		intercept, proxying time.Duration
		url                 string
		direct              bool
	}
	levels := []level{
		{"prototype (ext+proxy)", interceptCost, proxyCost, "http://scionfs.local/index.html", false},
		{"no-proxy (ext only)", interceptCost, 0, "http://scionfs.local/index.html", false},
		{"native integration", 0, 0, "http://scionfs.local/index.html", false},
		{"BGP/IP-only baseline", 0, 0, "http://ipfs.local/index.html", true},
	}
	fig := &Figure{
		ID:    "Figure 3 (ablation)",
		Title: "tight-integration projection: SCION-only PLT by integration level",
		Notes: "The paper's expectation: 'With tighter SCION integration in the browser and web\n" +
			"server, we expect the overhead to disappear' — native integration must approach the baseline.",
	}
	for _, lv := range levels {
		var samples []time.Duration
		for run := 0; run < runs; run++ {
			c, err := w.NewClient(ClientConfig{
				IA: topology.AS111, IP: "10.0.0.1", LegacyName: "client",
				InterceptCost: lv.intercept, InterceptJitter: lv.intercept / 4,
				ProxyCost: lv.proxying, ProxyJitter: lv.proxying / 4,
				Seed: int64(run),
			})
			if err != nil {
				return nil, err
			}
			if lv.direct {
				c.Browser.SetExtensionEnabled(false)
			}
			pl, err := c.Browser.LoadPage(context.Background(), lv.url)
			if err != nil {
				return nil, fmt.Errorf("ablation %s run %d: %w", lv.label, run, err)
			}
			samples = append(samples, pl.PLT)
			c.Proxy.Close()
		}
		fig.Series = append(fig.Series, Series{Label: lv.label, Samples: samples})
	}
	return fig, nil
}
