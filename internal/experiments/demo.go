package experiments

import (
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/sciondetect"
	"tango/internal/squic"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// Demo assembles the standard demonstration world used by the command-line
// tools and examples: a client in 1-ff00:0:111 with browser, extension, and
// SKIP proxy, plus three origins —
//
//	www.scion.example   SCION-native server in 2-ff00:0:211 (Strict-SCION),
//	                    also reachable over slow legacy IP
//	www.legacy.example  IP-only origin
//	www.proxied.example IP origin fronted by a SCION reverse proxy in
//	                    2-ff00:0:221
func Demo(seed int64) (*World, *Client, error) {
	w, err := NewWorld(seed, nil)
	if err != nil {
		return nil, nil, err
	}
	w.Legacy.SetDefaultRoute(netsim.RouteProps{Latency: 2 * time.Millisecond})
	w.Legacy.SetRoute("client", "dns", netsim.RouteProps{Latency: time.Millisecond})

	// SCION-native origin in ISD 2, with a slow legacy fallback route and a
	// Strict-SCION pin.
	scionSite := webserver.NewSite()
	addResources(scionSite, pageResources)
	addBigResource(scionSite)
	scionSite.AddPage("/index.html", webserver.BuildPage("scion-native",
		urlsFor(pageResources, "www.scion.example")))
	if err := w.scionServer(topology.AS211, "10.0.0.2", scionSite, time.Hour, "www.scion.example"); err != nil {
		return nil, nil, err
	}
	w.Legacy.SetRoute("client", "198.51.100.2", netsim.RouteProps{Latency: 120 * time.Millisecond})
	if _, err := webserver.ServeIP(w.Legacy, "198.51.100.2:80", scionSite); err != nil {
		return nil, nil, err
	}
	w.Zone.AddA("www.scion.example", netip.MustParseAddr("198.51.100.2"), time.Hour)

	// IP-only origin.
	legacySite := webserver.NewSite()
	addResources(legacySite, pageResources)
	legacySite.AddPage("/index.html", webserver.BuildPage("legacy",
		urlsFor(pageResources, "www.legacy.example")))
	w.Legacy.SetRoute("client", "192.0.2.2", netsim.RouteProps{Latency: 15 * time.Millisecond})
	if _, err := webserver.ServeIP(w.Legacy, "192.0.2.2:80", legacySite); err != nil {
		return nil, nil, err
	}
	w.Zone.AddA("www.legacy.example", netip.MustParseAddr("192.0.2.2"), time.Hour)

	// IP origin behind a SCION reverse proxy.
	proxiedSite := webserver.NewSite()
	addResources(proxiedSite, pageResources)
	addBigResource(proxiedSite)
	proxiedSite.AddPage("/index.html", webserver.BuildPage("proxied",
		urlsFor(pageResources, "www.proxied.example")))
	w.Legacy.SetRoute("client", "192.0.2.3", netsim.RouteProps{Latency: 80 * time.Millisecond})
	if _, err := webserver.ServeIP(w.Legacy, "192.0.2.3:80", proxiedSite); err != nil {
		return nil, nil, err
	}
	w.Zone.AddA("www.proxied.example", netip.MustParseAddr("192.0.2.3"), time.Hour)
	w.Legacy.SetRoute("rp", "192.0.2.3", netsim.RouteProps{Latency: 2 * time.Millisecond})
	if err := w.reverseProxy(topology.AS221, "10.0.0.3", "rp", "192.0.2.3:80", "www.proxied.example"); err != nil {
		return nil, nil, err
	}

	c, err := w.localClient(seed)
	if err != nil {
		return nil, nil, err
	}
	return w, c, nil
}

// BigResourcePath is the demo sites' large download, sized well above the
// default stripe threshold so the CLI tools can demonstrate striped fetches.
const BigResourcePath = "/static/big.bin"

// BigResourceSize is the byte length of BigResourcePath's body.
const BigResourceSize = 1 << 20

// addBigResource registers the deterministic large download on a site. It is
// not referenced from any index page, so page-load experiments are unaffected.
func addBigResource(site *webserver.Site) {
	body := make([]byte, BigResourceSize)
	for i := range body {
		body[i] = byte(i % 251)
	}
	site.Add(BigResourcePath, "application/octet-stream", body)
}

// reverseProxy stands up a SCION reverse proxy for an IP origin.
func (w *World) reverseProxy(ia addr.IA, ip, legacyName, origin string, hostnames ...string) error {
	rp := webserver.NewReverseProxy(w.Legacy, legacyName, origin)
	host := w.PANHost(ia, ip)
	id, err := squic.NewIdentity(hostnames[0])
	if err != nil {
		return err
	}
	if _, err := webserver.ServeSCION(host, 80, id, rp, 0); err != nil {
		return err
	}
	scionAddr := addr.Addr{IA: ia, Host: netip.MustParseAddr(ip)}
	for _, h := range hostnames {
		w.Pool.Add(h, id.Public())
		w.Zone.AddTXT(h, time.Hour, sciondetect.FormatTXT(scionAddr))
	}
	return nil
}
