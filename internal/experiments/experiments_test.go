package experiments

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"tango/internal/browser"
	"tango/internal/netsim"
	"tango/internal/proxy"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// Small fixture helpers shared by the behaviour tests.

func netsimRoute(lat time.Duration) netsim.RouteProps { return netsim.RouteProps{Latency: lat} }

func newStandardScionSite() *webserver.Site {
	site := webserver.NewSite()
	addResources(site, pageResources)
	site.AddPage("/index.html", webserver.BuildPage("scion-only", urlsFor(pageResources, "scionfs.local")))
	site.AddPage("/mixed.html", webserver.BuildPage("mixed", urlsFor(pageResources, "scionfs.local", "ipfs.local")))
	strictURLs := urlsFor(pageResources, "ipfs.local")
	strictURLs[0] = "http://scionfs.local/static/res-0"
	site.AddPage("/strict.html", webserver.BuildPage("strict", strictURLs))
	return site
}

func newStandardIPSite() *webserver.Site {
	site := webserver.NewSite()
	addResources(site, pageResources)
	site.AddPage("/index.html", webserver.BuildPage("ip", urlsFor(pageResources, "ipfs.local")))
	return site
}

func serveIP(w *World, hostport string, site *webserver.Site) (*webserver.IPServer, error) {
	return webserver.ServeIP(w.Legacy, hostport, site)
}

func addAZone(w *World, name, ip string) {
	w.Zone.AddA(name, netip.MustParseAddr(ip), time.Hour)
}

// testRuns keeps virtual-world tests quick; the cmd harness uses 30.
const testRuns = 5

func TestFig3ShapeMatchesPaper(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time shapes are distorted under the race detector")
	}
	fig, err := RunFig3(testRuns)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Summaries()
	scionOnly := s["SCION-only"].Median
	mixed := s["mixed SCION-IP"].Median
	strict := s["strict-SCION"].Median
	bgp := s["BGP/IP-only"].Median
	t.Logf("medians (ms): scion-only=%.1f mixed=%.1f strict=%.1f bgp=%.1f", scionOnly, mixed, strict, bgp)

	// Paper: "The results show a longer PLT for the SCION-only and the
	// mixed SCION-IP (approximately 100 ms) with respect to the PLT when
	// the extension is disabled (BGP/IP-Only) and to the strict-SCION
	// experiment."
	if !(scionOnly > bgp && mixed > bgp) {
		t.Errorf("proxied experiments must exceed BGP/IP-only")
	}
	if overhead := scionOnly - bgp; overhead < 50 || overhead > 200 {
		t.Errorf("SCION-only overhead = %.1f ms, want ~100 ms", overhead)
	}
	if overhead := mixed - bgp; overhead < 50 || overhead > 200 {
		t.Errorf("mixed overhead = %.1f ms, want ~100 ms", overhead)
	}
	if !(strict < scionOnly && strict < mixed) {
		t.Errorf("strict-SCION must be shorter than the proxied full loads")
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time shapes are distorted under the race detector")
	}
	fig, err := RunFig5(testRuns)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Summaries()
	singleSCION := s["single-origin SCION"].Median
	singleIP := s["single-origin IPv4/6"].Median
	multiSCION := s["multi-origin SCION"].Median
	multiIP := s["multi-origin IPv4/6"].Median
	t.Logf("medians (ms): single scion=%.1f ip=%.1f | multi scion=%.1f ip=%.1f",
		singleSCION, singleIP, multiSCION, multiIP)

	// Paper: "For the single origin page, we observe that the PLT improves
	// significantly when the resource is loaded via SCION."
	if singleSCION >= singleIP {
		t.Errorf("single-origin SCION (%.1f) must beat IPv4/6 (%.1f)", singleSCION, singleIP)
	}
	if gain := (singleIP - singleSCION) / singleIP; gain < 0.10 {
		t.Errorf("single-origin SCION gain = %.0f%%, want significant", gain*100)
	}
	// The multi-origin page narrows the relative gap.
	singleGap := (singleIP - singleSCION) / singleIP
	multiGap := (multiIP - multiSCION) / multiIP
	if multiGap >= singleGap {
		t.Errorf("multi-origin gap (%.2f) should be narrower than single-origin (%.2f)", multiGap, singleGap)
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time shapes are distorted under the race detector")
	}
	fig, err := RunFig6(testRuns)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Summaries()
	singleSCION := s["single-origin SCION"].Median
	singleIP := s["single-origin IPv4/6"].Median
	t.Logf("medians (ms): single scion=%.1f ip=%.1f", singleSCION, singleIP)

	// Paper: "when paths are similar, the extension adds a small overhead
	// compared to the baseline."
	if singleSCION <= singleIP {
		t.Errorf("AS-local page over SCION (%.1f) should cost slightly more than IPv4/6 (%.1f)", singleSCION, singleIP)
	}
	if singleSCION > 3*singleIP {
		t.Errorf("overhead too large: scion=%.1f ip=%.1f", singleSCION, singleIP)
	}
}

// behaviourWorld rebuilds the Figure 3 world for §4.2 behaviour tests.
func behaviourWorld(t *testing.T) (*World, *Client) {
	t.Helper()
	w, err := NewWorld(99, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	w.Legacy.SetDefaultRoute(netsimRoute(200 * time.Microsecond))

	scionSite := newStandardScionSite()
	if err := w.scionServer(topology.AS111, "10.0.0.2", scionSite, 0, "scionfs.local"); err != nil {
		t.Fatal(err)
	}
	ipSite := newStandardIPSite()
	if _, err := serveIP(w, "192.0.2.10:80", ipSite); err != nil {
		t.Fatal(err)
	}
	addAZone(w, "ipfs.local", "192.0.2.10")

	c, err := w.localClient(0)
	if err != nil {
		t.Fatal(err)
	}
	return w, c
}

func TestIndicatorAllSomeNone(t *testing.T) {
	_, c := behaviourWorld(t)
	ctx := context.Background()

	pl, err := c.Browser.LoadPage(ctx, "http://scionfs.local/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Indicator != browser.AllSCION {
		t.Errorf("scion-only page indicator = %v, want all-scion", pl.Indicator)
	}
	pl, err = c.Browser.LoadPage(ctx, "http://scionfs.local/mixed.html")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Indicator != browser.SomeSCION {
		t.Errorf("mixed page indicator = %v, want some-scion", pl.Indicator)
	}
	pl, err = c.Browser.LoadPage(ctx, "http://ipfs.local/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Indicator != browser.NoSCION {
		t.Errorf("ip page indicator = %v, want no-scion", pl.Indicator)
	}
}

func TestStrictModeBlocksIPResources(t *testing.T) {
	_, c := behaviourWorld(t)
	c.Extension.SetStrictAll(true)
	pl, err := c.Browser.LoadPage(context.Background(), "http://scionfs.local/strict.html")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Blocked != pageResources-1 {
		t.Errorf("blocked = %d, want %d (all IP resources)", pl.Blocked, pageResources-1)
	}
	loaded := 0
	for _, r := range pl.Resources {
		if !r.Blocked && r.Err == "" {
			loaded++
			if r.Via != proxy.ViaSCION {
				t.Errorf("strict-mode resource %s loaded via %s", r.URL, r.Via)
			}
		}
	}
	if loaded != 1 {
		t.Errorf("loaded %d resources, want exactly the one SCION resource", loaded)
	}
	// Strict main page on an IP-only site must fail entirely.
	if _, err := c.Browser.LoadPage(context.Background(), "http://ipfs.local/index.html"); err == nil {
		t.Error("strict load of IP-only site should fail")
	}
}

func TestProxyStatsFeedback(t *testing.T) {
	_, c := behaviourWorld(t)
	if _, err := c.Browser.LoadPage(context.Background(), "http://scionfs.local/mixed.html"); err != nil {
		t.Fatal(err)
	}
	snap := c.Proxy.Stats().Snapshot()
	if snap.ByVia[proxy.ViaSCION] == 0 || snap.ByVia[proxy.ViaIP] == 0 {
		t.Fatalf("stats should show both vias: %+v", snap.ByVia)
	}
	if len(snap.Paths) == 0 {
		t.Fatal("no per-path usage recorded")
	}
	if snap.Paths[0].Requests == 0 || snap.Paths[0].Fingerprint == "" {
		t.Fatalf("path usage malformed: %+v", snap.Paths[0])
	}
}

func TestFig3AblationOverheadDisappears(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time shapes are distorted under the race detector")
	}
	fig, err := RunFig3Ablation(testRuns)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Summaries()
	proto := s["prototype (ext+proxy)"].Median
	noProxy := s["no-proxy (ext only)"].Median
	native := s["native integration"].Median
	baseline := s["BGP/IP-only baseline"].Median
	t.Logf("medians (ms): prototype=%.1f no-proxy=%.1f native=%.1f baseline=%.1f",
		proto, noProxy, native, baseline)
	if !(proto > noProxy && noProxy > native) {
		t.Errorf("overhead must shrink monotonically with tighter integration")
	}
	// "We expect the overhead to disappear": native integration lands within
	// a few ms of the legacy baseline.
	if native > baseline+10 {
		t.Errorf("native integration overhead = %.1f ms, want near baseline", native-baseline)
	}
}
