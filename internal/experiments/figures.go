package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"strings"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/sciondetect"
	"tango/internal/squic"
	"tango/internal/stats"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// Series is one labeled PLT distribution.
type Series struct {
	Label   string
	Samples []time.Duration
}

// Figure is one reproduced experiment.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  string
}

// Render draws the figure as an ASCII box plot with per-series summaries.
func (f *Figure) Render() string {
	var b strings.Builder
	series := make([]stats.Series, len(f.Series))
	for i, s := range f.Series {
		series[i] = stats.Series{Label: s.Label, Summary: stats.SummarizeDurations(s.Samples)}
	}
	b.WriteString(stats.RenderBoxPlot(fmt.Sprintf("%s — %s", f.ID, f.Title), "ms PLT", series, 100))
	if f.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", f.Notes)
	}
	return b.String()
}

// Summaries returns per-series summaries keyed by label.
func (f *Figure) Summaries() map[string]stats.Summary {
	out := make(map[string]stats.Summary, len(f.Series))
	for _, s := range f.Series {
		out[s.Label] = stats.SummarizeDurations(s.Samples)
	}
	return out
}

// Prototype overhead calibration: the per-request costs of the
// WebExtensions interception (single JS event loop) and the prototype HTTP
// proxy. With the paper's 12-subresource pages these serialized costs
// produce the ~100 ms PLT overhead of Figure 3.
const (
	interceptCost   = 1 * time.Millisecond
	interceptJitter = 300 * time.Microsecond
	proxyCost       = 6500 * time.Microsecond
	proxyJitter     = 1500 * time.Microsecond
	// pageResources is the subresource count of every experiment page.
	pageResources = 12
	// resourceSize is each subresource's body size.
	resourceSize = 4 << 10
)

// scionServer stands up an HTTP-over-SCION server for a set of hostnames,
// registering identities and TXT records.
func (w *World) scionServer(ia addr.IA, ip string, site http.Handler, strictMaxAge time.Duration, hostnames ...string) error {
	host := w.PANHost(ia, ip)
	id, err := squic.NewIdentity(hostnames[0])
	if err != nil {
		return err
	}
	if _, err := webserver.ServeSCION(host, 80, id, site, strictMaxAge); err != nil {
		return err
	}
	scionAddr := addr.Addr{IA: ia, Host: netip.MustParseAddr(ip)}
	for _, h := range hostnames {
		w.Pool.Add(h, id.Public())
		w.Zone.AddTXT(h, time.Hour, sciondetect.FormatTXT(scionAddr))
	}
	return nil
}

// localClient builds a fig-3-style client with prototype overheads.
func (w *World) localClient(seed int64) (*Client, error) {
	return w.NewClient(ClientConfig{
		IA: topology.AS111, IP: "10.0.0.1", LegacyName: "client",
		InterceptCost: interceptCost, InterceptJitter: interceptJitter,
		ProxyCost: proxyCost, ProxyJitter: proxyJitter,
		Seed: seed,
	})
}

// urlsFor builds n absolute resource URLs spread round-robin over origins.
func urlsFor(n int, origins ...string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://%s/static/res-%d", origins[i%len(origins)], i)
	}
	return out
}

// addResources registers n subresource bodies on a site (matching urlsFor
// paths).
func addResources(site *webserver.Site, n int) {
	for i := 0; i < n; i++ {
		body := make([]byte, resourceSize)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		ct := []string{"application/javascript", "text/css", "image/png"}[i%3]
		site.Add(fmt.Sprintf("/static/res-%d", i), ct, body)
	}
}

// RunFig3 reproduces Figure 3: PLT box plots in the local setup (Figure 2)
// for the four experiments SCION-only, mixed SCION-IP, strict-SCION, and
// BGP/IP-only.
func RunFig3(runs int) (*Figure, error) {
	w, err := NewWorld(3, nil)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	// Local setup: every machine on the same host/AS (paper Figure 2).
	w.Legacy.SetDefaultRoute(netsim.RouteProps{Latency: 200 * time.Microsecond})

	// SCION file server (blue host) and TCP/IP file server (grey host).
	scionSite := webserver.NewSite()
	addResources(scionSite, pageResources)
	scionSite.AddPage("/index.html", webserver.BuildPage("scion-only",
		urlsFor(pageResources, "scionfs.local")))
	// Mixed page: half the subresources from the TCP/IP FS.
	scionSite.AddPage("/mixed.html", webserver.BuildPage("mixed",
		urlsFor(pageResources, "scionfs.local", "ipfs.local")))
	// Strict page: one SCION subresource, the rest on the TCP/IP FS.
	strictURLs := urlsFor(pageResources, "ipfs.local")
	strictURLs[0] = "http://scionfs.local/static/res-0"
	scionSite.AddPage("/strict.html", webserver.BuildPage("strict", strictURLs))
	if err := w.scionServer(topology.AS111, "10.0.0.2", scionSite, 0, "scionfs.local"); err != nil {
		return nil, err
	}

	ipSite := webserver.NewSite()
	addResources(ipSite, pageResources)
	ipSite.AddPage("/index.html", webserver.BuildPage("bgp-ip-only",
		urlsFor(pageResources, "ipfs.local")))
	if _, err := webserver.ServeIP(w.Legacy, "192.0.2.10:80", ipSite); err != nil {
		return nil, err
	}
	w.Zone.AddA("ipfs.local", netip.MustParseAddr("192.0.2.10"), time.Hour)

	fig := &Figure{
		ID:    "Figure 3",
		Title: "PLT per experiment type, local setup",
		Notes: "Expected shape: SCION-only ≈ mixed > BGP/IP-only; strict-SCION short (blocks);\n" +
			"overhead stems from extension interception + HTTP proxy traversal.",
	}
	type mode struct {
		label  string
		url    string
		setup  func(*Client)
		direct bool
	}
	modes := []mode{
		{"SCION-only", "http://scionfs.local/index.html", nil, false},
		{"mixed SCION-IP", "http://scionfs.local/mixed.html", nil, false},
		{"strict-SCION", "http://scionfs.local/strict.html", func(c *Client) { c.Extension.SetStrictAll(true) }, false},
		{"BGP/IP-only", "http://ipfs.local/index.html", nil, true},
	}
	for _, m := range modes {
		var samples []time.Duration
		for run := 0; run < runs; run++ {
			c, err := w.localClient(int64(run))
			if err != nil {
				return nil, err
			}
			if m.setup != nil {
				m.setup(c)
			}
			if m.direct {
				c.Browser.SetExtensionEnabled(false)
			}
			pl, err := c.Browser.LoadPage(context.Background(), m.url)
			if err != nil && m.label != "strict-SCION" {
				return nil, fmt.Errorf("fig3 %s run %d: %w", m.label, run, err)
			}
			samples = append(samples, pl.PLT)
			c.Proxy.Close()
		}
		fig.Series = append(fig.Series, Series{Label: m.label, Samples: samples})
	}
	return fig, nil
}

// remoteWorld assembles the distributed setup of Figure 4: the client in
// ISD 1, a distant TCP/IP origin whose BGP route is slow, and a SCION
// reverse proxy near the origin giving SCION access.
func remoteWorld() (*World, error) {
	w, err := NewWorld(5, nil)
	if err != nil {
		return nil, err
	}
	w.Legacy.SetDefaultRoute(netsim.RouteProps{Latency: 2 * time.Millisecond})
	// DNS sits near the client.
	w.Legacy.SetRoute("client", "dns", netsim.RouteProps{Latency: 2 * time.Millisecond})

	// Distant origin: BGP routes via the slow geodesic (cf. the 110-210
	// core link), while the best SCION path runs 111-110-120-210-211 at
	// 91 ms one way.
	const remoteBGP = 120 * time.Millisecond
	w.Legacy.SetRoute("client", "198.51.100.10", netsim.RouteProps{Latency: remoteBGP})
	remoteOrigin := webserver.NewSite()
	addResources(remoteOrigin, pageResources)
	remoteOrigin.AddPage("/single.html", webserver.BuildPage("remote single origin",
		urlsFor(pageResources, "remote.example")))
	remoteOrigin.AddPage("/multi.html", webserver.BuildPage("remote multi origin",
		urlsFor(pageResources, "remote.example", "eu.example", "asia.example")))
	if _, err := webserver.ServeIP(w.Legacy, "198.51.100.10:80", remoteOrigin); err != nil {
		return nil, err
	}
	w.Zone.AddA("remote.example", netip.MustParseAddr("198.51.100.10"), time.Hour)

	// SCION reverse proxy next to the distant origin (AS 211).
	w.Legacy.SetRoute("rp-remote", "198.51.100.10", netsim.RouteProps{Latency: 2 * time.Millisecond})
	rp := webserver.NewReverseProxy(w.Legacy, "rp-remote", "198.51.100.10:80")
	rpHost := w.PANHost(topology.AS211, "10.0.0.50")
	rpID, err := squic.NewIdentity("remote.example")
	if err != nil {
		return nil, err
	}
	if _, err := webserver.ServeSCION(rpHost, 80, rpID, rp, 0); err != nil {
		return nil, err
	}
	w.Pool.Add("remote.example", rpID.Public())
	w.Zone.AddTXT("remote.example", time.Hour,
		sciondetect.FormatTXT(addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.50")}))

	// Secondary origins for the multi-origin page: a nearby IP-only origin
	// and a medium-distance origin whose IP route beats its SCION path.
	w.Legacy.SetRoute("client", "203.0.113.20", netsim.RouteProps{Latency: 5 * time.Millisecond})
	euSite := webserver.NewSite()
	addResources(euSite, pageResources)
	if _, err := webserver.ServeIP(w.Legacy, "203.0.113.20:80", euSite); err != nil {
		return nil, err
	}
	w.Zone.AddA("eu.example", netip.MustParseAddr("203.0.113.20"), time.Hour)

	w.Legacy.SetRoute("client", "203.0.113.30", netsim.RouteProps{Latency: 60 * time.Millisecond})
	asiaSite := webserver.NewSite()
	addResources(asiaSite, pageResources)
	if _, err := webserver.ServeIP(w.Legacy, "203.0.113.30:80", asiaSite); err != nil {
		return nil, err
	}
	w.Zone.AddA("asia.example", netip.MustParseAddr("203.0.113.30"), time.Hour)
	// asia.example is also SCION-reachable via a reverse proxy in AS 221,
	// but its best path (80 ms) loses to its 60 ms BGP route.
	w.Legacy.SetRoute("rp-asia", "203.0.113.30", netsim.RouteProps{Latency: 2 * time.Millisecond})
	asiaRP := webserver.NewReverseProxy(w.Legacy, "rp-asia", "203.0.113.30:80")
	asiaHost := w.PANHost(topology.AS221, "10.0.0.60")
	asiaID, err := squic.NewIdentity("asia.example")
	if err != nil {
		return nil, err
	}
	if _, err := webserver.ServeSCION(asiaHost, 80, asiaID, asiaRP, 0); err != nil {
		return nil, err
	}
	w.Pool.Add("asia.example", asiaID.Public())
	w.Zone.AddTXT("asia.example", time.Hour,
		sciondetect.FormatTXT(addr.Addr{IA: topology.AS221, Host: netip.MustParseAddr("10.0.0.60")}))

	return w, nil
}

// runPLTComparison loads the given URLs with the extension enabled (SCION)
// and disabled (IPv4/6) and returns one series per (URL, mode).
func runPLTComparison(w *World, runs int, pages map[string]string) ([]Series, error) {
	var out []Series
	for _, label := range sortedKeys(pages) {
		url := pages[label]
		for _, mode := range []struct {
			name    string
			enabled bool
		}{{"SCION", true}, {"IPv4/6", false}} {
			var samples []time.Duration
			for run := 0; run < runs; run++ {
				c, err := w.localClient(int64(run))
				if err != nil {
					return nil, err
				}
				c.Browser.SetExtensionEnabled(mode.enabled)
				pl, err := c.Browser.LoadPage(context.Background(), url)
				if err != nil {
					return nil, fmt.Errorf("%s (%s) run %d: %w", label, mode.name, run, err)
				}
				samples = append(samples, pl.PLT)
				c.Proxy.Close()
			}
			out = append(out, Series{Label: label + " " + mode.name, Samples: samples})
		}
	}
	return out, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Small fixed sets: simple insertion sort keeps imports lean.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RunFig5 reproduces Figure 5: PLT for pages hosted in distant locations,
// over SCION vs IPv4/6, with single- and multi-origin pages. SCION wins the
// single-origin case through path-aware low-latency path selection.
func RunFig5(runs int) (*Figure, error) {
	w, err := remoteWorld()
	if err != nil {
		return nil, err
	}
	defer w.Close()
	series, err := runPLTComparison(w, runs, map[string]string{
		"single-origin": "http://remote.example/single.html",
		"multi-origin":  "http://remote.example/multi.html",
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "Figure 5",
		Title:  "PLT for remote pages, SCION vs IPv4/6",
		Series: series,
		Notes: "Expected shape: SCION < IPv4/6 for the single-origin page (path awareness\n" +
			"picks a lower-latency path than the BGP route); the multi-origin page narrows the gap.",
	}, nil
}

// RunFig6 reproduces Figure 6: PLT for an AS-local (nearby) page where the
// SCION and BGP paths are similar, so the extension's overhead shows as a
// small PLT increase.
func RunFig6(runs int) (*Figure, error) {
	w, err := NewWorld(6, nil)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	w.Legacy.SetDefaultRoute(netsim.RouteProps{Latency: 2 * time.Millisecond})
	w.Legacy.SetRoute("client", "dns", netsim.RouteProps{Latency: 2 * time.Millisecond})

	// Nearby origin: 10 ms BGP; SCION via a reverse proxy in the sibling
	// AS 112 (best path 7 ms) plus a 4 ms legacy leg — comparable paths
	// (11 ms vs 10 ms), so only the prototype overhead differentiates.
	w.Legacy.SetRoute("client", "192.0.2.40", netsim.RouteProps{Latency: 10 * time.Millisecond})
	site := webserver.NewSite()
	addResources(site, pageResources)
	site.AddPage("/single.html", webserver.BuildPage("near single origin",
		urlsFor(pageResources, "near.example")))
	site.AddPage("/multi.html", webserver.BuildPage("near multi origin",
		urlsFor(pageResources, "near.example", "near2.example")))
	if _, err := webserver.ServeIP(w.Legacy, "192.0.2.40:80", site); err != nil {
		return nil, err
	}
	w.Zone.AddA("near.example", netip.MustParseAddr("192.0.2.40"), time.Hour)

	w.Legacy.SetRoute("rp-near", "192.0.2.40", netsim.RouteProps{Latency: 4 * time.Millisecond})
	rp := webserver.NewReverseProxy(w.Legacy, "rp-near", "192.0.2.40:80")
	rpHost := w.PANHost(topology.AS112, "10.0.0.70")
	rpID, err := squic.NewIdentity("near.example")
	if err != nil {
		return nil, err
	}
	if _, err := webserver.ServeSCION(rpHost, 80, rpID, rp, 0); err != nil {
		return nil, err
	}
	w.Pool.Add("near.example", rpID.Public())
	w.Zone.AddTXT("near.example", time.Hour,
		sciondetect.FormatTXT(addr.Addr{IA: topology.AS112, Host: netip.MustParseAddr("10.0.0.70")}))

	// Second nearby origin, IP-only.
	w.Legacy.SetRoute("client", "192.0.2.41", netsim.RouteProps{Latency: 8 * time.Millisecond})
	site2 := webserver.NewSite()
	addResources(site2, pageResources)
	if _, err := webserver.ServeIP(w.Legacy, "192.0.2.41:80", site2); err != nil {
		return nil, err
	}
	w.Zone.AddA("near2.example", netip.MustParseAddr("192.0.2.41"), time.Hour)

	series, err := runPLTComparison(w, runs, map[string]string{
		"single-origin": "http://near.example/single.html",
		"multi-origin":  "http://near.example/multi.html",
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "Figure 6",
		Title:  "PLT for an AS-local page, SCION vs IPv4/6",
		Series: series,
		Notes:  "Expected shape: paths similar ⇒ the extension adds a small overhead over the baseline.",
	}, nil
}
