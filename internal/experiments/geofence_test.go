package experiments

import (
	"context"
	"testing"

	"tango/internal/browser"
	"tango/internal/policy"
	"tango/internal/proxy"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// geofenceWorld serves a page from ISD 2 over SCION (with legacy fallback).
func geofenceWorld(t *testing.T) (*World, *Client) {
	t.Helper()
	w, err := NewWorld(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	w.Legacy.SetDefaultRoute(netsimRoute(0))

	site := webserverSite(t)
	if err := w.scionServer(topology.AS211, "10.0.0.2", site, 0, "abroad.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := serveIP(w, "198.51.100.99:80", site); err != nil {
		t.Fatal(err)
	}
	addAZone(w, "abroad.example", "198.51.100.99")

	c, err := w.localClient(0)
	if err != nil {
		t.Fatal(err)
	}
	return w, c
}

func webserverSite(t *testing.T) *webserver.Site {
	t.Helper()
	site := webserver.NewSite()
	addResources(site, pageResources)
	site.AddPage("/index.html", webserver.BuildPage("abroad", urlsFor(pageResources, "abroad.example")))
	return site
}

func TestGeofencingOpportunisticFlagsNonCompliance(t *testing.T) {
	_, c := geofenceWorld(t)
	// The user blocks ISD 2 — but the site lives there, so no compliant
	// path can exist. Opportunistic mode still loads the page and flags it.
	c.Extension.SetGeofence(policy.NewBlockGeofence(2))
	pl, err := c.Browser.LoadPage(context.Background(), "http://abroad.example/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Indicator != browser.AllSCION {
		t.Fatalf("indicator = %v, want all-scion (opportunistic still uses SCION)", pl.Indicator)
	}
	if pl.Compliant {
		t.Fatal("page must be flagged non-compliant (paper §4.2)")
	}
}

func TestGeofencingStrictBlocks(t *testing.T) {
	_, c := geofenceWorld(t)
	c.Extension.SetGeofence(policy.NewBlockGeofence(2))
	c.Extension.SetStrictAll(true)
	if _, err := c.Browser.LoadPage(context.Background(), "http://abroad.example/index.html"); err == nil {
		t.Fatal("strict mode must refuse a site with no policy-compliant path")
	}
}

func TestGeofencingCompliantWhenAllowed(t *testing.T) {
	_, c := geofenceWorld(t)
	// Blocking an un-traversed ISD keeps everything compliant. All paths
	// 111 -> 211 cross ISDs 1 and 2 only, so block a fictive ISD 3.
	c.Extension.SetGeofence(policy.NewBlockGeofence(3))
	pl, err := c.Browser.LoadPage(context.Background(), "http://abroad.example/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Compliant || pl.Indicator != browser.AllSCION {
		t.Fatalf("load %+v, want compliant all-scion", pl)
	}
}

func TestGeofencingReroutesAroundBlockedAS(t *testing.T) {
	// Serve from AS 121 (same ISD): the fastest path uses the 111~121
	// peering link; blocking nothing uses it, and a sequence forcing core
	// transit still works — shown here via AS-level avoidance: block the
	// peering next-hop's country? Simpler: use an allow geofence for ISD 1
	// (compliant, since all 111->121 paths stay in ISD 1).
	w, err := NewWorld(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	w.Legacy.SetDefaultRoute(netsimRoute(0))
	site := webserver.NewSite()
	addResources(site, pageResources)
	site.AddPage("/index.html", webserver.BuildPage("domestic", urlsFor(pageResources, "domestic.example")))
	if err := w.scionServer(topology.AS121, "10.0.0.2", site, 0, "domestic.example"); err != nil {
		t.Fatal(err)
	}
	c, err := w.localClient(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Extension.SetGeofence(policy.NewAllowGeofence(1))
	c.Extension.SetStrictAll(true)
	pl, err := c.Browser.LoadPage(context.Background(), "http://domestic.example/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Compliant {
		t.Fatal("intra-ISD page must be compliant under allow-only-ISD-1")
	}
	snap := c.Proxy.Stats().Snapshot()
	if snap.ByVia[proxy.ViaSCION] == 0 {
		t.Fatalf("expected SCION traffic, stats %+v", snap.ByVia)
	}
}
