package experiments

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestHotspotRoutingAndAdaptiveRaceE2E is the deterministic netsim scenario
// of the shared telemetry plane: congestion on ONE shared link degrades TWO
// paths at once, and only the link-level decomposition can localize it.
//
// Topology: of the three inter-ISD paths AS111 → AS211, the two fastest
// (via 120-210 at 91ms and via 120-220-210 at 116ms one-way) both cross the
// 110-120 core link; the third (the slow 110-210 geodesic, 126ms) avoids
// it. The test oscillates 110-120's latency (+40ms every other probe round,
// a square wave), so the degraded paths' RTT alternates between baseline
// and +80ms:
//
//   - LatencySelector's end-to-end EWMA averages the oscillation away: the
//     fast path's estimate peaks at ~228ms, still below the clean path's
//     steady 252ms, so it KEEPS ranking the degraded path first — it
//     cannot see where the variance lives.
//   - HotspotSelector reads the monitor's link store, where the
//     min-across-paths attribution pins the excess to exactly 110-120
//     (both crossing paths run hot; every link a clean path crosses is
//     exonerated), and the variance penalty demotes BOTH degraded paths
//     below the stable one: it routes around the hotspot.
//
// One Monitor serves both selectors' dialers (refcounted tracking), and
// adaptive racing is asserted on the same telemetry: the first dial (no
// telemetry) races the full width, while a dial one probe round after the
// leader's estimate is in drops to width 1 — the leader is fresh and
// clearly ahead, so no extra handshakes touch the wire.
func TestHotspotRoutingAndAdaptiveRaceE2E(t *testing.T) {
	w, err := NewWorld(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	server := w.PANHost(topology.AS211, "10.0.0.88")
	lis := echoListener(t, server, 7400, "hotspot.e2e", w.Pool)
	t.Cleanup(func() { lis.Close() })
	client := w.PANHost(topology.AS111, "10.0.8.40")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.88")}, Port: 7400}

	paths := client.Paths(topology.AS211)
	var hot []*segment.Path
	var clean *segment.Path
	for _, p := range paths {
		if pathUsesLink(p, topology.Core110, topology.Core120) {
			hot = append(hot, p)
		} else {
			clean = p
		}
	}
	if len(hot) < 2 || clean == nil {
		t.Fatalf("scenario needs ≥2 paths over 110-120 and one avoiding it; got %d hot, clean=%v", len(hot), clean)
	}

	monitor := client.NewMonitor(pan.MonitorOptions{
		BaseInterval: 2 * time.Second,
		Timeout:      time.Second,
	})
	hs := pan.NewHotspotSelector(monitor)
	ls := pan.NewLatencySelector()
	// Two dialers, ONE monitor: the shared-plane deployment shape.
	dHot := client.NewDialer(pan.DialOptions{
		Selector:     hs,
		ServerName:   "hotspot.e2e",
		Timeout:      2 * time.Second,
		RaceWidth:    3,
		AdaptiveRace: true,
		Monitor:      monitor,
	})
	t.Cleanup(dHot.Close)
	dLat := client.NewDialer(pan.DialOptions{
		Selector:   ls,
		ServerName: "hotspot.e2e",
		Timeout:    2 * time.Second,
		Monitor:    monitor,
	})
	t.Cleanup(dLat.Close)

	// First dial: no telemetry yet — adaptive racing must go full width.
	conn, _, err := dHot.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	echoRoundTrip(t, conn)
	if dec := dHot.LastRace(); !dec.Adaptive || dec.Width != 3 {
		t.Fatalf("first dial raced width %d (%s), want full width 3 without telemetry", dec.Width, dec.Reason)
	}
	if _, _, err := dLat.Dial(context.Background(), remote, ""); err != nil {
		t.Fatalf("latency dialer dial: %v", err)
	}
	if n := monitor.TargetCount(); n != 1 {
		t.Fatalf("two dialers pooling one destination must refcount to 1 target, got %d", n)
	}

	// Congest the shared link with a deterministic square wave: +40ms
	// one-way every other probe round. Probes within a round are
	// sequential on the virtual clock, so each round samples one phase.
	link := w.DW.Link(topology.Core110, topology.Core120)
	if link == nil {
		t.Fatal("default topology must have the 110-120 core link")
	}
	base := link.Props()
	for round := 0; round < 8; round++ {
		props := base
		if round%2 == 1 {
			props.Latency = base.Latency + 40*time.Millisecond
		}
		link.SetProps(props)
		monitor.RunRound()
	}
	link.SetProps(base)

	// The monitor's link store must localize the congestion: 110-120
	// blamed (both crossing paths ran hot), the clean path's links
	// exonerated by min-across-paths attribution.
	var blamed bool
	for _, l := range monitor.LinkStats() {
		is110120 := (l.A == topology.Core110 && l.B == topology.Core120) || (l.A == topology.Core120 && l.B == topology.Core110)
		if is110120 {
			if l.Sharers < 2 || l.Dev <= 10*time.Millisecond {
				t.Fatalf("shared hot link 110-120 under-attributed: %+v", l)
			}
			blamed = true
		}
		crossesClean := pathUsesLink(clean, l.A, l.B)
		if crossesClean && l.Congestion+2*l.Dev > 10*time.Millisecond {
			t.Fatalf("link %s<->%s on the clean path blamed: %+v", l.A, l.B, l)
		}
	}
	if !blamed {
		t.Fatalf("no congestion attributed to 110-120: %+v", monitor.LinkStats())
	}

	// LatencySelector still ranks a degraded path first (the oscillation's
	// EWMA mean stays below the clean path's RTT) — it does NOT route
	// around the hotspot...
	if top := ls.Rank(topology.AS211, paths)[0].Path; !pathUsesLink(top, topology.Core110, topology.Core120) {
		t.Fatalf("latency ranking routed around the hot link (top %s) — scenario lost its discriminating power", top)
	}
	// ...while HotspotSelector does, demoting BOTH degraded paths.
	hsRank := hs.Rank(topology.AS211, paths)
	if top := hsRank[0].Path; top.Fingerprint() != clean.Fingerprint() {
		t.Fatalf("hotspot ranking top = %s, want the clean path %s", top, clean)
	}

	// Adaptive racing on the same telemetry: the leader (clean path) is
	// fresh and ~20ms ahead of the next stable estimate, so one probe
	// round after stabilizing, the dial drops to width 1 and wins on the
	// clean path.
	dHot.Invalidate()
	conn2, sel2, err := dHot.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("post-telemetry dial: %v", err)
	}
	echoRoundTrip(t, conn2)
	if dec := dHot.LastRace(); !dec.Adaptive || dec.Width != 1 || dec.Reason != "clear-leader" {
		t.Fatalf("post-telemetry race decision = %+v, want width 1 clear-leader", dec)
	}
	if sel2.Path.Fingerprint() != clean.Fingerprint() {
		t.Fatalf("hotspot dial won on %s, want the clean path %s", sel2.Path, clean)
	}

	// The latency dialer keeps using a degraded path — only the hotspot
	// selector routed around the shared congestion.
	dLat.Invalidate()
	_, selLat, err := dLat.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("latency dial: %v", err)
	}
	if !pathUsesLink(selLat.Path, topology.Core110, topology.Core120) {
		t.Fatalf("latency dialer unexpectedly avoided the hot link: %s", selLat.Path)
	}
}
