package experiments

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestPassiveTelemetrySuppressesProbesE2E is the deterministic netsim
// scenario of the passive telemetry path: under a tight global ProbeBudget,
// a destination with continuous live traffic keeps all of its telemetry
// fresh from the traffic itself — squic ack RTTs streaming through the
// pooled connections' observers into Monitor.Observe — and its scheduled
// active probes are suppressed to (near-)zero, while an idle destination
// retains its full probe schedule. This is the ROADMAP's budget-aware
// target prioritization obtained structurally: no LRU heuristic decides
// where probes go; destinations that can pay for their own telemetry simply
// stop drawing on the budget.
//
// The same passively-fed telemetry then drives adaptive racing: a dial to
// the busy destination sees a fresh, clearly-ahead leader and races at
// width 1 — zero extra handshakes, zero probes spent.
func TestPassiveTelemetrySuppressesProbesE2E(t *testing.T) {
	w, err := NewWorld(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	busyHost := w.PANHost(topology.AS211, "10.0.0.91")
	idleHost := w.PANHost(topology.AS221, "10.0.0.92")
	busyLis := echoListener(t, busyHost, 7410, "busy.e2e", w.Pool)
	idleLis := echoListener(t, idleHost, 7411, "idle.e2e", w.Pool)
	t.Cleanup(func() { busyLis.Close(); idleLis.Close() })

	client := w.PANHost(topology.AS111, "10.0.8.50")
	busyRemote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.91")}, Port: 7410}
	idleRemote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS221, Host: netip.MustParseAddr("10.0.0.92")}, Port: 7411}

	busyPaths := client.Paths(topology.AS211)
	idlePaths := client.Paths(topology.AS221)
	if len(busyPaths) < 2 || len(idlePaths) < 1 {
		t.Fatalf("scenario needs path diversity: %d busy, %d idle paths", len(busyPaths), len(idlePaths))
	}

	// Count every active probe per destination AS, wrapping the host's real
	// handshake probe so the on-the-wire cost stays genuine.
	var mu sync.Mutex
	probesByIA := make(map[addr.IA]int)
	realProbe := client.HandshakeProbe()
	countingProbe := func(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
		mu.Lock()
		probesByIA[remote.IA]++
		mu.Unlock()
		return realProbe(remote, serverName, path, timeout)
	}
	probeCount := func(ia addr.IA) int {
		mu.Lock()
		defer mu.Unlock()
		return probesByIA[ia]
	}

	const (
		baseInterval = 2 * time.Second
		maxInterval  = 8 * time.Second
	)
	monitor := pan.NewMonitor(w.Clock, client.Paths, pan.MonitorOptions{
		BaseInterval: baseInterval,
		MaxInterval:  maxInterval,
		Timeout:      time.Second,
		ProbeBudget:  1.5, // tight: every probe spent matters
		Probe:        countingProbe,
	})

	// The busy destination's traffic covers ALL of its paths (the shape a
	// proxy's racing/rotation history produces): one passive-enabled dialer
	// pinned per path, each pooling one long-lived connection.
	type pinnedConn struct {
		path *segment.Path
		d    *pan.Dialer
	}
	var busyConns []pinnedConn
	busyEcho := func(pc pinnedConn) {
		conn, _, err := pc.d.Dial(context.Background(), busyRemote, "")
		if err != nil {
			t.Fatalf("busy dial over %s: %v", pc.path, err)
		}
		echoRoundTrip(t, conn)
	}
	for _, p := range busyPaths {
		pin := pan.NewPinnedSelector(nil)
		pin.Pin(topology.AS211, p.Fingerprint())
		d := client.NewDialer(pan.DialOptions{
			Selector:   pin,
			ServerName: "busy.e2e",
			Timeout:    2 * time.Second,
			Monitor:    monitor,
			Passive:    true,
		})
		t.Cleanup(d.Close)
		pc := pinnedConn{path: p, d: d}
		busyConns = append(busyConns, pc)
		conn, sel, err := d.Dial(context.Background(), busyRemote, "")
		if err != nil {
			t.Fatalf("pinned dial: %v", err)
		}
		if sel.Path.Fingerprint() != p.Fingerprint() {
			t.Fatalf("pinned dial won on %s, want %s", sel.Path, p)
		}
		_ = conn
	}
	// The idle destination is tracked (it matters to someone) but carries no
	// traffic: its telemetry can only come from the probe budget.
	monitor.Track(idleRemote, "idle.e2e")
	monitor.Start()
	t.Cleanup(monitor.Stop)

	// 60 virtual seconds of steady traffic on every busy path: one echo
	// round trip per second per connection, each streaming its ack RTTs
	// into the monitor.
	for i := 0; i < 60; i++ {
		for _, pc := range busyConns {
			busyEcho(pc)
		}
		w.Clock.Sleep(time.Second)
	}

	busyProbes, idleProbes := probeCount(topology.AS211), probeCount(topology.AS221)
	if idleProbes < 10 {
		t.Fatalf("idle destination probed only %d times in 60s — schedule not retained", idleProbes)
	}
	if busyProbes*10 >= idleProbes {
		t.Fatalf("busy destination probed %d times vs idle %d — passive suppression failed (< 10%% required)", busyProbes, idleProbes)
	}

	// Despite (near-)zero probes, the busy destination's telemetry is fresh
	// on every path, fed passively, and never older than MaxInterval.
	for _, p := range busyPaths {
		tel, ok := monitor.Telemetry(p.Fingerprint())
		if !ok {
			t.Fatalf("no telemetry for busy path %s", p)
		}
		if !tel.Fresh || tel.Age > maxInterval {
			t.Fatalf("busy path %s telemetry stale: %+v", p, tel)
		}
		if tel.PassiveSamples == 0 || tel.PassiveSamples < tel.Samples-1 {
			t.Fatalf("busy path %s not passively fed: %d/%d passive", p, tel.PassiveSamples, tel.Samples)
		}
		if tel.RTT <= 0 || tel.Down {
			t.Fatalf("busy path %s telemetry unhealthy: %+v", p, tel)
		}
	}
	split, ok := monitor.TargetSamples(busyRemote, "busy.e2e")
	if !ok || split.Passive < 100 || split.Probes > split.Passive/10 {
		t.Fatalf("busy sample split = %+v, %v; want overwhelmingly passive", split, ok)
	}

	// Adaptive racing on the passively-warmed telemetry: the leader is
	// fresh and clearly ahead, so the dial goes out at width 1 — and spends
	// zero probes doing it.
	before := probeCount(topology.AS211)
	dAdaptive := client.NewDialer(pan.DialOptions{
		Selector:     pan.NewLatencySelector(),
		ServerName:   "busy.e2e",
		Timeout:      2 * time.Second,
		RaceWidth:    3,
		AdaptiveRace: true,
		Monitor:      monitor,
		Passive:      true,
	})
	t.Cleanup(dAdaptive.Close)
	conn, _, err := dAdaptive.Dial(context.Background(), busyRemote, "")
	if err != nil {
		t.Fatalf("adaptive dial: %v", err)
	}
	echoRoundTrip(t, conn)
	if dec := dAdaptive.LastRace(); !dec.Adaptive || dec.Width != 1 || dec.Reason != "clear-leader" {
		t.Fatalf("adaptive race decision = %+v, want width 1 clear-leader on passive telemetry", dec)
	}
	if after := probeCount(topology.AS211); after != before {
		t.Fatalf("adaptive dial spent %d probes on the busy destination", after-before)
	}
}
