//go:build race

package experiments

// raceEnabled reports whether the race detector is active. Virtual-time
// measurements depend on compute being fast relative to the advancer's
// quiescence window; the race detector slows compute ~10x and distorts the
// timing shapes, so timing-assertion tests skip under it.
const raceEnabled = true
