package experiments

import (
	"context"
	"io"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/squic"
	"tango/internal/topology"
)

// pathUsesLink reports whether p traverses the direct link between a and b.
func pathUsesLink(p *segment.Path, a, b addr.IA) bool {
	for i := 1; i < len(p.Hops); i++ {
		x, y := p.Hops[i-1].IA, p.Hops[i].IA
		if (x == a && y == b) || (x == b && y == a) {
			return true
		}
	}
	return false
}

// fastestPath returns the lowest-metadata-latency path satisfying keep.
func fastestPath(paths []*segment.Path, keep func(*segment.Path) bool) *segment.Path {
	var best *segment.Path
	for _, p := range paths {
		if keep != nil && !keep(p) {
			continue
		}
		if best == nil || p.Meta.Latency < best.Meta.Latency {
			best = p
		}
	}
	return best
}

// echoListener serves one echoing squic server on the host.
func echoListener(t *testing.T, host *pan.Host, port uint16, name string, pool *squic.CertPool) *squic.Listener {
	t.Helper()
	id, err := squic.NewIdentity(name)
	if err != nil {
		t.Fatal(err)
	}
	pool.AddIdentity(id)
	lis, err := host.Listen(port, id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					s, err := conn.AcceptStream()
					if err != nil {
						return
					}
					go func() {
						io.Copy(s, s)
						s.Close()
					}()
				}
			}()
		}
	}()
	return lis
}

// echoRoundTrip verifies the connection carries traffic end to end.
func echoRoundTrip(t *testing.T, conn *squic.Conn) {
	t.Helper()
	s, err := conn.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("raced")
	if _, err := s.Write(msg); err != nil {
		t.Fatal(err)
	}
	s.CloseWrite()
	got, err := io.ReadAll(s)
	if err != nil || string(got) != string(msg) {
		t.Fatalf("echo = %q, %v", got, err)
	}
	s.Close()
}

// healthOf scans a selector's exported telemetry for one fingerprint.
func healthOf(ls *pan.LatencySelector, fp string) (pan.PathHealth, bool) {
	for _, h := range ls.PathHealth() {
		if h.Fingerprint == fp {
			return h, true
		}
	}
	return pan.PathHealth{}, false
}

// TestProxyProbingSurfacesHealthStats drives the full browser → extension
// → proxy pipeline with racing and probing enabled via ClientConfig and
// asserts the liveness telemetry comes out the stats API — the paper §4.2
// "path-health sharing" surface the UI renders.
func TestProxyProbingSurfacesHealthStats(t *testing.T) {
	w, err := NewWorld(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	w.Legacy.SetDefaultRoute(netsimRoute(0))
	site := webserverSite(t)
	if err := w.scionServer(topology.AS211, "10.0.0.2", site, 0, "abroad.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := serveIP(w, "198.51.100.99:80", site); err != nil {
		t.Fatal(err)
	}
	addAZone(w, "abroad.example", "198.51.100.99")

	c, err := w.NewClient(ClientConfig{
		IA: topology.AS111, IP: "10.0.0.1", LegacyName: "client",
		RaceWidth:     2,
		ProbeInterval: 2 * time.Second,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Proxy.Close)
	c.Extension.SetSelector(pan.NewLatencySelector())

	pl, err := c.Browser.LoadPage(context.Background(), "http://abroad.example/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Indicator.String() != "all-scion" {
		t.Fatalf("indicator = %v", pl.Indicator)
	}
	// The first SCION dial tracked the origin; one probe interval later
	// every path to it has a live RTT in the stats snapshot.
	w.Clock.Sleep(3 * time.Second)
	snap := c.Proxy.Stats().Snapshot()
	paths := w.PANHost(topology.AS111, "10.0.9.9").Paths(topology.AS211)
	if len(snap.Health) < len(paths) {
		t.Fatalf("stats health has %d entries, want ≥ %d (all paths probed): %+v",
			len(snap.Health), len(paths), snap.Health)
	}
	for _, h := range snap.Health {
		if h.Down {
			t.Fatalf("healthy world reports a down path: %+v", h)
		}
		if h.RTT <= 0 {
			t.Fatalf("probed path without live RTT: %+v", h)
		}
	}
	// The extension sees the same feed (what the UI renders).
	if got := c.Extension.PathHealth(); len(got) != len(snap.Health) {
		t.Fatalf("extension health = %d entries, stats = %d", len(got), len(snap.Health))
	}
}

// TestRacingAndProbingE2E is the deterministic netsim scenario of the
// racing/probing stack: multiple inter-ISD paths with asymmetric latency
// (and a lossy laggard), all on the virtual clock.
//
//  1. A raced dial (width 3, staggered) wins on the fastest live path.
//  2. Loser cleanup: once the canceled racers' abandoned handshakes are
//     reaped, the server tracks exactly the one pooled connection.
//  3. Killing the winning path mid-run is detected by the background
//     monitor within one probe interval (+ probe timeout), and the next
//     dial fails over to the fastest path still alive.
//  4. Nothing leaks: goroutines return to baseline after teardown.
func TestRacingAndProbingE2E(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	w, err := NewWorld(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Asymmetric conditions: the slow geodesic core link is lossy too, so
	// the path set offers fast-clean, mid-clean, and slow-lossy choices.
	slow := w.DW.Link(topology.Core110, topology.Core210)
	if slow == nil {
		t.Fatal("default topology must have a 110-210 core link")
	}
	props := slow.Props()
	props.LossRate = 0.15
	slow.SetProps(props)

	server := w.PANHost(topology.AS211, "10.0.0.77")
	lis := echoListener(t, server, 7300, "race.e2e", w.Pool)
	client := w.PANHost(topology.AS111, "10.0.8.31")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.77")}, Port: 7300}

	paths := client.Paths(topology.AS211)
	if len(paths) < 3 {
		t.Fatalf("scenario needs ≥3 paths, topology offers %d", len(paths))
	}
	fastest := fastestPath(paths, nil)
	if !pathUsesLink(fastest, topology.Core120, topology.Core210) {
		t.Fatalf("expected the fastest path to cross 120-210: %s", fastest)
	}

	ls := pan.NewLatencySelector()
	d := client.NewDialer(pan.DialOptions{
		Selector:    ls,
		ServerName:  "race.e2e",
		Timeout:     2 * time.Second,
		RaceWidth:   3,
		RaceStagger: 20 * time.Millisecond,
	})

	// 1. The raced winner is the fastest live path.
	conn, sel, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("raced dial: %v", err)
	}
	if sel.Path.Fingerprint() != fastest.Fingerprint() {
		t.Fatalf("raced winner %s (%v), want fastest %s (%v)",
			sel.Path, sel.Path.Meta.Latency, fastest, fastest.Meta.Latency)
	}
	echoRoundTrip(t, conn)
	// The winner's handshake latency fed the selector as a live sample.
	if h, ok := healthOf(ls, fastest.Fingerprint()); !ok || h.RTT <= 0 {
		t.Fatalf("winner's live RTT sample missing: %+v", ls.PathHealth())
	}

	// The background telemetry monitor keeps every path's RTT fresh between
	// dials. MaxInterval is pinned to the base so churn adaptation cannot
	// stretch a stable path's schedule beyond the detection budget below.
	monitor := client.NewMonitor(pan.MonitorOptions{
		BaseInterval: 4 * time.Second,
		MaxInterval:  4 * time.Second,
		Timeout:      time.Second,
	})
	monitor.Subscribe(ls.Report)
	monitor.Track(remote, "race.e2e")
	monitor.Start()
	w.Clock.Sleep(5 * time.Second)
	for _, p := range paths {
		if pathUsesLink(p, topology.Core110, topology.Core210) {
			continue // the lossy laggard's probe may legitimately time out
		}
		if h, ok := healthOf(ls, p.Fingerprint()); !ok || h.Down || h.RTT <= 0 {
			t.Fatalf("path %s has no live RTT after a probe round: %+v", p, ls.PathHealth())
		}
	}

	// 2. Loser cleanup: canceled racers' abandoned server-side handshakes
	// are reaped by the confirm timeout; only the pooled winner remains.
	w.Clock.Sleep(7 * time.Second) // past the server's 10s confirm timeout
	//lint:allow-wallclock wall-clock deadline bounds a real-time polling loop
	deadline := time.Now().Add(10 * time.Second)
	//lint:allow-wallclock wall-clock deadline bounds a real-time polling loop
	for lis.ConnCount() > 1 && time.Now().Before(deadline) {
		w.Clock.Sleep(500 * time.Millisecond)
	}
	if n := lis.ConnCount(); n != 1 {
		t.Fatalf("server tracks %d conns, want only the pooled winner", n)
	}

	// 3. Kill the winning path's distinguishing link mid-run: the monitor
	// must mark it down within one (jittered: ≤1.15×) probe interval plus
	// the probe timeout, and the next dial must fail over to the fastest
	// live path.
	dead := w.DW.Link(topology.Core120, topology.Core210)
	dprops := dead.Props()
	dprops.LossRate = 1
	dead.SetProps(dprops)
	killedAt := w.Clock.Now()
	const detectionBudget = 4*time.Second*115/100 + time.Second + 500*time.Millisecond
	for {
		if h, ok := healthOf(ls, fastest.Fingerprint()); ok && h.Down {
			break
		}
		if w.Clock.Since(killedAt) > detectionBudget {
			t.Fatalf("path kill not detected within interval+timeout: %+v", ls.PathHealth())
		}
		w.Clock.Sleep(250 * time.Millisecond)
	}
	if took := w.Clock.Since(killedAt); took > detectionBudget {
		t.Fatalf("kill detection took %v, budget %v", took, detectionBudget)
	}

	liveFastest := fastestPath(paths, func(p *segment.Path) bool {
		return !pathUsesLink(p, topology.Core120, topology.Core210)
	})
	if liveFastest == nil {
		t.Fatal("no live path left — topology assumption broken")
	}
	d.Invalidate() // drop the pooled conn stranded on the dead path
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("failover dial: %v", err)
	}
	if sel2.Path.Fingerprint() == fastest.Fingerprint() {
		t.Fatal("failover dial picked the dead path")
	}
	if sel2.Path.Fingerprint() != liveFastest.Fingerprint() {
		t.Fatalf("failover winner %s (%v), want fastest live %s (%v)",
			sel2.Path, sel2.Path.Meta.Latency, liveFastest, liveFastest.Meta.Latency)
	}
	echoRoundTrip(t, conn2)

	// 4. Teardown leaves nothing behind: let any in-flight probe resolve
	// while the clock still advances, then close everything.
	monitor.Stop()
	w.Clock.Sleep(2 * time.Second)
	d.Close()
	if conn2.Err() == nil {
		t.Fatal("Dialer.Close must close pooled connections")
	}
	lis.Close()
	w.Close()

	//lint:allow-wallclock wall-clock deadline bounds a real-time polling loop
	deadline = time.Now().Add(10 * time.Second)
	//lint:allow-wallclock wall-clock deadline bounds a real-time polling loop
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after\n%s",
			goroutinesBefore, g, buf[:runtime.Stack(buf, true)])
	}
}
