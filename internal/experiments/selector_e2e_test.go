package experiments

import (
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/proxy"
	"tango/internal/sciondetect"
	"tango/internal/topology"
)

// headerRecorder is a minimal ResponseWriter capturing annotation headers.
type headerRecorder struct {
	header http.Header
	status int
	body   strings.Builder
}

func newHeaderRecorder() *headerRecorder {
	return &headerRecorder{header: make(http.Header), status: 200}
}

func (r *headerRecorder) Header() http.Header         { return r.header }
func (r *headerRecorder) WriteHeader(s int)           { r.status = s }
func (r *headerRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// proxyGet drives one absolute-form request straight through the proxy
// handler, the way the browser's proxied transport would.
func proxyGet(t *testing.T, p *proxy.Proxy, url string) *headerRecorder {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := newHeaderRecorder()
	p.ServeHTTP(rec, req)
	return rec
}

// TestProxyAnnotationsAcrossEpochBump asserts the paper's UI-indicator
// plumbing end to end: X-Skip-Via/X-Skip-Compliant headers before and after
// a selector swap. Installing a geofence bumps the dialer's epoch, so the
// pooled SCION connection re-dials and the same origin flips from compliant
// to flagged without any hand-cleared per-authority state.
func TestProxyAnnotationsAcrossEpochBump(t *testing.T) {
	_, c := geofenceWorld(t)
	const url = "http://abroad.example/index.html"

	epoch0 := c.Proxy.Dialer().Epoch()
	rec := proxyGet(t, c.Proxy, url)
	if rec.status != http.StatusOK {
		t.Fatalf("status %d", rec.status)
	}
	if got := rec.header.Get(proxy.HeaderVia); got != string(proxy.ViaSCION) {
		t.Fatalf("%s = %q, want scion", proxy.HeaderVia, got)
	}
	if got := rec.header.Get(proxy.HeaderCompliant); got != "true" {
		t.Fatalf("%s = %q, want true", proxy.HeaderCompliant, got)
	}
	if rec.header.Get(proxy.HeaderPath) == "" {
		t.Fatalf("%s missing", proxy.HeaderPath)
	}

	// The user blocks the destination's ISD: the epoch bumps, the pooled
	// connection re-dials, and the same request is now flagged.
	c.Extension.SetGeofence(policy.NewBlockGeofence(2))
	if e := c.Proxy.Dialer().Epoch(); e <= epoch0 {
		t.Fatalf("geofence install must bump the dialer epoch (%d -> %d)", epoch0, e)
	}
	rec = proxyGet(t, c.Proxy, url)
	if rec.status != http.StatusOK {
		t.Fatalf("status %d after geofence", rec.status)
	}
	if got := rec.header.Get(proxy.HeaderVia); got != string(proxy.ViaSCION) {
		t.Fatalf("%s = %q after geofence, want scion (opportunistic)", proxy.HeaderVia, got)
	}
	if got := rec.header.Get(proxy.HeaderCompliant); got != "false" {
		t.Fatalf("%s = %q after geofence, want false", proxy.HeaderCompliant, got)
	}

	// Lifting the geofence restores compliance on yet another epoch.
	c.Extension.SetGeofence(nil)
	rec = proxyGet(t, c.Proxy, url)
	if got := rec.header.Get(proxy.HeaderCompliant); got != "true" {
		t.Fatalf("%s = %q after lifting the geofence, want true", proxy.HeaderCompliant, got)
	}

	snap := c.Proxy.Stats().Snapshot()
	if snap.ByVia[proxy.ViaSCION] != 3 {
		t.Fatalf("expected 3 SCION requests, stats %+v", snap.ByVia)
	}
}

// TestProxyRecordsFallback asserts the measurable SCION→IP fallback: a host
// that advertises SCION reachability but runs no SCION server makes the
// proxy's SCION attempt fail, and the legacy retry is recorded as
// ViaFallback (not plain ViaIP), so the paper's fallback rate is readable
// from the stats.
func TestProxyRecordsFallback(t *testing.T) {
	w, err := NewWorld(23, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	w.Legacy.SetDefaultRoute(netsimRoute(time.Millisecond))

	// Legacy origin works; the TXT record claims a SCION endpoint where
	// nothing listens.
	site := newStandardIPSite()
	if _, err := serveIP(w, "192.0.2.66:80", site); err != nil {
		t.Fatal(err)
	}
	addAZone(w, "flaky.example", "192.0.2.66")
	ghost := addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.66")}
	w.Zone.AddTXT("flaky.example", time.Hour, sciondetect.FormatTXT(ghost))

	c, err := w.NewClient(ClientConfig{IA: topology.AS111, IP: "10.0.0.1", LegacyName: "client"})
	if err != nil {
		t.Fatal(err)
	}
	// Bound the doomed SCION handshakes in virtual time.
	c.Proxy.SetSelector(pan.NewLatencySelector())

	rec := proxyGet(t, c.Proxy, "http://flaky.example/index.html")
	if rec.status != http.StatusOK {
		t.Fatalf("fallback request failed: status %d", rec.status)
	}
	if got := rec.header.Get(proxy.HeaderVia); got != string(proxy.ViaFallback) {
		t.Fatalf("%s = %q, want fallback", proxy.HeaderVia, got)
	}

	// A small POST body must survive the fallback too ("the browser falls
	// back to loading the resources over IPv4/6", paper §4) — the proxy
	// buffers it so the doomed SCION attempt cannot consume it.
	req, err := http.NewRequest(http.MethodPost, "http://flaky.example/index.html",
		strings.NewReader("q=fallback"))
	if err != nil {
		t.Fatal(err)
	}
	postRec := newHeaderRecorder()
	c.Proxy.ServeHTTP(postRec, req)
	if postRec.status != http.StatusOK {
		t.Fatalf("POST fallback failed: status %d", postRec.status)
	}
	if got := postRec.header.Get(proxy.HeaderVia); got != string(proxy.ViaFallback) {
		t.Fatalf("POST %s = %q, want fallback", proxy.HeaderVia, got)
	}

	snap := c.Proxy.Stats().Snapshot()
	if snap.ByVia[proxy.ViaFallback] != 2 || snap.ByVia[proxy.ViaError] != 0 {
		t.Fatalf("fallbacks not recorded: %+v", snap.ByVia)
	}
}
