package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// stripeBody builds the deterministic large download body (matching the
// webserver's byte-range semantics exactly: byte i is i % 251).
func stripeBody(n int) []byte {
	body := make([]byte, n)
	for i := range body {
		body[i] = byte(i % 251)
	}
	return body
}

// stripeWorld assembles the striping scenario: every inter-ISD core link
// throttled to bwBits (so each single path is capped, while link-disjoint
// paths aggregate), a SCION origin in AS211 serving /big, and a client in
// AS111. The intra-ISD edges keep their 1 Gbit capacity — in particular the
// shared last link 210-211, which both disjoint paths traverse. A non-nil
// wrap decorates the origin handler — the hook the path-kill test uses to
// trigger its fault deterministically from inside the virtual event flow.
func stripeWorld(t *testing.T, seed, bwBits int64, size int, wrap func(http.Handler) http.Handler) (*World, *Client) {
	t.Helper()
	w, err := NewWorld(seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	for _, pair := range [][2]addr.IA{
		{topology.Core110, topology.Core210},
		{topology.Core120, topology.Core210},
		{topology.Core120, topology.Core220},
	} {
		l := w.DW.Link(pair[0], pair[1])
		p := l.Props()
		p.Bandwidth = bwBits
		l.SetProps(p)
	}
	w.Legacy.SetDefaultRoute(netsim.RouteProps{Latency: 2 * time.Millisecond})

	site := webserver.NewSite()
	site.Add("/big", "application/octet-stream", stripeBody(size))
	var handler http.Handler = site
	if wrap != nil {
		handler = wrap(handler)
	}
	if err := w.scionServer(topology.AS211, "10.0.0.2", handler, time.Hour, "stripe.example"); err != nil {
		t.Fatal(err)
	}
	c, err := w.NewClient(ClientConfig{IA: topology.AS111, IP: "10.0.0.1", LegacyName: "client", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return w, c
}

// fetchBig pulls /big through the client's proxy and returns the body.
func fetchBig(t *testing.T, c *Client) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	c.Proxy.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://stripe.example/big", nil))
	res := rec.Result()
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.StatusCode)
	}
	if via := res.Header.Get("X-Skip-Via"); via != "scion" {
		t.Fatalf("via = %q, want scion", via)
	}
	return body
}

// TestStripedTransferSpeedup is the striping acceptance experiment: with
// every single path capped at 20 Mbit, fetching one large resource striped
// over two link-disjoint paths must beat the best single path by >= 1.5x in
// virtual time.
func TestStripedTransferSpeedup(t *testing.T) {
	const size = 6 << 20
	w, c := stripeWorld(t, 42, 20_000_000, size, nil)
	want := stripeBody(size)

	start := w.Clock.Now()
	got := fetchBig(t, c)
	single := w.Clock.Now().Sub(start)
	if !bytes.Equal(got, want) {
		t.Fatal("single-path transfer corrupted the body")
	}

	c.Proxy.SetStripe(&pan.StripeOptions{Width: 2, SegmentSize: 128 << 10, MinStripeBytes: 128 << 10})
	c.Proxy.Dialer().Invalidate() // cold start for a fair comparison
	start = w.Clock.Now()
	got = fetchBig(t, c)
	striped := w.Clock.Now().Sub(start)
	if !bytes.Equal(got, want) {
		t.Fatal("striped transfer corrupted the body")
	}

	speedup := float64(single) / float64(striped)
	t.Logf("single-path %v, striped %v, speedup %.2fx", single, striped, speedup)
	if speedup < 1.5 {
		t.Errorf("striped speedup %.2fx (single %v, striped %v), want >= 1.5x", speedup, single, striped)
	}

	// The striped request must be visible in the stats feedback, with its
	// bytes split across at least two carrying paths and summing to the
	// resource size.
	snap := c.Proxy.Stats().Snapshot()
	if snap.Striped != 1 {
		t.Errorf("snapshot striped count = %d, want 1", snap.Striped)
	}
	recs := c.Proxy.Stats().Records()
	last := recs[len(recs)-1]
	if !last.Striped {
		t.Fatal("last record not marked striped")
	}
	var sum int64
	carried := 0
	for _, b := range last.PathBytes {
		sum += b
		if b > 0 {
			carried++
		}
	}
	if sum != int64(size) {
		t.Errorf("per-path byte split sums to %d, want %d", sum, size)
	}
	if carried < 2 {
		t.Errorf("striped bytes travelled over %d path(s), want >= 2 (split %v)", carried, last.PathBytes)
	}
}

// TestStripedTransferSurvivesPathKill black-holes one of the two striped
// paths mid-transfer: the dead pipeline's outstanding segments must be
// reassigned to the survivor and the response must still arrive complete and
// intact. The kill triggers from inside the origin handler — on the 12th
// request (1 probe + 11 of 47 segments) — so it lands mid-transfer at a
// deterministic point of the virtual event flow, immune to the wall-clock /
// virtual-clock skew a polling trigger would race against.
func TestStripedTransferSurvivesPathKill(t *testing.T) {
	const size = 6 << 20
	var w *World
	var c *Client
	var reqs atomic.Int32
	activeAtKill := make(chan int, 1)
	kill := func() {
		active := 0
		for _, pipes := range c.Proxy.StripeStatus() {
			for _, ps := range pipes {
				if ps.Bytes >= 128<<10 {
					active++
				}
			}
		}
		activeAtKill <- active
		// The leader path runs 111-121-120-210-211; its disjoint partner
		// crosses 110-210, so killing 110-210 collapses exactly one pipeline
		// while the probe's pooled connection survives on the leader.
		link := w.DW.Link(topology.Core110, topology.Core210)
		p := link.Props()
		p.LossRate = 1
		link.SetProps(p)
	}
	w, c = stripeWorld(t, 43, 10_000_000, size, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if reqs.Add(1) == 12 {
				kill()
			}
			next.ServeHTTP(rw, r)
		})
	})
	c.Proxy.SetStripe(&pan.StripeOptions{Width: 2, SegmentSize: 128 << 10, MinStripeBytes: 128 << 10})
	want := stripeBody(size)

	rec := httptest.NewRecorder()
	c.Proxy.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://stripe.example/big", nil))
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()

	select {
	case active := <-activeAtKill:
		if active < 2 {
			t.Errorf("only %d pipeline(s) had moved >= 128KB at kill time, want 2", active)
		}
	default:
		t.Fatalf("transfer finished after %d requests without reaching the kill trigger", reqs.Load())
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status after path kill = %d, want 200", res.StatusCode)
	}
	if len(body) != size {
		t.Fatalf("body after path kill = %d bytes, want %d", len(body), size)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("path kill corrupted the body")
	}
	deadSeen := false
	for _, pipes := range c.Proxy.StripeStatus() {
		for _, ps := range pipes {
			if ps.Dead {
				deadSeen = true
			}
		}
	}
	if !deadSeen {
		t.Error("no pipeline marked dead after the path kill")
	}
	if testing.Verbose() {
		for dst, pipes := range c.Proxy.StripeStatus() {
			for _, ps := range pipes {
				fmt.Printf("%s: %s dead=%v bytes=%d losses=%d\n", dst, ps.Fingerprint, ps.Dead, ps.Bytes, ps.Losses)
			}
		}
		for i, l := range w.DW.Links() {
			for end := 0; end < 2; end++ {
				s := l.Stats(end)
				if s.Lost > 0 || s.TooBig > 0 {
					fmt.Printf("link %d end %d: lost=%d toobig=%d delivered=%d\n", i, end, s.Lost, s.TooBig, s.Delivered)
				}
			}
		}
	}
}
