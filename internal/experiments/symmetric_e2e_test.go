package experiments

import (
	"context"
	"io"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/shttp"
	"tango/internal/squic"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// TestSnapshotWarmStartE2E is the deterministic netsim scenario of LinkStats
// snapshot gossip: a warm vantage point exports its telemetry, a cold host
// in the same AS imports it, and the cold host's FIRST adaptive dial goes
// out at width 1 — a clear, fresh leader known entirely from the peer's
// observations — with zero local probes issued. A control host without the
// import must race the full width, and its racer set must be the
// hotspot-aware disjoint pick rather than plain top-k.
func TestSnapshotWarmStartE2E(t *testing.T) {
	w, err := NewWorld(13, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	server := w.PANHost(topology.AS211, "10.0.0.95")
	lis := echoListener(t, server, 7450, "warm.e2e", w.Pool)
	t.Cleanup(func() { lis.Close() })
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.95")}, Port: 7450}

	// The warm vantage point probes the destination for a few rounds.
	warmHost := w.PANHost(topology.AS111, "10.0.8.60")
	warmMon := warmHost.NewMonitor(pan.MonitorOptions{BaseInterval: 2 * time.Second, Timeout: time.Second})
	warmMon.Track(remote, "warm.e2e")
	for i := 0; i < 3; i++ {
		warmMon.RunRound()
	}
	snap := warmMon.ExportLinks()
	if len(snap.Paths) < 3 {
		t.Fatalf("warm export carries %d paths, want all 3", len(snap.Paths))
	}

	// The cold host has never probed (its probe function proves it) and
	// boots from the peer's snapshot alone.
	coldHost := w.PANHost(topology.AS111, "10.0.8.61")
	coldProbes := 0
	coldMon := pan.NewMonitor(w.Clock, coldHost.Paths, pan.MonitorOptions{
		BaseInterval: 2 * time.Second,
		Timeout:      time.Second,
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			coldProbes++
			return 0, context.DeadlineExceeded
		},
	})
	if applied, err := coldMon.ImportLinks(snap, 1); err != nil || applied == 0 {
		t.Fatalf("import: applied=%d err=%v", applied, err)
	}

	dCold := coldHost.NewDialer(pan.DialOptions{
		Selector:     pan.NewLatencySelector(),
		ServerName:   "warm.e2e",
		Timeout:      2 * time.Second,
		RaceWidth:    3,
		AdaptiveRace: true,
		Monitor:      coldMon,
	})
	t.Cleanup(dCold.Close)
	conn, sel, err := dCold.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("cold first dial: %v", err)
	}
	echoRoundTrip(t, conn)
	if dec := dCold.LastRace(); !dec.Adaptive || dec.Width != 1 || dec.Reason != "clear-leader" {
		t.Fatalf("cold first dial raced width %d (%s), want width 1 clear-leader from the imported snapshot", dec.Width, dec.Reason)
	}
	if coldProbes != 0 {
		t.Fatalf("cold host issued %d local probes, want 0 — the snapshot should carry the warm start", coldProbes)
	}
	// The width-1 dial lands on the peer's measured leader.
	if best := fastestPath(coldHost.Paths(topology.AS211), nil); sel.Path.Fingerprint() != best.Fingerprint() {
		t.Fatalf("cold dial won on %s, want the telemetry leader %s", sel.Path, best)
	}

	// Control: an equally cold host WITHOUT the import cannot justify a
	// narrow race — and when it races wide, its racer set is the greedy
	// max-disjoint pick: the link-disjoint geodesic leapfrogs the
	// second-fastest path that shares the leader's core link.
	ctrlHost := w.PANHost(topology.AS111, "10.0.8.62")
	ctrlMon := pan.NewMonitor(w.Clock, ctrlHost.Paths, pan.MonitorOptions{
		BaseInterval: 2 * time.Second,
		Timeout:      time.Second,
		Probe:        ctrlHost.HandshakeProbe(),
	})
	dCtrl := ctrlHost.NewDialer(pan.DialOptions{
		Selector:     pan.NewLatencySelector(),
		ServerName:   "warm.e2e",
		Timeout:      2 * time.Second,
		RaceWidth:    3,
		AdaptiveRace: true,
		Monitor:      ctrlMon,
	})
	t.Cleanup(dCtrl.Close)
	conn2, _, err := dCtrl.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("control dial: %v", err)
	}
	echoRoundTrip(t, conn2)
	dec := dCtrl.LastRace()
	if !dec.Adaptive || dec.Width != 3 || dec.Reason != "no-leader-telemetry" {
		t.Fatalf("control dial = %+v, want full width 3 without telemetry", dec)
	}
	var clean *segment.Path
	for _, p := range ctrlHost.Paths(topology.AS211) {
		if !pathUsesLink(p, topology.Core110, topology.Core120) {
			clean = p
		}
	}
	if clean == nil {
		t.Fatal("scenario needs a path avoiding 110-120")
	}
	if len(dec.Racers) != 3 || dec.Racers[1] != clean.Fingerprint() {
		t.Fatalf("racer order %v — want the link-disjoint path %s raced second, not the rank-2 path sharing the leader's links", dec.Racers, clean.Fingerprint())
	}
}

// TestReverseSteeringE2E is the deterministic netsim scenario of server-side
// reverse-path steering: a client pinned to a path whose reverse crosses a
// congested link talks to two otherwise identical ServeSCION servers. The
// monitor-steered server learns the congestion from its own serving
// traffic's ack RTTs and moves its replies onto the clean reverse path; the
// mirror-mode server keeps reflecting the client's choice and stays slow —
// the measurable difference is the congested link's reverse-leg cost.
func TestReverseSteeringE2E(t *testing.T) {
	w, err := NewWorld(17, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	site := webserver.NewSite()
	site.Add("/r", "text/plain", []byte("steered-reply-payload-0123456789"))

	steerHost := w.PANHost(topology.AS211, "10.0.0.31")
	mirrorHost := w.PANHost(topology.AS211, "10.0.0.32")
	idSteer, err := squic.NewIdentity("steer.e2e")
	if err != nil {
		t.Fatal(err)
	}
	idMirror, err := squic.NewIdentity("mirror.e2e")
	if err != nil {
		t.Fatal(err)
	}
	w.Pool.AddIdentity(idSteer)
	w.Pool.AddIdentity(idMirror)
	srvSteer, err := webserver.ServeSCION(steerHost, 80, idSteer, site, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvSteer.Close() })
	srvMirror, err := webserver.ServeSCIONOptions(mirrorHost, 80, idMirror, site, webserver.SCIONOptions{Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvMirror.Close() })
	if srvMirror.Telemetry() != nil {
		t.Fatal("mirror-mode server must not build a telemetry plane")
	}
	if srvSteer.Telemetry() == nil {
		t.Fatal("steered server must expose its telemetry plane")
	}

	// The client pins the fastest path over the 110-120 core link — the
	// link about to congest — and never re-selects (a pinned or
	// mirror-happy client is exactly who server steering rescues).
	clientHost := w.PANHost(topology.AS111, "10.0.8.70")
	paths := clientHost.Paths(topology.AS211)
	hot := fastestPath(paths, func(p *segment.Path) bool {
		return pathUsesLink(p, topology.Core110, topology.Core120)
	})
	if hot == nil {
		t.Fatal("no path over 110-120")
	}
	mkClient := func(hostIP string, name string) *http.Client {
		remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr(hostIP)}, Port: 80}
		sel := pan.NewPinnedSelector(nil)
		sel.Pin(topology.AS211, hot.Fingerprint())
		d := clientHost.NewDialer(pan.DialOptions{Selector: sel, ServerName: name, Timeout: 2 * time.Second})
		t.Cleanup(d.Close)
		tr := shttp.NewTransport(func(ctx context.Context, authority string) (*squic.Conn, error) {
			conn, _, err := d.Dial(ctx, remote, name)
			return conn, err
		})
		t.Cleanup(tr.CloseIdleConnections)
		return &http.Client{Transport: tr}
	}
	steerClient := mkClient("10.0.0.31", "steer.e2e")
	mirrorClient := mkClient("10.0.0.32", "mirror.e2e")

	// Congest the shared core link for the whole run.
	link := w.DW.Link(topology.Core110, topology.Core120)
	if link == nil {
		t.Fatal("default topology must have the 110-120 core link")
	}
	base := link.Props()
	congested := base
	congested.Latency = base.Latency + 150*time.Millisecond
	link.SetProps(congested)
	t.Cleanup(func() { link.SetProps(base) })

	get := func(c *http.Client, url string) time.Duration {
		t.Helper()
		start := w.Clock.Now()
		resp, err := c.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		if _, err := io.ReadAll(resp.Body); err != nil {
			t.Fatalf("reading %s: %v", url, err)
		}
		resp.Body.Close()
		return w.Clock.Since(start)
	}

	const rounds = 10
	var steered, mirrored []time.Duration
	for i := 0; i < rounds; i++ {
		steered = append(steered, get(steerClient, "http://steer.e2e/r"))
		mirrored = append(mirrored, get(mirrorClient, "http://mirror.e2e/r"))
		w.Clock.Sleep(time.Second)
	}

	// The steered server's decision surface: replies for AS111 are steered
	// onto a reverse path avoiding the congested link.
	dec, ok := srvSteer.Telemetry().LastDecision(topology.AS111)
	if !ok || dec.Mirrored {
		t.Fatalf("steered server's last decision = %+v (ok=%v), want a steered reverse path", dec, ok)
	}
	reverse := make(map[string]*segment.Path)
	for _, p := range steerHost.Paths(topology.AS111) {
		reverse[p.Fingerprint()] = p
	}
	picked := reverse[dec.Fingerprint]
	if picked == nil {
		t.Fatalf("steered fingerprint %s is not a known reverse path", dec.Fingerprint)
	}
	if pathUsesLink(picked, topology.Core110, topology.Core120) {
		t.Fatalf("steered reply path %s still crosses the congested link", picked)
	}
	if steers, _ := srvSteer.Telemetry().Counts(); steers == 0 {
		t.Fatal("steering never engaged")
	}

	// The measurable proof: once steering engages, requests to the steered
	// server dodge the congested reverse leg; mirror mode provably keeps
	// paying it. (First requests are comparable — both mirror until
	// telemetry exists.)
	lateSteered, lateMirrored := steered[rounds-1], mirrored[rounds-1]
	for i := rounds - 3; i < rounds; i++ {
		if steered[i] < lateSteered {
			lateSteered = steered[i]
		}
		if mirrored[i] < lateMirrored {
			lateMirrored = mirrored[i]
		}
	}
	if lateSteered+60*time.Millisecond > lateMirrored {
		t.Fatalf("steered %v vs mirrored %v — steering bought < 60ms (series: %v vs %v)",
			lateSteered, lateMirrored, steered, mirrored)
	}
}

// TestSteerStaleRevertsToMirrorE2E: steering must never wedge a connection.
// The server's telemetry is pre-warmed (as gossip or earlier traffic would)
// to prefer a reverse path that is in fact black-holed; its replies vanish,
// so no ack sample ever arrives to trigger a re-evaluation — only the
// steering watchdog can save the connection, by reverting to mirroring and
// banning the dead pick. The request must still complete, and follow-ups
// must run at mirror speed.
func TestSteerStaleRevertsToMirrorE2E(t *testing.T) {
	w, err := NewWorld(19, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	site := webserver.NewSite()
	site.Add("/r", "text/plain", []byte("watchdog-payload"))
	serverHost := w.PANHost(topology.AS211, "10.0.0.33")
	id, err := squic.NewIdentity("stale.e2e")
	if err != nil {
		t.Fatal(err)
	}
	w.Pool.AddIdentity(id)
	srv, err := webserver.ServeSCION(serverHost, 80, id, site, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Reverse paths from the server's vantage: the doomed pick crosses
	// 110-120; the client will pin the geodesic that avoids it.
	var doomed, geodesic *segment.Path
	for _, p := range serverHost.Paths(topology.AS111) {
		if pathUsesLink(p, topology.Core110, topology.Core120) {
			if doomed == nil || p.Meta.Latency < doomed.Meta.Latency {
				doomed = p
			}
		} else {
			geodesic = p
		}
	}
	if doomed == nil || geodesic == nil {
		t.Fatal("scenario needs a 110-120 reverse path and a geodesic avoiding it")
	}

	// Pre-warm the server monitor so the doomed path looks clearly best and
	// every other 110-120 path looks bad — the accept-time steer will pick
	// the doomed one. (TrackPassive: exactly how the plane itself tracks.)
	mon := srv.Telemetry().Monitor()
	warmTarget := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS111, Host: netip.MustParseAddr("10.0.8.99")}, Port: 9}
	mon.TrackPassive(warmTarget, "")
	for i := 0; i < 3; i++ {
		for _, p := range serverHost.Paths(topology.AS111) {
			switch {
			case p.Fingerprint() == doomed.Fingerprint():
				mon.Observe(p, 100*time.Millisecond)
			case p.Fingerprint() == geodesic.Fingerprint():
				// No samples: the geodesic stays metadata-ranked.
			default:
				mon.Observe(p, 400*time.Millisecond)
			}
		}
	}

	// Black-hole the doomed path's exclusive link BEFORE the client
	// connects. The client's pinned geodesic never crosses it.
	link := w.DW.Link(topology.Core110, topology.Core120)
	base := link.Props()
	dead := base
	dead.LossRate = 1
	link.SetProps(dead)
	t.Cleanup(func() { link.SetProps(base) })

	clientHost := w.PANHost(topology.AS111, "10.0.8.71")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.33")}, Port: 80}
	pin := pan.NewPinnedSelector(nil)
	// The client's forward geodesic reverses to the server's geodesic; pin
	// by structure rather than assuming fingerprint symmetry here.
	var clientGeo *segment.Path
	for _, p := range clientHost.Paths(topology.AS211) {
		if !pathUsesLink(p, topology.Core110, topology.Core120) {
			clientGeo = p
		}
	}
	if clientGeo == nil {
		t.Fatal("client has no geodesic")
	}
	pin.Pin(topology.AS211, clientGeo.Fingerprint())
	d := clientHost.NewDialer(pan.DialOptions{Selector: pin, ServerName: "stale.e2e", Timeout: 5 * time.Second})
	t.Cleanup(d.Close)
	tr := shttp.NewTransport(func(ctx context.Context, authority string) (*squic.Conn, error) {
		conn, _, err := d.Dial(ctx, remote, "stale.e2e")
		return conn, err
	})
	t.Cleanup(tr.CloseIdleConnections)
	client := &http.Client{Transport: tr}

	get := func() time.Duration {
		t.Helper()
		start := w.Clock.Now()
		resp, err := client.Get("http://stale.e2e/r")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		if _, err := io.ReadAll(resp.Body); err != nil {
			t.Fatalf("read: %v", err)
		}
		resp.Body.Close()
		return w.Clock.Since(start)
	}

	// First request survives the black-holed steer: the watchdog reverts to
	// mirroring and retransmission delivers the reply.
	first := get()
	if first > 20*time.Second {
		t.Fatalf("first request took %v — watchdog did not rescue the connection", first)
	}
	steers, mirrors := srv.Telemetry().Counts()
	if steers == 0 || mirrors == 0 {
		t.Fatalf("expected a steer then a mirror revert, got %d steers / %d mirrors", steers, mirrors)
	}

	// Follow-ups run at mirror speed, and the dead pick stays banned: the
	// decision surface reports mirroring (steer-stale, or mirror-best once
	// the mirrored path's own samples rank it first).
	w.Clock.Sleep(time.Second)
	second := get()
	if second > 2*time.Second {
		t.Fatalf("post-revert request took %v — connection still degraded", second)
	}
	dec, ok := srv.Telemetry().LastDecision(topology.AS111)
	if !ok || !dec.Mirrored {
		t.Fatalf("post-revert decision = %+v (ok=%v), want mirrored", dec, ok)
	}
	if dec.Reason != "steer-stale" && dec.Reason != "mirror-best" && dec.Reason != "no-fresh-telemetry" {
		t.Fatalf("unexpected revert reason %q", dec.Reason)
	}
}
