// Package experiments assembles complete end-to-end scenarios — the local
// setup of Figure 2 and the distributed setup of Figure 4 — and runs the
// paper's evaluation: the page-load-time experiments of Figures 3, 5, and 6
// and the layer-decision matrix of Table 1.
package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/browser"
	"tango/internal/dataplane"
	"tango/internal/dnssim"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/pathdb"
	"tango/internal/proxy"
	"tango/internal/sciondetect"
	"tango/internal/snet"
	"tango/internal/squic"
	"tango/internal/topology"
	"tango/internal/webserver"
)

// Epoch is the virtual start time of every experiment world.
var Epoch = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)

// World is a fully assembled simulation: SCION control and data plane,
// legacy IP network, DNS, and a shared virtual clock.
type World struct {
	Topo     *topology.Topology
	Infra    *beacon.Infra
	Registry *pathdb.Registry
	Combiner *pathdb.Combiner
	Clock    *netsim.SimClock
	DW       *dataplane.World
	Legacy   *netsim.StreamNetwork
	Zone     *dnssim.Zone
	Pool     *squic.CertPool

	dispatchers map[addr.IA]*snet.Dispatcher
	dnsServer   *dnssim.Server
	stop        func()
	seed        int64
}

// NewWorld builds a world over the default topology (optionally customized)
// with beaconing complete and the virtual clock auto-advancing.
func NewWorld(seed int64, customize func(*topology.Topology)) (*World, error) {
	topo := topology.Default()
	if customize != nil {
		customize(topo)
	}
	infra, err := beacon.NewInfra(topo, Epoch, Epoch.Add(30*24*time.Hour))
	if err != nil {
		return nil, err
	}
	reg := pathdb.NewRegistry(infra.Store)
	if err := beacon.NewService(topo, infra, reg, 24*time.Hour).Run(Epoch); err != nil {
		return nil, err
	}
	clock := netsim.NewSimClock(Epoch.Add(time.Hour))
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, seed)
	if err != nil {
		return nil, err
	}
	w := &World{
		Topo:        topo,
		Infra:       infra,
		Registry:    reg,
		Combiner:    pathdb.NewCombiner(reg),
		Clock:       clock,
		DW:          dw,
		Legacy:      netsim.NewStreamNetwork(clock),
		Zone:        dnssim.NewZone(),
		Pool:        squic.NewCertPool(),
		dispatchers: make(map[addr.IA]*snet.Dispatcher),
		seed:        seed,
	}
	for _, as := range topo.ASes() {
		w.dispatchers[as.IA] = snet.NewDispatcher(dw.Router(as.IA), clock)
	}
	w.dnsServer, err = dnssim.Serve(w.Legacy, "dns:53", w.Zone)
	if err != nil {
		return nil, err
	}
	w.stop = clock.AutoAdvance(200 * time.Microsecond)
	return w, nil
}

// Close stops the clock advancer and the DNS server.
func (w *World) Close() {
	w.dnsServer.Close()
	w.stop()
}

// Stack returns a host stack inside an AS.
func (w *World) Stack(ia addr.IA, ip string) *snet.Stack {
	return w.dispatchers[ia].Host(netip.MustParseAddr(ip), w.DW.Router(ia))
}

// PANHost returns a PAN host (stack + combiner + trust pool).
func (w *World) PANHost(ia addr.IA, ip string) *pan.Host {
	return pan.NewHost(w.Stack(ia, ip), w.Combiner, w.Pool)
}

// Resolver returns a DNS stub resolver for a legacy host.
func (w *World) Resolver(fromHost string) *dnssim.Resolver {
	return dnssim.NewResolver(w.Legacy, fromHost, "dns:53", w.Clock)
}

// SerialDelay models a serialized per-request processing stage (the
// extension's single-threaded event loop, the prototype proxy's request
// handling): callers queue on a mutex and hold it for a jittered interval of
// virtual time.
type SerialDelay struct {
	mu     sync.Mutex
	clock  netsim.Clock
	base   time.Duration
	jitter time.Duration
	rng    *rand.Rand
	rngMu  sync.Mutex
}

// NewSerialDelay creates a stage with base cost ± uniform jitter.
func NewSerialDelay(clock netsim.Clock, base, jitter time.Duration, seed int64) *SerialDelay {
	return &SerialDelay{clock: clock, base: base, jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Wait blocks for one service interval, serialized with other callers.
func (d *SerialDelay) Wait() {
	if d == nil || d.base == 0 {
		return
	}
	d.rngMu.Lock()
	cost := d.base
	if d.jitter > 0 {
		cost += time.Duration(d.rng.Int63n(int64(2*d.jitter))) - d.jitter
	}
	d.rngMu.Unlock()
	d.mu.Lock()
	d.clock.Sleep(cost)
	d.mu.Unlock()
}

// ClientConfig parameterizes a browser+extension+proxy bundle.
type ClientConfig struct {
	// IA and IP locate the client machine in the SCION world.
	IA addr.IA
	IP string
	// LegacyName is the machine's identity on the legacy network.
	LegacyName string
	// InterceptCost and ProxyCost model the prototype's per-request
	// overheads (zero = ideal integration).
	InterceptCost, InterceptJitter time.Duration
	ProxyCost, ProxyJitter         time.Duration
	// RaceWidth, when > 1, makes the client's proxy race that many
	// top-ranked SCION paths per connection; RaceStagger offsets the
	// racers' starts (0 = pan's default stagger when racing).
	RaceWidth   int
	RaceStagger time.Duration
	// ProbeInterval, when positive, runs the proxy's background path
	// telemetry monitor on the world's virtual clock. Ignored when Monitor
	// is set.
	ProbeInterval time.Duration
	// ProbeBudget caps the owned monitor's probes/sec (0 = pan default).
	ProbeBudget float64
	// Monitor attaches the client's proxy to a shared telemetry plane —
	// several clients' dialers feeding from (and into) one monitor, the
	// skip-proxy deployment shape.
	Monitor *pan.Monitor
	// AdaptiveRace lets telemetry pick the race width per dial (RaceWidth
	// caps it).
	AdaptiveRace bool
	// Passive streams pooled connections' ack RTTs and per-request
	// first-byte times into the monitor as zero-cost telemetry samples,
	// suppressing scheduled probes for origins with live traffic.
	Passive bool
	// Stripe, when non-nil, makes the client's proxy fetch large responses
	// as concurrent byte-range segments over link-disjoint paths.
	Stripe *pan.StripeOptions
	// Seed drives the overhead jitter so repeated runs differ.
	Seed int64
}

// Client is the browser-side bundle of Figure 1: browser, extension, strict
// store, and SKIP proxy, wired over a loopback leg of the legacy network.
type Client struct {
	Browser   *browser.Browser
	Extension *browser.Extension
	Proxy     *proxy.Proxy
	Store     *sciondetect.StrictStore
	Detector  *sciondetect.Detector
}

// clientPorts allocates distinct loopback ports per client.
var clientPorts struct {
	sync.Mutex
	next int
}

// NewClient assembles a client in the world.
func (w *World) NewClient(cfg ClientConfig) (*Client, error) {
	resolver := w.Resolver(cfg.LegacyName)
	detector := sciondetect.NewDetector(resolver, w.Clock)
	host := w.PANHost(cfg.IA, cfg.IP)
	store := sciondetect.NewStrictStore(w.Clock)

	proxyDelay := NewSerialDelay(w.Clock, cfg.ProxyCost, cfg.ProxyJitter, w.seed+cfg.Seed*7919+101)
	p := proxy.New(proxy.Config{
		Host:          host,
		Legacy:        w.Legacy,
		LegacyHost:    cfg.LegacyName,
		Resolver:      resolver,
		Detector:      detector,
		Processing:    proxyDelay.Wait,
		RaceWidth:     cfg.RaceWidth,
		RaceStagger:   cfg.RaceStagger,
		ProbeInterval: cfg.ProbeInterval,
		ProbeBudget:   cfg.ProbeBudget,
		Monitor:       cfg.Monitor,
		AdaptiveRace:  cfg.AdaptiveRace,
		Passive:       cfg.Passive,
		Stripe:        cfg.Stripe,
	})

	// Loopback: zero-latency same-machine route, unique port per client.
	w.Legacy.SetRoute(cfg.LegacyName, cfg.LegacyName, netsim.RouteProps{})
	clientPorts.Lock()
	clientPorts.next++
	proxyAddr := fmt.Sprintf("%s:%d", cfg.LegacyName, 3128+clientPorts.next)
	clientPorts.Unlock()
	if _, err := webserver.ServeIP(w.Legacy, proxyAddr, p); err != nil {
		return nil, err
	}

	ext := browser.NewExtension(p, store)
	interceptDelay := NewSerialDelay(w.Clock, cfg.InterceptCost, cfg.InterceptJitter, w.seed+cfg.Seed*7919+202)
	br := browser.New(browser.Config{
		Clock:      w.Clock,
		Legacy:     w.Legacy,
		LegacyHost: cfg.LegacyName,
		Resolver:   resolver,
		Extension:  ext,
		ProxyAddr:  proxyAddr,
		Intercept:  interceptDelay.Wait,
	})
	return &Client{Browser: br, Extension: ext, Proxy: p, Store: store, Detector: detector}, nil
}
