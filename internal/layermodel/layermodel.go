// Package layermodel reproduces the paper's Table 1: for each path-aware-
// networking property, which layer (OS, application, user) can meaningfully
// make the path decision.
//
// The paper's argument (§2) is mechanized as a capability model: each layer
// possesses inputs — network metrics at full or abstracted fidelity, and
// decision context (application semantics, elicitable user intent, durable
// user values). A property requires certain inputs; the layer's mark follows
// from coverage:
//
//   - Full    (paper's filled mark): all required inputs at full fidelity.
//   - Partial (paper's half mark "no particular benefits are expected"): the
//     decision is possible but degraded or adds nothing over a lower layer.
//   - None    (paper's empty mark): a required input is fundamentally
//     unavailable, so the layer "would not be the appropriate place to
//     perform the path selection".
package layermodel

import (
	"fmt"
	"strings"
)

// Layer is a decision locus.
type Layer string

// The three candidate layers of Table 1.
const (
	OS   Layer = "OS"
	App  Layer = "App"
	User Layer = "User"
)

// Layers in table column order.
var Layers = []Layer{OS, App, User}

// Input is something a layer may possess to make path decisions.
type Input string

// Network metrics and decision context inputs.
const (
	// Fine-grained transport metrics, abstracted away from upper layers:
	// "Metrics such as loss and MTU get abstracted by lower layers, since
	// they are directly impacted by their interactions with the transport
	// layer and OS" (paper §2).
	MetricLoss Input = "loss-rate"
	MetricMTU  Input = "path-mtu"
	// Performance metrics visible (at least coarsely) everywhere.
	MetricLatency   Input = "latency"
	MetricBandwidth Input = "bandwidth"
	MetricJitter    Input = "jitter"
	MetricQoS       Input = "qos-class"
	// Path decorations from beaconing.
	MetricASList Input = "as-list"
	MetricCarbon Input = "carbon-footprint"
	MetricPrice  Input = "price"
	// Decision context. Intent is elicitable preference ("geofence these
	// sites away from ISD X") — an application with a UI, like a browser,
	// can capture it natively. Values are durable judgments (which ASes are
	// ethical, what CO2 premium is acceptable) that only the user holds
	// natively: "an application can hardly figure out automatically for
	// which destinations CO2 optimization is desired" (paper §2).
	ContextAppSemantics Input = "app-semantics"
	ContextUserIntent   Input = "user-intent"
	ContextUserValues   Input = "user-values"
)

// Fidelity grades how well a layer possesses an input.
type Fidelity int

const (
	// Absent: the layer cannot obtain the input at all.
	Absent Fidelity = iota
	// Approximate: obtainable only coarsely or by inference.
	Approximate
	// Native: available at full fidelity.
	Native
)

// Capability describes one layer's inputs.
type Capability map[Input]Fidelity

// Capabilities encodes §2's argument about each layer.
var Capabilities = map[Layer]Capability{
	// The OS networking stack sees every transport metric natively but has
	// no visibility into application purpose or user values: "the OS
	// generally lacks context to determine that traffic is privacy
	// sensitive, or how much performance the user is willing to trade".
	OS: {
		MetricLoss: Native, MetricMTU: Native, MetricLatency: Native,
		MetricBandwidth: Native, MetricJitter: Native, MetricQoS: Native,
		MetricASList: Native, MetricCarbon: Native, MetricPrice: Native,
		ContextAppSemantics: Absent, ContextUserIntent: Absent, ContextUserValues: Absent,
	},
	// The application sees path metadata through the network API, knows its
	// own semantics, and — when it has a user interface, as the browser
	// does — can elicit user intent directly; durable user values it can
	// only approximate.
	App: {
		MetricLoss: Native, MetricMTU: Native, MetricLatency: Native,
		MetricBandwidth: Native, MetricJitter: Native, MetricQoS: Native,
		MetricASList: Native, MetricCarbon: Native, MetricPrice: Native,
		ContextAppSemantics: Native, ContextUserIntent: Native, ContextUserValues: Approximate,
	},
	// The user holds intent and values natively but sees network metrics
	// only as abstracted summaries — and loss/MTU not at all.
	User: {
		MetricLoss: Absent, MetricMTU: Absent, MetricLatency: Approximate,
		MetricBandwidth: Approximate, MetricJitter: Approximate, MetricQoS: Approximate,
		MetricASList: Native, MetricCarbon: Native, MetricPrice: Native,
		ContextAppSemantics: Absent, ContextUserIntent: Native, ContextUserValues: Native,
	},
}

// Property is one row of Table 1.
type Property struct {
	Name  string
	Class string
	// Requires lists the inputs a meaningful decision needs.
	Requires []Input
	// AppValueAdd reports whether application-level selection adds benefit
	// over the OS for this property (per-traffic-class differentiation).
	// Purely transparent optimizations (latency, MTU) are best left below,
	// so the App column shows "no particular benefit".
	AppValueAdd bool
}

// Properties lists Table 1's rows in order.
var Properties = []Property{
	{"Low latency", "Performance properties", []Input{MetricLatency}, false},
	{"Loss rate", "Performance properties", []Input{MetricLoss}, true},
	{"Path MTU information", "Performance properties", []Input{MetricMTU}, false},
	{"Bandwidth", "Performance properties", []Input{MetricBandwidth}, true},
	{"QoS", "Quality properties", []Input{MetricQoS}, true},
	{"Jitter optimization", "Quality properties", []Input{MetricJitter}, true},
	{"Geofencing (Alibi routing)", "Privacy / Anonymity", []Input{MetricASList, ContextUserIntent}, true},
	{"Onion routing", "Privacy / Anonymity", []Input{MetricASList, ContextUserIntent}, true},
	{"Carbon footprint reduction", "ESG Routing", []Input{MetricCarbon, ContextUserIntent}, true},
	{"Ethical routing", "ESG Routing", []Input{MetricASList, ContextUserValues}, true},
	{"Allied AS routing", "Economic aspects", []Input{MetricASList, ContextUserIntent}, true},
	{"Price optimization", "Economic aspects", []Input{MetricPrice}, true},
}

// Mark is a cell of the matrix.
type Mark int

const (
	// None: the layer is not an appropriate decision point.
	None Mark = iota
	// Partial: possible but degraded, or no benefit over a lower layer.
	Partial
	// Full: the layer can meaningfully select on this property.
	Full
)

// Glyph renders the mark with table symbols.
func (m Mark) Glyph() string {
	switch m {
	case Full:
		return "●"
	case Partial:
		return "◐"
	default:
		return "·"
	}
}

// String implements fmt.Stringer.
func (m Mark) String() string {
	switch m {
	case Full:
		return "full"
	case Partial:
		return "partial"
	default:
		return "none"
	}
}

// Evaluate derives the mark for one layer and property from the capability
// model.
func Evaluate(layer Layer, prop Property) Mark {
	cap := Capabilities[layer]
	mark := Full
	for _, in := range prop.Requires {
		switch cap[in] {
		case Absent:
			if isContext(in) {
				// The layer can still enforce a preconfigured preference on
				// the metric it observes (the OS can be handed a geofence),
				// but cannot originate the decision: degraded, not absent.
				mark = markMin(mark, Partial)
			} else {
				// A missing metric is disqualifying: there is nothing to
				// decide on.
				return None
			}
		case Approximate:
			mark = markMin(mark, Partial)
		}
	}
	// Transparent optimizations add nothing above the OS.
	if layer == App && !prop.AppValueAdd {
		mark = markMin(mark, Partial)
	}
	return mark
}

func isContext(in Input) bool {
	switch in {
	case ContextAppSemantics, ContextUserIntent, ContextUserValues:
		return true
	}
	return false
}

func markMin(a, b Mark) Mark {
	if a < b {
		return a
	}
	return b
}

// Matrix computes the full Table 1.
func Matrix() map[string]map[Layer]Mark {
	out := make(map[string]map[Layer]Mark, len(Properties))
	for _, p := range Properties {
		row := make(map[Layer]Mark, len(Layers))
		for _, l := range Layers {
			row[l] = Evaluate(l, p)
		}
		out[p.Name] = row
	}
	return out
}

// Render prints the matrix in the paper's table layout.
func Render() string {
	m := Matrix()
	var b strings.Builder
	nameW := 0
	for _, p := range Properties {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-4s %-4s %-4s\n", nameW, "Property", "OS", "App", "User")
	lastClass := ""
	for _, p := range Properties {
		if p.Class != lastClass {
			fmt.Fprintf(&b, "%s\n", p.Class)
			lastClass = p.Class
		}
		row := m[p.Name]
		fmt.Fprintf(&b, "%-*s  %-4s %-4s %-4s\n", nameW, p.Name,
			row[OS].Glyph(), row[App].Glyph(), row[User].Glyph())
	}
	return b.String()
}
