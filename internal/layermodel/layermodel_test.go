package layermodel

import (
	"strings"
	"testing"
)

// paperMatrix is Table 1 as published (F=full, P=partial/"no particular
// benefit", N=not appropriate), columns OS, App, User.
var paperMatrix = map[string][3]Mark{
	"Low latency":                {Full, Partial, Partial},
	"Loss rate":                  {Full, Full, None},
	"Path MTU information":       {Full, Partial, None},
	"Bandwidth":                  {Full, Full, Partial},
	"QoS":                        {Full, Full, Partial},
	"Jitter optimization":        {Full, Full, Partial},
	"Geofencing (Alibi routing)": {Partial, Full, Full},
	"Onion routing":              {Partial, Full, Full},
	"Carbon footprint reduction": {Partial, Full, Full},
	"Ethical routing":            {Partial, Partial, Full},
	"Allied AS routing":          {Partial, Full, Full},
	"Price optimization":         {Full, Full, Full},
}

func TestMatrixMatchesPaperTable1(t *testing.T) {
	m := Matrix()
	if len(m) != len(paperMatrix) {
		t.Fatalf("matrix has %d rows, want %d", len(m), len(paperMatrix))
	}
	for name, want := range paperMatrix {
		row, ok := m[name]
		if !ok {
			t.Errorf("missing property %q", name)
			continue
		}
		for i, layer := range Layers {
			if row[layer] != want[i] {
				t.Errorf("%s / %s = %v, want %v", name, layer, row[layer], want[i])
			}
		}
	}
}

func TestLayerStrengthsAggregate(t *testing.T) {
	// The section-level claims: the OS dominates performance/quality, the
	// user dominates privacy/ESG/economics, and the application is a strong
	// generalist.
	m := Matrix()
	fullCount := map[Layer]int{}
	for _, row := range m {
		for l, mark := range row {
			if mark == Full {
				fullCount[l]++
			}
		}
	}
	if fullCount[OS] != 7 {
		t.Errorf("OS full marks = %d, want 7 (performance + quality + price)", fullCount[OS])
	}
	if fullCount[User] != 6 {
		t.Errorf("User full marks = %d, want 6 (privacy + ESG + economics)", fullCount[User])
	}
	if fullCount[App] < fullCount[OS] || fullCount[App] < fullCount[User] {
		t.Errorf("App full marks = %d; the paper positions the app layer as the broadest", fullCount[App])
	}
}

func TestUserCannotDecideAbstractedMetrics(t *testing.T) {
	// "Metrics such as loss and MTU get abstracted by lower layers."
	m := Matrix()
	if m["Loss rate"][User] != None || m["Path MTU information"][User] != None {
		t.Error("user layer should be unable to decide on loss/MTU")
	}
}

func TestOSLacksContextForPrivacy(t *testing.T) {
	// "The OS generally lacks context to determine that traffic is privacy
	// sensitive."
	m := Matrix()
	for _, p := range []string{"Geofencing (Alibi routing)", "Onion routing", "Carbon footprint reduction"} {
		if m[p][OS] == Full {
			t.Errorf("OS should not fully decide %q", p)
		}
	}
}

func TestRenderContainsAllRowsAndClasses(t *testing.T) {
	out := Render()
	for _, p := range Properties {
		if !strings.Contains(out, p.Name) {
			t.Errorf("render missing %q", p.Name)
		}
	}
	for _, class := range []string{"Performance properties", "Quality properties", "Privacy / Anonymity", "ESG Routing", "Economic aspects"} {
		if !strings.Contains(out, class) {
			t.Errorf("render missing class %q", class)
		}
	}
}

func TestEvaluateUnknownLayerIsNone(t *testing.T) {
	// Unknown layers have empty capabilities: every metric absent.
	if got := Evaluate(Layer("kernel-module"), Properties[0]); got != None {
		t.Fatalf("unknown layer mark = %v", got)
	}
}

func TestMarkStrings(t *testing.T) {
	if Full.String() != "full" || Partial.String() != "partial" || None.String() != "none" {
		t.Fatal("mark strings wrong")
	}
	if Full.Glyph() == Partial.Glyph() || Partial.Glyph() == None.Glyph() {
		t.Fatal("glyphs must be distinct")
	}
}
