package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity on struct fields: a field
// that is accessed through sync/atomic anywhere in the package — either by
// passing its address to the atomic free functions (atomic.AddUint64(&s.n))
// or by being declared with one of the sync/atomic value types
// (atomic.Uint64) — must never be read or written plainly elsewhere in the
// package. Mixed access is how torn reads sneak past the race detector on
// lightly-scheduled CI runs: RouterStats counters, the monitor's dirty
// flag, its budget counter, and its sink snapshot all rely on this rule.
//
// For atomic-typed fields "plain access" means copying the value (reading
// s.flag into a variable, assigning one field to another, passing it by
// value): the copy elides the atomic protocol. Method calls and taking the
// address remain fine. "//lint:allow-atomic <reason>" on or above the line
// suppresses a report (e.g. a constructor initializing a counter before the
// struct is published).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicField,
}

// atomicFreeFuncs are the sync/atomic functions whose first argument is the
// address of the shared word.
var atomicFreeFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapPointer": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true, "CompareAndSwapUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadPointer": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true,
	"StoreInt32": true, "StoreInt64": true, "StorePointer": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapPointer": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect fields whose address reaches a sync/atomic free
	// function anywhere in the package, remembering those argument
	// expressions so pass 2 can skip them.
	atomicByFunc := map[*types.Var]bool{} // field → accessed via atomic.XxxNN(&f)
	sanctioned := map[ast.Expr]bool{}     // the &f arguments themselves
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomicFreeFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if f := fieldOf(pass, un.X); f != nil {
				atomicByFunc[f] = true
				sanctioned[un.X] = true
			}
			return true
		})
	}

	// Pass 2: flag plain accesses. Selector expressions resolving to a
	// collected field are plain unless they are a sanctioned &f argument.
	// Fields of sync/atomic value types are flagged when copied by value.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldOf(pass, sel)
			if f == nil {
				return true
			}
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			if atomicByFunc[f] {
				if sanctioned[sel] {
					return true
				}
				// &f outside an atomic call is opaque: the pointer may
				// feed an atomic op elsewhere. Leave it to the race
				// detector rather than guess.
				if un, ok := parent.(*ast.UnaryExpr); ok && un.X == sel {
					return true
				}
				if pass.Allowed("allow-atomic", sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere in this package", f.Name())
				return true
			}
			if isAtomicValueType(f.Type()) {
				// Selecting a method (f.Load()) or taking the address is
				// the atomic protocol; anything that copies the value is
				// not.
				if p, ok := parent.(*ast.SelectorExpr); ok && p.X == sel {
					return true // f.Load, f.Store, ... — method selection
				}
				if un, ok := parent.(*ast.UnaryExpr); ok && un.X == sel {
					return true // &f
				}
				if pass.Allowed("allow-atomic", sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(), "field %s has atomic type %s but is copied by value here; atomics must be accessed through their methods", f.Name(), f.Type())
			}
			return true
		})
	}
	return nil
}

// fieldOf resolves expr to the struct-field object it selects, or nil.
func fieldOf(pass *Pass, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isAtomicValueType reports whether t is one of sync/atomic's value types
// (atomic.Bool, Int32, ..., Pointer[T], Value).
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
