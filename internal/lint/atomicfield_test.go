package lint_test

import (
	"testing"

	"tango/internal/lint"
	"tango/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "atomicfield")
}
