package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufLease checks single-release ownership of pooled buffer leases. The
// protocol is annotation-driven:
//
//	//lint:lease source — the function's []byte result is a pool lease the
//	    caller owns (netsim.GetBuf, dataplane.MarshalTemplated, ...)
//	//lint:lease sink — the function consumes its []byte argument(s),
//	    taking ownership (netsim.PutBuf, Link.SendOwned, unmarshalOwned);
//	    inside such a function the parameter itself is a tracked lease
//	//lint:lease borrow — the function reads/writes the buffer but does
//	    not retain or release it (encodeInto, currHopSpan)
//
// Within each function the analyzer tracks lease variables (and their
// slice/append aliases) through an abstract walk of the body: every path
// must hand each live lease to exactly one sink, a second sink is a
// double-release, and any use after a sink is a use-after-release — the
// pooled-buffer bug classes that corrupt unrelated packets at a distance.
//
// The walk is deliberately conservative: a lease that escapes (returned,
// stored into a structure, captured by a closure, or passed to a function
// the analyzer knows nothing about) stops being tracked, so reports are
// near-certain bugs, not maybes. Roles cross package boundaries as facts.
var BufLease = &Analyzer{
	Name: "buflease",
	Doc:  "pooled buffer leases must reach exactly one ownership sink on every path, with no use after it",
	Run:  runBufLease,
}

type leaseStatus int

const (
	leaseLive leaseStatus = iota
	leaseReleased
	leaseDeferred // a deferred sink will release at function end
	leaseEscaped
)

type leaseCell struct {
	status   leaseStatus
	acqPos   token.Pos
	what     string
	reported bool
}

type leaseState map[*types.Var]*leaseCell

type leaseChecker struct {
	pass  *Pass
	roles map[types.Object]string // in-package annotated functions
}

func runBufLease(pass *Pass) error {
	c := &leaseChecker{pass: pass, roles: map[types.Object]string{}}
	c.collectRoles()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			state := leaseState{}
			// Inside a sink, the consumed []byte parameters are leases this
			// function now owns and must release or hand on.
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && c.roles[fn] == "sink" && fd.Type.Params != nil {
				for _, param := range fd.Type.Params.List {
					for _, name := range param.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok && isByteSlice(v.Type()) {
							state[v] = &leaseCell{status: leaseLive, acqPos: name.Pos(), what: "lease parameter " + v.Name()}
						}
					}
				}
			}
			c.walkStmts(fd.Body.List, state)
			c.reportLiveAtEnd(state)
		}
	}
	return nil
}

// collectRoles gathers //lint:lease annotations on function declarations and
// interface methods and exports them as facts.
func (c *leaseChecker) collectRoles() {
	pass := c.pass
	record := func(obj types.Object, d Directive) {
		role := strings.Fields(d.Args)
		if len(role) != 1 || (role[0] != "source" && role[0] != "sink" && role[0] != "borrow") {
			pass.Reportf(d.Pos, "malformed lease directive: want \"//lint:lease source|sink|borrow\", got %q", d.Args)
			return
		}
		c.roles[obj] = role[0]
		pass.ExportFact("role "+ObjKey(obj), role[0])
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if d, ok := c.directiveAt("lease", fd.Doc, fd.Pos()); ok {
					if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
						record(fn, d)
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				if len(m.Names) == 0 {
					continue
				}
				if d, ok := pass.DirectiveForField("lease", m); ok {
					if fn, ok := pass.Info.Defs[m.Names[0]].(*types.Func); ok {
						record(fn, d)
					}
				}
			}
			return true
		})
	}
}

func (c *leaseChecker) directiveAt(verb string, doc *ast.CommentGroup, declPos token.Pos) (Directive, bool) {
	file := c.pass.FileFor(declPos)
	if file == nil {
		return Directive{}, false
	}
	lines := map[int]bool{c.pass.Fset.Position(declPos).Line: true}
	if doc != nil {
		for _, cm := range doc.List {
			lines[c.pass.Fset.Position(cm.Pos()).Line] = true
		}
	}
	for _, d := range c.pass.Directives(file) {
		if d.Verb == verb && lines[d.Line] {
			return d, true
		}
	}
	return Directive{}, false
}

// roleOf resolves a call's lease role: "" for unknown callees.
func (c *leaseChecker) roleOf(call *ast.CallExpr) (string, *types.Func) {
	fn := callee(c.pass, call)
	if fn == nil {
		return "", nil
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.roles[fn], fn
	}
	return c.pass.DepFact("role " + ObjKey(fn)), fn
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// trackedVar unwraps parens and slice expressions down to an identifier of a
// tracked lease variable.
func trackedVar(pass *Pass, state leaseState, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := pass.Info.Uses[x].(*types.Var); ok {
				if _, tracked := state[v]; tracked {
					return v
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// ---- statement walk ----

// walkStmts threads state through a statement list and reports whether the
// list definitely terminates (returns or panics), in which case its final
// state never merges into the fall-through path.
func (c *leaseChecker) walkStmts(stmts []ast.Stmt, state leaseState) (terminated bool) {
	for _, s := range stmts {
		if c.walkStmt(s, state) {
			return true
		}
	}
	return false
}

func (c *leaseChecker) walkStmt(stmt ast.Stmt, state leaseState) (terminated bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return c.walkStmts(s.List, state)
	case *ast.ExprStmt:
		c.processExpr(s.X, state)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.AssignStmt:
		c.processAssign(s, state)
	case *ast.DeferStmt:
		c.processDefer(s, state)
	case *ast.ReturnStmt:
		c.processReturn(s, state)
		return true
	case *ast.BranchStmt:
		// break/continue/goto: the state jumps elsewhere; don't let it
		// flow into the fall-through merge.
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.processExpr(s.Cond, state)
		bodyState := cloneState(state)
		bodyTerm := c.walkStmts(s.Body.List, bodyState)
		elseState := cloneState(state)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseState)
		}
		switch {
		case bodyTerm && elseTerm && s.Else != nil:
			return true
		case bodyTerm:
			replaceState(state, elseState)
		case elseTerm:
			replaceState(state, bodyState)
		default:
			replaceState(state, mergeStates(bodyState, elseState))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.processExpr(s.Cond, state)
		}
		c.walkLoopBody(s.Body, state)
	case *ast.RangeStmt:
		c.processExpr(s.X, state)
		c.walkLoopBody(s.Body, state)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkBranching(stmt, state)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, state)
	case *ast.GoStmt:
		c.processExpr(s.Call, state)
	case *ast.SendStmt:
		c.escapeUses(s.Chan, state)
		c.escapeUses(s.Value, state)
	case *ast.IncDecStmt:
		c.processExpr(s.X, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.processExpr(v, state)
					}
				}
			}
		}
	}
	return false
}

// walkLoopBody walks a loop body on a cloned state: leases acquired inside
// the body that are still live when an iteration ends leak once per
// iteration; state changes to outer leases don't flow past the loop unless
// both sides agree.
func (c *leaseChecker) walkLoopBody(body *ast.BlockStmt, state leaseState) {
	bodyState := cloneState(state)
	terminated := c.walkStmts(body.List, bodyState)
	if !terminated {
		for v, cell := range bodyState {
			if _, outer := state[v]; !outer && cell.status == leaseLive && !cell.reported {
				cell.reported = true
				c.report(cell.acqPos, "%s is still live at the end of the loop body: it leaks once per iteration", cell.what)
			}
		}
		replaceState(state, mergeStates(state, bodyState))
	}
}

func (c *leaseChecker) walkBranching(stmt ast.Stmt, state leaseState) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.processExpr(s.Tag, state)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkStmt(s.Assign, state)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var fallThroughs []leaseState
	allTerminate := len(clauses) > 0
	for _, cl := range clauses {
		cs := cloneState(state)
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				c.processExpr(e, cs)
			}
			body = cc.Body
		case *ast.CommClause:
			hasDefault = hasDefault || cc.Comm == nil
			if cc.Comm != nil {
				c.walkStmt(cc.Comm, cs)
			}
			body = cc.Body
		}
		if c.walkStmts(body, cs) {
			continue
		}
		allTerminate = false
		fallThroughs = append(fallThroughs, cs)
	}
	if !hasDefault {
		// No default: the whole statement can be skipped.
		allTerminate = false
		fallThroughs = append(fallThroughs, cloneState(state))
	}
	if allTerminate {
		return true
	}
	merged := fallThroughs[0]
	for _, fs := range fallThroughs[1:] {
		merged = mergeStates(merged, fs)
	}
	replaceState(state, merged)
	return false
}

// ---- expression processing ----

// processExpr scans an expression for sink/borrow/unknown calls over
// tracked leases and for escaping or after-release uses.
func (c *leaseChecker) processExpr(expr ast.Expr, state leaseState) {
	if expr == nil {
		return
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		c.processCall(e, state)
	case *ast.ParenExpr:
		c.processExpr(e.X, state)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			c.escapeUses(e.X, state)
		} else {
			c.processExpr(e.X, state)
		}
	case *ast.BinaryExpr:
		c.processExpr(e.X, state)
		c.processExpr(e.Y, state)
	case *ast.IndexExpr:
		// x[i]: reading or writing an element borrows; still flag
		// use-after-release.
		if v := trackedVar(c.pass, state, e.X); v != nil {
			c.useAfterReleaseCheck(v, state, e.Pos())
		} else {
			c.processExpr(e.X, state)
		}
		c.processExpr(e.Index, state)
	case *ast.SliceExpr:
		// A bare slice expression produces an alias value; who receives it
		// decides the outcome, so contexts (assign, call) handle it. Seen
		// here, the alias goes somewhere opaque.
		if v := trackedVar(c.pass, state, e.X); v != nil {
			c.useAfterReleaseCheck(v, state, e.Pos())
			c.escapeVar(v, state)
		} else {
			c.processExpr(e.X, state)
		}
	case *ast.Ident:
		if v := trackedVar(c.pass, state, e); v != nil {
			c.useAfterReleaseCheck(v, state, e.Pos())
			c.escapeVar(v, state)
		}
	case *ast.StarExpr:
		c.processExpr(e.X, state)
	case *ast.SelectorExpr:
		c.processExpr(e.X, state)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.escapeUses(el, state)
		}
	case *ast.FuncLit:
		c.escapeUses(e.Body, state)
	case *ast.TypeAssertExpr:
		c.processExpr(e.X, state)
	case *ast.KeyValueExpr:
		c.processExpr(e.Key, state)
		c.processExpr(e.Value, state)
	}
}

// processCall applies a call's lease semantics.
func (c *leaseChecker) processCall(call *ast.CallExpr, state leaseState) {
	role, _ := c.roleOf(call)
	// Builtins. append retains its arguments in the result, so outside the
	// alias-preserving assignment form (x = append(x, ...), handled by
	// aliasSource) a tracked argument escapes.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "append" {
			for _, arg := range call.Args {
				if v := trackedVar(c.pass, state, arg); v != nil {
					c.useAfterReleaseCheck(v, state, arg.Pos())
					c.escapeVar(v, state)
					continue
				}
				c.processExpr(arg, state)
			}
			return
		}
		switch id.Name {
		case "len", "cap", "copy", "print", "println", "min", "max":
			for _, arg := range call.Args {
				if v := trackedVar(c.pass, state, arg); v != nil {
					c.useAfterReleaseCheck(v, state, arg.Pos())
					continue
				}
				c.processExpr(arg, state)
			}
			return
		}
	}
	// string(buf) copies; other conversions alias.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		isString := false
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.String {
			isString = true
		}
		for _, arg := range call.Args {
			if v := trackedVar(c.pass, state, arg); v != nil {
				c.useAfterReleaseCheck(v, state, arg.Pos())
				if !isString {
					c.escapeVar(v, state)
				}
				continue
			}
			c.processExpr(arg, state)
		}
		return
	}
	switch role {
	case "sink":
		for _, arg := range call.Args {
			v := trackedVar(c.pass, state, arg)
			if v == nil {
				c.processExpr(arg, state)
				continue
			}
			if tv, ok := c.pass.Info.Types[arg]; !ok || !isByteSlice(tv.Type) {
				c.useAfterReleaseCheck(v, state, arg.Pos())
				continue
			}
			cell := state[v]
			switch cell.status {
			case leaseLive:
				cell.status = leaseReleased
			case leaseReleased, leaseDeferred:
				if !cell.reported {
					cell.reported = true
					c.report(arg.Pos(), "double release of %s: it already reached a sink", cell.what)
				}
			}
		}
	case "borrow":
		for _, arg := range call.Args {
			if v := trackedVar(c.pass, state, arg); v != nil {
				c.useAfterReleaseCheck(v, state, arg.Pos())
				continue
			}
			c.processExpr(arg, state)
		}
	default:
		// Unknown callee: a lease argument escapes the analysis (the
		// callee may retain it); everything else is scanned recursively.
		for _, arg := range call.Args {
			if v := trackedVar(c.pass, state, arg); v != nil {
				c.useAfterReleaseCheck(v, state, arg.Pos())
				c.escapeVar(v, state)
				continue
			}
			c.processExpr(arg, state)
		}
		c.processExpr(call.Fun, state)
	}
}

func (c *leaseChecker) processAssign(s *ast.AssignStmt, state leaseState) {
	// x := source(...): bind the []byte result. Tuple-result sources
	// (buf, err := Marshal...) are deliberately not tracked: on the error
	// arm the buffer is nil and there is no lease, so "return err without
	// releasing" would be a false positive.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if role, fn := c.roleOf(call); role == "source" {
				c.processCall(call, state) // scan args (and apply sink/borrow semantics of nested calls)
				if id, ok := unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					if v := identVar(c.pass, id); v != nil && isByteSlice(v.Type()) {
						if old, tracked := state[v]; tracked && old.status == leaseLive && !old.reported {
							old.reported = true
							c.report(s.Pos(), "%s is overwritten before release", old.what)
						}
						state[v] = &leaseCell{status: leaseLive, acqPos: s.Pos(), what: "lease from " + fn.Name()}
					}
				}
				return
			}
		}
	}
	// General assignments: handle alias-preserving forms, then uses.
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			c.assignOne(s, lhs, s.Rhs[i], state)
		}
		return
	}
	for _, rhs := range s.Rhs {
		c.processExpr(rhs, state)
	}
	for _, lhs := range s.Lhs {
		c.assignTarget(lhs, state)
	}
}

func (c *leaseChecker) assignOne(s *ast.AssignStmt, lhs, rhs ast.Expr, state leaseState) {
	lhsID, _ := unparen(lhs).(*ast.Ident)
	// y = x, y = x[:n], x = append(x, ...): alias-preserving forms share
	// the lease cell.
	if src := c.aliasSource(rhs, state); src != nil {
		c.useAfterReleaseCheck(src, state, rhs.Pos())
		if lhsID != nil && lhsID.Name != "_" {
			if v := identVar(c.pass, lhsID); v != nil {
				if v == src {
					return // x = x[:n] and friends: same lease
				}
				if old, tracked := state[v]; tracked && old != state[src] && old.status == leaseLive && !old.reported {
					old.reported = true
					c.report(s.Pos(), "%s is overwritten before release", old.what)
				}
				state[v] = state[src]
				return
			}
		}
		// Alias stored somewhere opaque (field, slice element, ...).
		c.escapeVar(src, state)
		c.assignTarget(lhs, state)
		return
	}
	c.processExpr(rhs, state)
	if lhsID != nil && lhsID.Name != "_" {
		if v := identVar(c.pass, lhsID); v != nil {
			if old, tracked := state[v]; tracked {
				if old.status == leaseLive && !old.reported {
					old.reported = true
					c.report(s.Pos(), "%s is overwritten before release", old.what)
				}
				delete(state, v)
			}
		}
		return
	}
	c.assignTarget(lhs, state)
}

// aliasSource reports the tracked variable rhs aliases, for the
// alias-preserving forms: x, x[:n], append(x, ...).
func (c *leaseChecker) aliasSource(rhs ast.Expr, state leaseState) *types.Var {
	rhs = unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			for _, arg := range call.Args[1:] {
				c.processExpr(arg, state)
			}
			return trackedVar(c.pass, state, call.Args[0])
		}
		return nil
	}
	return trackedVar(c.pass, state, rhs)
}

// assignTarget handles a non-identifier assignment target: writing INTO a
// tracked buffer (x[i] = b) borrows; anything else involving a tracked
// lease on the left side is opaque.
func (c *leaseChecker) assignTarget(lhs ast.Expr, state leaseState) {
	if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
		if v := trackedVar(c.pass, state, ix.X); v != nil {
			c.useAfterReleaseCheck(v, state, ix.Pos())
			c.processExpr(ix.Index, state)
			return
		}
	}
	c.processExpr(lhs, state)
}

func (c *leaseChecker) processDefer(s *ast.DeferStmt, state leaseState) {
	role, _ := c.roleOf(s.Call)
	if role == "sink" {
		for _, arg := range s.Call.Args {
			v := trackedVar(c.pass, state, arg)
			if v == nil {
				c.processExpr(arg, state)
				continue
			}
			if tv, ok := c.pass.Info.Types[arg]; !ok || !isByteSlice(tv.Type) {
				continue
			}
			cell := state[v]
			switch cell.status {
			case leaseLive:
				cell.status = leaseDeferred
			case leaseReleased, leaseDeferred:
				if !cell.reported {
					cell.reported = true
					c.report(arg.Pos(), "double release of %s: a sink is already deferred or done", cell.what)
				}
			}
		}
		return
	}
	c.processExpr(s.Call, state)
}

func (c *leaseChecker) processReturn(s *ast.ReturnStmt, state leaseState) {
	for _, res := range s.Results {
		if v := trackedVar(c.pass, state, res); v != nil {
			c.useAfterReleaseCheck(v, state, res.Pos())
			c.escapeVar(v, state) // ownership moves to the caller
			continue
		}
		c.processExpr(res, state)
	}
	for _, cell := range state {
		if cell.status == leaseLive && !cell.reported {
			cell.reported = true
			c.report(s.Pos(), "%s is not released on this return path", cell.what)
		}
	}
}

func (c *leaseChecker) reportLiveAtEnd(state leaseState) {
	for _, cell := range state {
		if cell.status == leaseLive && !cell.reported {
			cell.reported = true
			c.report(cell.acqPos, "%s is not released on the fall-through return path", cell.what)
		}
	}
}

// escapeUses escapes every tracked lease referenced anywhere under n.
func (c *leaseChecker) escapeUses(n ast.Node, state leaseState) {
	ast.Inspect(n, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
			if _, tracked := state[v]; tracked {
				c.useAfterReleaseCheck(v, state, id.Pos())
				c.escapeVar(v, state)
			}
		}
		return true
	})
}

func (c *leaseChecker) useAfterReleaseCheck(v *types.Var, state leaseState, pos token.Pos) {
	cell := state[v]
	if cell.status == leaseReleased && !cell.reported {
		cell.reported = true
		c.report(pos, "use of %s after it reached a sink", cell.what)
	}
}

// report emits a diagnostic unless an "//lint:allow-lease <reason>" directive
// on or above the line suppresses it.
func (c *leaseChecker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Allowed("allow-lease", pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *leaseChecker) escapeVar(v *types.Var, state leaseState) {
	if cell := state[v]; cell.status == leaseLive || cell.status == leaseDeferred {
		cell.status = leaseEscaped
	}
}

func identVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.Info.Uses[id].(*types.Var)
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---- state plumbing ----

func cloneState(state leaseState) leaseState {
	out := make(leaseState, len(state))
	cells := map[*leaseCell]*leaseCell{}
	for v, cell := range state {
		nc, ok := cells[cell]
		if !ok {
			cp := *cell
			nc = &cp
			cells[cell] = nc
		}
		out[v] = nc
	}
	return out
}

// mergeStates joins two fall-through states: agreement keeps the status,
// disagreement (or presence on one side only) escapes the lease — the walk
// never guesses which path ran. Alias structure from the first state is
// preserved. The reported flag survives from either side so one bug is one
// report.
func mergeStates(a, b leaseState) leaseState {
	out := make(leaseState)
	type pair struct{ ca, cb *leaseCell }
	cells := map[pair]*leaseCell{}
	for v, ca := range a {
		cb := b[v]
		key := pair{ca, cb}
		nc, ok := cells[key]
		if !ok {
			cp := *ca
			nc = &cp
			if cb == nil || cb.status != ca.status {
				nc.status = leaseEscaped
			}
			if cb != nil && cb.reported {
				nc.reported = true
			}
			cells[key] = nc
		}
		out[v] = nc
	}
	for v, cb := range b {
		if _, ok := a[v]; ok {
			continue
		}
		key := pair{nil, cb}
		nc, ok := cells[key]
		if !ok {
			cp := *cb
			nc = &cp
			nc.status = leaseEscaped
			cells[key] = nc
		}
		out[v] = nc
	}
	return out
}

func replaceState(dst, src leaseState) {
	for v := range dst {
		delete(dst, v)
	}
	for v, cell := range src {
		dst[v] = cell
	}
}
