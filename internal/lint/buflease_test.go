package lint_test

import (
	"testing"

	"tango/internal/lint"
	"tango/internal/lint/linttest"
)

func TestBufLease(t *testing.T) {
	linttest.Run(t, lint.BufLease, "buflease")
}
