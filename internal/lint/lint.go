// Package lint is the repo's static-analysis suite: a small, dependency-free
// analog of golang.org/x/tools/go/analysis (which this module deliberately
// does not vendor) plus four analyzers that mechanically enforce invariants
// the hot paths rely on and that previously lived only in prose:
//
//   - lockorder: the declared mutex acquisition order (linkMu → shard →
//     wheel in pan, striped-fetch → dialer, fetch → status in stripe) is
//     never inverted on any static call path.
//   - buflease: every netsim.GetBuf lease reaches exactly one ownership
//     sink (PutBuf, Link.SendOwned, or an annotated transfer function) on
//     every return path, and is never used after it is sunk.
//   - wallclock: all time in tango code flows through netsim.Clock; direct
//     package-time calls are confined to the RealClock implementation and
//     explicitly annotated escape hatches.
//   - atomicfield: a struct field accessed through sync/atomic anywhere in
//     a package is never read or written plainly elsewhere in it.
//
// Annotations are ordinary comments of the form "//lint:verb args". See
// docs/static-analysis.md for the grammar and cmd/skiplint for the driver,
// which runs either standalone (it loads and typechecks packages from
// source, offline) or as a `go vet -vettool` unit checker.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. The API mirrors
// go/analysis.Analyzer so the suite could be rebased onto x/tools without
// touching the analyzers themselves.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Facts carries analyzer conclusions across package boundaries, keyed by
// analyzer name and then by an analyzer-chosen key (typically ObjKey of a
// function or type). The driver merges every dependency's exported facts
// into Pass.Deps and persists Pass.Out — as a .vetx file under go vet, or
// in-process in standalone mode.
type Facts map[string]map[string]string

// Get returns the fact value for (analyzer, key), or "".
func (f Facts) Get(analyzer, key string) string {
	if f == nil {
		return ""
	}
	return f[analyzer][key]
}

// Set records a fact value for (analyzer, key).
func (f Facts) Set(analyzer, key, value string) {
	m := f[analyzer]
	if m == nil {
		m = make(map[string]string)
		f[analyzer] = m
	}
	m[key] = value
}

// Merge copies every fact in src into f.
func (f Facts) Merge(src Facts) {
	for a, m := range src {
		for k, v := range m {
			f.Set(a, k, v)
		}
	}
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Deps holds facts exported by this package's (transitive)
	// dependencies; Out receives facts this package exports to its
	// importers.
	Deps Facts
	Out  Facts

	// Report receives diagnostics. The driver fills it.
	Report func(Diagnostic)

	dirs map[*ast.File][]Directive
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ExportFact records a cross-package fact under this analyzer's name.
func (p *Pass) ExportFact(key, value string) { p.Out.Set(p.Analyzer.Name, key, value) }

// DepFact reads a dependency fact recorded under this analyzer's name.
func (p *Pass) DepFact(key string) string { return p.Deps.Get(p.Analyzer.Name, key) }

// A Directive is one "//lint:verb args" comment.
type Directive struct {
	Pos  token.Pos
	Line int    // line the comment starts on
	Verb string // e.g. "lockorder", "allow-wallclock", "lease"
	Args string // remainder, space-trimmed
}

const directivePrefix = "//lint:"

// Directives returns every lint directive in file, in source order. Results
// are memoized per pass.
func (p *Pass) Directives(file *ast.File) []Directive {
	if d, ok := p.dirs[file]; ok {
		return d
	}
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, args, _ := strings.Cut(text, " ")
			// Allow a trailing comment after the directive (used by test
			// fixtures for "// want" expectations on the same line).
			if i := strings.Index(args, "//"); i >= 0 {
				args = args[:i]
			}
			out = append(out, Directive{
				Pos:  c.Pos(),
				Line: p.Fset.Position(c.Pos()).Line,
				Verb: verb,
				Args: strings.TrimSpace(args),
			})
		}
	}
	if p.dirs == nil {
		p.dirs = make(map[*ast.File][]Directive)
	}
	p.dirs[file] = out
	return out
}

// Allowed reports whether a diagnostic at pos is suppressed by a
// "//lint:<verb> <reason>" directive on the same line or the line directly
// above. A directive with an empty reason does not suppress: escape hatches
// must say why.
func (p *Pass) Allowed(verb string, pos token.Pos) bool {
	file := p.FileFor(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.Directives(file) {
		if d.Verb == verb && d.Args != "" && (d.Line == line || d.Line == line-1) {
			return true
		}
	}
	return false
}

// FileFor returns the syntax file containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// DirectiveForField returns the directive with the given verb attached to a
// struct field: on the field's own line, in its doc comment, or in its
// trailing line comment.
func (p *Pass) DirectiveForField(verb string, field *ast.Field) (Directive, bool) {
	file := p.FileFor(field.Pos())
	if file == nil {
		return Directive{}, false
	}
	lines := map[int]bool{p.Fset.Position(field.Pos()).Line: true}
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			lines[p.Fset.Position(c.Pos()).Line] = true
		}
	}
	for _, d := range p.Directives(file) {
		if d.Verb == verb && lines[d.Line] {
			return d, true
		}
	}
	return Directive{}, false
}

// ObjKey returns a stable cross-package key for a top-level func, method, or
// struct field: "pkgpath.Name", "pkgpath.(Recv).Name" for methods, or
// "pkgpath.Struct.Field" for fields.
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				return obj.Pkg().Path() + ".(" + named.Obj().Name() + ")." + obj.Name()
			}
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// Analyzers is the full suite, in the order the driver runs them.
var Analyzers = []*Analyzer{LockOrder, BufLease, WallClock, AtomicField}

// RunAnalyzers runs the whole suite over one loaded package, returning
// sorted diagnostics and the package's exported facts.
func RunAnalyzers(pkg *Package, deps Facts) ([]Diagnostic, Facts, error) {
	var diags []Diagnostic
	out := make(Facts)
	for _, a := range Analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Deps:     deps,
			Out:      out,
			Report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, out, nil
}
