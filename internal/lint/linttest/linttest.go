// Package linttest runs lint analyzers over fixture packages and checks
// their diagnostics against "// want `regexp`" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (not vendored here).
//
// Fixture packages live in testdata/src/<name> relative to the calling
// test's directory and are loaded by the same offline source loader the
// skiplint driver uses, so fixtures may import the standard library and
// real module packages (e.g. tango/internal/netsim).
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tango/internal/lint"
)

// Run loads each fixture package from testdata/src and runs one analyzer
// over it, failing t on any mismatch between reported diagnostics and the
// fixture's "// want" comments. Packages are processed in order with facts
// flowing from earlier to later ones, so multi-package fixtures can
// exercise cross-package facts.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	deps := make(lint.Facts)
	for _, name := range pkgs {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		loader.Overrides[name] = dir
	}
	for _, name := range pkgs {
		targets, err := loader.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		for _, pkg := range targets {
			var diags []lint.Diagnostic
			out := make(lint.Facts)
			pass := &lint.Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Deps:     deps,
				Out:      out,
				Report:   func(d lint.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", a.Name, name, err)
			}
			deps.Merge(out)
			check(t, pkg.Fset, pkg.Files, diags)
		}
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat[0] == '`' {
					pat = pat[1 : len(pat)-1]
				} else if u, err := strconv.Unquote(pat); err == nil {
					pat = u
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", describe(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func describe(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pos.Filename), pos.Line, pos.Column)
}

// MustContain is a convenience for driver-level tests: it fails t unless one
// of the diagnostics' messages contains substr.
func MustContain(t *testing.T, diags []lint.Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Fatalf("no diagnostic contains %q in %d diagnostics", substr, len(diags))
}
