package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks packages from source with no network and no toolchain
// beyond GOROOT: standard-library imports resolve under GOROOT/src (and
// GOROOT/src/vendor), module-local imports under the module root, and
// explicit Overrides (linttest fixture packages) win over both. Dependencies
// are checked API-only (IgnoreFuncBodies); target packages get full bodies
// plus their _test.go files. Cgo is disabled so the pure-Go fallbacks of
// net, os/user, etc. are selected — everything type-checks offline.
type Loader struct {
	Root       string            // module root (directory containing go.mod)
	ModulePath string            // module path from go.mod, e.g. "tango"
	Overrides  map[string]string // import path → directory

	ctxt build.Context
	fset *token.FileSet
	deps map[string]*types.Package
}

// NewLoader builds a Loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod at or above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Root:       root,
		ModulePath: mod,
		Overrides:  map[string]string{},
		ctxt:       ctxt,
		fset:       token.NewFileSet(),
		deps:       map[string]*types.Package{},
	}, nil
}

// Dir resolves an import path to a source directory.
func (l *Loader) Dir(path string) (string, error) {
	if d, ok := l.Overrides[path]; ok {
		return d, nil
	}
	if path == l.ModulePath {
		return l.Root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), nil
	}
	goroot := l.ctxt.GOROOT
	for _, d := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q", path)
}

// Import implements types.Importer: API-only typechecking for dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	dir, err := l.Dir(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	files, err := l.parse(dir, bp.GoFiles, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {}, // deps: tolerate body-independent noise
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg.MarkComplete()
	l.deps[path] = pkg
	return pkg, nil
}

func (l *Loader) parse(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Load fully type-checks the package at the import path, including its
// in-package _test.go files, and — when the directory has external
// (package foo_test) test files — a second Package for those, importing the
// test-augmented base. Loaded targets are memoized as importable deps, so a
// multi-package analysis run type-checks each package once.
func (l *Loader) Load(path string) ([]*Package, error) {
	dir, err := l.Dir(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var out []*Package
	names := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
	if len(names) > 0 {
		files, err := l.parse(dir, names, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.deps[path] = pkg // importers (incl. xtest below) see the full package
		out = append(out, &Package{PkgPath: path, Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info})
	}
	if len(bp.XTestGoFiles) > 0 {
		files, err := l.parse(dir, bp.XTestGoFiles, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path+"_test", files)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{PkgPath: path + "_test", Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	return out, nil
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	info := newInfo()
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, errs[0])
	}
	return pkg, info, nil
}

// ModulePackages returns the import paths of every package under the module
// root matching the "./..."-style dir patterns, in dependency order
// (imports first), skipping testdata and hidden directories.
func (l *Loader) ModulePackages(patterns ...string) ([]string, error) {
	dirs := map[string]bool{}
	addTree := func(base string) error {
		return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || (p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_"))) {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(p)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					dirs[p] = true
					break
				}
			}
			return nil
		})
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		base := l.Root
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base = filepath.Join(l.Root, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if err := addTree(base); err != nil {
				return nil, err
			}
			continue
		}
		if pat != "" && pat != "." {
			base = filepath.Join(l.Root, filepath.FromSlash(pat))
		}
		dirs[base] = true
	}
	var paths []string
	for d := range dirs {
		rel, err := filepath.Rel(l.Root, d)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
	}
	sort.Strings(paths)
	return l.sortByImports(paths)
}

// sortByImports topologically sorts module package paths so every package
// follows its in-module imports (test-file imports included: analysis facts
// must be ready before an importer is analyzed).
func (l *Loader) sortByImports(paths []string) ([]string, error) {
	in := map[string]bool{}
	for _, p := range paths {
		in[p] = true
	}
	imports := map[string][]string{}
	// reaches reports whether from can reach to over the current edges.
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			for _, m := range imports[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	// Regular imports are hard edges (always acyclic in valid Go). Test-file
	// imports are soft: a package's _test.go may import something that
	// imports the package back, which Go resolves by compiling the package
	// twice but this single-node-per-package graph cannot — such edges are
	// simply dropped, at the cost of dep facts for that test code.
	type softEdge struct{ from, to string }
	var soft []softEdge
	for _, p := range paths {
		dir, err := l.Dir(p)
		if err != nil {
			return nil, err
		}
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		seen := map[string]bool{}
		for _, imp := range bp.Imports {
			if in[imp] && imp != p && !seen[imp] {
				seen[imp] = true
				imports[p] = append(imports[p], imp)
			}
		}
		for _, set := range [][]string{bp.TestImports, bp.XTestImports} {
			for _, imp := range set {
				if in[imp] && imp != p && !seen[imp] {
					seen[imp] = true
					soft = append(soft, softEdge{p, imp})
				}
			}
		}
	}
	for _, e := range soft {
		if !reaches(e.to, e.from) {
			imports[e.from] = append(imports[e.from], e.to)
		}
	}
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		deps := append([]string{}, imports[p]...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
