package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder checks the repo's declared mutex acquisition order. Mutex
// fields carry declarations:
//
//	//lint:lockorder <name>
//	//lint:lockorder <name> before <other>[,<other>...]
//
// binding the field to an abstract lock name and declaring ordering edges
// ("<name> must be acquired before <other> whenever both are held"). The
// analyzer rejects cyclic declarations outright, then walks every function,
// tracking the set of named locks held (Lock/RLock acquire, Unlock/RUnlock
// release, deferred unlocks held to function end) and reports any
// acquisition — direct, or transitively via a call whose summary says it
// may acquire — that inverts the declared (transitively closed) order.
//
// Summaries and declarations cross package boundaries as facts, so pan's
// striped-fetch lock can be ordered against stripe's status mutex even
// though they live in different packages. Goroutine bodies and function
// literals start with an empty held set (they run on their own stack), and
// literals' acquisitions are not charged to the enclosing function — the
// analysis never guesses when a stored closure runs.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforces declared mutex acquisition order on all static call paths",
	Run:  runLockOrder,
}

type lockGraph struct {
	pass  *Pass
	names map[string]bool            // every declared lock name (local + deps)
	binds map[*types.Var]string      // local mutex field → lock name
	bindF map[string]string          // exported binding facts: "bind pkg.Struct.Field" → name
	edges map[string]map[string]bool // a → b: a must be acquired before b
	reach map[string]map[string]bool // transitive closure memo
	sums  map[*types.Func][]string   // local function → lock names it may acquire
}

func runLockOrder(pass *Pass) error {
	g := &lockGraph{
		pass:  pass,
		names: map[string]bool{},
		binds: map[*types.Var]string{},
		bindF: map[string]string{},
		edges: map[string]map[string]bool{},
		reach: map[string]map[string]bool{},
		sums:  map[*types.Func][]string{},
	}
	// Imported declarations from dependencies.
	for k, v := range pass.Deps[pass.Analyzer.Name] {
		if name, ok := strings.CutPrefix(k, "name "); ok {
			g.names[name] = true
		}
		if a, ok := strings.CutPrefix(k, "edge "); ok {
			for _, b := range strings.Split(v, ",") {
				g.addEdge(a, b)
			}
		}
	}
	if !g.collectDecls() {
		return nil // cyclic or malformed declarations: don't pile on path reports
	}
	for name := range g.names {
		pass.ExportFact("name "+name, "1")
	}
	for k, v := range g.bindF {
		pass.ExportFact(k, v)
	}
	for a, bs := range g.edges {
		var list []string
		for b := range bs {
			list = append(list, b)
		}
		sort.Strings(list)
		pass.ExportFact("edge "+a, strings.Join(list, ","))
	}
	g.buildSummaries()
	g.checkBodies()
	return nil
}

func (g *lockGraph) addEdge(a, b string) {
	g.names[a], g.names[b] = true, true
	m := g.edges[a]
	if m == nil {
		m = map[string]bool{}
		g.edges[a] = m
	}
	m[b] = true
}

// collectDecls parses every lockorder directive on a struct field, binding
// fields to names and recording edges, then validates the graph. It returns
// false if declarations are unusable (cycle or parse error).
func (g *lockGraph) collectDecls() bool {
	pass := g.pass
	ok := true
	type decl struct {
		pos  token.Pos
		a, b string
	}
	var declared []decl
	for _, file := range pass.Files {
		// Names of top-level struct types, so bindings on their fields can
		// be exported for cross-package use (fields of local or anonymous
		// structs stay package-private).
		structName := map[*ast.StructType]string{}
		for _, d := range file.Decls {
			gd, isGen := d.(*ast.GenDecl)
			if !isGen || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, isTS := spec.(*ast.TypeSpec); isTS {
					if st, isStruct := ts.Type.(*ast.StructType); isStruct {
						structName[st] = ts.Name.Name
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, isStruct := n.(*ast.StructType)
			if !isStruct {
				return true
			}
			for _, field := range st.Fields.List {
				d, has := pass.DirectiveForField("lockorder", field)
				if !has {
					continue
				}
				fields := strings.Fields(d.Args)
				bad := len(fields) == 0 || (len(fields) > 1 && (len(fields) != 3 || fields[1] != "before"))
				if bad {
					pass.Reportf(d.Pos, "malformed lockorder directive: want \"//lint:lockorder name [before other[,other]]\", got %q", d.Args)
					ok = false
					continue
				}
				if !isMutexField(pass, field) {
					pass.Reportf(d.Pos, "lockorder directive on non-mutex field")
					ok = false
					continue
				}
				name := fields[0]
				g.names[name] = true
				for _, fn := range field.Names {
					if v, isVar := pass.Info.Defs[fn].(*types.Var); isVar {
						g.binds[v] = name
					}
					if sn := structName[st]; sn != "" {
						g.bindF["bind "+pass.Pkg.Path()+"."+sn+"."+fn.Name] = name
					}
				}
				if len(fields) == 3 {
					for _, b := range strings.Split(fields[2], ",") {
						g.addEdge(name, b)
						declared = append(declared, decl{d.Pos, name, b})
					}
				}
			}
			return true
		})
	}
	// Referencing an undeclared name is a typo until proven otherwise.
	for _, d := range declared {
		if !g.declaredSomewhere(d.b) {
			pass.Reportf(d.pos, "lockorder edge %q before %q references undeclared lock name %q", d.a, d.b, d.b)
			ok = false
		}
	}
	// Reject cycles at declaration-parse time: an order that is not a
	// partial order proves nothing.
	for _, d := range declared {
		if g.mustPrecede(d.b, d.a) {
			pass.Reportf(d.pos, "lockorder declarations form a cycle: %q before %q contradicts an existing path %s", d.a, d.b, g.pathString(d.b, d.a))
			ok = false
		}
	}
	return ok
}

// declaredSomewhere reports whether name was bound to a field locally or in
// a dependency.
func (g *lockGraph) declaredSomewhere(name string) bool {
	for _, n := range g.binds {
		if n == name {
			return true
		}
	}
	return g.pass.Deps.Get(g.pass.Analyzer.Name, "name "+name) != ""
}

// mustPrecede reports whether a is (transitively) declared before b.
func (g *lockGraph) mustPrecede(a, b string) bool {
	if a == b {
		return false
	}
	seen := g.reach[a]
	if seen == nil {
		seen = map[string]bool{}
		var dfs func(string)
		dfs = func(n string) {
			for m := range g.edges[n] {
				if !seen[m] {
					seen[m] = true
					dfs(m)
				}
			}
		}
		dfs(a)
		g.reach[a] = seen
	}
	return seen[b]
}

// pathString renders one declared path a → ... → b for cycle messages.
func (g *lockGraph) pathString(a, b string) string {
	var path []string
	var dfs func(string) bool
	seen := map[string]bool{}
	dfs = func(n string) bool {
		path = append(path, n)
		if n == b {
			return true
		}
		var next []string
		for m := range g.edges[n] {
			next = append(next, m)
		}
		sort.Strings(next)
		for _, m := range next {
			if !seen[m] {
				seen[m] = true
				if dfs(m) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	dfs(a)
	return strings.Join(path, " → ")
}

func isMutexField(pass *Pass, field *ast.Field) bool {
	tv, ok := pass.Info.Types[field.Type]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

// lockOp classifies a call as an acquire/release of a named lock.
func (g *lockGraph) lockOp(call *ast.CallExpr) (name string, acquire, isOp bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	f := fieldOf(g.pass, sel.X)
	if f == nil {
		return "", false, false
	}
	if name, bound := g.binds[f]; bound {
		return name, acquire, true
	}
	// A mutex field of another package's struct: resolve its binding fact.
	if f.Pkg() != nil && f.Pkg() != g.pass.Pkg {
		if fsel, isSel := sel.X.(*ast.SelectorExpr); isSel {
			if s, hasSel := g.pass.Info.Selections[fsel]; hasSel {
				rt := s.Recv()
				if p, isPtr := rt.(*types.Pointer); isPtr {
					rt = p.Elem()
				}
				if named, isNamed := rt.(*types.Named); isNamed {
					key := "bind " + f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
					if name := g.pass.DepFact(key); name != "" {
						return name, acquire, true
					}
				}
			}
		}
	}
	return "", false, false
}

// callee resolves a call to its static *types.Func, or nil.
func callee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// buildSummaries computes, to a fixpoint, the set of lock names each local
// function may acquire directly or through local calls; dependency
// summaries come in as facts, and the final summaries go out as facts.
func (g *lockGraph) buildSummaries() {
	pass := g.pass
	type fnInfo struct {
		fn      *types.Func
		direct  map[string]bool
		callees map[*types.Func]bool
	}
	var fns []*fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{fn: fn, direct: map[string]bool{}, callees: map[*types.Func]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // closures are not charged to the definer
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, acquire, isOp := g.lockOp(call); isOp {
					if acquire {
						info.direct[name] = true
					}
					return true
				}
				if c := callee(pass, call); c != nil {
					if c.Pkg() == pass.Pkg {
						info.callees[c] = true
					} else {
						for _, n := range strings.Split(pass.DepFact("acq "+ObjKey(c)), ",") {
							if n != "" {
								info.direct[n] = true
							}
						}
					}
				}
				return true
			})
			fns = append(fns, info)
		}
	}
	byFn := map[*types.Func]*fnInfo{}
	for _, info := range fns {
		byFn[info.fn] = info
	}
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			for c := range info.callees {
				if ci := byFn[c]; ci != nil {
					for name := range ci.direct {
						if !info.direct[name] {
							info.direct[name] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for _, info := range fns {
		var names []string
		for name := range info.direct {
			names = append(names, name)
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		g.sums[info.fn] = names
		pass.ExportFact("acq "+ObjKey(info.fn), strings.Join(names, ","))
	}
}

// acquires returns the lock names a call's static callee may acquire.
func (g *lockGraph) acquires(call *ast.CallExpr) []string {
	c := callee(g.pass, call)
	if c == nil {
		return nil
	}
	if c.Pkg() == g.pass.Pkg {
		return g.sums[c]
	}
	fact := g.pass.DepFact("acq " + ObjKey(c))
	if fact == "" {
		return nil
	}
	return strings.Split(fact, ",")
}

// checkBodies walks every function with held-set tracking and reports
// order inversions.
func (g *lockGraph) checkBodies() {
	for _, file := range g.pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				g.walkStmt(fd.Body, map[string]int{})
			}
		}
	}
}

// walkStmt threads the held-lock multiset through one statement. Branch
// bodies run on copies: lock-state changes inside a branch are local to it
// (an if that leaves a lock held on one arm only is beyond a static order
// check and is deliberately not guessed at).
func (g *lockGraph) walkStmt(stmt ast.Stmt, held map[string]int) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			g.walkStmt(st, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		g.walkExpr(s.Cond, held)
		g.walkStmt(s.Body, copyHeld(held))
		if s.Else != nil {
			g.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			g.walkExpr(s.Cond, held)
		}
		body := copyHeld(held)
		g.walkStmt(s.Body, body)
		if s.Post != nil {
			g.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		g.walkExpr(s.X, held)
		g.walkStmt(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			g.walkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			g.walkStmt(c, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		g.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			g.walkStmt(c, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			g.walkStmt(c, copyHeld(held))
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			g.walkExpr(e, held)
		}
		for _, st := range s.Body {
			g.walkStmt(st, held)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			g.walkStmt(s.Comm, held)
		}
		for _, st := range s.Body {
			g.walkStmt(st, held)
		}
	case *ast.LabeledStmt:
		g.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// A new goroutine starts with nothing held; its argument
		// expressions evaluate on this one.
		for _, arg := range s.Call.Args {
			g.walkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			g.walkStmt(lit.Body, map[string]int{})
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end — exactly
		// what the sequential walk models by never releasing it. Any other
		// deferred call is checked against the current held set.
		if _, _, isOp := g.lockOp(s.Call); isOp {
			return
		}
		g.walkExpr(s.Call, held)
	case *ast.ExprStmt:
		g.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			g.walkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.walkExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		g.walkExpr(s.Chan, held)
		g.walkExpr(s.Value, held)
	case *ast.IncDecStmt:
		g.walkExpr(s.X, held)
	}
}

// walkExpr scans an expression in evaluation order for lock operations and
// summarized calls, updating held.
func (g *lockGraph) walkExpr(expr ast.Expr, held map[string]int) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // runs later, on an unknown stack
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, acquire, isOp := g.lockOp(call); isOp {
			if acquire {
				g.checkAcquire(call.Pos(), name, held)
				held[name]++
			} else if held[name] > 0 {
				held[name]--
			}
			return true
		}
		for _, name := range g.acquires(call) {
			g.checkCallAcquire(call, name, held)
		}
		return true
	})
}

func (g *lockGraph) checkAcquire(pos token.Pos, name string, held map[string]int) {
	for h, n := range held {
		if n > 0 && g.mustPrecede(name, h) {
			g.pass.Reportf(pos, "acquires %q while holding %q: declared order is %s", name, h, g.pathString(name, h))
		}
	}
}

func (g *lockGraph) checkCallAcquire(call *ast.CallExpr, name string, held map[string]int) {
	for h, n := range held {
		if n > 0 && g.mustPrecede(name, h) {
			c := callee(g.pass, call)
			g.pass.Reportf(call.Pos(), "call to %s may acquire %q while holding %q: declared order is %s", c.Name(), name, h, g.pathString(name, h))
		}
	}
}

func copyHeld(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
