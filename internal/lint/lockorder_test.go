package lint_test

import (
	"testing"

	"tango/internal/lint"
	"tango/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "lockorder")
}

func TestLockOrderDeclarations(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "lockorderdecl")
}

func TestLockOrderCrossPackage(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "lockordera", "lockorderb")
}
