// Package atomicfield is the fixture for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type statsByFunc struct {
	hits  uint64
	plain int
}

func (s *statsByFunc) bump() {
	atomic.AddUint64(&s.hits, 1)
	s.plain++ // never touched atomically: fine
}

func (s *statsByFunc) read() uint64 {
	return atomic.LoadUint64(&s.hits)
}

func (s *statsByFunc) torn() uint64 {
	return s.hits // want `plain access to field hits`
}

func (s *statsByFunc) tornWrite() {
	s.hits = 0 // want `plain access to field hits`
}

func (s *statsByFunc) allowed() uint64 {
	//lint:allow-atomic snapshot before the struct is published
	return s.hits
}

func (s *statsByFunc) address() *uint64 {
	return &s.hits // opaque: pointer may feed an atomic op elsewhere
}

type statsTyped struct {
	flag atomic.Bool
	n    atomic.Int64
}

func (s *statsTyped) ok() {
	s.flag.Store(true)
	s.n.Add(1)
	_ = s.n.Load()
	_ = &s.flag
}

func (s *statsTyped) copies() atomic.Int64 {
	v := s.flag // want `field flag has atomic type .* copied by value`
	_ = v
	return s.n // want `field n has atomic type .* copied by value`
}
