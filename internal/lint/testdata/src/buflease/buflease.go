// Package buflease exercises the buflease analyzer with a self-contained
// lease protocol: get is the source, put the sink, fill a borrower.
package buflease

import "errors"

var errTest = errors.New("test")

var retained [][]byte

//lint:lease source
func get(n int) []byte { return make([]byte, n) }

//lint:lease source
func getChecked(n int) ([]byte, error) { return make([]byte, n), nil }

//lint:lease sink
func put(b []byte) {
	retained = append(retained, b)
}

//lint:lease borrow
func fill(b []byte) {
	if len(b) > 0 {
		b[0] = 1
	}
}

// consume is unannotated: a lease passed to it escapes the analysis.
func consume(b []byte) { _ = b }

// releasedOnAllPaths is the canonical correct shape.
func releasedOnAllPaths(fail bool) error {
	buf := get(64)
	if fail {
		put(buf)
		return errTest
	}
	put(buf)
	return nil
}

// leakOnError forgets the lease on the error arm.
func leakOnError(fail bool) error {
	buf := get(64)
	if fail {
		return errTest // want `lease from get is not released on this return path`
	}
	put(buf)
	return nil
}

// leakFallThrough never releases at all.
func leakFallThrough() {
	buf := get(8) // want `lease from get is not released on the fall-through return path`
	fill(buf)
}

// doubleRelease sinks the same lease twice.
func doubleRelease() {
	buf := get(8)
	put(buf)
	put(buf) // want `double release of lease from get`
}

// useAfterRelease touches the buffer once ownership is gone.
func useAfterRelease() byte {
	buf := get(8)
	put(buf)
	return buf[0] // want `use of lease from get after it reached a sink`
}

// borrowAfterRelease hands the dead buffer to a borrower.
func borrowAfterRelease() {
	buf := get(8)
	fill(buf)
	put(buf)
	fill(buf) // want `use of lease from get after it reached a sink`
}

// deferRelease is fine: the deferred sink covers every path.
func deferRelease(fail bool) error {
	buf := get(8)
	defer put(buf)
	fill(buf)
	if fail {
		return errTest
	}
	return nil
}

// deferDouble arms a second sink on top of the deferred one.
func deferDouble() {
	buf := get(8)
	defer put(buf)
	put(buf) // want `double release of lease from get`
}

// aliasRelease releases through a subslice alias: same lease, one sink.
func aliasRelease() {
	buf := get(16)
	head := buf[:8]
	put(head)
}

// aliasDouble releases both names of one lease.
func aliasDouble() {
	buf := get(16)
	head := buf[:8]
	put(head)
	put(buf) // want `double release of lease from get`
}

// growRebind keeps the lease through append-to-self.
func growRebind() {
	buf := get(8)
	buf = append(buf, 1, 2, 3)
	put(buf)
}

// overwritten drops a live lease by rebinding its only name.
func overwritten() {
	buf := get(8)
	buf = get(8) // want `lease from get is overwritten before release`
	put(buf)
}

// escapeToUnknown stops tracking: consume may retain the buffer.
func escapeToUnknown() {
	buf := get(8)
	consume(buf)
}

// escapeByReturn moves ownership to the caller.
func escapeByReturn() []byte {
	buf := get(8)
	fill(buf)
	return buf
}

// escapeToStore: retention through a data structure is beyond the
// analysis, so no report.
func escapeToStore() {
	buf := get(8)
	retained = append(retained, buf)
}

// tupleUntracked: multi-result sources are not tracked (the error arm has
// no lease), so nothing is reported on either path.
func tupleUntracked() error {
	buf, err := getChecked(8)
	if err != nil {
		return err
	}
	put(buf)
	return nil
}

// loopLeak acquires once per iteration and never releases.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		buf := get(8) // want `still live at the end of the loop body`
		fill(buf)
	}
}

// loopRelease is the correct per-iteration shape.
func loopRelease(n int) {
	for i := 0; i < n; i++ {
		buf := get(8)
		put(buf)
	}
}

// sinkImpl's own parameter is a lease it must dispose of on every path.
//
//lint:lease sink
func sinkImpl(b []byte, drop bool) {
	if drop {
		return // want `lease parameter b is not released on this return path`
	}
	put(b)
}

// Sender shows sink annotations on interface methods.
type Sender interface {
	//lint:lease sink
	Send(b []byte) bool
}

// ifaceRelease consumes through the interface; the failed-send arm needs
// no separate release because Send owns the buffer either way.
func ifaceRelease(s Sender) error {
	buf := get(8)
	if !s.Send(buf) {
		return errTest
	}
	return nil
}

// ifaceDouble releases twice through the interface.
func ifaceDouble(s Sender) {
	buf := get(8)
	s.Send(buf)
	s.Send(buf) // want `double release of lease from get`
}

// stringCopyOK: string(buf) copies the bytes, the lease stays live.
func stringCopyOK() string {
	buf := get(8)
	s := string(buf)
	put(buf)
	return s
}
