// Package lockorder exercises the lockorder analyzer's path checks against
// a declared order A → B → C.
package lockorder

import "sync"

type M struct {
	a sync.Mutex   //lint:lockorder A before B
	b sync.Mutex   //lint:lockorder B before C
	c sync.RWMutex //lint:lockorder C
}

// good acquires in declared order.
func good(m *M) {
	m.a.Lock()
	m.b.Lock()
	m.c.RLock()
	m.c.RUnlock()
	m.b.Unlock()
	m.a.Unlock()
}

// directBad inverts a declared edge.
func directBad(m *M) {
	m.b.Lock()
	m.a.Lock() // want `acquires "A" while holding "B": declared order is A → B`
	m.a.Unlock()
	m.b.Unlock()
}

// transitiveBad inverts the transitive closure, not a direct edge.
func transitiveBad(m *M) {
	m.c.Lock()
	m.a.Lock() // want `acquires "A" while holding "C": declared order is A → B → C`
	m.a.Unlock()
	m.c.Unlock()
}

// releasedOK may take A after B is released: nothing is held.
func releasedOK(m *M) {
	m.b.Lock()
	m.b.Unlock()
	m.a.Lock()
	m.a.Unlock()
}

// deferHolds keeps B held to function end through the deferred unlock.
func deferHolds(m *M) {
	m.b.Lock()
	defer m.b.Unlock()
	m.a.Lock() // want `acquires "A" while holding "B"`
	m.a.Unlock()
}

// helperLocksA gives callBad a summarized acquisition.
func helperLocksA(m *M) {
	m.a.Lock()
	m.a.Unlock()
}

// callBad acquires A transitively through a call while holding C.
func callBad(m *M) {
	m.c.Lock()
	defer m.c.Unlock()
	helperLocksA(m) // want `call to helperLocksA may acquire "A" while holding "C"`
}

// nested reaches helperLocksA two calls deep: summaries are a fixpoint.
func middle(m *M) { helperLocksA(m) }

func nestedCallBad(m *M) {
	m.b.Lock()
	defer m.b.Unlock()
	middle(m) // want `call to middle may acquire "A" while holding "B"`
}

// goroutineFresh starts a new stack: the held set does not carry over.
func goroutineFresh(m *M) {
	m.c.Lock()
	defer m.c.Unlock()
	go func() {
		m.a.Lock()
		m.a.Unlock()
	}()
}

// branchLocal acquisitions stay local to their branch.
func branchLocal(m *M, x bool) {
	if x {
		m.b.Lock()
		m.b.Unlock()
	}
	m.a.Lock()
	m.a.Unlock()
}
