// Package lockordera declares lock names consumed across the package
// boundary by the lockorderb fixture.
package lockordera

import "sync"

type S struct {
	A sync.Mutex //lint:lockorder modA before modB
	B sync.Mutex //lint:lockorder modB
}

// LockB has an exported acquisition summary: it may acquire modB.
func (s *S) LockB() {
	s.B.Lock()
	s.B.Unlock()
}

// LockA has an exported acquisition summary: it may acquire modA.
func (s *S) LockA() {
	s.A.Lock()
	s.A.Unlock()
}
