// Package lockorderb imports lockordera's declarations as facts: bindings
// on foreign struct fields, edges, and call summaries all cross the
// package boundary.
package lockorderb

import "lockordera"

// fieldBad locks another package's annotated mutex fields out of order.
func fieldBad(s *lockordera.S) {
	s.B.Lock()
	s.A.Lock() // want `acquires "modA" while holding "modB"`
	s.A.Unlock()
	s.B.Unlock()
}

// callOK holds modA and takes modB through a summarized call: that is the
// declared order, so no report.
func callOK(s *lockordera.S) {
	s.A.Lock()
	defer s.A.Unlock()
	s.LockB()
}

// callBad inverts the order through an imported call summary.
func callBad(s *lockordera.S) {
	s.B.Lock()
	defer s.B.Unlock()
	s.LockA() // want `call to LockA may acquire "modA" while holding "modB"`
}
