// Package lockorderdecl exercises declaration-time validation: cycles,
// malformed directives, non-mutex fields, and undeclared names are all
// rejected before any path checking happens.
package lockorderdecl

import "sync"

type D struct {
	a sync.Mutex //lint:lockorder X before Y // want `lockorder declarations form a cycle`
	b sync.Mutex //lint:lockorder Y before X // want `lockorder declarations form a cycle`
	c sync.Mutex //lint:lockorder M then N // want `malformed lockorder directive`
	d int        //lint:lockorder P // want `lockorder directive on non-mutex field`
	e sync.Mutex //lint:lockorder Q before Ghost // want `references undeclared lock name "Ghost"`
}

// bodyNotChecked would report an inversion, but unusable declarations skip
// path checks entirely.
func bodyNotChecked(d *D) {
	d.b.Lock()
	d.a.Lock()
	d.a.Unlock()
	d.b.Unlock()
}
