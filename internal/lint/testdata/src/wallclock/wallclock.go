// Package wallclock is the fixture for the wallclock analyzer: direct
// package-time calls are flagged unless a //lint:allow-wallclock directive
// with a reason sits on or directly above the call line.
package wallclock

import "time"

// Clock is a stand-in for netsim.Clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

func bad() time.Time {
	time.Sleep(time.Millisecond) // want `call to time\.Sleep`
	t := time.Now()              // want `call to time\.Now`
	_ = time.Since(t)            // want `call to time\.Since`
	<-time.After(time.Second)    // want `call to time\.After`
	_ = time.NewTimer(0)         // want `call to time\.NewTimer`
	_ = time.NewTicker(1)        // want `call to time\.NewTicker`
	f := time.Now                // want `call to time\.Now`
	_ = f
	return t
}

func allowedSameLine() time.Time {
	return time.Now() //lint:allow-wallclock fixture: real-time boundary
}

func allowedLineAbove() {
	//lint:allow-wallclock fixture: waiting on a real goroutine
	time.Sleep(time.Millisecond)
}

func reasonRequired() {
	//lint:allow-wallclock
	time.Sleep(time.Millisecond) // want `call to time\.Sleep`
}

func viaClock(c Clock) time.Duration {
	start := c.Now()
	c.Sleep(time.Millisecond) // durations and constants are fine
	return c.Now().Sub(start)
}
