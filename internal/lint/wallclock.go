package lint

import (
	"go/ast"
	"go/types"
)

// wallclockBanned is the set of package-time entry points that read or
// schedule against the wall clock. Code running under the simulated world
// must take time from a netsim.Clock instead: one stray time.Now in a
// simulated component silently breaks virtual-time determinism — the
// foundation of every e2e test and benchmark in this repo.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// WallClock reports direct package-time calls. The only legitimate callers
// are the RealClock implementation in netsim/clock.go (the designated
// wallclock boundary) and deliberate real-time waits — both carry a
// "//lint:allow-wallclock <reason>" directive on or directly above the call
// line. An empty reason does not suppress.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids direct time.Now/Sleep/After/... calls; simulated code must take time from a netsim.Clock",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallclockBanned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if pass.Allowed("allow-wallclock", sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "call to time.%s: take time from a netsim.Clock instead (or annotate //lint:allow-wallclock <reason>)", sel.Sel.Name)
			return true
		})
	}
	return nil
}
