package lint_test

import (
	"testing"

	"tango/internal/lint"
	"tango/internal/lint/linttest"
)

func TestWallClock(t *testing.T) {
	linttest.Run(t, lint.WallClock, "wallclock")
}
