// Package netsim provides the simulated network substrate every other layer
// of this repository runs on: a pluggable clock (real or virtual), lossy
// latency/bandwidth-shaped datagram links, and latency-shaped in-memory
// stream connections that model the legacy BGP/IP path.
//
// netsim is deliberately SCION-agnostic: the SCION data plane
// (internal/dataplane) builds border routers on top of netsim links, and the
// legacy IP fallback path (internal/proxy) dials netsim stream connections,
// so both worlds share one simulated substrate and one clock, as in the
// paper's testbeds (Figures 2 and 4).
package netsim

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time so experiments can run on a fast, deterministic
// virtual clock while production binaries use the real one. All latency
// injection in this repository flows through a Clock.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks for d of clock time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock time after d.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run after d and returns a cancel function
	// that reports whether the call was stopped before f ran.
	AfterFunc(d time.Duration, f func()) (cancel func() bool)
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration
}

// DeliveryScheduler is an optional Clock capability used by the packet
// plane: schedule a one-shot packet delivery with no cancel handle. Links
// deliver millions of packets and never cancel them, so the cancel closure
// AfterFunc must construct is pure garbage on that path; implementations can
// also recycle their timer records since no reference escapes. Both clocks
// in this package implement it; custom Clocks fall back to AfterFunc.
type DeliveryScheduler interface {
	//lint:lease sink
	ScheduleDelivery(d time.Duration, recv func([]byte), buf []byte)
}

// RealClock is the production Clock backed by package time.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() } //lint:allow-wallclock RealClock is the wall-clock boundary

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) } //lint:allow-wallclock RealClock is the wall-clock boundary

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) } //lint:allow-wallclock RealClock is the wall-clock boundary

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, f func()) func() bool {
	t := time.AfterFunc(d, f) //lint:allow-wallclock RealClock is the wall-clock boundary
	return t.Stop
}

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return time.Since(t) } //lint:allow-wallclock RealClock is the wall-clock boundary

// ScheduleDelivery implements DeliveryScheduler.
//
//lint:lease sink
func (RealClock) ScheduleDelivery(d time.Duration, recv func([]byte), buf []byte) {
	time.AfterFunc(d, func() { recv(buf) }) //lint:allow-wallclock RealClock is the wall-clock boundary
}

// simTimer is one pending virtual-clock timer. Delivery timers (see
// ScheduleDelivery) carry recv+buf directly instead of a closure and are
// recycled through simTimerPool after firing; only timers with no
// outstanding cancel handle may be pooled.
type simTimer struct {
	deadline time.Time
	seq      uint64 // tie-break so equal deadlines fire in schedule order
	fn       func()
	recv     func([]byte)
	buf      []byte
	pooled   bool // no cancel handle exists; recycle after firing
	index    int  // heap index, -1 once removed
}

var simTimerPool = sync.Pool{New: func() any { return new(simTimer) }}

type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// SimClock is a virtual clock. Time only moves when Advance, AdvanceToNext,
// or the auto-advancer (see AutoAdvance) moves it, so durations measured with
// a SimClock are exactly the sums of scheduled delays on the critical path —
// compute time contributes zero. This is what makes the page-load-time
// experiments deterministic and fast.
//
// The zero value is not usable; construct with NewSimClock.
type SimClock struct {
	mu       sync.Mutex
	now      time.Time
	timers   timerHeap
	seq      uint64
	activity atomic.Uint64 // bumped on every schedule/fire, used by AutoAdvance
}

// NewSimClock returns a SimClock starting at the given epoch.
func NewSimClock(epoch time.Time) *SimClock {
	return &SimClock{now: epoch}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock. It blocks until virtual time has advanced past
// now+d, which requires some other party (another goroutine, or the
// auto-advancer) to move the clock.
func (c *SimClock) Sleep(d time.Duration) {
	done := make(chan struct{})
	c.AfterFunc(d, func() { close(done) })
	<-done
}

// After implements Clock.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.AfterFunc(d, func() { ch <- c.Now() })
	return ch
}

// AfterFunc implements Clock. Timers scheduled with non-positive delay fire
// at the current virtual instant on the next advance — never synchronously,
// so callers may schedule while holding locks their callbacks take.
func (c *SimClock) AfterFunc(d time.Duration, f func()) func() bool {
	c.mu.Lock()
	c.activity.Add(1)
	t := &simTimer{deadline: c.now.Add(d), seq: c.seq, fn: f}
	c.seq++
	heap.Push(&c.timers, t)
	c.mu.Unlock()
	return func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.activity.Add(1)
		if t.index < 0 {
			return false
		}
		heap.Remove(&c.timers, t.index)
		return true
	}
}

// ScheduleDelivery implements DeliveryScheduler: like AfterFunc but with the
// callback's argument stored on the (pooled) timer record, so the packet hot
// path schedules deliveries with zero allocations in steady state.
//
//lint:lease sink
func (c *SimClock) ScheduleDelivery(d time.Duration, recv func([]byte), buf []byte) {
	t := simTimerPool.Get().(*simTimer)
	t.fn = nil
	t.recv = recv
	t.buf = buf
	t.pooled = true
	c.mu.Lock()
	c.activity.Add(1)
	t.deadline = c.now.Add(d)
	t.seq = c.seq
	c.seq++
	heap.Push(&c.timers, t)
	c.mu.Unlock()
}

// Since implements Clock.
func (c *SimClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Advance moves virtual time forward by d, firing every timer whose deadline
// falls within the window, in deadline order.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	c.advanceTo(target)
}

// AdvanceToNext jumps virtual time to the earliest pending timer deadline and
// fires every timer due at that instant. It reports whether any timer fired.
func (c *SimClock) AdvanceToNext() bool {
	c.mu.Lock()
	if len(c.timers) == 0 {
		c.mu.Unlock()
		return false
	}
	target := c.timers[0].deadline
	c.mu.Unlock()
	c.advanceTo(target)
	return true
}

// PendingTimers returns the number of timers not yet fired.
func (c *SimClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// advanceTo moves the clock to target (if later than now), firing due timers
// in order. Timer callbacks run synchronously in this goroutine so that a
// chain of zero-delay work completes before time moves again; callbacks that
// need to block must spawn their own goroutines.
func (c *SimClock) advanceTo(target time.Time) {
	for {
		c.mu.Lock()
		if target.After(c.now) && (len(c.timers) == 0 || c.timers[0].deadline.After(target)) {
			c.now = target
		}
		if len(c.timers) == 0 || c.timers[0].deadline.After(target) {
			c.mu.Unlock()
			return
		}
		t := heap.Pop(&c.timers).(*simTimer)
		if t.deadline.After(c.now) {
			c.now = t.deadline
		}
		c.activity.Add(1)
		c.mu.Unlock()
		fn, recv, buf := t.fn, t.recv, t.buf
		if t.pooled {
			*t = simTimer{}
			simTimerPool.Put(t)
		}
		if recv != nil {
			recv(buf)
		} else {
			fn()
		}
	}
}

// AutoAdvance starts a background advancer that jumps the clock to the next
// pending timer whenever the system is quiescent (no timer scheduled, fired,
// or cancelled across a window of scheduler yields). This lets ordinary
// goroutine code — QUIC handshakes, HTTP exchanges — run unmodified against
// virtual time: when everyone is blocked waiting for a (virtual) packet
// delivery or timeout, the advancer moves time forward. It returns a stop
// function.
//
// Most packet processing in this repository runs synchronously inside timer
// callbacks (handler-based delivery), so an advance returns only after the
// whole causal cascade of an instant has completed; the yield window only
// covers application goroutines (HTTP handlers, stream readers) that react
// to that cascade. The grace parameter bounds how long the advancer sleeps
// when no timers are pending at all.
func (c *SimClock) AutoAdvance(grace time.Duration) (stop func()) {
	if grace <= 0 {
		grace = 200 * time.Microsecond
	}
	// quietYields is the number of consecutive scheduler yields without
	// timer activity required before advancing. Large enough for woken
	// application goroutines to run; small enough to keep advances cheap.
	// It scales with GOMAXPROCS: on few cores one Gosched round-robins the
	// entire run queue (every runnable goroutine executes before the
	// advancer runs again), while on many cores the advancer can spin
	// through yields faster than woken goroutines get scheduled elsewhere,
	// so it must wait out more of them. The packet plane fires thousands of
	// delivery timers per transfer, each costing one quiescence window, so
	// this constant is a first-order throughput term for every virtual-time
	// benchmark.
	quietYields := 16 * runtime.GOMAXPROCS(0)
	if quietYields > 96 {
		quietYields = 96
	}
	done := make(chan struct{})
	go func() {
		last := c.activity.Load()
		quiet := 0
		idle := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			cur := c.activity.Load()
			if cur != last {
				last = cur
				quiet = 0
				idle = 0
				runtime.Gosched()
				continue
			}
			quiet++
			if quiet < quietYields {
				runtime.Gosched()
				continue
			}
			if c.AdvanceToNext() {
				last = c.activity.Load()
				quiet = 0
				idle = 0
				continue
			}
			// Nothing pending: sleep politely, backing off while idle.
			idle++
			d := grace
			if idle > 16 {
				d = 4 * grace
			}
			//lint:allow-wallclock idle backoff of the real-time drain helper
			time.Sleep(d)
			quiet = 0
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
