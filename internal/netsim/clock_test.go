package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)

func TestSimClockAdvanceFiresInOrder(t *testing.T) {
	c := NewSimClock(epoch)
	var mu sync.Mutex
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	c.AfterFunc(10*time.Millisecond, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	c.AfterFunc(20*time.Millisecond, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	c.Advance(25 * time.Millisecond)
	mu.Lock()
	got := append([]int(nil), order...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
	if want := epoch.Add(25 * time.Millisecond); !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
	c.Advance(10 * time.Millisecond)
	mu.Lock()
	got = append([]int(nil), order...)
	mu.Unlock()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", got)
	}
}

func TestSimClockEqualDeadlinesFIFO(t *testing.T) {
	c := NewSimClock(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestSimClockCancel(t *testing.T) {
	c := NewSimClock(epoch)
	fired := false
	cancel := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !cancel() {
		t.Fatal("first cancel should succeed")
	}
	if cancel() {
		t.Fatal("second cancel should report already stopped")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestSimClockZeroDelayFiresOnNextAdvance(t *testing.T) {
	c := NewSimClock(epoch)
	var fired atomic.Bool
	c.AfterFunc(0, func() { fired.Store(true) })
	if fired.Load() {
		t.Fatal("zero-delay timer fired synchronously; must wait for an advance")
	}
	if !c.AdvanceToNext() {
		t.Fatal("no timer pending")
	}
	if !fired.Load() {
		t.Fatal("zero-delay timer did not fire on advance")
	}
	if !c.Now().Equal(epoch) {
		t.Fatal("zero-delay advance moved time")
	}
}

func TestSimClockAdvanceToNext(t *testing.T) {
	c := NewSimClock(epoch)
	if c.AdvanceToNext() {
		t.Fatal("AdvanceToNext with no timers should report false")
	}
	done := false
	c.AfterFunc(42*time.Millisecond, func() { done = true })
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext should fire")
	}
	if !done {
		t.Fatal("timer did not run")
	}
	if want := epoch.Add(42 * time.Millisecond); !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestSimClockSleepWithAutoAdvance(t *testing.T) {
	c := NewSimClock(epoch)
	stop := c.AutoAdvance(100 * time.Microsecond)
	defer stop()
	start := c.Now()
	c.Sleep(5 * time.Millisecond)
	if got := c.Since(start); got != 5*time.Millisecond {
		t.Fatalf("virtual sleep advanced %v, want exactly 5ms", got)
	}
}

func TestSimClockConcurrentSleepersMeasureExactDelays(t *testing.T) {
	c := NewSimClock(epoch)
	stop := c.AutoAdvance(100 * time.Microsecond)
	defer stop()
	var wg sync.WaitGroup
	results := make([]time.Duration, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := c.Now()
			c.Sleep(time.Duration(i+1) * time.Millisecond)
			results[i] = c.Since(start)
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		want := time.Duration(i+1) * time.Millisecond
		if got < want {
			t.Errorf("sleeper %d measured %v, want >= %v", i, got, want)
		}
	}
}

func TestSimClockAfter(t *testing.T) {
	c := NewSimClock(epoch)
	ch := c.After(7 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before advance")
	default:
	}
	c.Advance(7 * time.Millisecond)
	select {
	case at := <-ch:
		if want := epoch.Add(7 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("After delivered %v, want %v", at, want)
		}
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = RealClock{}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) < time.Millisecond {
		t.Fatal("real clock did not advance")
	}
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(time.Second):
		t.Fatal("AfterFunc never fired")
	}
}
