package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// LinkProps describes the physical characteristics of a simulated link.
type LinkProps struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet.
	Jitter time.Duration
	// Bandwidth in bits per second; zero means unlimited. Packets are
	// serialized FIFO per direction, modelling transmission delay and
	// queueing.
	Bandwidth int64
	// LossRate is the independent per-packet drop probability in [0, 1].
	LossRate float64
	// MTU is the maximum packet size in bytes; larger packets are dropped.
	// Zero means unlimited.
	MTU int
}

// LinkStats counts per-direction packet outcomes on a link.
type LinkStats struct {
	Delivered uint64
	Lost      uint64
	TooBig    uint64
	Bytes     uint64
}

// Link is a bidirectional point-to-point datagram link between two attached
// receivers. Ends are numbered 0 and 1. Sends never block: delivery is
// scheduled on the link's clock after serialization + propagation delay, and
// lossy links silently drop.
type Link struct {
	clock Clock
	sched DeliveryScheduler // clock's allocation-free scheduling capability, if any
	props LinkProps

	mu       sync.Mutex
	rng      *rand.Rand
	ends     [2]func([]byte)
	nextFree [2]time.Time // when the transmitter in each direction frees up
	stats    [2]LinkStats
}

// NewLink creates a link with the given properties. The seed drives loss and
// jitter so scenarios are reproducible.
func NewLink(clock Clock, props LinkProps, seed int64) *Link {
	sched, _ := clock.(DeliveryScheduler)
	return &Link{
		clock: clock,
		sched: sched,
		props: props,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Props returns the link's current properties.
func (l *Link) Props() LinkProps {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.props
}

// SetProps replaces the link's properties, taking effect for every packet
// sent afterwards (in-flight packets keep their scheduled delivery). It is
// the simulation's lever for mid-run network events: a link failure is
// LossRate 1, a reroute is a latency change.
func (l *Link) SetProps(props LinkProps) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.props = props
}

// Attach registers the receiver for packets arriving at the given end (0 or
// 1). Attach must be called for both ends before traffic flows toward them.
func (l *Link) Attach(end int, recv func(pkt []byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ends[end] = recv
}

// Send transmits pkt from the given end toward the other. It reports whether
// the packet was accepted for (eventual) delivery; false means it was dropped
// by loss, MTU, or a missing receiver. The packet is copied (into a pooled
// buffer the receiver may Release, see SendOwned), so the caller may reuse
// its own buffer immediately.
func (l *Link) Send(from int, pkt []byte) bool {
	buf := GetBuf(len(pkt))
	copy(buf, pkt)
	return l.SendOwned(from, buf)
}

// SendOwned is Send with ownership transfer: the caller relinquishes pkt on
// call, whether or not it is accepted (dropped packets are returned to the
// buffer pool). Delivery hands ownership to the receiver, which must either
// PutBuf the buffer when done decoding or pass it on. This is the zero-copy
// path: a router can patch a received buffer in place and forward the very
// same bytes to the next link.
//
//lint:lease sink
func (l *Link) SendOwned(from int, pkt []byte) bool {
	to := 1 - from
	l.mu.Lock()
	recv := l.ends[to]
	if recv == nil {
		l.mu.Unlock()
		PutBuf(pkt)
		return false
	}
	if l.props.MTU > 0 && len(pkt) > l.props.MTU {
		l.stats[from].TooBig++
		l.mu.Unlock()
		PutBuf(pkt)
		return false
	}
	if l.props.LossRate > 0 && l.rng.Float64() < l.props.LossRate {
		l.stats[from].Lost++
		l.mu.Unlock()
		PutBuf(pkt)
		return false
	}
	now := l.clock.Now()
	start := now
	if l.nextFree[from].After(start) {
		start = l.nextFree[from]
	}
	var tx time.Duration
	if l.props.Bandwidth > 0 {
		tx = time.Duration(int64(len(pkt)) * 8 * int64(time.Second) / l.props.Bandwidth)
	}
	l.nextFree[from] = start.Add(tx)
	delay := start.Sub(now) + tx + l.props.Latency
	if l.props.Jitter > 0 {
		delay += time.Duration(l.rng.Int63n(int64(l.props.Jitter)))
	}
	l.stats[from].Delivered++
	l.stats[from].Bytes += uint64(len(pkt))
	l.mu.Unlock()

	if l.sched != nil {
		l.sched.ScheduleDelivery(delay, recv, pkt)
	} else {
		l.clock.AfterFunc(delay, func() { recv(pkt) })
	}
	return true
}

// Stats returns a snapshot of the transmit statistics for the given end.
func (l *Link) Stats(from int) LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats[from]
}
