package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestLinkDeliversAfterLatency(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{Latency: 10 * time.Millisecond}, 1)
	var mu sync.Mutex
	var got []byte
	var at time.Time
	l.Attach(1, func(p []byte) { mu.Lock(); got = p; at = c.Now(); mu.Unlock() })
	if !l.Send(0, []byte("hello")) {
		t.Fatal("send rejected")
	}
	c.Advance(9 * time.Millisecond)
	mu.Lock()
	if got != nil {
		t.Fatal("delivered early")
	}
	mu.Unlock()
	c.Advance(time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if want := epoch.Add(10 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestLinkCopiesPayload(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{Latency: time.Millisecond}, 1)
	var got []byte
	l.Attach(1, func(p []byte) { got = p })
	buf := []byte("abc")
	l.Send(0, buf)
	buf[0] = 'X'
	c.Advance(time.Millisecond)
	if string(got) != "abc" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestLinkMTUDrop(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{MTU: 4}, 1)
	l.Attach(1, func([]byte) {})
	if l.Send(0, []byte("12345")) {
		t.Fatal("oversized packet accepted")
	}
	if !l.Send(0, []byte("1234")) {
		t.Fatal("MTU-sized packet rejected")
	}
	s := l.Stats(0)
	if s.TooBig != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLinkLossRateApproximate(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{LossRate: 0.3}, 42)
	l.Attach(1, func([]byte) {})
	const n = 10000
	dropped := 0
	for i := 0; i < n; i++ {
		if !l.Send(0, []byte{1}) {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss %.3f, want ~0.30", rate)
	}
}

func TestLinkLossDeterministicPerSeed(t *testing.T) {
	run := func() []bool {
		c := NewSimClock(epoch)
		l := NewLink(c, LinkProps{LossRate: 0.5}, 7)
		l.Attach(1, func([]byte) {})
		out := make([]bool, 100)
		for i := range out {
			out[i] = l.Send(0, []byte{1})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loss pattern not reproducible for same seed")
		}
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	c := NewSimClock(epoch)
	// 8000 bit/s => a 1000-byte packet takes exactly 1s to transmit.
	l := NewLink(c, LinkProps{Bandwidth: 8000}, 1)
	var mu sync.Mutex
	var arrivals []time.Time
	l.Attach(1, func([]byte) { mu.Lock(); arrivals = append(arrivals, c.Now()); mu.Unlock() })
	pkt := make([]byte, 1000)
	l.Send(0, pkt)
	l.Send(0, pkt) // queued behind the first
	c.Advance(3 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets", len(arrivals))
	}
	if want := epoch.Add(1 * time.Second); !arrivals[0].Equal(want) {
		t.Fatalf("first arrival %v, want %v", arrivals[0], want)
	}
	if want := epoch.Add(2 * time.Second); !arrivals[1].Equal(want) {
		t.Fatalf("second arrival %v, want %v (FIFO queueing)", arrivals[1], want)
	}
}

func TestLinkNoReceiver(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{}, 1)
	if l.Send(0, []byte{1}) {
		t.Fatal("send with no receiver accepted")
	}
}

func TestLinkBidirectional(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{Latency: time.Millisecond}, 1)
	var a, b string
	l.Attach(0, func(p []byte) { a = string(p) })
	l.Attach(1, func(p []byte) { b = string(p) })
	l.Send(0, []byte("to-b"))
	l.Send(1, []byte("to-a"))
	c.Advance(time.Millisecond)
	if a != "to-a" || b != "to-b" {
		t.Fatalf("a=%q b=%q", a, b)
	}
}
