package netsim

import (
	"sync"
	"sync/atomic"
)

// Packet buffer pool: MTU-sized leased buffers handed down the
// send→link→router→deliver pipeline by ownership transfer (SendOwned) so the
// steady-state packet path neither allocates nor copies. The lease discipline
// is documented in docs/dataplane.md: exactly one owner at a time, the owner
// either hands the buffer on (SendOwned, delivery callback) or returns it
// (PutBuf); buffers that escape the discipline are simply garbage-collected —
// the pool is never poisoned by a forgotten release.
//
// Classes are exact capacities: PutBuf only recycles buffers whose cap
// matches a class (GetBuf never reslices capacity), so foreign buffers — a
// Marshal result, a test literal — are silently dropped to the GC rather
// than corrupting class boundaries.

// bufClasses are the pooled buffer capacities, ascending. 1536 is the
// workhorse (Ethernet-ish MTUs, every squic packet); 72k covers the largest
// AS-local datagram (64 KiB payload + SCION header).
var bufClasses = [...]int{256, 1536, 4096, 16384, 73728}

// bufStripes spreads each class over independently-locked free lists so
// concurrent routers don't serialize on one mutex. Must be a power of two.
const bufStripes = 8

// stripeCap bounds each stripe's free list; beyond it, PutBuf drops to the
// GC. Bounds idle pool memory at sum(class·stripes·stripeCap).
const stripeCap = 64

type bufStripe struct {
	mu   sync.Mutex
	free [][]byte
	_    [40]byte // keep neighboring stripes off one cache line
}

var (
	bufPool   [len(bufClasses)][bufStripes]bufStripe
	stripeCtr atomic.Uint32
)

// GetBuf leases a buffer of length n from the pool (capacity is the smallest
// class that fits; requests beyond the largest class fall back to a plain
// allocation). The caller owns the buffer until it transfers ownership or
// calls PutBuf.
//
//lint:lease source
func GetBuf(n int) []byte {
	ci := -1
	for i, c := range bufClasses {
		if n <= c {
			ci = i
			break
		}
	}
	if ci < 0 {
		return make([]byte, n)
	}
	s := &bufPool[ci][stripeCtr.Add(1)&(bufStripes-1)]
	s.mu.Lock()
	if k := len(s.free); k > 0 {
		b := s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		s.mu.Unlock()
		return b[:n]
	}
	s.mu.Unlock()
	return make([]byte, n, bufClasses[ci])
}

// PutBuf returns a leased buffer to the pool. Buffers whose capacity is not
// exactly a pool class (or whose stripe is full) are dropped to the GC, so
// passing any []byte is safe. The caller must not use the buffer afterwards.
//
//lint:lease sink
func PutBuf(b []byte) {
	c := cap(b)
	ci := -1
	for i, cl := range bufClasses {
		if c == cl {
			ci = i
			break
		}
	}
	if ci < 0 {
		//lint:allow-lease non-class buffers are dropped to the GC; that is their release
		return
	}
	s := &bufPool[ci][stripeCtr.Add(1)&(bufStripes-1)]
	s.mu.Lock()
	if len(s.free) < stripeCap {
		s.free = append(s.free, b[:0])
	}
	s.mu.Unlock()
}
