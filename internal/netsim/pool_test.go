package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestGetBufClassSelection(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 256},
		{1, 256},
		{256, 256},
		{257, 1536},
		{1400, 1536},
		{1536, 1536},
		{4096, 4096},
		{16384, 16384},
		{73728, 73728},
	}
	for _, c := range cases {
		b := GetBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("GetBuf(%d) = len %d cap %d, want len %d cap %d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		PutBuf(b)
	}
	// Beyond the largest class: plain allocation, exact size.
	//lint:allow-lease oversize buffers are plain allocations; the GC reclaims them
	if b := GetBuf(100000); len(b) != 100000 || cap(b) != 100000 {
		t.Errorf("oversize GetBuf = len %d cap %d", len(b), cap(b))
	}
}

func TestPutBufGetBufReuses(t *testing.T) {
	// Contents survive a put/get cycle (the pool never zeroes), so a sentinel
	// byte proves reuse. Fill a full stripe rotation so the round-robin
	// counter can't dodge the returned buffers.
	const n = 2 * bufStripes
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = GetBuf(1400)
		bufs[i][0] = 0xAB
	}
	for _, b := range bufs {
		PutBuf(b)
	}
	reused := 0
	for i := 0; i < n; i++ {
		//lint:allow-lease reuse counting deliberately keeps the gets
		if b := GetBuf(1400); b[0] == 0xAB {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("no buffer reuse across a full stripe rotation")
	}
}

func TestPutBufDropsForeignCapacities(t *testing.T) {
	// A buffer whose capacity is not exactly a pool class must never come
	// back out of GetBuf — foreign buffers (Marshal results, test literals)
	// fall to the GC instead of corrupting class boundaries.
	PutBuf(make([]byte, 0, 2000))
	for i := 0; i < 4*bufStripes; i++ {
		b := GetBuf(1700) // 1700 maps to the 4096 class; 2000 fits but is foreign
		if cap(b) == 2000 {
			t.Fatal("foreign-capacity buffer leaked back out of the pool")
		}
		PutBuf(b)
	}
}

func TestPoolConcurrentHammer(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{64, 1400, 3000, 20000}
			for i := 0; i < 500; i++ {
				b := GetBuf(sizes[(g+i)%len(sizes)])
				b[0] = byte(i)
				PutBuf(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestSendOwnedDeliversSameBuffer(t *testing.T) {
	c := NewSimClock(epoch)
	l := NewLink(c, LinkProps{Latency: time.Millisecond}, 1)
	var got []byte
	l.Attach(1, func(p []byte) { got = p })
	buf := GetBuf(5)
	copy(buf, "hello")
	if !l.SendOwned(0, buf) {
		t.Fatal("send rejected")
	}
	c.Advance(time.Millisecond)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	// Zero-copy: the receiver sees the very bytes the sender leased.
	//lint:allow-lease zero-copy assertion inspects the transferred bytes
	if &got[0] != &buf[0] {
		t.Fatal("SendOwned copied the buffer")
	}
	PutBuf(got)
}

func TestSendOwnedReleasesDroppedPackets(t *testing.T) {
	c := NewSimClock(epoch)
	// No receiver attached: every send is dropped at the link, and the
	// ownership contract says the link must return the buffer to the pool.
	l := NewLink(c, LinkProps{}, 1)
	marked := make([][]byte, 2*bufStripes)
	for i := range marked {
		marked[i] = GetBuf(50)
		marked[i][1] = 0xCD
	}
	for _, b := range marked {
		if l.SendOwned(0, b) {
			t.Fatal("send accepted with no receiver")
		}
	}
	// A full stripe rotation of gets must surface at least one of the marked
	// buffers — proof the drops went back to the pool rather than leaking.
	recovered := 0
	for i := 0; i < 2*bufStripes; i++ {
		//lint:allow-lease reuse counting deliberately keeps the gets
		if b := GetBuf(50); b[1] == 0xCD {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("dropped packets never returned to the buffer pool")
	}
	// MTU drops follow the same contract.
	l.Attach(1, func([]byte) { t.Fatal("oversize packet delivered") })
	l.SetProps(LinkProps{MTU: 100})
	if l.SendOwned(0, GetBuf(200)) {
		t.Fatal("send accepted past MTU")
	}
	c.Advance(time.Second)
}
