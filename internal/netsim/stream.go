package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// StreamNetwork models the legacy BGP/IP Internet: hosts dial reliable byte
// streams (TCP stand-ins) to named listeners, and each host pair has a single
// fixed route with configured one-way latency — there is no path choice,
// which is exactly the asymmetry the paper's Figure 5 exploits.
type StreamNetwork struct {
	clock Clock

	mu        sync.Mutex
	listeners map[string]*StreamListener // key "host:port"
	routes    map[[2]string]RouteProps   // key ordered host pair
	def       RouteProps
}

// RouteProps describes the single legacy route between two hosts.
type RouteProps struct {
	// Latency is the one-way delay between the hosts.
	Latency time.Duration
	// Bandwidth in bits per second; zero means unlimited.
	Bandwidth int64
}

// NewStreamNetwork creates an empty legacy-IP network on the given clock.
func NewStreamNetwork(clock Clock) *StreamNetwork {
	return &StreamNetwork{
		clock:     clock,
		listeners: make(map[string]*StreamListener),
		routes:    make(map[[2]string]RouteProps),
	}
}

// SetDefaultRoute sets the route used for host pairs without an explicit
// route.
func (n *StreamNetwork) SetDefaultRoute(p RouteProps) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = p
}

// SetRoute fixes the legacy route between two hosts (order-insensitive).
func (n *StreamNetwork) SetRoute(a, b string, p RouteProps) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.routes[routeKey(a, b)] = p
}

// Route returns the route properties between two hosts.
func (n *StreamNetwork) Route(a, b string) RouteProps {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.routes[routeKey(a, b)]; ok {
		return p
	}
	return n.def
}

func routeKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Listen opens a listener at "host:port". The host name identifies the
// machine for routing purposes.
func (n *StreamNetwork) Listen(hostport string) (*StreamListener, error) {
	host, _, err := net.SplitHostPort(hostport)
	if err != nil {
		return nil, fmt.Errorf("netsim listen %q: %w", hostport, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[hostport]; ok {
		return nil, fmt.Errorf("netsim listen %q: address in use", hostport)
	}
	l := &StreamListener{
		net:    n,
		addr:   simAddr{network: "sim+tcp", addr: hostport},
		host:   host,
		accept: make(chan *streamConn, 16),
		done:   make(chan struct{}),
	}
	n.listeners[hostport] = l
	return l, nil
}

// Dial connects from the named local host to "host:port", honoring ctx
// cancellation while the (latency-delayed) connection establishes.
func (n *StreamNetwork) Dial(ctx context.Context, fromHost, hostport string) (net.Conn, error) {
	toHost, _, err := net.SplitHostPort(hostport)
	if err != nil {
		return nil, fmt.Errorf("netsim dial %q: %w", hostport, err)
	}
	n.mu.Lock()
	l := n.listeners[hostport]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netsim dial %q: connection refused", hostport)
	}
	route := n.Route(fromHost, toHost)

	client, server := newStreamPair(n.clock, route,
		simAddr{"sim+tcp", fromHost + ":0"}, simAddr{"sim+tcp", hostport})

	// Connection establishment costs one RTT (SYN + SYN-ACK), like TCP.
	ready := make(chan struct{})
	n.clock.AfterFunc(2*route.Latency, func() { close(ready) })
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-ready:
	}
	select {
	case l.accept <- server:
	case <-l.done:
		client.Close()
		return nil, fmt.Errorf("netsim dial %q: connection refused", hostport)
	case <-ctx.Done():
		client.Close()
		return nil, ctx.Err()
	}
	return client, nil
}

// StreamListener accepts latency-shaped stream connections.
type StreamListener struct {
	net    *StreamNetwork
	addr   simAddr
	host   string
	accept chan *streamConn
	done   chan struct{}
	once   sync.Once
}

// Accept implements net.Listener.
func (l *StreamListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *StreamListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *StreamListener) Addr() net.Addr { return l.addr }

type simAddr struct {
	network string
	addr    string
}

func (a simAddr) Network() string { return a.network }
func (a simAddr) String() string  { return a.addr }

// newStreamPair builds two connected latency-shaped stream endpoints.
func newStreamPair(clock Clock, route RouteProps, aAddr, bAddr simAddr) (a, b *streamConn) {
	ab := newDelayBuffer(clock, route)
	ba := newDelayBuffer(clock, route)
	a = &streamConn{clock: clock, rd: ba, wr: ab, local: aAddr, remote: bAddr}
	b = &streamConn{clock: clock, rd: ab, wr: ba, local: bAddr, remote: aAddr}
	return a, b
}

// delayBuffer is a unidirectional byte channel whose writes become readable
// only after the route latency has elapsed on the clock.
type delayBuffer struct {
	clock Clock
	route RouteProps

	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	eofAt    bool // EOF delivered (all data before it already arrived)
	closed   bool // writer closed; EOF scheduled
	expired  bool // read deadline exceeded; readers fail until cleared
	nextFree time.Time
}

func newDelayBuffer(clock Clock, route RouteProps) *delayBuffer {
	d := &delayBuffer{clock: clock, route: route}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// write schedules len(p) bytes for delivery after latency (+ serialization).
func (d *delayBuffer) write(p []byte) (int, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, net.ErrClosed
	}
	now := d.clock.Now()
	start := now
	if d.nextFree.After(start) {
		start = d.nextFree
	}
	var tx time.Duration
	if d.route.Bandwidth > 0 {
		tx = time.Duration(int64(len(p)) * 8 * int64(time.Second) / d.route.Bandwidth)
	}
	d.nextFree = start.Add(tx)
	delay := start.Sub(now) + tx + d.route.Latency
	d.mu.Unlock()

	buf := make([]byte, len(p))
	copy(buf, p)
	d.clock.AfterFunc(delay, func() {
		d.mu.Lock()
		d.buf = append(d.buf, buf...)
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	return len(p), nil
}

// closeWrite schedules EOF after all in-flight data.
func (d *delayBuffer) closeWrite() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	now := d.clock.Now()
	delay := d.route.Latency
	if d.nextFree.After(now) {
		delay += d.nextFree.Sub(now)
	}
	d.mu.Unlock()
	d.clock.AfterFunc(delay, func() {
		d.mu.Lock()
		d.eofAt = true
		d.cond.Broadcast()
		d.mu.Unlock()
	})
}

// read blocks until data, EOF, or the deadline watcher interrupts.
func (d *delayBuffer) read(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.buf) == 0 {
		if d.eofAt {
			return 0, io.EOF
		}
		if d.expired {
			return 0, errDeadline
		}
		d.cond.Wait()
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// setExpired flips the read-deadline flag and wakes blocked readers.
func (d *delayBuffer) setExpired(v bool) {
	d.mu.Lock()
	d.expired = v
	d.cond.Broadcast()
	d.mu.Unlock()
}

var errDeadline = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netsim: i/o deadline exceeded" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// streamConn is a latency-shaped net.Conn over a pair of delayBuffers.
type streamConn struct {
	clock  Clock
	rd     *delayBuffer
	wr     *delayBuffer
	local  simAddr
	remote simAddr

	mu           sync.Mutex
	closed       bool
	cancelRead   func() bool
	writeExpired bool
}

// Read implements net.Conn.
func (c *streamConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.mu.Unlock()
	return c.rd.read(p)
}

// Write implements net.Conn.
func (c *streamConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	expired := c.writeExpired
	c.mu.Unlock()
	if expired {
		return 0, errDeadline
	}
	return c.wr.write(p)
}

// Close implements net.Conn: it half-closes our write side (peer sees EOF
// after in-flight data) and unblocks local readers.
func (c *streamConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.wr.closeWrite()
	// Unblock any local reader with EOF semantics.
	c.rd.mu.Lock()
	c.rd.eofAt = true
	c.rd.cond.Broadcast()
	c.rd.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (c *streamConn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *streamConn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *streamConn) SetDeadline(t time.Time) error {
	if err := c.SetReadDeadline(t); err != nil {
		return err
	}
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn. A zero time clears the deadline.
func (c *streamConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelRead != nil {
		c.cancelRead()
		c.cancelRead = nil
	}
	c.rd.setExpired(false)
	if t.IsZero() {
		return nil
	}
	d := t.Sub(c.clock.Now())
	if d <= 0 {
		c.rd.setExpired(true)
		return nil
	}
	rd := c.rd
	c.cancelRead = c.clock.AfterFunc(d, func() { rd.setExpired(true) })
	return nil
}

// SetWriteDeadline implements net.Conn. Writes never block in the simulator,
// so this only matters for already-expired deadlines.
func (c *streamConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeExpired = !t.IsZero() && !t.After(c.clock.Now())
	return nil
}

var _ net.Conn = (*streamConn)(nil)
var _ net.Listener = (*StreamListener)(nil)

// ErrUseOfClosedConn mirrors the stdlib sentinel for callers that need it.
var ErrUseOfClosedConn = errors.New("use of closed netsim connection")
