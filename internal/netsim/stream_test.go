package netsim

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"
)

// simWorld wires a SimClock with auto-advance for stream tests.
func simWorld(t *testing.T) (*SimClock, *StreamNetwork) {
	t.Helper()
	c := NewSimClock(epoch)
	stop := c.AutoAdvance(100 * time.Microsecond)
	t.Cleanup(stop)
	return c, NewStreamNetwork(c)
}

func TestStreamDialAndEcho(t *testing.T) {
	_, n := simWorld(t)
	n.SetRoute("client", "server", RouteProps{Latency: 5 * time.Millisecond})
	l, err := n.Listen("server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn)
	}()
	conn, err := n.Dial(context.Background(), "client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping over simulated BGP/IP")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mismatch: %q", buf)
	}
}

func TestStreamRTTMeasuredOnVirtualClock(t *testing.T) {
	c, n := simWorld(t)
	n.SetRoute("client", "server", RouteProps{Latency: 20 * time.Millisecond})
	l, err := n.Listen("server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1)
		conn.Read(buf)
		conn.Write(buf)
	}()
	conn, err := n.Dial(context.Background(), "client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := c.Now()
	conn.Write([]byte{1})
	io.ReadFull(conn, make([]byte, 1))
	rtt := c.Since(start)
	if rtt != 40*time.Millisecond {
		t.Fatalf("echo RTT = %v, want exactly 40ms on the virtual clock", rtt)
	}
}

func TestStreamDialEstablishmentCostsOneRTT(t *testing.T) {
	c, n := simWorld(t)
	n.SetRoute("a", "b", RouteProps{Latency: 15 * time.Millisecond})
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept()
	start := c.Now()
	conn, err := n.Dial(context.Background(), "a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := c.Since(start); got != 30*time.Millisecond {
		t.Fatalf("dial took %v, want 30ms (one RTT)", got)
	}
}

func TestStreamDialRefused(t *testing.T) {
	_, n := simWorld(t)
	if _, err := n.Dial(context.Background(), "a", "nowhere:1"); err == nil {
		t.Fatal("dial to missing listener succeeded")
	}
}

func TestStreamDialContextCancel(t *testing.T) {
	// No auto-advance: the establishment timer can never fire, so Dial must
	// unblock via the context.
	c := NewSimClock(epoch)
	n := NewStreamNetwork(c)
	n.SetRoute("a", "b", RouteProps{Latency: time.Hour})
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := n.Dial(ctx, "a", "b:1"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStreamCloseDeliversEOF(t *testing.T) {
	_, n := simWorld(t)
	n.SetRoute("a", "b", RouteProps{Latency: time.Millisecond})
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serverGot := make(chan []byte, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(conn)
		serverGot <- data
	}()
	conn, err := n.Dial(context.Background(), "a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("last words"))
	conn.Close()
	select {
	case data := <-serverGot:
		if string(data) != "last words" {
			t.Fatalf("server read %q", data)
		}
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw EOF")
	}
}

func TestStreamReadDeadline(t *testing.T) {
	c, n := simWorld(t)
	n.SetRoute("a", "b", RouteProps{Latency: time.Millisecond})
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept()
	conn, err := n.Dial(context.Background(), "a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(c.Now().Add(5 * time.Millisecond))
	_, err = conn.Read(make([]byte, 1))
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	// Clearing the deadline allows reads again.
	conn.SetReadDeadline(time.Time{})
}

func TestStreamListenerAddrInUse(t *testing.T) {
	_, n := simWorld(t)
	if _, err := n.Listen("h:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("h:1"); err == nil {
		t.Fatal("double listen succeeded")
	}
}

func TestStreamListenerCloseUnblocksAccept(t *testing.T) {
	_, n := simWorld(t)
	l, err := n.Listen("h:1")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { _, err := l.Accept(); errc <- err }()
	l.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Accept returned nil after Close")
		}
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(time.Second):
		t.Fatal("Accept never unblocked")
	}
	// Port is free again after close.
	if _, err := n.Listen("h:1"); err != nil {
		t.Fatalf("relisten failed: %v", err)
	}
}

func TestStreamDefaultRoute(t *testing.T) {
	c, n := simWorld(t)
	n.SetDefaultRoute(RouteProps{Latency: 3 * time.Millisecond})
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept()
	start := c.Now()
	conn, err := n.Dial(context.Background(), "a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := c.Since(start); got != 6*time.Millisecond {
		t.Fatalf("dial took %v, want 6ms from default route", got)
	}
}

func TestStreamBandwidthShaping(t *testing.T) {
	c, n := simWorld(t)
	// 80_000 bit/s => 10 kB/s => a 1000-byte body takes 100ms of tx time.
	n.SetRoute("a", "b", RouteProps{Latency: time.Millisecond, Bandwidth: 80_000})
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	received := make(chan time.Time, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		io.ReadFull(conn, make([]byte, 1000))
		received <- c.Now()
	}()
	conn, err := n.Dial(context.Background(), "a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sent := c.Now()
	conn.Write(make([]byte, 1000))
	at := <-received
	if got := at.Sub(sent); got != 101*time.Millisecond {
		t.Fatalf("1000B at 10kB/s arrived after %v, want 101ms", got)
	}
}
