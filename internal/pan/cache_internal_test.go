package pan

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// TestLinkStatsCached (whitebox): the sorted link snapshot is computed once
// and reused across calls, invalidated exactly by sample ingest, and expired
// by age so series can still drop out without a fresh sample.
func TestLinkStatsCached(t *testing.T) {
	via := addr.IA{ISD: 1, AS: 0x110}
	dst := addr.IA{ISD: 2, AS: 0x211}
	src := addr.IA{ISD: 1, AS: 0x111}
	path := &segment.Path{
		Src: src, Dst: dst,
		Hops: []segment.Hop{
			{IA: src, Egress: 1},
			{IA: via, Ingress: 2, Egress: 3},
			{IA: dst, Ingress: 4},
		},
		Meta: segment.Metadata{Latency: 10 * time.Millisecond},
	}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	m := NewMonitor(clock, func(addr.IA) []*segment.Path { return []*segment.Path{path} }, MonitorOptions{
		BaseInterval: time.Second,
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			return 0, ErrNoPath
		},
	})
	target := addr.UDPAddr{Addr: addr.Addr{IA: dst, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}
	m.Track(target, "cache.server")

	m.Observe(path, 100*time.Millisecond)
	first := m.LinkStats()
	if len(first) == 0 {
		t.Fatal("no link stats after ingest")
	}
	m.linkMu.Lock()
	if m.linkCache == nil {
		m.linkMu.Unlock()
		t.Fatal("LinkStats did not populate the cache")
	}
	cacheHead := &m.linkCache[0]
	m.linkMu.Unlock()

	second := m.LinkStats()
	m.linkMu.Lock()
	rebuilt := &m.linkCache[0] != cacheHead
	m.linkMu.Unlock()
	if rebuilt {
		t.Fatal("LinkStats rebuilt the cache with no ingest in between")
	}
	if len(second) != len(first) || second[0] != first[0] {
		t.Fatalf("cached snapshot diverged: %+v vs %+v", second, first)
	}
	// Returned slices are copies: callers cannot corrupt the cache.
	second[0].Congestion = time.Hour
	if got := m.LinkStats()[0].Congestion; got == time.Hour {
		t.Fatal("LinkStats handed out the cache's own backing array")
	}

	// Ingest invalidates (via the dirty flag — the hot path never touches
	// linkMu); the next call recomputes with the new sample.
	m.Observe(path, 300*time.Millisecond)
	if !m.linkDirty.Load() {
		t.Fatal("sample ingest did not mark the cache dirty")
	}
	third := m.LinkStats()
	if third[0].Congestion <= first[0].Congestion {
		t.Fatalf("recomputed congestion %v not above initial %v", third[0].Congestion, first[0].Congestion)
	}
	if m.linkDirty.Load() {
		t.Fatal("rebuild did not clear the dirty flag")
	}

	// Pure aging also refreshes: past MaxInterval the cache expires, and
	// past the stale-series horizon the link drops out entirely — without a
	// single ingest to invalidate.
	m.linkMu.Lock()
	cachedAt := m.linkCacheAt
	m.linkMu.Unlock()
	clock.Advance(m.opts.MaxInterval + time.Second)
	m.LinkStats()
	m.linkMu.Lock()
	refreshed := m.linkCacheAt.After(cachedAt)
	m.linkMu.Unlock()
	if !refreshed {
		t.Fatal("cache did not expire after MaxInterval")
	}
	clock.Advance(time.Duration(staleSeriesAfter) * m.opts.MaxInterval)
	if left := m.LinkStats(); len(left) != 0 {
		t.Fatalf("stale series survived the horizon through the cache: %+v", left)
	}
}
