package pan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
	"tango/internal/squic"
)

// DialOptions parameterizes a Dialer.
type DialOptions struct {
	// Selector ranks candidate paths (nil = accept-everything
	// PolicySelector).
	Selector Selector
	// Mode is the operational mode applied at selection time.
	Mode Mode
	// ServerName is the default server identity dialed connections must
	// prove; Dial's serverName argument overrides it per call.
	ServerName string
	// Timeout caps each dial attempt's handshake (0 = squic's default). A
	// context deadline tightens it further.
	Timeout time.Duration
	// MaxAttempts bounds candidate failover per Dial call (0 = 3).
	MaxAttempts int
	// RaceWidth, when > 1, dials that many top-ranked candidates
	// concurrently per Dial call and keeps the first completed handshake;
	// the losers are canceled and closed. A canceled loser is NOT reported
	// as a failure — cancellation says nothing about the path — while a
	// loser that failed on its own merit before the race was decided still
	// reports Failure. 0 or 1 keeps sequential failover over MaxAttempts
	// candidates.
	RaceWidth int
	// RaceStagger delays racer i's start by i*RaceStagger, so the
	// top-ranked candidate gets a head start and a healthy first choice
	// wins without the network ever seeing the extra handshakes. 0 picks
	// DefaultRaceStagger when racing; negative disables staggering.
	RaceStagger time.Duration
	// Monitor, when set, attaches the dialer to a shared telemetry plane:
	// probe outcomes feed the active selector, every destination with a
	// pooled connection is tracked (and untracked when its pooled
	// connection is evicted), and AdaptiveRace can draw on the telemetry.
	// Several dialers may share one Monitor.
	Monitor *Monitor
	// AdaptiveRace, with a Monitor attached, auto-tunes the per-dial race
	// width from telemetry freshness and RTT spread: stale or contested
	// leaders race up to RaceWidth (or DefaultAdaptiveRaceWidth when
	// RaceWidth ≤ 1), a clearly healthy leader dials alone.
	AdaptiveRace bool
	// Passive, with a Monitor attached, streams every pooled connection's
	// ack RTT samples into Monitor.Observe for the connection's lifetime:
	// zero-cost telemetry from traffic the dialer already carries, which
	// keeps busy destinations fresh and suppresses their scheduled active
	// probes. Toggled at runtime with SetPassive.
	Passive bool
}

// RaceDecision records how the most recent Dial chose its race width — the
// observability hook for adaptive racing.
type RaceDecision struct {
	// Width is the number of candidates dialed concurrently (1 =
	// sequential failover).
	Width int
	// Adaptive reports whether telemetry picked the width.
	Adaptive bool
	// Reason is the adviser's one-word rationale ("clear-leader",
	// "stale-leader", "close-contenders", ...); "configured" when static.
	Reason string
	// Racers lists the raced candidates' fingerprints in start order when
	// Width > 1 — after the hotspot-aware disjoint pick, so tests and
	// operators can see that one congested shared link cannot sink every
	// racer. Empty for sequential dials.
	Racers []string
}

// DefaultRaceStagger is the inter-racer start offset applied when racing
// with an unset RaceStagger.
const DefaultRaceStagger = 10 * time.Millisecond

// ErrDialerClosed is returned by Dial after Close.
var ErrDialerClosed = errors.New("pan: dialer closed")

// Dialer dials squic connections with selector-driven path choice,
// per-destination connection reuse, and failure feedback.
//
// Reuse is keyed by a selector epoch: SetSelector (or SetMode) bumps the
// epoch and drops every pooled connection, so the next request to each
// destination re-dials under the new policy — callers no longer hand-clear
// per-authority maps. Dial failures and reported transport errors mark the
// path down in the selector; the next dial re-ranks and fails over.
type Dialer struct {
	host *Host

	mu     sync.Mutex //lint:lockorder pandialer
	opts   DialOptions
	epoch  uint64
	closed bool
	conns  map[string]*pooledConn
	// stripes pools striped connection sets per destination (DialStriped),
	// epoch-keyed and invalidated exactly like conns.
	stripes map[string]*Striped
	// last remembers the most recent successful selection per destination
	// at the current epoch, surviving the pooled connection's death so a
	// response served just before a failure still annotates correctly.
	last map[string]Selection
	// tracked mirrors the pool into the monitor's probe set: a destination
	// is tracked while (and only while) it has a pooled connection, so a
	// long-lived proxy stops probing origins it no longer talks to.
	tracked  map[string]trackRef
	unsub    func()
	lastRace RaceDecision
	// dials counts fresh connections pooled, ever; each pooledConn is
	// stamped with the value at its pooling (see pooledConn.gen), giving
	// every pool entry a unique, monotonic generation.
	dials uint64
}

// trackRef remembers what was passed to Monitor.Track so the matching
// Untrack is exact.
type trackRef struct {
	remote     addr.UDPAddr
	serverName string
}

// pooledConn is one reusable connection plus the selection that produced it.
type pooledConn struct {
	conn       *squic.Conn
	sel        Selection
	epoch      uint64
	gen        uint64 // unique per pooling; PoolState's re-dial detector
	remote     addr.UDPAddr
	serverName string
}

// NewDialer builds a Dialer on the host.
func (h *Host) NewDialer(opts DialOptions) *Dialer {
	if opts.Selector == nil {
		opts.Selector = NewPolicySelector(nil, nil)
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	opts.RaceStagger = normalizeStagger(opts.RaceWidth, opts.RaceStagger)
	d := &Dialer{host: h, opts: opts, conns: make(map[string]*pooledConn), stripes: make(map[string]*Striped), last: make(map[string]Selection), tracked: make(map[string]trackRef)}
	if opts.Monitor != nil {
		d.subscribeLocked(opts.Monitor)
	}
	return d
}

// subscribeLocked wires probe outcomes from the monitor into whatever
// selector is active at delivery time, so SetSelector swaps redirect probe
// feedback automatically.
func (d *Dialer) subscribeLocked(m *Monitor) {
	d.unsub = m.SubscribeBatch(BatchSinkFunc(func(reports []SampleReport) {
		sel := d.Selector()
		if bs, ok := sel.(BatchSink); ok {
			bs.ReportBatch(reports)
			return
		}
		for _, r := range reports {
			sel.Report(r.Path, r.Outcome)
		}
	}))
}

// Monitor returns the attached telemetry plane, if any.
func (d *Dialer) Monitor() *Monitor {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.opts.Monitor
}

// SetMonitor attaches the dialer to a (possibly shared) telemetry plane at
// runtime, detaching from the previous one: its subscription is dropped and
// every destination this dialer tracked is untracked. Destinations with a
// live pooled connection are re-tracked on the new monitor immediately.
func (d *Dialer) SetMonitor(m *Monitor) {
	d.mu.Lock()
	unsub := d.unsub
	if old := d.opts.Monitor; old != nil {
		for _, ref := range d.tracked {
			old.Untrack(ref.remote, ref.serverName)
		}
	}
	d.tracked = make(map[string]trackRef)
	d.opts.Monitor = m
	d.unsub = nil
	if m != nil {
		d.subscribeLocked(m)
		for key, pc := range d.conns {
			if pc.conn.Err() == nil {
				ref := trackRef{remote: pc.remote, serverName: pc.serverName}
				d.tracked[key] = ref
				m.Track(ref.remote, ref.serverName)
			}
		}
	}
	d.mu.Unlock()
	if unsub != nil {
		unsub()
	}
}

// SetAdaptiveRace toggles telemetry-driven race-width tuning at runtime (a
// scheduling concern: the epoch is not bumped). It has effect only with a
// Monitor attached.
func (d *Dialer) SetAdaptiveRace(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opts.AdaptiveRace = on
}

// SetPassive toggles passive telemetry at runtime. Disabling stops the
// sample flow immediately (already-registered connection observers check
// the flag per sample); enabling takes effect per connection as it is
// (re-)pooled — the epoch is not bumped. Effective only with a Monitor
// attached.
func (d *Dialer) SetPassive(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opts.Passive = on
}

// observePassive routes one passive RTT sample from a pooled connection on
// path into the currently attached monitor. Reading the monitor per sample
// (rather than capturing it at registration) keeps a SetMonitor swap from
// leaking samples into a detached plane.
func (d *Dialer) observePassive(path *segment.Path, rtt time.Duration) {
	d.mu.Lock()
	m, on := d.opts.Monitor, d.opts.Passive
	d.mu.Unlock()
	if m == nil || !on {
		return
	}
	m.Observe(path, rtt)
}

// observePassiveBatch is observePassive for a connection's coalesced ack
// RTT batch: the monitor ingests the whole burst in one ring drain.
func (d *Dialer) observePassiveBatch(path *segment.Path, rtts []time.Duration) {
	d.mu.Lock()
	m, on := d.opts.Monitor, d.opts.Passive
	d.mu.Unlock()
	if m == nil || !on {
		return
	}
	m.ObserveBatch(path, rtts)
}

// LastRace reports how the most recent Dial chose its race width.
func (d *Dialer) LastRace() RaceDecision {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastRace
}

// normalizeStagger resolves the zero value (racing configured, stagger
// unset) to the default. A NEGATIVE stagger is the caller explicitly
// disabling staggering and is preserved as-is — dial paths treat any
// non-positive stagger as "no stagger", so the disabled state survives an
// adaptive-racing width widening too.
func normalizeStagger(width int, stagger time.Duration) time.Duration {
	if width > 1 && stagger == 0 {
		return DefaultRaceStagger
	}
	return stagger
}

// Host returns the dialer's PAN host.
func (d *Dialer) Host() *Host { return d.host }

// Selector returns the active selector.
func (d *Dialer) Selector() Selector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.opts.Selector
}

// Mode returns the active operational mode.
func (d *Dialer) Mode() Mode {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.opts.Mode
}

// Epoch returns the current selector epoch.
func (d *Dialer) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// SetSelector installs a new selector and bumps the epoch: every pooled
// connection is closed and the next dial per destination re-selects.
func (d *Dialer) SetSelector(s Selector) {
	if s == nil {
		s = NewPolicySelector(nil, nil)
	}
	d.mu.Lock()
	d.opts.Selector = s
	d.mu.Unlock()
	d.Invalidate()
}

// SetRace reconfigures connection racing at runtime. Racing is a
// scheduling concern, not a policy change, so the epoch is NOT bumped and
// pooled connections stay valid.
func (d *Dialer) SetRace(width int, stagger time.Duration) {
	stagger = normalizeStagger(width, stagger)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opts.RaceWidth, d.opts.RaceStagger = width, stagger
}

// SetMode switches the operational mode, bumping the epoch.
func (d *Dialer) SetMode(m Mode) {
	d.mu.Lock()
	d.opts.Mode = m
	d.mu.Unlock()
	d.Invalidate()
}

// Invalidate bumps the epoch and closes every pooled connection without
// changing the selector — useful when external state (e.g. trust material)
// changed under the pool. Evicted destinations leave the monitor's probe
// set; the re-dial that replaces a pooled connection re-tracks it.
func (d *Dialer) Invalidate() {
	d.mu.Lock()
	d.epoch++
	conns := d.conns
	d.conns = make(map[string]*pooledConn)
	stripes := d.stripes
	d.stripes = make(map[string]*Striped)
	d.last = make(map[string]Selection) // selected under a superseded policy
	if m := d.opts.Monitor; m != nil {
		// Under d.mu: a concurrent Dial cannot interleave its Track between
		// this snapshot and the release, so the refcounts stay exact.
		for _, ref := range d.tracked {
			m.Untrack(ref.remote, ref.serverName)
		}
	}
	d.tracked = make(map[string]trackRef)
	d.mu.Unlock()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, st := range stripes {
		st.closeConns()
	}
}

// Close releases all pooled connections and makes the dialer terminal:
// later Dial calls fail with ErrDialerClosed instead of silently pooling
// connections nothing will ever close. Its monitor subscription and probe
// tracking are released too.
func (d *Dialer) Close() {
	d.mu.Lock()
	d.closed = true
	unsub := d.unsub
	d.unsub = nil
	d.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	d.Invalidate()
}

// key identifies one reusable connection.
func (d *Dialer) key(remote addr.UDPAddr, serverName string) string {
	return remote.String() + "|" + serverName
}

// Cached returns the most recent Selection that produced a connection to
// remote at the current epoch — the annotation source for callers that
// already routed a request over the pool. It keeps answering after the
// connection has failed (a response can complete just before a concurrent
// request kills the shared connection); only an epoch bump clears it.
func (d *Dialer) Cached(remote addr.UDPAddr, serverName string) (Selection, bool) {
	if serverName == "" {
		serverName = d.opts.ServerName
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sel, ok := d.last[d.key(remote, serverName)]
	return sel, ok
}

// PoolState reports whether a live pooled connection to remote exists at
// the current epoch — i.e. whether the next Dial will reuse it instead of
// dialing — and, when live, that pool entry's generation (unique per
// pooling). Unlike Cached (which keeps answering from the last selection
// after the connection has died), this consults the pool itself. The
// proxy's passive-telemetry feed brackets a round trip with it: live
// before and the SAME generation after proves the round trip rode that
// pooled connection, with no re-dial (and no failover's worth of handshake
// timeouts) hiding inside.
func (d *Dialer) PoolState(remote addr.UDPAddr, serverName string) (gen uint64, live bool) {
	if serverName == "" {
		serverName = d.opts.ServerName
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	pc := d.conns[d.key(remote, serverName)]
	if pc == nil || pc.epoch != d.epoch || pc.conn.Err() != nil {
		return 0, false
	}
	return pc.gen, true
}

// ReportFailure reports a transport-level failure observed on the pooled
// connection to remote (e.g. an HTTP round-trip error): if the pooled
// connection is dead, it is dropped and its path reported down so the next
// dial re-ranks around it. First reporter wins: with the entry absent (a
// dial-stage failure, which Dial already reported) or already replaced by a
// live connection (a concurrent caller reported the same death first and a
// re-dial succeeded), the call is a no-op — a stale report must not kill a
// healthy replacement or mislabel its path.
func (d *Dialer) ReportFailure(remote addr.UDPAddr, serverName string) {
	if serverName == "" {
		serverName = d.opts.ServerName
	}
	d.mu.Lock()
	key := d.key(remote, serverName)
	pc := d.conns[key]
	if pc == nil || pc.conn.Err() == nil {
		d.mu.Unlock()
		return
	}
	delete(d.conns, key)
	d.untrackKeyLocked(key)
	sel := d.opts.Selector
	d.mu.Unlock()
	pc.conn.Close()
	sel.Report(pc.sel.Path, Failure)
}

// untrackKeyLocked removes key from the tracking mirror and releases its
// monitor reference. Every dialer-side Track/Untrack runs under d.mu (lock
// order d.mu → monitor.mu, never reversed: the monitor calls its sinks
// outside its own lock), so a concurrent Dial can never re-Track a
// destination between an Invalidate's snapshot and its release — the
// refcount stays exact.
func (d *Dialer) untrackKeyLocked(key string) {
	ref, ok := d.tracked[key]
	if !ok || d.opts.Monitor == nil {
		return
	}
	delete(d.tracked, key)
	d.opts.Monitor.Untrack(ref.remote, ref.serverName)
}

// Dial returns a connection to remote whose server proves serverName
// (DialOptions.ServerName when empty). A live pooled connection at the
// current epoch is reused; otherwise candidates are dialed in ranked order
// — sequentially through MaxAttempts candidates, or concurrently over the
// top RaceWidth candidates when racing is configured — reporting genuine
// failures into the selector. The winning path's Success report carries the
// measured handshake latency, feeding latency-ranking selectors a live
// sample per dial. The returned connection stays pooled: do not Close it
// per request — close the Dialer (or bump the epoch) instead.
func (d *Dialer) Dial(ctx context.Context, remote addr.UDPAddr, serverName string) (*squic.Conn, Selection, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, Selection{}, ErrDialerClosed
	}
	if serverName == "" {
		serverName = d.opts.ServerName
	}
	key := d.key(remote, serverName)
	epoch := d.epoch
	sel, mode, timeout, attempts := d.opts.Selector, d.opts.Mode, d.opts.Timeout, d.opts.MaxAttempts
	width, stagger := d.opts.RaceWidth, d.opts.RaceStagger
	monitor, adaptive, passive := d.opts.Monitor, d.opts.AdaptiveRace, d.opts.Passive
	if pc := d.conns[key]; pc != nil {
		if pc.epoch == epoch && pc.conn.Err() == nil {
			d.mu.Unlock()
			return pc.conn, pc.sel, nil
		}
		// Stale: superseded epoch or dead transport. Drop silently — dial
		// failures below, not graceful closes, feed the health signal. The
		// probe set follows the pool: a successful re-dial re-tracks.
		delete(d.conns, key)
		d.untrackKeyLocked(key)
		defer pc.conn.Close()
	}
	d.mu.Unlock()

	cands, selection, err := d.host.candidates(remote.IA, sel, mode)
	if err != nil {
		return nil, selection, err
	}
	decision := RaceDecision{Width: 1, Reason: "configured"}
	if width > 1 && len(cands) > 1 {
		decision.Width = width
		if decision.Width > len(cands) {
			decision.Width = len(cands)
		}
	}
	if adaptive && monitor != nil && len(cands) > 1 {
		maxWidth := width
		if maxWidth <= 1 {
			maxWidth = DefaultAdaptiveRaceWidth
		}
		w, reason := monitor.RaceWidth(cands, maxWidth)
		width = w
		decision = RaceDecision{Width: w, Adaptive: true, Reason: reason}
		if width > 1 && stagger == 0 {
			stagger = DefaultRaceStagger
		}
	}
	var conn *squic.Conn
	var won Candidate
	var hsLatency time.Duration
	if width > 1 && len(cands) > 1 {
		// Hotspot-aware racing: racers are picked greedily for disjoint
		// link sets (leader first), not as plain top-k, so one congested
		// shared link can't sink the whole race.
		racers := DisjointRace(cands, width)
		decision.Racers = make([]string, len(racers))
		for i, c := range racers {
			decision.Racers[i] = c.Path.Fingerprint()
		}
		d.mu.Lock()
		d.lastRace = decision
		d.mu.Unlock()
		conn, won, hsLatency, err = d.dialRaced(ctx, remote, racers, serverName, timeout, len(racers), stagger, sel)
	} else {
		d.mu.Lock()
		d.lastRace = decision
		d.mu.Unlock()
		conn, won, hsLatency, err = d.dialSequential(ctx, remote, cands, serverName, timeout, attempts, sel)
	}
	if err != nil {
		return nil, selection, err
	}
	selection.Path = won.Path
	selection.Compliant = won.Compliant

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		conn.Close()
		return nil, Selection{}, ErrDialerClosed
	}
	if d.epoch != epoch {
		// The selector changed while we were dialing: this connection was
		// selected under a superseded policy and must not be pooled — and
		// an unpooled connection would leak (callers never close
		// per-request). Drop it and re-dial under the new epoch.
		d.mu.Unlock()
		conn.Close()
		return d.Dial(ctx, remote, serverName)
	}
	if existing := d.conns[key]; existing != nil && existing.conn.Err() == nil {
		// A concurrent dial won the race; reuse its connection.
		d.mu.Unlock()
		conn.Close()
		return existing.conn, existing.sel, nil
	}
	d.dials++
	d.conns[key] = &pooledConn{conn: conn, sel: selection, epoch: epoch, gen: d.dials, remote: remote, serverName: serverName}
	d.last[key] = selection
	if m := d.opts.Monitor; m != nil {
		if _, ok := d.tracked[key]; !ok {
			// The pooled destination joins the shared probe set — under
			// d.mu, so a concurrent Invalidate/Close cannot slip between
			// the mirror entry and the refcount. The matching Untrack fires
			// when this pool entry is evicted or closed.
			d.tracked[key] = trackRef{remote: remote, serverName: serverName}
			m.Track(remote, serverName)
		}
	}
	d.mu.Unlock()
	if monitor != nil && passive {
		// Stream the pooled connection's ack RTTs into the telemetry plane
		// for as long as it lives: every request the caller sends doubles as
		// a free probe of the winning path. The observer re-reads the
		// dialer's monitor/passive state per sample, so SetMonitor and
		// SetPassive apply to live connections immediately.
		path := won.Path
		conn.OnRTTSampleBatch(func(rtts []time.Duration) { d.observePassiveBatch(path, rtts) })
	}
	// Report Success only for a connection actually put into service: a
	// discarded race-loser or stale-epoch dial must not advance use-driven
	// selectors (RoundRobin rotation). The measured handshake latency rides
	// along as a live RTT sample.
	sel.Report(won.Path, Outcome{Latency: hsLatency})
	return conn, selection, nil
}

// abandoned reports whether err (or the context itself) says the caller
// gave the dial up, as opposed to the path failing.
func abandoned(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// dialSequential tries candidates in ranked order until one handshake
// completes or attempts are exhausted. Failure reports are deferred until
// the call's fate is known: when the caller abandons the call (context
// canceled or expired) NOTHING is reported — not even earlier candidates'
// failures, whose timing may itself have been an artifact of the shrinking
// context budget rather than path health.
func (d *Dialer) dialSequential(ctx context.Context, remote addr.UDPAddr, cands []Candidate, serverName string, timeout time.Duration, attempts int, sel Selector) (*squic.Conn, Candidate, time.Duration, error) {
	if len(cands) < attempts {
		attempts = len(cands)
	}
	var lastErr error
	var failed []*segment.Path
	for _, cand := range cands[:attempts] {
		start := d.host.clock.Now()
		conn, err := d.dialPath(ctx, remote, cand, serverName, timeout)
		if err != nil {
			if abandoned(ctx, err) {
				return nil, Candidate{}, 0, err
			}
			lastErr = err
			failed = append(failed, cand.Path)
			continue
		}
		for _, p := range failed {
			sel.Report(p, Failure)
		}
		return conn, cand, d.host.clock.Since(start), nil
	}
	for _, p := range failed {
		sel.Report(p, Failure)
	}
	return nil, Candidate{}, 0, lastErr
}

// dialRaced dials the top-width candidates concurrently, each racer's start
// staggered by its rank, and keeps the first completed handshake. The
// remaining racers are canceled — squic aborts their handshakes promptly —
// and their connections closed, so no goroutine or socket outlives the
// call. Outcome classification: the winner reports Success (with handshake
// latency) from Dial's pooling tail; a racer that failed on its own merit
// while the race was still undecided reports Failure; a racer canceled by
// the win (or by the caller) reports nothing.
func (d *Dialer) dialRaced(ctx context.Context, remote addr.UDPAddr, cands []Candidate, serverName string, timeout time.Duration, width int, stagger time.Duration, sel Selector) (*squic.Conn, Candidate, time.Duration, error) {
	if width > len(cands) {
		width = len(cands)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type raceResult struct {
		cand    Candidate
		conn    *squic.Conn
		latency time.Duration
		err     error
	}
	clock := d.host.clock
	results := make(chan raceResult, width)
	for i, cand := range cands[:width] {
		go func(i int, cand Candidate) {
			if stagger > 0 && i > 0 {
				select {
				case <-clock.After(time.Duration(i) * stagger):
				case <-rctx.Done():
					results <- raceResult{cand: cand, err: rctx.Err()}
					return
				}
			}
			start := clock.Now()
			conn, err := d.dialPath(rctx, remote, cand, serverName, timeout)
			results <- raceResult{cand: cand, conn: conn, latency: clock.Since(start), err: err}
		}(i, cand)
	}
	// Collect every racer: cancellation aborts handshakes promptly, so
	// draining the losers costs scheduling, not network time, and
	// guarantees the call leaves nothing behind.
	var winner raceResult
	var lastErr error
	var failed []*segment.Path
	for n := 0; n < width; n++ {
		r := <-results
		switch {
		case r.err == nil && winner.conn == nil:
			winner = r
			cancel()
		case r.err == nil:
			// A second handshake completed before the cancellation landed.
			r.conn.Close()
		case abandoned(rctx, r.err):
			// Canceled — by the win or by the caller. Not a health signal.
		default:
			failed = append(failed, r.cand.Path)
			lastErr = r.err
		}
	}
	if ctx.Err() != nil {
		// The caller abandoned the whole race: discard its observations
		// (and any stray winner — the caller will never use it).
		if winner.conn != nil {
			winner.conn.Close()
		}
		return nil, Candidate{}, 0, ctx.Err()
	}
	for _, p := range failed {
		sel.Report(p, Failure)
	}
	if winner.conn != nil {
		return winner.conn, winner.cand, winner.latency, nil
	}
	if lastErr == nil {
		lastErr = context.Canceled
	}
	return nil, Candidate{}, 0, lastErr
}

// dialPath opens a socket and dials one candidate, honoring the context
// deadline: the handshake timeout is TIGHTENED to the time remaining (it
// never extends past the configured or default squic timeout), and the
// socket never outlives a failed dial. Deadlines are interpreted on the
// host's clock — create them from that clock (virtual in simulation).
func (d *Dialer) dialPath(ctx context.Context, remote addr.UDPAddr, cand Candidate, serverName string, timeout time.Duration) (*squic.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		remaining := deadline.Sub(d.host.clock.Now())
		if remaining <= 0 {
			return nil, context.DeadlineExceeded
		}
		effective := timeout
		if effective == 0 {
			effective = squic.DefaultHandshakeTimeout
		}
		if remaining < effective {
			timeout = remaining
		}
	}
	sock, err := d.host.stack.Listen(0)
	if err != nil {
		return nil, fmt.Errorf("pan: allocating socket: %w", err)
	}
	conn, err := squic.DialContext(ctx, sock, remote, cand.Path, serverName, &squic.Config{
		Clock:            d.host.clock,
		Pool:             d.host.pool,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		// squic.Dial closes the socket it owns on failure; Close is
		// idempotent, so this also covers any path where it did not.
		sock.Close()
		return nil, err
	}
	return conn, nil
}
