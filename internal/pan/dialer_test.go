package pan_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"net/netip"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/segment"
	"tango/internal/topology"
)

func dialWorld(t *testing.T) (*world, *pan.Host, addr.UDPAddr) {
	t.Helper()
	w := newWorld(t)
	server := w.host(topology.AS211, "10.0.0.2")
	lis := echoServer(t, server, 7100, "dialer.server", w.pool)
	t.Cleanup(func() { lis.Close() })
	client := w.host(topology.AS111, "10.0.0.1")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 7100}
	return w, client, remote
}

func TestDialerReusesConnection(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	conn1, sel1, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn1 != conn2 {
		t.Fatal("second dial did not reuse the pooled connection")
	}
	if sel1.Path.Fingerprint() != sel2.Path.Fingerprint() {
		t.Fatal("reused connection must report the original selection")
	}
	if sel, ok := d.Cached(remote, ""); !ok || sel.Path.Fingerprint() != sel1.Path.Fingerprint() {
		t.Fatal("Cached() must expose the pooled selection")
	}
}

func TestDialerEpochBumpRedials(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	conn1, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	e0 := d.Epoch()
	d.SetSelector(pan.NewLatencySelector())
	if d.Epoch() != e0+1 {
		t.Fatalf("SetSelector must bump the epoch: %d -> %d", e0, d.Epoch())
	}
	if conn1.Err() == nil {
		t.Fatal("epoch bump must close pooled connections")
	}
	if _, ok := d.Cached(remote, ""); ok {
		t.Fatal("stale selection survived the epoch bump")
	}
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn1 {
		t.Fatal("dial after epoch bump returned the closed connection")
	}
	if sel2.Path == nil {
		t.Fatal("re-dial must re-select")
	}
}

func TestDialerDeadConnectionRedials(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	conn1, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	conn1.Close()
	conn2, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn1 {
		t.Fatal("dial returned a dead pooled connection")
	}
}

// recordingSelector wraps a fixed ranking and records Report calls.
type recordingSelector struct {
	mu      sync.Mutex
	ranking []pan.Candidate
	reports map[string][]pan.Outcome
}

func (r *recordingSelector) Rank(dst addr.IA, paths []*segment.Path) []pan.Candidate {
	return append([]pan.Candidate(nil), r.ranking...)
}

func (r *recordingSelector) Report(path *segment.Path, outcome pan.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reports == nil {
		r.reports = make(map[string][]pan.Outcome)
	}
	fp := path.Fingerprint()
	r.reports[fp] = append(r.reports[fp], outcome)
}

func TestDialerFailsOverToNextCandidate(t *testing.T) {
	_, client, remote := dialWorld(t)
	paths := client.Paths(topology.AS211)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// A reversed path cannot route from the client: the first candidate's
	// dial fails, and the dialer must fail over to the good second
	// candidate, reporting the failure into the selector.
	bad := paths[0].Reversed()
	good := paths[0]
	sel := &recordingSelector{ranking: []pan.Candidate{
		{Path: bad, Compliant: true},
		{Path: good, Compliant: true},
	}}
	d := client.NewDialer(pan.DialOptions{
		Selector:   sel,
		ServerName: "dialer.server",
		Timeout:    2 * time.Second, // virtual time: longer than a real handshake RTT, still fast
	})
	defer d.Close()

	conn, selection, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("failover dial failed: %v", err)
	}
	if conn.Err() != nil {
		t.Fatal("failover connection is dead")
	}
	if selection.Path.Fingerprint() != good.Fingerprint() {
		t.Fatalf("failover picked %s, want the good candidate", selection.Path)
	}
	sel.mu.Lock()
	defer sel.mu.Unlock()
	badReports := sel.reports[bad.Fingerprint()]
	if len(badReports) == 0 || !badReports[0].Failed {
		t.Fatalf("bad path's failure was not reported: %+v", sel.reports)
	}
	goodReports := sel.reports[good.Fingerprint()]
	if len(goodReports) == 0 || goodReports[len(goodReports)-1].Failed {
		t.Fatalf("good path's success was not reported: %+v", sel.reports)
	}
}

func TestDialerReportFailureMarksPathDown(t *testing.T) {
	_, client, remote := dialWorld(t)
	ls := pan.NewLatencySelector()
	d := client.NewDialer(pan.DialOptions{Selector: ls, ServerName: "dialer.server"})
	defer d.Close()

	conn1, sel1, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	// A report against a LIVE pooled connection is a stale observation
	// (first reporter wins) and must not kill it.
	d.ReportFailure(remote, "")
	if conn1.Err() != nil {
		t.Fatal("ReportFailure killed a healthy pooled connection")
	}
	// The connection dies (transport teardown); a caller that saw the
	// round-trip error reports it.
	conn1.Close()
	d.ReportFailure(remote, "")
	// A response that completed before the failure must still annotate.
	if sel, ok := d.Cached(remote, ""); !ok || sel.Path.Fingerprint() != sel1.Path.Fingerprint() {
		t.Fatal("Cached must survive ReportFailure until re-dial or epoch bump")
	}
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn1 {
		t.Fatal("dial after ReportFailure returned the dead connection")
	}
	if sel2.Path.Fingerprint() == sel1.Path.Fingerprint() {
		t.Fatal("next dial did not re-rank around the down path")
	}
	// A second report for the same death finds the healthy replacement and
	// must be a no-op.
	d.ReportFailure(remote, "")
	if conn2.Err() != nil {
		t.Fatal("stale ReportFailure killed the replacement connection")
	}
}

// failureCount returns how many Failed outcomes were recorded for fp.
func (r *recordingSelector) failureCount(fp string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, o := range r.reports[fp] {
		if o.Failed {
			n++
		}
	}
	return n
}

func TestDialerRacedKeepsFirstHandshakeAndCancelsLosers(t *testing.T) {
	_, client, remote := dialWorld(t)
	paths := client.Paths(topology.AS211)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// The top-ranked candidate is unroutable (a reversed path): sequential
	// failover would burn its full handshake timeout before trying the
	// next candidate, but a race lets the good second candidate win while
	// the first is still flailing — and the canceled loser must NOT be
	// reported as a failure (cancellation is not a health signal).
	bad := paths[0].Reversed()
	good := paths[0]
	sel := &recordingSelector{ranking: []pan.Candidate{
		{Path: bad, Compliant: true},
		{Path: good, Compliant: true},
	}}
	d := client.NewDialer(pan.DialOptions{
		Selector:   sel,
		ServerName: "dialer.server",
		Timeout:    2 * time.Second,
	})
	defer d.Close()
	d.SetRace(2, 20*time.Millisecond)

	conn, selection, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("raced dial failed: %v", err)
	}
	if conn.Err() != nil {
		t.Fatal("raced connection is dead")
	}
	if selection.Path.Fingerprint() != good.Fingerprint() {
		t.Fatalf("race kept %s, want the routable candidate", selection.Path)
	}
	sel.mu.Lock()
	goodReports := append([]pan.Outcome(nil), sel.reports[good.Fingerprint()]...)
	sel.mu.Unlock()
	if len(goodReports) != 1 || goodReports[0].Failed {
		t.Fatalf("winner reports = %+v, want one success", goodReports)
	}
	if goodReports[0].Latency <= 0 {
		t.Fatal("winner's success report must carry the measured handshake latency")
	}
	if n := sel.failureCount(bad.Fingerprint()); n != 0 {
		t.Fatalf("canceled loser was reported down %d times — racing poisoned the selector", n)
	}
	// The winner is pooled and reused.
	conn2, _, err := d.Dial(context.Background(), remote, "")
	if err != nil || conn2 != conn {
		t.Fatalf("raced winner not pooled (err %v)", err)
	}
}

func TestDialerRacedAllCandidatesFail(t *testing.T) {
	_, client, remote := dialWorld(t)
	paths := client.Paths(topology.AS211)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	bad1, bad2 := paths[0].Reversed(), paths[len(paths)-1].Reversed()
	if bad1.Fingerprint() == bad2.Fingerprint() {
		t.Skip("need two distinct paths")
	}
	sel := &recordingSelector{ranking: []pan.Candidate{
		{Path: bad1, Compliant: true},
		{Path: bad2, Compliant: true},
	}}
	d := client.NewDialer(pan.DialOptions{
		Selector:    sel,
		ServerName:  "dialer.server",
		Timeout:     time.Second,
		RaceWidth:   2,
		RaceStagger: 10 * time.Millisecond,
	})
	defer d.Close()

	if _, _, err := d.Dial(context.Background(), remote, ""); err == nil {
		t.Fatal("race over two unroutable candidates succeeded")
	}
	// Both racers failed on their own merit (handshake timeout, no winner,
	// no cancellation): both must be reported down.
	if n := sel.failureCount(bad1.Fingerprint()); n != 1 {
		t.Fatalf("bad1 reported down %d times, want 1", n)
	}
	if n := sel.failureCount(bad2.Fingerprint()); n != 1 {
		t.Fatalf("bad2 reported down %d times, want 1", n)
	}
}

// TestDialerCancelDiscardsEarlierFailureReports is the regression test for
// the latent sequential-dial bug: candidate 1 fails (its Failure formerly
// reported immediately), then the caller cancels during candidate 2's dial.
// The whole call was abandoned — the selector must see NO reports from it,
// or every caller-side cancellation would poison rankings. Racing makes
// cancellation the common case, so this semantics is now load-bearing.
func TestDialerCancelDiscardsEarlierFailureReports(t *testing.T) {
	w, client, remote := dialWorld(t)
	paths := client.Paths(topology.AS211)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	bad1, bad2 := paths[0].Reversed(), paths[len(paths)-1].Reversed()
	sel := &recordingSelector{ranking: []pan.Candidate{
		{Path: bad1, Compliant: true},
		{Path: bad2, Compliant: true},
	}}
	d := client.NewDialer(pan.DialOptions{
		Selector:   sel,
		ServerName: "dialer.server",
		Timeout:    2 * time.Second,
	})
	defer d.Close()

	// Candidate 1 times out at 2s; candidate 2's dial starts then; the
	// caller cancels at 3s, mid-candidate-2.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.clock.AfterFunc(3*time.Second, func() { cancel() })
	_, _, err := d.Dial(ctx, remote, "")
	if err == nil {
		t.Fatal("canceled dial succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sel.mu.Lock()
	reports := make(map[string][]pan.Outcome, len(sel.reports))
	for fp, os := range sel.reports {
		reports[fp] = append([]pan.Outcome(nil), os...)
	}
	sel.mu.Unlock()
	if len(reports) != 0 {
		t.Fatalf("abandoned dial left reports in the selector: %+v", reports)
	}
}

func TestDialerHonorsContextDeadline(t *testing.T) {
	w, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	// An already-expired deadline (on the virtual clock) must fail without
	// dialing.
	ctx, cancel := context.WithDeadline(context.Background(), w.clock.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := d.Dial(ctx, remote, ""); err == nil {
		t.Fatal("dial with expired deadline succeeded")
	}
}

func TestDialerStrictModeRefusesNonCompliant(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{
		Selector:   pan.NewPolicySelector(nil, policy.NewBlockGeofence(2)),
		Mode:       pan.Strict,
		ServerName: "dialer.server",
	})
	defer d.Close()
	if _, _, err := d.Dial(context.Background(), remote, ""); err == nil {
		t.Fatal("strict dial through blocked ISD succeeded")
	}
}

// TestDialerTracksPooledDestinationsOnMonitor is the probe-set-leak
// regression: a destination joins the monitor's probe set when its
// connection is pooled and leaves it whenever the pooled connection is
// closed or evicted — a long-lived proxy must not probe dead origins
// forever.
func TestDialerTracksPooledDestinationsOnMonitor(t *testing.T) {
	_, client, remote := dialWorld(t)
	m := client.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server", Monitor: m})

	if n := m.TargetCount(); n != 0 {
		t.Fatalf("fresh dialer tracks %d targets", n)
	}
	conn, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if n := m.TargetCount(); n != 1 {
		t.Fatalf("pooled destination not tracked: %d targets", n)
	}
	// Re-dial (pool hit) must not double-track.
	if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	if n := m.TargetCount(); n != 1 {
		t.Fatalf("pool hit re-tracked: %d targets", n)
	}

	// Eviction via ReportFailure (dead transport) untracks.
	conn.Close()
	d.ReportFailure(remote, "")
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("evicted destination still tracked: %d targets (the probe-set leak)", n)
	}

	// Re-dial re-tracks; Invalidate (epoch bump) untracks again.
	if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	if n := m.TargetCount(); n != 1 {
		t.Fatalf("re-dial did not re-track: %d targets", n)
	}
	d.Invalidate()
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("Invalidate left %d targets tracked", n)
	}

	// And Close unsubscribes + untracks whatever is left.
	if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("Close left %d targets tracked", n)
	}
}

// TestMonitorSharedByTwoDialers: the shared-plane contract end to end —
// one monitor, two dialers, refcounted tracking, probe outcomes fanned out
// to both selectors.
func TestMonitorSharedByTwoDialers(t *testing.T) {
	_, client, remote := dialWorld(t)
	m := client.NewMonitor(pan.MonitorOptions{BaseInterval: time.Second})
	ls1, ls2 := pan.NewLatencySelector(), pan.NewLatencySelector()
	d1 := client.NewDialer(pan.DialOptions{Selector: ls1, ServerName: "dialer.server", Monitor: m})
	d2 := client.NewDialer(pan.DialOptions{Selector: ls2, ServerName: "dialer.server", Monitor: m})

	if _, _, err := d1.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	if n := m.TargetCount(); n != 1 {
		t.Fatalf("shared destination counted %d times", n)
	}

	// One deterministic probe sweep feeds BOTH dialers' selectors.
	m.RunRound()
	paths := client.Paths(remote.IA)
	for i, ls := range []*pan.LatencySelector{ls1, ls2} {
		for _, p := range paths {
			h, ok := healthFor(ls, p.Fingerprint())
			if !ok || h.RTT <= 0 {
				t.Fatalf("dialer %d selector missing probe RTT for %s", i+1, p)
			}
		}
	}

	// The first Close releases one reference; the destination stays probed
	// for the surviving dialer.
	d1.Close()
	if n := m.TargetCount(); n != 1 {
		t.Fatalf("first Close dropped the shared destination (%d targets)", n)
	}
	d2.Close()
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("last Close left %d targets", n)
	}
}

// TestDialerAdaptiveRaceWidth: with no telemetry the dialer races the full
// cap; once the monitor has fresh estimates the width follows the RTT
// spread (the default topology's fastest inter-ISD path leads the second by
// 50ms RTT — a clear leader, so the dialer stops racing entirely).
func TestDialerAdaptiveRaceWidth(t *testing.T) {
	_, client, remote := dialWorld(t)
	m := client.NewMonitor(pan.MonitorOptions{BaseInterval: 2 * time.Second})
	ls := pan.NewLatencySelector()
	d := client.NewDialer(pan.DialOptions{
		Selector:     ls,
		ServerName:   "dialer.server",
		RaceWidth:    3,
		AdaptiveRace: true,
		Monitor:      m,
	})
	defer d.Close()

	if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	dec := d.LastRace()
	if !dec.Adaptive || dec.Width != 3 || dec.Reason != "no-leader-telemetry" {
		t.Fatalf("first dial race decision = %+v, want full width without telemetry", dec)
	}

	m.RunRound()
	d.Invalidate()
	if _, _, err := d.Dial(context.Background(), remote, ""); err != nil {
		t.Fatal(err)
	}
	dec = d.LastRace()
	if !dec.Adaptive || dec.Width != 1 || dec.Reason != "clear-leader" {
		t.Fatalf("post-probe race decision = %+v, want width 1 (leader 50ms ahead of the field)", dec)
	}
}
