package pan_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"net/netip"

	"tango/internal/addr"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/segment"
	"tango/internal/topology"
)

func dialWorld(t *testing.T) (*world, *pan.Host, addr.UDPAddr) {
	t.Helper()
	w := newWorld(t)
	server := w.host(topology.AS211, "10.0.0.2")
	lis := echoServer(t, server, 7100, "dialer.server", w.pool)
	t.Cleanup(func() { lis.Close() })
	client := w.host(topology.AS111, "10.0.0.1")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 7100}
	return w, client, remote
}

func TestDialerReusesConnection(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	conn1, sel1, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn1 != conn2 {
		t.Fatal("second dial did not reuse the pooled connection")
	}
	if sel1.Path.Fingerprint() != sel2.Path.Fingerprint() {
		t.Fatal("reused connection must report the original selection")
	}
	if sel, ok := d.Cached(remote, ""); !ok || sel.Path.Fingerprint() != sel1.Path.Fingerprint() {
		t.Fatal("Cached() must expose the pooled selection")
	}
}

func TestDialerEpochBumpRedials(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	conn1, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	e0 := d.Epoch()
	d.SetSelector(pan.NewLatencySelector())
	if d.Epoch() != e0+1 {
		t.Fatalf("SetSelector must bump the epoch: %d -> %d", e0, d.Epoch())
	}
	if conn1.Err() == nil {
		t.Fatal("epoch bump must close pooled connections")
	}
	if _, ok := d.Cached(remote, ""); ok {
		t.Fatal("stale selection survived the epoch bump")
	}
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn1 {
		t.Fatal("dial after epoch bump returned the closed connection")
	}
	if sel2.Path == nil {
		t.Fatal("re-dial must re-select")
	}
}

func TestDialerDeadConnectionRedials(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	conn1, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	conn1.Close()
	conn2, _, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn1 {
		t.Fatal("dial returned a dead pooled connection")
	}
}

// recordingSelector wraps a fixed ranking and records Report calls.
type recordingSelector struct {
	mu      sync.Mutex
	ranking []pan.Candidate
	reports map[string][]pan.Outcome
}

func (r *recordingSelector) Rank(dst addr.IA, paths []*segment.Path) []pan.Candidate {
	return append([]pan.Candidate(nil), r.ranking...)
}

func (r *recordingSelector) Report(path *segment.Path, outcome pan.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reports == nil {
		r.reports = make(map[string][]pan.Outcome)
	}
	fp := path.Fingerprint()
	r.reports[fp] = append(r.reports[fp], outcome)
}

func TestDialerFailsOverToNextCandidate(t *testing.T) {
	_, client, remote := dialWorld(t)
	paths := client.Paths(topology.AS211)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// A reversed path cannot route from the client: the first candidate's
	// dial fails, and the dialer must fail over to the good second
	// candidate, reporting the failure into the selector.
	bad := paths[0].Reversed()
	good := paths[0]
	sel := &recordingSelector{ranking: []pan.Candidate{
		{Path: bad, Compliant: true},
		{Path: good, Compliant: true},
	}}
	d := client.NewDialer(pan.DialOptions{
		Selector:   sel,
		ServerName: "dialer.server",
		Timeout:    2 * time.Second, // virtual time: longer than a real handshake RTT, still fast
	})
	defer d.Close()

	conn, selection, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatalf("failover dial failed: %v", err)
	}
	if conn.Err() != nil {
		t.Fatal("failover connection is dead")
	}
	if selection.Path.Fingerprint() != good.Fingerprint() {
		t.Fatalf("failover picked %s, want the good candidate", selection.Path)
	}
	sel.mu.Lock()
	defer sel.mu.Unlock()
	badReports := sel.reports[bad.Fingerprint()]
	if len(badReports) == 0 || !badReports[0].Failed {
		t.Fatalf("bad path's failure was not reported: %+v", sel.reports)
	}
	goodReports := sel.reports[good.Fingerprint()]
	if len(goodReports) == 0 || goodReports[len(goodReports)-1].Failed {
		t.Fatalf("good path's success was not reported: %+v", sel.reports)
	}
}

func TestDialerReportFailureMarksPathDown(t *testing.T) {
	_, client, remote := dialWorld(t)
	ls := pan.NewLatencySelector()
	d := client.NewDialer(pan.DialOptions{Selector: ls, ServerName: "dialer.server"})
	defer d.Close()

	conn1, sel1, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	// A report against a LIVE pooled connection is a stale observation
	// (first reporter wins) and must not kill it.
	d.ReportFailure(remote, "")
	if conn1.Err() != nil {
		t.Fatal("ReportFailure killed a healthy pooled connection")
	}
	// The connection dies (transport teardown); a caller that saw the
	// round-trip error reports it.
	conn1.Close()
	d.ReportFailure(remote, "")
	// A response that completed before the failure must still annotate.
	if sel, ok := d.Cached(remote, ""); !ok || sel.Path.Fingerprint() != sel1.Path.Fingerprint() {
		t.Fatal("Cached must survive ReportFailure until re-dial or epoch bump")
	}
	conn2, sel2, err := d.Dial(context.Background(), remote, "")
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn1 {
		t.Fatal("dial after ReportFailure returned the dead connection")
	}
	if sel2.Path.Fingerprint() == sel1.Path.Fingerprint() {
		t.Fatal("next dial did not re-rank around the down path")
	}
	// A second report for the same death finds the healthy replacement and
	// must be a no-op.
	d.ReportFailure(remote, "")
	if conn2.Err() != nil {
		t.Fatal("stale ReportFailure killed the replacement connection")
	}
}

func TestDialerHonorsContextDeadline(t *testing.T) {
	w, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{ServerName: "dialer.server"})
	defer d.Close()

	// An already-expired deadline (on the virtual clock) must fail without
	// dialing.
	ctx, cancel := context.WithDeadline(context.Background(), w.clock.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := d.Dial(ctx, remote, ""); err == nil {
		t.Fatal("dial with expired deadline succeeded")
	}
}

func TestDialerStrictModeRefusesNonCompliant(t *testing.T) {
	_, client, remote := dialWorld(t)
	d := client.NewDialer(pan.DialOptions{
		Selector:   pan.NewPolicySelector(nil, policy.NewBlockGeofence(2)),
		Mode:       pan.Strict,
		ServerName: "dialer.server",
	})
	defer d.Close()
	if _, _, err := d.Dial(context.Background(), remote, ""); err == nil {
		t.Fatal("strict dial through blocked ISD succeeded")
	}
}
