package pan

import (
	"sort"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

// LinkTelemetry is the link-level view a HotspotSelector ranks over —
// implemented by Monitor. PathPenalty is the hotspot cost of routing over a
// path (zero when no tracked link on it runs hot).
type LinkTelemetry interface {
	PathPenalty(p *segment.Path) time.Duration
}

// HotspotSelector ranks paths by observed latency PLUS the hotspot penalty
// of the links they traverse (cf. "Finding Route Hotspots in Large Labeled
// Networks", PAPERS.md): a path whose end-to-end average still looks fine
// but which crosses a high-variance shared link is demoted below a slightly
// slower path with stable links.
//
// This is the ranking a plain LatencySelector cannot express: end-to-end
// EWMA averages congestion away, while the link decomposition localizes it
// — two paths degrading together indict the link they share, and the
// selector routes around that link for both.
//
// Latency bookkeeping mirrors LatencySelector (metadata until observations
// arrive, then EWMA of reported samples); every path is considered
// compliant, so compose with PolicySelector/PinnedSelector for policy.
type HotspotSelector struct {
	health
	links LinkTelemetry

	mu       sync.Mutex
	observed map[string]time.Duration // fingerprint → EWMA RTT
}

// NewHotspotSelector builds a hotspot-aware selector over a link-telemetry
// source, typically the host's Monitor. A nil source degrades to plain
// latency ranking.
func NewHotspotSelector(links LinkTelemetry) *HotspotSelector {
	return &HotspotSelector{links: links, observed: make(map[string]time.Duration)}
}

// latencyOf returns the latency half of the ranking key.
func (s *HotspotSelector) latencyOf(p *segment.Path) time.Duration {
	if obs, ok := s.observed[p.Fingerprint()]; ok {
		return obs
	}
	// Metadata latency is one-way; scale to RTT so metadata and observed
	// samples rank on comparable units.
	return 2 * p.Meta.Latency
}

// Rank implements Selector: ascending latency + hotspot penalty, stable on
// network order, down paths demoted last.
func (s *HotspotSelector) Rank(dst addr.IA, paths []*segment.Path) []Candidate {
	type keyed struct {
		c     Candidate
		score time.Duration
	}
	ks := make([]keyed, len(paths))
	s.mu.Lock()
	for i, p := range paths {
		ks[i] = keyed{Candidate{Path: p, Compliant: true}, s.latencyOf(p)}
	}
	s.mu.Unlock()
	if s.links != nil {
		// Penalties are computed outside s.mu: the telemetry source takes
		// its own locks.
		for i := range ks {
			ks[i].score += s.links.PathPenalty(ks[i].c.Path)
		}
	}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].score < ks[j].score })
	cands := make([]Candidate, len(ks))
	for i, k := range ks {
		cands[i] = k.c
	}
	return s.demote(cands)
}

// Report implements Selector: failures demote, latency samples update the
// path's EWMA (α = 1/4, the TCP SRTT gain).
func (s *HotspotSelector) Report(path *segment.Path, outcome Outcome) {
	s.report(path, outcome)
	if path == nil || outcome.Failed || outcome.Latency <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := path.Fingerprint()
	if prev, ok := s.observed[fp]; ok {
		s.observed[fp] = prev - prev/4 + outcome.Latency/4
	} else {
		s.observed[fp] = outcome.Latency
	}
}

// ReportBatch implements BatchSink: one health lock and one EWMA lock for
// the whole drained batch, mirroring LatencySelector.ReportBatch.
func (s *HotspotSelector) ReportBatch(reports []SampleReport) {
	s.reportBatch(reports)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range reports {
		if r.Path == nil || r.Outcome.Failed || r.Outcome.Latency <= 0 {
			continue
		}
		fp := r.Path.Fingerprint()
		if prev, ok := s.observed[fp]; ok {
			s.observed[fp] = prev - prev/4 + r.Outcome.Latency/4
		} else {
			s.observed[fp] = r.Outcome.Latency
		}
	}
}

// PathHealth implements HealthExporter: every path with an RTT observation
// or an unresolved failure.
func (s *HotspotSelector) PathHealth() []PathHealth {
	s.mu.Lock()
	observed := make([]PathHealth, 0, len(s.observed))
	for fp, rtt := range s.observed {
		observed = append(observed, PathHealth{Fingerprint: fp, RTT: rtt})
	}
	s.mu.Unlock()
	return mergePathHealth(observed, s.healthView())
}
