package pan

import (
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
	"tango/internal/squic"
)

// ProbeFunc measures one round trip to remote over path, bounded by
// timeout. It returns the observed RTT, or an error when the path did not
// answer in time.
type ProbeFunc func(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error)

// Scheduling defaults of the telemetry plane.
const (
	// DefaultProbeInterval is the base per-path probe interval.
	DefaultProbeInterval = 3 * time.Second
	// DefaultProbeBudget is the global probes-per-second cap shared by all
	// paths a Monitor tracks: a proxy serving thousands of origins
	// stretches per-path intervals instead of flooding the network.
	DefaultProbeBudget = 32.0
)

// MonitorOptions parameterizes a Monitor. The zero value gets sensible
// defaults from NewMonitor.
type MonitorOptions struct {
	// BaseInterval is the per-path probe interval for a path of ordinary
	// stability (default DefaultProbeInterval). Churn adaptation moves each
	// path's actual interval between MinInterval and MaxInterval around
	// this base.
	BaseInterval time.Duration
	// MinInterval bounds how fast an unstable path is probed (default
	// BaseInterval/4).
	MinInterval time.Duration
	// MaxInterval bounds how lazily a rock-stable (or repeatedly failing)
	// path is probed (default 4*BaseInterval).
	MaxInterval time.Duration
	// Timeout caps one probe (default: BaseInterval, at most squic's
	// default handshake timeout) so a dead path can never stall its own
	// schedule indefinitely.
	Timeout time.Duration
	// ProbeBudget is the global probes/sec cap across every tracked path
	// (default DefaultProbeBudget; negative = uncapped). When the per-path
	// intervals would exceed the budget, every interval is floored at
	// tracked-paths/budget seconds.
	ProbeBudget float64
	// Probe overrides the measurement. Host.NewMonitor defaults it to a
	// minimal squic handshake against the tracked server (one round trip
	// on the wire); tests inject deterministic fakes.
	Probe ProbeFunc
	// Shards overrides how many destination shards the monitor's state is
	// split into (rounded up to a power of two; default: GOMAXPROCS rounded
	// up, capped at 64). Shard choice never changes behavior — only lock
	// contention — and exists as a knob so tests can pin the shard count on
	// both sides of the hash (1 and many).
	Shards int
	// IngestRing overrides the per-shard passive-sample ring capacity
	// (rounded up to a power of two; default 256). Smaller rings coalesce
	// or drop sooner under bursts; they never block a producer.
	IngestRing int
	// DirectIngest disables the per-shard ingest rings: Observe takes the
	// shard lock and applies the sample synchronously, the pre-ring
	// behavior. The contended-ingest benchmark uses this as its baseline;
	// it is not meant for production configurations.
	DirectIngest bool
}

// PathTelemetry is one tracked path's live probe-derived state, the raw
// material for adaptive racing and churn-aware scheduling.
type PathTelemetry struct {
	Fingerprint string
	// RTT and Dev are the EWMA round-trip estimate and its EWMA absolute
	// deviation (Jacobson-style, gains 1/4).
	RTT time.Duration
	Dev time.Duration
	// Samples counts successful measurements ingested so far — active
	// probes plus passive samples.
	Samples int
	// PassiveSamples is how many of Samples were zero-cost passive
	// observations from live traffic (Monitor.Observe) rather than active
	// probes.
	PassiveSamples int
	// Down marks an unresolved probe failure.
	Down bool
	// Age is the time since the path was last probed (success or failure).
	Age time.Duration
	// Interval is the path's current churn-adapted probe interval.
	Interval time.Duration
	// Fresh reports whether the telemetry is recent relative to the path's
	// own schedule (Age within two intervals): stale estimates must not
	// justify narrow racing.
	Fresh bool
	// Imported marks telemetry that came from a peer's snapshot
	// (ImportLinks) and has not yet been confirmed by a local sample: a
	// prior, which the first live measurement replaces outright.
	Imported bool
}

// LinkStat is the congestion estimate of one inter-AS link, derived by
// decomposing end-to-end path probes. Congestion is the minimum observed
// excess RTT (over the paths' metadata baseline) among all tracked paths
// crossing the link — boolean-tomography style, so a link is only blamed
// when EVERY path crossing it runs hot — and Dev is the deviation of that
// minimal series, the instability signal HotspotSelector penalizes.
type LinkStat struct {
	A, B       addr.IA       // link endpoints, canonical order
	Congestion time.Duration // min EWMA excess RTT across crossing paths
	Dev        time.Duration // EWMA absolute deviation of the minimal series
	Sharers    int           // tracked paths currently crossing the link
	Age        time.Duration // time since the freshest underlying sample
}

// linkKey identifies an inter-AS link independent of direction.
type linkKey struct{ a, b addr.IA }

func canonicalLink(x, y addr.IA) linkKey {
	if y.ISD < x.ISD || (y.ISD == x.ISD && y.AS < x.AS) {
		x, y = y, x
	}
	return linkKey{a: x, b: y}
}

// pathLinks enumerates the inter-AS links of a path in travel order.
func pathLinks(p *segment.Path) []linkKey {
	out := make([]linkKey, 0, len(p.Hops))
	for i := 1; i < len(p.Hops); i++ {
		if p.Hops[i-1].IA != p.Hops[i].IA {
			out = append(out, canonicalLink(p.Hops[i-1].IA, p.Hops[i].IA))
		}
	}
	return out
}

// excessSeries is the EWMA of one path's excess RTT as seen across one link.
type excessSeries struct {
	mean    time.Duration
	dev     time.Duration
	samples int
	last    time.Time
}

func (s *excessSeries) ingest(x time.Duration, now time.Time) {
	if s.samples == 0 {
		s.mean = x
	} else {
		diff := x - s.mean
		if diff < 0 {
			diff = -diff
		}
		s.dev = s.dev - s.dev/4 + diff/4
		s.mean = s.mean - s.mean/4 + x/4
	}
	s.samples++
	s.last = now
}

// monTarget is one refcounted destination whose paths are probed.
type monTarget struct {
	remote     addr.UDPAddr
	serverName string
	refs       int
	// activeRefs counts the trackers that want ACTIVE probing. A target
	// whose refs are all passive (TrackPassive — e.g. a server tracking the
	// clients it serves) accepts passive samples and retains telemetry but
	// never puts its paths on the probe schedule: clients are not servers,
	// and a handshake probe at one could only burn budget on timeouts.
	activeRefs int
}

// SampleSplit is a destination's telemetry sample count split by origin:
// zero-cost passive observations from live traffic versus active probes
// spent from the budget.
type SampleSplit struct {
	Passive int `json:"passive"`
	Probes  int `json:"probes"`
}

// monEntry is the per-path telemetry and schedule state. In-flight probe
// tracking lives in monShard.inflight, NOT here: entries can be pruned and
// re-created (by fingerprint) while a probe is still in flight, and a flag
// on the entry object would then latch or clear the wrong incarnation.
type monEntry struct {
	path    *segment.Path
	targets map[string]*monTarget // target keys this path serves
	// links memoizes pathLinks(path) — the hop sequence is fixed for a
	// fingerprint, and rebuilding the slice was the one allocation left on
	// the per-sample ingest path.
	links []linkKey
	// seriesRefs memoizes the entry's per-link excess series pointers
	// (sh.links[lk][fp] for each lk in links), valid while seriesGen
	// matches the shard's generation counter — the double map lookup per
	// link per sample was the next cost on the ingest path once batching
	// amortized the lock.
	seriesRefs []*excessSeries
	seriesGen  uint64

	rtt, dev   time.Duration
	samples    int
	passive    int // how many of samples came from Observe
	lastSample time.Time
	// lastPassive is when Observe last fed this path; the wheel fire skips
	// the active probe while it is younger than the effective interval.
	lastPassive time.Time
	down        bool
	failures    int
	// prior marks telemetry imported from a peer's snapshot with no local
	// confirmation yet: the first live sample REPLACES it (reset to a first
	// sample) instead of blending — live samples override imports.
	prior bool
	// passiveTotal/probeTotal are CUMULATIVE sample counts (passive
	// observations vs probe attempts, failures included) that survive the
	// prior-replacement reset above. TargetSamples sums them over a
	// destination's entries — per-entry accounting keeps passive ingest
	// O(links), not O(destinations sharing the path), which is the
	// difference at a million origins behind a handful of ASes.
	passiveTotal int
	probeTotal   int

	interval time.Duration
	seq      uint64 // reschedule counter, varies the jitter
	// sched is the entry's pending timing-wheel deadline (nil = none). Fire
	// validates node identity against this field, so a stale node — from a
	// pruned entry, a cancelled reschedule, or a Stop→Start cycle — can
	// only ever no-op.
	sched *wheelNode
}

// monShard is one destination shard: a slice of the monitor keyed by the
// fnv hash of the destination IA. The IA — not the full target key — is the
// shard hash because it is the one component every tracker of a path
// shares: a path's entry and ALL targets it serves (they are, by
// construction, destinations in the path's Dst AS) land in the same shard,
// so every invariant the un-sharded monitor maintained under one lock still
// holds under exactly one shard lock, and Observe on the squic ack hot path
// touches a single shard.
type monShard struct {
	mu      sync.Mutex //lint:lockorder panshard before panwheel
	targets map[string]*monTarget
	entries map[string]*monEntry // path fingerprint → state
	// byTarget indexes each target's entries so Track/Untrack and path-set
	// reconciliation cost O(paths of that target), not O(all entries).
	byTarget map[string]map[string]*monEntry
	// inflight marks fingerprints with a probe currently on the wire, at
	// most one per path. Shard-level (not per-entry) so a probe draining
	// across entry pruning/re-creation — or across a Stop→Start cycle —
	// always clears exactly its own mark and can never leave a re-created
	// entry latched out of the schedule.
	inflight map[string]bool
	// links holds the shard's share of the link excess series: the series
	// fed by THIS shard's entries. A link crossed by paths of several
	// destination ASes has series in several shards; the cross-shard
	// aggregation in linkCacheLocked merges them (min-of-mins is exact).
	// Keeping the series with the shard keeps sample ingest single-lock.
	links map[linkKey]map[string]*excessSeries
	// gen invalidates the entries' memoized seriesRefs. Bumped (under mu)
	// by everything that deletes an excessSeries — pruning and the
	// aggregation rebuild's stale-series sweep.
	gen uint64
	// applied/untracked/batches are the shard's drain-side ingest stats,
	// maintained under mu (the ring's own counters are atomics).
	applied   uint64
	untracked uint64
	batches   uint64

	// ring buffers passive samples OUTSIDE the shard lock: Observe pushes
	// lock-free, drainShard applies a whole batch under ONE mu
	// acquisition. nil when MonitorOptions.DirectIngest is set.
	ring *sampleRing
	// draining is the flat-combining token: whoever CASes it false→true
	// drains the ring for everybody (producers that lose the CAS leave
	// their sample for the winner). Strictly outside mu — the holder
	// acquires mu, never the reverse.
	draining atomic.Bool
	// drainScratch/reportScratch are reused batch buffers, owned by the
	// draining-token holder (NOT guarded by mu).
	drainScratch  []sampleRec
	reportScratch []SampleReport
}

// Monitor is the shared telemetry plane below the selectors: ONE monitor per
// host schedules probes for every destination any of its dialers tracks,
// measures per-path RTT, and decomposes the measurements into link-level
// congestion estimates.
//
// Scheduling, per the paper's proxy deployment concern, is per PATH rather
// than per round: every tracked path carries its own next-probe deadline
// with a deterministic phase jitter (so a proxy serving thousands of origins
// never emits synchronized probe bursts) and a churn-adaptive interval —
// high EWMA RTT deviation shortens the interval toward MinInterval, a flat
// series stretches it toward MaxInterval — under a global probes/sec budget.
// Deadlines live on a shared timing wheel (ONE armed clock timer per
// monitor), not on per-path timers, so scheduling stays O(1) per reschedule
// at 100k+ tracked paths.
//
// State is sharded by destination AS: tracking, telemetry, in-flight marks,
// and link-series ingest for a destination all live under its shard's lock,
// so passive samples for different destinations ingest concurrently.
// Cross-shard views (LinkStats, PathPenalty, the budget floor) aggregate —
// the link snapshot under its own read-mostly lock with a dirty flag, the
// schedulable-path count as an atomic counter.
//
// Destinations are tracked with reference counts: several Dialers share one
// Monitor, and a destination stops being probed only when the LAST tracker
// untracks it. Probe outcomes fan out to every subscribed sink (typically
// each dialer's active selector), and the link-level series feed
// HotspotSelector and the adaptive race-width adviser.
//
// Active probes are only half the input: Observe ingests zero-cost passive
// RTT samples skimmed off live traffic (pooled squic connections' ack RTTs,
// proxied requests' first-byte times) through the same pipeline, and a
// scheduled probe is skipped whenever a passive sample landed within the
// path's current interval — destinations with traffic keep themselves
// fresh for free, and the probe budget concentrates on the idle ones.
//
// All scheduling runs on the injected Clock, so experiments drive the
// monitor deterministically on virtual time. Probes run in their own
// goroutines (never inside a timer callback, which would stall a virtual
// clock advance).
type Monitor struct {
	clock netsim.Clock
	paths func(addr.IA) []*segment.Path
	opts  MonitorOptions

	shards []*monShard // power-of-two length; indexed by fnv(dst IA)
	wheel  *probeWheel

	// active counts entries on the probe schedule across all shards, kept
	// as an atomic so the budget floor costs one load — no lock — wherever
	// an effective interval is computed.
	active atomic.Int64
	// started gates the schedule. Atomic (not under any one shard's lock)
	// because fire, probe drain, and Start/Stop consult it from different
	// shards.
	started atomic.Bool

	// linkMu guards the cross-shard AGGREGATED link view — the memoized
	// LinkStats snapshot, its by-key map (PathPenalty's lookup table), and
	// the imported priors. Lock order: linkMu → shard.mu (the aggregation
	// rebuild walks the shards); shard code never takes linkMu — the hot
	// ingest path invalidates the aggregate with the linkDirty atomic
	// instead, so one link lock can never serialize per-sample ingest.
	linkMu sync.Mutex //lint:lockorder panlink before panshard
	// priors are link congestion estimates imported from peers' snapshots
	// (ImportLinks). They decay with age and only ever fill gaps: a link
	// with live local series ignores its prior entirely.
	priors map[linkKey]*linkPrior
	// linkCache memoizes the sorted cross-shard LinkStats snapshot and its
	// by-key view. Invalidated by the linkDirty flag (set on sample ingest
	// and pruning) and expired after MaxInterval so age-based series expiry
	// still lands without an ingest. LinkStats is called per gossip round
	// and per stats scrape — re-aggregating and re-sorting the full link
	// set on each call was measurable waste.
	linkCache    []LinkStat
	linkCacheMap map[linkKey]LinkStat
	linkCacheAt  time.Time
	linkDirty    atomic.Bool

	// sinkMu guards sink registration; the fan-out list itself is published
	// as an atomic snapshot so per-sample fan-out is a single load.
	// Rebuilds always allocate a FRESH slice, so callers may iterate a
	// loaded snapshot outside every lock.
	sinkMu   sync.Mutex //lint:lockorder pansink
	sinks    map[int]monSink
	nextSink int
	sinkList atomic.Pointer[[]monSink]
}

// SampleReport is one applied sample in a batched sink fan-out.
type SampleReport struct {
	Path    *segment.Path
	Outcome Outcome
}

// BatchSink receives one call per drained ingest batch instead of one per
// sample. Selectors that implement it amortize their own locks across the
// batch; per-sample sinks registered with Subscribe are adapted
// transparently. The reports slice is reused between batches — a sink
// must not retain it past the call.
type BatchSink interface {
	ReportBatch(reports []SampleReport)
}

// BatchSinkFunc adapts a function to BatchSink.
type BatchSinkFunc func(reports []SampleReport)

// ReportBatch implements BatchSink.
func (f BatchSinkFunc) ReportBatch(reports []SampleReport) { f(reports) }

// funcSink adapts a per-sample sink to BatchSink for the batched drain
// fan-out.
type funcSink func(*segment.Path, Outcome)

func (f funcSink) ReportBatch(reports []SampleReport) {
	for _, r := range reports {
		f(r.Path, r.Outcome)
	}
}

// monSink is one subscribed sink in both shapes: batch is always set and
// carries batched fan-out; fn is set only for per-sample subscribers, so
// the single-sample paths (probes, direct ingest) can call them without
// building a one-element batch.
type monSink struct {
	fn    func(*segment.Path, Outcome)
	batch BatchSink
}

// defaultShardCount is the GOMAXPROCS-derived power-of-two shard count.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n > 64 {
		n = 64
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	return pow
}

// NewMonitor builds a monitor from its parts: a clock, a path source (what
// Host.Paths provides), and options. Most callers want Host.NewMonitor,
// which wires the default squic-handshake probe.
func NewMonitor(clock netsim.Clock, paths func(addr.IA) []*segment.Path, opts MonitorOptions) *Monitor {
	if opts.BaseInterval <= 0 {
		opts.BaseInterval = DefaultProbeInterval
	}
	if opts.MinInterval <= 0 {
		opts.MinInterval = opts.BaseInterval / 4
	}
	if opts.MaxInterval <= 0 {
		opts.MaxInterval = 4 * opts.BaseInterval
	}
	if opts.MaxInterval < opts.BaseInterval {
		opts.MaxInterval = opts.BaseInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = opts.BaseInterval
		if opts.Timeout > squic.DefaultHandshakeTimeout {
			opts.Timeout = squic.DefaultHandshakeTimeout
		}
	}
	if opts.ProbeBudget == 0 {
		opts.ProbeBudget = DefaultProbeBudget
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultShardCount()
	}
	shardCount := 1
	for shardCount < opts.Shards {
		shardCount <<= 1
	}
	opts.Shards = shardCount
	if opts.IngestRing <= 0 {
		opts.IngestRing = defaultIngestRing
	}
	m := &Monitor{
		clock:  clock,
		paths:  paths,
		opts:   opts,
		shards: make([]*monShard, shardCount),
		priors: make(map[linkKey]*linkPrior),
		sinks:  make(map[int]monSink),
	}
	for i := range m.shards {
		m.shards[i] = &monShard{
			targets:  make(map[string]*monTarget),
			entries:  make(map[string]*monEntry),
			byTarget: make(map[string]map[string]*monEntry),
			inflight: make(map[string]bool),
			links:    make(map[linkKey]map[string]*excessSeries),
		}
		if !opts.DirectIngest {
			m.shards[i].ring = newSampleRing(opts.IngestRing)
		}
	}
	// Wheel granularity: fine enough relative to MinInterval (1/16th) that
	// slot quantization never visibly coarsens the phase jitter, coarse
	// enough that a tick amortizes many deadlines.
	slotW := opts.MinInterval / 16
	if slotW < time.Millisecond {
		slotW = time.Millisecond
	}
	m.wheel = newProbeWheel(clock, slotW, m.wheelFire)
	// Every wheel tick also drains the ingest rings, so buffered samples
	// land even when no producer or reader comes by to drain them.
	m.wheel.onTick = m.drainAll
	return m
}

// NewMonitor builds the host's telemetry plane whose default probe is a
// minimal squic handshake against the tracked server — one round trip on
// the wire, closed immediately after.
func (h *Host) NewMonitor(opts MonitorOptions) *Monitor {
	if opts.Probe == nil {
		opts.Probe = h.handshakeProbe
	}
	return NewMonitor(h.clock, h.Paths, opts)
}

// HandshakeProbe returns the host's default active probe — the measurement
// Host.NewMonitor installs when MonitorOptions.Probe is unset. Exported so
// scenario harnesses can wrap it (e.g. to count probes per destination)
// while keeping the real on-the-wire handshake cost.
func (h *Host) HandshakeProbe() ProbeFunc { return h.handshakeProbe }

// handshakeProbe measures a path by completing (and immediately closing) a
// squic handshake: exactly one round trip on the wire, with the server
// proving its identity, so a probe "success" means the path really carries
// application traffic end to end.
func (h *Host) handshakeProbe(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
	sock, err := h.stack.Listen(0)
	if err != nil {
		return 0, err
	}
	start := h.clock.Now()
	conn, err := squic.Dial(sock, remote, path, serverName, &squic.Config{
		Clock:            h.clock,
		Pool:             h.pool,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		return 0, err
	}
	rtt := h.clock.Since(start)
	conn.Close()
	return rtt, nil
}

func targetKey(remote addr.UDPAddr, serverName string) string {
	return remote.String() + "|" + serverName
}

// shardFor maps a destination IA to its shard: inline FNV-1a over the
// packed ISD-AS, masked to the power-of-two shard count.
func (m *Monitor) shardFor(ia addr.IA) *monShard {
	if len(m.shards) == 1 {
		return m.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	v := uint64(ia.ISD)<<48 | uint64(ia.AS)&0xFFFFFFFFFFFF
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return m.shards[h&uint64(len(m.shards)-1)]
}

// Track adds a destination to the probe set, reference-counted: a
// destination tracked by several dialers is probed once, and keeps being
// probed until every tracker has untracked it.
func (m *Monitor) Track(remote addr.UDPAddr, serverName string) {
	m.track(remote, serverName, true)
}

// TrackPassive adds a destination for PASSIVE telemetry only: its paths get
// entries (so Observe accepts samples for them) but never join the probe
// schedule, no matter whether the monitor is started. This is how a
// server-side plane tracks the clients it serves — safe to share a started
// dialer-side monitor with. A destination tracked both ways is probed as
// long as at least one active tracker remains.
func (m *Monitor) TrackPassive(remote addr.UDPAddr, serverName string) {
	m.track(remote, serverName, false)
}

func (m *Monitor) track(remote addr.UDPAddr, serverName string, active bool) {
	sh := m.shardFor(remote.IA)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := targetKey(remote, serverName)
	tgt := sh.targets[key]
	if tgt == nil {
		tgt = &monTarget{remote: remote, serverName: serverName}
		sh.targets[key] = tgt
	}
	// Per-entry schedulability BEFORE the ref change, so a passive→active
	// upgrade can see which entries just became schedulable.
	wasSched := make(map[string]bool, len(sh.byTarget[key]))
	for fp, e := range sh.byTarget[key] {
		wasSched[fp] = entrySchedulable(e)
	}
	tgt.refs++
	if active {
		tgt.activeRefs++
	}
	if tgt.refs == 1 {
		m.pruneShardLocked(sh)
		m.syncTargetLocked(sh, key, tgt)
		return
	}
	if active && tgt.activeRefs == 1 {
		// Upgraded from passive-only: existing entries join the schedule.
		for fp, e := range sh.byTarget[key] {
			if !wasSched[fp] && entrySchedulable(e) {
				m.active.Add(1)
				m.scheduleLocked(sh, fp, e, true)
			}
		}
	}
}

// Untrack drops one active-tracking reference to a destination; at zero
// references its paths leave the probe schedule (paths still serving
// another tracked destination stay).
func (m *Monitor) Untrack(remote addr.UDPAddr, serverName string) {
	m.untrack(remote, serverName, true)
}

// UntrackPassive drops one TrackPassive reference.
func (m *Monitor) UntrackPassive(remote addr.UDPAddr, serverName string) {
	m.untrack(remote, serverName, false)
}

func (m *Monitor) untrack(remote addr.UDPAddr, serverName string, active bool) {
	sh := m.shardFor(remote.IA)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := targetKey(remote, serverName)
	tgt := sh.targets[key]
	if tgt == nil {
		return
	}
	// Per-entry schedulability BEFORE the ref change: the active count was
	// tallied under the old refs, so transitions must be judged against
	// them.
	wasSched := make(map[string]bool, len(sh.byTarget[key]))
	for fp, e := range sh.byTarget[key] {
		wasSched[fp] = entrySchedulable(e)
	}
	tgt.refs--
	if active && tgt.activeRefs > 0 {
		tgt.activeRefs--
	}
	if tgt.refs <= 0 {
		delete(sh.targets, key)
		for fp, e := range sh.byTarget[key] {
			delete(e.targets, key)
			if wasSched[fp] && !entrySchedulable(e) {
				m.active.Add(-1)
				m.retireEntryLocked(e)
			}
		}
		delete(sh.byTarget, key)
		return
	}
	// Refs remain; an active→passive-only downgrade still takes entries
	// with no other active target off the schedule (telemetry kept).
	for fp, e := range sh.byTarget[key] {
		if wasSched[fp] && !entrySchedulable(e) {
			m.active.Add(-1)
			m.retireEntryLocked(e)
		}
	}
}

// entrySchedulable reports whether any of the entry's targets wants active
// probing — the condition for carrying a probe deadline.
func entrySchedulable(e *monEntry) bool {
	for _, t := range e.targets {
		if t.activeRefs > 0 {
			return true
		}
	}
	return false
}

// retireEntryLocked takes a path off the probe schedule while KEEPING its
// telemetry: tracking is scheduling, telemetry is knowledge — a destination
// evicted from a pool and re-dialed moments later must not restart from
// zero. Long-stale retired entries are pruned by pruneShardLocked.
func (m *Monitor) retireEntryLocked(e *monEntry) {
	if e.sched != nil {
		m.wheel.cancel(e.sched)
		e.sched = nil
	}
}

// pruneShardLocked drops the shard's retired entries — and link excess
// series — whose telemetry has gone stale beyond recall, bounding memory on
// long-lived monitors even when nothing ever queries LinkStats. Runs on
// each new destination Track in the shard, so churn itself drives the
// cleanup. (Imported priors are pruned by the aggregation rebuild, which
// owns them.)
func (m *Monitor) pruneShardLocked(sh *monShard) {
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	now := m.clock.Now()
	for fp, e := range sh.entries {
		if len(e.targets) == 0 && (e.lastSample.IsZero() || now.Sub(e.lastSample) > horizon) {
			delete(sh.entries, fp)
		}
	}
	for lk, series := range sh.links {
		for fp, s := range series {
			if now.Sub(s.last) > horizon {
				delete(series, fp)
			}
		}
		if len(series) == 0 {
			delete(sh.links, lk)
		}
	}
	sh.gen++ // series may have been deleted; memoized seriesRefs are stale
	m.markLinkDirty()
}

// markLinkDirty invalidates the aggregated link snapshot. Load-before-store
// keeps the hot path from write-bouncing a cache line every sample: the
// flag is usually already set.
func (m *Monitor) markLinkDirty() {
	if !m.linkDirty.Load() {
		m.linkDirty.Store(true)
	}
}

// syncTargetLocked reconciles the shard's entry set with the target's
// current paths: unseen paths get entries (and, when started, a
// phase-jittered first deadline), and entries this target referenced whose
// path the control plane no longer offers drop the reference — so path
// expiry and turnover retire defunct schedules instead of probing ghosts
// forever.
func (m *Monitor) syncTargetLocked(sh *monShard, key string, tgt *monTarget) {
	idx := sh.byTarget[key]
	if idx == nil {
		idx = make(map[string]*monEntry)
		sh.byTarget[key] = idx
	}
	current := make(map[string]bool)
	for _, p := range m.paths(tgt.remote.IA) {
		fp := p.Fingerprint()
		current[fp] = true
		e := sh.entries[fp]
		if e == nil {
			e = &monEntry{
				path:     p,
				targets:  make(map[string]*monTarget),
				interval: m.opts.BaseInterval,
			}
			sh.entries[fp] = e
		}
		wasSched := entrySchedulable(e)
		e.path = p
		e.targets[key] = tgt
		idx[fp] = e
		if !wasSched && entrySchedulable(e) {
			m.active.Add(1)
			m.scheduleLocked(sh, fp, e, true)
		}
	}
	for fp, e := range idx {
		if !current[fp] {
			delete(idx, fp)
			wasSched := entrySchedulable(e)
			delete(e.targets, key)
			if wasSched && !entrySchedulable(e) {
				m.active.Add(-1)
				m.retireEntryLocked(e)
			}
		}
	}
}

// TargetCount returns the number of distinct tracked destinations.
func (m *Monitor) TargetCount() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.targets)
		sh.mu.Unlock()
	}
	return n
}

// TrackedPaths returns the number of paths currently on the probe schedule
// (retired entries kept only for their telemetry don't count).
func (m *Monitor) TrackedPaths() int {
	return int(m.active.Load())
}

// Subscribe registers a probe-outcome sink — Outcome{Latency, Probe: true}
// on success, Failure (with Probe set) on timeout — and returns its
// unsubscribe function. A Dialer subscribes its active selector, so one
// monitor feeds every dialer sharing it.
func (m *Monitor) Subscribe(sink func(*segment.Path, Outcome)) (unsubscribe func()) {
	return m.subscribe(monSink{fn: sink, batch: funcSink(sink)})
}

// SubscribeBatch registers a batched sink: ONE ReportBatch call per
// drained ingest batch (and per probe outcome, as a one-element batch)
// instead of one callback per sample. Selectors that hold a lock per
// report want this — the batch amortizes it.
func (m *Monitor) SubscribeBatch(sink BatchSink) (unsubscribe func()) {
	return m.subscribe(monSink{batch: sink})
}

func (m *Monitor) subscribe(s monSink) (unsubscribe func()) {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	id := m.nextSink
	m.nextSink++
	m.sinks[id] = s
	m.rebuildSinksLocked()
	return func() {
		m.sinkMu.Lock()
		defer m.sinkMu.Unlock()
		delete(m.sinks, id)
		m.rebuildSinksLocked()
	}
}

// rebuildSinksLocked publishes a fresh id-ordered fan-out snapshot.
// Subscribe/unsubscribe are rare; per-sample fan-out just loads the
// pointer.
func (m *Monitor) rebuildSinksLocked() {
	ids := make([]int, 0, len(m.sinks))
	for id := range m.sinks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sinks := make([]monSink, 0, len(ids))
	for _, id := range ids {
		sinks = append(sinks, m.sinks[id])
	}
	m.sinkList.Store(&sinks)
}

// sinksSnapshot returns the current fan-out list; safe to iterate outside
// any lock (snapshots are immutable once published).
func (m *Monitor) sinksSnapshot() []monSink {
	if p := m.sinkList.Load(); p != nil {
		return *p
	}
	return nil
}

// fanOut delivers one sample to every sink: per-sample subscribers get
// their function called directly (no batch slice built), batch-only
// subscribers get a one-element batch.
func (m *Monitor) fanOut(path *segment.Path, outcome Outcome) {
	for _, s := range m.sinksSnapshot() {
		if s.fn != nil {
			s.fn(path, outcome)
			continue
		}
		s.batch.ReportBatch([]SampleReport{{Path: path, Outcome: outcome}})
	}
}

// Start arms the probe schedule: every tracked path gets a phase-jittered
// first deadline within one interval. Idempotent while running; callable
// again after Stop.
func (m *Monitor) Start() {
	if m.started.Swap(true) {
		return
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for fp, e := range sh.entries {
			m.scheduleLocked(sh, fp, e, true)
		}
		sh.mu.Unlock()
	}
}

// Stop cancels the probe schedule. Probes already in flight drain without
// reporting or rescheduling. Wheel nodes already collected by a tick in
// flight are fenced by the started flag and the per-entry node identity
// check, so a deadline can neither fire after Stop nor strand its entry
// out of a later Start's schedule.
func (m *Monitor) Stop() {
	m.started.Store(false)
	m.drainAll() // land buffered samples; telemetry survives a Stop
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.sched != nil {
				m.wheel.cancel(e.sched)
				e.sched = nil
			}
		}
		sh.mu.Unlock()
	}
	m.wheel.disarm()
}

// jitterHash folds a fingerprint and a sequence number into a uniform
// 0..999 bucket, the deterministic substitute for random phase jitter.
func jitterHash(fp string, seq uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(fp))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64() % 1000
}

// budgetFloor is the minimum per-path interval that keeps the global probe
// rate within ProbeBudget given the current tracked-path count. One atomic
// load — the sharded replacement for the old locked floor computation.
func (m *Monitor) budgetFloor() time.Duration {
	n := m.active.Load()
	if m.opts.ProbeBudget <= 0 || n == 0 {
		return 0
	}
	return time.Duration(float64(n) / m.opts.ProbeBudget * float64(time.Second))
}

// effectiveInterval is the interval the schedule actually honors: the
// churn-adapted interval, floored by the global probe budget.
func (m *Monitor) effectiveInterval(e *monEntry) time.Duration {
	iv := e.interval
	if floor := m.budgetFloor(); iv < floor {
		iv = floor
	}
	return iv
}

// scheduleLocked arms the entry's next probe on the timing wheel. The first
// deadline spreads paths uniformly across one interval (phase =
// hash(fingerprint)); later deadlines are the churn-adapted interval ±15%
// deterministic jitter, so phases never re-synchronize into bursts. Caller
// holds the entry's shard lock.
func (m *Monitor) scheduleLocked(sh *monShard, fp string, e *monEntry, first bool) {
	if !m.started.Load() || e.sched != nil || !entrySchedulable(e) {
		return
	}
	iv := m.effectiveInterval(e)
	var d time.Duration
	if first {
		// Phase offset in [iv/8, iv]: never immediate, never bursty.
		d = iv/8 + time.Duration(jitterHash(fp, 0))*(iv-iv/8)/1000
	} else {
		// iv scaled by a deterministic factor in [0.85, 1.15].
		d = iv*85/100 + time.Duration(jitterHash(fp, e.seq))*(iv*30/100)/1000
	}
	e.seq++
	n := &wheelNode{shard: sh, fp: fp}
	e.sched = n
	m.wheel.schedule(n, d)
}

// wheelFire runs inside the wheel tick (a clock timer callback) once per
// due deadline and must not block: it hands the probe to a goroutine. The
// node-identity check against e.sched drops stale deadlines — an entry
// rescheduled, retired, pruned, or cycled through Stop→Start since this
// node was armed.
func (m *Monitor) wheelFire(n *wheelNode) {
	sh := n.shard
	sh.mu.Lock()
	e := sh.entries[n.fp]
	if e == nil || e.sched != n {
		sh.mu.Unlock()
		return
	}
	e.sched = nil
	if !m.started.Load() {
		sh.mu.Unlock()
		return
	}
	if sh.inflight[n.fp] {
		// A manual round still has this path in flight; retry next interval.
		m.scheduleLocked(sh, n.fp, e, false)
		sh.mu.Unlock()
		return
	}
	if !e.lastPassive.IsZero() && m.clock.Since(e.lastPassive) < m.effectiveInterval(e) {
		// Probe suppression: live traffic measured this path within the
		// current interval, so the active probe would spend budget on
		// nothing — skip it and push the schedule. Deciding here (rather
		// than re-arming the deadline from Observe on every ack sample)
		// keeps the passive hot path free of scheduler churn; once traffic
		// stops, the very next deadline probes again.
		m.scheduleLocked(sh, n.fp, e, false)
		sh.mu.Unlock()
		return
	}
	sh.inflight[n.fp] = true
	sh.mu.Unlock()
	go m.probeEntry(sh, n.fp, true)
}

// probeEntry measures one path, ingests the outcome, reschedules, and fans
// the outcome out to the sinks. scheduled distinguishes background probes
// (which respect Stop and re-arm) from manual RunRound probes.
func (m *Monitor) probeEntry(sh *monShard, fp string, scheduled bool) {
	sh.mu.Lock()
	e := sh.entries[fp]
	if e == nil {
		// Pruned between fire and here; the mark MUST clear anyway — an
		// fp can be re-created by a later Track, and a leaked mark would
		// silence its schedule forever.
		delete(sh.inflight, fp)
		sh.mu.Unlock()
		return
	}
	var tgt *monTarget
	for _, t := range e.targets {
		// Only actively-tracked targets can answer a probe: passive-only
		// targets (a server's clients) have no server to handshake with.
		if t.activeRefs == 0 {
			continue
		}
		if tgt == nil || targetKey(t.remote, t.serverName) < targetKey(tgt.remote, tgt.serverName) {
			tgt = t
		}
	}
	path := e.path
	timeout := m.opts.Timeout
	sh.mu.Unlock()
	if tgt == nil {
		sh.mu.Lock()
		delete(sh.inflight, fp)
		sh.mu.Unlock()
		return
	}

	rtt, err := m.opts.Probe(tgt.remote, tgt.serverName, path, timeout)

	sh.mu.Lock()
	delete(sh.inflight, fp)
	e = sh.entries[fp]
	if e == nil {
		sh.mu.Unlock()
		return
	}
	outcome := m.ingestLocked(sh, e, rtt, err, false, m.clock.Now())
	if !outcome.Failed {
		m.markLinkDirty()
	}
	alive := !scheduled || m.started.Load()
	// Re-arm whenever the monitor is running and the entry has no pending
	// deadline — regardless of who launched this probe. A probe that was in
	// flight across a Stop→Start cycle (Start already armed a fresh
	// deadline) no-ops here; one that drained after the restart consumed
	// its deadline re-arms itself, so the path can never fall silently out
	// of the schedule.
	if m.started.Load() && entrySchedulable(e) {
		m.scheduleLocked(sh, fp, e, false)
	}
	sh.mu.Unlock()

	if !alive {
		return
	}
	m.fanOut(path, outcome)
	if scheduled {
		m.resyncEntryTargets(sh, fp)
	}
}

// resyncEntryTargets reconciles the path sets of the targets the probed
// entry serves, picking up paths that appeared (discovery, expiry
// turnover) and dropping ones the control plane withdrew — so long-running
// monitors follow the control plane without an explicit refresh call.
// Scoping the resync to the probed entry's own targets keeps the per-probe
// cost proportional to that destination, not to every origin the host
// serves.
func (m *Monitor) resyncEntryTargets(sh *monShard, fp string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[fp]
	if e == nil {
		return
	}
	keys := make([]string, 0, len(e.targets))
	for key := range e.targets {
		keys = append(keys, key)
	}
	for _, key := range keys {
		if tgt := sh.targets[key]; tgt != nil {
			m.syncTargetLocked(sh, key, tgt)
		}
	}
}

// ingestLocked folds one measurement — an active probe result or a passive
// traffic sample — into the entry's telemetry, adapts its interval to the
// observed churn, and attributes success excess to the traversed links.
// Probes and passive samples share this pipeline end to end; only the
// outcome marking (and the cumulative sample-origin counters) records the
// origin. Caller holds the entry's shard lock, supplies now (so a batched
// drain reads the clock once), and is responsible for markLinkDirty after
// its batch (once, not per sample). Returns the outcome to fan out.
func (m *Monitor) ingestLocked(sh *monShard, e *monEntry, rtt time.Duration, err error, passive bool, now time.Time) Outcome {
	e.lastSample = now
	if passive {
		e.passiveTotal++
	} else {
		e.probeTotal++
	}
	if err != nil {
		e.failures++
		e.down = true
		// Failure backoff: double toward MaxInterval so a mostly-dead path
		// set cannot consume the probe budget in timeouts.
		e.interval *= 2
		if e.interval > m.opts.MaxInterval {
			e.interval = m.opts.MaxInterval
		}
		return Outcome{Failed: true, Probe: true}
	}
	e.failures = 0
	e.down = false
	if e.prior {
		// The entry held only an imported prior; the first live measurement
		// replaces it outright rather than blending into a peer's estimate.
		e.prior = false
		e.samples, e.passive = 0, 0
		e.rtt, e.dev = 0, 0
	}
	if passive {
		e.passive++
		e.lastPassive = now
	}
	if e.samples == 0 {
		// Optimistic deviation start: a first sample carries no churn
		// evidence, and adaptive racing should not stay wide on a path
		// whose only observation is clean.
		e.rtt, e.dev = rtt, 0
	} else {
		diff := rtt - e.rtt
		if diff < 0 {
			diff = -diff
		}
		e.dev = e.dev - e.dev/4 + diff/4
		e.rtt = e.rtt - e.rtt/4 + rtt/4
	}
	e.samples++

	// Churn adaptation (cf. entropy-aware probing, PAPERS.md): deviation
	// large relative to the RTT → probe faster; a flat series → stretch the
	// interval and spend the budget elsewhere.
	switch {
	case e.dev*4 >= e.rtt && e.rtt > 0:
		e.interval = m.opts.MinInterval
	case e.dev*8 >= e.rtt && e.rtt > 0:
		e.interval = m.opts.BaseInterval / 2
		if e.interval < m.opts.MinInterval {
			e.interval = m.opts.MinInterval
		}
	case e.dev*32 <= e.rtt && e.samples >= 3:
		e.interval *= 2
		if e.interval > m.opts.MaxInterval {
			e.interval = m.opts.MaxInterval
		}
	default:
		e.interval = m.opts.BaseInterval
	}

	// Link attribution: the path's excess RTT over its metadata baseline is
	// recorded against every link it crosses (in this shard's series
	// store); LinkStats' min-across-paths later exonerates links that any
	// clean path also crosses.
	excess := rtt - 2*e.path.Meta.Latency
	if excess < 0 {
		excess = 0
	}
	for _, s := range m.linkSeriesLocked(sh, e) {
		s.ingest(excess, now)
	}
	if passive {
		return Outcome{Latency: rtt, Passive: true}
	}
	return Outcome{Latency: rtt, Probe: true}
}

// linkSeriesLocked returns the entry's per-link excess series, memoized on
// the entry and revalidated against the shard's deletion generation — the
// per-sample double map lookup (sh.links[lk][fp] per link) reduced to a
// slice walk. Caller holds the shard lock.
func (m *Monitor) linkSeriesLocked(sh *monShard, e *monEntry) []*excessSeries {
	if e.seriesRefs != nil && e.seriesGen == sh.gen {
		return e.seriesRefs
	}
	if e.links == nil {
		e.links = pathLinks(e.path)
	}
	fp := e.path.Fingerprint()
	refs := e.seriesRefs[:0]
	for _, lk := range e.links {
		series := sh.links[lk]
		if series == nil {
			series = make(map[string]*excessSeries)
			sh.links[lk] = series
		}
		s := series[fp]
		if s == nil {
			s = &excessSeries{}
			series[fp] = s
		}
		refs = append(refs, s)
	}
	if refs == nil {
		refs = []*excessSeries{} // 0-link path: keep the memo marker non-nil
	}
	e.seriesRefs, e.seriesGen = refs, sh.gen
	return refs
}

// Observe ingests one zero-cost RTT sample observed on live traffic over
// path — a pooled squic connection's ack RTT, a proxied request's
// time-to-first-byte. The sample flows through exactly the probe ingest
// pipeline (EWMA and deviation, churn-adaptive interval, link attribution,
// sink fan-out) but is marked Outcome{Probe: false, Passive: true} so
// use-driven selectors don't mistake ack cadence for request cadence.
//
// This is the squic ack hot path, and it is LOCK-FREE: the sample is
// pushed into the destination shard's bounded ingest ring (a few CASes,
// no heap allocation, overflow coalesces/drops rather than ever blocking
// an ack) and applied by the next drain — which the pushing goroutine
// itself usually performs immediately via the flat-combining token, so
// with no contention Observe keeps its synchronous semantics. Under
// contention, producers that lose the token leave their samples for the
// holder: ONE goroutine takes the shard lock once per batch, applies
// every sample (amortizing the lock, the clock read, the entry lookup,
// and the link dirty mark across the batch), and fans out one batched
// call per sink. Rings that nobody drains inline are swept by every
// wheel tick and flushed by every telemetry read.
//
// The budget saver: the sample stamps the path's lastPassive time, and the
// scheduled fire SKIPS the active probe (rescheduling only) while that
// stamp is younger than the path's effective interval. A destination with
// continuous traffic therefore keeps fresh telemetry while consuming
// (near-)zero probe budget, a tight ProbeBudget concentrates structurally
// on the destinations with no traffic to learn from, and — because the
// suppression decision lives at the (rare) fire, not here — the per-ack
// hot path never touches the scheduler. Samples for untracked paths are
// dropped at drain time: tracking is the scheduling contract, and passive
// data must not keep telemetry alive for paths nothing dials anymore.
func (m *Monitor) Observe(path *segment.Path, rtt time.Duration) {
	if path == nil || rtt <= 0 {
		return
	}
	sh := m.shardFor(path.Dst)
	if sh.ring == nil {
		m.observeDirect(sh, path, rtt)
		return
	}
	sh.ring.push(path, rtt)
	m.drainShard(sh)
}

// ObserveBatch ingests several passive samples observed on the same path —
// a squic connection's coalesced ack RTTs between flushes — pushing them
// all before one drain, so the whole burst lands in a single locked batch.
func (m *Monitor) ObserveBatch(path *segment.Path, rtts []time.Duration) {
	if path == nil || len(rtts) == 0 {
		return
	}
	sh := m.shardFor(path.Dst)
	if sh.ring == nil {
		for _, rtt := range rtts {
			if rtt > 0 {
				m.observeDirect(sh, path, rtt)
			}
		}
		return
	}
	// Flat-combining fast path: winning the drain token means no drain is
	// in flight, so the burst can apply directly under one shard lock and
	// skip the per-sample ring push/pop traffic entirely. The backlog (from
	// producers that lost the token earlier) drains first to keep rough
	// arrival order.
	if sh.draining.CompareAndSwap(false, true) {
		m.drainShardBatch(sh)
		m.ingestBatchFast(sh, path, rtts)
		sh.draining.Store(false)
		m.drainShard(sh) // pick up pushes that raced our token hold
		return
	}
	pushed := false
	for _, rtt := range rtts {
		if rtt > 0 {
			sh.ring.push(path, rtt)
			pushed = true
		}
	}
	if pushed {
		m.drainShard(sh)
	}
}

// ingestBatchFast applies a single-path burst under one shard-lock
// acquisition without routing it through the ring — the ObserveBatch fast
// path when the caller already holds the draining token. The samples still
// count as Enqueued so the ingest accounting identity holds.
func (m *Monitor) ingestBatchFast(sh *monShard, path *segment.Path, rtts []time.Duration) {
	n := uint64(0)
	for _, rtt := range rtts {
		if rtt > 0 {
			n++
		}
	}
	if n == 0 {
		return
	}
	sh.ring.enqueued.Add(n)
	sinks := m.sinksSnapshot()
	reports := sh.reportScratch[:0]
	now := m.clock.Now()
	sh.mu.Lock()
	sh.batches++
	e := sh.entries[path.Fingerprint()]
	if e == nil || len(e.targets) == 0 {
		sh.untracked += n
		sh.mu.Unlock()
		return
	}
	for _, rtt := range rtts {
		if rtt <= 0 {
			continue
		}
		outcome := m.ingestLocked(sh, e, rtt, nil, true, now)
		if len(sinks) > 0 {
			reports = append(reports, SampleReport{Path: path, Outcome: outcome})
		}
	}
	sh.applied += n
	m.markLinkDirty()
	sh.mu.Unlock()
	if len(reports) > 0 {
		for _, s := range sinks {
			s.batch.ReportBatch(reports)
		}
	}
	for i := range reports {
		reports[i] = SampleReport{}
	}
	sh.reportScratch = reports[:0]
}

// observeDirect is the pre-ring Observe body: one shard lock per sample,
// per-sample sink fan-out. Kept as the DirectIngest baseline the
// contended-ingest benchmark measures the rings against.
func (m *Monitor) observeDirect(sh *monShard, path *segment.Path, rtt time.Duration) {
	fp := path.Fingerprint()
	sh.mu.Lock()
	e := sh.entries[fp]
	if e == nil || len(e.targets) == 0 {
		sh.untracked++
		sh.mu.Unlock()
		return
	}
	outcome := m.ingestLocked(sh, e, rtt, nil, true, m.clock.Now())
	sh.applied++
	m.markLinkDirty()
	sh.mu.Unlock()
	m.fanOut(path, outcome)
}

// maxDrainRounds bounds how many drain batches one caller runs back to
// back when producers keep the ring non-empty — past this, leave the rest
// for the producers themselves (each Observe attempts a drain) or the
// next wheel tick.
const maxDrainRounds = 8

// drainShard flushes the shard's ingest ring via the flat-combining
// token. Losing the token CAS means some other goroutine is draining;
// its post-release re-check is guaranteed (sequentially consistent
// atomics: our push precedes our failed CAS, which precedes its release)
// to see our sample, so leaving is safe. Cheap when the ring is empty —
// two atomic loads.
func (m *Monitor) drainShard(sh *monShard) {
	if sh.ring == nil {
		return
	}
	for round := 0; round < maxDrainRounds; round++ {
		if sh.ring.empty() {
			return
		}
		if !sh.draining.CompareAndSwap(false, true) {
			return
		}
		m.drainShardBatch(sh)
		sh.draining.Store(false)
		// Re-check: a producer may have pushed while we held the token and
		// left on its failed CAS, counting on us (or the next wheel tick)
		// to pick the sample up.
	}
}

// drainAll flushes every shard's ring — the wheel-tick sweep and the
// read-path flush for cross-shard readers.
func (m *Monitor) drainAll() {
	for _, sh := range m.shards {
		m.drainShard(sh)
	}
}

// drainShardBatch applies everything currently in the shard's ring under
// ONE shard-lock acquisition, then fans the applied samples out as one
// batched call per sink. Caller holds the draining token; the scratch
// buffers belong to the token holder.
func (m *Monitor) drainShardBatch(sh *monShard) {
	batch := sh.drainScratch[:0]
	limit := len(sh.ring.slots)
	for len(batch) < limit {
		rec, ok := sh.ring.pop()
		if !ok {
			break
		}
		batch = append(batch, rec)
	}
	sh.drainScratch = batch
	if len(batch) == 0 {
		return
	}
	sinks := m.sinksSnapshot()
	reports := sh.reportScratch[:0]
	now := m.clock.Now()
	var lastPath *segment.Path
	var lastEntry *monEntry
	applied := 0
	sh.mu.Lock()
	sh.batches++
	for i := range batch {
		rec := &batch[i]
		// Consecutive samples for one path are the common shape (a
		// drained ack burst); resolve the entry once per run.
		e := lastEntry
		if rec.path != lastPath {
			e = sh.entries[rec.path.Fingerprint()]
			lastPath, lastEntry = rec.path, e
		}
		if e == nil || len(e.targets) == 0 {
			// Untracked (or untracked since it was enqueued): the sample
			// must not apply — tracking is the contract.
			sh.untracked++
			continue
		}
		outcome := m.ingestLocked(sh, e, rec.rtt, nil, true, now)
		applied++
		if len(sinks) > 0 {
			reports = append(reports, SampleReport{Path: rec.path, Outcome: outcome})
		}
	}
	sh.applied += uint64(applied)
	if applied > 0 {
		m.markLinkDirty()
	}
	sh.mu.Unlock()
	if len(reports) > 0 {
		for _, s := range sinks {
			s.batch.ReportBatch(reports)
		}
	}
	// Scratch reuse: clear the path pointers so retired paths aren't kept
	// reachable until the next burst overwrites them.
	for i := range batch {
		batch[i].path = nil
	}
	for i := range reports {
		reports[i] = SampleReport{}
	}
	sh.reportScratch = reports[:0]
}

// IngestStats is the monitor-wide accounting of the passive-sample ingest
// rings (all-time counts, summed over shards).
type IngestStats struct {
	// Enqueued counts samples pushed into the rings.
	Enqueued uint64 `json:"enqueued"`
	// Applied counts samples folded into telemetry (ring and direct).
	Applied uint64 `json:"applied"`
	// Coalesced counts overflow evictions superseded by a newer sample
	// for the same path; Dropped counts evictions that lost data.
	Coalesced uint64 `json:"coalesced"`
	Dropped   uint64 `json:"dropped"`
	// Untracked counts samples discarded at drain time because their path
	// had no tracked target (anymore).
	Untracked uint64 `json:"untracked"`
	// Batches counts locked drain batches — Applied/Batches is the
	// amortization factor.
	Batches uint64 `json:"batches"`
}

// IngestStats reports the ingest-ring accounting, flushing pending
// samples first so Enqueued == Applied+Coalesced+Dropped+Untracked when
// no producer is concurrently mid-push.
func (m *Monitor) IngestStats() IngestStats {
	m.drainAll()
	var st IngestStats
	for _, sh := range m.shards {
		if sh.ring != nil {
			st.Enqueued += sh.ring.enqueued.Load()
			st.Coalesced += sh.ring.coalesced.Load()
			st.Dropped += sh.ring.dropped.Load()
		}
		sh.mu.Lock()
		st.Applied += sh.applied
		st.Untracked += sh.untracked
		st.Batches += sh.batches
		sh.mu.Unlock()
	}
	return st
}

// TargetSamples reports a tracked destination's telemetry sample split —
// how many zero-cost passive samples versus active probes have fed its
// paths. ok is false for destinations the monitor does not track. A sample
// on a path serving several destinations credits each of them (they all
// consume its freshness): the split sums the cumulative per-entry counters
// over the destination's current paths.
func (m *Monitor) TargetSamples(remote addr.UDPAddr, serverName string) (SampleSplit, bool) {
	sh := m.shardFor(remote.IA)
	m.drainShard(sh) // flush buffered samples so the split is current
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := targetKey(remote, serverName)
	if sh.targets[key] == nil {
		return SampleSplit{}, false
	}
	var split SampleSplit
	for _, e := range sh.byTarget[key] {
		split.Passive += e.passiveTotal
		split.Probes += e.probeTotal
	}
	return split, true
}

// RunRound synchronously probes every tracked path once, in fingerprint
// order, ignoring the background schedule — the deterministic round tests,
// tools, and benchmarks drive directly. Outcomes are ingested and fanned
// out exactly as scheduled probes are.
func (m *Monitor) RunRound() {
	type probeRef struct {
		sh *monShard
		fp string
	}
	var refs []probeRef
	m.drainAll()
	for _, sh := range m.shards {
		sh.mu.Lock()
		for key, tgt := range sh.targets {
			m.syncTargetLocked(sh, key, tgt)
		}
		for fp, e := range sh.entries {
			if sh.inflight[fp] || !entrySchedulable(e) {
				continue // mid-flight, retired, or passive-only; don't probe
			}
			sh.inflight[fp] = true
			refs = append(refs, probeRef{sh, fp})
		}
		sh.mu.Unlock()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].fp < refs[j].fp })
	for _, r := range refs {
		m.probeEntry(r.sh, r.fp, false)
	}
}

// Telemetry returns the live telemetry of one tracked path.
func (m *Monitor) Telemetry(fp string) (PathTelemetry, bool) {
	m.drainAll() // flush buffered samples so the read is current
	for _, sh := range m.shards {
		sh.mu.Lock()
		if e := sh.entries[fp]; e != nil {
			t := m.telemetryLocked(fp, e)
			sh.mu.Unlock()
			return t, true
		}
		sh.mu.Unlock()
	}
	return PathTelemetry{}, false
}

func (m *Monitor) telemetryLocked(fp string, e *monEntry) PathTelemetry {
	// Freshness (and the exported interval) judge against the schedule the
	// monitor actually runs — the budget-floored interval — so a tightly
	// budgeted proxy doesn't misread its own slower cadence as staleness
	// and race wide on every dial.
	iv := m.effectiveInterval(e)
	t := PathTelemetry{
		Fingerprint:    fp,
		RTT:            e.rtt,
		Dev:            e.dev,
		Samples:        e.samples,
		PassiveSamples: e.passive,
		Down:           e.down,
		Interval:       iv,
		Imported:       e.prior,
	}
	if !e.lastSample.IsZero() {
		t.Age = m.clock.Since(e.lastSample)
		t.Fresh = t.Age <= 2*iv+m.opts.Timeout
	}
	return t
}

// staleSeriesAfter is how long a link's per-path excess series survives
// without a new sample before LinkStats ignores it.
const staleSeriesAfter = 10

// shardLinkStat computes one link's congestion estimate from ONE shard's
// series: the minimum EWMA excess among the live series of paths crossing
// it (with that series' deviation). Boolean-tomography logic: if ANY path
// crossing the link is clean, the link is exonerated and the congestion
// lives elsewhere. Stale series are pruned in place (caller holds the
// shard lock).
func shardLinkStat(lk linkKey, series map[string]*excessSeries, now time.Time, horizon time.Duration) (LinkStat, bool) {
	st := LinkStat{A: lk.a, B: lk.b}
	found := false
	var newest time.Time
	for fp, s := range series {
		if s.samples == 0 || now.Sub(s.last) > horizon {
			delete(series, fp)
			continue
		}
		st.Sharers++
		if s.last.After(newest) {
			newest = s.last
		}
		if !found || s.mean < st.Congestion || (s.mean == st.Congestion && s.dev < st.Dev) {
			st.Congestion, st.Dev = s.mean, s.dev
			found = true
		}
	}
	if found {
		st.Age = now.Sub(newest)
	}
	return st, found
}

// linkCacheLocked returns the memoized CROSS-SHARD link snapshot (sorted
// slice + by-key map), rebuilding it only when dirty (a sample was ingested
// or pruning ran since) or older than MaxInterval (so series expiring
// purely by age still drop out). The rebuild walks every shard — lock
// order linkMu → shard.mu — merging per-shard minima; min-of-mins over a
// disjoint partition of the series is exactly the global minimum, so
// sharding never changes a LinkStat. The returned slice is the cache
// itself: callers must copy before handing it out. Caller holds linkMu.
func (m *Monitor) linkCacheLocked() ([]LinkStat, map[linkKey]LinkStat) {
	now := m.clock.Now()
	if !m.linkDirty.Load() && m.linkCache != nil && now.Sub(m.linkCacheAt) <= m.opts.MaxInterval {
		return m.linkCache, m.linkCacheMap
	}
	// Clear BEFORE aggregating: a sample ingested mid-rebuild re-dirties
	// the flag and the next query rebuilds again — conservative, never
	// stale.
	m.linkDirty.Store(false)
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	byKey := make(map[linkKey]LinkStat)
	for _, sh := range m.shards {
		sh.mu.Lock()
		// shardLinkStat prunes stale series in place; invalidate the
		// entries' memoized series pointers wholesale (queries are rare,
		// rebuilding a memo is one map walk per entry).
		sh.gen++
		for lk, series := range sh.links {
			st, ok := shardLinkStat(lk, series, now, horizon)
			if len(series) == 0 {
				delete(sh.links, lk)
			}
			if !ok {
				continue
			}
			if prev, merged := byKey[lk]; merged {
				st.Sharers += prev.Sharers
				if prev.Age < st.Age {
					st.Age = prev.Age // freshest underlying sample wins
				}
				if prev.Congestion < st.Congestion || (prev.Congestion == st.Congestion && prev.Dev < st.Dev) {
					st.Congestion, st.Dev = prev.Congestion, prev.Dev
				}
			}
			byKey[lk] = st
		}
		sh.mu.Unlock()
	}
	// Aged-out priors ride along with the rebuild — this is the one place
	// that owns the prior store under linkMu.
	for lk, pr := range m.priors {
		if pr.age(now) > horizon {
			delete(m.priors, lk)
		}
	}
	out := make([]LinkStat, 0, len(byKey))
	for _, st := range byKey {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A.ISD < out[j].A.ISD || (out[i].A.ISD == out[j].A.ISD && out[i].A.AS < out[j].A.AS)
		}
		return out[i].B.ISD < out[j].B.ISD || (out[i].B.ISD == out[j].B.ISD && out[i].B.AS < out[j].B.AS)
	})
	m.linkCache, m.linkCacheMap, m.linkCacheAt = out, byKey, now
	return out, byKey
}

// LinkStats exports the per-link congestion estimates measured LOCALLY,
// sorted by endpoints for deterministic output. Imported priors are not
// included: they feed PathPenalty (and hence ranking) but never re-export,
// so gossip cannot echo a stale estimate between hosts forever. The snapshot
// is cached between sample ingests — this is called per gossip round and per
// stats scrape.
func (m *Monitor) LinkStats() []LinkStat {
	m.drainAll() // before linkMu: rings sit outside every lock
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	stats, _ := m.linkCacheLocked()
	return append([]LinkStat(nil), stats...)
}

// PathPenalty is the hotspot cost of routing over p: the sum over its links
// of congestion + 2·deviation. A path avoiding every hot shared link pays
// ~zero; a path crossing a high-variance shared link pays the instability
// that end-to-end EWMA averaging hides. This is what HotspotSelector adds
// to its latency ranking key.
//
// Links with no live local series fall back to an imported prior when one is
// present (age-decayed, so a peer's warm estimate fades as it goes stale):
// the warm-start half of link-state sharing. A link with ANY live series
// ignores its prior — local measurement always overrides imports.
func (m *Monitor) PathPenalty(p *segment.Path) time.Duration {
	m.drainAll() // before linkMu: rings sit outside every lock
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	_, byKey := m.linkCacheLocked()
	now := m.clock.Now()
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	var sum time.Duration
	for _, lk := range pathLinks(p) {
		if st, ok := byKey[lk]; ok {
			sum += st.Congestion + 2*st.Dev
			continue
		}
		if pr := m.priors[lk]; pr != nil {
			sum += pr.penalty(now, horizon)
		}
	}
	return sum
}

// PathStat bundles one path's telemetry with its hotspot penalty — what a
// ranking pass needs per candidate.
type PathStat struct {
	Telemetry PathTelemetry
	// Known reports whether the monitor holds an entry for the path at all
	// (Telemetry is zero-valued otherwise, except for the fingerprint).
	Known bool
	// Penalty is PathPenalty for the path: live link stats, or age-decayed
	// imported priors on links never measured locally.
	Penalty time.Duration
}

// PathStats evaluates every path's telemetry and hotspot penalty in a
// batch — the batched form of Telemetry+PathPenalty for ranking passes
// that run on hot paths (reverse-path steering evaluates per sample batch
// on the packet delivery path; 2·N lock round-trips per evaluation would
// contend with probe ingest across every served connection). Under
// sharding the batch takes one shard lock per RUN of same-destination
// paths (a steering batch is all one destination: one acquisition) plus
// one linkMu acquisition for the penalties.
func (m *Monitor) PathStats(paths []*segment.Path) []PathStat {
	return m.PathStatsAppend(nil, paths)
}

// PathStatsAppend is PathStats appending into dst (often a scratch slice a
// steering pass reuses across evaluations, keeping the per-sample ranking
// path allocation-free).
func (m *Monitor) PathStatsAppend(dst []PathStat, paths []*segment.Path) []PathStat {
	m.drainAll() // flush buffered samples so the ranking is current
	start := len(dst)
	if need := start + len(paths); cap(dst) >= need {
		dst = dst[:need]
	} else {
		grown := make([]PathStat, need)
		copy(grown, dst)
		dst = grown
	}
	out := dst[start:]
	var cur *monShard
	for i, p := range paths {
		fp := p.Fingerprint()
		sh := m.shardFor(p.Dst)
		if sh != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			sh.mu.Lock()
			cur = sh
		}
		st := PathStat{Telemetry: PathTelemetry{Fingerprint: fp}}
		if e := sh.entries[fp]; e != nil {
			st.Telemetry = m.telemetryLocked(fp, e)
			st.Known = true
		}
		out[i] = st
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	_, byKey := m.linkCacheLocked()
	now := m.clock.Now()
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	for i, p := range paths {
		for _, lk := range pathLinks(p) {
			if ls, ok := byKey[lk]; ok {
				out[i].Penalty += ls.Congestion + 2*ls.Dev
				continue
			}
			if pr := m.priors[lk]; pr != nil {
				out[i].Penalty += pr.penalty(now, horizon)
			}
		}
	}
	return dst
}

// DefaultAdaptiveRaceWidth caps adaptive racing when the Dialer's RaceWidth
// leaves the cap unset.
const DefaultAdaptiveRaceWidth = 3

// RaceSpreadMargin is the minimum RTT band within which a follower counts
// as a close contender worth racing, regardless of how tight the leader's
// deviation estimate is.
const RaceSpreadMargin = 15 * time.Millisecond

// AdviseRaceWidth picks a race width from the telemetry of the top-ranked
// candidates (rank order, tels[0] = leader), capped at max:
//
//   - unknown, stale, or down leader telemetry → race the full width (the
//     ranking cannot be trusted narrow);
//   - a fresh, healthy leader races only the followers that are plausibly
//     the real leader: unknown/stale followers, and fresh ones whose
//     PESSIMISTIC estimate (RTT + 2·deviation — an unstable path must not
//     look attractive on its mean) lands within max(2·leader deviation,
//     RaceSpreadMargin) of the leader's RTT;
//   - a fresh follower that is clearly slower or unstable — or fresh and
//     down — is not raced.
//
// With a clearly healthy leader the advice collapses to width 1: no extra
// handshakes on the wire, exactly the paper's "race wide only when it could
// pay" behavior.
func AdviseRaceWidth(tels []PathTelemetry, max int) (width int, reason string) {
	if max < 1 {
		max = DefaultAdaptiveRaceWidth
	}
	if len(tels) < max {
		max = len(tels)
	}
	if max <= 1 {
		return 1, "single-candidate"
	}
	leader := tels[0]
	switch {
	case leader.Samples == 0 && !leader.Down:
		return max, "no-leader-telemetry"
	case !leader.Fresh:
		return max, "stale-leader"
	case leader.Down:
		return max, "leader-down"
	}
	band := 2 * leader.Dev
	if band < RaceSpreadMargin {
		band = RaceSpreadMargin
	}
	width = 1
	contested := false
	for _, f := range tels[1:] {
		if width >= max {
			break
		}
		switch {
		case f.Samples == 0 && !f.Down, !f.Fresh:
			width++ // can't rule the follower out
		case f.Down:
			// Fresh and down: never worth a racer.
		case f.RTT+2*f.Dev < leader.RTT+band:
			width++
			contested = true
		}
	}
	if width == 1 {
		return 1, "clear-leader"
	}
	if contested {
		return width, "close-contenders"
	}
	return width, "unknown-contenders"
}

// RaceWidth maps a ranked candidate list through AdviseRaceWidth using this
// monitor's telemetry.
func (m *Monitor) RaceWidth(cands []Candidate, max int) (int, string) {
	if max < 1 {
		max = DefaultAdaptiveRaceWidth
	}
	n := max
	if len(cands) < n {
		n = len(cands)
	}
	m.drainAll() // flush buffered samples so the width advice is current
	tels := make([]PathTelemetry, 0, n)
	var cur *monShard
	for _, c := range cands[:n] {
		fp := c.Path.Fingerprint()
		sh := m.shardFor(c.Path.Dst)
		if sh != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			sh.mu.Lock()
			cur = sh
		}
		if e := sh.entries[fp]; e != nil {
			tels = append(tels, m.telemetryLocked(fp, e))
		} else {
			tels = append(tels, PathTelemetry{Fingerprint: fp})
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	return AdviseRaceWidth(tels, max)
}
