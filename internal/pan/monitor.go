package pan

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
	"tango/internal/squic"
)

// ProbeFunc measures one round trip to remote over path, bounded by
// timeout. It returns the observed RTT, or an error when the path did not
// answer in time.
type ProbeFunc func(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error)

// Scheduling defaults of the telemetry plane.
const (
	// DefaultProbeInterval is the base per-path probe interval.
	DefaultProbeInterval = 3 * time.Second
	// DefaultProbeBudget is the global probes-per-second cap shared by all
	// paths a Monitor tracks: a proxy serving thousands of origins
	// stretches per-path intervals instead of flooding the network.
	DefaultProbeBudget = 32.0
)

// MonitorOptions parameterizes a Monitor. The zero value gets sensible
// defaults from NewMonitor.
type MonitorOptions struct {
	// BaseInterval is the per-path probe interval for a path of ordinary
	// stability (default DefaultProbeInterval). Churn adaptation moves each
	// path's actual interval between MinInterval and MaxInterval around
	// this base.
	BaseInterval time.Duration
	// MinInterval bounds how fast an unstable path is probed (default
	// BaseInterval/4).
	MinInterval time.Duration
	// MaxInterval bounds how lazily a rock-stable (or repeatedly failing)
	// path is probed (default 4*BaseInterval).
	MaxInterval time.Duration
	// Timeout caps one probe (default: BaseInterval, at most squic's
	// default handshake timeout) so a dead path can never stall its own
	// schedule indefinitely.
	Timeout time.Duration
	// ProbeBudget is the global probes/sec cap across every tracked path
	// (default DefaultProbeBudget; negative = uncapped). When the per-path
	// intervals would exceed the budget, every interval is floored at
	// tracked-paths/budget seconds.
	ProbeBudget float64
	// Probe overrides the measurement. Host.NewMonitor defaults it to a
	// minimal squic handshake against the tracked server (one round trip
	// on the wire); tests inject deterministic fakes.
	Probe ProbeFunc
}

// PathTelemetry is one tracked path's live probe-derived state, the raw
// material for adaptive racing and churn-aware scheduling.
type PathTelemetry struct {
	Fingerprint string
	// RTT and Dev are the EWMA round-trip estimate and its EWMA absolute
	// deviation (Jacobson-style, gains 1/4).
	RTT time.Duration
	Dev time.Duration
	// Samples counts successful measurements ingested so far — active
	// probes plus passive samples.
	Samples int
	// PassiveSamples is how many of Samples were zero-cost passive
	// observations from live traffic (Monitor.Observe) rather than active
	// probes.
	PassiveSamples int
	// Down marks an unresolved probe failure.
	Down bool
	// Age is the time since the path was last probed (success or failure).
	Age time.Duration
	// Interval is the path's current churn-adapted probe interval.
	Interval time.Duration
	// Fresh reports whether the telemetry is recent relative to the path's
	// own schedule (Age within two intervals): stale estimates must not
	// justify narrow racing.
	Fresh bool
	// Imported marks telemetry that came from a peer's snapshot
	// (ImportLinks) and has not yet been confirmed by a local sample: a
	// prior, which the first live measurement replaces outright.
	Imported bool
}

// LinkStat is the congestion estimate of one inter-AS link, derived by
// decomposing end-to-end path probes. Congestion is the minimum observed
// excess RTT (over the paths' metadata baseline) among all tracked paths
// crossing the link — boolean-tomography style, so a link is only blamed
// when EVERY path crossing it runs hot — and Dev is the deviation of that
// minimal series, the instability signal HotspotSelector penalizes.
type LinkStat struct {
	A, B       addr.IA       // link endpoints, canonical order
	Congestion time.Duration // min EWMA excess RTT across crossing paths
	Dev        time.Duration // EWMA absolute deviation of the minimal series
	Sharers    int           // tracked paths currently crossing the link
	Age        time.Duration // time since the freshest underlying sample
}

// linkKey identifies an inter-AS link independent of direction.
type linkKey struct{ a, b addr.IA }

func canonicalLink(x, y addr.IA) linkKey {
	if y.ISD < x.ISD || (y.ISD == x.ISD && y.AS < x.AS) {
		x, y = y, x
	}
	return linkKey{a: x, b: y}
}

// pathLinks enumerates the inter-AS links of a path in travel order.
func pathLinks(p *segment.Path) []linkKey {
	out := make([]linkKey, 0, len(p.Hops))
	for i := 1; i < len(p.Hops); i++ {
		if p.Hops[i-1].IA != p.Hops[i].IA {
			out = append(out, canonicalLink(p.Hops[i-1].IA, p.Hops[i].IA))
		}
	}
	return out
}

// excessSeries is the EWMA of one path's excess RTT as seen across one link.
type excessSeries struct {
	mean    time.Duration
	dev     time.Duration
	samples int
	last    time.Time
}

func (s *excessSeries) ingest(x time.Duration, now time.Time) {
	if s.samples == 0 {
		s.mean = x
	} else {
		diff := x - s.mean
		if diff < 0 {
			diff = -diff
		}
		s.dev = s.dev - s.dev/4 + diff/4
		s.mean = s.mean - s.mean/4 + x/4
	}
	s.samples++
	s.last = now
}

// monTarget is one refcounted destination whose paths are probed.
type monTarget struct {
	remote     addr.UDPAddr
	serverName string
	refs       int
	// activeRefs counts the trackers that want ACTIVE probing. A target
	// whose refs are all passive (TrackPassive — e.g. a server tracking the
	// clients it serves) accepts passive samples and retains telemetry but
	// never puts its paths on the probe schedule: clients are not servers,
	// and a handshake probe at one could only burn budget on timeouts.
	activeRefs int
	// passive/probes split the destination's ingested samples by origin —
	// the "N passive / M probe samples" observability feed. A sample on a
	// path serving several destinations credits each of them: they all
	// consume its freshness.
	passive, probes int
}

// SampleSplit is a destination's telemetry sample count split by origin:
// zero-cost passive observations from live traffic versus active probes
// spent from the budget.
type SampleSplit struct {
	Passive int `json:"passive"`
	Probes  int `json:"probes"`
}

// monEntry is the per-path telemetry and schedule state. In-flight probe
// tracking lives in Monitor.inflight, NOT here: entries can be pruned and
// re-created (by fingerprint) while a probe is still in flight, and a flag
// on the entry object would then latch or clear the wrong incarnation.
type monEntry struct {
	path    *segment.Path
	targets map[string]*monTarget // target keys this path serves

	rtt, dev   time.Duration
	samples    int
	passive    int // how many of samples came from Observe
	lastSample time.Time
	// lastPassive is when Observe last fed this path; fire() skips the
	// active probe while it is younger than the effective interval.
	lastPassive time.Time
	down        bool
	failures    int
	// prior marks telemetry imported from a peer's snapshot with no local
	// confirmation yet: the first live sample REPLACES it (reset to a first
	// sample) instead of blending — live samples override imports.
	prior bool

	interval time.Duration
	seq      uint64 // reschedule counter, varies the jitter
	cancel   func() bool
}

// Monitor is the shared telemetry plane below the selectors: ONE monitor per
// host schedules probes for every destination any of its dialers tracks,
// measures per-path RTT, and decomposes the measurements into link-level
// congestion estimates.
//
// Scheduling, per the paper's proxy deployment concern, is per PATH rather
// than per round: every tracked path carries its own next-probe deadline
// with a deterministic phase jitter (so a proxy serving thousands of origins
// never emits synchronized probe bursts) and a churn-adaptive interval —
// high EWMA RTT deviation shortens the interval toward MinInterval, a flat
// series stretches it toward MaxInterval — under a global probes/sec budget.
//
// Destinations are tracked with reference counts: several Dialers share one
// Monitor, and a destination stops being probed only when the LAST tracker
// untracks it. Probe outcomes fan out to every subscribed sink (typically
// each dialer's active selector), and the link-level series feed
// HotspotSelector and the adaptive race-width adviser.
//
// Active probes are only half the input: Observe ingests zero-cost passive
// RTT samples skimmed off live traffic (pooled squic connections' ack RTTs,
// proxied requests' first-byte times) through the same pipeline, and a
// scheduled probe is skipped whenever a passive sample landed within the
// path's current interval — destinations with traffic keep themselves
// fresh for free, and the probe budget concentrates on the idle ones.
//
// All scheduling runs on the injected Clock, so experiments drive the
// monitor deterministically on virtual time. Probes run in their own
// goroutines (never inside a timer callback, which would stall a virtual
// clock advance).
type Monitor struct {
	clock netsim.Clock
	paths func(addr.IA) []*segment.Path
	opts  MonitorOptions

	mu      sync.Mutex
	targets map[string]*monTarget
	entries map[string]*monEntry // path fingerprint → state
	// byTarget indexes each target's entries so Track/Untrack and path-set
	// reconciliation cost O(paths of that target), not O(all entries).
	byTarget map[string]map[string]*monEntry
	// active counts entries with at least one target (the schedulable set),
	// kept incrementally so the budget floor is O(1) per query.
	active int
	// inflight marks fingerprints with a probe currently on the wire, at
	// most one per path. Monitor-level (not per-entry) so a probe draining
	// across entry pruning/re-creation — or across a Stop→Start cycle —
	// always clears exactly its own mark and can never leave a re-created
	// entry latched out of the schedule.
	inflight map[string]bool
	links    map[linkKey]map[string]*excessSeries
	// priors are link congestion estimates imported from peers' snapshots
	// (ImportLinks). They decay with age and only ever fill gaps: a link
	// with live local series ignores its prior entirely.
	priors map[linkKey]*linkPrior
	// linkCache memoizes the sorted LinkStats snapshot and its by-key view
	// (PathPenalty's lookup table). nil = dirty; invalidated on sample
	// ingest and pruning, and expired after MaxInterval so age-based series
	// expiry still lands without an ingest. LinkStats is called per gossip
	// round and per stats scrape — recomputing and re-sorting the full link
	// set on each call was measurable waste.
	linkCache    []LinkStat
	linkCacheMap map[linkKey]LinkStat
	linkCacheAt  time.Time
	sinks        map[int]func(*segment.Path, Outcome)
	// sinkList caches the id-ordered fan-out slice (nil = rebuild on next
	// use). Passive ingest fans out per ack sample, and rebuilding+sorting
	// the list for every one of them would be avoidable hot-path garbage;
	// Subscribe/unsubscribe (rare) invalidate it. Rebuilds always allocate
	// a FRESH slice, so callers may iterate it outside the lock.
	sinkList []func(*segment.Path, Outcome)
	nextSink int
	started  bool
}

// NewMonitor builds a monitor from its parts: a clock, a path source (what
// Host.Paths provides), and options. Most callers want Host.NewMonitor,
// which wires the default squic-handshake probe.
func NewMonitor(clock netsim.Clock, paths func(addr.IA) []*segment.Path, opts MonitorOptions) *Monitor {
	if opts.BaseInterval <= 0 {
		opts.BaseInterval = DefaultProbeInterval
	}
	if opts.MinInterval <= 0 {
		opts.MinInterval = opts.BaseInterval / 4
	}
	if opts.MaxInterval <= 0 {
		opts.MaxInterval = 4 * opts.BaseInterval
	}
	if opts.MaxInterval < opts.BaseInterval {
		opts.MaxInterval = opts.BaseInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = opts.BaseInterval
		if opts.Timeout > squic.DefaultHandshakeTimeout {
			opts.Timeout = squic.DefaultHandshakeTimeout
		}
	}
	if opts.ProbeBudget == 0 {
		opts.ProbeBudget = DefaultProbeBudget
	}
	return &Monitor{
		clock:    clock,
		paths:    paths,
		opts:     opts,
		targets:  make(map[string]*monTarget),
		entries:  make(map[string]*monEntry),
		byTarget: make(map[string]map[string]*monEntry),
		inflight: make(map[string]bool),
		links:    make(map[linkKey]map[string]*excessSeries),
		priors:   make(map[linkKey]*linkPrior),
		sinks:    make(map[int]func(*segment.Path, Outcome)),
	}
}

// NewMonitor builds the host's telemetry plane whose default probe is a
// minimal squic handshake against the tracked server — one round trip on
// the wire, closed immediately after.
func (h *Host) NewMonitor(opts MonitorOptions) *Monitor {
	if opts.Probe == nil {
		opts.Probe = h.handshakeProbe
	}
	return NewMonitor(h.clock, h.Paths, opts)
}

// HandshakeProbe returns the host's default active probe — the measurement
// Host.NewMonitor installs when MonitorOptions.Probe is unset. Exported so
// scenario harnesses can wrap it (e.g. to count probes per destination)
// while keeping the real on-the-wire handshake cost.
func (h *Host) HandshakeProbe() ProbeFunc { return h.handshakeProbe }

// handshakeProbe measures a path by completing (and immediately closing) a
// squic handshake: exactly one round trip on the wire, with the server
// proving its identity, so a probe "success" means the path really carries
// application traffic end to end.
func (h *Host) handshakeProbe(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
	sock, err := h.stack.Listen(0)
	if err != nil {
		return 0, err
	}
	start := h.clock.Now()
	conn, err := squic.Dial(sock, remote, path, serverName, &squic.Config{
		Clock:            h.clock,
		Pool:             h.pool,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		return 0, err
	}
	rtt := h.clock.Since(start)
	conn.Close()
	return rtt, nil
}

func targetKey(remote addr.UDPAddr, serverName string) string {
	return remote.String() + "|" + serverName
}

// Track adds a destination to the probe set, reference-counted: a
// destination tracked by several dialers is probed once, and keeps being
// probed until every tracker has untracked it.
func (m *Monitor) Track(remote addr.UDPAddr, serverName string) {
	m.track(remote, serverName, true)
}

// TrackPassive adds a destination for PASSIVE telemetry only: its paths get
// entries (so Observe accepts samples for them) but never join the probe
// schedule, no matter whether the monitor is started. This is how a
// server-side plane tracks the clients it serves — safe to share a started
// dialer-side monitor with. A destination tracked both ways is probed as
// long as at least one active tracker remains.
func (m *Monitor) TrackPassive(remote addr.UDPAddr, serverName string) {
	m.track(remote, serverName, false)
}

func (m *Monitor) track(remote addr.UDPAddr, serverName string, active bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := targetKey(remote, serverName)
	tgt := m.targets[key]
	if tgt == nil {
		tgt = &monTarget{remote: remote, serverName: serverName}
		m.targets[key] = tgt
	}
	// Per-entry schedulability BEFORE the ref change, so a passive→active
	// upgrade can see which entries just became schedulable.
	wasSched := make(map[string]bool, len(m.byTarget[key]))
	for fp, e := range m.byTarget[key] {
		wasSched[fp] = entrySchedulable(e)
	}
	tgt.refs++
	if active {
		tgt.activeRefs++
	}
	if tgt.refs == 1 {
		m.pruneLocked()
		m.syncTargetLocked(key, tgt)
		return
	}
	if active && tgt.activeRefs == 1 {
		// Upgraded from passive-only: existing entries join the schedule.
		for fp, e := range m.byTarget[key] {
			if !wasSched[fp] && entrySchedulable(e) {
				m.active++
				m.scheduleLocked(fp, e, true)
			}
		}
	}
}

// Untrack drops one active-tracking reference to a destination; at zero
// references its paths leave the probe schedule (paths still serving
// another tracked destination stay).
func (m *Monitor) Untrack(remote addr.UDPAddr, serverName string) {
	m.untrack(remote, serverName, true)
}

// UntrackPassive drops one TrackPassive reference.
func (m *Monitor) UntrackPassive(remote addr.UDPAddr, serverName string) {
	m.untrack(remote, serverName, false)
}

func (m *Monitor) untrack(remote addr.UDPAddr, serverName string, active bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := targetKey(remote, serverName)
	tgt := m.targets[key]
	if tgt == nil {
		return
	}
	// Per-entry schedulability BEFORE the ref change: m.active was counted
	// under the old refs, so transitions must be judged against them.
	wasSched := make(map[string]bool, len(m.byTarget[key]))
	for fp, e := range m.byTarget[key] {
		wasSched[fp] = entrySchedulable(e)
	}
	tgt.refs--
	if active && tgt.activeRefs > 0 {
		tgt.activeRefs--
	}
	if tgt.refs <= 0 {
		delete(m.targets, key)
		for fp, e := range m.byTarget[key] {
			delete(e.targets, key)
			if wasSched[fp] && !entrySchedulable(e) {
				m.active--
				m.retireEntryLocked(e)
			}
		}
		delete(m.byTarget, key)
		return
	}
	// Refs remain; an active→passive-only downgrade still takes entries
	// with no other active target off the schedule (telemetry kept).
	for fp, e := range m.byTarget[key] {
		if wasSched[fp] && !entrySchedulable(e) {
			m.active--
			m.retireEntryLocked(e)
		}
	}
}

// entrySchedulable reports whether any of the entry's targets wants active
// probing — the condition for carrying a probe deadline.
func entrySchedulable(e *monEntry) bool {
	for _, t := range e.targets {
		if t.activeRefs > 0 {
			return true
		}
	}
	return false
}

// retireEntryLocked takes a path off the probe schedule while KEEPING its
// telemetry: tracking is scheduling, telemetry is knowledge — a destination
// evicted from a pool and re-dialed moments later must not restart from
// zero. Long-stale retired entries are pruned by pruneLocked.
func (m *Monitor) retireEntryLocked(e *monEntry) {
	if e.cancel != nil {
		e.cancel()
		e.cancel = nil
	}
}

// pruneLocked drops retired entries — and link excess series — whose
// telemetry has gone stale beyond recall, bounding memory on long-lived
// monitors even when nothing ever queries LinkStats. Runs on each new
// destination Track, so churn itself drives the cleanup.
func (m *Monitor) pruneLocked() {
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	now := m.clock.Now()
	for fp, e := range m.entries {
		if len(e.targets) == 0 && (e.lastSample.IsZero() || now.Sub(e.lastSample) > horizon) {
			delete(m.entries, fp)
		}
	}
	for lk, series := range m.links {
		for fp, s := range series {
			if now.Sub(s.last) > horizon {
				delete(series, fp)
			}
		}
		if len(series) == 0 {
			delete(m.links, lk)
		}
	}
	for lk, pr := range m.priors {
		if pr.age(now) > horizon {
			delete(m.priors, lk)
		}
	}
	m.linkCache, m.linkCacheMap = nil, nil
}

// syncTargetLocked reconciles the entry set with the target's current
// paths: unseen paths get entries (and, when started, a phase-jittered
// first deadline), and entries this target referenced whose path the
// control plane no longer offers drop the reference — so path expiry and
// turnover retire defunct schedules instead of probing ghosts forever.
func (m *Monitor) syncTargetLocked(key string, tgt *monTarget) {
	idx := m.byTarget[key]
	if idx == nil {
		idx = make(map[string]*monEntry)
		m.byTarget[key] = idx
	}
	current := make(map[string]bool)
	for _, p := range m.paths(tgt.remote.IA) {
		fp := p.Fingerprint()
		current[fp] = true
		e := m.entries[fp]
		if e == nil {
			e = &monEntry{
				path:     p,
				targets:  make(map[string]*monTarget),
				interval: m.opts.BaseInterval,
			}
			m.entries[fp] = e
		}
		wasSched := entrySchedulable(e)
		e.path = p
		e.targets[key] = tgt
		idx[fp] = e
		if !wasSched && entrySchedulable(e) {
			m.active++
			m.scheduleLocked(fp, e, true)
		}
	}
	for fp, e := range idx {
		if !current[fp] {
			delete(idx, fp)
			wasSched := entrySchedulable(e)
			delete(e.targets, key)
			if wasSched && !entrySchedulable(e) {
				m.active--
				m.retireEntryLocked(e)
			}
		}
	}
}

// TargetCount returns the number of distinct tracked destinations.
func (m *Monitor) TargetCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.targets)
}

// TrackedPaths returns the number of paths currently on the probe schedule
// (retired entries kept only for their telemetry don't count).
func (m *Monitor) TrackedPaths() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Subscribe registers a probe-outcome sink — Outcome{Latency, Probe: true}
// on success, Failure (with Probe set) on timeout — and returns its
// unsubscribe function. A Dialer subscribes its active selector, so one
// monitor feeds every dialer sharing it.
func (m *Monitor) Subscribe(sink func(*segment.Path, Outcome)) (unsubscribe func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextSink
	m.nextSink++
	m.sinks[id] = sink
	m.sinkList = nil
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.sinks, id)
		m.sinkList = nil
	}
}

// Start arms the probe schedule: every tracked path gets a phase-jittered
// first deadline within one interval. Idempotent while running; callable
// again after Stop.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	for fp, e := range m.entries {
		m.scheduleLocked(fp, e, true)
	}
}

// Stop cancels the probe schedule. Probes already in flight drain without
// reporting or rescheduling.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started = false
	for _, e := range m.entries {
		if e.cancel != nil {
			e.cancel()
			e.cancel = nil
		}
	}
}

// jitterHash folds a fingerprint and a sequence number into a uniform
// 0..999 bucket, the deterministic substitute for random phase jitter.
func jitterHash(fp string, seq uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(fp))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64() % 1000
}

// budgetFloorLocked is the minimum per-path interval that keeps the global
// probe rate within ProbeBudget given the current tracked-path count.
func (m *Monitor) budgetFloorLocked() time.Duration {
	if m.opts.ProbeBudget <= 0 || m.active == 0 {
		return 0
	}
	return time.Duration(float64(m.active) / m.opts.ProbeBudget * float64(time.Second))
}

// effectiveIntervalLocked is the interval the schedule actually honors:
// the churn-adapted interval, floored by the global probe budget.
func (m *Monitor) effectiveIntervalLocked(e *monEntry) time.Duration {
	iv := e.interval
	if floor := m.budgetFloorLocked(); iv < floor {
		iv = floor
	}
	return iv
}

// scheduleLocked arms the entry's next probe. The first deadline spreads
// paths uniformly across one interval (phase = hash(fingerprint)); later
// deadlines are the churn-adapted interval ±15% deterministic jitter, so
// phases never re-synchronize into bursts.
func (m *Monitor) scheduleLocked(fp string, e *monEntry, first bool) {
	if !m.started || e.cancel != nil || !entrySchedulable(e) {
		return
	}
	iv := m.effectiveIntervalLocked(e)
	var d time.Duration
	if first {
		// Phase offset in [iv/8, iv]: never immediate, never bursty.
		d = iv/8 + time.Duration(jitterHash(fp, 0))*(iv-iv/8)/1000
	} else {
		// iv scaled by a deterministic factor in [0.85, 1.15].
		d = iv*85/100 + time.Duration(jitterHash(fp, e.seq))*(iv*30/100)/1000
	}
	e.seq++
	e.cancel = m.clock.AfterFunc(d, func() { m.fire(fp) })
}

// fire runs inside a clock timer callback and must not block: it hands the
// probe to a goroutine.
func (m *Monitor) fire(fp string) {
	m.mu.Lock()
	e := m.entries[fp]
	if e == nil || !m.started {
		m.mu.Unlock()
		return
	}
	e.cancel = nil
	if m.inflight[fp] {
		// A manual round still has this path in flight; retry next interval.
		m.scheduleLocked(fp, e, false)
		m.mu.Unlock()
		return
	}
	if !e.lastPassive.IsZero() && m.clock.Since(e.lastPassive) < m.effectiveIntervalLocked(e) {
		// Probe suppression: live traffic measured this path within the
		// current interval, so the active probe would spend budget on
		// nothing — skip it and push the schedule. Deciding here (rather
		// than re-arming the timer from Observe on every ack sample) keeps
		// the passive hot path free of timer churn; once traffic stops,
		// the very next deadline probes again.
		m.scheduleLocked(fp, e, false)
		m.mu.Unlock()
		return
	}
	m.inflight[fp] = true
	m.mu.Unlock()
	go m.probeEntry(fp, true)
}

// probeEntry measures one path, ingests the outcome, reschedules, and fans
// the outcome out to the sinks. scheduled distinguishes background probes
// (which respect Stop and re-arm) from manual RunRound probes.
func (m *Monitor) probeEntry(fp string, scheduled bool) {
	m.mu.Lock()
	e := m.entries[fp]
	if e == nil {
		// Pruned between fire() and here; the mark MUST clear anyway — an
		// fp can be re-created by a later Track, and a leaked mark would
		// silence its schedule forever.
		delete(m.inflight, fp)
		m.mu.Unlock()
		return
	}
	var tgt *monTarget
	for _, t := range e.targets {
		// Only actively-tracked targets can answer a probe: passive-only
		// targets (a server's clients) have no server to handshake with.
		if t.activeRefs == 0 {
			continue
		}
		if tgt == nil || targetKey(t.remote, t.serverName) < targetKey(tgt.remote, tgt.serverName) {
			tgt = t
		}
	}
	path := e.path
	timeout := m.opts.Timeout
	m.mu.Unlock()
	if tgt == nil {
		m.clearInflight(fp)
		return
	}

	rtt, err := m.opts.Probe(tgt.remote, tgt.serverName, path, timeout)

	m.mu.Lock()
	delete(m.inflight, fp)
	e = m.entries[fp]
	if e == nil {
		m.mu.Unlock()
		return
	}
	outcome := m.ingestLocked(e, rtt, err, false)
	alive := !scheduled || m.started
	// Re-arm whenever the monitor is running and the entry has no pending
	// deadline — regardless of who launched this probe. A probe that was in
	// flight across a Stop→Start cycle (Start already armed a fresh timer)
	// no-ops here; one that drained after the restart consumed its deadline
	// re-arms itself, so the path can never fall silently out of the
	// schedule.
	if m.started && entrySchedulable(e) {
		m.scheduleLocked(fp, e, false)
	}
	sinks := m.sinksLocked()
	m.mu.Unlock()

	if !alive {
		return
	}
	for _, sink := range sinks {
		sink(path, outcome)
	}
	if scheduled {
		m.resyncEntryTargets(fp)
	}
}

// sinksLocked returns the sink fan-out list in deterministic id order,
// rebuilding the cache only after a Subscribe/unsubscribe change; the
// caller invokes the sinks after releasing m.mu.
func (m *Monitor) sinksLocked() []func(*segment.Path, Outcome) {
	if m.sinkList == nil {
		sinks := make([]func(*segment.Path, Outcome), 0, len(m.sinks))
		ids := make([]int, 0, len(m.sinks))
		for id := range m.sinks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			sinks = append(sinks, m.sinks[id])
		}
		m.sinkList = sinks
	}
	return m.sinkList
}

func (m *Monitor) clearInflight(fp string) {
	m.mu.Lock()
	delete(m.inflight, fp)
	m.mu.Unlock()
}

// resyncEntryTargets reconciles the path sets of the targets the probed
// entry serves, picking up paths that appeared (discovery, expiry
// turnover) and dropping ones the control plane withdrew — so long-running
// monitors follow the control plane without an explicit refresh call.
// Scoping the resync to the probed entry's own targets keeps the per-probe
// cost proportional to that destination, not to every origin the host
// serves.
func (m *Monitor) resyncEntryTargets(fp string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[fp]
	if e == nil {
		return
	}
	keys := make([]string, 0, len(e.targets))
	for key := range e.targets {
		keys = append(keys, key)
	}
	for _, key := range keys {
		if tgt := m.targets[key]; tgt != nil {
			m.syncTargetLocked(key, tgt)
		}
	}
}

// ingestLocked folds one measurement — an active probe result or a passive
// traffic sample — into the entry's telemetry, adapts its interval to the
// observed churn, and attributes success excess to the traversed links.
// Probes and passive samples share this pipeline end to end; only the
// outcome marking (and the per-target sample split) records the origin.
// Returns the outcome to fan out.
func (m *Monitor) ingestLocked(e *monEntry, rtt time.Duration, err error, passive bool) Outcome {
	now := m.clock.Now()
	e.lastSample = now
	for _, tgt := range e.targets {
		if passive {
			tgt.passive++
		} else {
			tgt.probes++
		}
	}
	if err != nil {
		e.failures++
		e.down = true
		// Failure backoff: double toward MaxInterval so a mostly-dead path
		// set cannot consume the probe budget in timeouts.
		e.interval *= 2
		if e.interval > m.opts.MaxInterval {
			e.interval = m.opts.MaxInterval
		}
		return Outcome{Failed: true, Probe: true}
	}
	e.failures = 0
	e.down = false
	if e.prior {
		// The entry held only an imported prior; the first live measurement
		// replaces it outright rather than blending into a peer's estimate.
		e.prior = false
		e.samples, e.passive = 0, 0
		e.rtt, e.dev = 0, 0
	}
	if passive {
		e.passive++
		e.lastPassive = now
	}
	if e.samples == 0 {
		// Optimistic deviation start: a first sample carries no churn
		// evidence, and adaptive racing should not stay wide on a path
		// whose only observation is clean.
		e.rtt, e.dev = rtt, 0
	} else {
		diff := rtt - e.rtt
		if diff < 0 {
			diff = -diff
		}
		e.dev = e.dev - e.dev/4 + diff/4
		e.rtt = e.rtt - e.rtt/4 + rtt/4
	}
	e.samples++

	// Churn adaptation (cf. entropy-aware probing, PAPERS.md): deviation
	// large relative to the RTT → probe faster; a flat series → stretch the
	// interval and spend the budget elsewhere.
	switch {
	case e.dev*4 >= e.rtt && e.rtt > 0:
		e.interval = m.opts.MinInterval
	case e.dev*8 >= e.rtt && e.rtt > 0:
		e.interval = m.opts.BaseInterval / 2
		if e.interval < m.opts.MinInterval {
			e.interval = m.opts.MinInterval
		}
	case e.dev*32 <= e.rtt && e.samples >= 3:
		e.interval *= 2
		if e.interval > m.opts.MaxInterval {
			e.interval = m.opts.MaxInterval
		}
	default:
		e.interval = m.opts.BaseInterval
	}

	// Link attribution: the path's excess RTT over its metadata baseline is
	// recorded against every link it crosses; LinkStats' min-across-paths
	// later exonerates links that any clean path also crosses.
	excess := rtt - 2*e.path.Meta.Latency
	if excess < 0 {
		excess = 0
	}
	fp := e.path.Fingerprint()
	for _, lk := range pathLinks(e.path) {
		series := m.links[lk]
		if series == nil {
			series = make(map[string]*excessSeries)
			m.links[lk] = series
		}
		s := series[fp]
		if s == nil {
			s = &excessSeries{}
			series[fp] = s
		}
		s.ingest(excess, now)
	}
	m.linkCache, m.linkCacheMap = nil, nil
	if passive {
		return Outcome{Latency: rtt, Passive: true}
	}
	return Outcome{Latency: rtt, Probe: true}
}

// Observe ingests one zero-cost RTT sample observed on live traffic over
// path — a pooled squic connection's ack RTT, a proxied request's
// time-to-first-byte. The sample flows through exactly the probe ingest
// pipeline (EWMA and deviation, churn-adaptive interval, link attribution,
// sink fan-out) but is marked Outcome{Probe: false, Passive: true} so
// use-driven selectors don't mistake ack cadence for request cadence.
//
// The budget saver: the sample stamps the path's lastPassive time, and the
// scheduled fire() SKIPS the active probe (rescheduling only) while that
// stamp is younger than the path's effective interval. A destination with
// continuous traffic therefore keeps fresh telemetry while consuming
// (near-)zero probe budget, a tight ProbeBudget concentrates structurally
// on the destinations with no traffic to learn from, and — because the
// suppression decision lives at the (rare) fire, not here — the per-ack
// hot path never touches a timer. Samples for untracked paths are dropped:
// tracking is the scheduling contract, and passive data must not keep
// telemetry alive for paths nothing dials anymore.
func (m *Monitor) Observe(path *segment.Path, rtt time.Duration) {
	if path == nil || rtt <= 0 {
		return
	}
	fp := path.Fingerprint()
	m.mu.Lock()
	e := m.entries[fp]
	if e == nil || len(e.targets) == 0 {
		m.mu.Unlock()
		return
	}
	outcome := m.ingestLocked(e, rtt, nil, true)
	sinks := m.sinksLocked()
	m.mu.Unlock()
	for _, sink := range sinks {
		sink(path, outcome)
	}
}

// TargetSamples reports a tracked destination's telemetry sample split —
// how many zero-cost passive samples versus active probes have fed its
// paths. ok is false for destinations the monitor does not track.
func (m *Monitor) TargetSamples(remote addr.UDPAddr, serverName string) (SampleSplit, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tgt := m.targets[targetKey(remote, serverName)]
	if tgt == nil {
		return SampleSplit{}, false
	}
	return SampleSplit{Passive: tgt.passive, Probes: tgt.probes}, true
}

// RunRound synchronously probes every tracked path once, in fingerprint
// order, ignoring the background schedule — the deterministic round tests,
// tools, and benchmarks drive directly. Outcomes are ingested and fanned
// out exactly as scheduled probes are.
func (m *Monitor) RunRound() {
	m.mu.Lock()
	for key, tgt := range m.targets {
		m.syncTargetLocked(key, tgt)
	}
	fps := make([]string, 0, len(m.entries))
	for fp, e := range m.entries {
		if m.inflight[fp] || !entrySchedulable(e) {
			continue // mid-flight, retired, or passive-only; don't probe
		}
		m.inflight[fp] = true
		fps = append(fps, fp)
	}
	m.mu.Unlock()
	sort.Strings(fps)
	for _, fp := range fps {
		m.probeEntry(fp, false)
	}
}

// Telemetry returns the live telemetry of one tracked path.
func (m *Monitor) Telemetry(fp string) (PathTelemetry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[fp]
	if e == nil {
		return PathTelemetry{}, false
	}
	return m.telemetryLocked(fp, e), true
}

func (m *Monitor) telemetryLocked(fp string, e *monEntry) PathTelemetry {
	// Freshness (and the exported interval) judge against the schedule the
	// monitor actually runs — the budget-floored interval — so a tightly
	// budgeted proxy doesn't misread its own slower cadence as staleness
	// and race wide on every dial.
	iv := m.effectiveIntervalLocked(e)
	t := PathTelemetry{
		Fingerprint:    fp,
		RTT:            e.rtt,
		Dev:            e.dev,
		Samples:        e.samples,
		PassiveSamples: e.passive,
		Down:           e.down,
		Interval:       iv,
		Imported:       e.prior,
	}
	if !e.lastSample.IsZero() {
		t.Age = m.clock.Since(e.lastSample)
		t.Fresh = t.Age <= 2*iv+m.opts.Timeout
	}
	return t
}

// staleSeriesAfter is how long a link's per-path excess series survives
// without a new sample before LinkStats ignores it.
const staleSeriesAfter = 10

// linkStatLocked computes one link's congestion estimate: the minimum EWMA
// excess among the live series of paths crossing it (with that series'
// deviation). Boolean-tomography logic: if ANY path crossing the link is
// clean, the link is exonerated and the congestion lives elsewhere.
func (m *Monitor) linkStatLocked(lk linkKey, series map[string]*excessSeries, now time.Time) (LinkStat, bool) {
	st := LinkStat{A: lk.a, B: lk.b}
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	found := false
	var newest time.Time
	for fp, s := range series {
		if s.samples == 0 || now.Sub(s.last) > horizon {
			delete(series, fp)
			continue
		}
		st.Sharers++
		if s.last.After(newest) {
			newest = s.last
		}
		if !found || s.mean < st.Congestion || (s.mean == st.Congestion && s.dev < st.Dev) {
			st.Congestion, st.Dev = s.mean, s.dev
			found = true
		}
	}
	if found {
		st.Age = now.Sub(newest)
	}
	return st, found
}

// linkCacheLocked returns the memoized link snapshot (sorted slice + by-key
// map), rebuilding it only when dirty (a sample was ingested or pruning ran
// since) or older than MaxInterval (so series expiring purely by age still
// drop out). The returned slice is the cache itself: callers must copy
// before handing it out.
func (m *Monitor) linkCacheLocked() ([]LinkStat, map[linkKey]LinkStat) {
	now := m.clock.Now()
	if m.linkCache != nil && now.Sub(m.linkCacheAt) <= m.opts.MaxInterval {
		return m.linkCache, m.linkCacheMap
	}
	out := make([]LinkStat, 0, len(m.links))
	byKey := make(map[linkKey]LinkStat, len(m.links))
	for lk, series := range m.links {
		if st, ok := m.linkStatLocked(lk, series, now); ok {
			out = append(out, st)
			byKey[lk] = st
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A.ISD < out[j].A.ISD || (out[i].A.ISD == out[j].A.ISD && out[i].A.AS < out[j].A.AS)
		}
		return out[i].B.ISD < out[j].B.ISD || (out[i].B.ISD == out[j].B.ISD && out[i].B.AS < out[j].B.AS)
	})
	m.linkCache, m.linkCacheMap, m.linkCacheAt = out, byKey, now
	return out, byKey
}

// LinkStats exports the per-link congestion estimates measured LOCALLY,
// sorted by endpoints for deterministic output. Imported priors are not
// included: they feed PathPenalty (and hence ranking) but never re-export,
// so gossip cannot echo a stale estimate between hosts forever. The snapshot
// is cached between sample ingests — this is called per gossip round and per
// stats scrape.
func (m *Monitor) LinkStats() []LinkStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	stats, _ := m.linkCacheLocked()
	return append([]LinkStat(nil), stats...)
}

// PathPenalty is the hotspot cost of routing over p: the sum over its links
// of congestion + 2·deviation. A path avoiding every hot shared link pays
// ~zero; a path crossing a high-variance shared link pays the instability
// that end-to-end EWMA averaging hides. This is what HotspotSelector adds
// to its latency ranking key.
//
// Links with no live local series fall back to an imported prior when one is
// present (age-decayed, so a peer's warm estimate fades as it goes stale):
// the warm-start half of link-state sharing. A link with ANY live series
// ignores its prior — local measurement always overrides imports.
func (m *Monitor) PathPenalty(p *segment.Path) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, byKey := m.linkCacheLocked()
	now := m.clock.Now()
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	var sum time.Duration
	for _, lk := range pathLinks(p) {
		if st, ok := byKey[lk]; ok {
			sum += st.Congestion + 2*st.Dev
			continue
		}
		if pr := m.priors[lk]; pr != nil {
			sum += pr.penalty(now, horizon)
		}
	}
	return sum
}

// PathStat bundles one path's telemetry with its hotspot penalty — what a
// ranking pass needs per candidate.
type PathStat struct {
	Telemetry PathTelemetry
	// Known reports whether the monitor holds an entry for the path at all
	// (Telemetry is zero-valued otherwise, except for the fingerprint).
	Known bool
	// Penalty is PathPenalty for the path: live link stats, or age-decayed
	// imported priors on links never measured locally.
	Penalty time.Duration
}

// PathStats evaluates every path's telemetry and hotspot penalty under ONE
// lock acquisition — the batched form of Telemetry+PathPenalty for ranking
// passes that run on hot paths (reverse-path steering evaluates per sample
// batch on the packet delivery path; 2·N lock round-trips per evaluation
// would contend with probe ingest across every served connection).
func (m *Monitor) PathStats(paths []*segment.Path) []PathStat {
	out := make([]PathStat, len(paths))
	m.mu.Lock()
	defer m.mu.Unlock()
	_, byKey := m.linkCacheLocked()
	now := m.clock.Now()
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	for i, p := range paths {
		fp := p.Fingerprint()
		st := PathStat{Telemetry: PathTelemetry{Fingerprint: fp}}
		if e := m.entries[fp]; e != nil {
			st.Telemetry = m.telemetryLocked(fp, e)
			st.Known = true
		}
		for _, lk := range pathLinks(p) {
			if ls, ok := byKey[lk]; ok {
				st.Penalty += ls.Congestion + 2*ls.Dev
				continue
			}
			if pr := m.priors[lk]; pr != nil {
				st.Penalty += pr.penalty(now, horizon)
			}
		}
		out[i] = st
	}
	return out
}

// DefaultAdaptiveRaceWidth caps adaptive racing when the Dialer's RaceWidth
// leaves the cap unset.
const DefaultAdaptiveRaceWidth = 3

// RaceSpreadMargin is the minimum RTT band within which a follower counts
// as a close contender worth racing, regardless of how tight the leader's
// deviation estimate is.
const RaceSpreadMargin = 15 * time.Millisecond

// AdviseRaceWidth picks a race width from the telemetry of the top-ranked
// candidates (rank order, tels[0] = leader), capped at max:
//
//   - unknown, stale, or down leader telemetry → race the full width (the
//     ranking cannot be trusted narrow);
//   - a fresh, healthy leader races only the followers that are plausibly
//     the real leader: unknown/stale followers, and fresh ones whose
//     PESSIMISTIC estimate (RTT + 2·deviation — an unstable path must not
//     look attractive on its mean) lands within max(2·leader deviation,
//     RaceSpreadMargin) of the leader's RTT;
//   - a fresh follower that is clearly slower or unstable — or fresh and
//     down — is not raced.
//
// With a clearly healthy leader the advice collapses to width 1: no extra
// handshakes on the wire, exactly the paper's "race wide only when it could
// pay" behavior.
func AdviseRaceWidth(tels []PathTelemetry, max int) (width int, reason string) {
	if max < 1 {
		max = DefaultAdaptiveRaceWidth
	}
	if len(tels) < max {
		max = len(tels)
	}
	if max <= 1 {
		return 1, "single-candidate"
	}
	leader := tels[0]
	switch {
	case leader.Samples == 0 && !leader.Down:
		return max, "no-leader-telemetry"
	case !leader.Fresh:
		return max, "stale-leader"
	case leader.Down:
		return max, "leader-down"
	}
	band := 2 * leader.Dev
	if band < RaceSpreadMargin {
		band = RaceSpreadMargin
	}
	width = 1
	contested := false
	for _, f := range tels[1:] {
		if width >= max {
			break
		}
		switch {
		case f.Samples == 0 && !f.Down, !f.Fresh:
			width++ // can't rule the follower out
		case f.Down:
			// Fresh and down: never worth a racer.
		case f.RTT+2*f.Dev < leader.RTT+band:
			width++
			contested = true
		}
	}
	if width == 1 {
		return 1, "clear-leader"
	}
	if contested {
		return width, "close-contenders"
	}
	return width, "unknown-contenders"
}

// RaceWidth maps a ranked candidate list through AdviseRaceWidth using this
// monitor's telemetry.
func (m *Monitor) RaceWidth(cands []Candidate, max int) (int, string) {
	if max < 1 {
		max = DefaultAdaptiveRaceWidth
	}
	n := max
	if len(cands) < n {
		n = len(cands)
	}
	tels := make([]PathTelemetry, 0, n)
	m.mu.Lock()
	for _, c := range cands[:n] {
		fp := c.Path.Fingerprint()
		if e := m.entries[fp]; e != nil {
			tels = append(tels, m.telemetryLocked(fp, e))
		} else {
			tels = append(tels, PathTelemetry{Fingerprint: fp})
		}
	}
	m.mu.Unlock()
	return AdviseRaceWidth(tels, max)
}
