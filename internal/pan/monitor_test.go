package pan_test

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// fakePath builds a distinct in-memory path (distinct hop sequence →
// distinct fingerprint) without a control plane.
func fakePath(dst addr.IA, i int) *segment.Path {
	return &segment.Path{
		Src: topology.AS111,
		Dst: dst,
		Hops: []segment.Hop{
			{IA: topology.AS111, Egress: addr.IfID(100 + i)},
			{IA: dst, Ingress: addr.IfID(200 + i)},
		},
		Meta: segment.Metadata{Latency: time.Duration(10+i) * time.Millisecond},
	}
}

// fakePathVia builds a path AS111 → via... → dst with a given interface
// seed, so tests control exactly which inter-AS links a path crosses.
func fakePathVia(dst addr.IA, i int, oneWay time.Duration, via ...addr.IA) *segment.Path {
	hops := []segment.Hop{{IA: topology.AS111, Egress: addr.IfID(100 + i)}}
	for j, ia := range via {
		hops = append(hops, segment.Hop{IA: ia, Ingress: addr.IfID(300 + 10*i + j), Egress: addr.IfID(400 + 10*i + j)})
	}
	hops = append(hops, segment.Hop{IA: dst, Ingress: addr.IfID(200 + i)})
	return &segment.Path{Src: topology.AS111, Dst: dst, Hops: hops, Meta: segment.Metadata{Latency: oneWay}}
}

// probeScript is a deterministic ProbeFunc: per-fingerprint queues of
// outcomes, consumed one per probe; an exhausted queue repeats its last
// entry. It records every probe (fingerprint and virtual timestamp) in
// order.
type probeScript struct {
	mu      sync.Mutex
	script  map[string][]probeOutcome
	probes  []string    // fingerprints in probe order
	stamps  []time.Time // virtual probe times, aligned with probes
	perFP   map[string]int
	clock   netsim.Clock
	elapsed func(time.Duration) // advances the virtual clock mid-probe, when set
}

type probeOutcome struct {
	rtt time.Duration
	err error
}

func (s *probeScript) fn(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
	fp := path.Fingerprint()
	s.mu.Lock()
	s.probes = append(s.probes, fp)
	if s.clock != nil {
		s.stamps = append(s.stamps, s.clock.Now())
	}
	if s.perFP == nil {
		s.perFP = make(map[string]int)
	}
	n := s.perFP[fp]
	s.perFP[fp]++
	q := s.script[fp]
	s.mu.Unlock()
	if len(q) == 0 {
		return 0, fmt.Errorf("unscripted probe of %s", fp)
	}
	if n >= len(q) {
		n = len(q) - 1
	}
	out := q[n]
	if s.elapsed != nil && out.rtt > 0 {
		s.elapsed(out.rtt)
	}
	return out.rtt, out.err
}

func (s *probeScript) count(fp string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perFP[fp]
}

func (s *probeScript) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.probes)
}

func (s *probeScript) timestamps() []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Time(nil), s.stamps...)
}

// reportLog records reported outcomes per fingerprint.
type reportLog struct {
	mu  sync.Mutex
	byF map[string][]pan.Outcome
}

func (r *reportLog) report(path *segment.Path, o pan.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byF == nil {
		r.byF = make(map[string][]pan.Outcome)
	}
	fp := path.Fingerprint()
	r.byF[fp] = append(r.byF[fp], o)
}

func (r *reportLog) outcomes(fp string) []pan.Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]pan.Outcome(nil), r.byF[fp]...)
}

var probeErr = errors.New("probe timeout")

// testShards, when nonzero, pins MonitorOptions.Shards for every monitor
// the suite constructs — the hook TestMonitorSuiteAcrossShardCounts uses to
// re-run the behavioral tests on both sides of the shard hash (1 shard =
// the pre-sharding lock shape, 8 = destinations spread across locks).
var testShards int

func newTestMonitor(clock netsim.Clock, paths func(addr.IA) []*segment.Path, opts pan.MonitorOptions) *pan.Monitor {
	if opts.Shards == 0 {
		opts.Shards = testShards
	}
	return pan.NewMonitor(clock, paths, opts)
}

func probeTarget(i int) addr.UDPAddr {
	return addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr(fmt.Sprintf("10.0.0.%d", i+2))}, Port: 443}
}

// monitorFixture is a monitor over fake paths on a bare virtual clock, with
// one tracked destination and a report sink subscribed.
func monitorFixture(t *testing.T, paths []*segment.Path, script *probeScript, opts pan.MonitorOptions) (*pan.Monitor, *netsim.SimClock, *reportLog) {
	t.Helper()
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	script.clock = clock
	log := &reportLog{}
	opts.Probe = script.fn
	m := newTestMonitor(clock, func(addr.IA) []*segment.Path { return paths }, opts)
	m.Subscribe(log.report)
	m.Track(probeTarget(0), "probe.server")
	return m, clock, log
}

// drain advances virtual time in steps, yielding between steps so probe
// goroutines launched by timer callbacks get to run.
func drain(clock *netsim.SimClock, d, step time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		clock.Advance(step)
		// A probe runs in its own goroutine; give it real time to finish
		// before moving virtual time again.
		//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
		time.Sleep(time.Millisecond)
	}
}

func TestMonitorReportsRTTAndFailure(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	fp0, fp1 := paths[0].Fingerprint(), paths[1].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		fp0: {{rtt: 80 * time.Millisecond}},
		fp1: {{err: probeErr}},
	}}
	m, clock, log := monitorFixture(t, paths, script, pan.MonitorOptions{BaseInterval: time.Second})
	m.Start()
	defer m.Stop()

	// Every path's first deadline is phase-jittered within one interval.
	drain(clock, 1100*time.Millisecond, 50*time.Millisecond)
	got := log.outcomes(fp0)
	if len(got) < 1 || got[0].Failed || got[0].Latency != 80*time.Millisecond || !got[0].Probe {
		t.Fatalf("path 0 outcomes = %+v, want a Probe success with 80ms", got)
	}
	got = log.outcomes(fp1)
	if len(got) < 1 || !got[0].Failed || !got[0].Probe {
		t.Fatalf("path 1 outcomes = %+v, want a Probe failure", got)
	}
	tel, ok := m.Telemetry(fp0)
	if !ok || tel.RTT != 80*time.Millisecond || tel.Down || !tel.Fresh || tel.Samples != 1 {
		t.Fatalf("telemetry(fp0) = %+v, %v", tel, ok)
	}
	if tel, ok := m.Telemetry(fp1); !ok || !tel.Down {
		t.Fatalf("telemetry(fp1) = %+v, want down", tel)
	}

	// Stop halts the schedule.
	m.Stop()
	before := script.total()
	drain(clock, 5*time.Second, 250*time.Millisecond)
	if n := script.total(); n != before {
		t.Fatalf("probes after Stop: %d -> %d", before, n)
	}
}

// TestMonitorJitteredScheduling is the non-burst property at proxy scale:
// 24 tracked paths across 4 destinations must NOT probe in synchronized
// rounds — their first-round probe timestamps spread over the interval.
func TestMonitorJitteredScheduling(t *testing.T) {
	perTarget := 6
	byIA := make(map[string][]*segment.Path)
	var all []*segment.Path
	script := &probeScript{script: map[string][]probeOutcome{}}
	for tgt := 0; tgt < 4; tgt++ {
		for i := 0; i < perTarget; i++ {
			p := fakePath(topology.AS211, tgt*perTarget+i)
			byIA[topology.AS211.String()] = append(byIA[topology.AS211.String()], p)
			all = append(all, p)
			script.script[p.Fingerprint()] = []probeOutcome{{rtt: 20 * time.Millisecond}}
		}
	}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	script.clock = clock
	m := newTestMonitor(clock, func(ia addr.IA) []*segment.Path { return all }, pan.MonitorOptions{
		BaseInterval: 4 * time.Second,
		ProbeBudget:  -1, // uncapped: this test isolates phase jitter
		Probe:        script.fn,
	})
	for tgt := 0; tgt < 4; tgt++ {
		m.Track(probeTarget(tgt), "probe.server")
	}
	if n := m.TrackedPaths(); n != 24 {
		t.Fatalf("tracked %d paths, want 24", n)
	}
	m.Start()
	defer m.Stop()

	// Advance in fine steps through one interval: each timer fires at its
	// exact jittered deadline.
	drain(clock, 4100*time.Millisecond, 25*time.Millisecond)
	stamps := script.timestamps()
	if len(stamps) < 24 {
		t.Fatalf("probed %d of 24 paths in the first interval", len(stamps))
	}
	byInstant := make(map[time.Time]int)
	for _, s := range stamps {
		byInstant[s]++
	}
	if len(byInstant) < 12 {
		t.Fatalf("24 probes landed on only %d distinct instants — bursty scheduling", len(byInstant))
	}
	max := 0
	for _, n := range byInstant {
		if n > max {
			max = n
		}
	}
	if max > 6 {
		t.Fatalf("probe burst: %d probes at one instant (want ≤ 6 of 24)", max)
	}
}

// TestMonitorChurnAdaptiveIntervals: a path with oscillating RTT must be
// probed more often than a flat one — deviation shortens the interval
// toward MinInterval, stability stretches it toward MaxInterval.
func TestMonitorChurnAdaptiveIntervals(t *testing.T) {
	stable := fakePath(topology.AS211, 0)
	unstable := fakePath(topology.AS211, 1)
	script := &probeScript{script: map[string][]probeOutcome{
		stable.Fingerprint(): {{rtt: 50 * time.Millisecond}},
		unstable.Fingerprint(): {
			{rtt: 50 * time.Millisecond}, {rtt: 250 * time.Millisecond},
			{rtt: 50 * time.Millisecond}, {rtt: 250 * time.Millisecond},
			{rtt: 50 * time.Millisecond}, {rtt: 250 * time.Millisecond},
		},
	}}
	m, _, _ := monitorFixture(t, []*segment.Path{stable, unstable}, script, pan.MonitorOptions{
		BaseInterval: 4 * time.Second,
	})
	for i := 0; i < 6; i++ {
		m.RunRound()
	}
	st, _ := m.Telemetry(stable.Fingerprint())
	un, _ := m.Telemetry(unstable.Fingerprint())
	if st.Interval <= 4*time.Second {
		t.Fatalf("stable path interval = %v, want stretched past the 4s base", st.Interval)
	}
	if un.Interval >= 4*time.Second {
		t.Fatalf("unstable path interval = %v, want shortened below the 4s base", un.Interval)
	}
	if un.Interval < time.Second {
		t.Fatalf("unstable interval %v fell below MinInterval (base/4)", un.Interval)
	}
	if un.Dev <= st.Dev {
		t.Fatalf("deviation: unstable %v must exceed stable %v", un.Dev, st.Dev)
	}
}

// TestMonitorProbeBudgetFloor: with many paths and a tight global budget,
// per-path intervals are floored at paths/budget — the schedule never
// exceeds the configured probes/sec.
func TestMonitorProbeBudgetFloor(t *testing.T) {
	var paths []*segment.Path
	script := &probeScript{script: map[string][]probeOutcome{}}
	for i := 0; i < 20; i++ {
		p := fakePath(topology.AS211, i)
		paths = append(paths, p)
		script.script[p.Fingerprint()] = []probeOutcome{{rtt: 30 * time.Millisecond}}
	}
	// Base interval 1s with 20 paths would be 20 probes/s; budget 2/s
	// floors every interval at 10s.
	m, clock, _ := monitorFixture(t, paths, script, pan.MonitorOptions{
		BaseInterval: time.Second,
		MaxInterval:  time.Minute,
		ProbeBudget:  2,
	})
	m.Start()
	defer m.Stop()
	drain(clock, 8*time.Second, 100*time.Millisecond)
	if n := script.total(); n > 20 {
		t.Fatalf("%d probes in 8s under a 2/s budget (20 paths, floored at one probe per 10s each)", n)
	}
	for _, p := range paths {
		if n := script.count(p.Fingerprint()); n > 1 {
			t.Fatalf("path probed %d times within one floored interval", n)
		}
	}
}

// TestMonitorFailureBackoffAndRecovery: consecutive failures stretch a
// path's interval (dead paths must not eat the budget); a recovery resets
// it to base.
func TestMonitorFailureBackoffAndRecovery(t *testing.T) {
	p := fakePath(topology.AS211, 0)
	fp := p.Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		fp: {{err: probeErr}, {err: probeErr}, {rtt: 40 * time.Millisecond}},
	}}
	m, _, log := monitorFixture(t, []*segment.Path{p}, script, pan.MonitorOptions{BaseInterval: 2 * time.Second})
	m.RunRound()
	tel, _ := m.Telemetry(fp)
	if !tel.Down || tel.Interval != 4*time.Second {
		t.Fatalf("after 1 failure: %+v, want down with doubled interval", tel)
	}
	m.RunRound()
	tel, _ = m.Telemetry(fp)
	if tel.Interval != 8*time.Second {
		t.Fatalf("after 2 failures: interval %v, want 8s (max)", tel.Interval)
	}
	m.RunRound()
	tel, _ = m.Telemetry(fp)
	if tel.Down || tel.Interval != 2*time.Second || tel.RTT != 40*time.Millisecond {
		t.Fatalf("after recovery: %+v, want live at base interval", tel)
	}
	got := log.outcomes(fp)
	if len(got) != 3 || !got[0].Failed || !got[1].Failed || got[2].Failed {
		t.Fatalf("outcomes = %+v, want fail, fail, success", got)
	}
}

// TestMonitorRefcountedTracking: a destination tracked by two parties is
// probed once and survives the first Untrack; only the last Untrack clears
// the schedule (the shared-plane contract several dialers rely on).
func TestMonitorRefcountedTracking(t *testing.T) {
	p := fakePath(topology.AS211, 0)
	fp := p.Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{fp: {{rtt: 15 * time.Millisecond}}}}
	m, _, _ := monitorFixture(t, []*segment.Path{p}, script, pan.MonitorOptions{BaseInterval: time.Second})
	// Second tracker of the same destination (the fixture added the first).
	m.Track(probeTarget(0), "probe.server")
	if n := m.TargetCount(); n != 1 {
		t.Fatalf("TargetCount = %d, want 1 (refcounted, not duplicated)", n)
	}
	m.RunRound()
	if n := script.count(fp); n != 1 {
		t.Fatalf("dual-tracked destination probed %d times per round", n)
	}
	m.Untrack(probeTarget(0), "probe.server")
	if n := m.TargetCount(); n != 1 {
		t.Fatal("first Untrack must not clear a destination another party tracks")
	}
	m.RunRound()
	if n := script.count(fp); n != 2 {
		t.Fatalf("still-tracked destination not probed: %d", n)
	}
	m.Untrack(probeTarget(0), "probe.server")
	if n, e := m.TargetCount(), m.TrackedPaths(); n != 0 || e != 0 {
		t.Fatalf("after last Untrack: %d targets, %d paths, want 0/0", n, e)
	}
	m.RunRound()
	if n := script.total(); n != 2 {
		t.Fatalf("untracked destination still probed: %d total", n)
	}
}

// TestMonitorLinkAttribution: the min-across-paths decomposition blames
// exactly the link all degraded paths share, and exonerates links that any
// clean path crosses.
func TestMonitorLinkAttribution(t *testing.T) {
	// hotA and hotB share the 120→210 link and both run 80ms of excess;
	// clean crosses 110→210 (and the shared endpoints' leaf links) at its
	// metadata baseline.
	hotA := fakePathVia(topology.AS211, 0, 45*time.Millisecond, topology.Core110, topology.Core120, topology.Core210)
	hotB := fakePathVia(topology.AS211, 1, 46*time.Millisecond, topology.Core120, topology.Core210)
	clean := fakePathVia(topology.AS211, 2, 60*time.Millisecond, topology.Core110, topology.Core210)
	script := &probeScript{script: map[string][]probeOutcome{
		hotA.Fingerprint():  {{rtt: 90*time.Millisecond + 80*time.Millisecond}},
		hotB.Fingerprint():  {{rtt: 92*time.Millisecond + 80*time.Millisecond}},
		clean.Fingerprint(): {{rtt: 120 * time.Millisecond}},
	}}
	m, _, _ := monitorFixture(t, []*segment.Path{hotA, hotB, clean}, script, pan.MonitorOptions{BaseInterval: time.Second})
	m.RunRound()
	m.RunRound()

	stats := m.LinkStats()
	find := func(a, b addr.IA) (pan.LinkStat, bool) {
		for _, s := range stats {
			if (s.A == a && s.B == b) || (s.A == b && s.B == a) {
				return s, true
			}
		}
		return pan.LinkStat{}, false
	}
	hot, ok := find(topology.Core120, topology.Core210)
	if !ok || hot.Congestion < 70*time.Millisecond {
		t.Fatalf("shared hot link 120-210 = %+v, want ~80ms excess", hot)
	}
	if hot.Sharers != 2 {
		t.Fatalf("hot link sharers = %d, want 2", hot.Sharers)
	}
	// 110-210 is crossed only by the clean path: exonerated.
	if cool, ok := find(topology.Core110, topology.Core210); ok && cool.Congestion > 5*time.Millisecond {
		t.Fatalf("clean 110-210 link blamed: %+v", cool)
	}
	// AS111's uplink toward 110 is crossed by hotA AND clean — the clean
	// series exonerates it (min across paths).
	if up, ok := find(topology.AS111, topology.Core110); ok && up.Congestion > 5*time.Millisecond {
		t.Fatalf("shared-but-exonerated 111-110 link blamed: %+v", up)
	}
	// Penalties follow: hot paths pay, the clean path doesn't.
	if pA, pC := m.PathPenalty(hotA), m.PathPenalty(clean); pA < 70*time.Millisecond || pC > 10*time.Millisecond {
		t.Fatalf("penalties: hot %v clean %v", pA, pC)
	}
}

// TestMonitorFeedsSubscribedSelectors closes the shared-plane loop: one
// monitor's probe outcomes re-rank every subscribed selector.
func TestMonitorFeedsSubscribedSelectors(t *testing.T) {
	// Metadata says path 0 is fastest; live probes say path 1 is.
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	fp1 := paths[1].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		paths[0].Fingerprint(): {{rtt: 500 * time.Millisecond}},
		fp1:                    {{rtt: 5 * time.Millisecond}},
	}}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	m := newTestMonitor(clock, func(addr.IA) []*segment.Path { return paths }, pan.MonitorOptions{
		BaseInterval: time.Second, Probe: script.fn,
	})
	ls1, ls2 := pan.NewLatencySelector(), pan.NewLatencySelector()
	m.Subscribe(ls1.Report)
	unsub := m.Subscribe(ls2.Report)
	m.Track(probeTarget(0), "probe.server")

	if before := ls1.Rank(topology.AS211, paths); before[0].Path != paths[0] {
		t.Fatal("metadata ranking should prefer path 0")
	}
	m.RunRound()
	for i, ls := range []*pan.LatencySelector{ls1, ls2} {
		if after := ls.Rank(topology.AS211, paths); after[0].Path != paths[1] {
			t.Fatalf("selector %d not re-ranked by shared probes", i+1)
		}
	}
	// An unsubscribed sink stops receiving.
	unsub()
	script.mu.Lock()
	script.script[fp1] = []probeOutcome{{rtt: 600 * time.Millisecond}}
	script.perFP = nil
	script.mu.Unlock()
	m.RunRound()
	h1, _ := healthFor(ls1, fp1)
	h2, _ := healthFor(ls2, fp1)
	if h1.RTT == h2.RTT {
		t.Fatalf("unsubscribed selector still updated: ls1 %v ls2 %v", h1.RTT, h2.RTT)
	}
}

func healthFor(s pan.HealthExporter, fp string) (pan.PathHealth, bool) {
	for _, h := range s.PathHealth() {
		if h.Fingerprint == fp {
			return h, true
		}
	}
	return pan.PathHealth{}, false
}

// TestProbeOutcomesDoNotAdvanceRoundRobin: probe telemetry must feed
// health/latency without counting as served traffic — rotation advances on
// reported USE only.
func TestProbeOutcomesDoNotAdvanceRoundRobin(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	rr := pan.NewRoundRobinSelector(nil)
	first := rr.Rank(topology.AS211, paths)[0].Path

	// A whole probe round's worth of successes: rotation must not move.
	rr.Report(paths[0], pan.Outcome{Latency: 10 * time.Millisecond, Probe: true})
	rr.Report(paths[1], pan.Outcome{Latency: 20 * time.Millisecond, Probe: true})
	if got := rr.Rank(topology.AS211, paths)[0].Path; got != first {
		t.Fatal("probe outcomes advanced the round-robin rotation")
	}
	// A real use does.
	rr.Report(first, pan.Success)
	if got := rr.Rank(topology.AS211, paths)[0].Path; got == first {
		t.Fatal("served traffic must advance the rotation")
	}
	// A failed probe still demotes the path.
	rr.Report(paths[0], pan.Outcome{Failed: true, Probe: true})
	if got := rr.Rank(topology.AS211, paths)[0].Path; got != paths[1] {
		t.Fatal("failed probe must demote the path in the rotation")
	}
}

// TestAdviseRaceWidth is the table-driven contract of adaptive racing over
// (fresh+spread, fresh+close, stale, …) telemetry states.
func TestAdviseRaceWidth(t *testing.T) {
	fresh := func(rtt, dev time.Duration) pan.PathTelemetry {
		return pan.PathTelemetry{RTT: rtt, Dev: dev, Samples: 5, Fresh: true}
	}
	stale := func(rtt time.Duration) pan.PathTelemetry {
		return pan.PathTelemetry{RTT: rtt, Samples: 5, Fresh: false}
	}
	down := pan.PathTelemetry{Samples: 3, Down: true, Fresh: true}
	unknown := pan.PathTelemetry{}

	cases := []struct {
		name   string
		tels   []pan.PathTelemetry
		max    int
		width  int
		reason string
	}{
		{
			name:   "fresh leader, clear spread: no racing",
			tels:   []pan.PathTelemetry{fresh(100*time.Millisecond, 2*time.Millisecond), fresh(200*time.Millisecond, 2*time.Millisecond), fresh(300*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  1,
			reason: "clear-leader",
		},
		{
			name:   "fresh but close contenders: race them",
			tels:   []pan.PathTelemetry{fresh(100*time.Millisecond, 2*time.Millisecond), fresh(105*time.Millisecond, 2*time.Millisecond), fresh(400*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  2,
			reason: "close-contenders",
		},
		{
			name:   "stale leader: full width",
			tels:   []pan.PathTelemetry{stale(100 * time.Millisecond), fresh(200*time.Millisecond, time.Millisecond), fresh(300*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  3,
			reason: "stale-leader",
		},
		{
			name:   "no leader telemetry: full width",
			tels:   []pan.PathTelemetry{unknown, unknown, unknown},
			max:    3,
			width:  3,
			reason: "no-leader-telemetry",
		},
		{
			name:   "leader down: full width",
			tels:   []pan.PathTelemetry{down, fresh(200*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  2,
			reason: "leader-down",
		},
		{
			name:   "high leader variance widens the close band",
			tels:   []pan.PathTelemetry{fresh(100*time.Millisecond, 40*time.Millisecond), fresh(170*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  2,
			reason: "close-contenders",
		},
		{
			name: "unstable follower judged on its pessimistic estimate",
			// Mean below the leader, but RTT+2·Dev far above: not raced.
			tels:   []pan.PathTelemetry{fresh(250*time.Millisecond, time.Millisecond), fresh(220*time.Millisecond, 40*time.Millisecond)},
			max:    3,
			width:  1,
			reason: "clear-leader",
		},
		{
			name:   "fresh down follower is not raced",
			tels:   []pan.PathTelemetry{fresh(100*time.Millisecond, 2*time.Millisecond), down, fresh(104*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  2,
			reason: "close-contenders",
		},
		{
			name:   "unknown follower cannot be ruled out",
			tels:   []pan.PathTelemetry{fresh(100*time.Millisecond, 2*time.Millisecond), unknown, fresh(500*time.Millisecond, time.Millisecond)},
			max:    3,
			width:  2,
			reason: "unknown-contenders",
		},
		{
			name:   "width capped at max",
			tels:   []pan.PathTelemetry{stale(100 * time.Millisecond), unknown, unknown, unknown, unknown},
			max:    2,
			width:  2,
			reason: "stale-leader",
		},
		{
			name:   "single candidate never races",
			tels:   []pan.PathTelemetry{unknown},
			max:    4,
			width:  1,
			reason: "single-candidate",
		},
	}
	for _, tc := range cases {
		w, reason := pan.AdviseRaceWidth(tc.tels, tc.max)
		if w != tc.width || reason != tc.reason {
			t.Errorf("%s: AdviseRaceWidth = %d (%s), want %d (%s)", tc.name, w, reason, tc.width, tc.reason)
		}
	}
}

// TestHotspotSelectorRanksAroundSharedHotLink: the unit-level version of
// the hotspot e2e — end-to-end EWMAs alone keep the degraded path first,
// the link penalty flips the ranking.
func TestHotspotSelectorRanksAroundSharedHotLink(t *testing.T) {
	hotA := fakePathVia(topology.AS211, 0, 45*time.Millisecond, topology.Core120, topology.Core210)
	hotB := fakePathVia(topology.AS211, 1, 46*time.Millisecond, topology.Core120, topology.Core210)
	clean := fakePathVia(topology.AS211, 2, 80*time.Millisecond, topology.Core110, topology.Core210)
	paths := []*segment.Path{hotA, hotB, clean}
	// The shared link oscillates: the hot paths' RTT alternates between
	// baseline (~90ms) and +100ms, so their EWMA mean (~140ms, peaking at
	// ~147ms) stays BELOW the clean path's steady 160ms — a pure latency
	// ranking keeps picking them.
	script := &probeScript{script: map[string][]probeOutcome{
		hotA.Fingerprint():  {{rtt: 90 * time.Millisecond}, {rtt: 190 * time.Millisecond}},
		hotB.Fingerprint():  {{rtt: 92 * time.Millisecond}, {rtt: 192 * time.Millisecond}},
		clean.Fingerprint(): {{rtt: 160 * time.Millisecond}},
	}}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	m := newTestMonitor(clock, func(addr.IA) []*segment.Path { return paths }, pan.MonitorOptions{
		BaseInterval: time.Second, Probe: script.fn,
	})
	hs := pan.NewHotspotSelector(m)
	ls := pan.NewLatencySelector()
	m.Subscribe(hs.Report)
	m.Subscribe(ls.Report)
	m.Track(probeTarget(0), "probe.server")

	for i := 0; i < 6; i++ {
		// Alternate the scripted halves: even rounds baseline, odd +100ms.
		script.mu.Lock()
		phase := i % 2
		script.perFP = map[string]int{hotA.Fingerprint(): phase, hotB.Fingerprint(): phase}
		script.mu.Unlock()
		m.RunRound()
	}
	if got := ls.Rank(topology.AS211, paths)[0]; got.Path == clean {
		t.Fatal("latency EWMA alone should still prefer a degraded path (mean < clean RTT)")
	}
	if got := hs.Rank(topology.AS211, paths)[0]; got.Path != clean {
		t.Fatalf("hotspot ranking picked %s, want the clean path around the shared hot link", got.Path)
	}
}

// TestMonitorDropsVanishedPaths: when the control plane withdraws a path
// (expiry, turnover), the next sync retires its schedule — a long-lived
// monitor must not probe ghosts forever.
func TestMonitorDropsVanishedPaths(t *testing.T) {
	keep := fakePath(topology.AS211, 0)
	gone := fakePath(topology.AS211, 1)
	script := &probeScript{script: map[string][]probeOutcome{
		keep.Fingerprint(): {{rtt: 20 * time.Millisecond}},
		gone.Fingerprint(): {{rtt: 30 * time.Millisecond}},
	}}
	var mu sync.Mutex
	current := []*segment.Path{keep, gone}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	script.clock = clock
	m := newTestMonitor(clock, func(addr.IA) []*segment.Path {
		mu.Lock()
		defer mu.Unlock()
		return current
	}, pan.MonitorOptions{BaseInterval: time.Second, Probe: script.fn})
	m.Track(probeTarget(0), "probe.server")
	m.RunRound()
	if n := m.TrackedPaths(); n != 2 {
		t.Fatalf("tracked %d paths, want 2", n)
	}

	mu.Lock()
	current = []*segment.Path{keep}
	mu.Unlock()
	m.RunRound() // the round's target sync reconciles against the new set
	if n := m.TrackedPaths(); n != 1 {
		t.Fatalf("withdrawn path still scheduled: %d tracked", n)
	}
	m.RunRound()
	if n := script.count(gone.Fingerprint()); n > 2 {
		t.Fatalf("withdrawn path probed %d times", n)
	}
	if n := script.count(keep.Fingerprint()); n != 3 {
		t.Fatalf("surviving path probed %d times, want every round", n)
	}
	// Its telemetry is retained for a grace horizon (a re-advertised path
	// must not restart from zero), just no longer scheduled.
	if _, ok := m.Telemetry(gone.Fingerprint()); !ok {
		t.Fatal("withdrawn path's telemetry dropped immediately")
	}
}

// TestMonitorObserveMatchesProbePipeline: a passive sample stream must land
// in exactly the telemetry an identical probe stream produces — same EWMA,
// same deviation, same sample count, same link attribution — differing only
// in the passive/probe marking of the outcomes and counters.
func TestMonitorObserveMatchesProbePipeline(t *testing.T) {
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	samples := []time.Duration{100 * time.Millisecond, 180 * time.Millisecond, 60 * time.Millisecond}

	// Two monitors on one clock: one fed by probes, one fed by Observe.
	// Identical metadata latency (45ms one-way) so excess attribution
	// matches; distinct interface seeds so the paths are distinct.
	probed := fakePathVia(topology.AS211, 0, 45*time.Millisecond, topology.Core120, topology.Core210)
	observed := fakePathVia(topology.AS211, 1, 45*time.Millisecond, topology.Core120, topology.Core210)
	script := &probeScript{script: map[string][]probeOutcome{probed.Fingerprint(): {
		{rtt: samples[0]}, {rtt: samples[1]}, {rtt: samples[2]},
	}}}
	mProbe := newTestMonitor(clock, func(addr.IA) []*segment.Path { return []*segment.Path{probed} }, pan.MonitorOptions{
		BaseInterval: time.Second, Probe: script.fn,
	})
	mProbe.Track(probeTarget(0), "probe.server")
	mPassive := newTestMonitor(clock, func(addr.IA) []*segment.Path { return []*segment.Path{observed} }, pan.MonitorOptions{
		BaseInterval: time.Second, Probe: script.fn,
	})
	log := &reportLog{}
	mPassive.Subscribe(log.report)
	mPassive.Track(probeTarget(0), "probe.server")

	for _, rtt := range samples {
		mProbe.RunRound()
		mPassive.Observe(observed, rtt)
	}

	pt, ok1 := mProbe.Telemetry(probed.Fingerprint())
	ot, ok2 := mPassive.Telemetry(observed.Fingerprint())
	if !ok1 || !ok2 {
		t.Fatalf("telemetry missing: probe %v passive %v", ok1, ok2)
	}
	if pt.RTT != ot.RTT || pt.Dev != ot.Dev || pt.Samples != ot.Samples || pt.Interval != ot.Interval {
		t.Fatalf("passive pipeline diverged from probe pipeline:\n  probe   %+v\n  passive %+v", pt, ot)
	}
	if pt.PassiveSamples != 0 || ot.PassiveSamples != len(samples) {
		t.Fatalf("passive split: probe-fed %d, observe-fed %d, want 0 and %d", pt.PassiveSamples, ot.PassiveSamples, len(samples))
	}
	if !ot.Fresh {
		t.Fatal("passive samples must refresh staleness")
	}
	// Link attribution went through the same decomposition.
	if pp, op := mProbe.PathPenalty(probed), mPassive.PathPenalty(observed); pp != op {
		t.Fatalf("link penalties diverged: probe %v passive %v", pp, op)
	}
	// Outcomes fan out marked passive, never as probes.
	got := log.outcomes(observed.Fingerprint())
	if len(got) != len(samples) {
		t.Fatalf("sinks saw %d passive outcomes, want %d", len(got), len(samples))
	}
	for i, o := range got {
		if o.Probe || !o.Passive || o.Failed || o.Latency != samples[i] {
			t.Fatalf("passive outcome %d = %+v, want Passive latency %v", i, o, samples[i])
		}
	}
	// The per-destination split mirrors it.
	if split, ok := mPassive.TargetSamples(probeTarget(0), "probe.server"); !ok || split.Passive != len(samples) || split.Probes != 0 {
		t.Fatalf("TargetSamples = %+v, %v; want %d passive / 0 probes", split, ok, len(samples))
	}
}

// TestMonitorObserveSuppressesScheduledProbes is the budget-prioritization
// contract: a path with continuous passive samples keeps re-arming its next
// scheduled probe and stays fresh at (near-)zero probe cost, while an idle
// path keeps its full schedule.
func TestMonitorObserveSuppressesScheduledProbes(t *testing.T) {
	busy := fakePath(topology.AS211, 0)
	idle := fakePath(topology.AS211, 1)
	script := &probeScript{script: map[string][]probeOutcome{
		busy.Fingerprint(): {{rtt: 40 * time.Millisecond}},
		idle.Fingerprint(): {{rtt: 60 * time.Millisecond}},
	}}
	m, clock, _ := monitorFixture(t, []*segment.Path{busy, idle}, script, pan.MonitorOptions{
		BaseInterval: 4 * time.Second,
		MaxInterval:  4 * time.Second, // pin the idle cadence for exact counting
	})
	m.Start()
	defer m.Stop()

	// 24s of traffic on the busy path: one passive sample per second,
	// starting before the first phase-jittered deadline (>= iv/8 = 500ms)
	// can fire.
	for i := 0; i < 24; i++ {
		m.Observe(busy, 40*time.Millisecond)
		drain(clock, time.Second, 100*time.Millisecond)
	}

	if n := script.count(busy.Fingerprint()); n != 0 {
		t.Fatalf("busy path probed %d times despite continuous passive samples", n)
	}
	if n := script.count(idle.Fingerprint()); n < 4 {
		t.Fatalf("idle path probed only %d times in 24s at a 4s interval", n)
	}
	tel, ok := m.Telemetry(busy.Fingerprint())
	if !ok || !tel.Fresh || tel.RTT != 40*time.Millisecond {
		t.Fatalf("busy telemetry = %+v, %v; want fresh 40ms with zero probes", tel, ok)
	}
	if tel.PassiveSamples != tel.Samples || tel.Samples < 20 {
		t.Fatalf("busy samples = %d (%d passive), want all-passive >= 20", tel.Samples, tel.PassiveSamples)
	}

	// Traffic stops: the schedule keeps firing and, once the last passive
	// sample has aged past the interval, active probing resumes — within
	// two intervals at worst (a fire landing just inside the freshness
	// window skips once more). Suppression must never strand a path.
	drain(clock, 10*time.Second, 100*time.Millisecond)
	if n := script.count(busy.Fingerprint()); n == 0 {
		t.Fatal("probing never resumed after passive traffic stopped")
	}
}

// TestMonitorObserveUntrackedPathDropped: passive samples must not create or
// refresh telemetry for paths nothing tracks — tracking is the scheduling
// contract.
func TestMonitorObserveUntrackedPathDropped(t *testing.T) {
	tracked := fakePath(topology.AS211, 0)
	stranger := fakePath(topology.AS211, 1) // never offered by the paths func
	script := &probeScript{script: map[string][]probeOutcome{
		tracked.Fingerprint(): {{rtt: 50 * time.Millisecond}},
	}}
	m, _, log := monitorFixture(t, []*segment.Path{tracked}, script, pan.MonitorOptions{BaseInterval: time.Second})

	m.Observe(stranger, 10*time.Millisecond)
	if _, ok := m.Telemetry(stranger.Fingerprint()); ok {
		t.Fatal("Observe created telemetry for an untracked path")
	}
	if got := log.outcomes(stranger.Fingerprint()); len(got) != 0 {
		t.Fatalf("untracked passive sample fanned out: %+v", got)
	}

	// A retired entry (telemetry kept, schedule dropped) is equally off
	// limits: its knowledge may be kept, but passive data must not keep
	// refreshing a destination nothing dials.
	m.RunRound()
	m.Untrack(probeTarget(0), "probe.server")
	before, _ := m.Telemetry(tracked.Fingerprint())
	m.Observe(tracked, 10*time.Millisecond)
	after, _ := m.Telemetry(tracked.Fingerprint())
	if after.Samples != before.Samples || after.RTT != before.RTT {
		t.Fatalf("Observe refreshed a retired entry: %+v -> %+v", before, after)
	}
	if got := log.outcomes(tracked.Fingerprint()); len(got) != 1 {
		t.Fatalf("retired-path passive sample fanned out: %d outcomes", len(got))
	}
}

// TestMonitorStopRestartMidProbe is the stuck-probing regression test: a
// probe still on the wire while the monitor is stopped and restarted must
// neither latch the path out of the schedule nor lose its deadline —
// probing resumes after the drain.
func TestMonitorStopRestartMidProbe(t *testing.T) {
	p := fakePath(topology.AS211, 0)
	fp := p.Fingerprint()
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	gate := make(chan struct{})
	launched := make(chan struct{}, 16)
	var mu sync.Mutex
	probes := 0
	probe := func(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
		mu.Lock()
		probes++
		first := probes == 1
		mu.Unlock()
		launched <- struct{}{}
		if first {
			<-gate // hold the first probe in flight across Stop/Start
		}
		return 30 * time.Millisecond, nil
	}
	m := newTestMonitor(clock, func(addr.IA) []*segment.Path { return []*segment.Path{p} }, pan.MonitorOptions{
		BaseInterval: time.Second, Probe: probe,
	})
	m.Track(probeTarget(0), "probe.server")
	m.Start()
	defer m.Stop()

	// Advance until the first scheduled probe is in flight.
	for i := 0; i < 40; i++ {
		clock.Advance(100 * time.Millisecond)
		//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
		time.Sleep(time.Millisecond)
		select {
		case <-launched:
			i = 40
		default:
		}
	}
	mu.Lock()
	inFlight := probes == 1
	mu.Unlock()
	if !inFlight {
		t.Fatal("first probe never launched")
	}

	m.Stop()
	m.Start()
	close(gate) // the held probe drains after the restart
	//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
	time.Sleep(5 * time.Millisecond)

	// Probing must resume: the drained probe (or Start) re-armed the
	// schedule, and later deadlines keep firing.
	drain(clock, 5*time.Second, 100*time.Millisecond)
	mu.Lock()
	total := probes
	mu.Unlock()
	if total < 3 {
		t.Fatalf("probing did not resume after stop/restart mid-probe: %d probes total", total)
	}
	if tel, ok := m.Telemetry(fp); !ok || tel.Samples == 0 {
		t.Fatalf("telemetry after resume = %+v, %v", tel, ok)
	}
}
