// Package pan is the paper's core contribution as a library: policy-driven,
// user-controllable path-aware networking for applications.
//
// The package is layered:
//
//   - A Selector ranks the candidate paths a destination offers
//     (Rank) and ingests transport feedback (Report). Four strategies ship:
//     PolicySelector (PPL policy + ISD geofence, the paper's §4.1
//     semantics), LatencySelector (metadata/observed-latency ranking),
//     RoundRobinSelector (load spreading over compliant paths), and
//     PinnedSelector (interactive per-destination pinning, the §4.2 UI
//     hook). Selectors compose: wrap a PolicySelector in a PinnedSelector,
//     rotate a latency ranking, and so on.
//
//   - A Host is a PAN-enabled endpoint: an snet stack plus path lookup.
//     Host.Select applies a selector and an operational Mode to one
//     destination; Host.Listen serves squic.
//
//   - A Dialer turns selection into connections: per-destination connection
//     reuse keyed by a selector epoch (SetSelector bumps the epoch and every
//     pooled connection re-dials under the new policy), candidate failover
//     (a failed dial reports the path down and tries the next candidate),
//     multipath racing (RaceWidth > 1 dials the top-ranked candidates
//     concurrently with staggered starts and keeps the first completed
//     handshake, canceling the losers), and transport feedback
//     (ReportFailure marks a pooled connection's path down,
//     SCMP-revocation style, so the next dial re-ranks around it; each
//     winning dial reports its measured handshake latency as a live RTT
//     sample).
//
//   - A Monitor is the shared telemetry plane below all of it: ONE monitor
//     per host probes every path of every destination any dialer tracks (a
//     minimal squic handshake per probe), on per-path phase-jittered,
//     churn-adaptive schedules under a global probes/sec budget, and fans
//     the outcomes out to every subscribed selector. It decomposes each
//     end-to-end measurement into per-link congestion estimates
//     (boolean-tomography style), which HotspotSelector ranks over —
//     penalizing paths through high-variance shared links — and which
//     AdaptiveRace draws on to decide, per dial, whether racing wide could
//     pay (stale or contested leader) or a single handshake suffices.
//
// The paper's two operational modes (§4.2) apply at selection time:
//
//   - Opportunistic: "the user's path policy is interpreted as a preference.
//     If a website is available via SCION but no policy-compliant path is
//     available... the website will still load" — the ranking's best
//     candidate is used even when non-compliant, and flagged.
//   - Strict: "only allows policy-compliant paths and the browser will
//     display a connection error if no such path is found."
package pan

import (
	"errors"
	"fmt"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pathdb"
	"tango/internal/segment"
	"tango/internal/snet"
	"tango/internal/squic"
)

// Mode is the paper's operational mode (§4.2).
type Mode int

const (
	// Opportunistic treats the policy as a preference.
	Opportunistic Mode = iota
	// Strict requires a policy-compliant SCION path.
	Strict
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "opportunistic"
}

// Selection describes how a path was chosen, feeding the UI indicator and
// the statistics module.
type Selection struct {
	// Path is the chosen forwarding path.
	Path *segment.Path
	// Compliant reports whether the path satisfies the active policy.
	Compliant bool
	// Options is the number of candidate paths the network offered.
	Options int
	// CompliantOptions is how many of them satisfied the policy.
	CompliantOptions int
}

// Errors returned by selection and dialing.
var (
	// ErrNoPath means the destination is not reachable over SCION at all.
	ErrNoPath = errors.New("pan: no SCION path to destination")
	// ErrNoCompliantPath means paths exist but none satisfies the policy
	// (strict mode refuses; opportunistic mode falls back).
	ErrNoCompliantPath = errors.New("pan: no policy-compliant SCION path")
)

// Host is a PAN-enabled endpoint: an snet stack plus the control-plane
// machinery needed to select paths.
type Host struct {
	stack *snet.Stack
	comb  *pathdb.Combiner
	clock netsim.Clock
	pool  *squic.CertPool
}

// NewHost assembles a PAN host.
func NewHost(stack *snet.Stack, comb *pathdb.Combiner, pool *squic.CertPool) *Host {
	return &Host{stack: stack, comb: comb, clock: stack.Clock(), pool: pool}
}

// Local returns the host's SCION address.
func (h *Host) Local() addr.Addr { return h.stack.Local() }

// Clock returns the host's clock.
func (h *Host) Clock() netsim.Clock { return h.clock }

// Paths returns all current paths to dst, unfiltered.
func (h *Host) Paths(dst addr.IA) []*segment.Path {
	return h.comb.Paths(h.stack.Local().IA, dst, h.clock.Now())
}

// candidates ranks the paths to dst under the selector and applies the mode:
// Strict keeps only compliant candidates, Opportunistic keeps the ranking
// as-is (compliant candidates lead for the built-in selectors). The returned
// Selection carries the option counts but no chosen path yet.
func (h *Host) candidates(dst addr.IA, s Selector, mode Mode) ([]Candidate, Selection, error) {
	paths := h.Paths(dst)
	if len(paths) == 0 {
		return nil, Selection{}, fmt.Errorf("%w: %s", ErrNoPath, dst)
	}
	if s == nil {
		s = NewPolicySelector(nil, nil)
	}
	cands := s.Rank(dst, paths)
	sel := Selection{Options: len(paths)}
	for _, c := range cands {
		if c.Compliant {
			sel.CompliantOptions++
		}
	}
	if mode == Strict {
		// Filter into a fresh slice: Rank's return may be selector-owned.
		kept := make([]Candidate, 0, len(cands))
		for _, c := range cands {
			if c.Compliant {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	if len(cands) == 0 {
		return nil, sel, fmt.Errorf("%w: %s (%d paths offered)", ErrNoCompliantPath, dst, len(paths))
	}
	return cands, sel, nil
}

// Select picks the best path to dst under the selector's ranking. In Strict
// mode it fails with ErrNoCompliantPath when only non-compliant candidates
// exist; in Opportunistic mode the ranking's best candidate wins and is
// flagged via Selection.Compliant. A nil selector accepts every path in
// network order.
func (h *Host) Select(dst addr.IA, s Selector, mode Mode) (Selection, error) {
	cands, sel, err := h.candidates(dst, s, mode)
	if err != nil {
		return sel, err
	}
	sel.Path = cands[0].Path
	sel.Compliant = cands[0].Compliant
	return sel, nil
}

// Listen starts a PAN server with the given identity on a fixed port,
// mirroring the paper's "Go-based web servers can be compiled with our PAN
// library to include SCION support directly".
func (h *Host) Listen(port uint16, identity *squic.Identity) (*squic.Listener, error) {
	sock, err := h.stack.Listen(port)
	if err != nil {
		return nil, err
	}
	lis, err := squic.Listen(sock, &squic.Config{Clock: h.clock, Identity: identity})
	if err != nil {
		sock.Close()
		return nil, err
	}
	return lis, nil
}
