// Package pan is the paper's core contribution as a library: policy-driven,
// user-controllable path-aware networking for applications. It glues path
// lookup (pathdb), user policies (ppl/policy), and the secure transport
// (squic) behind a small API with the paper's two operational modes:
//
//   - Opportunistic: "the user's path policy is interpreted as a preference.
//     If a website is available via SCION but no policy-compliant path is
//     available... the website will still load" — Dial falls back to a
//     non-compliant path and flags it.
//   - Strict: "only allows policy-compliant paths and the browser will
//     display a connection error if no such path is found."
package pan

import (
	"context"
	"errors"
	"fmt"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pathdb"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/segment"
	"tango/internal/snet"
	"tango/internal/squic"
)

// Mode is the paper's operational mode (§4.2).
type Mode int

const (
	// Opportunistic treats the policy as a preference.
	Opportunistic Mode = iota
	// Strict requires a policy-compliant SCION path.
	Strict
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "opportunistic"
}

// Selection describes how a path was chosen, feeding the UI indicator and
// the statistics module.
type Selection struct {
	// Path is the chosen forwarding path.
	Path *segment.Path
	// Compliant reports whether the path satisfies the active policy.
	Compliant bool
	// Options is the number of candidate paths the network offered.
	Options int
	// CompliantOptions is how many of them satisfied the policy.
	CompliantOptions int
}

// Errors returned by selection and dialing.
var (
	// ErrNoPath means the destination is not reachable over SCION at all.
	ErrNoPath = errors.New("pan: no SCION path to destination")
	// ErrNoCompliantPath means paths exist but none satisfies the policy
	// (strict mode refuses; opportunistic mode falls back).
	ErrNoCompliantPath = errors.New("pan: no policy-compliant SCION path")
)

// Host is a PAN-enabled endpoint: an snet stack plus the control-plane
// machinery needed to select paths.
type Host struct {
	stack *snet.Stack
	comb  *pathdb.Combiner
	clock netsim.Clock
	pool  *squic.CertPool
}

// NewHost assembles a PAN host.
func NewHost(stack *snet.Stack, comb *pathdb.Combiner, pool *squic.CertPool) *Host {
	return &Host{stack: stack, comb: comb, clock: stack.Clock(), pool: pool}
}

// Local returns the host's SCION address.
func (h *Host) Local() addr.Addr { return h.stack.Local() }

// Clock returns the host's clock.
func (h *Host) Clock() netsim.Clock { return h.clock }

// Paths returns all current paths to dst, unfiltered.
func (h *Host) Paths(dst addr.IA) []*segment.Path {
	return h.comb.Paths(h.stack.Local().IA, dst, h.clock.Now())
}

// SelectPath picks the best path to dst under the policy and geofence. In
// Strict mode it fails with ErrNoCompliantPath when only non-compliant paths
// exist; in Opportunistic mode it returns the best non-compliant path with
// Compliant=false instead.
func (h *Host) SelectPath(dst addr.IA, pol *ppl.Policy, fence *policy.Geofence, mode Mode) (Selection, error) {
	paths := h.Paths(dst)
	if len(paths) == 0 {
		return Selection{}, fmt.Errorf("%w: %s", ErrNoPath, dst)
	}
	compliant := make([]*segment.Path, 0, len(paths))
	for _, p := range paths {
		if fence.Compliant(p) && (pol == nil || pol.Accepts(p)) {
			compliant = append(compliant, p)
		}
	}
	if pol != nil {
		compliant = pol.Filter(compliant) // apply orderings
	}
	sel := Selection{Options: len(paths), CompliantOptions: len(compliant)}
	if len(compliant) > 0 {
		sel.Path = compliant[0]
		sel.Compliant = true
		return sel, nil
	}
	if mode == Strict {
		return sel, fmt.Errorf("%w: %s (%d paths offered)", ErrNoCompliantPath, dst, len(paths))
	}
	// Opportunistic fallback: best available path, flagged non-compliant,
	// and surfaced to the user via the indicator (paper §4.2).
	sel.Path = paths[0]
	sel.Compliant = false
	return sel, nil
}

// Dial connects to a remote SCION endpoint with policy-driven path
// selection and returns the connection plus the selection record.
func (h *Host) Dial(ctx context.Context, remote addr.UDPAddr, serverName string, pol *ppl.Policy, fence *policy.Geofence, mode Mode) (*squic.Conn, Selection, error) {
	sel, err := h.SelectPath(remote.IA, pol, fence, mode)
	if err != nil {
		return nil, sel, err
	}
	sock, err := h.stack.Listen(0)
	if err != nil {
		return nil, sel, fmt.Errorf("pan: allocating socket: %w", err)
	}
	conn, err := squic.Dial(sock, remote, sel.Path, serverName, &squic.Config{Clock: h.clock, Pool: h.pool})
	if err != nil {
		return nil, sel, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = deadline // handshake timeouts are governed by squic.Config
	}
	return conn, sel, nil
}

// Listen starts a PAN server with the given identity on a fixed port,
// mirroring the paper's "Go-based web servers can be compiled with our PAN
// library to include SCION support directly".
func (h *Host) Listen(port uint16, identity *squic.Identity) (*squic.Listener, error) {
	sock, err := h.stack.Listen(port)
	if err != nil {
		return nil, err
	}
	lis, err := squic.Listen(sock, &squic.Config{Clock: h.clock, Identity: identity})
	if err != nil {
		sock.Close()
		return nil, err
	}
	return lis, nil
}
