package pan_test

import (
	"context"
	"io"
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/dataplane"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/pathdb"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/snet"
	"tango/internal/squic"
	"tango/internal/topology"
)

var (
	t0 = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	t1 = t0.Add(24 * time.Hour)
)

type world struct {
	clock *netsim.SimClock
	comb  *pathdb.Combiner
	dw    *dataplane.World
	disp  map[addr.IA]*snet.Dispatcher
	pool  *squic.CertPool
}

func newWorld(t *testing.T) *world {
	t.Helper()
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	if err := beacon.NewService(topo, infra, reg, 12*time.Hour).Run(t0); err != nil {
		t.Fatal(err)
	}
	clock := netsim.NewSimClock(t0.Add(time.Hour))
	dw, err := dataplane.NewWorld(topo, infra.ForwardingKeys, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	disp := make(map[addr.IA]*snet.Dispatcher)
	for _, as := range topo.ASes() {
		disp[as.IA] = snet.NewDispatcher(dw.Router(as.IA), clock)
	}
	t.Cleanup(clock.AutoAdvance(150 * time.Microsecond))
	return &world{clock: clock, comb: pathdb.NewCombiner(reg), dw: dw, disp: disp, pool: squic.NewCertPool()}
}

func (w *world) host(ia addr.IA, ip string) *pan.Host {
	stack := w.disp[ia].Host(netip.MustParseAddr(ip), w.dw.Router(ia))
	return pan.NewHost(stack, w.comb, w.pool)
}

// echoServer serves one echo stream per accepted connection, forever.
func echoServer(t *testing.T, h *pan.Host, port uint16, name string, pool *squic.CertPool) *squic.Listener {
	t.Helper()
	id, err := squic.NewIdentity(name)
	if err != nil {
		t.Fatal(err)
	}
	pool.AddIdentity(id)
	lis, err := h.Listen(port, id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					s, err := conn.AcceptStream()
					if err != nil {
						return
					}
					go io.Copy(s, s)
				}
			}()
		}
	}()
	return lis
}

func TestSelectCompliant(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	sel, err := h.Select(topology.AS211, pan.NewPolicySelector(policy.LowLatency(), nil), pan.Opportunistic)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Compliant || sel.Path == nil {
		t.Fatalf("selection %+v", sel)
	}
	if sel.Path.Meta.Latency != 91*time.Millisecond {
		t.Fatalf("low-latency selection picked %v", sel.Path.Meta.Latency)
	}
	if sel.Options < 2 || sel.CompliantOptions != sel.Options {
		t.Fatalf("options %d/%d", sel.CompliantOptions, sel.Options)
	}
}

func TestSelectGeofenceStrictFails(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	fence := policy.NewBlockGeofence(2) // destination ISD is blocked
	s := pan.NewPolicySelector(nil, fence)
	if _, err := h.Select(topology.AS211, s, pan.Strict); err == nil {
		t.Fatal("strict selection through blocked ISD succeeded")
	}
	// Opportunistic: falls back to a non-compliant path, flagged.
	sel, err := h.Select(topology.AS211, s, pan.Opportunistic)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Compliant || sel.Path == nil || sel.CompliantOptions != 0 {
		t.Fatalf("opportunistic fallback selection %+v", sel)
	}
	// Parity with the seed behavior: the fallback is the network's first
	// offered path.
	if paths := h.Paths(topology.AS211); sel.Path.Fingerprint() != paths[0].Fingerprint() {
		t.Fatalf("fallback picked %s, want network-order first %s", sel.Path, paths[0])
	}
}

func TestSelectGeofenceReroutes(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	// 111->121: fastest is the peering path; blocking nothing picks it.
	sel, _ := h.Select(topology.AS121, pan.NewPolicySelector(policy.LowLatency(), nil), pan.Opportunistic)
	if len(sel.Path.Hops) != 2 {
		t.Fatalf("expected peering path, got %s", sel.Path)
	}
	// A sequence policy forbidding the peering link forces the core route.
	seq, err := ppl.ParseSequence("0 1-ff00:0:110 0*")
	if err != nil {
		t.Fatal(err)
	}
	pol := &ppl.Policy{Sequence: seq, Orderings: []ppl.Ordering{ppl.OrderLatency}}
	sel, err = h.Select(topology.AS121, pan.NewPolicySelector(pol, nil), pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Compliant || sel.Path.Meta.Latency != 11*time.Millisecond {
		t.Fatalf("rerouted selection %+v lat=%v", sel, sel.Path.Meta.Latency)
	}
}

func TestSelectNoPath(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	if _, err := h.Select(addr.MustIA(9, 9), nil, pan.Opportunistic); err == nil {
		t.Fatal("selection to unknown AS succeeded")
	}
}

func TestSelectNilSelectorDefaults(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	sel, err := h.Select(topology.AS211, nil, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Compliant || sel.CompliantOptions != sel.Options {
		t.Fatalf("nil selector must accept everything: %+v", sel)
	}
}

func TestDialAndServe(t *testing.T) {
	w := newWorld(t)
	server := w.host(topology.AS211, "10.0.0.2")
	lis := echoServer(t, server, 7000, "pan.server", w.pool)
	defer lis.Close()

	client := w.host(topology.AS111, "10.0.0.1")
	remote := addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 7000}
	dialer := client.NewDialer(pan.DialOptions{
		Selector: pan.NewPolicySelector(policy.GreenRouting(0), policy.NewBlockGeofence()),
		Mode:     pan.Strict,
	})
	defer dialer.Close()
	conn, sel, err := dialer.Dial(context.Background(), remote, "pan.server")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Compliant {
		t.Fatal("selection not compliant")
	}
	s, err := conn.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("green"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "green" {
		t.Fatalf("echo %q", buf)
	}
	// Green routing orders by carbon: the chosen path must be the
	// carbon-minimal one among the offered paths.
	paths := client.Paths(topology.AS211)
	minCarbon := paths[0].Meta.CarbonPerGB
	for _, p := range paths {
		if p.Meta.CarbonPerGB < minCarbon {
			minCarbon = p.Meta.CarbonPerGB
		}
	}
	if sel.Path.Meta.CarbonPerGB != minCarbon {
		t.Fatalf("green routing picked %v g/GB, min is %v", sel.Path.Meta.CarbonPerGB, minCarbon)
	}
}

func TestModeString(t *testing.T) {
	if pan.Opportunistic.String() != "opportunistic" || pan.Strict.String() != "strict" {
		t.Fatal("mode strings wrong")
	}
}
