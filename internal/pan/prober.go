package pan

import (
	"sort"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
	"tango/internal/squic"
)

// ProbeFunc measures one round trip to remote over path, bounded by
// timeout. It returns the observed RTT, or an error when the path did not
// answer in time.
type ProbeFunc func(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error)

// ProberOptions parameterizes a Prober. The zero value gets sensible
// defaults from NewProber.
type ProberOptions struct {
	// Interval between probe rounds on the prober's clock (default 3s).
	Interval time.Duration
	// Timeout caps one probe (default: Interval, at most squic's default
	// handshake timeout) so a dead path can never stall a round past the
	// next one.
	Timeout time.Duration
	// DownBackoff is how many rounds a path sits out after a failed probe
	// before being retried; consecutive failures double the sit-out up to
	// MaxBackoff rounds (defaults 1 and 8). Backoff keeps a mostly-dead
	// path set from consuming every round in timeouts while still
	// rediscovering recovered paths.
	DownBackoff int
	MaxBackoff  int
	// Probe overrides the measurement. Host.NewProber defaults it to a
	// minimal squic handshake against the tracked server (one round trip
	// on the wire); tests inject deterministic fakes.
	Probe ProbeFunc
}

// probeTarget is one destination whose paths are probed.
type probeTarget struct {
	remote     addr.UDPAddr
	serverName string
}

// probeState is per-path retry/backoff bookkeeping.
type probeState struct {
	failures int // consecutive failed probes
	skip     int // rounds left to sit out
}

// Prober periodically measures per-path round-trip latency to a set of
// tracked destinations and reports each outcome — Outcome{Latency: rtt} on
// success, Failure on timeout — into a report sink, typically the active
// selector's Report method. This closes the paper's feedback loop between
// dials: rankings react to live network conditions, not just to the
// outcomes of whatever connections the application happened to open.
//
// All scheduling runs on the injected Clock, so experiments drive the
// prober deterministically on virtual time. Probe rounds run in their own
// goroutine (never inside a timer callback, which would stall a virtual
// clock advance); within a round, paths are probed sequentially in path
// order, keeping outcome order deterministic.
type Prober struct {
	clock  netsim.Clock
	paths  func(addr.IA) []*segment.Path
	report func(*segment.Path, Outcome)
	opts   ProberOptions

	mu      sync.Mutex
	targets map[string]probeTarget
	state   map[string]*probeState
	timer   func() bool
	started bool
	probing bool
}

// NewProber builds a prober from its parts: a clock, a path source (what
// Host.Paths provides), and a report sink. Most callers want Host.NewProber
// instead, which wires all three plus the default squic-handshake probe.
func NewProber(clock netsim.Clock, paths func(addr.IA) []*segment.Path, report func(*segment.Path, Outcome), opts ProberOptions) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = 3 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = opts.Interval
		if opts.Timeout > squic.DefaultHandshakeTimeout {
			opts.Timeout = squic.DefaultHandshakeTimeout
		}
	}
	if opts.DownBackoff <= 0 {
		opts.DownBackoff = 1
	}
	if opts.MaxBackoff < opts.DownBackoff {
		opts.MaxBackoff = 8
		if opts.MaxBackoff < opts.DownBackoff {
			opts.MaxBackoff = opts.DownBackoff
		}
	}
	return &Prober{
		clock:   clock,
		paths:   paths,
		report:  report,
		opts:    opts,
		targets: make(map[string]probeTarget),
		state:   make(map[string]*probeState),
	}
}

// NewProber builds a prober on the host's clock and path lookup whose
// default probe is a minimal squic handshake against the tracked server —
// one round trip on the wire, closed immediately after. Outcomes go to
// report; pass the selector's Report directly, or an indirection like
// func(p, o) { dialer.Selector().Report(p, o) } when the selector can be
// swapped at runtime.
func (h *Host) NewProber(report func(*segment.Path, Outcome), opts ProberOptions) *Prober {
	if opts.Probe == nil {
		opts.Probe = h.handshakeProbe
	}
	return NewProber(h.clock, h.Paths, report, opts)
}

// handshakeProbe measures a path by completing (and immediately closing) a
// squic handshake: exactly one round trip on the wire, with the server
// proving its identity, so a probe "success" means the path really carries
// application traffic end to end.
func (h *Host) handshakeProbe(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
	sock, err := h.stack.Listen(0)
	if err != nil {
		return 0, err
	}
	start := h.clock.Now()
	conn, err := squic.Dial(sock, remote, path, serverName, &squic.Config{
		Clock:            h.clock,
		Pool:             h.pool,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		return 0, err
	}
	rtt := h.clock.Since(start)
	conn.Close()
	return rtt, nil
}

// Track adds a destination to the probe set. Tracking is idempotent.
func (p *Prober) Track(remote addr.UDPAddr, serverName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets[remote.String()+"|"+serverName] = probeTarget{remote: remote, serverName: serverName}
}

// Untrack removes a destination from the probe set.
func (p *Prober) Untrack(remote addr.UDPAddr, serverName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.targets, remote.String()+"|"+serverName)
}

// Start arms the probe cycle: the first round runs one Interval from now.
// Idempotent while running; callable again after Stop.
func (p *Prober) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	p.armLocked()
}

// Stop cancels the probe cycle. A round already in flight drains its
// current probe and exits.
func (p *Prober) Stop() {
	p.mu.Lock()
	p.started = false
	t := p.timer
	p.timer = nil
	p.mu.Unlock()
	if t != nil {
		t()
	}
}

func (p *Prober) armLocked() {
	p.timer = p.clock.AfterFunc(p.opts.Interval, p.tick)
}

// tick runs inside a clock timer callback and must not block: it re-arms
// the cycle and hands the actual probing to a goroutine. A round that
// outlives the interval (many dead paths despite backoff) makes the next
// tick skip rather than pile up concurrent rounds.
func (p *Prober) tick() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.armLocked()
	if p.probing {
		p.mu.Unlock()
		return
	}
	p.probing = true
	p.mu.Unlock()
	go func() {
		p.RunRound()
		p.mu.Lock()
		p.probing = false
		p.mu.Unlock()
	}()
}

// RunRound synchronously probes every current path of every tracked
// destination once, honoring per-path backoff and deduplicating paths
// shared by multiple targets. It is the body the background cycle runs;
// tests and tools may call it directly for deterministic rounds.
func (p *Prober) RunRound() {
	p.mu.Lock()
	wasStarted := p.started
	targets := make([]probeTarget, 0, len(p.targets))
	for _, t := range p.targets {
		targets = append(targets, t)
	}
	p.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].remote.String()+targets[i].serverName < targets[j].remote.String()+targets[j].serverName
	})

	probed := make(map[string]bool)
	for _, t := range targets {
		for _, path := range p.paths(t.remote.IA) {
			fp := path.Fingerprint()
			if probed[fp] {
				continue
			}
			probed[fp] = true

			p.mu.Lock()
			if wasStarted && !p.started {
				// Stopped mid-round: drain without probing further.
				p.mu.Unlock()
				return
			}
			st := p.state[fp]
			if st == nil {
				st = &probeState{}
				p.state[fp] = st
			}
			if st.skip > 0 {
				st.skip--
				p.mu.Unlock()
				continue
			}
			p.mu.Unlock()

			rtt, err := p.opts.Probe(t.remote, t.serverName, path, p.opts.Timeout)
			if err != nil {
				p.mu.Lock()
				st.failures++
				backoff := p.opts.DownBackoff
				for i := 1; i < st.failures && backoff < p.opts.MaxBackoff; i++ {
					backoff *= 2
				}
				if backoff > p.opts.MaxBackoff {
					backoff = p.opts.MaxBackoff
				}
				st.skip = backoff
				p.mu.Unlock()
				p.report(path, Outcome{Failed: true, Probe: true})
				continue
			}
			p.mu.Lock()
			st.failures, st.skip = 0, 0
			p.mu.Unlock()
			p.report(path, Outcome{Latency: rtt, Probe: true})
		}
	}
}
