package pan_test

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// fakePath builds a distinct in-memory path (distinct hop sequence →
// distinct fingerprint) without a control plane.
func fakePath(dst addr.IA, i int) *segment.Path {
	return &segment.Path{
		Src: topology.AS111,
		Dst: dst,
		Hops: []segment.Hop{
			{IA: topology.AS111, Egress: addr.IfID(100 + i)},
			{IA: dst, Ingress: addr.IfID(200 + i)},
		},
		Meta: segment.Metadata{Latency: time.Duration(10+i) * time.Millisecond},
	}
}

// probeScript is a deterministic ProbeFunc: per-fingerprint queues of
// outcomes, consumed one per probe; an exhausted queue repeats its last
// entry. It records every probe in order.
type probeScript struct {
	mu      sync.Mutex
	script  map[string][]probeOutcome
	probes  []string // fingerprints in probe order
	perFP   map[string]int
	elapsed func(time.Duration) // advances the virtual clock mid-probe, when set
}

type probeOutcome struct {
	rtt time.Duration
	err error
}

func (s *probeScript) fn(remote addr.UDPAddr, serverName string, path *segment.Path, timeout time.Duration) (time.Duration, error) {
	fp := path.Fingerprint()
	s.mu.Lock()
	s.probes = append(s.probes, fp)
	if s.perFP == nil {
		s.perFP = make(map[string]int)
	}
	n := s.perFP[fp]
	s.perFP[fp]++
	q := s.script[fp]
	s.mu.Unlock()
	if len(q) == 0 {
		return 0, fmt.Errorf("unscripted probe of %s", fp)
	}
	if n >= len(q) {
		n = len(q) - 1
	}
	out := q[n]
	if s.elapsed != nil && out.rtt > 0 {
		s.elapsed(out.rtt)
	}
	return out.rtt, out.err
}

func (s *probeScript) count(fp string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perFP[fp]
}

func (s *probeScript) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.probes)
}

// reportLog records reported outcomes per fingerprint.
type reportLog struct {
	mu  sync.Mutex
	byF map[string][]pan.Outcome
}

func (r *reportLog) report(path *segment.Path, o pan.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byF == nil {
		r.byF = make(map[string][]pan.Outcome)
	}
	fp := path.Fingerprint()
	r.byF[fp] = append(r.byF[fp], o)
}

func (r *reportLog) outcomes(fp string) []pan.Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]pan.Outcome(nil), r.byF[fp]...)
}

var probeErr = errors.New("probe timeout")

// proberFixture is a prober over fake paths on a bare virtual clock.
func proberFixture(t *testing.T, paths []*segment.Path, script *probeScript, opts pan.ProberOptions) (*pan.Prober, *netsim.SimClock, *reportLog) {
	t.Helper()
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	log := &reportLog{}
	opts.Probe = script.fn
	p := pan.NewProber(clock, func(addr.IA) []*segment.Path { return paths }, log.report, opts)
	p.Track(addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}, "probe.server")
	return p, clock, log
}

// drain advances virtual time in steps, yielding between steps so probe
// round goroutines launched by timer callbacks get to run.
func drain(clock *netsim.SimClock, d, step time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		clock.Advance(step)
		// A probe round runs in its own goroutine; give it real time to
		// finish before moving virtual time again.
		time.Sleep(time.Millisecond)
	}
}

func TestProberReportsRTTAndFailure(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	fp0, fp1 := paths[0].Fingerprint(), paths[1].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		fp0: {{rtt: 80 * time.Millisecond}},
		fp1: {{err: probeErr}},
	}}
	p, clock, log := proberFixture(t, paths, script, pan.ProberOptions{Interval: time.Second})
	p.Start()
	defer p.Stop()

	drain(clock, 1500*time.Millisecond, 100*time.Millisecond)
	got := log.outcomes(fp0)
	if len(got) != 1 || got[0].Failed || got[0].Latency != 80*time.Millisecond {
		t.Fatalf("path 0 outcomes = %+v, want one success with 80ms", got)
	}
	got = log.outcomes(fp1)
	if len(got) != 1 || !got[0].Failed {
		t.Fatalf("path 1 outcomes = %+v, want one failure", got)
	}
}

func TestProberIntervalScheduling(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0)}
	fp := paths[0].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{fp: {{rtt: 10 * time.Millisecond}}}}
	p, clock, _ := proberFixture(t, paths, script, pan.ProberOptions{Interval: 2 * time.Second})
	p.Start()
	defer p.Stop()

	// No probe before the first interval elapses.
	drain(clock, 1900*time.Millisecond, 100*time.Millisecond)
	if n := script.count(fp); n != 0 {
		t.Fatalf("probed %d times before the first interval", n)
	}
	// One probe per interval afterwards.
	drain(clock, 6200*time.Millisecond, 100*time.Millisecond)
	if n := script.count(fp); n != 4 {
		t.Fatalf("probed %d times after 8.1s with a 2s interval, want 4", n)
	}
	// Stop halts the cycle.
	p.Stop()
	drain(clock, 4*time.Second, 100*time.Millisecond)
	if n := script.count(fp); n != 4 {
		t.Fatalf("probe after Stop: %d rounds", n)
	}
}

func TestProberDownPathBackoff(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	down, live := paths[0].Fingerprint(), paths[1].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		down: {{err: probeErr}, {err: probeErr}, {err: probeErr}, {rtt: 40 * time.Millisecond}},
		live: {{rtt: 20 * time.Millisecond}},
	}}
	p, clock, log := proberFixture(t, paths, script, pan.ProberOptions{
		Interval: time.Second, DownBackoff: 1, MaxBackoff: 2,
	})
	p.Start()
	defer p.Stop()

	// Rounds:            1     2     3     4     5     6     7     8
	// down path:        F(1) skip  F(2) skip  skip  F(3) skip  skip
	// → probe #4 (the recovery) lands in round 9.
	drain(clock, 9500*time.Millisecond, 100*time.Millisecond)
	if n := script.count(down); n != 4 {
		t.Fatalf("down path probed %d times in 9 rounds, want 4 (backoff 1,2,2)", n)
	}
	if n := script.count(live); n != 9 {
		t.Fatalf("live path probed %d times in 9 rounds, want every round", n)
	}
	// The recovery is reported as a fresh RTT sample and resets backoff.
	got := log.outcomes(down)
	if len(got) != 4 || got[3].Failed || got[3].Latency != 40*time.Millisecond {
		t.Fatalf("down path outcomes = %+v, want 3 failures then recovery", got)
	}
	drain(clock, time.Second, 100*time.Millisecond)
	if n := script.count(down); n != 5 {
		t.Fatalf("recovered path must be probed every round again, got %d", n)
	}
}

func TestProberRunRoundDirectAndUntrack(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0)}
	fp := paths[0].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{fp: {{rtt: 15 * time.Millisecond}}}}
	p, _, log := proberFixture(t, paths, script, pan.ProberOptions{Interval: time.Second})

	// Direct rounds need no Start and no clock movement.
	p.RunRound()
	p.RunRound()
	if n := script.count(fp); n != 2 {
		t.Fatalf("2 direct rounds probed %d times", n)
	}
	if got := log.outcomes(fp); len(got) != 2 || got[0].Latency != 15*time.Millisecond {
		t.Fatalf("outcomes = %+v", got)
	}
	// Untracked destinations are not probed.
	p.Untrack(addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}, "probe.server")
	p.RunRound()
	if n := script.total(); n != 2 {
		t.Fatalf("probe after Untrack: %d total probes", n)
	}
}

// TestProberFeedsLatencySelector closes the loop of the ROADMAP item: RTT
// reports reorder a LatencySelector's ranking away from stale metadata.
func TestProberFeedsLatencySelector(t *testing.T) {
	// Metadata says path 0 is fastest; live probes say path 1 is.
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	fp1 := paths[1].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		paths[0].Fingerprint(): {{rtt: 500 * time.Millisecond}},
		fp1:                    {{rtt: 5 * time.Millisecond}},
	}}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	ls := pan.NewLatencySelector()
	p := pan.NewProber(clock, func(addr.IA) []*segment.Path { return paths }, ls.Report,
		pan.ProberOptions{Interval: time.Second, Probe: script.fn})
	p.Track(addr.UDPAddr{Addr: addr.Addr{IA: topology.AS211, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}, "probe.server")

	before := ls.Rank(topology.AS211, paths)
	if before[0].Path != paths[0] {
		t.Fatal("metadata ranking should prefer path 0")
	}
	p.RunRound()
	after := ls.Rank(topology.AS211, paths)
	if after[0].Path != paths[1] {
		t.Fatal("live RTT reports must re-rank path 1 first")
	}
	health := ls.PathHealth()
	if len(health) != 2 {
		t.Fatalf("PathHealth = %+v, want both paths", health)
	}
	for _, h := range health {
		if h.Down {
			t.Fatalf("no path is down: %+v", h)
		}
		if h.Fingerprint == fp1 && h.RTT != 5*time.Millisecond {
			t.Fatalf("path 1 RTT = %v", h.RTT)
		}
	}
}

// TestProbeOutcomesDoNotAdvanceRoundRobin: probe telemetry must feed
// health/latency without counting as served traffic — rotation advances on
// reported USE only.
func TestProbeOutcomesDoNotAdvanceRoundRobin(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	rr := pan.NewRoundRobinSelector(nil)
	first := rr.Rank(topology.AS211, paths)[0].Path

	// A whole probe round's worth of successes: rotation must not move.
	rr.Report(paths[0], pan.Outcome{Latency: 10 * time.Millisecond, Probe: true})
	rr.Report(paths[1], pan.Outcome{Latency: 20 * time.Millisecond, Probe: true})
	if got := rr.Rank(topology.AS211, paths)[0].Path; got != first {
		t.Fatal("probe outcomes advanced the round-robin rotation")
	}
	// A real use does.
	rr.Report(first, pan.Success)
	if got := rr.Rank(topology.AS211, paths)[0].Path; got == first {
		t.Fatal("served traffic must advance the rotation")
	}
	// A failed probe still demotes the path.
	rr.Report(paths[0], pan.Outcome{Failed: true, Probe: true})
	if got := rr.Rank(topology.AS211, paths)[0].Path; got != paths[1] {
		t.Fatal("failed probe must demote the path in the rotation")
	}
}
