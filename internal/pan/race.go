package pan

// Hotspot-aware racing: when a dial races wide, the racer set should not
// stack every handshake onto the same shared links — one congested link
// would then sink all racers at once, which defeats racing's entire point.

// DisjointRace picks the racer set for a width-w race from a ranked
// candidate list. The leader (cands[0]) always races; each further slot goes
// to the highest-ranked remaining candidate whose inter-AS link set overlaps
// the already-picked racers' links the LEAST (fully disjoint when possible)
// — greedy max-disjoint over the paths' link sets. Ties break by rank, so
// with no link diversity available the pick degrades to plain top-k.
//
// The returned slice is ordered by pick (leader first), which is also the
// stagger order: the most-preferred racer keeps its head start.
func DisjointRace(cands []Candidate, width int) []Candidate {
	if width > len(cands) {
		width = len(cands)
	}
	if width <= 0 {
		return nil
	}
	picked := make([]Candidate, 0, width)
	taken := make([]bool, len(cands))
	used := make(map[linkKey]bool)
	take := func(i int) {
		taken[i] = true
		picked = append(picked, cands[i])
		for _, lk := range pathLinks(cands[i].Path) {
			used[lk] = true
		}
	}
	take(0)
	for len(picked) < width {
		bestIdx, bestOverlap := -1, 0
		for i, c := range cands {
			if taken[i] {
				continue
			}
			overlap := 0
			for _, lk := range pathLinks(c.Path) {
				if used[lk] {
					overlap++
				}
			}
			if bestIdx == -1 || overlap < bestOverlap {
				bestIdx, bestOverlap = i, overlap
			}
		}
		if bestIdx == -1 {
			break
		}
		take(bestIdx)
	}
	return picked
}
