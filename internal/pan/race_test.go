package pan_test

import (
	"testing"
	"time"

	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestDisjointRace: the racer pick prefers link-disjoint candidates so one
// congested shared link cannot sink every racer, degrades to top-k when no
// diversity exists, and always leads with the ranking's first choice.
func TestDisjointRace(t *testing.T) {
	lat := 10 * time.Millisecond
	// Candidate paths AS111 → AS211 with controlled link sets:
	//   hotA, hotB   both cross 110 and 120 (3 shared links incl. endpoints)
	//   viaCore      crosses 110 only (shares 111-110 with the hot pair)
	//   via221       crosses 221 only (shares nothing but the endpoints' own
	//                first/last links, which differ: 111-221 and 221-211)
	hotA := fakePathVia(topology.AS211, 0, lat, topology.Core110, topology.Core120)
	hotB := fakePathVia(topology.AS211, 1, lat, topology.Core110, topology.Core120)
	viaCore := fakePathVia(topology.AS211, 2, lat, topology.Core110)
	via221 := fakePathVia(topology.AS211, 3, lat, topology.AS221)

	cand := func(paths ...*segment.Path) []pan.Candidate {
		out := make([]pan.Candidate, len(paths))
		for i, p := range paths {
			out[i] = pan.Candidate{Path: p, Compliant: true}
		}
		return out
	}
	fps := func(cands []pan.Candidate) []string {
		out := make([]string, len(cands))
		for i, c := range cands {
			out[i] = c.Path.Fingerprint()
		}
		return out
	}

	cases := []struct {
		name  string
		cands []pan.Candidate
		width int
		want  []*segment.Path
	}{
		{
			name:  "disjoint alternative leapfrogs a same-links follower",
			cands: cand(hotA, hotB, via221),
			width: 2,
			want:  []*segment.Path{hotA, via221},
		},
		{
			name:  "no diversity degrades to top-k",
			cands: cand(hotA, hotB),
			width: 2,
			want:  []*segment.Path{hotA, hotB},
		},
		{
			name:  "least overlap breaks the tie, then rank",
			cands: cand(hotA, viaCore, hotB),
			width: 3,
			// viaCore overlaps hotA on 1 link, hotB on 3 → viaCore second.
			want: []*segment.Path{hotA, viaCore, hotB},
		},
		{
			name:  "leader races even when it overlaps everything",
			cands: cand(hotA, via221, viaCore),
			width: 3,
			want:  []*segment.Path{hotA, via221, viaCore},
		},
		{
			name:  "width capped at candidate count",
			cands: cand(hotA, via221),
			width: 5,
			want:  []*segment.Path{hotA, via221},
		},
		{
			name:  "width one is just the leader",
			cands: cand(hotB, hotA),
			width: 1,
			want:  []*segment.Path{hotB},
		},
	}
	for _, tc := range cases {
		got := pan.DisjointRace(tc.cands, tc.width)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %d racers %v, want %d", tc.name, len(got), fps(got), len(tc.want))
		}
		for i, w := range tc.want {
			if got[i].Path.Fingerprint() != w.Fingerprint() {
				t.Fatalf("%s: racer %d = %s, want %s (full pick %v)", tc.name, i, got[i].Path, w, fps(got))
			}
		}
	}

	if got := pan.DisjointRace(nil, 3); got != nil {
		t.Fatalf("empty candidates raced %v", got)
	}
}

// TestDisjointRaceDegenerateWidths pins the pick's behavior when the width
// outruns the topology's diversity: the set must not shrink below the
// requested width while candidates remain, shared-fate candidate lists must
// degrade to rank order, and the least-overlap fallback must be
// deterministic (ties break by rank, never by map iteration).
func TestDisjointRaceDegenerateWidths(t *testing.T) {
	lat := 10 * time.Millisecond
	// Link sets (inter-AS, endpoint-inclusive):
	//   hotA, hotB  111-110, 110-120, 120-211
	//   viaCore     111-110, 110-211
	//   via120      111-120, 120-211
	//   via221      111-221, 221-211
	hotA := fakePathVia(topology.AS211, 0, lat, topology.Core110, topology.Core120)
	hotB := fakePathVia(topology.AS211, 1, lat, topology.Core110, topology.Core120)
	viaCore := fakePathVia(topology.AS211, 2, lat, topology.Core110)
	via120 := fakePathVia(topology.AS211, 3, lat, topology.Core120)
	via221 := fakePathVia(topology.AS211, 4, lat, topology.AS221)
	// Shared-fate set: same IA-level links as hotA, distinct fingerprints.
	cloneA := fakePathVia(topology.AS211, 5, lat, topology.Core110, topology.Core120)
	cloneB := fakePathVia(topology.AS211, 6, lat, topology.Core110, topology.Core120)

	cand := func(paths ...*segment.Path) []pan.Candidate {
		out := make([]pan.Candidate, len(paths))
		for i, p := range paths {
			out[i] = pan.Candidate{Path: p, Compliant: true}
		}
		return out
	}

	cases := []struct {
		name  string
		cands []pan.Candidate
		width int
		want  []*segment.Path
	}{
		{
			// Only two candidates are mutually disjoint (hotA, via221); a
			// width-4 request must still fill all four slots, continuing
			// with the least-overlapping leftovers (viaCore shares one link
			// with the picked set, hotB shares three).
			name:  "width exceeds the mutually disjoint count",
			cands: cand(hotA, hotB, viaCore, via221),
			width: 4,
			want:  []*segment.Path{hotA, via221, viaCore, hotB},
		},
		{
			// Every candidate rides the exact same links: no pick can buy
			// diversity, so the set is plain rank order — shared fate is
			// accepted, not an error.
			name:  "all candidates share every link",
			cands: cand(hotA, cloneA, cloneB),
			width: 3,
			want:  []*segment.Path{hotA, cloneA, cloneB},
		},
		{
			// viaCore and via120 each overlap the leader on exactly one
			// link (111-110 and 120-211 respectively): the tie must break
			// by rank, deterministically, and hotB's triple overlap must
			// sort it last.
			name:  "equal-overlap fallback breaks ties by rank",
			cands: cand(hotA, viaCore, via120, hotB),
			width: 4,
			want:  []*segment.Path{hotA, viaCore, via120, hotB},
		},
	}
	for _, tc := range cases {
		// The pick must also be stable call-over-call: it feeds the stagger
		// order, and a flapping racer set would thrash warm connections.
		var prev []pan.Candidate
		for run := 0; run < 3; run++ {
			got := pan.DisjointRace(tc.cands, tc.width)
			if len(got) != len(tc.want) {
				t.Fatalf("%s: got %d racers, want %d", tc.name, len(got), len(tc.want))
			}
			for i, w := range tc.want {
				if got[i].Path.Fingerprint() != w.Fingerprint() {
					t.Fatalf("%s: racer %d = %s, want %s", tc.name, i, got[i].Path, w)
				}
			}
			if prev != nil {
				for i := range got {
					if got[i].Path.Fingerprint() != prev[i].Path.Fingerprint() {
						t.Fatalf("%s: pick changed between identical calls at slot %d", tc.name, i)
					}
				}
			}
			prev = got
		}
	}
}
