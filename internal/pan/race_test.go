package pan_test

import (
	"testing"
	"time"

	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestDisjointRace: the racer pick prefers link-disjoint candidates so one
// congested shared link cannot sink every racer, degrades to top-k when no
// diversity exists, and always leads with the ranking's first choice.
func TestDisjointRace(t *testing.T) {
	lat := 10 * time.Millisecond
	// Candidate paths AS111 → AS211 with controlled link sets:
	//   hotA, hotB   both cross 110 and 120 (3 shared links incl. endpoints)
	//   viaCore      crosses 110 only (shares 111-110 with the hot pair)
	//   via221       crosses 221 only (shares nothing but the endpoints' own
	//                first/last links, which differ: 111-221 and 221-211)
	hotA := fakePathVia(topology.AS211, 0, lat, topology.Core110, topology.Core120)
	hotB := fakePathVia(topology.AS211, 1, lat, topology.Core110, topology.Core120)
	viaCore := fakePathVia(topology.AS211, 2, lat, topology.Core110)
	via221 := fakePathVia(topology.AS211, 3, lat, topology.AS221)

	cand := func(paths ...*segment.Path) []pan.Candidate {
		out := make([]pan.Candidate, len(paths))
		for i, p := range paths {
			out[i] = pan.Candidate{Path: p, Compliant: true}
		}
		return out
	}
	fps := func(cands []pan.Candidate) []string {
		out := make([]string, len(cands))
		for i, c := range cands {
			out[i] = c.Path.Fingerprint()
		}
		return out
	}

	cases := []struct {
		name  string
		cands []pan.Candidate
		width int
		want  []*segment.Path
	}{
		{
			name:  "disjoint alternative leapfrogs a same-links follower",
			cands: cand(hotA, hotB, via221),
			width: 2,
			want:  []*segment.Path{hotA, via221},
		},
		{
			name:  "no diversity degrades to top-k",
			cands: cand(hotA, hotB),
			width: 2,
			want:  []*segment.Path{hotA, hotB},
		},
		{
			name:  "least overlap breaks the tie, then rank",
			cands: cand(hotA, viaCore, hotB),
			width: 3,
			// viaCore overlaps hotA on 1 link, hotB on 3 → viaCore second.
			want: []*segment.Path{hotA, viaCore, hotB},
		},
		{
			name:  "leader races even when it overlaps everything",
			cands: cand(hotA, via221, viaCore),
			width: 3,
			want:  []*segment.Path{hotA, via221, viaCore},
		},
		{
			name:  "width capped at candidate count",
			cands: cand(hotA, via221),
			width: 5,
			want:  []*segment.Path{hotA, via221},
		},
		{
			name:  "width one is just the leader",
			cands: cand(hotB, hotA),
			width: 1,
			want:  []*segment.Path{hotB},
		},
	}
	for _, tc := range cases {
		got := pan.DisjointRace(tc.cands, tc.width)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %d racers %v, want %d", tc.name, len(got), fps(got), len(tc.want))
		}
		for i, w := range tc.want {
			if got[i].Path.Fingerprint() != w.Fingerprint() {
				t.Fatalf("%s: racer %d = %s, want %s (full pick %v)", tc.name, i, got[i].Path, w, fps(got))
			}
		}
	}

	if got := pan.DisjointRace(nil, 3); got != nil {
		t.Fatalf("empty candidates raced %v", got)
	}
}
