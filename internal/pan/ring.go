package pan

import (
	"runtime"
	"sync/atomic"
	"time"

	"tango/internal/segment"
)

// defaultIngestRing is the per-shard sample ring capacity when
// MonitorOptions.IngestRing is unset. 256 fixed-size records (~10KiB per
// shard) absorb the largest realistic ack burst between two wheel ticks.
const defaultIngestRing = 256

// sampleRec is one passive sample in flight through a shard's ingest ring.
type sampleRec struct {
	path *segment.Path
	rtt  time.Duration
}

// ringSlot is one cell of a sampleRing. The payload fields are plain:
// they are published/consumed strictly through the seq protocol (a slot's
// payload is only touched by the goroutine that owns the slot's current
// phase), so they need no atomics of their own.
type ringSlot struct {
	seq  atomic.Uint64
	path *segment.Path
	rtt  time.Duration
}

// sampleRing is a bounded MPMC ring of passive samples — the Vyukov
// bounded-queue design (cf. ndn-dpdk's ringbuffer, DPDK rte_ring): each
// slot carries a sequence number that encodes its phase, producers claim
// slots by CASing tail, the drain combiner claims them by CASing head, and
// nobody ever blocks. Slot states, for ring length L:
//
//	seq == pos        free: a producer may claim it for ticket pos
//	seq == pos+1      full: payload published, a consumer may claim it
//	anything else     owned by whoever is between claim and publish/release
//
// Overflow never blocks a producer (Observe runs on the squic ack hot
// path): a full ring reclaims the OLDEST sample — counted as coalesced
// when it was for the same path as the incoming sample, dropped
// otherwise — and retries the push. All counters are monotonic atomics so
// IngestStats reads them without any lock.
type sampleRing struct {
	mask  uint64
	slots []ringSlot

	head atomic.Uint64 // next ticket to consume
	tail atomic.Uint64 // next ticket to produce

	enqueued  atomic.Uint64 // samples successfully pushed
	coalesced atomic.Uint64 // overflow evictions replaced by a same-path sample
	dropped   atomic.Uint64 // overflow evictions with no same-path replacement
}

func newSampleRing(capacity int) *sampleRing {
	if capacity < 2 {
		capacity = 2
	}
	pow := 1
	for pow < capacity {
		pow <<= 1
	}
	r := &sampleRing{mask: uint64(pow - 1), slots: make([]ringSlot, pow)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues a sample. It never blocks and never fails: when the ring
// is full it evicts the oldest pending sample (coalesce/drop accounting in
// reclaimOldest) to make room.
func (r *sampleRing) push(path *segment.Path, rtt time.Duration) {
	for {
		pos := r.tail.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.path, slot.rtt = path, rtt
				slot.seq.Store(pos + 1)
				r.enqueued.Add(1)
				return
			}
		case seq < pos:
			// Ring full: make room by evicting the oldest sample. When the
			// oldest slot is mid-publish we cannot make progress ourselves;
			// yield so its owner can finish (matters on GOMAXPROCS=1).
			if !r.reclaimOldest(path) {
				runtime.Gosched()
			}
		default:
			// Lost the ticket race; retry at the new tail.
		}
	}
}

// reclaimOldest evicts the sample at head to make room for an incoming
// push, counting it as coalesced when the evicted sample was for the same
// path (the newer sample supersedes it) and dropped otherwise. Returns
// false when the head slot was not in a claimable state (mid-publish, or
// a concurrent consumer/reclaimer won it).
func (r *sampleRing) reclaimOldest(path *segment.Path) bool {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return false
	}
	if !r.head.CompareAndSwap(pos, pos+1) {
		return false
	}
	// Winning the head CAS makes the slot exclusively ours: producers are
	// gated on seq, consumers moved past pos.
	evicted := slot.path
	slot.path = nil
	slot.seq.Store(pos + uint64(len(r.slots)))
	if evicted != nil && path != nil &&
		(evicted == path || evicted.Fingerprint() == path.Fingerprint()) {
		r.coalesced.Add(1)
	} else {
		r.dropped.Add(1)
	}
	return true
}

// pop dequeues the oldest published sample. ok is false when the ring is
// empty — or when the head sample is still mid-publish, in which case the
// producer that claimed it is guaranteed to run its own drain after
// publishing, so no sample is ever stranded.
func (r *sampleRing) pop() (rec sampleRec, ok bool) {
	for {
		pos := r.head.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			if r.head.CompareAndSwap(pos, pos+1) {
				rec = sampleRec{path: slot.path, rtt: slot.rtt}
				slot.path = nil
				slot.seq.Store(pos + uint64(len(r.slots)))
				return rec, true
			}
		case seq <= pos:
			return sampleRec{}, false
		default:
			// An overflow reclaim moved head under us; retry.
		}
	}
}

// empty reports whether the ring has no samples, claimed-but-unpublished
// ones included. Two relaxed loads — cheap enough for every read-path
// flush check.
func (r *sampleRing) empty() bool {
	return r.head.Load() == r.tail.Load()
}
