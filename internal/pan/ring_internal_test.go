package pan

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// ringPath builds a distinct in-memory path to dst (distinct hop sequence →
// distinct fingerprint) for the whitebox ring/ingest tests.
func ringPath(dst addr.IA, i int) *segment.Path {
	return &segment.Path{
		Src: addr.IA{ISD: 1, AS: 0xff00_0000_0111},
		Dst: dst,
		Hops: []segment.Hop{
			{IA: addr.IA{ISD: 1, AS: 0xff00_0000_0111}, Egress: addr.IfID(700 + i)},
			{IA: dst, Ingress: addr.IfID(800 + i)},
		},
		Meta: segment.Metadata{Latency: time.Duration(10+i) * time.Millisecond},
	}
}

func ringDst(n int) addr.IA { return addr.IA{ISD: 2, AS: addr.AS(0xff00_0000_0200 + uint64(n))} }

func ringRemote(dst addr.IA, host int) addr.UDPAddr {
	return addr.UDPAddr{Addr: addr.Addr{IA: dst, Host: netip.MustParseAddr(fmt.Sprintf("10.9.0.%d", host+1))}, Port: 443}
}

// TestSampleRingWraparound: FIFO order and exact accounting survive several
// full revolutions of a small ring.
func TestSampleRingWraparound(t *testing.T) {
	r := newSampleRing(4)
	dst := ringDst(0)
	p := ringPath(dst, 0)
	seq := time.Duration(0)
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 3; i++ { // 3 of 4 slots per cycle: head/tail drift
			seq++
			r.push(p, seq)
		}
		for i := 0; i < 3; i++ {
			rec, ok := r.pop()
			if !ok {
				t.Fatalf("cycle %d pop %d: ring unexpectedly empty", cycle, i)
			}
			want := seq - time.Duration(2-i)
			if rec.rtt != want || rec.path != p {
				t.Fatalf("cycle %d pop %d: got rtt=%v, want %v (FIFO across wraparound)", cycle, i, rec.rtt, want)
			}
		}
		if !r.empty() {
			t.Fatalf("cycle %d: ring not empty after draining", cycle)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring reported a sample")
	}
	if got := r.enqueued.Load(); got != 15 {
		t.Fatalf("enqueued = %d, want 15", got)
	}
	if r.coalesced.Load() != 0 || r.dropped.Load() != 0 {
		t.Fatalf("coalesced/dropped = %d/%d on a never-full ring", r.coalesced.Load(), r.dropped.Load())
	}
}

// TestSampleRingCoalesceAndDrop: overflow evicts the OLDEST sample, counted
// as coalesced when the incoming sample is for the same path (newer
// supersedes older) and dropped when data was genuinely lost.
func TestSampleRingCoalesceAndDrop(t *testing.T) {
	dst := ringDst(1)
	pa, pb := ringPath(dst, 0), ringPath(dst, 1)

	r := newSampleRing(4)
	for i := 1; i <= 4; i++ {
		r.push(pa, time.Duration(i)*time.Millisecond)
	}
	r.push(pa, 5*time.Millisecond) // full; oldest is also pa → coalesce
	if got := r.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced = %d, want 1", got)
	}
	if got := r.dropped.Load(); got != 0 {
		t.Fatalf("dropped = %d, want 0", got)
	}
	r.push(pb, 6*time.Millisecond) // full; oldest is pa, incoming pb → drop
	if got := r.dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	// Survivors are the newest capacity-many samples, still FIFO.
	want := []time.Duration{3 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond, 6 * time.Millisecond}
	for i, w := range want {
		rec, ok := r.pop()
		if !ok || rec.rtt != w {
			t.Fatalf("pop %d = (%v, %v), want %v", i, rec.rtt, ok, w)
		}
	}
	if !r.empty() {
		t.Fatal("ring not empty after draining survivors")
	}
}

// TestMonitorDrainDropsUntracked: a sample buffered while its destination
// was tracked but drained after the last Untrack must NOT apply — tracking
// is the contract — and is counted in IngestStats.Untracked.
func TestMonitorDrainDropsUntracked(t *testing.T) {
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	dst := ringDst(2)
	p := ringPath(dst, 0)
	m := NewMonitor(clock, func(addr.IA) []*segment.Path { return []*segment.Path{p} }, MonitorOptions{
		Probe:  func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) { return 0, nil },
		Shards: 8,
	})
	remote := ringRemote(dst, 0)
	m.Track(remote, "untracked.test")

	// Buffer directly (bypassing Observe's inline drain), then untrack
	// before anything drains.
	sh := m.shardFor(dst)
	sh.ring.push(p, 20*time.Millisecond)
	m.Untrack(remote, "untracked.test")

	st := m.IngestStats() // flushes the rings
	if st.Applied != 0 {
		t.Fatalf("applied = %d, want 0 — sample landed after Untrack", st.Applied)
	}
	if st.Untracked != 1 {
		t.Fatalf("untracked = %d, want 1", st.Untracked)
	}
	if tel, ok := m.Telemetry(p.Fingerprint()); ok && tel.Samples != 0 {
		t.Fatalf("telemetry shows %d samples on an untracked path", tel.Samples)
	}
}

// TestMonitorDrainVsStopStart: Observe racing Stop/Start cycles neither
// loses accounting nor deadlocks; Stop itself flushes buffered samples.
func TestMonitorDrainVsStopStart(t *testing.T) {
	dst := ringDst(3)
	paths := []*segment.Path{ringPath(dst, 0), ringPath(dst, 1)}
	m := NewMonitor(netsim.RealClock{}, func(addr.IA) []*segment.Path { return paths }, MonitorOptions{
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			return time.Millisecond, nil
		},
		Shards: 8,
	})
	remote := ringRemote(dst, 1)
	m.Track(remote, "stopstart.test")

	const producers = 4
	const perProducer = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Start()
			m.Stop()
		}
	}()
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := paths[g%len(paths)]
			for i := 0; i < perProducer; i++ {
				m.Observe(p, time.Duration(1+i%7)*time.Millisecond)
			}
		}(g)
	}
	wgWaitProducersThenStop(&wg, stop)
	m.Stop()

	st := m.IngestStats()
	if st.Enqueued != producers*perProducer {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, producers*perProducer)
	}
	if got := st.Applied + st.Coalesced + st.Dropped + st.Untracked; got != st.Enqueued {
		t.Fatalf("accounting leak: applied+coalesced+dropped+untracked = %d, enqueued = %d (%+v)", got, st.Enqueued, st)
	}
	if st.Applied == 0 {
		t.Fatal("no sample applied across the whole run")
	}
}

// wgWaitProducersThenStop waits for the producer goroutines then releases
// the Stop/Start cycler. (The WaitGroup counts the cycler too, so the wait
// happens in two phases via the done channel.)
func wgWaitProducersThenStop(wg *sync.WaitGroup, stop chan struct{}) {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Producers finish on their own; the cycler needs the stop signal. A
	// single close is enough for both orderings.
	close(stop)
	<-done
}

// TestMonitorIngestHammer: concurrent Observe / Track / Untrack /
// ImportLinks / reads across 8 shards under the race detector. Afterwards
// the ring accounting must balance exactly, refcounts must be back to
// zero, and nothing may have applied to fully-untracked destinations after
// their last Untrack.
func TestMonitorIngestHammer(t *testing.T) {
	const nDst = 8
	dsts := make([]addr.IA, nDst)
	pathsByDst := make(map[addr.IA][]*segment.Path, nDst)
	for i := range dsts {
		dsts[i] = ringDst(10 + i)
		pathsByDst[dsts[i]] = []*segment.Path{ringPath(dsts[i], 0), ringPath(dsts[i], 1)}
	}
	m := NewMonitor(netsim.RealClock{}, func(ia addr.IA) []*segment.Path { return pathsByDst[ia] }, MonitorOptions{
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			return time.Millisecond, nil
		},
		Shards:     8,
		IngestRing: 16, // small rings so overflow paths are exercised
	})

	snap := LinkSnapshot{Version: LinkSnapshotVersion}
	for i := range dsts {
		snap.Links = append(snap.Links, LinkExport{
			A: addr.IA{ISD: 1, AS: 0xff00_0000_0111}, B: dsts[i],
			Congestion: 5 * time.Millisecond, Dev: time.Millisecond, Sharers: 1,
		})
	}

	var wg sync.WaitGroup
	const producers = 4
	const perProducer = 500
	// Every 4th iteration submits a 2-sample burst via ObserveBatch, which
	// exercises the flat-combining fast path alongside the ring route.
	const perIterBatch = 4
	samplesPerProducer := 0
	for i := 0; i < perProducer; i++ {
		if i%perIterBatch == 0 {
			samplesPerProducer += 2
		} else {
			samplesPerProducer++
		}
	}
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				dst := dsts[(g+i)%nDst]
				p := pathsByDst[dst][i%2]
				rtt := time.Duration(1+i%9) * time.Millisecond
				if i%perIterBatch == 0 {
					m.ObserveBatch(p, []time.Duration{rtt, rtt + time.Millisecond})
				} else {
					m.Observe(p, rtt)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // tracker churn
		defer wg.Done()
		for round := 0; round < 40; round++ {
			for i, dst := range dsts {
				m.Track(ringRemote(dst, i), "hammer.test")
			}
			for i, dst := range dsts {
				m.Untrack(ringRemote(dst, i), "hammer.test")
			}
		}
	}()
	wg.Add(1)
	go func() { // gossip import churn
		defer wg.Done()
		for round := 0; round < 50; round++ {
			if _, err := m.ImportLinks(snap, 0.5); err != nil {
				t.Errorf("ImportLinks: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // concurrent readers (each flushes the rings)
		defer wg.Done()
		for round := 0; round < 50; round++ {
			m.LinkStats()
			for _, dst := range dsts {
				m.PathPenalty(pathsByDst[dst][0])
			}
			m.Telemetry(pathsByDst[dsts[0]][0].Fingerprint())
		}
	}()
	wg.Wait()

	st := m.IngestStats()
	if want := uint64(producers * samplesPerProducer); st.Enqueued != want {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, want)
	}
	if got := st.Applied + st.Coalesced + st.Dropped + st.Untracked; got != st.Enqueued {
		t.Fatalf("accounting leak: applied+coalesced+dropped+untracked = %d, enqueued = %d (%+v)", got, st.Enqueued, st)
	}

	// Refcounts hold: every Track was matched by an Untrack.
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("TargetCount = %d after matched Track/Untrack churn", n)
	}
	if n := m.TrackedPaths(); n != 0 {
		t.Fatalf("TrackedPaths = %d after matched Track/Untrack churn", n)
	}

	// No sample applies after the LAST Untrack: everything is untracked
	// now, so further Observes must only grow the Untracked count.
	before := m.IngestStats()
	for _, dst := range dsts {
		m.Observe(pathsByDst[dst][0], 3*time.Millisecond)
	}
	after := m.IngestStats()
	if after.Applied != before.Applied {
		t.Fatalf("applied grew %d → %d on untracked destinations", before.Applied, after.Applied)
	}
	if after.Untracked != before.Untracked+nDst {
		t.Fatalf("untracked grew %d → %d, want +%d", before.Untracked, after.Untracked, nDst)
	}
}
