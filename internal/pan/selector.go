package pan

import (
	"sort"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/segment"
)

// Candidate is one ranked path choice produced by a Selector. Candidates
// earlier in the ranking are preferred; the Compliant flag records whether
// the path satisfies the selector's notion of the user's policy (feeding the
// UI indicator and strict-mode enforcement).
type Candidate struct {
	Path      *segment.Path
	Compliant bool
}

// Outcome is transport feedback for one use of a path, reported back into
// the selector so subsequent rankings can react — the simulator's analogue
// of SCMP path revocations and passive latency measurement.
type Outcome struct {
	// Failed marks the path as having failed (dial error or transport
	// teardown). Failed paths are demoted until a later success clears them.
	Failed bool
	// Latency is an observed round-trip latency sample, when one was
	// measured (0 = no sample).
	Latency time.Duration
	// Probe marks a synthetic measurement (background prober) rather than
	// real traffic. Health and latency are ingested either way, but
	// use-driven selectors (RoundRobin rotation) must not treat a probe as
	// a served request.
	Probe bool
	// Passive marks a zero-cost measurement skimmed off live traffic
	// (pooled-connection ack RTTs, proxied-request first-byte times) rather
	// than a dial or a probe. Like probes, passive samples feed health and
	// latency but must not advance use-driven selectors: one served request
	// produces MANY passive samples, and counting each as a "use" would
	// spin a round-robin rotation on ack cadence instead of request
	// cadence.
	Passive bool
}

// Canonical outcomes.
var (
	// Success reports a working path (clears a previous failure).
	Success = Outcome{}
	// Failure reports a failed dial or transport error on the path.
	Failure = Outcome{Failed: true}
)

// Selector ranks candidate paths for a destination and ingests transport
// feedback. Implementations must be safe for concurrent use: the Dialer and
// any number of in-flight requests share one selector.
//
// Rank orders ALL usable paths, most preferred first, tagging each with its
// policy compliance; the caller (Host.Select, Dialer.Dial) applies the
// operational mode: Strict considers only compliant candidates, while
// Opportunistic takes the ranking as-is and falls back down the list.
type Selector interface {
	Rank(dst addr.IA, paths []*segment.Path) []Candidate
	Report(path *segment.Path, outcome Outcome)
}

// PathHealth is one path's live telemetry as exported by a selector:
// down-state from failure reports, and the current round-trip estimate when
// the selector tracks one. It is what the proxy's stats API and the
// extension UI render as per-path liveness (paper §4.2).
type PathHealth struct {
	Fingerprint string        `json:"fingerprint"`
	Down        bool          `json:"down"`
	RTT         time.Duration `json:"rtt"` // 0 = no observation yet
}

// HealthExporter is implemented by selectors that can export per-path
// telemetry. Every built-in selector implements it; compositions merge
// their inner selector's view with their own.
type HealthExporter interface {
	PathHealth() []PathHealth
}

// mergePathHealth folds extra into base by fingerprint: Down is OR-ed and a
// zero RTT never overwrites an observation. The result is sorted by
// fingerprint so exports are deterministic.
func mergePathHealth(base, extra []PathHealth) []PathHealth {
	byFP := make(map[string]PathHealth, len(base)+len(extra))
	for _, h := range base {
		byFP[h.Fingerprint] = h
	}
	for _, h := range extra {
		prev, ok := byFP[h.Fingerprint]
		if !ok {
			byFP[h.Fingerprint] = h
			continue
		}
		prev.Down = prev.Down || h.Down
		if prev.RTT == 0 {
			prev.RTT = h.RTT
		}
		byFP[h.Fingerprint] = prev
	}
	out := make([]PathHealth, 0, len(byFP))
	for _, h := range byFP {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// health tracks per-path liveness shared by the built-in selectors. A path
// reported Failed is demoted within its compliance class until a subsequent
// Success clears it; demoted paths remain candidates of last resort, so a
// destination whose every path has failed is still dialable.
type health struct {
	mu   sync.Mutex
	down map[string]bool // path fingerprint → down
}

// report ingests the liveness half of an outcome.
func (h *health) report(path *segment.Path, outcome Outcome) {
	if path == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if outcome.Failed {
		if h.down == nil {
			h.down = make(map[string]bool)
		}
		h.down[path.Fingerprint()] = true
	} else if h.down != nil {
		delete(h.down, path.Fingerprint())
	}
}

// reportBatch ingests the liveness half of a drained sample batch under
// ONE lock acquisition.
func (h *health) reportBatch(reports []SampleReport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range reports {
		if r.Path == nil {
			continue
		}
		if r.Outcome.Failed {
			if h.down == nil {
				h.down = make(map[string]bool)
			}
			h.down[r.Path.Fingerprint()] = true
		} else if h.down != nil {
			delete(h.down, r.Path.Fingerprint())
		}
	}
}

// healthView exports the down set as PathHealth entries.
func (h *health) healthView() []PathHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PathHealth, 0, len(h.down))
	for fp := range h.down {
		out = append(out, PathHealth{Fingerprint: fp, Down: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// isDown reports whether the path has an unresolved failure.
func (h *health) isDown(p *segment.Path) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down[p.Fingerprint()]
}

// demote stably reorders candidates so that, within each compliance class,
// failed paths come after live ones. Cross-class order (compliant before
// non-compliant) is preserved.
func (h *health) demote(cands []Candidate) []Candidate {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.down) == 0 {
		return cands
	}
	out := make([]Candidate, 0, len(cands))
	for _, compliant := range []bool{true, false} {
		for _, c := range cands {
			if c.Compliant == compliant && !h.down[c.Path.Fingerprint()] {
				out = append(out, c)
			}
		}
		for _, c := range cands {
			if c.Compliant == compliant && h.down[c.Path.Fingerprint()] {
				out = append(out, c)
			}
		}
	}
	return out
}

// PolicySelector ranks paths under a PPL policy and an ISD geofence,
// preserving the seed semantics of the paper's §4.1/§4.2: compliant paths
// first (sorted by the policy's orderings), non-compliant paths after them
// in network order as opportunistic fallbacks.
type PolicySelector struct {
	health
	mu    sync.Mutex
	pol   *ppl.Policy
	fence *policy.Geofence
}

// NewPolicySelector builds a selector for a policy and geofence; both may be
// nil (nil policy accepts every path, nil geofence fences nothing).
func NewPolicySelector(pol *ppl.Policy, fence *policy.Geofence) *PolicySelector {
	return &PolicySelector{pol: pol, fence: fence}
}

// Rank implements Selector.
func (s *PolicySelector) Rank(dst addr.IA, paths []*segment.Path) []Candidate {
	s.mu.Lock()
	pol, fence := s.pol, s.fence
	s.mu.Unlock()

	compliant := make([]*segment.Path, 0, len(paths))
	inCompliant := make(map[*segment.Path]bool, len(paths))
	for _, p := range paths {
		if fence.Compliant(p) && (pol == nil || pol.Accepts(p)) {
			compliant = append(compliant, p)
		}
	}
	if pol != nil {
		compliant = pol.Filter(compliant) // apply orderings
	}
	cands := make([]Candidate, 0, len(paths))
	for _, p := range compliant {
		inCompliant[p] = true
		cands = append(cands, Candidate{Path: p, Compliant: true})
	}
	for _, p := range paths {
		if !inCompliant[p] {
			cands = append(cands, Candidate{Path: p, Compliant: false})
		}
	}
	return s.demote(cands)
}

// Report implements Selector.
func (s *PolicySelector) Report(path *segment.Path, outcome Outcome) {
	s.report(path, outcome)
}

// ReportBatch implements BatchSink: one health lock for the whole batch.
func (s *PolicySelector) ReportBatch(reports []SampleReport) {
	s.reportBatch(reports)
}

// PathHealth implements HealthExporter: down-state only (the policy
// selector tracks no latency).
func (s *PolicySelector) PathHealth() []PathHealth {
	return s.healthView()
}

// LatencySelector ranks paths by latency: the metadata latency until
// observations arrive, then an EWMA of reported round-trip samples. Paths
// reported down are demoted until they succeed again. Every path is
// considered compliant (compose with PinnedSelector/RoundRobinSelector or
// use a PolicySelector when policy filtering is wanted).
type LatencySelector struct {
	health
	mu       sync.Mutex
	observed map[string]time.Duration // fingerprint → EWMA RTT
}

// NewLatencySelector builds a latency-ranking selector.
func NewLatencySelector() *LatencySelector {
	return &LatencySelector{observed: make(map[string]time.Duration)}
}

// latencyOf returns the ranking key for a path.
func (s *LatencySelector) latencyOf(p *segment.Path) time.Duration {
	if obs, ok := s.observed[p.Fingerprint()]; ok {
		return obs
	}
	// Metadata latency is one-way; scale to RTT so metadata and observed
	// samples rank on comparable units.
	return 2 * p.Meta.Latency
}

// Rank implements Selector.
func (s *LatencySelector) Rank(dst addr.IA, paths []*segment.Path) []Candidate {
	s.mu.Lock()
	type keyed struct {
		c   Candidate
		lat time.Duration
	}
	ks := make([]keyed, len(paths))
	for i, p := range paths {
		ks[i] = keyed{Candidate{Path: p, Compliant: true}, s.latencyOf(p)}
	}
	s.mu.Unlock()
	// Stable: network order breaks latency ties.
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].lat < ks[j].lat })
	cands := make([]Candidate, len(ks))
	for i, k := range ks {
		cands[i] = k.c
	}
	return s.demote(cands)
}

// Report implements Selector: failures demote, successes with a latency
// sample update the path's EWMA (α = 1/4, the TCP SRTT gain).
func (s *LatencySelector) Report(path *segment.Path, outcome Outcome) {
	s.report(path, outcome)
	if path == nil || outcome.Failed || outcome.Latency <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := path.Fingerprint()
	if prev, ok := s.observed[fp]; ok {
		s.observed[fp] = prev - prev/4 + outcome.Latency/4
	} else {
		s.observed[fp] = outcome.Latency
	}
}

// ReportBatch implements BatchSink: a drained ingest batch updates the
// EWMAs under ONE selector lock (and one health lock) instead of a lock
// round-trip per sample — the batched half of the monitor's ring drain.
func (s *LatencySelector) ReportBatch(reports []SampleReport) {
	s.reportBatch(reports)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range reports {
		if r.Path == nil || r.Outcome.Failed || r.Outcome.Latency <= 0 {
			continue
		}
		fp := r.Path.Fingerprint()
		if prev, ok := s.observed[fp]; ok {
			s.observed[fp] = prev - prev/4 + r.Outcome.Latency/4
		} else {
			s.observed[fp] = r.Outcome.Latency
		}
	}
}

// PathHealth implements HealthExporter: every path with an RTT observation
// or an unresolved failure, RTTs being the live EWMA the ranking uses.
func (s *LatencySelector) PathHealth() []PathHealth {
	s.mu.Lock()
	observed := make([]PathHealth, 0, len(s.observed))
	for fp, rtt := range s.observed {
		observed = append(observed, PathHealth{Fingerprint: fp, RTT: rtt})
	}
	s.mu.Unlock()
	return mergePathHealth(observed, s.healthView())
}

// RoundRobinSelector spreads load across the live compliant paths of an
// inner selector's ranking. Rotation advances on REPORTED USE — each
// Report(Success) moves the destination's next first choice — not on Rank,
// so availability probes (proxy.CheckSCION) and failover re-ranks don't
// skew which paths carry actual traffic.
type RoundRobinSelector struct {
	health
	inner Selector
	mu    sync.Mutex
	next  map[addr.IA]int
}

// NewRoundRobinSelector wraps inner (nil = accept-everything PolicySelector)
// with per-destination rotation.
func NewRoundRobinSelector(inner Selector) *RoundRobinSelector {
	if inner == nil {
		inner = NewPolicySelector(nil, nil)
	}
	return &RoundRobinSelector{inner: inner, next: make(map[addr.IA]int)}
}

// Rank implements Selector: the live compliant prefix of the inner ranking
// is rotated; down paths (demoted to the prefix's tail by the inner
// selector's health) and non-compliant fallbacks keep their demoted order.
func (r *RoundRobinSelector) Rank(dst addr.IA, paths []*segment.Path) []Candidate {
	cands := r.inner.Rank(dst, paths)
	k := 0
	for k < len(cands) && cands[k].Compliant {
		k++
	}
	live := k
	for live > 0 && r.isDown(cands[live-1].Path) {
		live--
	}
	if live < 2 {
		return cands
	}
	r.mu.Lock()
	shift := r.next[dst] % live
	r.mu.Unlock()
	if shift == 0 {
		return cands
	}
	out := make([]Candidate, 0, len(cands))
	out = append(out, cands[shift:live]...)
	out = append(out, cands[:shift]...)
	return append(out, cands[live:]...)
}

// Report implements Selector: outcomes feed the inner selector and the
// rotation's own health view, and each successful USE advances the path's
// destination to its next first choice. Probe and passive outcomes
// contribute health and latency but never advance the rotation —
// background probing and per-ack passive samples must not skew which paths
// carry actual traffic.
func (r *RoundRobinSelector) Report(path *segment.Path, outcome Outcome) {
	r.inner.Report(path, outcome)
	r.report(path, outcome)
	if path != nil && !outcome.Failed && !outcome.Probe && !outcome.Passive {
		r.mu.Lock()
		r.next[path.Dst]++
		r.mu.Unlock()
	}
}

// ReportBatch implements BatchSink: the inner selector gets the batch in
// one call when it can take it (per-sample otherwise), the rotation's
// health and advance counters update under one lock each. Passive and
// probe samples never advance the rotation, exactly as in Report.
func (r *RoundRobinSelector) ReportBatch(reports []SampleReport) {
	if bs, ok := r.inner.(BatchSink); ok {
		bs.ReportBatch(reports)
	} else {
		for _, rep := range reports {
			r.inner.Report(rep.Path, rep.Outcome)
		}
	}
	r.reportBatch(reports)
	advanced := false
	for _, rep := range reports {
		if rep.Path != nil && !rep.Outcome.Failed && !rep.Outcome.Probe && !rep.Outcome.Passive {
			if !advanced {
				r.mu.Lock()
				advanced = true
			}
			r.next[rep.Path.Dst]++
		}
	}
	if advanced {
		r.mu.Unlock()
	}
}

// PathHealth implements HealthExporter: the inner selector's view merged
// with the rotation's own down set.
func (r *RoundRobinSelector) PathHealth() []PathHealth {
	var inner []PathHealth
	if he, ok := r.inner.(HealthExporter); ok {
		inner = he.PathHealth()
	}
	return mergePathHealth(inner, r.healthView())
}

// PinnedSelector lets the user pin a specific path per destination — the
// paper's §4.2 interactive path-selection UI hook. A pinned path is moved to
// the front of the inner selector's ranking, keeping its compliance flag:
// opportunistic mode follows the pin (flagging non-compliance), while strict
// mode SILENTLY overrides a non-compliant pin, routing over the best
// compliant path instead. A UI that must surface the override compares
// Selection.Path against Pinned(dst). When the pinned path has vanished the
// inner ranking applies unchanged.
type PinnedSelector struct {
	inner Selector
	mu    sync.Mutex
	pins  map[addr.IA]string // destination → pinned path fingerprint
}

// NewPinnedSelector wraps inner (nil = accept-everything PolicySelector).
func NewPinnedSelector(inner Selector) *PinnedSelector {
	if inner == nil {
		inner = NewPolicySelector(nil, nil)
	}
	return &PinnedSelector{inner: inner, pins: make(map[addr.IA]string)}
}

// Pin fixes the path (by fingerprint) used for a destination.
func (s *PinnedSelector) Pin(dst addr.IA, fingerprint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[dst] = fingerprint
}

// Unpin removes a destination's pin.
func (s *PinnedSelector) Unpin(dst addr.IA) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pins, dst)
}

// Pinned returns the active pin for a destination, if any.
func (s *PinnedSelector) Pinned(dst addr.IA) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp, ok := s.pins[dst]
	return fp, ok
}

// Rank implements Selector.
func (s *PinnedSelector) Rank(dst addr.IA, paths []*segment.Path) []Candidate {
	cands := s.inner.Rank(dst, paths)
	s.mu.Lock()
	fp, ok := s.pins[dst]
	s.mu.Unlock()
	if !ok {
		return cands
	}
	for i, c := range cands {
		if c.Path.Fingerprint() == fp {
			out := make([]Candidate, 0, len(cands))
			out = append(out, c)
			out = append(out, cands[:i]...)
			return append(out, cands[i+1:]...)
		}
	}
	return cands
}

// Report implements Selector.
func (s *PinnedSelector) Report(path *segment.Path, outcome Outcome) {
	s.inner.Report(path, outcome)
}

// ReportBatch implements BatchSink by delegation.
func (s *PinnedSelector) ReportBatch(reports []SampleReport) {
	if bs, ok := s.inner.(BatchSink); ok {
		bs.ReportBatch(reports)
		return
	}
	for _, r := range reports {
		s.inner.Report(r.Path, r.Outcome)
	}
}

// PathHealth implements HealthExporter by delegation: pinning adds no
// telemetry of its own.
func (s *PinnedSelector) PathHealth() []PathHealth {
	if he, ok := s.inner.(HealthExporter); ok {
		return he.PathHealth()
	}
	return nil
}
