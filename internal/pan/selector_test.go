package pan_test

import (
	"sync"
	"testing"
	"time"

	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/segment"
	"tango/internal/topology"
)

func TestLatencySelectorRanksByMetadata(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	paths := h.Paths(topology.AS211)
	if len(paths) < 2 {
		t.Fatalf("need ≥2 paths, got %d", len(paths))
	}
	s := pan.NewLatencySelector()
	cands := s.Rank(topology.AS211, paths)
	if len(cands) != len(paths) {
		t.Fatalf("ranked %d of %d paths", len(cands), len(paths))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Path.Meta.Latency > cands[i].Path.Meta.Latency {
			t.Fatalf("ranking not latency-sorted at %d: %v > %v",
				i, cands[i-1].Path.Meta.Latency, cands[i].Path.Meta.Latency)
		}
	}
	for _, c := range cands {
		if !c.Compliant {
			t.Fatal("latency selector must mark every path compliant")
		}
	}
}

func TestLatencySelectorFailoverAndRecovery(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	s := pan.NewLatencySelector()

	sel, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	best := sel.Path

	// Report the best path down: the next selection must avoid it.
	s.Report(best, pan.Failure)
	sel2, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Path.Fingerprint() == best.Fingerprint() {
		t.Fatal("selection did not fail over after Report(down)")
	}
	if best.Meta.Latency > sel2.Path.Meta.Latency {
		t.Fatalf("failover should go to the next-best latency: %v then %v",
			best.Meta.Latency, sel2.Path.Meta.Latency)
	}

	// Recovery: a success report restores the original ranking.
	s.Report(best, pan.Success)
	sel3, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if sel3.Path.Fingerprint() != best.Fingerprint() {
		t.Fatal("selection did not recover after Report(up)")
	}
}

func TestLatencySelectorAllDownStillSelects(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	s := pan.NewLatencySelector()
	for _, p := range h.Paths(topology.AS211) {
		s.Report(p, pan.Failure)
	}
	if _, err := h.Select(topology.AS211, s, pan.Strict); err != nil {
		t.Fatalf("all-down destination must stay dialable (last resort): %v", err)
	}
}

func TestLatencySelectorObservedSamplesOverrideMetadata(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	paths := h.Paths(topology.AS211)
	s := pan.NewLatencySelector()
	sel, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	best := sel.Path
	var second *segment.Path
	for _, p := range paths {
		if p.Fingerprint() != best.Fingerprint() {
			second = p
			break
		}
	}
	if second == nil {
		t.Fatal("need a second path")
	}
	// Observed reality contradicts metadata: the "best" path measures slow,
	// another measures fast. Repeated samples shift the EWMA.
	for i := 0; i < 16; i++ {
		s.Report(best, pan.Outcome{Latency: 5 * time.Second})
		s.Report(second, pan.Outcome{Latency: time.Millisecond})
	}
	sel2, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Path.Fingerprint() != second.Fingerprint() {
		t.Fatalf("observed latency must override metadata: picked %s", sel2.Path)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	paths := h.Paths(topology.AS211)
	if len(paths) < 2 {
		t.Fatalf("need ≥2 paths, got %d", len(paths))
	}
	s := pan.NewRoundRobinSelector(nil)
	seen := make(map[string]int)
	rounds := 3 * len(paths)
	for i := 0; i < rounds; i++ {
		sel, err := h.Select(topology.AS211, s, pan.Strict)
		if err != nil {
			t.Fatal(err)
		}
		seen[sel.Path.Fingerprint()]++
		// Rotation advances on reported use, as the Dialer does per dial.
		s.Report(sel.Path, pan.Success)
	}
	if len(seen) != len(paths) {
		t.Fatalf("round robin used %d of %d paths: %v", len(seen), len(paths), seen)
	}
	for fp, n := range seen {
		if n != rounds/len(paths) {
			t.Fatalf("uneven spread: %s used %d times, want %d", fp, n, rounds/len(paths))
		}
	}
}

func TestRoundRobinProbesDoNotSkewRotation(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	s := pan.NewRoundRobinSelector(nil)
	first, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	// Availability probes rank without using a path; the first choice must
	// not move.
	for i := 0; i < 5; i++ {
		sel, err := h.Select(topology.AS211, s, pan.Strict)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Path.Fingerprint() != first.Path.Fingerprint() {
			t.Fatal("rotation advanced without a reported use")
		}
	}
}

func TestRoundRobinSkipsDownPaths(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	paths := h.Paths(topology.AS211)
	if len(paths) < 2 {
		t.Fatalf("need ≥2 paths, got %d", len(paths))
	}
	s := pan.NewRoundRobinSelector(nil)
	down := paths[0]
	s.Report(down, pan.Failure)
	// A full rotation cycle must never put the down path first.
	for i := 0; i < 2*len(paths); i++ {
		sel, err := h.Select(topology.AS211, s, pan.Strict)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Path.Fingerprint() == down.Fingerprint() {
			t.Fatal("rotation promoted a known-down path")
		}
		s.Report(sel.Path, pan.Success)
	}
}

func TestRoundRobinRespectsInnerCompliance(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	// Block ISD 2: no compliant path to AS211 exists, so rotation has
	// nothing to spread and strict mode must still refuse.
	s := pan.NewRoundRobinSelector(pan.NewPolicySelector(nil, policy.NewBlockGeofence(2)))
	if _, err := h.Select(topology.AS211, s, pan.Strict); err == nil {
		t.Fatal("strict round-robin through blocked ISD succeeded")
	}
	sel, err := h.Select(topology.AS211, s, pan.Opportunistic)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Compliant {
		t.Fatal("fallback must be flagged non-compliant")
	}
}

func TestPinnedSelectorPinsAndUnpins(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	paths := h.Paths(topology.AS211)
	s := pan.NewPinnedSelector(pan.NewLatencySelector())

	sel, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	natural := sel.Path

	// Pin the last offered path (ensure it differs from the natural pick).
	pin := paths[len(paths)-1]
	if pin.Fingerprint() == natural.Fingerprint() {
		pin = paths[0]
	}
	if pin.Fingerprint() == natural.Fingerprint() {
		t.Skip("topology offers only one distinct path")
	}
	s.Pin(topology.AS211, pin.Fingerprint())
	sel2, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Path.Fingerprint() != pin.Fingerprint() {
		t.Fatalf("pin ignored: picked %s", sel2.Path)
	}
	if fp, ok := s.Pinned(topology.AS211); !ok || fp != pin.Fingerprint() {
		t.Fatal("Pinned() does not report the active pin")
	}

	s.Unpin(topology.AS211)
	sel3, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if sel3.Path.Fingerprint() != natural.Fingerprint() {
		t.Fatal("unpin did not restore the inner ranking")
	}
}

func TestPinnedSelectorStrictRefusesNonCompliantPin(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	// Geofence makes every path to AS211 non-compliant; pinning one of them
	// must not smuggle it past strict mode, while opportunistic mode obeys
	// the pin and flags it.
	inner := pan.NewPolicySelector(nil, policy.NewBlockGeofence(2))
	s := pan.NewPinnedSelector(inner)
	paths := h.Paths(topology.AS211)
	pin := paths[len(paths)-1]
	s.Pin(topology.AS211, pin.Fingerprint())

	if _, err := h.Select(topology.AS211, s, pan.Strict); err == nil {
		t.Fatal("strict mode accepted a non-compliant pinned path")
	}
	sel, err := h.Select(topology.AS211, s, pan.Opportunistic)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Path.Fingerprint() != pin.Fingerprint() || sel.Compliant {
		t.Fatalf("opportunistic pin selection %+v", sel)
	}
}

func TestPolicySelectorDemotesDownWithinClass(t *testing.T) {
	w := newWorld(t)
	h := w.host(topology.AS111, "10.0.0.1")
	s := pan.NewPolicySelector(policy.LowLatency(), nil)
	sel, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	best := sel.Path
	s.Report(best, pan.Failure)
	sel2, err := h.Select(topology.AS211, s, pan.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Path.Fingerprint() == best.Fingerprint() {
		t.Fatal("policy selector did not demote the down path")
	}
	if !sel2.Compliant {
		t.Fatal("failover must stay within the compliant class")
	}
}

// TestSelectorConcurrencyHammer drives RoundRobinSelector.Rank/Report (and
// through it the shared health.report/healthView bookkeeping) from many
// goroutines while PathHealth() is read concurrently — the proxy's steady
// state, where in-flight requests, the monitor's probe sinks, and the stats
// API all hit one selector. Run under -race this is the data-race oracle;
// the invariants checked here are just sanity.
func TestSelectorConcurrencyHammer(t *testing.T) {
	paths := make([]*segment.Path, 6)
	for i := range paths {
		paths[i] = fakePath(topology.AS211, i)
	}
	rr := pan.NewRoundRobinSelector(pan.NewLatencySelector())

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				p := paths[(w+i)%len(paths)]
				switch i % 4 {
				case 0:
					cands := rr.Rank(topology.AS211, paths)
					if len(cands) != len(paths) {
						t.Errorf("Rank returned %d of %d candidates", len(cands), len(paths))
						return
					}
				case 1:
					rr.Report(p, pan.Outcome{Latency: time.Duration(1+i%50) * time.Millisecond})
				case 2:
					rr.Report(p, pan.Outcome{Failed: true, Probe: i%2 == 0})
				case 3:
					rr.Report(p, pan.Outcome{Latency: time.Duration(1+i%20) * time.Millisecond, Probe: true})
				}
			}
		}(w)
	}
	// Concurrent telemetry readers (the stats snapshot path).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				for _, h := range rr.PathHealth() {
					if h.Fingerprint == "" {
						t.Error("PathHealth entry without fingerprint")
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	// Quiesce to a known state: every path reported live with a sample.
	for _, p := range paths {
		rr.Report(p, pan.Outcome{Latency: 10 * time.Millisecond, Probe: true})
	}
	for _, h := range rr.PathHealth() {
		if h.Down {
			t.Fatalf("path %s still down after final successes", h.Fingerprint)
		}
	}
	if got := rr.Rank(topology.AS211, paths); len(got) != len(paths) {
		t.Fatalf("final Rank lost candidates: %d", len(got))
	}
}
