// Server-side half of the symmetric telemetry plane: a serving host builds
// path health for free from the traffic it already carries, and steers its
// replies over its OWN ranked reverse path instead of blindly mirroring
// whatever path each client happened to pick.
package pan

import (
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
	"tango/internal/squic"
)

// DefaultSteerInterval is how often a served connection's reverse path is
// re-evaluated against the server monitor's ranking (per connection, and
// only when samples actually arrive — an idle connection is never touched).
const DefaultSteerInterval = 500 * time.Millisecond

// SteerMargin is the hysteresis band of reverse-path steering: the current
// steered path is kept unless a challenger beats its score by more than
// this, so two near-equal reverse paths don't flip-flop on every sample.
const SteerMargin = 5 * time.Millisecond

// SteerStaleFactor sizes the steering watchdog: a steered connection that
// produces NO ack sample within SteerStaleFactor steer intervals of the
// steer reverts to mirroring — samples are what drive re-evaluation, so a
// black-holed steered path would otherwise never heal (no replies arrive,
// no acks come back, no sample ever fires).
const SteerStaleFactor = 4

// SteerBanTTL is how long a reverse path that went stale under steering is
// barred from being steered to again on that connection, so the plane does
// not oscillate between a dead pick and the mirror valve.
const SteerBanTTL = 30 * time.Second

// SteerDecision records how a served destination's reverse path was last
// chosen — the server-side analogue of RaceDecision.
type SteerDecision struct {
	// Mirrored reports the safety valve: the reply rides the reverse of the
	// client's own path because telemetry was empty/stale (or steering is
	// off, or the client's choice ranks best anyway).
	Mirrored bool
	// Fingerprint is the chosen reverse path when steered.
	Fingerprint string
	// Reason is the one-word rationale: "steered", "mirror-best",
	// "no-fresh-telemetry", "steer-stale", "steering-off".
	Reason string
}

// ServerTelemetry makes the telemetry plane symmetric: attached to a squic
// Listener, it tracks every accepted connection's remote on a Monitor —
// passively (TrackPassive, refcounted per remote endpoint, exactly like
// dialer-side pooling but never scheduling probes at clients) — and fans
// each connection's live ack RTT samples into Monitor.Observe, attributed
// to the reverse path the reply traffic actually rode. A server therefore
// builds per-path and per-link health from serving traffic alone, with zero
// probes.
//
// The same telemetry then steers replies: instead of mirroring the client's
// path choice blind, each connection's reply path is re-ranked periodically
// (observed RTT where fresh, metadata otherwise, plus the monitor's hotspot
// penalty — which imported gossip priors warm on a cold host), with a
// safety valve that falls back to mirroring whenever the destination has no
// fresh telemetry at all. Steering can never wedge a connection: a steered
// path that yields no ack sample within the watchdog window reverts to
// mirroring and is banned for SteerBanTTL on that connection.
//
// The monitor may be this plane's own (left stopped) or shared — with other
// listeners, or with the host's dialer-side plane: client tracking is
// passive-only, so sharing a started, actively-probing monitor is safe.
type ServerTelemetry struct {
	host *Host
	m    *Monitor

	mu            sync.Mutex
	steer         bool
	steerInterval time.Duration
	decisions     map[addr.IA]SteerDecision
	conns         map[addr.IA]map[*connSteer]bool
	steers        int
	mirrors       int
	// revPaths caches the combined path set per destination: steering
	// re-evaluates per sample batch, and recombining segments on every
	// evaluation was the dominant garbage producer of the whole server
	// plane. Entries expire after revPathTTL; path-set churn (new beacons)
	// is hours-scale, so a seconds-scale TTL costs nothing. Cached entries
	// also keep path POINTERS stable across evaluations, so per-path
	// memoization (fingerprints, wire templates) pays off.
	revPaths map[addr.IA]revPathEntry
}

// revPathTTL bounds how stale a cached reverse path set may get.
const revPathTTL = time.Second

type revPathEntry struct {
	paths []*segment.Path
	at    time.Time
}

// statScratch pools PathStat slices across steering evaluations.
var statScratch = sync.Pool{New: func() any { return new([]PathStat) }}

// NewServerTelemetry builds the host's server-side telemetry plane over m;
// a nil monitor gets a fresh default one (left stopped — the plane itself
// never probes). Pass a shared monitor to pool observations across
// listeners or with the host's dialer-side plane.
func (h *Host) NewServerTelemetry(m *Monitor) *ServerTelemetry {
	if m == nil {
		m = h.NewMonitor(MonitorOptions{})
	}
	return &ServerTelemetry{
		host:          h,
		m:             m,
		steer:         true,
		steerInterval: DefaultSteerInterval,
		decisions:     make(map[addr.IA]SteerDecision),
	}
}

// Monitor returns the underlying telemetry store.
func (st *ServerTelemetry) Monitor() *Monitor { return st.m }

// SetSteering toggles reverse-path steering. Off, connections mirror the
// client (telemetry is still collected); already-steered connections revert
// on their next sample.
func (st *ServerTelemetry) SetSteering(on bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.steer = on
}

// SetSteerInterval tunes how often each connection's reverse path is
// re-evaluated (non-positive resets the default).
func (st *ServerTelemetry) SetSteerInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultSteerInterval
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.steerInterval = d
}

// steering returns the current knobs.
func (st *ServerTelemetry) steering() (bool, time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.steer, st.steerInterval
}

// LastDecision reports how the most recent reply-path choice for a
// destination AS was made.
func (st *ServerTelemetry) LastDecision(dst addr.IA) (SteerDecision, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.decisions[dst]
	return d, ok
}

// Counts reports how many steering evaluations chose a monitor-ranked path
// versus fell back to mirroring — the liveness printout feed.
func (st *ServerTelemetry) Counts() (steered, mirrored int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.steers, st.mirrors
}

// Attach wires the listener's accepted connections into the plane. Several
// listeners may attach to one ServerTelemetry.
func (st *ServerTelemetry) Attach(lis *squic.Listener) {
	lis.OnConn(st.handleConn)
}

// handleConn adopts one accepted connection: track its remote passively
// (refcounted — released when the connection dies), steer its first replies
// off any telemetry earlier connections or gossip left behind, and stream
// its ack RTTs into the monitor, re-evaluating the reverse path at most
// once per steer interval.
func (st *ServerTelemetry) handleConn(conn *squic.Conn) {
	remote, ok := conn.RemoteAddr().(addr.UDPAddr)
	if !ok {
		return
	}
	st.m.TrackPassive(remote, "")
	cs := &connSteer{st: st, conn: conn, dst: remote.IA, lastEval: st.host.clock.Now()}
	st.addConn(cs)
	conn.OnClose(func() {
		cs.mu.Lock()
		cs.closed = true
		cs.mu.Unlock()
		st.removeConn(cs)
		st.m.UntrackPassive(remote, "")
	})
	cs.evaluate()
	conn.OnRTTSampleBatch(cs.onSampleBatch)
}

// connSteer is one served connection's steering state.
type connSteer struct {
	st   *ServerTelemetry
	conn *squic.Conn
	dst  addr.IA

	mu         sync.Mutex
	closed     bool
	lastEval   time.Time
	lastSample time.Time
	steeredFP  string // "" while mirroring
	steeredAt  time.Time
	banned     map[string]time.Time // fingerprint → ban expiry
}

// addConn registers a live served connection for the per-destination
// reverse-path usage view.
func (st *ServerTelemetry) addConn(cs *connSteer) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.conns == nil {
		st.conns = make(map[addr.IA]map[*connSteer]bool)
	}
	m := st.conns[cs.dst]
	if m == nil {
		m = make(map[*connSteer]bool)
		st.conns[cs.dst] = m
	}
	m[cs] = true
}

func (st *ServerTelemetry) removeConn(cs *connSteer) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if m := st.conns[cs.dst]; m != nil {
		delete(m, cs)
		if len(m) == 0 {
			delete(st.conns, cs.dst)
		}
	}
}

// connCount returns the number of live served connections to dst.
func (st *ServerTelemetry) connCount(dst addr.IA) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.conns[dst])
}

// onSampleBatch is the connection's RTT observer: feed the monitor one
// coalesced ack batch (attributed to the path the reply traffic is riding
// NOW — that is the round trip the acks measured) and re-evaluate steering
// when due — at most once per batch, which is exactly the amortization the
// steering evaluation wants on a busy connection.
func (cs *connSteer) onSampleBatch(rtts []time.Duration) {
	cs.st.m.ObserveBatch(cs.conn.Path(), rtts)
	_, interval := cs.st.steering()
	cs.mu.Lock()
	now := cs.st.host.clock.Now()
	cs.lastSample = now
	due := now.Sub(cs.lastEval) >= interval
	if due {
		cs.lastEval = now
	}
	cs.mu.Unlock()
	if due {
		cs.evaluate()
	}
}

// evaluate applies one steering decision to the connection.
func (cs *connSteer) evaluate() {
	st := cs.st
	on, interval := st.steering()
	if !on {
		cs.setMirror(SteerDecision{Mirrored: true, Reason: "steering-off"})
		return
	}
	// A client holding several live connections to one destination is
	// spreading load on purpose — a striped download pins one link-disjoint
	// path per connection — so steering ANY of them would collapse that
	// spread onto the telemetry-ranked best reverse path (and fingerprint
	// exclusion cannot protect a path whose owner was itself just steered
	// away). Mirror them all; steering resumes when the set shrinks to one.
	if st.connCount(cs.dst) > 1 {
		cs.setMirror(SteerDecision{Mirrored: true, Reason: "multi-conn"})
		return
	}
	mirror := cs.conn.MirrorPath()
	pick, ok := st.pickReverse(cs.dst, cs.conn.Path(), cs.activeBans())
	switch {
	case !ok:
		cs.setMirror(SteerDecision{Mirrored: true, Reason: "no-fresh-telemetry"})
	case mirror != nil && pick.Fingerprint() == mirror.Fingerprint():
		// The client's own choice ranks best: mirroring is both correct and
		// cheaper (it keeps following the client's future re-selections).
		cs.setMirror(SteerDecision{Mirrored: true, Fingerprint: pick.Fingerprint(), Reason: "mirror-best"})
	default:
		fp := pick.Fingerprint()
		now := st.host.clock.Now()
		cs.conn.SetReplyPath(pick)
		cs.mu.Lock()
		cs.steeredFP, cs.steeredAt = fp, now
		cs.mu.Unlock()
		st.record(cs.dst, SteerDecision{Fingerprint: fp, Reason: "steered"})
		// The watchdog: if this steer never produces an ack sample, the
		// path is black-holed for replies and only mirroring can heal it —
		// samples are the re-evaluation trigger, so without this timer a
		// dead steered path would wedge the connection forever.
		st.host.clock.AfterFunc(SteerStaleFactor*interval, func() { cs.checkStale(fp, now) })
	}
}

// setMirror reverts the connection to mirroring and records why.
func (cs *connSteer) setMirror(d SteerDecision) {
	cs.conn.SetReplyPath(nil)
	cs.mu.Lock()
	cs.steeredFP = ""
	cs.mu.Unlock()
	cs.st.record(cs.dst, d)
}

// activeBans returns the fingerprints currently banned on this connection,
// pruning expired entries.
func (cs *connSteer) activeBans() map[string]bool {
	now := cs.st.host.clock.Now()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out map[string]bool
	for fp, until := range cs.banned {
		if now.Before(until) {
			if out == nil {
				out = make(map[string]bool, len(cs.banned))
			}
			out[fp] = true
		} else {
			delete(cs.banned, fp)
		}
	}
	return out
}

// checkStale is the watchdog body: a steer that produced no sample since it
// was installed reverts to mirroring and bans the path on this connection.
func (cs *connSteer) checkStale(fp string, steeredAt time.Time) {
	cs.mu.Lock()
	if cs.closed || cs.steeredFP != fp || cs.steeredAt != steeredAt || cs.lastSample.After(steeredAt) {
		cs.mu.Unlock()
		return
	}
	if cs.banned == nil {
		cs.banned = make(map[string]time.Time)
	}
	cs.banned[fp] = cs.st.host.clock.Now().Add(SteerBanTTL)
	cs.steeredFP = ""
	cs.mu.Unlock()
	cs.conn.SetReplyPath(nil)
	cs.st.record(cs.dst, SteerDecision{Mirrored: true, Reason: "steer-stale"})
}

func (st *ServerTelemetry) record(dst addr.IA, d SteerDecision) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.decisions[dst] = d
	if d.Mirrored {
		st.mirrors++
	} else {
		st.steers++
	}
}

// PickReverse ranks the host's reverse paths toward dst and returns the
// best, with ok=false — the mirror fallback — when the destination has no
// fresh live telemetry at all. See pickReverse.
func (st *ServerTelemetry) PickReverse(dst addr.IA) (*segment.Path, bool) {
	return st.pickReverse(dst, nil, nil)
}

// pickReverse scores every known reverse path toward dst in one batched
// monitor pass (PathStats): the pessimistic observed estimate (RTT + 2·dev)
// where fresh samples exist, the metadata round trip otherwise, plus the
// hotspot penalty (live link stats, or imported gossip priors on links
// never locally measured). Freshly-down and banned paths are excluded. The
// safety valve: unless at least one candidate has fresh sampled telemetry,
// ok is false and the caller mirrors — a ranking built purely on metadata
// would be no better informed than the client's own choice. keep, when
// non-nil, gets a SteerMargin hysteresis bonus so near-ties don't
// oscillate.
func (st *ServerTelemetry) pickReverse(dst addr.IA, keep *segment.Path, banned map[string]bool) (*segment.Path, bool) {
	paths := st.reversePaths(dst)
	if len(paths) == 0 {
		return nil, false
	}
	keepFP := ""
	if keep != nil {
		keepFP = keep.Fingerprint()
	}
	scratch := statScratch.Get().(*[]PathStat)
	stats := st.m.PathStatsAppend((*scratch)[:0], paths)
	defer func() {
		*scratch = stats[:0]
		statScratch.Put(scratch)
	}()
	anyFresh := false
	var best *segment.Path
	var bestScore time.Duration
	for i, p := range paths {
		s := stats[i]
		fp := s.Telemetry.Fingerprint
		if banned[fp] {
			continue
		}
		var score time.Duration
		switch {
		case s.Known && s.Telemetry.Down && s.Telemetry.Fresh:
			continue // freshly down: not a reply candidate
		case s.Known && s.Telemetry.Samples > 0 && s.Telemetry.Fresh:
			// Imported (gossip-warmed) estimates count as fresh too: that is
			// exactly how a cold server steers sensibly from its first reply.
			anyFresh = true
			score = s.Telemetry.RTT + 2*s.Telemetry.Dev
		default:
			// Metadata latency is one-way; scale to RTT units.
			score = 2 * p.Meta.Latency
		}
		score += s.Penalty
		if fp == keepFP && score > SteerMargin {
			score -= SteerMargin
		}
		if best == nil || score < bestScore {
			best, bestScore = p, score
		}
	}
	if best == nil || !anyFresh {
		return nil, false
	}
	return best, true
}

// reversePaths returns the (cached) combined path set toward dst; see the
// revPaths field for why this is cached.
func (st *ServerTelemetry) reversePaths(dst addr.IA) []*segment.Path {
	now := st.host.clock.Now()
	st.mu.Lock()
	if e, ok := st.revPaths[dst]; ok && now.Sub(e.at) < revPathTTL {
		st.mu.Unlock()
		return e.paths
	}
	st.mu.Unlock()
	paths := st.host.Paths(dst)
	st.mu.Lock()
	if st.revPaths == nil {
		st.revPaths = make(map[addr.IA]revPathEntry)
	}
	st.revPaths[dst] = revPathEntry{paths: paths, at: now}
	st.mu.Unlock()
	return paths
}
