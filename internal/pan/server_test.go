package pan_test

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestTrackPassiveNeverSchedulesProbes: passive tracking (the server-side
// plane's contract) accepts samples and retains telemetry but never puts a
// path on the probe schedule — even on a STARTED monitor — while active
// tracking of the same destination still probes, and dropping the last
// active reference takes the paths back off the schedule without losing the
// passive flow.
func TestTrackPassiveNeverSchedulesProbes(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	fp0 := paths[0].Fingerprint()
	script := &probeScript{script: map[string][]probeOutcome{
		fp0:                    {{rtt: 50 * time.Millisecond}},
		paths[1].Fingerprint(): {{rtt: 70 * time.Millisecond}},
	}}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	script.clock = clock
	m := pan.NewMonitor(clock, func(addr.IA) []*segment.Path { return paths }, pan.MonitorOptions{
		BaseInterval: time.Second,
		Probe:        script.fn,
	})
	target := probeTarget(0)

	// Passive tracking on a started monitor: no probes, ever.
	m.Start()
	defer m.Stop()
	m.TrackPassive(target, "")
	if n := m.TrackedPaths(); n != 0 {
		t.Fatalf("passive tracking put %d paths on the schedule", n)
	}
	drain(clock, 5*time.Second, 100*time.Millisecond)
	if n := script.total(); n != 0 {
		t.Fatalf("passively tracked destination was probed %d times", n)
	}
	// ...but passive samples are accepted.
	m.Observe(paths[0], 80*time.Millisecond)
	if tel, ok := m.Telemetry(fp0); !ok || tel.Samples != 1 {
		t.Fatalf("passive sample dropped: %+v (ok=%v)", tel, ok)
	}

	// An active tracker of the same destination upgrades it onto the
	// schedule; probing starts.
	m.Track(target, "")
	if n := m.TrackedPaths(); n != len(paths) {
		t.Fatalf("active upgrade scheduled %d paths, want %d", n, len(paths))
	}
	drain(clock, 3*time.Second, 100*time.Millisecond)
	probed := script.total()
	if probed == 0 {
		t.Fatal("actively tracked destination never probed")
	}

	// Dropping the active reference (the passive one remains) retires the
	// schedule again — telemetry kept, passive flow intact.
	m.Untrack(target, "")
	if n := m.TrackedPaths(); n != 0 {
		t.Fatalf("downgrade left %d paths scheduled", n)
	}
	drain(clock, 5*time.Second, 100*time.Millisecond)
	if n := script.total(); n != probed {
		t.Fatalf("downgraded destination kept probing: %d → %d", probed, n)
	}
	m.Observe(paths[0], 90*time.Millisecond)
	if tel, ok := m.Telemetry(fp0); !ok || tel.PassiveSamples < 2 {
		t.Fatalf("passive flow broken after downgrade: %+v (ok=%v)", tel, ok)
	}

	// Releasing the passive reference too fully untracks the destination.
	m.UntrackPassive(target, "")
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("%d targets left after final untrack", n)
	}
	m.Observe(paths[0], 95*time.Millisecond)
	if tel, _ := m.Telemetry(fp0); tel.PassiveSamples != 2 {
		t.Fatalf("untracked destination still ingesting: %+v", tel)
	}
}
