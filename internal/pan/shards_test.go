package pan_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/segment"
)

// TestMonitorSuiteAcrossShardCounts re-runs the behavioral monitor suite at
// shard counts 1 and 8: every scheduling, refcounting, and telemetry
// property must be shard-transparent — one shard reproduces the
// pre-sharding lock shape, eight spreads the same destinations across
// locks (and across wheel-fire orderings).
func TestMonitorSuiteAcrossShardCounts(t *testing.T) {
	suite := []struct {
		name string
		fn   func(*testing.T)
	}{
		{"ReportsRTTAndFailure", TestMonitorReportsRTTAndFailure},
		{"JitteredScheduling", TestMonitorJitteredScheduling},
		{"ChurnAdaptiveIntervals", TestMonitorChurnAdaptiveIntervals},
		{"ProbeBudgetFloor", TestMonitorProbeBudgetFloor},
		{"FailureBackoffAndRecovery", TestMonitorFailureBackoffAndRecovery},
		{"RefcountedTracking", TestMonitorRefcountedTracking},
		{"LinkAttribution", TestMonitorLinkAttribution},
		{"FeedsSubscribedSelectors", TestMonitorFeedsSubscribedSelectors},
		{"DropsVanishedPaths", TestMonitorDropsVanishedPaths},
		{"ObserveMatchesProbePipeline", TestMonitorObserveMatchesProbePipeline},
		{"ObserveSuppressesScheduledProbes", TestMonitorObserveSuppressesScheduledProbes},
		{"ObserveUntrackedPathDropped", TestMonitorObserveUntrackedPathDropped},
		{"StopRestartMidProbe", TestMonitorStopRestartMidProbe},
	}
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			old := testShards
			testShards = shards
			defer func() { testShards = old }()
			for _, tc := range suite {
				t.Run(tc.name, tc.fn)
			}
		})
	}
}

// TestMonitorShardHammer runs every mutating and reading entry point of the
// monitor concurrently across destinations in different shards — the -race
// workout for the shard/wheel/linkMu lock structure. Assertions are
// deliberately thin (the race detector is the judge); what must hold at the
// end is the refcount invariant: all trackers gone → no targets, nothing on
// the schedule.
func TestMonitorShardHammer(t *testing.T) {
	const (
		dests = 8
		iters = 300
	)
	dsts := make([]addr.IA, dests)
	byDst := make(map[addr.IA][]*segment.Path)
	var all []*segment.Path
	for d := 0; d < dests; d++ {
		dsts[d] = addr.IA{ISD: 2, AS: addr.AS(0x211 + d)}
		for i := 0; i < 3; i++ {
			p := fakePath(dsts[d], i)
			byDst[dsts[d]] = append(byDst[dsts[d]], p)
			all = append(all, p)
		}
	}
	m := pan.NewMonitor(netsim.RealClock{}, func(ia addr.IA) []*segment.Path { return byDst[ia] }, pan.MonitorOptions{
		BaseInterval: 50 * time.Millisecond,
		Shards:       8,
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			return time.Millisecond, nil
		},
	})
	target := func(d, i int) addr.UDPAddr {
		return addr.UDPAddr{Addr: addr.Addr{IA: dsts[d], Host: probeTarget(i).Host}, Port: 443}
	}
	// A baseline of tracked destinations so the readers always see entries.
	for d := 0; d < dests; d++ {
		m.Track(target(d, 0), "hammer.server")
	}
	m.Start()
	snap := m.ExportLinks()
	snap.Paths = append(snap.Paths, pan.PathExport{
		Dst: dsts[0], Fingerprint: byDst[dsts[0]][1].Fingerprint(),
		RTT: 30 * time.Millisecond, Samples: 2,
	})

	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		w := w
		run(func(i int) {
			p := all[(w*7+i)%len(all)]
			m.Observe(p, time.Duration(10+(i%20))*time.Millisecond)
		})
	}
	for w := 0; w < 2; w++ {
		w := w
		run(func(i int) {
			d := (w*3 + i) % dests
			m.Track(target(d, 1), "hammer.server")
			m.Untrack(target(d, 1), "hammer.server")
		})
	}
	run(func(i int) {
		d := i % dests
		m.TrackPassive(target(d, 2), "hammer.server")
		m.UntrackPassive(target(d, 2), "hammer.server")
	})
	run(func(i int) {
		if _, err := m.ImportLinks(snap, 0.5); err != nil {
			t.Errorf("ImportLinks: %v", err)
		}
	})
	for w := 0; w < 2; w++ {
		run(func(i int) {
			m.PathStats(all)
			m.LinkStats()
			m.Telemetry(all[i%len(all)].Fingerprint())
			m.TargetSamples(target(i%dests, 0), "hammer.server")
		})
	}
	run(func(i int) {
		if i%50 == 25 {
			m.Stop()
			m.Start()
		}
	})
	wg.Wait()
	m.Stop()

	for d := 0; d < dests; d++ {
		m.Untrack(target(d, 0), "hammer.server")
	}
	if n := m.TargetCount(); n != 0 {
		t.Fatalf("targets left after all trackers untracked: %d", n)
	}
	if n := m.TrackedPaths(); n != 0 {
		t.Fatalf("paths still on the schedule after all trackers untracked: %d", n)
	}
}
