package pan

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

// LinkSnapshotVersion is the wire version of LinkSnapshot. Importers reject
// snapshots of any other version without touching their state.
const LinkSnapshotVersion = 1

// LinkSnapshot is the versioned telemetry snapshot hosts gossip between each
// other: the exporter's LOCALLY measured link congestion estimates plus the
// per-path estimates they decompose from, each stamped with its age at
// export. Ages — not absolute timestamps — make the format clock-agnostic:
// the importer re-anchors every estimate on its own clock and lets it decay
// from there. Imported estimates never re-export, so a snapshot can never
// echo another host's stale view back into the mesh.
type LinkSnapshot struct {
	Version int          `json:"version"`
	Links   []LinkExport `json:"links,omitempty"`
	Paths   []PathExport `json:"paths,omitempty"`
}

// LinkExport is one inter-AS link's congestion estimate on the wire.
type LinkExport struct {
	A          addr.IA       `json:"a"`
	B          addr.IA       `json:"b"`
	Congestion time.Duration `json:"congestion"`
	Dev        time.Duration `json:"dev"`
	Sharers    int           `json:"sharers"`
	Age        time.Duration `json:"age"`
}

// PathExport is one path's end-to-end telemetry on the wire, keyed by the
// destination IA plus the path fingerprint so an importer can match it
// against its own control-plane paths (vantage points in the same AS share
// fingerprints; foreign paths are silently skipped).
type PathExport struct {
	Dst         addr.IA       `json:"dst"`
	Fingerprint string        `json:"fingerprint"`
	RTT         time.Duration `json:"rtt"`
	Dev         time.Duration `json:"dev"`
	Samples     int           `json:"samples"`
	Age         time.Duration `json:"age"`
	Down        bool          `json:"down,omitempty"`
}

// linkPrior is one imported link estimate, re-anchored on the importer's
// clock. It fills gaps only — a link with live local series never consults
// its prior — and its influence decays linearly to zero over the stale-series
// horizon.
type linkPrior struct {
	congestion, dev time.Duration
	importedAt      time.Time     // local clock at import
	ageAtImport     time.Duration // weight-scaled age carried in the snapshot
}

// age is the prior's effective age now: the (scaled) age it arrived with
// plus the local time elapsed since.
func (pr *linkPrior) age(now time.Time) time.Duration {
	return pr.ageAtImport + now.Sub(pr.importedAt)
}

// penalty is the prior's contribution to PathPenalty: the usual
// congestion + 2·deviation, scaled down linearly with age so a peer's
// estimate fades instead of steering traffic on ancient hearsay.
func (pr *linkPrior) penalty(now time.Time, horizon time.Duration) time.Duration {
	age := pr.age(now)
	if horizon <= 0 || age >= horizon {
		return 0
	}
	raw := pr.congestion + 2*pr.dev
	return time.Duration(float64(raw) * float64(horizon-age) / float64(horizon))
}

// ExportLinks snapshots the monitor's locally measured telemetry for gossip:
// every live link congestion estimate and every path entry with at least one
// local sample (or an unresolved local failure). Imported priors are
// excluded — see LinkSnapshot. Output ordering is deterministic.
func (m *Monitor) ExportLinks() LinkSnapshot {
	m.drainAll() // before linkMu: rings sit outside every lock
	now := m.clock.Now()
	snap := LinkSnapshot{Version: LinkSnapshotVersion}
	m.linkMu.Lock()
	stats, _ := m.linkCacheLocked()
	cacheLag := now.Sub(m.linkCacheAt)
	for _, st := range stats {
		snap.Links = append(snap.Links, LinkExport{
			A: st.A, B: st.B,
			Congestion: st.Congestion,
			Dev:        st.Dev,
			Sharers:    st.Sharers,
			Age:        st.Age + cacheLag,
		})
	}
	m.linkMu.Unlock()
	for _, sh := range m.shards {
		sh.mu.Lock()
		for fp, e := range sh.entries {
			if e.prior || (e.samples == 0 && !e.down) {
				continue
			}
			var age time.Duration
			if !e.lastSample.IsZero() {
				age = now.Sub(e.lastSample)
			}
			snap.Paths = append(snap.Paths, PathExport{
				Dst:         e.path.Dst,
				Fingerprint: fp,
				RTT:         e.rtt,
				Dev:         e.dev,
				Samples:     e.samples,
				Age:         age,
				Down:        e.down,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Paths, func(i, j int) bool {
		if snap.Paths[i].Dst != snap.Paths[j].Dst {
			a, b := snap.Paths[i].Dst, snap.Paths[j].Dst
			return a.ISD < b.ISD || (a.ISD == b.ISD && a.AS < b.AS)
		}
		return snap.Paths[i].Fingerprint < snap.Paths[j].Fingerprint
	})
	return snap
}

// Import errors.
var (
	// ErrSnapshotVersion rejects a snapshot of an unknown wire version.
	ErrSnapshotVersion = errors.New("pan: unsupported link snapshot version")
	// ErrSnapshotMalformed rejects a structurally invalid snapshot.
	ErrSnapshotMalformed = errors.New("pan: malformed link snapshot")
	// ErrSnapshotWeight rejects an import weight outside (0, 1].
	ErrSnapshotWeight = errors.New("pan: snapshot import weight must be in (0, 1]")
)

// validateSnapshot checks the snapshot structurally BEFORE anything is
// applied, so a rejected import provably mutates no state.
func validateSnapshot(snap LinkSnapshot) error {
	if snap.Version != LinkSnapshotVersion {
		return fmt.Errorf("%w: %d", ErrSnapshotVersion, snap.Version)
	}
	for _, l := range snap.Links {
		if l.A.IsZero() || l.B.IsZero() || l.A == l.B {
			return fmt.Errorf("%w: link %s<->%s", ErrSnapshotMalformed, l.A, l.B)
		}
		if l.Congestion < 0 || l.Dev < 0 || l.Age < 0 || l.Sharers < 0 {
			return fmt.Errorf("%w: link %s<->%s carries negative values", ErrSnapshotMalformed, l.A, l.B)
		}
	}
	for _, p := range snap.Paths {
		if p.Fingerprint == "" || p.Dst.IsZero() {
			return fmt.Errorf("%w: path entry missing identity", ErrSnapshotMalformed)
		}
		if p.RTT < 0 || p.Dev < 0 || p.Age < 0 || p.Samples < 0 {
			return fmt.Errorf("%w: path %s carries negative values", ErrSnapshotMalformed, p.Fingerprint)
		}
	}
	return nil
}

// ImportLinks merges a peer's snapshot into the monitor as PRIORS, weighted
// by trust: weight 1 takes the peer's estimates at face value, lower weights
// age them faster (an estimate of age A imports as age A/weight), so a
// less-trusted vantage point both decays sooner and loses freshness ties.
// The merge rules, in order:
//
//   - Malformed or wrong-version snapshots (and weights outside (0, 1]) are
//     rejected with an error before ANY state changes.
//   - Link estimates land in a prior store consulted by PathPenalty only for
//     links with no live local series; among competing priors the effectively
//     younger one wins. Priors decay with age and are never re-exported.
//   - Path estimates fill only entries with no local samples (creating
//     missing entries for paths this host's control plane knows); the first
//     live local sample REPLACES an imported estimate outright. Paths this
//     host cannot resolve, and estimates already stale beyond the series
//     horizon, are skipped.
//   - Nothing is scheduled: imported entries carry no probe deadline (they
//     join the schedule only when a dialer tracks their destination), an
//     already-scheduled path's timer is untouched, and no probe suppression
//     stamp is set — gossip warms estimates, never the probe plan.
//
// It returns how many link and path estimates were applied.
func (m *Monitor) ImportLinks(snap LinkSnapshot, weight float64) (int, error) {
	if !(weight > 0 && weight <= 1) {
		return 0, fmt.Errorf("%w: %v", ErrSnapshotWeight, weight)
	}
	if err := validateSnapshot(snap); err != nil {
		return 0, err
	}
	scale := func(age time.Duration) time.Duration {
		return time.Duration(float64(age) / weight)
	}
	now := m.clock.Now()
	horizon := time.Duration(staleSeriesAfter) * m.opts.MaxInterval
	applied := 0
	m.linkMu.Lock()
	for _, l := range snap.Links {
		effAge := scale(l.Age)
		if effAge >= horizon {
			continue
		}
		lk := canonicalLink(l.A, l.B)
		if prev := m.priors[lk]; prev != nil && prev.age(now) <= effAge {
			continue // the prior already held is effectively younger
		}
		m.priors[lk] = &linkPrior{
			congestion:  l.Congestion,
			dev:         l.Dev,
			importedAt:  now,
			ageAtImport: effAge,
		}
		applied++
	}
	m.linkMu.Unlock()
	// Resolve imported paths against this host's own control plane, one
	// lookup per destination — outside every lock; the per-path apply then
	// takes exactly the destination's shard lock, like any other ingest.
	byDst := make(map[addr.IA]map[string]*segment.Path)
	for _, p := range snap.Paths {
		effAge := scale(p.Age)
		if effAge >= horizon {
			continue
		}
		if p.Samples == 0 && !p.Down {
			continue
		}
		known := byDst[p.Dst]
		if known == nil {
			known = make(map[string]*segment.Path)
			for _, kp := range m.paths(p.Dst) {
				known[kp.Fingerprint()] = kp
			}
			byDst[p.Dst] = known
		}
		path := known[p.Fingerprint]
		if path == nil {
			continue // not a path this host can use
		}
		sh := m.shardFor(p.Dst)
		sh.mu.Lock()
		e := sh.entries[p.Fingerprint]
		if e == nil {
			e = &monEntry{
				path:     path,
				targets:  make(map[string]*monTarget),
				interval: m.opts.BaseInterval,
			}
			sh.entries[p.Fingerprint] = e
		} else if e.samples > 0 && !e.prior {
			sh.mu.Unlock()
			continue // live local telemetry always overrides imports
		} else if e.prior && !e.lastSample.IsZero() && now.Sub(e.lastSample) <= effAge {
			sh.mu.Unlock()
			continue // the prior already held is effectively younger
		}
		e.rtt, e.dev = p.RTT, p.Dev
		e.samples, e.passive = p.Samples, 0
		e.down = p.Down
		e.prior = true
		e.lastSample = now.Add(-effAge)
		sh.mu.Unlock()
		applied++
	}
	return applied, nil
}
