package pan_test

import (
	"errors"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/segment"
	"tango/internal/topology"
)

// snapshotFixture is a monitor pair over one shared fake path set: a "warm"
// exporter and a "cold" importer, each on its own virtual clock (snapshots
// carry ages, not timestamps, so clocks need not agree).
func snapshotFixture(t *testing.T, paths []*segment.Path, opts pan.MonitorOptions) (warm, cold *pan.Monitor, warmClock, coldClock *netsim.SimClock, probes *probeScript) {
	t.Helper()
	epoch := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	warmClock, coldClock = netsim.NewSimClock(epoch), netsim.NewSimClock(epoch)
	probes = &probeScript{script: map[string][]probeOutcome{}}
	pathsFn := func(addr.IA) []*segment.Path { return paths }
	warmOpts := opts
	warmOpts.Probe = probes.fn
	warm = pan.NewMonitor(warmClock, pathsFn, warmOpts)
	coldOpts := opts
	coldOpts.Probe = func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
		t.Error("cold monitor issued an active probe")
		return 0, probeErr
	}
	cold = pan.NewMonitor(coldClock, pathsFn, coldOpts)
	return warm, cold, warmClock, coldClock, probes
}

func candidatesOf(paths []*segment.Path) []pan.Candidate {
	out := make([]pan.Candidate, len(paths))
	for i, p := range paths {
		out[i] = pan.Candidate{Path: p, Compliant: true}
	}
	return out
}

// TestSnapshotWarmStart is the core of link-state sharing: a cold monitor
// importing a warm peer's snapshot advises width-1 adaptive racing
// immediately — without a single local probe — and its telemetry is flagged
// as imported.
func TestSnapshotWarmStart(t *testing.T) {
	paths := []*segment.Path{
		fakePath(topology.AS211, 0), // 10ms metadata
		fakePath(topology.AS211, 1),
		fakePath(topology.AS211, 2),
	}
	warm, cold, _, _, probes := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})
	probes.script[paths[0].Fingerprint()] = []probeOutcome{{rtt: 40 * time.Millisecond}}
	probes.script[paths[1].Fingerprint()] = []probeOutcome{{rtt: 90 * time.Millisecond}}
	probes.script[paths[2].Fingerprint()] = []probeOutcome{{rtt: 120 * time.Millisecond}}

	warm.Track(probeTarget(0), "probe.server")
	for i := 0; i < 3; i++ {
		warm.RunRound()
	}
	snap := warm.ExportLinks()
	if len(snap.Paths) != 3 {
		t.Fatalf("export carries %d paths, want 3: %+v", len(snap.Paths), snap.Paths)
	}

	applied, err := cold.ImportLinks(snap, 1)
	if err != nil || applied == 0 {
		t.Fatalf("import: applied=%d err=%v", applied, err)
	}
	tel, ok := cold.Telemetry(paths[0].Fingerprint())
	if !ok {
		t.Fatal("no imported telemetry for the leader path")
	}
	if !tel.Imported || tel.Samples == 0 || !tel.Fresh {
		t.Fatalf("imported telemetry = %+v, want fresh imported prior", tel)
	}
	if tel.RTT != 40*time.Millisecond {
		t.Fatalf("imported RTT = %v, want the peer's 40ms estimate", tel.RTT)
	}

	// The cold monitor's race advice collapses to width 1 on the imported
	// priors alone: the whole point of the warm start.
	width, reason := cold.RaceWidth(candidatesOf(paths), 3)
	if width != 1 || reason != "clear-leader" {
		t.Fatalf("cold race advice = %d (%s), want width 1 clear-leader", width, reason)
	}
}

// TestSnapshotAgeDecay: imported estimates carry their age, scaled up by
// distrust (weight < 1 ages them faster), and a stale import cannot justify
// narrow racing.
func TestSnapshotAgeDecay(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0), fakePath(topology.AS211, 1)}
	warm, cold, warmClock, _, probes := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})
	probes.script[paths[0].Fingerprint()] = []probeOutcome{{rtt: 40 * time.Millisecond}}
	probes.script[paths[1].Fingerprint()] = []probeOutcome{{rtt: 90 * time.Millisecond}}
	warm.Track(probeTarget(0), "probe.server")
	warm.RunRound()

	// Age the estimates 2s before exporting. At weight 1 they are still
	// fresh on the importer (freshness horizon 2·interval + timeout = 3s);
	// at weight 0.5 the same snapshot imports as 4s old — stale.
	warmClock.Advance(2 * time.Second)
	snap := warm.ExportLinks()

	if _, err := cold.ImportLinks(snap, 1); err != nil {
		t.Fatal(err)
	}
	if width, reason := cold.RaceWidth(candidatesOf(paths), 2); width != 1 {
		t.Fatalf("trusted fresh import advised width %d (%s), want 1", width, reason)
	}

	_, cold2, _, _, _ := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})
	if _, err := cold2.ImportLinks(snap, 0.5); err != nil {
		t.Fatal(err)
	}
	tel, ok := cold2.Telemetry(paths[0].Fingerprint())
	if !ok || tel.Fresh {
		t.Fatalf("half-trusted 2s-old import should be stale (aged 4s), got %+v (ok=%v)", tel, ok)
	}
	if width, reason := cold2.RaceWidth(candidatesOf(paths), 2); width != 2 || reason != "stale-leader" {
		t.Fatalf("stale import advised width %d (%s), want 2 stale-leader", width, reason)
	}
}

// TestSnapshotLiveOverridesImport: the first live sample REPLACES an
// imported prior outright — no blending with a peer's estimate.
func TestSnapshotLiveOverridesImport(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0)}
	warm, cold, _, _, probes := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})
	probes.script[paths[0].Fingerprint()] = []probeOutcome{{rtt: 40 * time.Millisecond}}
	warm.Track(probeTarget(0), "probe.server")
	for i := 0; i < 3; i++ {
		warm.RunRound() // several samples so the imported count is > 1
	}
	if _, err := cold.ImportLinks(warm.ExportLinks(), 1); err != nil {
		t.Fatal(err)
	}

	// A live passive sample lands (the destination must be tracked for
	// Observe to accept it).
	cold.Track(probeTarget(0), "probe.server")
	cold.Observe(paths[0], 200*time.Millisecond)
	tel, ok := cold.Telemetry(paths[0].Fingerprint())
	if !ok {
		t.Fatal("telemetry vanished")
	}
	if tel.Imported {
		t.Fatalf("live sample left the prior flag set: %+v", tel)
	}
	if tel.Samples != 1 || tel.RTT != 200*time.Millisecond {
		t.Fatalf("live sample blended with the import: %+v, want a clean reset to 1 sample @200ms", tel)
	}

	// And a re-import must NOT overwrite live telemetry.
	if _, err := cold.ImportLinks(warm.ExportLinks(), 1); err != nil {
		t.Fatal(err)
	}
	tel, _ = cold.Telemetry(paths[0].Fingerprint())
	if tel.Imported || tel.RTT != 200*time.Millisecond {
		t.Fatalf("re-import overwrote live telemetry: %+v", tel)
	}
}

// TestSnapshotRejectsMalformed: wrong versions, structurally invalid
// entries, and out-of-range weights are rejected with an error and provably
// mutate nothing — including snapshots that mix valid and invalid entries.
func TestSnapshotRejectsMalformed(t *testing.T) {
	paths := []*segment.Path{fakePathVia(topology.AS211, 0, 10*time.Millisecond, topology.Core110)}
	_, cold, _, _, _ := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})
	fp := paths[0].Fingerprint()

	goodLink := pan.LinkExport{A: topology.AS111, B: topology.Core110, Congestion: 50 * time.Millisecond, Sharers: 1}
	goodPath := pan.PathExport{Dst: topology.AS211, Fingerprint: fp, RTT: 80 * time.Millisecond, Samples: 3}
	cases := []struct {
		name   string
		snap   pan.LinkSnapshot
		weight float64
		want   error
	}{
		{"bad version", pan.LinkSnapshot{Version: 99, Paths: []pan.PathExport{goodPath}}, 1, pan.ErrSnapshotVersion},
		{"zero weight", pan.LinkSnapshot{Version: 1, Paths: []pan.PathExport{goodPath}}, 0, pan.ErrSnapshotWeight},
		{"excess weight", pan.LinkSnapshot{Version: 1, Paths: []pan.PathExport{goodPath}}, 1.5, pan.ErrSnapshotWeight},
		{"self link", pan.LinkSnapshot{Version: 1,
			Links: []pan.LinkExport{{A: topology.AS111, B: topology.AS111, Congestion: time.Millisecond}}}, 1, pan.ErrSnapshotMalformed},
		{"negative congestion", pan.LinkSnapshot{Version: 1,
			Links: []pan.LinkExport{{A: topology.AS111, B: topology.Core110, Congestion: -time.Millisecond}}}, 1, pan.ErrSnapshotMalformed},
		{"negative rtt", pan.LinkSnapshot{Version: 1,
			Paths: []pan.PathExport{{Dst: topology.AS211, Fingerprint: fp, RTT: -time.Second, Samples: 1}}}, 1, pan.ErrSnapshotMalformed},
		{"anonymous path", pan.LinkSnapshot{Version: 1,
			Paths: []pan.PathExport{{Dst: topology.AS211, RTT: time.Millisecond, Samples: 1}}}, 1, pan.ErrSnapshotMalformed},
		{"valid entries ride along", pan.LinkSnapshot{Version: 1,
			Links: []pan.LinkExport{goodLink},
			Paths: []pan.PathExport{goodPath, {Dst: topology.AS211, Fingerprint: fp, RTT: -time.Second, Samples: 1}}}, 1, pan.ErrSnapshotMalformed},
	}
	for _, tc := range cases {
		applied, err := cold.ImportLinks(tc.snap, tc.weight)
		if !errors.Is(err, tc.want) || applied != 0 {
			t.Fatalf("%s: applied=%d err=%v, want 0 applied and %v", tc.name, applied, err, tc.want)
		}
		if _, ok := cold.Telemetry(fp); ok {
			t.Fatalf("%s: rejected import left path telemetry behind", tc.name)
		}
		if pen := cold.PathPenalty(paths[0]); pen != 0 {
			t.Fatalf("%s: rejected import left a link prior behind (penalty %v)", tc.name, pen)
		}
	}
}

// TestSnapshotNeverSchedulesProbes: an import neither arms probe timers on a
// cold monitor nor suppresses (or reschedules) the probes of a tracked one.
func TestSnapshotNeverSchedulesProbes(t *testing.T) {
	paths := []*segment.Path{fakePath(topology.AS211, 0)}
	fp := paths[0].Fingerprint()
	epoch := time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	clock := netsim.NewSimClock(epoch)
	probes := &probeScript{script: map[string][]probeOutcome{fp: {{rtt: 50 * time.Millisecond}}}}
	m := pan.NewMonitor(clock, func(addr.IA) []*segment.Path { return paths }, pan.MonitorOptions{
		BaseInterval: time.Second,
		Probe:        probes.fn,
	})
	snap := pan.LinkSnapshot{Version: 1, Paths: []pan.PathExport{
		{Dst: topology.AS211, Fingerprint: fp, RTT: 40 * time.Millisecond, Samples: 5},
	}}

	// Cold + started, nothing tracked: the import alone must not put the
	// imported path on the schedule.
	m.Start()
	defer m.Stop()
	if _, err := m.ImportLinks(snap, 1); err != nil {
		t.Fatal(err)
	}
	drain(clock, 5*time.Second, 100*time.Millisecond)
	if n := probes.total(); n != 0 {
		t.Fatalf("import armed %d probes on an untracked monitor, want 0", n)
	}

	// Tracked: the path probes on its normal schedule, and an import must
	// not suppress the upcoming fire the way a passive sample would.
	m.Track(probeTarget(0), "probe.server")
	if _, err := m.ImportLinks(snap, 1); err == nil {
		// Re-import is a no-op on the live entry but must also not reset
		// or cancel its schedule.
	}
	drain(clock, 3*time.Second, 100*time.Millisecond)
	if n := probes.total(); n == 0 {
		t.Fatal("tracked path never probed after import — import suppressed the schedule")
	}
}

// TestSnapshotLinkPriors: imported link estimates warm PathPenalty for links
// with no local series (and so hotspot-aware ranking on a cold host), decay
// away with age, never re-export, and are ignored once live local
// measurements exist.
func TestSnapshotLinkPriors(t *testing.T) {
	// Two paths to AS211: one crossing Core110→Core120 (the soon-to-be-hot
	// link), one via AS221 avoiding it.
	hot := fakePathVia(topology.AS211, 0, 10*time.Millisecond, topology.Core110, topology.Core120)
	clean := fakePathVia(topology.AS211, 1, 12*time.Millisecond, topology.AS221)
	paths := []*segment.Path{hot, clean}
	warm, cold, _, _, _ := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})

	// The warm vantage point sees heavy excess on the hot path's links from
	// its own (passive) traffic.
	warm.Track(probeTarget(0), "probe.server")
	for i := 0; i < 4; i++ {
		warm.Observe(hot, 120*time.Millisecond) // 100ms excess over the 20ms baseline
		warm.Observe(clean, 24*time.Millisecond)
	}
	snap := warm.ExportLinks()
	if len(snap.Links) == 0 {
		t.Fatal("warm export carries no link estimates")
	}

	if _, err := cold.ImportLinks(snap, 1); err != nil {
		t.Fatal(err)
	}
	hotPen, cleanPen := cold.PathPenalty(hot), cold.PathPenalty(clean)
	if hotPen <= cleanPen || hotPen < 50*time.Millisecond {
		t.Fatalf("imported priors: hot penalty %v vs clean %v — the cold host cannot see the hotspot", hotPen, cleanPen)
	}
	// Priors are invisible to LinkStats and to re-export: gossip never
	// echoes another host's estimates.
	if ls := cold.LinkStats(); len(ls) != 0 {
		t.Fatalf("imported priors leaked into LinkStats: %+v", ls)
	}
	if re := cold.ExportLinks(); len(re.Links) != 0 || len(re.Paths) != 0 {
		t.Fatalf("imported priors re-exported: %+v", re)
	}

	// Live local measurement overrides the prior for its links entirely.
	cold.Track(probeTarget(0), "probe.server")
	for i := 0; i < 4; i++ {
		cold.Observe(hot, 21*time.Millisecond) // locally the path runs clean
	}
	if pen := cold.PathPenalty(hot); pen >= hotPen/2 {
		t.Fatalf("live clean measurements left the imported penalty at %v (was %v)", pen, hotPen)
	}

	// And with time the prior decays: linearly down, to zero past the
	// stale-series horizon (staleSeriesAfter(10) × MaxInterval(4s) = 40s).
	_, cold2, _, coldClock2, _ := snapshotFixture(t, paths, pan.MonitorOptions{BaseInterval: time.Second})
	if _, err := cold2.ImportLinks(snap, 1); err != nil {
		t.Fatal(err)
	}
	before := cold2.PathPenalty(hot)
	coldClock2.Advance(20 * time.Second)
	if mid := cold2.PathPenalty(hot); mid <= 0 || mid >= before {
		t.Fatalf("prior penalty did not decay: %v at import, %v at half horizon", before, mid)
	}
	coldClock2.Advance(25 * time.Second)
	if late := cold2.PathPenalty(hot); late != 0 {
		t.Fatalf("prior penalty survived past the horizon: %v", late)
	}
}
