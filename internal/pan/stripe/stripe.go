// Package stripe implements segmented multipath transfers: a large fetch is
// split into fixed-size segments and the segments are pulled concurrently
// over a set of connections riding link-disjoint paths. Each path owns one
// Pipeline — its own RTT estimator, AIMD congestion window (counted in
// segments), and retransmit timer, modeled on ndn-dpdk's segmented
// fetch-algo design — and a single-threaded scheduler assigns every segment
// to the pipeline with free window and the best pessimistic RTT estimate.
// A pipeline whose window collapses (consecutive timeouts) or whose
// connection dies has its outstanding segments reassigned to the survivors,
// so a mid-transfer path kill degrades throughput to the remaining paths
// instead of failing the transfer.
//
// The package deliberately knows nothing about path selection or telemetry
// planes: callers (pan.Dialer.DialStriped) pick the disjoint paths, seed the
// estimators from monitor telemetry, and feed ack RTTs back into the shared
// monitor. The unit of work is a FetchFunc — "fetch these bytes over this
// pipeline's connection" — so the same scheduler drives HTTP range requests
// (the proxy) and raw test protocols alike.
package stripe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tango/internal/netsim"
	"tango/internal/segment"
	"tango/internal/squic"
)

// Segment is one contiguous piece of the transfer.
type Segment struct {
	// Index is the segment's position in the transfer, 0-based.
	Index int
	// Offset is the absolute byte offset of the segment's first byte.
	Offset int64
	// Length is the segment's size in bytes (the final segment may be
	// shorter than Options.SegmentSize).
	Length int
}

// FetchFunc retrieves one segment over the pipeline's connection, returning
// exactly seg.Length bytes. It MUST honor ctx cancellation — the scheduler
// cancels attempts it has timed out or reassigned.
type FetchFunc func(ctx context.Context, p *Pipeline, seg Segment) ([]byte, error)

// Defaults.
const (
	DefaultSegmentSize   = 128 << 10
	DefaultInitialCwnd   = 3
	DefaultMaxCwnd       = 32
	DefaultDeadThreshold = 2
	DefaultMinRTO        = 250 * time.Millisecond
	maxRTO               = time.Minute
)

// Options parameterizes a Fetch.
type Options struct {
	// SegmentSize is the stripe granularity in bytes (default 128 KiB).
	SegmentSize int
	// Clock drives retransmit timers (virtual in simulation). Required.
	Clock netsim.Clock
	// Fetch retrieves one segment. Required.
	Fetch FetchFunc
	// Observe, when set, receives every accepted segment RTT with the path
	// it was measured on — a per-segment telemetry tap. (Connection-level
	// ack RTTs are the caller's to wire via squic.Conn.OnRTTSample.)
	Observe func(path *segment.Path, rtt time.Duration)
	// MaxCwnd caps each pipeline's window, in segments (default 32).
	MaxCwnd int
	// DeadThreshold is the number of consecutive timeouts after which a
	// pipeline is abandoned and its outstanding segments reassigned
	// (default 2). A dead connection abandons the pipeline immediately.
	DeadThreshold int
	// MinRTO floors the retransmit timeout (default 250ms).
	MinRTO time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.MaxCwnd <= 0 {
		o.MaxCwnd = DefaultMaxCwnd
	}
	if o.DeadThreshold <= 0 {
		o.DeadThreshold = DefaultDeadThreshold
	}
	if o.MinRTO <= 0 {
		o.MinRTO = DefaultMinRTO
	}
	return o
}

// Pipeline is the per-path transfer state: one connection plus the RTT
// estimator, AIMD congestion window, and failure counters the scheduler
// consults. Its mutable state is written only by the scheduler goroutine
// during a Fetch; Status takes a consistent snapshot at any time.
type Pipeline struct {
	conn *squic.Conn
	path *segment.Path

	// statusMu guards the snapshot-visible fields below against concurrent
	// Status readers (CLI liveness, tests). The scheduler goroutine is the
	// only writer, so its own lock-free reads stay consistent.
	statusMu sync.Mutex //lint:lockorder stripestatus

	// Jacobson/Karels estimator over segment completion times. Seeded from
	// monitor telemetry so the first scheduling decisions are informed.
	srtt, rttvar time.Duration
	samples      int
	// baseRTT is the minimum segment completion time seen on this pipeline —
	// the congestion-free baseline the window gate compares against.
	baseRTT time.Duration

	cwnd     int // window, in segments
	ssthresh int
	ackRun   int // acks since the last window increment (congestion avoidance)
	inflight int
	consecTO int
	backoff  uint
	dead     bool

	bytes  int64 // payload bytes this pipeline delivered
	acks   int   // segments this pipeline completed
	losses int   // timeouts + errors charged to this pipeline

	// lossAt is the start time of the newest attempt whose loss was charged
	// against the window — the Karn-style recovery marker. Attempts launched
	// before it that also time out belong to the same congestion event and
	// are requeued without escalating consecTO/backoff again. Scheduler
	// goroutine only.
	lossAt time.Time
}

// NewPipeline wraps a connection and its path for striped use. conn may be
// nil when the FetchFunc does not need it (tests, custom transports); a
// non-nil conn's death additionally abandons the pipeline on the first
// loss. seedRTT and seedDev, when positive, prime the RTT estimator (pass
// the monitor's smoothed RTT and deviation); zero leaves the estimator
// empty until the first segment completes.
func NewPipeline(conn *squic.Conn, path *segment.Path, seedRTT, seedDev time.Duration) *Pipeline {
	p := &Pipeline{
		conn:     conn,
		path:     path,
		cwnd:     DefaultInitialCwnd,
		ssthresh: DefaultMaxCwnd,
	}
	if seedRTT > 0 {
		p.srtt = seedRTT
		p.rttvar = seedDev
		if p.rttvar <= 0 {
			p.rttvar = seedRTT / 2
		}
	}
	return p
}

// Conn returns the pipeline's connection.
func (p *Pipeline) Conn() *squic.Conn { return p.conn }

// Path returns the pipeline's forwarding path.
func (p *Pipeline) Path() *segment.Path { return p.path }

// PipelineStatus is a read-only snapshot for liveness printouts.
type PipelineStatus struct {
	Fingerprint string
	Bytes       int64
	Segments    int
	Losses      int
	Cwnd        int
	SRTT        time.Duration
	Dead        bool
}

// Status snapshots the pipeline; safe to call mid-fetch (the liveness
// printouts and fault-injection tests read while the scheduler runs).
func (p *Pipeline) Status() PipelineStatus {
	p.statusMu.Lock()
	defer p.statusMu.Unlock()
	return PipelineStatus{
		Fingerprint: p.path.Fingerprint(),
		Bytes:       p.bytes,
		Segments:    p.acks,
		Losses:      p.losses,
		Cwnd:        p.cwnd,
		SRTT:        p.srtt,
		Dead:        p.dead,
	}
}

// pessimistic is the scheduler's ranking estimate: smoothed RTT plus twice
// its deviation — the same idiom the monitor's PathStats penalty uses, so a
// jittery path schedules behind a steady one with the same mean.
func (p *Pipeline) pessimistic() time.Duration { return p.srtt + 2*p.rttvar }

// rto is the attempt timeout: generous against in-window queueing growth
// (completion time scales with the window during slow start), exponentially
// backed off per consecutive timeout, floored and capped.
func (p *Pipeline) rto(minRTO time.Duration) time.Duration {
	base := 3*p.srtt + 4*p.rttvar
	if base < minRTO {
		base = minRTO
	}
	shift := p.backoff
	if shift > 6 {
		shift = 6
	}
	rto := base << shift
	if rto <= 0 || rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// onAck folds one completed segment into the estimator and grows the window:
// slow start below ssthresh, one-segment-per-window additive increase above.
// Growth is RTT-gated (Vegas-style): once completion times exceed twice the
// congestion-free baseline, the bottleneck queue is already deep — the
// drop-free simulated links never signal loss, so without the gate the window
// would inflate sojourn times until the retransmit timer fired spuriously.
func (p *Pipeline) onAck(rtt time.Duration, maxCwnd int) {
	p.statusMu.Lock()
	defer p.statusMu.Unlock()
	if rtt <= 0 {
		rtt = time.Microsecond
	}
	if p.baseRTT == 0 || rtt < p.baseRTT {
		p.baseRTT = rtt
	}
	if p.samples == 0 && p.srtt == 0 {
		p.srtt = rtt
		p.rttvar = rtt / 2
	} else {
		d := p.srtt - rtt
		if d < 0 {
			d = -d
		}
		p.rttvar = (3*p.rttvar + d) / 4
		p.srtt = (7*p.srtt + rtt) / 8
	}
	p.samples++
	p.consecTO = 0
	p.backoff = 0
	switch {
	case rtt > 2*p.baseRTT:
		// Queueing delay already exceeds the propagation time: hold the
		// window and let the queue drain.
	case p.cwnd < p.ssthresh:
		p.cwnd++
	default:
		p.ackRun++
		if p.ackRun >= p.cwnd {
			p.ackRun = 0
			p.cwnd++
		}
	}
	if p.cwnd > maxCwnd {
		p.cwnd = maxCwnd
	}
	p.acks++
}

// onLoss records a failed attempt. A charged loss halves the window
// (multiplicative decrease, floored at one segment) and counts toward the
// dead threshold; an uncharged one — a timeout from the same in-flight
// window as an already-charged loss — only bumps the loss counter, so one
// congestion event cannot kill a pipeline by expiring several timers that
// were all armed before the first one fired.
func (p *Pipeline) onLoss(deadThreshold int, charge bool) {
	p.statusMu.Lock()
	defer p.statusMu.Unlock()
	p.losses++
	if charge {
		p.consecTO++
		p.backoff++
		p.ssthresh = p.cwnd / 2
		if p.ssthresh < 1 {
			p.ssthresh = 1
		}
		p.cwnd = p.ssthresh
	}
	if p.consecTO >= deadThreshold || (p.conn != nil && p.conn.Err() != nil) {
		p.dead = true
	}
}

// addBytes credits delivered payload under the status lock.
func (p *Pipeline) addBytes(n int64) {
	p.statusMu.Lock()
	defer p.statusMu.Unlock()
	p.bytes += n
}

// Result is a completed striped fetch.
type Result struct {
	// Data is the reassembled byte range, in order, with no gaps.
	Data []byte
	// PerPath maps path fingerprints to the bytes each path delivered — the
	// per-path byte split surfaced in proxy stats.
	PerPath map[string]int64
	// Retries counts segment attempts that timed out or failed and were
	// re-dispatched.
	Retries int
	// Reassigned counts outstanding segments moved off a collapsed or dead
	// pipeline.
	Reassigned int
}

// ErrNoPipelines is returned when Fetch is called without a live pipeline.
var ErrNoPipelines = errors.New("stripe: no live pipelines")

// attempt is one dispatch of one segment on one pipeline.
type attempt struct {
	seg    Segment
	pipe   *Pipeline
	start  time.Time
	cancel context.CancelFunc
	timer  func() bool // cancels the RTO timer
}

// completion is the single event every attempt eventually produces.
type completion struct {
	a        *attempt
	data     []byte
	err      error
	rtt      time.Duration
	timedOut bool
}

// fetcher is the scheduler state for one Fetch call.
type fetcher struct {
	ctx   context.Context
	opts  Options
	pipes []*Pipeline

	segs        []Segment
	done        []bool
	pending     []int // segment indices awaiting (re-)dispatch, FIFO
	outstanding map[int]*attempt
	// zombies are timed-out attempts left running (Karn-style): the request
	// was already sent, so on a spurious timeout the data usually still
	// arrives — first completion wins, and the loser is canceled. Canceling
	// at timeout instead would re-send the whole segment and amplify the very
	// congestion that inflated the RTT.
	zombies   map[int][]*attempt
	events    chan completion
	closed    chan struct{} // gates attempt sends after Fetch returns
	inflight  int
	remaining int
	base      int64 // offset of the fetched range's first byte

	result Result
}

// send delivers an attempt's event unless the fetch is already over — a
// canceled attempt finishing after shutdown must not block forever on a
// channel nobody reads.
func (f *fetcher) send(ev completion) {
	select {
	case f.events <- ev:
	case <-f.closed:
	}
}

// Fetch retrieves the byte range [off, off+length) striped across the given
// pipelines and returns it reassembled. It blocks until the range is
// complete, the context is canceled, or every pipeline has died with
// segments still missing. The pipelines' congestion and RTT state persists
// across calls, warm-starting subsequent fetches on the same set.
func Fetch(ctx context.Context, off, length int64, pipes []*Pipeline, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Fetch == nil || opts.Clock == nil {
		return nil, errors.New("stripe: Options.Fetch and Options.Clock are required")
	}
	if length < 0 {
		return nil, fmt.Errorf("stripe: negative length %d", length)
	}
	live := pipes[:0:0]
	for _, p := range pipes {
		if !p.dead && (p.conn == nil || p.conn.Err() == nil) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil, ErrNoPipelines
	}

	f := &fetcher{
		ctx:         ctx,
		opts:        opts,
		pipes:       live,
		outstanding: make(map[int]*attempt),
		zombies:     make(map[int][]*attempt),
		base:        off,
	}
	for o := int64(0); o < length; o += int64(opts.SegmentSize) {
		n := length - o
		if n > int64(opts.SegmentSize) {
			n = int64(opts.SegmentSize)
		}
		f.segs = append(f.segs, Segment{Index: len(f.segs), Offset: off + o, Length: int(n)})
	}
	f.done = make([]bool, len(f.segs))
	f.pending = make([]int, len(f.segs))
	for i := range f.segs {
		f.pending[i] = i
	}
	f.remaining = len(f.segs)
	// Sized to the summed windows so attempt goroutines rarely block; the
	// run loop keeps consuming, and the closed gate releases any straggler
	// once the fetch is over.
	f.events = make(chan completion, len(live)*opts.MaxCwnd+1)
	f.closed = make(chan struct{})
	f.result.Data = make([]byte, length)
	f.result.PerPath = make(map[string]int64, len(live))

	err := f.run()
	f.shutdown()
	if err != nil {
		return nil, err
	}
	return &f.result, nil
}

func (f *fetcher) run() error {
	for f.remaining > 0 {
		f.dispatch()
		if f.inflight == 0 {
			// Nothing outstanding and nothing dispatchable: every pipeline
			// is dead with segments still missing.
			return fmt.Errorf("%w: %d of %d segments missing", ErrNoPipelines, f.remaining, len(f.segs))
		}
		select {
		case ev := <-f.events:
			f.handle(ev)
		case <-f.ctx.Done():
			return f.ctx.Err()
		}
	}
	return nil
}

// dispatch assigns pending segments to pipelines while any live pipeline has
// free window, always choosing the live free-window pipeline with the best
// (lowest) pessimistic RTT estimate; index order breaks ties, which keeps
// the schedule deterministic.
func (f *fetcher) dispatch() {
	for len(f.pending) > 0 {
		var best *Pipeline
		for _, p := range f.pipes {
			if p.dead || p.inflight >= p.cwnd {
				continue
			}
			if best == nil || p.pessimistic() < best.pessimistic() {
				best = p
			}
		}
		if best == nil {
			return
		}
		idx := f.pending[0]
		f.pending = f.pending[1:]
		if f.done[idx] {
			continue // completed by a late duplicate while queued
		}
		f.start(best, f.segs[idx])
	}
}

// start launches one attempt: a fetch goroutine plus an RTO timer, racing to
// produce the attempt's single completion event.
func (f *fetcher) start(p *Pipeline, seg Segment) {
	actx, cancel := context.WithCancel(f.ctx)
	a := &attempt{seg: seg, pipe: p, start: f.opts.Clock.Now(), cancel: cancel}
	f.outstanding[seg.Index] = a
	p.inflight++
	f.inflight++

	clock := f.opts.Clock
	resCh := make(chan completion, 1)
	go func() {
		data, err := f.opts.Fetch(actx, p, seg)
		resCh <- completion{a: a, data: data, err: err, rtt: clock.Since(a.start)}
	}()
	timeout := make(chan struct{})
	a.timer = clock.AfterFunc(p.rto(f.opts.MinRTO), func() { close(timeout) })
	go func() {
		select {
		case ev := <-resCh:
			a.timer()
			f.send(ev)
		case <-timeout:
			f.send(completion{a: a, timedOut: true})
			// The attempt lives on as a zombie — its segment is requeued, but
			// if the original response still arrives first it wins and the
			// replacement is canceled. The scheduler cancels zombies when the
			// segment completes, the pipeline is abandoned, or the fetch ends.
			f.send(<-resCh)
		}
	}()
}

// handle folds one attempt outcome into the transfer state.
func (f *fetcher) handle(ev completion) {
	a := ev.a
	current := f.outstanding[a.seg.Index] == a
	if current {
		delete(f.outstanding, a.seg.Index)
		a.pipe.inflight--
		f.inflight--
	}
	switch {
	case ev.timedOut:
		if !current {
			return // already reassigned by a pipeline abandonment
		}
		f.result.Retries++
		f.zombies[a.seg.Index] = append(f.zombies[a.seg.Index], a)
		// Charge the window (and the dead threshold) only once per in-flight
		// window: attempts launched before the last charged loss expired on
		// timers armed before that loss backed anything off.
		charge := a.start.After(a.pipe.lossAt)
		if charge {
			a.pipe.lossAt = f.opts.Clock.Now()
		}
		a.pipe.onLoss(f.opts.DeadThreshold, charge)
		f.requeue(a.seg.Index)
		if a.pipe.dead {
			f.abandon(a.pipe)
		}
	case ev.err != nil:
		if !current {
			return // canceled duplicate or reassigned attempt
		}
		f.result.Retries++
		a.pipe.onLoss(f.opts.DeadThreshold, true)
		f.requeue(a.seg.Index)
		if a.pipe.dead {
			f.abandon(a.pipe)
		}
	default:
		if len(ev.data) != a.seg.Length {
			// A short or overlong segment is a protocol error on this
			// pipeline, not data.
			if current {
				f.result.Retries++
				a.pipe.onLoss(f.opts.DeadThreshold, true)
				f.requeue(a.seg.Index)
				if a.pipe.dead {
					f.abandon(a.pipe)
				}
			}
			return
		}
		if f.done[a.seg.Index] {
			return // duplicate delivery; first completion won
		}
		copy(f.result.Data[a.seg.Offset-f.base:], ev.data)
		f.done[a.seg.Index] = true
		f.remaining--
		f.reapZombies(a.seg.Index)
		a.pipe.addBytes(int64(len(ev.data)))
		f.result.PerPath[a.pipe.path.Fingerprint()] += int64(len(ev.data))
		if current {
			a.pipe.onAck(ev.rtt, f.opts.MaxCwnd)
			if f.opts.Observe != nil {
				f.opts.Observe(a.pipe.path, ev.rtt)
			}
		} else if dup := f.outstanding[a.seg.Index]; dup != nil {
			// A late success beat the replacement attempt: cancel it.
			f.cancelAttempt(dup)
		}
	}
}

// requeue puts a segment at the FRONT of the pending queue so recovery work
// preempts new segments — the in-order prefix completes as early as
// possible.
func (f *fetcher) requeue(idx int) {
	f.pending = append(f.pending, 0)
	copy(f.pending[1:], f.pending)
	f.pending[0] = idx
}

// abandon reassigns every outstanding segment away from a dead pipeline and
// gives up on its zombies — a dead path's late responses are not coming.
func (f *fetcher) abandon(p *Pipeline) {
	for idx, a := range f.outstanding {
		if a.pipe != p {
			continue
		}
		f.cancelAttempt(a)
		f.requeue(idx)
		f.result.Reassigned++
	}
	for idx, zs := range f.zombies {
		kept := zs[:0]
		for _, z := range zs {
			if z.pipe == p {
				z.cancel()
			} else {
				kept = append(kept, z)
			}
		}
		if len(kept) == 0 {
			delete(f.zombies, idx)
		} else {
			f.zombies[idx] = kept
		}
	}
}

// reapZombies cancels the leftover timed-out attempts of a completed segment.
func (f *fetcher) reapZombies(idx int) {
	for _, z := range f.zombies[idx] {
		z.cancel()
	}
	delete(f.zombies, idx)
}

// cancelAttempt aborts an in-flight attempt and removes it from the
// outstanding set. Its eventual event arrives as non-current and is ignored.
func (f *fetcher) cancelAttempt(a *attempt) {
	a.cancel()
	a.timer()
	delete(f.outstanding, a.seg.Index)
	a.pipe.inflight--
	f.inflight--
}

// shutdown cancels whatever is still outstanding (duplicates at completion,
// everything on error/cancellation) and releases any attempt goroutine
// still trying to deliver its event.
func (f *fetcher) shutdown() {
	for _, a := range f.outstanding {
		a.cancel()
		a.timer()
	}
	for _, zs := range f.zombies {
		for _, z := range zs {
			z.cancel()
		}
	}
	f.outstanding = nil
	f.zombies = nil
	close(f.closed)
}
