package stripe_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/pan/stripe"
	"tango/internal/segment"
	"tango/internal/topology"
)

// testPath builds a minimal two-hop path with a distinct fingerprint per i.
func testPath(i int) *segment.Path {
	return &segment.Path{
		Src: topology.AS111,
		Dst: topology.AS211,
		Hops: []segment.Hop{
			{IA: topology.AS111, Egress: addr.IfID(100 + i)},
			{IA: topology.AS211, Ingress: addr.IfID(200 + i)},
		},
	}
}

// pattern generates the deterministic transfer content: byte k of the
// resource is (k mod 251), so any reassembly error shows up as a mismatch.
func pattern(off int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((off + int64(i)) % 251)
	}
	return b
}

func checkPattern(t *testing.T, off int64, data []byte) {
	t.Helper()
	for i, b := range data {
		if want := byte((off + int64(i)) % 251); b != want {
			t.Fatalf("data[%d] = %d, want %d", i, b, want)
		}
	}
}

// delayFetch serves the pattern after a fixed virtual delay, honoring ctx.
func delayFetch(clock netsim.Clock, delay time.Duration) stripe.FetchFunc {
	return func(ctx context.Context, p *stripe.Pipeline, seg stripe.Segment) ([]byte, error) {
		select {
		case <-clock.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return pattern(seg.Offset, seg.Length), nil
	}
}

// hangFetch never returns until ctx is canceled.
func hangFetch(ctx context.Context, p *stripe.Pipeline, seg stripe.Segment) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func simClock(t *testing.T) *netsim.SimClock {
	t.Helper()
	clock := netsim.NewSimClock(time.Unix(0, 0).UTC())
	stop := clock.AutoAdvance(200 * time.Microsecond)
	t.Cleanup(stop)
	return clock
}

func TestFetchReassembles(t *testing.T) {
	clock := simClock(t)
	fast := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	slow := stripe.NewPipeline(nil, testPath(2), 40*time.Millisecond, time.Millisecond)
	delays := map[*stripe.Pipeline]time.Duration{fast: 10 * time.Millisecond, slow: 40 * time.Millisecond}
	const off, length = int64(5000), int64(100_000)
	res, err := stripe.Fetch(context.Background(), off, length, []*stripe.Pipeline{fast, slow}, stripe.Options{
		SegmentSize: 4 << 10,
		Clock:       clock,
		Fetch: func(ctx context.Context, p *stripe.Pipeline, seg stripe.Segment) ([]byte, error) {
			return delayFetch(clock, delays[p])(ctx, p, seg)
		},
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if int64(len(res.Data)) != length {
		t.Fatalf("got %d bytes, want %d", len(res.Data), length)
	}
	checkPattern(t, off, res.Data)
	if res.Retries != 0 || res.Reassigned != 0 {
		t.Fatalf("clean transfer had Retries=%d Reassigned=%d", res.Retries, res.Reassigned)
	}
	var sum int64
	for _, n := range res.PerPath {
		sum += n
	}
	if sum != length {
		t.Fatalf("PerPath splits sum to %d, want %d", sum, length)
	}
	ff, sf := fast.Path().Fingerprint(), slow.Path().Fingerprint()
	if res.PerPath[ff] == 0 || res.PerPath[sf] == 0 {
		t.Fatalf("expected both paths used, got %v", res.PerPath)
	}
	// The 4x-faster pipeline must carry the larger share.
	if res.PerPath[ff] <= res.PerPath[sf] {
		t.Fatalf("fast path carried %d <= slow path's %d", res.PerPath[ff], res.PerPath[sf])
	}
	if fast.Status().Cwnd <= stripe.DefaultInitialCwnd {
		t.Fatalf("fast pipeline window never grew: %+v", fast.Status())
	}
}

func TestSchedulerPrefersLowPessimisticRTT(t *testing.T) {
	clock := simClock(t)
	fast := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	slow := stripe.NewPipeline(nil, testPath(2), 100*time.Millisecond, time.Millisecond)

	var mu sync.Mutex
	first := make(map[int]*stripe.Pipeline) // segment index -> first assignee
	fetch := func(ctx context.Context, p *stripe.Pipeline, seg stripe.Segment) ([]byte, error) {
		mu.Lock()
		if _, ok := first[seg.Index]; !ok {
			first[seg.Index] = p
		}
		mu.Unlock()
		return delayFetch(clock, 10*time.Millisecond)(ctx, p, seg)
	}
	// Six segments, initial window three per pipeline: the scheduler must fill
	// the low-pessimistic pipeline's window before touching the other.
	res, err := stripe.Fetch(context.Background(), 0, 6000, []*stripe.Pipeline{slow, fast}, stripe.Options{
		SegmentSize: 1000,
		Clock:       clock,
		Fetch:       fetch,
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	checkPattern(t, 0, res.Data)
	mu.Lock()
	defer mu.Unlock()
	for idx, want := range map[int]*stripe.Pipeline{0: fast, 1: fast, 2: fast, 3: slow, 4: slow, 5: slow} {
		if first[idx] != want {
			t.Errorf("segment %d first assigned to %s, want %s",
				idx, first[idx].Path().Fingerprint(), want.Path().Fingerprint())
		}
	}
}

func TestDeadPipelineReassignsOutstanding(t *testing.T) {
	clock := simClock(t)
	// The dying pipeline is seeded faster so the scheduler loads it first.
	dying := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	healthy := stripe.NewPipeline(nil, testPath(2), 20*time.Millisecond, time.Millisecond)
	fetch := func(ctx context.Context, p *stripe.Pipeline, seg stripe.Segment) ([]byte, error) {
		if p == dying {
			return hangFetch(ctx, p, seg)
		}
		return delayFetch(clock, 20*time.Millisecond)(ctx, p, seg)
	}
	const length = int64(6000)
	res, err := stripe.Fetch(context.Background(), 0, length, []*stripe.Pipeline{dying, healthy}, stripe.Options{
		SegmentSize:   1000,
		Clock:         clock,
		Fetch:         fetch,
		MinRTO:        50 * time.Millisecond,
		DeadThreshold: 1,
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	checkPattern(t, 0, res.Data)
	if !dying.Status().Dead {
		t.Fatal("hung pipeline not marked dead")
	}
	if healthy.Status().Dead {
		t.Fatal("healthy pipeline marked dead")
	}
	if res.Retries == 0 {
		t.Fatal("expected timed-out attempts to count as retries")
	}
	if res.Reassigned == 0 {
		t.Fatal("expected outstanding segments reassigned off the dead pipeline")
	}
	if got := res.PerPath[healthy.Path().Fingerprint()]; got != length {
		t.Fatalf("healthy path delivered %d bytes, want all %d", got, length)
	}
	if got := res.PerPath[dying.Path().Fingerprint()]; got != 0 {
		t.Fatalf("dead path credited %d bytes", got)
	}
}

func TestAllPipelinesDeadFails(t *testing.T) {
	clock := simClock(t)
	only := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	_, err := stripe.Fetch(context.Background(), 0, 3000, []*stripe.Pipeline{only}, stripe.Options{
		SegmentSize:   1000,
		Clock:         clock,
		Fetch:         hangFetch,
		MinRTO:        30 * time.Millisecond,
		DeadThreshold: 2,
	})
	if !errors.Is(err, stripe.ErrNoPipelines) {
		t.Fatalf("err = %v, want ErrNoPipelines", err)
	}
	if !only.Status().Dead {
		t.Fatal("pipeline should be dead after consecutive timeouts")
	}
}

func TestFetchRejectsDeadInput(t *testing.T) {
	clock := simClock(t)
	only := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	if _, err := stripe.Fetch(context.Background(), 0, 1000, []*stripe.Pipeline{only}, stripe.Options{
		SegmentSize:   500,
		Clock:         clock,
		Fetch:         hangFetch,
		MinRTO:        30 * time.Millisecond,
		DeadThreshold: 1,
	}); !errors.Is(err, stripe.ErrNoPipelines) {
		t.Fatalf("first fetch err = %v, want ErrNoPipelines", err)
	}
	// The pipeline is now dead; a subsequent Fetch must refuse it up front.
	if _, err := stripe.Fetch(context.Background(), 0, 1000, []*stripe.Pipeline{only}, stripe.Options{
		Clock: clock,
		Fetch: hangFetch,
	}); !errors.Is(err, stripe.ErrNoPipelines) {
		t.Fatalf("second fetch err = %v, want ErrNoPipelines", err)
	}
}

func TestShortSegmentIsLoss(t *testing.T) {
	clock := simClock(t)
	p1 := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	p2 := stripe.NewPipeline(nil, testPath(2), 20*time.Millisecond, time.Millisecond)
	var mu sync.Mutex
	shorted := false
	fetch := func(ctx context.Context, p *stripe.Pipeline, seg stripe.Segment) ([]byte, error) {
		select {
		case <-clock.After(10 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		mu.Lock()
		truncate := p == p1 && !shorted
		shorted = shorted || truncate
		mu.Unlock()
		data := pattern(seg.Offset, seg.Length)
		if truncate {
			return data[:seg.Length-1], nil
		}
		return data, nil
	}
	res, err := stripe.Fetch(context.Background(), 0, 4000, []*stripe.Pipeline{p1, p2}, stripe.Options{
		SegmentSize: 1000,
		Clock:       clock,
		Fetch:       fetch,
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	checkPattern(t, 0, res.Data)
	if res.Retries == 0 {
		t.Fatal("short segment should count as a retry")
	}
	if p1.Status().Losses == 0 {
		t.Fatal("short segment should charge a loss to its pipeline")
	}
}

func TestObserveReceivesSegmentRTTs(t *testing.T) {
	clock := simClock(t)
	p1 := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	p2 := stripe.NewPipeline(nil, testPath(2), 10*time.Millisecond, time.Millisecond)
	samples := make(map[string]int)
	var badRTT bool
	res, err := stripe.Fetch(context.Background(), 0, 8000, []*stripe.Pipeline{p1, p2}, stripe.Options{
		SegmentSize: 1000,
		Clock:       clock,
		Fetch:       delayFetch(clock, 10*time.Millisecond),
		Observe: func(path *segment.Path, rtt time.Duration) {
			samples[path.Fingerprint()]++
			if rtt <= 0 {
				badRTT = true
			}
		},
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	checkPattern(t, 0, res.Data)
	total := samples[p1.Path().Fingerprint()] + samples[p2.Path().Fingerprint()]
	if total != 8 {
		t.Fatalf("observed %d segment RTTs, want 8 (%v)", total, samples)
	}
	if badRTT {
		t.Fatal("observed a non-positive RTT on the virtual clock")
	}
}

func TestZeroLengthFetch(t *testing.T) {
	clock := simClock(t)
	p1 := stripe.NewPipeline(nil, testPath(1), 0, 0)
	res, err := stripe.Fetch(context.Background(), 0, 0, []*stripe.Pipeline{p1}, stripe.Options{
		Clock: clock,
		Fetch: hangFetch,
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(res.Data) != 0 || res.Retries != 0 {
		t.Fatalf("zero-length fetch returned %d bytes, %d retries", len(res.Data), res.Retries)
	}
}

func TestContextCancel(t *testing.T) {
	clock := simClock(t)
	p1 := stripe.NewPipeline(nil, testPath(1), 10*time.Millisecond, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var err error
	go func() {
		_, err = stripe.Fetch(ctx, 0, 10_000, []*stripe.Pipeline{p1}, stripe.Options{
			SegmentSize: 1000,
			Clock:       clock,
			Fetch:       hangFetch,
			MinRTO:      time.Hour, // never time out; only cancel can end this
		})
		close(done)
	}()
	cancel()
	select {
	case <-done:
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(5 * time.Second):
		t.Fatal("Fetch did not return after context cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
