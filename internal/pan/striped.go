package pan

import (
	"context"
	"errors"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/pan/stripe"
	"tango/internal/segment"
	"tango/internal/squic"
)

// Stripe defaults.
const (
	// DefaultStripeWidth is the number of link-disjoint paths a striped dial
	// targets when StripeOptions.Width is unset.
	DefaultStripeWidth = 2
	// DefaultMinStripeBytes is the transfer size below which callers should
	// prefer a normal (raced) dial over striping: small responses finish
	// within one or two windows on a single path, so extra handshakes cannot
	// pay for themselves.
	DefaultMinStripeBytes = 256 << 10
)

// StripeOptions parameterizes DialStriped.
type StripeOptions struct {
	// Width is the number of link-disjoint paths to stripe over (default 2).
	// The racer set is picked with DisjointRace, so fewer mutually disjoint
	// candidates shrink the set gracefully toward least-overlap.
	Width int
	// SegmentSize is the stripe granularity in bytes
	// (default stripe.DefaultSegmentSize).
	SegmentSize int
	// MinStripeBytes is advisory for callers (proxy, shttp): transfers
	// smaller than this should take the normal dial path. DialStriped itself
	// does not enforce it — the caller knows the response size, the dialer
	// does not. Default DefaultMinStripeBytes.
	MinStripeBytes int64
}

// WithDefaults resolves unset fields.
func (o StripeOptions) WithDefaults() StripeOptions {
	if o.Width <= 0 {
		o.Width = DefaultStripeWidth
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = stripe.DefaultSegmentSize
	}
	if o.MinStripeBytes <= 0 {
		o.MinStripeBytes = DefaultMinStripeBytes
	}
	return o
}

// Striped is a pooled set of connections to one destination over
// link-disjoint paths, plus the per-path stripe pipelines that persist
// congestion and RTT state across fetches. Obtain with Dialer.DialStriped;
// do not close the connections — the owning Dialer's pool does.
type Striped struct {
	dialer     *Dialer
	remote     addr.UDPAddr
	serverName string
	epoch      uint64
	opts       StripeOptions
	sel        Selection // the leader pipeline's selection, for annotations

	// mu serializes fetches: pipeline scheduler state is single-threaded by
	// design, and lock order is st.mu → d.mu (the Observe tap takes the
	// dialer lock), so the dialer must never touch st.mu under its own lock.
	mu sync.Mutex //lint:lockorder stripedfetch before pandialer,stripestatus
	// pipes is set once in DialStriped and never mutated afterwards, so
	// snapshot readers (Status, alive) need no lock — crucially, they must
	// NOT take mu, which a running Fetch holds for the whole transfer.
	pipes []*stripe.Pipeline
}

// Remote returns the striped destination.
func (s *Striped) Remote() addr.UDPAddr { return s.remote }

// Selection returns the leader path's selection (annotation source).
func (s *Striped) Selection() Selection { return s.sel }

// Options returns the resolved stripe options the set was dialed with.
func (s *Striped) Options() StripeOptions { return s.opts }

// Width returns the number of pipelines in the set.
func (s *Striped) Width() int { return len(s.pipes) }

// Status snapshots every pipeline for liveness printouts. Safe to call
// mid-fetch: pipes is immutable and Pipeline.Status locks internally.
func (s *Striped) Status() []stripe.PipelineStatus {
	out := make([]stripe.PipelineStatus, len(s.pipes))
	for i, p := range s.pipes {
		out[i] = p.Status()
	}
	return out
}

// alive reports whether every pipeline still has a live connection and none
// has been abandoned — the pool-reuse criterion: a degraded set is re-dialed
// whole, restoring full width, rather than limping on the survivors.
func (s *Striped) alive() bool {
	if len(s.pipes) == 0 {
		return false
	}
	for _, p := range s.pipes {
		if p.Status().Dead {
			return false
		}
		if c := p.Conn(); c == nil || c.Err() != nil {
			return false
		}
	}
	return true
}

// closeConns closes every pipeline connection (pool eviction).
func (s *Striped) closeConns() {
	for _, p := range s.pipes {
		if c := p.Conn(); c != nil {
			c.Close()
		}
	}
}

// Fetch retrieves [off, off+length) striped across the set's pipelines using
// fetch to pull each segment over its assigned pipeline's connection. Every
// accepted segment RTT is streamed into the dialer's monitor (when attached)
// via Observe, so striped transfers double as passive telemetry and suppress
// the destination's scheduled probes. Fetches on one Striped are serialized;
// pipeline congestion state warm-starts each subsequent fetch.
func (s *Striped) Fetch(ctx context.Context, off, length int64, fetch stripe.FetchFunc) (*stripe.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stripe.Fetch(ctx, off, length, s.pipes, stripe.Options{
		SegmentSize: s.opts.SegmentSize,
		Clock:       s.dialer.host.clock,
		Fetch:       fetch,
		Observe:     s.dialer.observeStripe,
	})
}

// observeStripe routes one striped-segment RTT sample into the currently
// attached monitor. Unlike observePassive it is not gated on the Passive
// flag: striping explicitly owns its telemetry contract (the ISSUE-level
// behavior "every ack RTT feeds the shared monitor"), while Passive governs
// only the pooled single connections' ambient samples.
func (d *Dialer) observeStripe(path *segment.Path, rtt time.Duration) {
	d.mu.Lock()
	m := d.opts.Monitor
	d.mu.Unlock()
	if m == nil {
		return
	}
	m.Observe(path, rtt)
}

// StripedStatus snapshots every pooled striped set's pipelines, keyed by the
// destination's "remote|serverName" pool key — the dialer-level liveness
// feed for CLI printouts. Pipeline snapshots are taken outside d.mu (lock
// order: st.mu is never acquired under d.mu).
func (d *Dialer) StripedStatus() map[string][]stripe.PipelineStatus {
	d.mu.Lock()
	sets := make(map[string]*Striped, len(d.stripes))
	for k, st := range d.stripes {
		sets[k] = st
	}
	d.mu.Unlock()
	if len(sets) == 0 {
		return nil
	}
	out := make(map[string][]stripe.PipelineStatus, len(sets))
	for k, st := range sets {
		out[k] = st.Status()
	}
	return out
}

// stripeTrackKey namespaces the stripe pool's monitor-tracking mirror entry
// away from the single-connection pool's entry for the same destination, so
// each holds its own refcounted Track.
func stripeTrackKey(key string) string { return key + "|stripe" }

// DialStriped returns a pooled striped connection set to remote: up to
// opts.Width connections dialed concurrently over link-disjoint paths
// (DisjointRace over the selector's ranking), each wrapped in a stripe
// pipeline seeded from monitor telemetry when available (handshake latency
// otherwise). Unlike a racing Dial, every successful handshake is KEPT — the
// point is concurrent use, not picking one winner. At least one success is
// required; failed racers report Failure into the selector, and a fully
// failed dial returns the last error.
//
// The set is pooled per destination and reused while every member connection
// is live; a set with any dead or abandoned pipeline is evicted and re-dialed
// whole, restoring full stripe width. SetSelector/SetMode/Invalidate evict
// striped sets exactly like single connections.
func (d *Dialer) DialStriped(ctx context.Context, remote addr.UDPAddr, serverName string, opts StripeOptions) (*Striped, error) {
	opts = opts.WithDefaults()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrDialerClosed
	}
	if serverName == "" {
		serverName = d.opts.ServerName
	}
	key := d.key(remote, serverName)
	epoch := d.epoch
	sel, mode, timeout := d.opts.Selector, d.opts.Mode, d.opts.Timeout
	monitor, passive := d.opts.Monitor, d.opts.Passive
	pooled := d.stripes[key]
	d.mu.Unlock()

	if pooled != nil {
		// Liveness is checked outside d.mu: alive() takes st.mu, which the
		// Observe tap orders BEFORE d.mu.
		if pooled.epoch == epoch && pooled.alive() {
			return pooled, nil
		}
		d.mu.Lock()
		if d.stripes[key] == pooled {
			delete(d.stripes, key)
			d.untrackKeyLocked(stripeTrackKey(key))
		}
		d.mu.Unlock()
		pooled.closeConns()
	}

	cands, _, err := d.host.candidates(remote.IA, sel, mode)
	if err != nil {
		return nil, err
	}
	racers := DisjointRace(cands, opts.Width)

	type dialResult struct {
		cand    Candidate
		conn    *squic.Conn
		latency time.Duration
		err     error
	}
	clock := d.host.clock
	results := make(chan dialResult, len(racers))
	for _, cand := range racers {
		go func(cand Candidate) {
			start := clock.Now()
			conn, err := d.dialPath(ctx, remote, cand, serverName, timeout)
			results <- dialResult{cand: cand, conn: conn, latency: clock.Since(start), err: err}
		}(cand)
	}
	var wins []dialResult
	var failed []*segment.Path
	var lastErr error
	for range racers {
		r := <-results
		switch {
		case r.err == nil:
			wins = append(wins, r)
		case abandoned(ctx, r.err):
			// Caller gave up; says nothing about the path.
		default:
			failed = append(failed, r.cand.Path)
			lastErr = r.err
		}
	}
	if ctx.Err() != nil {
		for _, w := range wins {
			w.conn.Close()
		}
		return nil, ctx.Err()
	}
	for _, p := range failed {
		sel.Report(p, Failure)
	}
	if len(wins) == 0 {
		if lastErr == nil {
			lastErr = errors.New("pan: no striped candidates")
		}
		return nil, lastErr
	}

	// Seed each pipeline's estimator: fresh monitor telemetry when the path
	// has samples, the just-measured handshake latency otherwise — either way
	// the first scheduling pass ranks on real data, not zeros.
	var stats []PathStat
	if monitor != nil {
		paths := make([]*segment.Path, len(wins))
		for i, w := range wins {
			paths[i] = w.cand.Path
		}
		stats = monitor.PathStats(paths)
	}
	st := &Striped{
		dialer:     d,
		remote:     remote,
		serverName: serverName,
		epoch:      epoch,
		opts:       opts,
		pipes:      make([]*stripe.Pipeline, len(wins)),
	}
	for i, w := range wins {
		seedRTT, seedDev := w.latency, w.latency/2
		if stats != nil && stats[i].Known && stats[i].Telemetry.Samples > 0 {
			seedRTT, seedDev = stats[i].Telemetry.RTT, stats[i].Telemetry.Dev
		}
		// Pin each connection to its disjoint path: without this the conn
		// would follow the server's reply-path choices (mirror-following) and
		// the stripe's deliberately-spread load could collapse onto one path.
		w.conn.PinPath(w.cand.Path)
		st.pipes[i] = stripe.NewPipeline(w.conn, w.cand.Path, seedRTT, seedDev)
	}
	st.sel = Selection{Path: wins[0].cand.Path, Compliant: wins[0].cand.Compliant}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		st.closeConns()
		return nil, ErrDialerClosed
	}
	if d.epoch != epoch {
		// Selected under a superseded policy: never pool, re-dial fresh.
		d.mu.Unlock()
		st.closeConns()
		return d.DialStriped(ctx, remote, serverName, opts)
	}
	if prev := d.stripes[key]; prev != nil && prev != st {
		// A concurrent striped dial also completed; last pooled wins so the
		// loser's connections don't leak.
		defer prev.closeConns()
	}
	d.stripes[key] = st
	d.last[key] = st.sel
	if monitor != nil {
		tk := stripeTrackKey(key)
		if _, ok := d.tracked[tk]; !ok {
			d.tracked[tk] = trackRef{remote: remote, serverName: serverName}
			monitor.Track(remote, serverName)
		}
	}
	d.mu.Unlock()

	if monitor != nil && passive {
		for _, w := range wins {
			path := w.cand.Path
			w.conn.OnRTTSampleBatch(func(rtts []time.Duration) { d.observePassiveBatch(path, rtts) })
		}
	}
	// Every kept connection is in service: report each path's handshake as a
	// live latency sample.
	for _, w := range wins {
		sel.Report(w.cand.Path, Outcome{Latency: w.latency})
	}
	return st, nil
}
