package pan

import (
	"sync"
	"time"

	"tango/internal/netsim"
)

// wheelSlots is the ring size of a probeWheel. With the default slot width
// (MinInterval/16) the ring spans 32 base intervals — far past the longest
// jittered deadline (1.15·MaxInterval) — so a deadline almost never needs a
// second revolution; deadlines beyond the horizon are handled anyway by the
// absolute-slot check at tick time (the "hierarchy" degenerates to one tier
// plus revolutions, cf. ndn-dpdk's mintmr min-scheduler).
const wheelSlots = 512

// wheelNode is one pending probe deadline: the entry it belongs to is found
// via (shard, fp) at fire time, never via a captured pointer, so a node that
// outlives its entry (pruned while the slot was pending, Stop→Start cycles)
// can only ever no-op. Nodes are allocated fresh per schedule — the node's
// identity is compared against the entry's current sched field, exactly the
// stale-timer guard the per-entry AfterFunc closures used to provide.
type wheelNode struct {
	shard *monShard
	fp    string
	abs   int64 // absolute slot number of the deadline
	at    time.Time
	slot  int // ring index while attached, -1 when detached
	prev  *wheelNode
	next  *wheelNode
}

// probeWheel replaces the per-entry clock.AfterFunc timers with one shared
// timing wheel: scheduling, rescheduling, and cancelling a probe deadline
// are O(1) list operations on a coarse slot ring, and the whole monitor
// keeps at most ONE clock timer armed — the boundary of the next occupied
// slot — instead of one per tracked path. At 100k+ tracked paths that is
// the difference between a heap of 100k timers churning on every
// reschedule and a pointer splice.
//
// The wheel tick runs inside a clock timer callback and must not block: it
// detaches the due nodes under the wheel lock, releases it, and only then
// invokes the fire callback per node (which takes shard locks and hands
// probes to goroutines). Lock order is therefore shard → wheel — schedule
// and cancel are called with a shard lock held — and the wheel never calls
// back into a shard while holding its own lock.
type probeWheel struct {
	clock netsim.Clock
	slotW time.Duration
	epoch time.Time
	fire  func(*wheelNode)
	// onTick, when set, runs once per tick after the due nodes have fired,
	// outside the wheel lock — the monitor hangs its ingest-ring sweep
	// here so buffered samples land even when no producer drains inline.
	// Set once before the wheel's first arm, never mutated after.
	onTick func()

	mu      sync.Mutex             //lint:lockorder panwheel
	slots   [wheelSlots]*wheelNode // per-slot doubly-linked list heads
	count   int
	cursor  int64 // absolute slot number processed up to (exclusive)
	armed   func() bool
	armedAt time.Time
	armGen  uint64 // arms are generation-stamped so a stale tick no-ops
}

func newProbeWheel(clock netsim.Clock, slotW time.Duration, fire func(*wheelNode)) *probeWheel {
	if slotW <= 0 {
		slotW = time.Millisecond
	}
	return &probeWheel{
		clock: clock,
		slotW: slotW,
		epoch: clock.Now(),
		fire:  fire,
	}
}

// schedule arms n to fire no earlier than d from now, rounded UP to the next
// slot boundary (a deadline is a floor, never a ceiling: quantization must
// not fire a probe early and burn budget ahead of its interval).
func (w *probeWheel) schedule(n *wheelNode, d time.Duration) {
	now := w.clock.Now()
	at := now.Add(d)
	w.mu.Lock()
	abs := int64(at.Sub(w.epoch) / w.slotW)
	if abs < w.cursor {
		abs = w.cursor // already-elapsed slot: fire on the next tick
	}
	n.at = at
	n.abs = abs
	idx := int(abs % wheelSlots)
	n.slot = idx
	n.prev = nil
	n.next = w.slots[idx]
	if n.next != nil {
		n.next.prev = n
	}
	w.slots[idx] = n
	w.count++
	w.armLocked(now)
	w.mu.Unlock()
}

// cancel detaches n, reporting whether it was still pending (false: it
// already fired or was never scheduled). O(1) — the node knows its slot.
func (w *probeWheel) cancel(n *wheelNode) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n.slot < 0 {
		return false
	}
	w.detachLocked(n)
	return true
}

func (w *probeWheel) detachLocked(n *wheelNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		w.slots[n.slot] = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.prev, n.next = nil, nil
	n.slot = -1
	w.count--
}

// disarm cancels the pending tick timer, if any — Stop's teardown, after the
// entries' nodes have been cancelled. A tick already in flight sees a bumped
// generation and returns without touching the ring.
func (w *probeWheel) disarm() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.armed != nil {
		w.armed()
		w.armed = nil
		w.armedAt = time.Time{}
	}
	w.armGen++
}

// armLocked (re)arms the clock timer for the boundary of the next occupied
// slot. The O(wheelSlots) scan runs once per tick/schedule where it can
// move the armed deadline earlier — not per sample — and keeps exactly one
// timer outstanding.
func (w *probeWheel) armLocked(now time.Time) {
	if w.count == 0 {
		return // nothing pending; a stale armed tick will no-op on the ring
	}
	target := int64(-1)
	for i := int64(0); i < wheelSlots; i++ {
		s := w.cursor + i
		if w.slots[int(s%wheelSlots)] != nil {
			target = s
			break
		}
	}
	if target < 0 {
		return // only future-revolution nodes; the existing arm covers them
	}
	// Fire when the target slot has fully elapsed, so every deadline inside
	// it is due.
	fireAt := w.epoch.Add(time.Duration(target+1) * w.slotW)
	if !fireAt.After(now) {
		fireAt = now.Add(w.slotW) // cursor lagging a quiet period; catch up
	}
	if w.armed != nil && !w.armedAt.IsZero() && !w.armedAt.After(fireAt) {
		return // the pending tick already fires early enough
	}
	if w.armed != nil {
		w.armed()
	}
	w.armGen++
	gen := w.armGen
	w.armedAt = fireAt
	w.armed = w.clock.AfterFunc(fireAt.Sub(now), func() { w.tick(gen) })
}

// tick processes every slot that has fully elapsed, firing the nodes whose
// absolute slot is due and leaving future-revolution nodes in place, then
// re-arms for the next occupied slot. Fire callbacks run after the wheel
// lock is released.
func (w *probeWheel) tick(gen uint64) {
	now := w.clock.Now()
	var due []*wheelNode
	w.mu.Lock()
	if gen != w.armGen {
		w.mu.Unlock()
		return // superseded by a later arm or a disarm
	}
	w.armed, w.armedAt = nil, time.Time{}
	target := int64(now.Sub(w.epoch) / w.slotW)
	if target-w.cursor > wheelSlots {
		// A long quiet gap: one pass over the ring visits every slot, and
		// every node this far back is due (n.abs <= cursor at scan time), so
		// the catch-up never iterates more than wheelSlots slots.
		w.cursor = target - wheelSlots
	}
	for w.cursor < target {
		for n := w.slots[int(w.cursor%wheelSlots)]; n != nil; {
			next := n.next
			if n.abs <= w.cursor {
				w.detachLocked(n)
				due = append(due, n)
			}
			n = next
		}
		w.cursor++
	}
	w.armLocked(now)
	w.mu.Unlock()
	for _, n := range due {
		w.fire(n)
	}
	if w.onTick != nil {
		w.onTick()
	}
}
