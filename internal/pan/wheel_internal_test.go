package pan

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/netsim"
	"tango/internal/segment"
)

// TestProbeWheelFireTiming (whitebox): deadlines are rounded UP to a slot
// boundary — a node never fires before its requested time, and never later
// than one slot width past it.
func TestProbeWheelFireTiming(t *testing.T) {
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	var mu sync.Mutex
	fired := make(map[string]time.Time)
	w := newProbeWheel(clock, 10*time.Millisecond, func(n *wheelNode) {
		mu.Lock()
		fired[n.fp] = clock.Now()
		mu.Unlock()
	})
	want := map[string]time.Duration{
		"a": 5 * time.Millisecond,   // sub-slot
		"b": 10 * time.Millisecond,  // exactly one slot
		"c": 123 * time.Millisecond, // mid-slot
		"d": 10 * time.Second,       // beyond one ring revolution (512 slots)
	}
	for fp, d := range want {
		w.schedule(&wheelNode{fp: fp}, d)
	}
	start := clock.Now()
	for i := 0; i < 4*wheelSlots && len(fired) < len(want); i++ {
		clock.AdvanceToNext()
	}
	for fp, d := range want {
		at, ok := fired[fp]
		if !ok {
			t.Fatalf("node %q (deadline %v) never fired", fp, d)
		}
		if got := at.Sub(start); got < d || got > d+10*time.Millisecond {
			t.Errorf("node %q fired at +%v, want within [%v, %v]", fp, got, d, d+10*time.Millisecond)
		}
	}
}

// TestProbeWheelCancelAndIdentity (whitebox): cancel is O(1) and final —
// a cancelled node never fires — and a node fires at most once.
func TestProbeWheelCancelAndIdentity(t *testing.T) {
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	var mu sync.Mutex
	count := map[string]int{}
	w := newProbeWheel(clock, 10*time.Millisecond, func(n *wheelNode) {
		mu.Lock()
		count[n.fp]++
		mu.Unlock()
	})
	keep := &wheelNode{fp: "keep"}
	drop := &wheelNode{fp: "drop"}
	w.schedule(keep, 30*time.Millisecond)
	w.schedule(drop, 30*time.Millisecond)
	if !w.cancel(drop) {
		t.Fatal("cancel of a pending node reported not-pending")
	}
	if w.cancel(drop) {
		t.Fatal("second cancel reported the node still pending")
	}
	for i := 0; i < 16; i++ {
		clock.AdvanceToNext()
	}
	if count["drop"] != 0 {
		t.Error("cancelled node fired")
	}
	if count["keep"] != 1 {
		t.Errorf("kept node fired %d times, want 1", count["keep"])
	}
	if w.cancel(keep) {
		t.Error("cancel of an already-fired node reported it pending")
	}
}

// wheelTestMonitor is a one-shard monitor over a single fake path with a
// counting probe, for whitebox schedule-teardown tests.
func wheelTestMonitor(t *testing.T) (*Monitor, *netsim.SimClock, *segment.Path, func() int) {
	t.Helper()
	src := addr.IA{ISD: 1, AS: 0x111}
	dst := addr.IA{ISD: 2, AS: 0x211}
	path := &segment.Path{
		Src: src, Dst: dst,
		Hops: []segment.Hop{{IA: src, Egress: 1}, {IA: dst, Ingress: 2}},
		Meta: segment.Metadata{Latency: 10 * time.Millisecond},
	}
	clock := netsim.NewSimClock(time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC))
	var mu sync.Mutex
	probes := 0
	m := NewMonitor(clock, func(addr.IA) []*segment.Path { return []*segment.Path{path} }, MonitorOptions{
		BaseInterval: time.Second,
		Shards:       1,
		Probe: func(addr.UDPAddr, string, *segment.Path, time.Duration) (time.Duration, error) {
			mu.Lock()
			probes++
			mu.Unlock()
			return 20 * time.Millisecond, nil
		},
	})
	m.Track(addr.UDPAddr{Addr: addr.Addr{IA: dst, Host: netip.MustParseAddr("10.0.0.2")}, Port: 443}, "wheel.server")
	return m, clock, path, func() int { mu.Lock(); defer mu.Unlock(); return probes }
}

// drainSim advances virtual time in steps, yielding real time between them
// so probe goroutines launched by wheel ticks get to run.
func drainSim(clock *netsim.SimClock, d, step time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		clock.Advance(step)
		//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
		time.Sleep(time.Millisecond)
	}
}

// TestMonitorPruneWhileSlotPending (whitebox): the PR-4 class of
// stranded-schedule bugs, wheel edition. An entry that vanishes while its
// wheel slot is still pending must (a) not fire a probe, not panic, and
// leave the in-flight mark clean when the stale node comes due, and (b)
// never steal or double-fire the schedule of a same-fingerprint entry
// re-created in the meantime — the node-identity check against e.sched is
// what the per-entry timer closures used to guarantee.
func TestMonitorPruneWhileSlotPending(t *testing.T) {
	m, clock, path, probes := wheelTestMonitor(t)
	fp := path.Fingerprint()
	m.Start()
	defer m.Stop()

	sh := m.shards[0]
	sh.mu.Lock()
	e := sh.entries[fp]
	if e == nil || e.sched == nil {
		sh.mu.Unlock()
		t.Fatal("tracked entry not scheduled after Start")
	}
	stale := e.sched
	// Model any teardown path that drops the entry while its slot is
	// pending (the hazard class — NOT the regular retire, which cancels).
	delete(sh.entries, fp)
	sh.mu.Unlock()

	// Re-create the entry before the stale node's deadline: a fresh Track
	// resyncs the path set and arms a fresh node for the same fingerprint.
	m.Track(addr.UDPAddr{Addr: addr.Addr{IA: path.Dst, Host: netip.MustParseAddr("10.0.0.3")}, Port: 443}, "wheel.server")
	sh.mu.Lock()
	e2 := sh.entries[fp]
	if e2 == nil || e2.sched == nil {
		sh.mu.Unlock()
		t.Fatal("re-created entry not scheduled")
	}
	if e2.sched == stale {
		sh.mu.Unlock()
		t.Fatal("re-created entry reuses the stale node")
	}
	sh.mu.Unlock()

	// Run past both deadlines: the stale node must no-op (its identity
	// no longer matches), the fresh node must probe — exactly once per
	// interval, not twice.
	drainSim(clock, 1200*time.Millisecond, 50*time.Millisecond)
	if got := probes(); got != 1 {
		t.Fatalf("probes after one interval = %d, want exactly 1 (stale node must not fire)", got)
	}
	sh.mu.Lock()
	inflight := sh.inflight[fp]
	rearmed := sh.entries[fp].sched != nil
	sh.mu.Unlock()
	if inflight {
		t.Fatal("in-flight mark leaked after probe drained")
	}
	if !rearmed {
		t.Fatal("entry fell off the schedule after its probe")
	}
}

// TestMonitorStopDisarmsWheel (whitebox): Stop cancels every pending node
// AND the wheel's armed clock timer; Start re-arms from scratch. A
// Stop→Start cycle with nothing in flight must leave exactly the tracked
// entries scheduled — no strays, no double arms.
func TestMonitorStopDisarmsWheel(t *testing.T) {
	m, clock, path, probes := wheelTestMonitor(t)
	fp := path.Fingerprint()
	m.Start()
	m.Stop()

	m.wheel.mu.Lock()
	pending, armed := m.wheel.count, m.wheel.armed != nil
	m.wheel.mu.Unlock()
	if pending != 0 || armed {
		t.Fatalf("after Stop: %d pending nodes, armed=%v, want 0/false", pending, armed)
	}
	drainSim(clock, 3*time.Second, 250*time.Millisecond)
	if got := probes(); got != 0 {
		t.Fatalf("probes while stopped = %d", got)
	}

	m.Start()
	defer m.Stop()
	sh := m.shards[0]
	sh.mu.Lock()
	scheduled := sh.entries[fp].sched != nil
	sh.mu.Unlock()
	if !scheduled {
		t.Fatal("restart did not reschedule the tracked entry")
	}
	drainSim(clock, 1200*time.Millisecond, 50*time.Millisecond)
	if got := probes(); got < 1 {
		t.Fatal("no probe after restart")
	}
}
