package pathdb

import (
	"sort"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

// Combiner assembles end-to-end paths from registered segments, implementing
// SCION path combination: up+core+down joins, same-core joins, common-AS
// shortcuts, and peering shortcuts. The combination of different path
// segments is what yields "on the order of dozens to even over a hundred
// potential paths" (paper §2).
type Combiner struct {
	reg *Registry
}

// NewCombiner returns a combiner reading from reg.
func NewCombiner(reg *Registry) *Combiner { return &Combiner{reg: reg} }

// Paths returns all loop-free end-to-end paths from src to dst valid at the
// given instant, deduplicated and sorted by (latency, hop count,
// fingerprint) for determinism.
func (c *Combiner) Paths(src, dst addr.IA, at time.Time) []*segment.Path {
	if src == dst {
		return []*segment.Path{{Src: src, Dst: dst, Meta: segment.Metadata{ASes: []addr.IA{src}}}}
	}

	ups := c.reg.UpSegments(src, at)
	downs := c.reg.DownSegments(dst, at)
	// A nil segment in these lists means "endpoint is already a core AS".
	upChoices := make([]*segment.Segment, 0, len(ups)+1)
	if len(ups) == 0 {
		upChoices = append(upChoices, nil)
	} else {
		upChoices = append(upChoices, ups...)
	}
	downChoices := make([]*segment.Segment, 0, len(downs)+1)
	if len(downs) == 0 {
		downChoices = append(downChoices, nil)
	} else {
		downChoices = append(downChoices, downs...)
	}

	var candidates [][]protoHop
	for _, up := range upChoices {
		if up == nil && len(ups) == 0 && !c.isCoreEndpoint(src, at) {
			// src is non-core with no up segments: unreachable.
			return nil
		}
		for _, down := range downChoices {
			if down == nil && len(downs) == 0 && !c.isCoreEndpoint(dst, at) {
				return nil
			}
			candidates = append(candidates, c.combine(src, dst, up, down, at)...)
		}
	}

	seen := make(map[string]bool)
	var out []*segment.Path
	for _, hops := range candidates {
		p := assemble(hops, at)
		if p == nil || p.Src != src || p.Dst != dst {
			continue
		}
		fp := p.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Meta.Latency != out[j].Meta.Latency {
			return out[i].Meta.Latency < out[j].Meta.Latency
		}
		if len(out[i].Hops) != len(out[j].Hops) {
			return len(out[i].Hops) < len(out[j].Hops)
		}
		return out[i].Fingerprint() < out[j].Fingerprint()
	})
	return out
}

// isCoreEndpoint guesses whether ia is core by looking for core segments
// touching it. Core ASes originate or terminate core segments.
func (c *Combiner) isCoreEndpoint(ia addr.IA, at time.Time) bool {
	c.reg.mu.RLock()
	defer c.reg.mu.RUnlock()
	if len(c.reg.core[ia]) > 0 {
		return true
	}
	for _, m := range c.reg.core {
		for _, seg := range m {
			if seg.LastIA() == ia {
				return true
			}
		}
	}
	return false
}

// combine yields all hop sequences for one (up, down) segment pair,
// including core-joined, same-core, shortcut, and peering variants.
func (c *Combiner) combine(src, dst addr.IA, up, down *segment.Segment, at time.Time) [][]protoHop {
	var out [][]protoHop

	srcCore := src
	if up != nil {
		srcCore = up.FirstIA()
	}
	dstCore := dst
	if down != nil {
		dstCore = down.FirstIA()
	}

	var upLeg, downLeg []protoHop
	if up != nil {
		upLeg = legAgainstUntil(up, 0)
	}
	if down != nil {
		downLeg = legWith(down, 0)
	}

	if srcCore == dstCore {
		if hops, ok := stitch(upLeg, downLeg); ok {
			out = append(out, hops)
		}
	} else {
		for _, cs := range c.reg.CoreSegments(srcCore, dstCore, at) {
			var coreLeg []protoHop
			if cs.AgainstConstruction {
				coreLeg = legAgainstUntil(cs.Seg, 0)
			} else {
				coreLeg = legWith(cs.Seg, 0)
			}
			if hops, ok := stitch(upLeg, coreLeg, downLeg); ok {
				out = append(out, hops)
			}
		}
	}

	if up != nil && down != nil {
		out = append(out, shortcuts(up, down)...)
		out = append(out, peerings(up, down)...)
	}
	return out
}

// shortcuts finds common non-core ASes of the two segments and cuts the path
// there.
func shortcuts(up, down *segment.Segment) [][]protoHop {
	var out [][]protoHop
	for i := 1; i < len(up.Entries); i++ {
		for j := 1; j < len(down.Entries); j++ {
			if up.Entries[i].Local != down.Entries[j].Local {
				continue
			}
			upLeg := legAgainstUntil(up, i)
			downLeg := legWith(down, j)
			if hops, ok := stitch(upLeg, downLeg); ok {
				out = append(out, hops)
			}
		}
	}
	return out
}

// peerings finds peering links advertised on both segments and joins through
// them.
func peerings(up, down *segment.Segment) [][]protoHop {
	var out [][]protoHop
	for i := 1; i < len(up.Entries); i++ {
		u := &up.Entries[i]
		for j := 1; j < len(down.Entries); j++ {
			d := &down.Entries[j]
			for _, p := range u.Peers {
				if p.Peer != d.Local {
					continue
				}
				for _, q := range d.Peers {
					if q.Peer != u.Local {
						continue
					}
					// The two advertisements must describe the same physical
					// link: each side's local interface is the other side's
					// remote interface.
					if q.PeerInterface != p.HopField.ConsIngress || p.PeerInterface != q.HopField.ConsIngress {
						continue
					}
					hops := peeringHops(up, i, p, down, j, q)
					if hops != nil {
						out = append(out, hops)
					}
				}
			}
		}
	}
	return out
}

// peeringHops builds src..u_i -(peer link)- d_j..dst.
func peeringHops(up *segment.Segment, i int, p segment.PeerEntry, down *segment.Segment, j int, q segment.PeerEntry) []protoHop {
	// Travel up from the leaf to u_i, but exit u_i through the peering
	// interface, authorized by the peer hop field.
	upLeg := legAgainstUntil(up, i)
	if len(upLeg) == 0 {
		return nil
	}
	joint := &upLeg[len(upLeg)-1]
	joint.out = p.HopField.ConsIngress
	joint.auth = []segment.AuthField{{HopField: p.HopField, SegInfo: up.Info}}

	// Enter d_j through its peering interface and continue down.
	downLeg := legWith(down, j)
	if len(downLeg) == 0 {
		return nil
	}
	downLeg[0].in = q.HopField.ConsIngress
	downLeg[0].auth = []segment.AuthField{{HopField: q.HopField, SegInfo: down.Info}}
	// The link preceding d_j in travel direction is the peering link.
	downLeg[0].linkLat = p.Latency
	downLeg[0].linkMTU = p.MTU
	downLeg[0].linkBW = 0

	return append(upLeg, downLeg...)
}

// protoHop is a hop under construction, in travel order. linkLat/BW/MTU
// describe the inter-AS link *entered* to reach this hop (zero values at the
// first hop).
type protoHop struct {
	ia      addr.IA
	in, out addr.IfID
	auth    []segment.AuthField

	linkLat time.Duration
	linkBW  int64
	linkMTU int
	static  segment.StaticInfo
}

// legWith converts entries[start:] traveled WITH construction direction
// (down segments, forward core segments).
func legWith(seg *segment.Segment, start int) []protoHop {
	out := make([]protoHop, 0, len(seg.Entries)-start)
	for k := start; k < len(seg.Entries); k++ {
		e := &seg.Entries[k]
		h := protoHop{
			ia:     e.Local,
			in:     e.HopField.ConsIngress,
			out:    e.HopField.ConsEgress,
			auth:   []segment.AuthField{{HopField: e.HopField, SegInfo: seg.Info}},
			static: e.Static,
		}
		if k > start {
			h.linkLat = e.Static.IngressLatency
			h.linkBW = e.Static.IngressBandwidth
			h.linkMTU = e.Static.IngressMTU
		}
		out = append(out, h)
	}
	if start == 0 && len(out) > 0 {
		out[0].in = 0
	}
	return out
}

// legAgainstUntil converts a segment traveled AGAINST construction direction
// (up segments, reversed core segments): leaf first, travelling up to (and
// including) entry
// index stop.
func legAgainstUntil(seg *segment.Segment, stop int) []protoHop {
	n := len(seg.Entries)
	out := make([]protoHop, 0, n-stop)
	for k := n - 1; k >= stop; k-- {
		e := &seg.Entries[k]
		h := protoHop{
			ia:     e.Local,
			in:     e.HopField.ConsEgress,
			out:    e.HopField.ConsIngress,
			auth:   []segment.AuthField{{HopField: e.HopField, SegInfo: seg.Info}},
			static: e.Static,
		}
		// In travel direction, the link entered to reach entry k is the
		// construction-ingress link of entry k+1.
		if k < n-1 {
			next := &seg.Entries[k+1]
			h.linkLat = next.Static.IngressLatency
			h.linkBW = next.Static.IngressBandwidth
			h.linkMTU = next.Static.IngressMTU
		}
		out = append(out, h)
	}
	return out
}

// stitch joins legs whose boundary ASes coincide, merging the joint hop
// (ingress from the earlier leg, egress from the later, authorizations
// unioned).
func stitch(legs ...[]protoHop) ([]protoHop, bool) {
	var out []protoHop
	for _, leg := range legs {
		if len(leg) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, leg...)
			continue
		}
		last := out[len(out)-1]
		first := leg[0]
		if last.ia != first.ia {
			return nil, false
		}
		merged := last
		merged.out = first.out
		merged.auth = append(append([]segment.AuthField(nil), last.auth...), first.auth...)
		out[len(out)-1] = merged
		out = append(out, leg[1:]...)
	}
	return out, len(out) > 0
}

// assemble turns proto hops into a Path with aggregated metadata, rejecting
// AS loops and over-long auth sets.
func assemble(hops []protoHop, at time.Time) *segment.Path {
	if len(hops) == 0 {
		return nil
	}
	seen := make(map[addr.IA]bool, len(hops))
	countries := make(map[string]bool)
	meta := segment.Metadata{}
	var expiry time.Time
	p := &segment.Path{Src: hops[0].ia, Dst: hops[len(hops)-1].ia}
	for idx, h := range hops {
		if seen[h.ia] || len(h.auth) > 2 || len(h.auth) == 0 {
			return nil
		}
		seen[h.ia] = true
		hop := segment.Hop{IA: h.ia, Ingress: h.in, Egress: h.out, NumAuth: len(h.auth)}
		copy(hop.Auth[:], h.auth)
		p.Hops = append(p.Hops, hop)

		meta.ASes = append(meta.ASes, h.ia)
		meta.CarbonPerGB += h.static.CarbonIntensity
		if c := h.static.Geo.Country; c != "" {
			countries[c] = true
		}
		if idx > 0 {
			meta.Latency += h.linkLat
			if h.linkBW > 0 && (meta.Bandwidth == 0 || h.linkBW < meta.Bandwidth) {
				meta.Bandwidth = h.linkBW
			}
			if h.linkMTU > 0 && (meta.MTU == 0 || h.linkMTU < meta.MTU) {
				meta.MTU = h.linkMTU
			}
		}
		if m := h.static.InternalMTU; m > 0 && (meta.MTU == 0 || m < meta.MTU) {
			meta.MTU = m
		}
		for _, a := range h.auth {
			if expiry.IsZero() || a.HopField.ExpTime.Before(expiry) {
				expiry = a.HopField.ExpTime
			}
		}
	}
	if !expiry.After(at) {
		return nil
	}
	meta.Countries = sortedCountrySet(countries)
	meta.Expiry = expiry
	p.Meta = meta
	return p
}

func sortedCountrySet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
