package pathdb_test

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/pathdb"
	"tango/internal/segment"
	"tango/internal/topology"
)

var (
	t0     = time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC)
	t1     = t0.Add(24 * time.Hour)
	during = t0.Add(time.Hour)
)

func combinerWorld(t *testing.T) (*topology.Topology, *beacon.Infra, *pathdb.Combiner) {
	t.Helper()
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	svc := beacon.NewService(topo, infra, reg, 12*time.Hour)
	if err := svc.Run(t0); err != nil {
		t.Fatal(err)
	}
	return topo, infra, pathdb.NewCombiner(reg)
}

// checkPathWellFormed asserts structural invariants every combined path must
// satisfy.
func checkPathWellFormed(t *testing.T, topo *topology.Topology, p *segment.Path) {
	t.Helper()
	seen := make(map[addr.IA]bool)
	for i, h := range p.Hops {
		if seen[h.IA] {
			t.Errorf("path %s: AS loop at %s", p, h.IA)
		}
		seen[h.IA] = true
		if h.NumAuth < 1 || h.NumAuth > 2 {
			t.Errorf("path %s: hop %d has %d auth fields", p, i, h.NumAuth)
		}
		// Travel interfaces must be authorized by the hop fields.
		if h.Ingress != 0 {
			ok := false
			for _, a := range h.AuthFields() {
				if a.Authorizes(h.Ingress) {
					ok = true
				}
			}
			if !ok {
				t.Errorf("path %s: hop %d ingress %d unauthorized", p, i, h.Ingress)
			}
		}
		// Consecutive hops must be joined by a real topology link.
		if i > 0 {
			prev := p.Hops[i-1]
			intf := topo.AS(prev.IA).Interfaces[prev.Egress]
			if intf == nil {
				t.Errorf("path %s: hop %d egress %d does not exist at %s", p, i-1, prev.Egress, prev.IA)
				continue
			}
			if intf.Remote != h.IA || intf.RemoteID != h.Ingress {
				t.Errorf("path %s: hop %d-%d not a topology link", p, i-1, i)
			}
		}
	}
	if p.Hops[0].Ingress != 0 || p.Hops[len(p.Hops)-1].Egress != 0 {
		t.Errorf("path %s: endpoints must use interface 0", p)
	}
}

func TestPathsLeafToLeafSameISD(t *testing.T) {
	topo, _, c := combinerWorld(t)
	paths := c.Paths(topology.AS111, topology.AS121, during)
	if len(paths) < 3 {
		t.Fatalf("found %d paths 111->121, want >= 3 (core, shortcut variants, peering)", len(paths))
	}
	for _, p := range paths {
		checkPathWellFormed(t, topo, p)
	}
	// The peering path 111~121 must exist and be the lowest-latency option:
	// 6ms direct vs 3+5+3=11ms via the cores.
	best := paths[0]
	if len(best.Hops) != 2 {
		t.Fatalf("best path %s has %d hops, want 2 (peering)", best, len(best.Hops))
	}
	if best.Meta.Latency != 6*time.Millisecond {
		t.Fatalf("best latency = %v, want 6ms", best.Meta.Latency)
	}
}

func TestPathsInterISD(t *testing.T) {
	topo, _, c := combinerWorld(t)
	paths := c.Paths(topology.AS111, topology.AS211, during)
	if len(paths) < 2 {
		t.Fatalf("found %d paths 111->211, want >= 2", len(paths))
	}
	for _, p := range paths {
		checkPathWellFormed(t, topo, p)
		if p.Meta.ISDs()[0] != 1 {
			t.Errorf("path %s does not start in ISD 1", p)
		}
	}
	// Fastest: 111 ->(3) 110 ->(5) 120 ->(80) 210 ->(3) 211 = 91ms
	// (via peering 111~121->121->120: 6+3+80+3 = 92ms is close behind;
	// direct 110->210: 3+120+3 = 126ms).
	if paths[0].Meta.Latency != 91*time.Millisecond {
		t.Fatalf("best inter-ISD latency = %v, want 91ms", paths[0].Meta.Latency)
	}
}

func TestPathsShortcutCommonAncestor(t *testing.T) {
	topo, _, c := combinerWorld(t)
	// 122 and 121: 121 is an ancestor of 122, so the 1-link path must exist.
	paths := c.Paths(topology.AS122, topology.AS121, during)
	if len(paths) == 0 {
		t.Fatal("no paths 122->121")
	}
	for _, p := range paths {
		checkPathWellFormed(t, topo, p)
	}
	best := paths[0]
	if len(best.Hops) != 2 || best.Meta.Latency != 2*time.Millisecond {
		t.Fatalf("best path %s latency %v, want direct 2-hop 2ms", best, best.Meta.Latency)
	}
}

func TestPathsSiblingShortcut(t *testing.T) {
	topo, _, c := combinerWorld(t)
	// 111 and 112 are siblings under 110: shortcut via 110 (3+4=7ms) beats
	// any longer combination.
	paths := c.Paths(topology.AS111, topology.AS112, during)
	if len(paths) == 0 {
		t.Fatal("no paths 111->112")
	}
	for _, p := range paths {
		checkPathWellFormed(t, topo, p)
	}
	best := paths[0]
	if len(best.Hops) != 3 || best.Meta.Latency != 7*time.Millisecond {
		t.Fatalf("best path %s latency %v, want 3-hop 7ms via 110", best, best.Meta.Latency)
	}
	// The joint at 110 carries two auth fields.
	if best.Hops[1].NumAuth != 2 {
		t.Fatalf("cross-over hop auth count = %d, want 2", best.Hops[1].NumAuth)
	}
}

func TestPathsToCoreAS(t *testing.T) {
	topo, _, c := combinerWorld(t)
	paths := c.Paths(topology.AS111, topology.Core210, during)
	if len(paths) == 0 {
		t.Fatal("no paths 111->210")
	}
	for _, p := range paths {
		checkPathWellFormed(t, topo, p)
		if p.Dst != topology.Core210 {
			t.Errorf("path %s wrong destination", p)
		}
	}
}

func TestPathsFromCoreToCore(t *testing.T) {
	topo, _, c := combinerWorld(t)
	paths := c.Paths(topology.Core110, topology.Core220, during)
	if len(paths) < 2 {
		t.Fatalf("found %d paths 110->220, want >= 2 (via 120, via 210)", len(paths))
	}
	for _, p := range paths {
		checkPathWellFormed(t, topo, p)
	}
	// Best: 110->120->220 = 5+70 = 75ms.
	if paths[0].Meta.Latency != 75*time.Millisecond {
		t.Fatalf("best 110->220 latency = %v, want 75ms", paths[0].Meta.Latency)
	}
}

func TestPathsSameAS(t *testing.T) {
	_, _, c := combinerWorld(t)
	paths := c.Paths(topology.AS111, topology.AS111, during)
	if len(paths) != 1 || len(paths[0].Hops) != 0 {
		t.Fatalf("same-AS paths = %v", paths)
	}
}

func TestPathsMetadataAggregation(t *testing.T) {
	topo, _, c := combinerWorld(t)
	paths := c.Paths(topology.AS111, topology.AS211, during)
	for _, p := range paths {
		wantCarbon := 0.0
		for _, ia := range p.Meta.ASes {
			wantCarbon += topo.AS(ia).CarbonIntensity
		}
		if p.Meta.CarbonPerGB != wantCarbon {
			t.Errorf("path %s carbon = %v, want %v", p, p.Meta.CarbonPerGB, wantCarbon)
		}
		if p.Meta.MTU <= 0 || p.Meta.MTU > 1400 {
			t.Errorf("path %s MTU = %d, want (0, 1400]", p, p.Meta.MTU)
		}
		if p.Meta.Bandwidth != 1_000_000_000 {
			t.Errorf("path %s bandwidth = %d", p, p.Meta.Bandwidth)
		}
		if !p.Meta.Expiry.After(during) {
			t.Errorf("path %s already expired", p)
		}
		if len(p.Meta.Countries) == 0 {
			t.Errorf("path %s has no country decoration", p)
		}
	}
}

func TestPathsDeterministicOrder(t *testing.T) {
	_, _, c := combinerWorld(t)
	a := c.Paths(topology.AS111, topology.AS221, during)
	b := c.Paths(topology.AS111, topology.AS221, during)
	if len(a) != len(b) {
		t.Fatal("nondeterministic path count")
	}
	for i := range a {
		if a[i].Fingerprint() != b[i].Fingerprint() {
			t.Fatal("nondeterministic path order")
		}
	}
}

func TestPathsExpiredAtQueryTime(t *testing.T) {
	topo := topology.Default()
	infra, err := beacon.NewInfra(topo, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	reg := pathdb.NewRegistry(infra.Store)
	svc := beacon.NewService(topo, infra, reg, time.Hour)
	if err := svc.Run(t0); err != nil {
		t.Fatal(err)
	}
	c := pathdb.NewCombiner(reg)
	if got := c.Paths(topology.AS111, topology.AS211, t0.Add(2*time.Hour)); len(got) != 0 {
		t.Fatalf("expired query returned %d paths", len(got))
	}
}

func TestPathCountIsRich(t *testing.T) {
	// The paper argues SCION offers "dozens" of path choices; our small
	// 10-AS topology should still offer meaningful diversity end to end.
	_, _, c := combinerWorld(t)
	total := 0
	pairs := [][2]addr.IA{
		{topology.AS111, topology.AS211},
		{topology.AS111, topology.AS221},
		{topology.AS112, topology.AS221},
		{topology.AS122, topology.AS211},
	}
	for _, pr := range pairs {
		total += len(c.Paths(pr[0], pr[1], during))
	}
	if total < 12 {
		t.Fatalf("total inter-ISD path options = %d, want >= 12", total)
	}
}
