package pathdb_test

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/beacon"
	"tango/internal/pathdb"
	"tango/internal/segment"
	"tango/internal/topology"
)

// TestCombinationInvariantsOnRandomTopologies is the heavyweight property
// test of the control plane: across randomly generated topologies, every
// combined path between every AS pair must be structurally valid (loop-free,
// link-consistent, interface-authorized) and metadata-consistent.
func TestCombinationInvariantsOnRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("random-topology sweep")
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(topoName(seed), func(t *testing.T) {
			params := topology.DefaultGenParams()
			if seed%2 == 0 {
				params.ISDs = 3
				params.LeavesPerISD = 5
			}
			topo := topology.Generate(params, seed)
			infra, err := beacon.NewInfra(topo, t0, t1)
			if err != nil {
				t.Fatal(err)
			}
			reg := pathdb.NewRegistry(infra.Store)
			if err := beacon.NewService(topo, infra, reg, 12*time.Hour).Run(t0); err != nil {
				t.Fatal(err)
			}
			comb := pathdb.NewCombiner(reg)

			ases := topo.ASes()
			totalPaths := 0
			reachablePairs := 0
			for _, src := range ases {
				for _, dst := range ases {
					if src.IA == dst.IA {
						continue
					}
					paths := comb.Paths(src.IA, dst.IA, during)
					if len(paths) > 0 {
						reachablePairs++
					}
					totalPaths += len(paths)
					for _, p := range paths {
						assertPathValid(t, topo, infra, p, src.IA, dst.IA)
					}
				}
			}
			// Beaconed topologies must be fully connected: beacons reach
			// every AS from every core, and cores are interconnected.
			if want := len(ases) * (len(ases) - 1); reachablePairs != want {
				t.Errorf("reachable pairs = %d, want %d", reachablePairs, want)
			}
			if totalPaths == 0 {
				t.Fatal("no paths at all")
			}
		})
	}
}

func topoName(seed int64) string {
	return "seed-" + string(rune('0'+seed))
}

// assertPathValid checks all structural invariants of one combined path.
func assertPathValid(t *testing.T, topo *topology.Topology, infra *beacon.Infra, p *segment.Path, src, dst addr.IA) {
	t.Helper()
	if p.Src != src || p.Dst != dst {
		t.Errorf("path %s: endpoints %s->%s, want %s->%s", p, p.Src, p.Dst, src, dst)
		return
	}
	if len(p.Hops) == 0 {
		t.Errorf("path %s->%s: empty", src, dst)
		return
	}
	seen := make(map[addr.IA]bool)
	for i, h := range p.Hops {
		if seen[h.IA] {
			t.Errorf("path %s: loop at %s", p, h.IA)
			return
		}
		seen[h.IA] = true

		// Hop-field MACs must verify under the owning AS's forwarding key,
		// and authorize the travel interfaces.
		key := infra.ForwardingKeys[h.IA]
		inOK := h.Ingress == 0
		outOK := h.Egress == 0
		for _, a := range h.AuthFields() {
			if !segment.VerifyMAC(key, a.SegInfo, a.HopField) {
				t.Errorf("path %s: hop %d MAC invalid", p, i)
				return
			}
			if a.Authorizes(h.Ingress) {
				inOK = true
			}
			if a.Authorizes(h.Egress) {
				outOK = true
			}
		}
		if !inOK || !outOK {
			t.Errorf("path %s: hop %d interfaces unauthorized", p, i)
			return
		}
		// Consecutive hops must share a physical link.
		if i > 0 {
			prev := p.Hops[i-1]
			intf := topo.AS(prev.IA).Interfaces[prev.Egress]
			if intf == nil || intf.Remote != h.IA || intf.RemoteID != h.Ingress {
				t.Errorf("path %s: hops %d-%d not joined by a topology link", p, i-1, i)
				return
			}
		}
	}
	// Metadata consistency: latency equals the sum of traversed link
	// latencies; MTU is a lower bound of every traversed MTU.
	var wantLat time.Duration
	for i := 1; i < len(p.Hops); i++ {
		prev := p.Hops[i-1]
		intf := topo.AS(prev.IA).Interfaces[prev.Egress]
		wantLat += intf.Props.Latency
	}
	if p.Meta.Latency != wantLat {
		t.Errorf("path %s: latency %v, links sum to %v", p, p.Meta.Latency, wantLat)
	}
	for i := 1; i < len(p.Hops); i++ {
		prev := p.Hops[i-1]
		intf := topo.AS(prev.IA).Interfaces[prev.Egress]
		if intf.Props.MTU > 0 && p.Meta.MTU > intf.Props.MTU {
			t.Errorf("path %s: MTU %d exceeds link MTU %d", p, p.Meta.MTU, intf.Props.MTU)
		}
	}
	if !p.Meta.Expiry.After(during) {
		t.Errorf("path %s: expired at query time", p)
	}
}

// TestGeneratorDeterminism pins the generator's reproducibility.
func TestGeneratorDeterminism(t *testing.T) {
	a := topology.Generate(topology.DefaultGenParams(), 7)
	b := topology.Generate(topology.DefaultGenParams(), 7)
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
	c := topology.Generate(topology.DefaultGenParams(), 8)
	if len(c.Links()) == len(la) {
		same := true
		lc := c.Links()
		for i := range la {
			if la[i] != lc[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical topologies")
		}
	}
}
