// Package pathdb implements the SCION path-server infrastructure of the
// simulation: a registry where beaconing registers up-, core-, and
// down-segments, and the end-host path combinator that assembles complete
// end-to-end paths (including shortcut and peering combinations) with fully
// aggregated metadata.
//
// In the paper's words: "End hosts fetching path segments thus receive the
// fully decorated paths containing all added information" — Lookup is that
// fetch, Combine builds the dozens of path options the end host selects
// from.
package pathdb

import (
	"fmt"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/cppki"
	"tango/internal/segment"
)

// Registry is the (logically distributed, here centralized) path-server
// infrastructure. It verifies segments against the trust store on
// registration, so queries return only authenticated segments. It is safe
// for concurrent use.
type Registry struct {
	store *cppki.Store

	mu   sync.RWMutex
	up   map[addr.IA]map[string]*segment.Segment // leaf AS -> segID -> seg
	down map[addr.IA]map[string]*segment.Segment
	core map[addr.IA]map[string]*segment.Segment // origin core AS -> segID -> seg
}

// NewRegistry builds an empty registry verifying against store. A nil store
// disables verification (used only by focused unit tests).
func NewRegistry(store *cppki.Store) *Registry {
	return &Registry{
		store: store,
		up:    make(map[addr.IA]map[string]*segment.Segment),
		down:  make(map[addr.IA]map[string]*segment.Segment),
		core:  make(map[addr.IA]map[string]*segment.Segment),
	}
}

// RegisterUp registers seg as an up segment for its terminal AS.
func (r *Registry) RegisterUp(seg *segment.Segment, at time.Time) error {
	return r.register(r.up, seg.LastIA(), seg, at)
}

// RegisterDown registers seg as a down segment toward its terminal AS.
func (r *Registry) RegisterDown(seg *segment.Segment, at time.Time) error {
	return r.register(r.down, seg.LastIA(), seg, at)
}

// RegisterCore registers a core segment under its origin AS.
func (r *Registry) RegisterCore(seg *segment.Segment, at time.Time) error {
	return r.register(r.core, seg.FirstIA(), seg, at)
}

func (r *Registry) register(m map[addr.IA]map[string]*segment.Segment, key addr.IA, seg *segment.Segment, at time.Time) error {
	if r.store != nil {
		if err := seg.Verify(r.store, at); err != nil {
			return fmt.Errorf("registering segment: %w", err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m[key] == nil {
		m[key] = make(map[string]*segment.Segment)
	}
	m[key][seg.ID()] = seg
	return nil
}

// UpSegments returns the registered up segments of ia (construction
// direction: core first), excluding expired ones.
func (r *Registry) UpSegments(ia addr.IA, at time.Time) []*segment.Segment {
	return r.query(r.up, ia, at)
}

// DownSegments returns the registered down segments toward ia.
func (r *Registry) DownSegments(ia addr.IA, at time.Time) []*segment.Segment {
	return r.query(r.down, ia, at)
}

// CoreSegments returns core segments connecting the two core ASes in either
// construction orientation, tagged with the orientation needed to travel
// from src to dst.
func (r *Registry) CoreSegments(src, dst addr.IA, at time.Time) []OrientedSegment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []OrientedSegment
	// Construction src -> dst: travel with construction.
	for _, seg := range r.core[src] {
		if seg.LastIA() == dst && seg.Expiry().After(at) {
			out = append(out, OrientedSegment{Seg: seg, AgainstConstruction: false})
		}
	}
	// Construction dst -> src: travel against construction.
	for _, seg := range r.core[dst] {
		if seg.LastIA() == src && seg.Expiry().After(at) {
			out = append(out, OrientedSegment{Seg: seg, AgainstConstruction: true})
		}
	}
	return out
}

func (r *Registry) query(m map[addr.IA]map[string]*segment.Segment, ia addr.IA, at time.Time) []*segment.Segment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*segment.Segment
	for _, seg := range m[ia] {
		if seg.Expiry().After(at) {
			out = append(out, seg)
		}
	}
	return out
}

// Counts returns the number of registered up/down/core segments, for
// diagnostics.
func (r *Registry) Counts() (up, down, core int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.up {
		up += len(m)
	}
	for _, m := range r.down {
		down += len(m)
	}
	for _, m := range r.core {
		core += len(m)
	}
	return
}

// OrientedSegment pairs a core segment with the direction it must be
// traveled in to lead from the query's source core AS to its destination.
type OrientedSegment struct {
	Seg                 *segment.Segment
	AgainstConstruction bool
}
