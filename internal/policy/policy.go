// Package policy builds user-facing path policies on top of the PPL:
// ISD-level geofencing (the paper's flagship property, §4.1), and presets
// for the property classes of Table 1 (performance, quality, privacy, ESG,
// economics) that applications and users can pick without writing PPL.
package policy

import (
	"fmt"
	"sort"

	"tango/internal/addr"
	"tango/internal/ppl"
	"tango/internal/segment"
)

// Geofence is the ISD-level allow/block configuration the extension exposes:
// "We provide the user with an interface to block or allow entire ISDs.
// Since ISDs are designed to cover independent regions or networks, we
// anticipate a balanced degree of customization" (paper §4.1).
type Geofence struct {
	// Mode selects the interpretation of the ISD set.
	Mode GeofenceMode
	// ISDs is the blocked (or allowed) set.
	ISDs map[addr.ISD]bool
}

// GeofenceMode selects blocklist or allowlist semantics.
type GeofenceMode int

const (
	// BlockListed rejects paths traversing any listed ISD.
	BlockListed GeofenceMode = iota
	// AllowOnlyListed rejects paths leaving the listed ISDs.
	AllowOnlyListed
)

// NewBlockGeofence builds a blocklist geofence.
func NewBlockGeofence(isds ...addr.ISD) *Geofence {
	g := &Geofence{Mode: BlockListed, ISDs: make(map[addr.ISD]bool)}
	for _, i := range isds {
		g.ISDs[i] = true
	}
	return g
}

// NewAllowGeofence builds an allowlist geofence.
func NewAllowGeofence(isds ...addr.ISD) *Geofence {
	g := &Geofence{Mode: AllowOnlyListed, ISDs: make(map[addr.ISD]bool)}
	for _, i := range isds {
		g.ISDs[i] = true
	}
	return g
}

// Compliant reports whether a path satisfies the geofence.
func (g *Geofence) Compliant(p *segment.Path) bool {
	if g == nil {
		return true
	}
	for _, isd := range p.Meta.ISDs() {
		listed := g.ISDs[isd]
		if g.Mode == BlockListed && listed {
			return false
		}
		if g.Mode == AllowOnlyListed && !listed {
			return false
		}
	}
	return true
}

// Policy compiles the geofence to a PPL policy (ACL over ISD wildcards), the
// foundation for finer-grained geofencing the paper mentions.
func (g *Geofence) Policy() *ppl.Policy {
	acl := &ppl.ACL{}
	isds := make([]addr.ISD, 0, len(g.ISDs))
	for isd := range g.ISDs {
		isds = append(isds, isd)
	}
	sort.Slice(isds, func(i, j int) bool { return isds[i] < isds[j] })
	for _, isd := range isds {
		acl.Entries = append(acl.Entries, ppl.ACLEntry{
			Allow: g.Mode == AllowOnlyListed,
			HP:    ppl.HopPredicate{IA: addr.IA{ISD: isd}},
		})
	}
	acl.Entries = append(acl.Entries, ppl.ACLEntry{Allow: g.Mode == BlockListed})
	name := "geofence-block"
	if g.Mode == AllowOnlyListed {
		name = "geofence-allow"
	}
	return &ppl.Policy{Name: name, ACL: acl}
}

// String summarizes the geofence for UI display.
func (g *Geofence) String() string {
	verb := "block"
	if g.Mode == AllowOnlyListed {
		verb = "allow-only"
	}
	isds := make([]addr.ISD, 0, len(g.ISDs))
	for isd := range g.ISDs {
		isds = append(isds, isd)
	}
	sort.Slice(isds, func(i, j int) bool { return isds[i] < isds[j] })
	return fmt.Sprintf("geofence %s ISDs %v", verb, isds)
}

// Property presets for Table 1's property classes. Each returns a PPL policy
// implementing the selection strategy for that property.

// LowLatency optimizes interactive performance.
func LowLatency() *ppl.Policy {
	return &ppl.Policy{Name: "low-latency", Orderings: []ppl.Ordering{ppl.OrderLatency, ppl.OrderHops}}
}

// HighBandwidth optimizes bulk transfer.
func HighBandwidth() *ppl.Policy {
	return &ppl.Policy{Name: "high-bandwidth", Orderings: []ppl.Ordering{ppl.OrderBandwidth, ppl.OrderLatency}}
}

// FewestHops minimizes exposure and loss probability.
func FewestHops() *ppl.Policy {
	return &ppl.Policy{Name: "fewest-hops", Orderings: []ppl.Ordering{ppl.OrderHops, ppl.OrderLatency}}
}

// LargestMTU prefers paths carrying bigger datagrams.
func LargestMTU() *ppl.Policy {
	return &ppl.Policy{Name: "largest-mtu", Orderings: []ppl.Ordering{ppl.OrderMTU, ppl.OrderLatency}}
}

// GreenRouting implements ESG carbon-footprint reduction.
func GreenRouting(maxCarbonPerGB float64) *ppl.Policy {
	return &ppl.Policy{
		Name:      "green-routing",
		MaxCarbon: maxCarbonPerGB,
		Orderings: []ppl.Ordering{ppl.OrderCarbon, ppl.OrderLatency},
	}
}

// CountryAvoidance rejects paths whose decoration includes any listed
// country — finer-grained geofencing than ISD level, enabled by the
// geographic decoration.
type CountryAvoidance struct {
	Blocked map[string]bool
}

// NewCountryAvoidance blocks the given ISO country codes.
func NewCountryAvoidance(codes ...string) *CountryAvoidance {
	c := &CountryAvoidance{Blocked: make(map[string]bool)}
	for _, code := range codes {
		c.Blocked[code] = true
	}
	return c
}

// Compliant reports whether the path avoids all blocked countries.
func (c *CountryAvoidance) Compliant(p *segment.Path) bool {
	if c == nil {
		return true
	}
	for _, country := range p.Meta.Countries {
		if c.Blocked[country] {
			return false
		}
	}
	return true
}
