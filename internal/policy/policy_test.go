package policy

import (
	"strings"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

func mkPath(carbon float64, countries []string, ias ...addr.IA) *segment.Path {
	p := &segment.Path{Src: ias[0], Dst: ias[len(ias)-1]}
	for i, ia := range ias {
		var in, out addr.IfID
		if i > 0 {
			in = 1
		}
		if i < len(ias)-1 {
			out = 2
		}
		p.Hops = append(p.Hops, segment.Hop{IA: ia, Ingress: in, Egress: out})
	}
	p.Meta = segment.Metadata{
		ASes: ias, CarbonPerGB: carbon, Countries: countries,
		Latency: 10 * time.Millisecond, Bandwidth: 1e9, MTU: 1400,
	}
	return p
}

var (
	domestic = mkPath(100, []string{"CH"}, addr.MustIA(1, 1), addr.MustIA(1, 2))
	foreign  = mkPath(500, []string{"CH", "JP"}, addr.MustIA(1, 1), addr.MustIA(2, 1), addr.MustIA(2, 2))
)

func TestBlockGeofence(t *testing.T) {
	g := NewBlockGeofence(2)
	if !g.Compliant(domestic) {
		t.Error("domestic path rejected")
	}
	if g.Compliant(foreign) {
		t.Error("path through blocked ISD accepted")
	}
	var nilFence *Geofence
	if !nilFence.Compliant(foreign) {
		t.Error("nil geofence must accept everything")
	}
}

func TestAllowGeofence(t *testing.T) {
	g := NewAllowGeofence(1)
	if !g.Compliant(domestic) {
		t.Error("allowed path rejected")
	}
	if g.Compliant(foreign) {
		t.Error("path leaving the allowlist accepted")
	}
	g2 := NewAllowGeofence(1, 2)
	if !g2.Compliant(foreign) {
		t.Error("path within extended allowlist rejected")
	}
}

func TestGeofencePolicyCompilesToACL(t *testing.T) {
	g := NewBlockGeofence(2)
	pol := g.Policy()
	if pol.ACL == nil || len(pol.ACL.Entries) != 2 {
		t.Fatalf("compiled policy %+v", pol)
	}
	if pol.Accepts(foreign) {
		t.Error("compiled ACL accepted blocked path")
	}
	if !pol.Accepts(domestic) {
		t.Error("compiled ACL rejected allowed path")
	}
	allow := NewAllowGeofence(1).Policy()
	if allow.Accepts(foreign) || !allow.Accepts(domestic) {
		t.Error("compiled allowlist ACL wrong")
	}
}

func TestGeofenceString(t *testing.T) {
	s := NewBlockGeofence(2, 1).String()
	if !strings.Contains(s, "block") || !strings.Contains(s, "[1 2]") {
		t.Fatalf("String() = %q", s)
	}
}

func TestPresets(t *testing.T) {
	paths := []*segment.Path{foreign, domestic}
	if got := LowLatency().Filter(paths); len(got) != 2 {
		t.Fatal("low latency dropped paths")
	}
	green := GreenRouting(200)
	got := green.Filter(paths)
	if len(got) != 1 || got[0] != domestic {
		t.Fatalf("green routing kept %d paths", len(got))
	}
	if HighBandwidth().Name == "" || FewestHops().Name == "" || LargestMTU().Name == "" {
		t.Fatal("presets must be named")
	}
}

func TestCountryAvoidance(t *testing.T) {
	c := NewCountryAvoidance("JP")
	if !c.Compliant(domestic) {
		t.Error("domestic path rejected")
	}
	if c.Compliant(foreign) {
		t.Error("path through blocked country accepted")
	}
	var nilC *CountryAvoidance
	if !nilC.Compliant(foreign) {
		t.Error("nil avoidance must accept everything")
	}
}
