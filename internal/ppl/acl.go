package ppl

import (
	"fmt"
	"strings"

	"tango/internal/segment"
)

// ACLEntry is one ordered allow/deny rule.
type ACLEntry struct {
	Allow bool
	HP    HopPredicate
}

// ParseACLEntry parses "+ <predicate>", "- <predicate>", or the bare
// defaults "+" / "-".
func ParseACLEntry(s string) (ACLEntry, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return ACLEntry{}, fmt.Errorf("parsing ACL entry: empty")
	}
	var allow bool
	switch s[0] {
	case '+':
		allow = true
	case '-':
		allow = false
	default:
		return ACLEntry{}, fmt.Errorf("parsing ACL entry %q: must start with '+' or '-'", s)
	}
	rest := strings.TrimSpace(s[1:])
	if rest == "" {
		// Bare default entry: matches every hop.
		return ACLEntry{Allow: allow}, nil
	}
	hp, err := ParseHopPredicate(rest)
	if err != nil {
		return ACLEntry{}, err
	}
	return ACLEntry{Allow: allow, HP: hp}, nil
}

// String renders the canonical form.
func (e ACLEntry) String() string {
	sign := "-"
	if e.Allow {
		sign = "+"
	}
	if e.HP.IA.IsZero() && len(e.HP.IfIDs) == 0 {
		return sign
	}
	return sign + " " + e.HP.String()
}

// ACL is an ordered first-match allow/deny list over path hops: a path is
// accepted iff every hop's first matching entry allows it. The last entry
// should be a bare default; if none is, a trailing deny-all is implied
// (fail closed).
type ACL struct {
	Entries []ACLEntry
}

// ParseACL parses one entry per element.
func ParseACL(entries ...string) (*ACL, error) {
	acl := &ACL{}
	for _, s := range entries {
		e, err := ParseACLEntry(s)
		if err != nil {
			return nil, err
		}
		acl.Entries = append(acl.Entries, e)
	}
	return acl, nil
}

// Eval reports whether the path satisfies the ACL.
func (a *ACL) Eval(p *segment.Path) bool {
	for _, hop := range p.Hops {
		allowed := false
		matched := false
		for _, e := range a.Entries {
			if e.HP.MatchesHop(hop) {
				allowed = e.Allow
				matched = true
				break
			}
		}
		if !matched {
			allowed = false // implicit deny-all
		}
		if !allowed {
			return false
		}
	}
	return true
}

// String renders the entries separated by commas.
func (a *ACL) String() string {
	parts := make([]string, len(a.Entries))
	for i, e := range a.Entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
