package ppl

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"tango/internal/segment"
)

// Ordering names a path-sorting criterion.
type Ordering string

// Supported orderings.
const (
	OrderLatency   Ordering = "latency"   // ascending one-way latency
	OrderBandwidth Ordering = "bandwidth" // descending bottleneck bandwidth
	OrderHops      Ordering = "hops"      // ascending AS count
	OrderCarbon    Ordering = "carbon"    // ascending g CO2 / GB
	OrderMTU       Ordering = "mtu"       // descending MTU
)

// less compares two paths under the ordering; 0 means equal.
func (o Ordering) compare(a, b *segment.Path) int {
	switch o {
	case OrderLatency:
		return cmp(int64(a.Meta.Latency), int64(b.Meta.Latency))
	case OrderBandwidth:
		return cmp(b.Meta.Bandwidth, a.Meta.Bandwidth)
	case OrderHops:
		return cmp(int64(len(a.Hops)), int64(len(b.Hops)))
	case OrderCarbon:
		switch {
		case a.Meta.CarbonPerGB < b.Meta.CarbonPerGB:
			return -1
		case a.Meta.CarbonPerGB > b.Meta.CarbonPerGB:
			return 1
		}
		return 0
	case OrderMTU:
		return cmp(int64(b.Meta.MTU), int64(a.Meta.MTU))
	default:
		return 0
	}
}

func cmp[T int64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// valid reports whether the ordering is known.
func (o Ordering) valid() bool {
	switch o {
	case OrderLatency, OrderBandwidth, OrderHops, OrderCarbon, OrderMTU:
		return true
	}
	return false
}

// Policy combines filters and orderings, matching the paper's description:
// exclude regions with the ACL, shape the route with a sequence, constrain
// metrics, and sort what remains (e.g. by CO2 footprint). The zero Policy
// accepts every path in its original order.
type Policy struct {
	// Name identifies the policy in configuration and statistics.
	Name string
	// ACL filters hops (nil = allow all).
	ACL *ACL
	// Sequence constrains the hop sequence (nil = any).
	Sequence *Sequence
	// MaxLatency rejects slower paths (0 = unbounded).
	MaxLatency time.Duration
	// MinBandwidth rejects narrower paths, bits/s (0 = unbounded).
	MinBandwidth int64
	// MaxCarbon rejects dirtier paths, g CO2/GB (0 = unbounded).
	MaxCarbon float64
	// MaxHops rejects longer paths (0 = unbounded).
	MaxHops int
	// Orderings sort accepted paths lexicographically by criteria.
	Orderings []Ordering

	// extraSeqs holds additional sequence constraints created by Intersect;
	// all must match.
	extraSeqs []*Sequence
}

// Accepts reports whether a single path satisfies all filters.
func (p *Policy) Accepts(path *segment.Path) bool {
	if p == nil {
		return true
	}
	if p.ACL != nil && !p.ACL.Eval(path) {
		return false
	}
	if p.Sequence != nil && !p.Sequence.Eval(path) {
		return false
	}
	for _, seq := range p.extraSeqs {
		if !seq.Eval(path) {
			return false
		}
	}
	if p.MaxLatency > 0 && path.Meta.Latency > p.MaxLatency {
		return false
	}
	if p.MinBandwidth > 0 && path.Meta.Bandwidth > 0 && path.Meta.Bandwidth < p.MinBandwidth {
		return false
	}
	if p.MaxCarbon > 0 && path.Meta.CarbonPerGB > p.MaxCarbon {
		return false
	}
	if p.MaxHops > 0 && len(path.Hops) > p.MaxHops {
		return false
	}
	return true
}

// Filter returns the accepted paths, sorted by the policy's orderings
// (stable, so unspecified criteria preserve the input order).
func (p *Policy) Filter(paths []*segment.Path) []*segment.Path {
	var out []*segment.Path
	for _, path := range paths {
		if p.Accepts(path) {
			out = append(out, path)
		}
	}
	if p != nil && len(p.Orderings) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for _, o := range p.Orderings {
				if c := o.compare(out[i], out[j]); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	return out
}

// policyJSON is the document form of a Policy.
type policyJSON struct {
	Name         string   `json:"name,omitempty"`
	ACL          []string `json:"acl,omitempty"`
	Sequence     string   `json:"sequence,omitempty"`
	MaxLatencyMs int64    `json:"max_latency_ms,omitempty"`
	MinBandwidth int64    `json:"min_bandwidth_bps,omitempty"`
	MaxCarbon    float64  `json:"max_carbon_g_per_gb,omitempty"`
	MaxHops      int      `json:"max_hops,omitempty"`
	Orderings    []string `json:"ordering,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Policy) MarshalJSON() ([]byte, error) {
	doc := policyJSON{
		Name:         p.Name,
		MaxLatencyMs: int64(p.MaxLatency / time.Millisecond),
		MinBandwidth: p.MinBandwidth,
		MaxCarbon:    p.MaxCarbon,
		MaxHops:      p.MaxHops,
	}
	if p.ACL != nil {
		for _, e := range p.ACL.Entries {
			doc.ACL = append(doc.ACL, e.String())
		}
	}
	if p.Sequence != nil {
		doc.Sequence = p.Sequence.String()
	}
	for _, o := range p.Orderings {
		doc.Orderings = append(doc.Orderings, string(o))
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Policy) UnmarshalJSON(b []byte) error {
	var doc policyJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	out := Policy{
		Name:         doc.Name,
		MaxLatency:   time.Duration(doc.MaxLatencyMs) * time.Millisecond,
		MinBandwidth: doc.MinBandwidth,
		MaxCarbon:    doc.MaxCarbon,
		MaxHops:      doc.MaxHops,
	}
	if len(doc.ACL) > 0 {
		acl, err := ParseACL(doc.ACL...)
		if err != nil {
			return err
		}
		out.ACL = acl
	}
	if doc.Sequence != "" {
		seq, err := ParseSequence(doc.Sequence)
		if err != nil {
			return err
		}
		out.Sequence = seq
	}
	for _, o := range doc.Orderings {
		ord := Ordering(o)
		if !ord.valid() {
			return fmt.Errorf("parsing policy: unknown ordering %q", o)
		}
		out.Orderings = append(out.Orderings, ord)
	}
	*p = out
	return nil
}

// Intersect combines policies: a path must satisfy all of them; orderings
// concatenate in argument order. This is the paper's "multiple policies can
// be combined for fine-grained configuration".
func Intersect(name string, policies ...*Policy) *Policy {
	out := &Policy{Name: name}
	var aclEntries []ACLEntry
	for _, p := range policies {
		if p == nil {
			continue
		}
		if p.ACL != nil {
			// First-match semantics compose by concatenating allow lists:
			// strip bare allow-all defaults except on the last ACL.
			aclEntries = append(aclEntries, p.ACL.Entries...)
		}
		if p.Sequence != nil {
			if out.Sequence != nil {
				// Multiple sequences rarely compose meaningfully; keep the
				// strictest semantics by requiring both via lookahead-free
				// conjunction: evaluate both at Accepts time.
				prev := out.Sequence
				cur := p.Sequence
				out.Sequence = nil
				out.extraSeqs = append(out.extraSeqs, prev, cur)
			} else if len(out.extraSeqs) > 0 {
				out.extraSeqs = append(out.extraSeqs, p.Sequence)
			} else {
				out.Sequence = p.Sequence
			}
		}
		if p.MaxLatency > 0 && (out.MaxLatency == 0 || p.MaxLatency < out.MaxLatency) {
			out.MaxLatency = p.MaxLatency
		}
		if p.MinBandwidth > out.MinBandwidth {
			out.MinBandwidth = p.MinBandwidth
		}
		if p.MaxCarbon > 0 && (out.MaxCarbon == 0 || p.MaxCarbon < out.MaxCarbon) {
			out.MaxCarbon = p.MaxCarbon
		}
		if p.MaxHops > 0 && (out.MaxHops == 0 || p.MaxHops < out.MaxHops) {
			out.MaxHops = p.MaxHops
		}
		out.Orderings = append(out.Orderings, p.Orderings...)
	}
	if len(aclEntries) > 0 {
		out.ACL = &ACL{Entries: aclEntries}
	}
	return out
}
