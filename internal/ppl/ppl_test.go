package ppl

import (
	"encoding/json"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/segment"
)

var (
	ia110 = addr.MustIA(1, 0xff00_0000_0110)
	ia111 = addr.MustIA(1, 0xff00_0000_0111)
	ia120 = addr.MustIA(1, 0xff00_0000_0120)
	ia210 = addr.MustIA(2, 0xff00_0000_0210)
	ia211 = addr.MustIA(2, 0xff00_0000_0211)
)

// mkPath builds a path through the given hops (ingress/egress synthesized).
func mkPath(lat time.Duration, bw int64, carbon float64, ias ...addr.IA) *segment.Path {
	p := &segment.Path{Src: ias[0], Dst: ias[len(ias)-1]}
	for i, ia := range ias {
		var in, out addr.IfID
		if i > 0 {
			in = addr.IfID(i)
		}
		if i < len(ias)-1 {
			out = addr.IfID(i + 10)
		}
		p.Hops = append(p.Hops, segment.Hop{IA: ia, Ingress: in, Egress: out})
	}
	p.Meta = segment.Metadata{Latency: lat, Bandwidth: bw, CarbonPerGB: carbon, ASes: ias, MTU: 1400}
	return p
}

func TestParseHopPredicate(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"0", "0-0", true},
		{"1", "1-0", true},
		{"1-ff00:0:110", "1-ff00:0:110", true},
		{"1-ff00:0:110#0", "1-ff00:0:110#0", true},
		{"1-ff00:0:110#1,2", "1-ff00:0:110#1,2", true},
		{"1-0#1,2", "", false}, // interface pair on wildcard AS
		{"1-ff00:0:110#1,2,3", "", false},
		{"x", "", false},
		{"1-ff00:0:110#a", "", false},
	}
	for _, c := range cases {
		hp, err := ParseHopPredicate(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseHopPredicate(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && hp.String() != c.want {
			t.Errorf("ParseHopPredicate(%q).String() = %q, want %q", c.in, hp.String(), c.want)
		}
	}
}

func TestHopPredicateMatching(t *testing.T) {
	hop := segment.Hop{IA: ia110, Ingress: 1, Egress: 2}
	cases := []struct {
		pred string
		want bool
	}{
		{"0", true},
		{"1", true},
		{"2", false},
		{"1-ff00:0:110", true},
		{"1-ff00:0:111", false},
		{"1-ff00:0:110#1", true},
		{"1-ff00:0:110#2", true},
		{"1-ff00:0:110#3", false},
		{"1-ff00:0:110#1,2", true},
		{"1-ff00:0:110#2,1", false},
		{"1-ff00:0:110#0,2", true},
		{"1-ff00:0:110#1,0", true},
	}
	for _, c := range cases {
		hp, err := ParseHopPredicate(c.pred)
		if err != nil {
			t.Fatal(err)
		}
		if got := hp.MatchesHop(hop); got != c.want {
			t.Errorf("%q matches %v = %v, want %v", c.pred, hop.IA, got, c.want)
		}
	}
}

func TestACLGeofence(t *testing.T) {
	// Block ISD 2, allow everything else — ISD-level geofencing (paper §4.1).
	acl, err := ParseACL("- 2", "+")
	if err != nil {
		t.Fatal(err)
	}
	domestic := mkPath(10*time.Millisecond, 1e9, 100, ia111, ia110, ia120)
	foreign := mkPath(90*time.Millisecond, 1e9, 100, ia111, ia110, ia210, ia211)
	if !acl.Eval(domestic) {
		t.Error("domestic path rejected")
	}
	if acl.Eval(foreign) {
		t.Error("path through blocked ISD accepted")
	}
}

func TestACLFirstMatchWins(t *testing.T) {
	acl, err := ParseACL("+ 1-ff00:0:110", "- 1", "+")
	if err != nil {
		t.Fatal(err)
	}
	via110 := mkPath(0, 0, 0, ia210, ia110, ia211)
	via120 := mkPath(0, 0, 0, ia210, ia120, ia211)
	if !acl.Eval(via110) {
		t.Error("first-match allow did not win")
	}
	if acl.Eval(via120) {
		t.Error("later deny did not apply")
	}
}

func TestACLImplicitDenyAll(t *testing.T) {
	acl, err := ParseACL("+ 1")
	if err != nil {
		t.Fatal(err)
	}
	if acl.Eval(mkPath(0, 0, 0, ia111, ia110, ia210)) {
		t.Error("hop with no matching entry should be denied (fail closed)")
	}
}

func TestACLParseErrors(t *testing.T) {
	for _, bad := range []string{"", "* 1", "1-ff00:0:110", "+ bogus"} {
		if _, err := ParseACL(bad); err == nil {
			t.Errorf("ParseACL(%q) succeeded", bad)
		}
	}
}

func TestSequenceBasic(t *testing.T) {
	p := mkPath(0, 0, 0, ia111, ia110, ia120, ia210, ia211)
	cases := []struct {
		seq  string
		want bool
	}{
		{"0*", true},
		{"1-ff00:0:111 0*", true},
		{"0* 2-ff00:0:211", true},
		{"1-ff00:0:111 0* 2-ff00:0:211", true},
		{"0* 1-ff00:0:120 0*", true},
		{"0* 1-ff00:0:122 0*", false},
		{"1 1 1 2 2", true},
		{"1 1 2 2 2", false},
		{"0* (1-ff00:0:120|1-ff00:0:110) 0*", true},
		{"1-ff00:0:111", false}, // must match the whole path
		{"0 0 0 0 0", true},
		{"0 0 0 0", false},
		{"0+", true},
		{"1+ 2+", true},
		{"2+ 1+", false},
	}
	for _, c := range cases {
		seq, err := ParseSequence(c.seq)
		if err != nil {
			t.Fatalf("ParseSequence(%q): %v", c.seq, err)
		}
		if got := seq.Eval(p); got != c.want {
			t.Errorf("sequence %q = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestSequenceInterfaces(t *testing.T) {
	p := mkPath(0, 0, 0, ia111, ia110, ia210)
	// Hop 1 (110) has ingress 1, egress 11 per mkPath.
	seq, err := ParseSequence("0 1-ff00:0:110#1,11 0")
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Eval(p) {
		t.Error("interface pair did not match")
	}
	seq2, _ := ParseSequence("0 1-ff00:0:110#11 0")
	if !seq2.Eval(p) {
		t.Error("single interface (egress side) did not match")
	}
	seq3, _ := ParseSequence("0 1-ff00:0:110#7 0")
	if seq3.Eval(p) {
		t.Error("wrong interface matched")
	}
}

func TestSequenceParseErrors(t *testing.T) {
	for _, bad := range []string{"bogus", "1-ff00:0:110#1,2,3", "(1"} {
		if _, err := ParseSequence(bad); err == nil {
			t.Errorf("ParseSequence(%q) succeeded", bad)
		}
	}
}

func TestPolicyFilters(t *testing.T) {
	fast := mkPath(10*time.Millisecond, 2e9, 400, ia111, ia110, ia210)
	slow := mkPath(100*time.Millisecond, 1e9, 100, ia111, ia120, ia210)
	long := mkPath(50*time.Millisecond, 5e8, 200, ia111, ia110, ia120, ia210)
	paths := []*segment.Path{fast, slow, long}

	cases := []struct {
		name string
		pol  Policy
		want []*segment.Path
	}{
		{"latency cap", Policy{MaxLatency: 60 * time.Millisecond}, []*segment.Path{fast, long}},
		{"bandwidth floor", Policy{MinBandwidth: 1e9}, []*segment.Path{fast, slow}},
		{"carbon cap", Policy{MaxCarbon: 250}, []*segment.Path{slow, long}},
		{"hop cap", Policy{MaxHops: 3}, []*segment.Path{fast, slow}},
		{"zero accepts all", Policy{}, paths},
	}
	for _, c := range cases {
		got := c.pol.Filter(paths)
		if len(got) != len(c.want) {
			t.Errorf("%s: %d paths, want %d", c.name, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: path %d mismatch", c.name, i)
			}
		}
	}
}

func TestPolicyOrderings(t *testing.T) {
	a := mkPath(10*time.Millisecond, 1e9, 400, ia111, ia210)
	b := mkPath(50*time.Millisecond, 2e9, 100, ia111, ia210)
	c := mkPath(50*time.Millisecond, 5e8, 200, ia111, ia210)
	paths := []*segment.Path{c, b, a}

	latFirst := Policy{Orderings: []Ordering{OrderLatency, OrderBandwidth}}
	got := latFirst.Filter(paths)
	if got[0] != a || got[1] != b || got[2] != c {
		t.Error("latency-then-bandwidth ordering wrong")
	}
	co2 := Policy{Orderings: []Ordering{OrderCarbon}}
	got = co2.Filter(paths)
	if got[0] != b || got[1] != c || got[2] != a {
		t.Error("carbon ordering wrong")
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	doc := `{
		"name": "geofence-and-green",
		"acl": ["- 2", "+"],
		"sequence": "1-ff00:0:111 0*",
		"max_latency_ms": 80,
		"max_carbon_g_per_gb": 500,
		"ordering": ["carbon", "latency"]
	}`
	var p Policy
	if err := json.Unmarshal([]byte(doc), &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "geofence-and-green" || p.MaxLatency != 80*time.Millisecond || p.MaxCarbon != 500 {
		t.Fatalf("parsed %+v", p)
	}
	if len(p.ACL.Entries) != 2 || p.Sequence == nil || len(p.Orderings) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	out, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	var p2 Policy
	if err := json.Unmarshal(out, &p2); err != nil {
		t.Fatal(err)
	}
	if p2.Name != p.Name || p2.MaxLatency != p.MaxLatency || len(p2.ACL.Entries) != 2 {
		t.Fatal("round trip lost data")
	}
}

func TestPolicyJSONUnknownOrdering(t *testing.T) {
	var p Policy
	if err := json.Unmarshal([]byte(`{"ordering":["speed"]}`), &p); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}

func TestIntersect(t *testing.T) {
	geofence := &Policy{ACL: mustACL(t, "- 2", "+"), Orderings: []Ordering{OrderLatency}}
	green := &Policy{MaxCarbon: 300, Orderings: []Ordering{OrderCarbon}}
	combined := Intersect("combo", geofence, green)

	ok := mkPath(10*time.Millisecond, 1e9, 200, ia111, ia110, ia120)
	dirty := mkPath(10*time.Millisecond, 1e9, 900, ia111, ia110, ia120)
	foreign := mkPath(10*time.Millisecond, 1e9, 100, ia111, ia110, ia210)

	if !combined.Accepts(ok) {
		t.Error("clean domestic path rejected")
	}
	if combined.Accepts(dirty) {
		t.Error("dirty path accepted despite carbon cap")
	}
	if combined.Accepts(foreign) {
		t.Error("foreign path accepted despite geofence")
	}
	if len(combined.Orderings) != 2 {
		t.Errorf("orderings = %v", combined.Orderings)
	}
}

func TestIntersectSequences(t *testing.T) {
	s1, _ := ParseSequence("1-ff00:0:111 0*")
	s2, _ := ParseSequence("0* 1-ff00:0:120 0*")
	combined := Intersect("seqs", &Policy{Sequence: s1}, &Policy{Sequence: s2})
	through120 := mkPath(0, 0, 0, ia111, ia110, ia120)
	direct := mkPath(0, 0, 0, ia111, ia110)
	if !combined.Accepts(through120) {
		t.Error("path satisfying both sequences rejected")
	}
	if combined.Accepts(direct) {
		t.Error("path violating second sequence accepted")
	}
}

func mustACL(t *testing.T, entries ...string) *ACL {
	t.Helper()
	acl, err := ParseACL(entries...)
	if err != nil {
		t.Fatal(err)
	}
	return acl
}
