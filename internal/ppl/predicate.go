// Package ppl implements the Path Policy Language the paper's prototype
// uses to express user path policies (paper §4.1, citing the Anapaya PPL
// design): hop predicates, ordered ACLs, sequence expressions, orderings,
// and JSON policy documents combining them.
//
// "Path policies are rules to filter the available SCION paths to a
// particular destination... policies can be designed to sort and select
// paths depending on specified criteria, such as bandwidth, latency or
// included hops. Multiple policies can be combined for fine-grained
// configuration, e.g., optimizing the CO2 footprint while excluding
// particular regions."
package ppl

import (
	"fmt"
	"strings"

	"tango/internal/addr"
	"tango/internal/segment"
)

// HopPredicate matches one AS hop of a path, in the standard
// "ISD-AS#IF,IF" notation. Zero components are wildcards:
//
//	0            any hop
//	1            any hop in ISD 1
//	1-ff00:0:110 that AS, any interfaces
//	1-ff00:0:110#0    same
//	1-ff00:0:110#1    that AS, either interface 1
//	1-ff00:0:110#1,2  that AS entered via 1 and left via 2
type HopPredicate struct {
	IA addr.IA
	// IfIDs holds 0, 1, or 2 interface constraints (0 = wildcard).
	IfIDs []addr.IfID
}

// ParseHopPredicate parses the textual form.
func ParseHopPredicate(s string) (HopPredicate, error) {
	iaStr, ifStr, hasIf := strings.Cut(s, "#")
	var hp HopPredicate
	var err error
	if strings.Contains(iaStr, "-") {
		hp.IA, err = addr.ParseIA(iaStr)
	} else {
		var isd addr.ISD
		isd, err = addr.ParseISD(iaStr)
		hp.IA = addr.IA{ISD: isd}
	}
	if err != nil {
		return HopPredicate{}, fmt.Errorf("parsing hop predicate %q: %w", s, err)
	}
	if !hasIf {
		return hp, nil
	}
	parts := strings.Split(ifStr, ",")
	if len(parts) > 2 {
		return HopPredicate{}, fmt.Errorf("parsing hop predicate %q: more than two interfaces", s)
	}
	for _, p := range parts {
		var v uint64
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v > 65535 {
			return HopPredicate{}, fmt.Errorf("parsing hop predicate %q: bad interface %q", s, p)
		}
		hp.IfIDs = append(hp.IfIDs, addr.IfID(v))
	}
	if len(hp.IfIDs) == 2 && hp.IA.IsWildcard() {
		return HopPredicate{}, fmt.Errorf("parsing hop predicate %q: interface pair requires a concrete ISD-AS", s)
	}
	return hp, nil
}

// String renders the canonical textual form.
func (hp HopPredicate) String() string {
	var b strings.Builder
	b.WriteString(hp.IA.String())
	if len(hp.IfIDs) > 0 {
		b.WriteByte('#')
		for i, id := range hp.IfIDs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(id.String())
		}
	}
	return b.String()
}

// MatchesHop reports whether the predicate matches a path hop.
func (hp HopPredicate) MatchesHop(h segment.Hop) bool {
	if !hp.IA.Matches(h.IA) {
		return false
	}
	switch len(hp.IfIDs) {
	case 0:
		return true
	case 1:
		id := hp.IfIDs[0]
		return id == 0 || h.Ingress == id || h.Egress == id
	default:
		in, out := hp.IfIDs[0], hp.IfIDs[1]
		inOK := in == 0 || h.Ingress == in
		outOK := out == 0 || h.Egress == out
		return inOK && outOK
	}
}
