package ppl

import (
	"fmt"
	"regexp"
	"strings"

	"tango/internal/segment"
)

// Sequence is a regular expression over the hop sequence of a path. Each
// token is a hop predicate; the operators ? + * | ( ) have their usual
// regex meaning over hops:
//
//	"1-ff00:0:110 0* 2-ff00:0:210"   via 110, anything, ending at 210
//	"1 1 0*"                          at least two ISD-1 hops first
//	"0* (1-ff00:0:120|1-ff00:0:110) 0*"  through either core AS
//
// Following the Anapaya PPL design, sequences are compiled to a string
// regexp over the path's canonical hop rendering.
type Sequence struct {
	src string
	re  *regexp.Regexp
}

// ParseSequence compiles a sequence expression.
func ParseSequence(s string) (*Sequence, error) {
	var b strings.Builder
	b.WriteString(`^`)
	tok := strings.Builder{}
	flushTok := func() error {
		if tok.Len() == 0 {
			return nil
		}
		frag, err := predicateRegexp(tok.String())
		if err != nil {
			return err
		}
		b.WriteString(frag)
		tok.Reset()
		return nil
	}
	for _, r := range s {
		switch r {
		case ' ', '\t':
			if err := flushTok(); err != nil {
				return nil, err
			}
		case '(', ')', '|', '?', '+', '*':
			if err := flushTok(); err != nil {
				return nil, err
			}
			b.WriteRune(r)
		default:
			tok.WriteRune(r)
		}
	}
	if err := flushTok(); err != nil {
		return nil, err
	}
	b.WriteString(`$`)
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, fmt.Errorf("parsing sequence %q: %w", s, err)
	}
	return &Sequence{src: s, re: re}, nil
}

// predicateRegexp converts one hop predicate token into a regexp fragment
// matching a single rendered hop (a non-capturing group, so operators apply
// to whole hops).
func predicateRegexp(tok string) (string, error) {
	hp, err := ParseHopPredicate(tok)
	if err != nil {
		return "", fmt.Errorf("in sequence: %w", err)
	}
	isd := `[0-9]+`
	if hp.IA.ISD != 0 {
		isd = regexp.QuoteMeta(hp.IA.ISD.String())
	}
	as := `[0-9a-f:]+`
	if hp.IA.AS != 0 {
		as = regexp.QuoteMeta(hp.IA.AS.String())
	}
	ifc := func(i int) string {
		if i < len(hp.IfIDs) && hp.IfIDs[i] != 0 {
			return regexp.QuoteMeta(hp.IfIDs[i].String())
		}
		return `[0-9]+`
	}
	in, out := `[0-9]+`, `[0-9]+`
	switch len(hp.IfIDs) {
	case 1:
		// A single interface constraint matches either side.
		one := ifc(0)
		return fmt.Sprintf(`(?:%s-%s#(?:%s,%s|%s,%s) )`, isd, as, one, out, in, one), nil
	case 2:
		in, out = ifc(0), ifc(1)
	}
	return fmt.Sprintf(`(?:%s-%s#%s,%s )`, isd, as, in, out), nil
}

// renderPath produces the canonical hop string a Sequence matches against.
func renderPath(p *segment.Path) string {
	var b strings.Builder
	for _, h := range p.Hops {
		fmt.Fprintf(&b, "%s#%d,%d ", h.IA, h.Ingress, h.Egress)
	}
	return b.String()
}

// Eval reports whether the path's hop sequence matches.
func (s *Sequence) Eval(p *segment.Path) bool {
	return s.re.MatchString(renderPath(p))
}

// String returns the source expression.
func (s *Sequence) String() string { return s.src }
