package proxy

import (
	"fmt"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/pan"
)

func originHost(i int) string { return fmt.Sprintf("origin-%d.example", i) }

// TestOriginSweepOffRequestPath: the over-cap origin sweep queries the
// monitor with NO proxy lock held, so a sweep in flight — even one stalled
// inside the telemetry plane — never blocks the request path for more than
// its one map insert.
func TestOriginSweepOffRequestPath(t *testing.T) {
	p := &Proxy{origins: make(map[string]originRec)}
	entered := make(chan struct{})
	release := make(chan struct{})
	first := true
	p.originTracked = func(_ *pan.Monitor, _ addr.UDPAddr, _ string) bool {
		if first {
			first = false
			close(entered)
			<-release // the sweep stalls here, holding no proxy lock
		}
		return false // everything in the snapshot is stale
	}

	// Fill past the sweep threshold through the real request-path entry
	// point; the crossing insert launches the sweep goroutine.
	for i := 0; i <= maxTrackedOrigins+maxTrackedOrigins/4; i++ {
		p.observeFirstByte(originHost(i), addr.UDPAddr{}, nil, 0, false, 0)
	}
	select {
	case <-entered:
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never started")
	}

	// The sweep is mid-flight and blocked. Requests must still get through:
	// a re-touch of an existing origin and a brand-new origin both complete.
	done := make(chan struct{})
	go func() {
		p.observeFirstByte(originHost(0), addr.UDPAddr{}, nil, 0, false, 0)
		p.observeFirstByte("fresh.example", addr.UDPAddr{}, nil, 0, false, 0)
		close(done)
	}()
	select {
	case <-done:
	//lint:allow-wallclock wall-time watchdog against test hangs
	case <-time.After(5 * time.Second):
		t.Fatal("observeFirstByte blocked behind an in-flight origin sweep")
	}

	close(release)
	//lint:allow-wallclock wall-clock deadline bounds a real-time polling loop
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		sweeping := p.sweeping
		p.mu.Unlock()
		if !sweeping {
			break
		}
		//lint:allow-wallclock wall-clock deadline bounds a real-time polling loop
		if time.Now().After(deadline) {
			t.Fatal("sweep never finished")
		}
		//lint:allow-wallclock real-time yield so goroutines run between virtual-clock steps
		time.Sleep(time.Millisecond)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	// Entries touched AFTER the sweep's snapshot survive the stale pass —
	// their verdicts described a state that no longer held; everything else
	// was stale and goes.
	if _, ok := p.origins[originHost(0)]; !ok {
		t.Error("origin re-touched during the sweep was evicted")
	}
	if _, ok := p.origins["fresh.example"]; !ok {
		t.Error("origin inserted during the sweep was evicted")
	}
	if _, ok := p.origins[originHost(1)]; ok {
		t.Error("stale origin survived the sweep")
	}
}

// TestOriginEvictionOldestFirst: when every origin is still live and the map
// is over cap, eviction goes strictly by last-touched order — the busiest
// origin keeps its slot no matter where map iteration would have found it.
func TestOriginEvictionOldestFirst(t *testing.T) {
	p := &Proxy{origins: make(map[string]originRec)}
	total := maxTrackedOrigins + maxTrackedOrigins/2
	for i := 0; i < total; i++ {
		p.originSeq++
		p.origins[originHost(i)] = originRec{touch: p.originSeq}
	}
	// origin-0 went in first — oldest by insertion — but is the busiest:
	// its latest request re-touched it after everyone else.
	p.originSeq++
	p.origins[originHost(0)] = originRec{touch: p.originSeq}

	// Nil monitor: no staleness verdicts, recency alone decides.
	p.sweepOrigins(nil)

	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.origins) != maxTrackedOrigins {
		t.Fatalf("sweep left %d origins, want exactly %d", len(p.origins), maxTrackedOrigins)
	}
	if _, ok := p.origins[originHost(0)]; !ok {
		t.Error("busiest origin was evicted by an over-cap sweep")
	}
	// The evicted set is exactly the oldest-touched tail: origins 1 through
	// total-maxTrackedOrigins went, the rest stayed.
	evicted := total - maxTrackedOrigins
	for i := 1; i <= evicted; i++ {
		if _, ok := p.origins[originHost(i)]; ok {
			t.Fatalf("old idle origin %d survived while newer ones must have been evicted", i)
		}
	}
	for i := evicted + 1; i < total; i++ {
		if _, ok := p.origins[originHost(i)]; !ok {
			t.Fatalf("recently touched origin %d was evicted before older ones", i)
		}
	}
}
