// Package proxy implements the paper's local HTTP proxy ("SKIP", Figure 1):
// the component that "intercepts requests initiated by the browser...
// selects path(s) and adds a SCION packet header if needed", switching each
// request between SCION and legacy IP (the "IP/SCION Switch"), applying the
// user's path policies, and collecting per-path statistics.
package proxy

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"tango/internal/addr"
	"tango/internal/dnssim"
	"tango/internal/netsim"
	"tango/internal/pan"
	"tango/internal/policy"
	"tango/internal/ppl"
	"tango/internal/sciondetect"
	"tango/internal/shttp"
	"tango/internal/squic"
)

// Annotation headers the proxy adds to responses so the extension (and
// tests) can render the UI indicator.
const (
	HeaderVia       = "X-Skip-Via"       // "scion" or "ip"
	HeaderPath      = "X-Skip-Path"      // path fingerprint
	HeaderCompliant = "X-Skip-Compliant" // "true"/"false"
)

// Config assembles a proxy.
type Config struct {
	// Host is the SCION side (the proxy runs on the browser's machine).
	Host *pan.Host
	// Legacy is the IP side; LegacyHost is this machine's legacy identity.
	Legacy     *netsim.StreamNetwork
	LegacyHost string
	// Resolver resolves legacy A records.
	Resolver *dnssim.Resolver
	// Detector decides SCION availability per domain.
	Detector *sciondetect.Detector
	// Processing, when set, is invoked per proxied request to model the
	// proxy's per-request processing cost (the prototype overhead measured
	// in the paper's Figure 3). Implementations typically sleep on the
	// simulation clock.
	Processing func()
}

// Proxy is the SKIP HTTP proxy.
type Proxy struct {
	cfg   Config
	stats *Stats

	mu      sync.Mutex
	pol     *ppl.Policy
	fence   *policy.Geofence
	lastSel map[string]pan.Selection // per authority, for annotation

	scion  *shttp.Transport
	legacy *http.Transport
}

// New builds the proxy.
func New(cfg Config) *Proxy {
	p := &Proxy{cfg: cfg, stats: NewStats(), lastSel: make(map[string]pan.Selection)}
	p.scion = shttp.NewTransport(p.dialSCION)
	p.legacy = &http.Transport{
		DialContext:        p.dialLegacy,
		DisableCompression: true,
	}
	return p
}

// Stats returns the proxy's statistics aggregator.
func (p *Proxy) Stats() *Stats { return p.stats }

// SetPolicy installs the user's path policy; pooled SCION connections are
// dropped so new requests re-select paths ("the browser extension uses
// specific API calls to the HTTP proxy to apply path policies chosen by
// users").
func (p *Proxy) SetPolicy(pol *ppl.Policy) {
	p.mu.Lock()
	p.pol = pol
	p.lastSel = make(map[string]pan.Selection)
	p.mu.Unlock()
	p.scion.CloseIdleConnections()
}

// SetGeofence installs the user's geofence, dropping pooled connections.
func (p *Proxy) SetGeofence(g *policy.Geofence) {
	p.mu.Lock()
	p.fence = g
	p.lastSel = make(map[string]pan.Selection)
	p.mu.Unlock()
	p.scion.CloseIdleConnections()
}

// Close releases pooled connections.
func (p *Proxy) Close() {
	p.scion.CloseIdleConnections()
	p.legacy.CloseIdleConnections()
}

// CheckSCION reports whether host is reachable over SCION right now and
// whether a policy-compliant path exists — the API the extension's strict
// mode consults before forwarding a request (paper §5.1).
func (p *Proxy) CheckSCION(ctx context.Context, host string) (available, compliant bool) {
	scionAddr, ok := p.cfg.Detector.Detect(ctx, hostOnly(host))
	if !ok {
		return false, false
	}
	p.mu.Lock()
	pol, fence := p.pol, p.fence
	p.mu.Unlock()
	sel, err := p.cfg.Host.SelectPath(scionAddr.IA, pol, fence, pan.Opportunistic)
	if err != nil {
		return false, false
	}
	return true, sel.Compliant
}

// dialSCION is the shttp dial hook: detect, select a path under the current
// policy (opportunistic: non-compliant paths are used but flagged), and open
// a squic connection. The server's identity name is the bare hostname.
func (p *Proxy) dialSCION(ctx context.Context, authority string) (*squic.Conn, error) {
	host := hostOnly(authority)
	// SCION services listen on the same port as their legacy URL (80 for
	// plain http in the experiments).
	port := portOf(authority, 80)
	scionAddr, ok := p.cfg.Detector.Detect(ctx, host)
	if !ok {
		return nil, fmt.Errorf("proxy: %s not SCION-reachable", host)
	}
	p.mu.Lock()
	pol, fence := p.pol, p.fence
	p.mu.Unlock()
	remote := addr.UDPAddr{Addr: scionAddr, Port: port}
	conn, sel, err := p.cfg.Host.Dial(ctx, remote, host, pol, fence, pan.Opportunistic)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.lastSel[authority] = sel
	p.mu.Unlock()
	return conn, nil
}

// ServeHTTP implements the proxy protocol: absolute-form requests from the
// browser are forwarded over SCION when the destination is SCION-reachable,
// over legacy IP otherwise, with annotation headers either way.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if host == "" {
		http.Error(w, "proxy: missing host", http.StatusBadRequest)
		return
	}
	clock := p.cfg.Host.Clock()
	start := clock.Now()
	if f := p.cfg.Processing; f != nil {
		f()
	}

	outReq := r.Clone(r.Context())
	outReq.RequestURI = ""
	if outReq.URL.Scheme == "" {
		outReq.URL.Scheme = "http"
	}
	outReq.URL.Host = host

	if _, ok := p.cfg.Detector.Detect(r.Context(), hostOnly(host)); ok {
		resp, err := p.scion.RoundTrip(outReq)
		if err == nil {
			p.mu.Lock()
			sel := p.lastSel[authorityOf(outReq)]
			p.mu.Unlock()
			w.Header().Set(HeaderVia, string(ViaSCION))
			if sel.Path != nil {
				w.Header().Set(HeaderPath, sel.Path.Fingerprint())
			}
			w.Header().Set(HeaderCompliant, strconv.FormatBool(sel.Compliant))
			n := copyResponse(w, resp)
			p.stats.Record(RequestRecord{
				Host: host, Via: ViaSCION, Compliant: sel.Compliant,
				Path:     fingerprintOf(sel),
				Duration: clock.Since(start), Bytes: n, Status: resp.StatusCode,
			})
			return
		}
		// SCION attempt failed: fall back to legacy IP ("In case the client
		// or server lacks SCION connectivity, the browser falls back to
		// loading the resources over IPv4/6", paper §4).
	}
	p.forwardLegacy(w, outReq, start)
}

func (p *Proxy) forwardLegacy(w http.ResponseWriter, r *http.Request, start time.Time) {
	clock := p.cfg.Host.Clock()
	resp, err := p.legacy.RoundTrip(r)
	if err != nil {
		http.Error(w, fmt.Sprintf("proxy: upstream error: %v", err), http.StatusBadGateway)
		p.stats.Record(RequestRecord{Host: r.Host, Via: ViaError, Status: http.StatusBadGateway})
		return
	}
	w.Header().Set(HeaderVia, string(ViaIP))
	n := copyResponse(w, resp)
	p.stats.Record(RequestRecord{
		Host: r.Host, Via: ViaIP, Duration: clock.Since(start), Bytes: n, Status: resp.StatusCode,
	})
}

func fingerprintOf(sel pan.Selection) string {
	if sel.Path == nil {
		return ""
	}
	return sel.Path.Fingerprint()
}

func authorityOf(r *http.Request) string {
	host := hostOnly(r.URL.Host)
	port := portOf(r.URL.Host, 80)
	return fmt.Sprintf("%s:%d", host, port)
}

func hostOnly(hostport string) string {
	if h, _, err := net.SplitHostPort(hostport); err == nil {
		return h
	}
	return hostport
}

func portOf(hostport string, def uint16) uint16 {
	if _, ps, err := net.SplitHostPort(hostport); err == nil {
		if v, err := strconv.ParseUint(ps, 10, 16); err == nil {
			return uint16(v)
		}
	}
	return def
}

// dialLegacy resolves the authority's A record and dials the legacy network.
func (p *Proxy) dialLegacy(ctx context.Context, network, authority string) (net.Conn, error) {
	host := hostOnly(authority)
	port := portOf(authority, 80)
	var target netip.Addr
	if ip, err := netip.ParseAddr(host); err == nil {
		target = ip
	} else {
		addrs, err := p.cfg.Resolver.LookupA(ctx, host)
		if err != nil {
			return nil, fmt.Errorf("proxy: resolving %s: %w", host, err)
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("proxy: no A records for %s", host)
		}
		target = addrs[0]
	}
	return p.cfg.Legacy.Dial(ctx, p.cfg.LegacyHost, fmt.Sprintf("%s:%d", target, port))
}

// copyResponse relays a backend response to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) int64 {
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	resp.Body.Close()
	return n
}
